/// Dipole-moment watch — the diagnostic behind the paper's scientific
/// motivation ("spontaneous and repeated reversals of the dipole moment
/// (north-south polarity)", §I, refs [5, 11, 13]).  Tracks the Gauss
/// coefficients of the dynamo field: the axial dipole g10, the dipole
/// tilt, and the Lowes spectrum, writing reversal_watch.csv.
///
/// At workstation scale the field decays resistively rather than
/// reversing (the paper needed 4096 processors and hours of wall clock
/// to reach developed dynamo states) — but the full analysis pipeline
/// this example exercises is exactly what reversal hunting requires.
#include <cmath>
#include <cstdio>

#include "common/csv.hpp"
#include "core/serial_solver.hpp"
#include "grid/fd_ops.hpp"
#include "io/gauss.hpp"
#include "mhd/derived.hpp"

using namespace yy;
using core::SerialYinYangSolver;
using yinyang::Panel;

namespace {

io::GaussCoefficients analyze(SerialYinYangSolver& s, Field3* b[6]) {
  const SphericalGrid& g = s.grid();
  const IndexBox ext = g.interior().grown(1);
  mhd::magnetic_field(g, s.panel(Panel::yin), *b[0], *b[1], *b[2], ext);
  mhd::magnetic_field(g, s.panel(Panel::yang), *b[3], *b[4], *b[5], ext);
  io::SphereSampler sampler(g, s.geometry());
  const double r_s = 0.5 * (s.config().shell.r_inner + s.config().shell.r_outer);
  return io::analyze_gauss_coefficients(sampler, {b[0], b[1], b[2]},
                                        {b[3], b[4], b[5]}, r_s, 4, 32, 64);
}

}  // namespace

int main(int argc, char** argv) {
  const int bursts = argc > 1 ? std::atoi(argv[1]) : 10;

  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.eq.mu = 1.5e-3;
  cfg.eq.kappa = 1.5e-3;
  cfg.eq.eta = 1.5e-3;
  cfg.eq.g0 = 3.0;
  cfg.eq.omega = {0.0, 0.0, 15.0};
  cfg.thermal = {2.5, 1.0};
  cfg.ic.perturb_amp = 2e-2;
  cfg.ic.seed_b_amp = 1e-3;

  SerialYinYangSolver solver(cfg);
  solver.initialize();
  const SphericalGrid& g = solver.grid();
  Field3 store[6];
  Field3* b[6];
  for (int i = 0; i < 6; ++i) {
    store[i] = Field3(g.Nr(), g.Nt(), g.Np());
    b[i] = &store[i];
  }

  CsvWriter csv("reversal_watch.csv",
                {"time", "g10", "g11", "h11", "tilt_deg", "dipole_power",
                 "quadrupole_power"});

  std::printf("== Dipole watch (Gauss coefficients of the dynamo field) =======\n");
  std::printf("%10s %12s %12s %10s %12s\n", "time", "g10", "|dipole|",
              "tilt", "R2/R1");
  for (int k = 0; k < bursts; ++k) {
    const io::GaussCoefficients gc = analyze(solver, b);
    const auto spec = gc.lowes_spectrum();
    const double tilt_deg = gc.dipole_tilt() * 180.0 / 3.14159265358979;
    csv.row({solver.time(), gc.g_lm(1, 0), gc.g_lm(1, 1), gc.h_lm(1, 1),
             tilt_deg, spec[1], spec[2]});
    std::printf("%10.4f %12.3e %12.3e %9.1f° %12.3f\n", solver.time(),
                gc.g_lm(1, 0), gc.dipole().norm(), tilt_deg,
                spec[1] > 0 ? spec[2] / spec[1] : 0.0);
    solver.run_steps(30);
  }

  std::printf("\nA polarity reversal would appear as g10 crossing zero with\n");
  std::printf("the tilt sweeping through 90 deg (paper refs [5,11,13]).\n");
  std::printf("wrote reversal_watch.csv\n");
  return 0;
}

/// The motivation of paper §II made tangible: run the SAME physics on
/// the legacy latitude-longitude grid and on the Yin-Yang grid and
/// watch the pole penalty — the lat-lon run needs far smaller timesteps
/// (converging meridians) while the Yin-Yang run pays only ~6% overlap.
#include <cstdio>

#include "baseline/latlon_solver.hpp"
#include "common/timer.hpp"
#include "core/serial_solver.hpp"

int main() {
  using namespace yy;

  std::printf("== The pole problem: lat-lon vs Yin-Yang (same physics) ========\n\n");

  baseline::LatLonConfig lc;
  lc.nr = 13;
  lc.nt = 36;
  lc.np = 72;
  lc.eq.mu = 2e-3;
  lc.eq.kappa = 2e-3;
  lc.eq.eta = 2e-3;
  lc.eq.g0 = 2.0;
  lc.eq.omega = {0, 0, 10.0};
  lc.thermal = {2.0, 1.0};

  core::SimulationConfig yc;
  yc.nr = lc.nr;
  yc.nt_core = 19;  // same dθ = π/36
  yc.np_core = 55;
  yc.eq = lc.eq;
  yc.thermal = lc.thermal;

  baseline::LatLonSolver latlon(lc);
  core::SerialYinYangSolver yinyang(yc);
  latlon.initialize();
  yinyang.initialize();

  const double dt_ll = latlon.stable_dt();
  const double dt_yy = yinyang.stable_dt();
  std::printf("angular spacing: %.2f deg on both grids\n", 180.0 / lc.nt);
  std::printf("CFL timestep   : lat-lon %.3e   yin-yang %.3e   (%.1fx penalty)\n",
              dt_ll, dt_yy, dt_yy / dt_ll);
  std::printf("crowded columns: %.0f%% of lat-lon rows have meridian spacing\n"
              "                 below half the equatorial value; Yin-Yang: 0%%\n\n",
              100.0 * latlon.pole_crowding_fraction());

  // Advance both to the same simulated time and compare the work.
  const double t_target = 40.0 * dt_yy;
  WallTimer tll;
  int steps_ll = 0;
  while (latlon.time() < t_target) {
    latlon.step(dt_ll);
    ++steps_ll;
  }
  const double wall_ll = tll.seconds();
  WallTimer tyy;
  int steps_yy = 0;
  while (yinyang.time() < t_target) {
    yinyang.step(dt_yy);
    ++steps_yy;
  }
  const double wall_yy = tyy.seconds();

  std::printf("advancing both to t = %.4f:\n", t_target);
  std::printf("  lat-lon : %4d steps, %6.2f s wall\n", steps_ll, wall_ll);
  std::printf("  yin-yang: %4d steps, %6.2f s wall  (%.1fx faster)\n", steps_yy,
              wall_yy, wall_ll / wall_yy);
  std::printf("\nThis is the inefficiency the paper removed by converting the\n");
  std::printf("lat-lon geodynamo code to the Yin-Yang grid (paper SII, SIV).\n");
  return 0;
}

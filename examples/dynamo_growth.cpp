/// §V scenario — "it is necessary to follow the time development of the
/// MHD system until the thermal convection flow and the dynamo-
/// generated magnetic field are both sufficiently developed":
/// integrates a rotating convective dynamo from a negligible seed and
/// records the kinetic/magnetic energy history to dynamo_growth.csv,
/// reporting the convection onset and the seed-field behaviour.
#include <cmath>
#include <cstdio>

#include "common/csv.hpp"
#include "core/serial_solver.hpp"

int main(int argc, char** argv) {
  using namespace yy;
  // An optional argument scales the run length (default modest so the
  // example finishes in about a minute on one core).
  const int bursts = argc > 1 ? std::atoi(argv[1]) : 24;

  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.eq.mu = 1.5e-3;
  cfg.eq.kappa = 1.5e-3;
  cfg.eq.eta = 1.5e-3;
  cfg.eq.g0 = 3.0;
  cfg.eq.omega = {0.0, 0.0, 15.0};
  cfg.thermal = {2.5, 1.0};
  cfg.ic.perturb_amp = 2e-2;
  cfg.ic.seed_b_amp = 1e-4;

  core::SerialYinYangSolver solver(cfg);
  solver.initialize();

  CsvWriter csv("dynamo_growth.csv",
                {"time", "step", "kinetic", "magnetic", "thermal", "mass"});
  const mhd::EnergyBudget e0 = solver.energies();
  csv.row({0.0, 0.0, e0.kinetic, e0.magnetic, e0.thermal, e0.mass});

  std::printf("== Dynamo growth (paper SV, scaled down) ======================\n");
  std::printf("%10s %8s %14s %14s\n", "time", "steps", "kinetic", "magnetic");
  double ke_peak = 0.0;
  for (int b = 0; b < bursts; ++b) {
    solver.run_steps(25);
    const mhd::EnergyBudget e = solver.energies();
    csv.row({solver.time(), static_cast<double>(solver.steps_taken()),
             e.kinetic, e.magnetic, e.thermal, e.mass});
    ke_peak = std::max(ke_peak, e.kinetic);
    std::printf("%10.4f %8lld %14.4e %14.4e\n", solver.time(),
                solver.steps_taken(), e.kinetic, e.magnetic);
  }

  const mhd::EnergyBudget e1 = solver.energies();
  std::printf("\nconvection:  kinetic energy grew from 0 to %.3e\n", e1.kinetic);
  std::printf("seed field:  magnetic energy %.3e -> %.3e (%s)\n", e0.magnetic,
              e1.magnetic,
              e1.magnetic > e0.magnetic
                  ? "amplifying — dynamo action"
                  : "still resistively decaying — run longer / lower eta");
  std::printf("wrote dynamo_growth.csv (%zu samples)\n", csv.rows_written());
  return 0;
}

/// Earth Simulator what-if tool: measure this machine's yycore kernel,
/// then ask the ES model for any (processors, grid) configuration —
/// the generalization of the paper's Table II / List 1 numbers.
///
/// Usage: es_performance_report [processors nr nt np]
///        (defaults to the paper's flagship 4096 x 511x514x1538x2)
#include <cstdio>
#include <cstdlib>

#include "perf/kernel_profile.hpp"
#include "perf/proginf.hpp"

using namespace yy::perf;

int main(int argc, char** argv) {
  RunConfig rc = kTable2Configs[0];
  if (argc == 5) {
    rc.processors = std::atoi(argv[1]);
    rc.nr = std::atoi(argv[2]);
    rc.nt = std::atoi(argv[3]);
    rc.np = std::atoi(argv[4]);
  }

  std::printf("measuring the local yycore kernel profile...\n");
  const KernelProfile prof = KernelProfile::measure();
  std::printf("  %.0f flops/gridpoint/step, %.2f Gflops sustained here\n\n",
              prof.flops_per_point_per_step, prof.local_gflops);

  const EsPerformanceModel model(EarthSimulatorSpec{}, EsCostParams{},
                                 prof.flops_per_point_per_step);
  const ModelResult m = model.predict(rc);

  std::printf("Earth Simulator projection for %d processes, grid %dx%dx%dx2:\n",
              rc.processors, rc.nr, rc.nt, rc.np);
  std::printf("  panel decomposition      : %d x %d processes, patch <= %dx%d\n",
              m.pt, m.pp, m.ntl, m.npl);
  std::printf("  sustained performance    : %.2f Tflops (%.0f%% of peak)\n",
              m.tflops, m.efficiency * 100.0);
  std::printf("  time per RK4 step        : %.3f s\n", m.time_per_step_s);
  std::printf("  communication share      : %.0f%%\n", m.comm_fraction * 100.0);
  std::printf("  average vector length    : %.1f\n", m.avg_vector_length);
  std::printf("  vector operation ratio   : %.2f%%\n\n", m.vec_op_ratio * 100.0);

  std::printf("%s\n", format_proginf(model, rc).c_str());
  return 0;
}

/// Fig. 2 scenario at example scale — "thermal convection motion in a
/// rapidly rotating spherical shell is organized as a set of columnar
/// convection cells".  Integrates past convective onset and renders the
/// equatorial-plane z-vorticity, the two-colour cyclonic/anti-cyclonic
/// view of the paper's Fig. 2(a)/(c), plus snapshots at several times.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/serial_solver.hpp"
#include "grid/fd_ops.hpp"
#include "io/slice.hpp"
#include "io/vtk.hpp"
#include "mhd/derived.hpp"

using namespace yy;
using core::SerialYinYangSolver;
using yinyang::Panel;

namespace {

io::EquatorialSlice vorticity_slice(SerialYinYangSolver& s) {
  const SphericalGrid& g = s.grid();
  mhd::Workspace& ws = s.workspace();
  static Field3 wy_r, wy_t, wy_p, wg_r, wg_t, wg_p;
  wy_r = Field3(g.Nr(), g.Nt(), g.Np());
  wy_t = wy_r;
  wy_p = wy_r;
  wg_r = wy_r;
  wg_t = wy_r;
  wg_p = wy_r;
  auto vort = [&](Panel p, Field3& wr, Field3& wt, Field3& wp) {
    mhd::velocity_and_temperature(s.panel(p), ws.vr, ws.vt, ws.vp, ws.T,
                                  g.interior().grown(1));
    fd::curl(g, ws.vr, ws.vt, ws.vp, wr, wt, wp, g.interior());
  };
  vort(Panel::yin, wy_r, wy_t, wy_p);
  vort(Panel::yang, wg_r, wg_t, wg_p);
  io::SphereSampler sampler(g, s.geometry());
  return io::sample_equatorial_z(sampler, {&wy_r, &wy_t, &wy_p},
                                 {&wg_r, &wg_t, &wg_p},
                                 s.config().shell.r_inner + 0.02,
                                 s.config().shell.r_outer - 0.02, 32, 240);
}

}  // namespace

int main(int argc, char** argv) {
  const int snapshots = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps_per_snapshot = argc > 2 ? std::atoi(argv[2]) : 120;

  core::SimulationConfig cfg;
  cfg.nr = 17;
  cfg.nt_core = 21;
  cfg.np_core = 61;
  cfg.eq.mu = 1.5e-3;
  cfg.eq.kappa = 1.5e-3;
  cfg.eq.eta = 1.5e-3;
  cfg.eq.g0 = 3.0;
  cfg.eq.omega = {0.0, 0.0, 15.0};
  cfg.thermal = {2.5, 1.0};
  cfg.ic.perturb_amp = 2e-2;

  std::printf("== Convection columns (paper Fig. 2, example scale) ============\n");
  SerialYinYangSolver solver(cfg);
  solver.initialize();

  for (int snap = 1; snap <= snapshots; ++snap) {
    solver.run_steps(steps_per_snapshot);
    io::EquatorialSlice slice = vorticity_slice(solver);
    const int cols = io::count_columns(slice);
    const std::string ppm = "columns_t" + std::to_string(snap) + ".ppm";
    io::write_equatorial_ppm(io::remove_zonal_mean(slice), ppm, 480);
    const mhd::EnergyBudget e = solver.energies();
    std::printf("t=%.4f steps=%lld KE=%.3e: %2d alternating columns "
                "(%d pairs) -> %s\n",
                solver.time(), solver.steps_taken(), e.kinetic, cols, cols / 2,
                ppm.c_str());
  }

  io::EquatorialSlice final_slice = vorticity_slice(solver);
  io::write_equatorial_csv(final_slice, "columns_final.csv");

  // 3-D export for ParaView/VisIt (the paper's visualization data path,
  // SV): one VTK file per panel; they overlay seamlessly.
  mhd::Workspace& ws = solver.workspace();
  for (Panel p : {Panel::yin, Panel::yang}) {
    mhd::velocity_and_temperature(solver.panel(p), ws.vr, ws.vt, ws.vp, ws.T,
                                  solver.grid().interior());
    io::write_vtk_panel(std::string("columns_") + name(p) + ".vtk",
                        solver.grid(), p,
                        {{"temperature", ws.T}, {"v_r", ws.vr}});
    std::printf("wrote columns_%s.vtk\n", name(p));
  }
  std::printf("\nfinal slice written to columns_final.csv; the PPM images show\n");
  std::printf("the paper's two-colour columnar pattern (red = cyclonic, blue =\n");
  std::printf("anti-cyclonic) growing from the random perturbation.\n");
  return 0;
}

/// The full flat-MPI structure of paper §IV in action: a world of
/// 2 x pt x pp ranks (threads standing in for the Earth Simulator's
/// processes) runs the distributed yycore solver — panel split, 2-D
/// cartesian halo exchange and inter-panel overset interpolation — and
/// the result is verified against the single-process reference solver.
///
/// Every rank records per-phase spans (obs/trace.hpp); the run emits a
/// chrome://tracing timeline (yy_trace.json), a metrics CSV/JSON, and a
/// measured List-1-style report cross-checked against the Earth
/// Simulator performance model's predicted phase split.
///
/// Usage: parallel_dynamo [pt pp steps [mode]] [--heartbeat N] [--overlap]
///                        [--fused-rhs] [--simd-rhs] [--counters]
///                        [--chaos rank-death:<step>|bitflip:<step>[:<cadence>]]
///        (default 2 x 2, 10 steps)
///
/// mode selects the run-control layer:
///   plain      step loop, no checkpointing (default, the seed behaviour)
///   resilient  ResilientRunner: periodic checkpoints + health monitoring
///   faulty     resilient + an injected overset-message drop and a torn
///              checkpoint commit — demonstrates automatic rewind; the
///              final state still matches the serial reference exactly.
///
/// --heartbeat N turns on in-run telemetry (obs/telemetry.hpp): every N
/// steps the ranks gather their per-step phase timings to rank 0, which
/// prints one rolling "[telemetry]" line per step (per-phase mean/max,
/// imbalance ratio, straggler rank) and, at exit, writes the full
/// manifest-stamped time series as telemetry.csv / telemetry.json.
///
/// --overlap switches the RK4 stage fills to the overlapped mode
/// (DESIGN.md §10): halo/overset exchanges are posted, the interior of
/// the patch is swept while the messages are in flight, and only the
/// ghost-dependent rim waits.  Bitwise-identical to the synchronous
/// path (tests/core/test_overlap_equivalence.cpp), so the serial
/// cross-check below still matches exactly.  Set YY_THREADS to also
/// thread the interior sweep and stage updates.
///
/// --fused-rhs evaluates each stage's RHS with the fused cache-blocked
/// pencil sweep (DESIGN.md §11) instead of the operator-at-a-time
/// reference chain.  Bitwise-identical trajectories
/// (tests/mhd/test_rhs_fused.cpp), so the serial cross-check still
/// matches exactly; composes with --overlap.
///
/// --simd-rhs evaluates the RHS with the lane-widened fused sweep
/// (DESIGN.md §14): the same pencil sweep with its radial inner loops
/// running in SIMD packs at the build's native width (override with
/// YY_SIMD=scalar|1|2|4|8; the manifest records width and ISA).
/// Bitwise-identical trajectories (tests/mhd/test_rhs_simd.cpp), so
/// the serial cross-check still matches exactly; composes with
/// --overlap and takes precedence over --fused-rhs.
///
/// --counters samples per-phase performance counters on every rank
/// (obs/hwcounters.hpp): each rank thread opens its own CounterGroup —
/// real perf_event hardware counters where the kernel permits, the
/// software charge counter otherwise — and every span then carries a
/// counter delta.  The backend actually used is stamped into the
/// manifest (`counter_backend`) and all exports; the run ends with a
/// roofline attribution table (perf/roofline.hpp) joining the measured
/// counters against the analytic flop charges.  Environment:
/// YY_COUNTERS=software forces the fallback, YY_COUNTER_FPOPS_RAW=<ev>
/// opens a raw FP-ops event on microarchitectures that have one.
///
/// --chaos rank-death:<step> kills world rank 1 after it completes
/// step <step>: the rank stops responding, the survivors detect the
/// silence, shrink the world around it and restore its patch from its
/// buddy's diskless replica (DESIGN.md §12), then finish the run on
/// one rank fewer.  Forces resilient mode; the serial cross-check
/// still matches exactly because the restored trajectory is bitwise
/// the shrunk-layout trajectory.  Needs at least 2 ranks per panel so
/// each panel keeps a survivor (the default 2 x 2 works).
///
/// --chaos bitflip:<step>[:<cadence>] XORs one mantissa bit of one A_r
/// value in world rank 1's resident state after it completes step
/// <step> — silent data corruption no magnitude probe can see.  Forces
/// resilient mode with the SDC audit on (DESIGN.md §15, cadence
/// default 4; <step> must be a multiple of the cadence so the flip
/// lands on an audited boundary): the slab-CRC sweep catches the flip
/// at the next audit, every rank restores its patch from the diskless
/// buddy images and the short window since the last clean audit is
/// replayed.  The serial cross-check still matches exactly because the
/// flip never reaches a committed snapshot.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/distributed_solver.hpp"
#include "core/serial_solver.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "perf/proginf.hpp"
#include "perf/roofline.hpp"
#include "resilience/resilient_runner.hpp"

using namespace yy;
using yinyang::Panel;

int main(int argc, char** argv) {
  int heartbeat = 0;
  bool overlap = false;
  bool fused_rhs = false;
  bool simd_rhs = false;
  bool counters = false;
  long long chaos_death_step = -1;
  long long chaos_flip_step = -1;
  long long chaos_flip_cadence = 4;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--heartbeat") == 0 && i + 1 < argc) {
      heartbeat = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--overlap") == 0) {
      overlap = true;
    } else if (std::strcmp(argv[i], "--fused-rhs") == 0) {
      fused_rhs = true;
    } else if (std::strcmp(argv[i], "--simd-rhs") == 0) {
      simd_rhs = true;
    } else if (std::strcmp(argv[i], "--counters") == 0) {
      counters = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      const char* spec = argv[++i];
      if (std::strncmp(spec, "rank-death:", 11) == 0) {
        chaos_death_step = std::atoll(spec + 11);
      } else if (std::strncmp(spec, "bitflip:", 8) == 0) {
        chaos_flip_step = std::atoll(spec + 8);
        if (const char* colon = std::strchr(spec + 8, ':'))
          chaos_flip_cadence = std::atoll(colon + 1);
      }
      if (chaos_death_step <= 0 && chaos_flip_step <= 0) {
        std::fprintf(stderr,
                     "bad chaos spec '%s' (rank-death:<step> | "
                     "bitflip:<step>[:<cadence>])\n",
                     spec);
        return 1;
      }
      if (chaos_flip_step > 0 &&
          (chaos_flip_cadence <= 0 ||
           chaos_flip_step % chaos_flip_cadence != 0)) {
        std::fprintf(stderr,
                     "bad chaos spec '%s': bitflip step must be a positive "
                     "multiple of the audit cadence (%lld)\n",
                     spec, chaos_flip_cadence);
        return 1;
      }
    } else {
      pos.push_back(argv[i]);
    }
  }
  const int pt = pos.size() > 0 ? std::atoi(pos[0]) : 2;
  const int pp = pos.size() > 1 ? std::atoi(pos[1]) : 2;
  const int steps = pos.size() > 2 ? std::atoi(pos[2]) : 10;
  std::string mode = pos.size() > 3 ? pos[3] : "plain";
  if (mode != "plain" && mode != "resilient" && mode != "faulty") {
    std::fprintf(stderr, "unknown mode '%s' (plain|resilient|faulty)\n",
                 mode.c_str());
    return 1;
  }
  if (chaos_death_step > 0) {
    if (mode == "plain") mode = "resilient";  // survival needs the runner
    if (heartbeat > 0) {
      std::printf("note: --chaos disables --heartbeat (the telemetry "
                  "window cannot span a dead rank)\n");
      heartbeat = 0;
    }
  }
  if (chaos_flip_step > 0 && mode == "plain")
    mode = "resilient";  // the SDC audit lives in the runner

  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 10.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  cfg.overlap = overlap;
  cfg.fused_rhs = fused_rhs;
  cfg.simd_rhs = simd_rhs;

  const int world = 2 * pt * pp;
  std::printf("== Distributed yycore: %d ranks = 2 panels x (%d x %d)%s%s ====\n\n",
              world, pt, pp, overlap ? "  [overlapped]" : "",
              simd_rhs ? "  [simd rhs]" : (fused_rhs ? "  [fused rhs]" : ""));

  mhd::EnergyBudget dist_energy;
  double dist_dt = 0.0;
  resilience::RunReport report;
  std::mutex mu;
  obs::TraceRecorder rec;
  comm::Runtime rt(world);

  // Run identity, stamped into every export (and shown live when the
  // heartbeat is on).
  obs::RunManifest man = obs::RunManifest::current_build();
  man.app = "parallel_dynamo";
  man.mode = mode;
  man.world = world;
  man.pt = pt;
  man.pp = pp;
  man.nr = cfg.nr;
  man.nt_core = cfg.nt_core;
  man.np_core = cfg.np_core;
  man.heartbeat_interval = heartbeat;
  // Probe which counter backend this host grants before freezing the
  // manifest: the rank threads open identical groups below, so the
  // probe's outcome is the run's (honest degradation, DESIGN.md §13).
  obs::CounterBackend ctr_backend = obs::CounterBackend::off;
  std::string ctr_detail = "off";
  if (counters) {
    obs::CounterGroup probe(obs::CounterGroup::config_from_env());
    ctr_backend = probe.backend();
    ctr_detail = probe.backend_detail();
  }
  man.counter_backend = obs::counter_backend_name(ctr_backend);
  man.extra.emplace_back("steps", std::to_string(steps));
  man.extra.emplace_back("overlap", overlap ? "1" : "0");
  man.extra.emplace_back("rhs_backend", mhd::backend_name(cfg.rhs_backend()));
  if (simd_rhs) {
    man.extra.emplace_back("simd_width", std::to_string(simd::active_width()));
    man.extra.emplace_back("simd_isa", simd::compiled_isa());
  }
  if (chaos_death_step > 0)
    man.extra.emplace_back("chaos",
                           "rank-death:" + std::to_string(chaos_death_step));
  if (chaos_flip_step > 0)
    man.extra.emplace_back("chaos",
                           "bitflip:" + std::to_string(chaos_flip_step) + ":" +
                               std::to_string(chaos_flip_cadence));
  obs::TelemetrySink sink(man, heartbeat > 0 ? &std::cout : nullptr);

  std::shared_ptr<comm::FaultPlan> plan;
  if (mode == "faulty") {
    // Provoke the recovery machinery on purpose: one overset envelope
    // is dropped in the last quarter of the run and the mid-run
    // checkpoint commit is torn on rank 0.  The runner rewinds to the
    // newest CRC-valid set and re-runs the tail — bit-exactly.
    plan = std::make_shared<comm::FaultPlan>();
    comm::FaultPlan::Rule drop;
    drop.kind = comm::FaultPlan::Kind::drop;
    drop.tag = 200;  // overset interpolation traffic
    drop.min_step = steps > 1 ? steps * 3 / 4 : 1;
    plan->add_rule(drop);
    plan->schedule_io_fault(std::max(1, steps / 2), /*world_rank=*/0,
                            comm::FaultPlan::IoFault::torn);
  }
  constexpr int kChaosVictim = 1;
  if (chaos_death_step > 0) {
    if (!plan) plan = std::make_shared<comm::FaultPlan>();
    plan->schedule_rank_death(kChaosVictim, chaos_death_step);
    std::printf("chaos: world rank %d stops responding after step %lld; "
                "the survivors shrink around it\n\n",
                kChaosVictim, chaos_death_step);
  }
  if (chaos_flip_step > 0) {
    if (!plan) plan = std::make_shared<comm::FaultPlan>();
    comm::FaultPlan::ComputeFault flip;
    flip.field = 5;  // A_r
    flip.elem = 1234;
    flip.byte = 0;   // low mantissa bit: invisible to magnitude probes
    flip.mask = 0x01;
    plan->schedule_bitflip(kChaosVictim, chaos_flip_step, flip);
    std::printf("chaos: one A_r mantissa bit flips in memory on world "
                "rank %d after step %lld (audit cadence %lld)\n\n",
                kChaosVictim, chaos_flip_step, chaos_flip_cadence);
  }
  if (plan) rt.install_fault_plan(plan);

  WallTimer timer;
  rt.run([&](comm::Communicator& w) {
    obs::ScopedRankBind bind(rec, w.rank());
    // Counter groups are per-thread (perf_event counts the opening
    // thread only), so each rank opens its own and binds it for the
    // run; every span this rank records then carries a counter delta.
    std::unique_ptr<obs::CounterGroup> ctrs;
    std::unique_ptr<obs::ScopedCounterBind> cbind;
    if (counters) {
      ctrs = std::make_unique<obs::CounterGroup>(
          obs::CounterGroup::config_from_env());
      cbind = std::make_unique<obs::ScopedCounterBind>(*ctrs);
    }
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    std::unique_ptr<obs::RankTelemetry> tel;
    if (heartbeat > 0) {
      obs::TelemetryConfig tc;
      tc.interval = heartbeat;
      tel = std::make_unique<obs::RankTelemetry>(w, sink, tc);
      solver.attach_telemetry(tel.get());
    }
    resilience::RunReport rep;
    if (mode == "plain") {
      for (int i = 0; i < steps; ++i) solver.step(dt);
      rep.completed = true;
      rep.final_step = steps;
      rep.final_dt = dt;
    } else {
      resilience::RunPolicy policy;
      policy.store = {"yy_checkpoints", "dynamo", 2};
      policy.checkpoint_interval = std::max(1, steps / 4);
      policy.take_deadline_ms = 5000;
      if (chaos_flip_step > 0)
        policy.sdc.audit_interval = chaos_flip_cadence;
      resilience::ResilientRunner runner(solver, policy);
      rep = runner.run(steps, dt);
    }
    // A rank killed by the chaos schedule has retired from the fabric:
    // it must not join the survivors' post-run collectives.
    const bool i_died = !rep.completed &&
                        rep.failure.find("rank death") != std::string::npos;
    if (tel && !i_died) tel->flush();  // collective: drains any window
    if (!i_died) {
      const mhd::EnergyBudget e = solver.energies();
      if (w.rank() == 0) {
        std::lock_guard lock(mu);
        dist_energy = e;
        dist_dt = rep.final_dt;
        report = rep;
      }
    }
  });
  const double wall = timer.seconds();
  const auto traffic = rt.traffic_total();

  std::printf("%d RK4 steps on %d ranks: %.2f s wall  [mode: %s]\n", steps,
              world, wall, mode.c_str());
  if (mode != "plain") {
    std::printf("run control: %s after %lld steps, %d recoveries, "
                "%d checkpoints (dir yy_checkpoints/)\n",
                report.completed ? "completed" : "FAILED", report.final_step,
                report.recoveries, report.checkpoints_saved);
    if (report.shrinks > 0)
      std::printf("rank loss survived: %d shrink(s), world %d -> %d "
                  "surviving ranks\n",
                  report.shrinks, world, report.final_world_size);
    if (report.sdc_restores > 0)
      std::printf("sdc defense: bit flip detected and repaired from buddy "
                  "replicas (%d restore(s), no disk rewind)\n",
                  report.sdc_restores);
    if (!report.failure.empty())
      std::printf("failure: %s\n", report.failure.c_str());
  }
  std::printf("message traffic: %llu messages, %.2f MB\n",
              static_cast<unsigned long long>(traffic.messages),
              traffic.bytes / 1048576.0);
  std::printf("global energies: KE %.5e  ME %.5e  mass %.6f\n\n",
              dist_energy.kinetic, dist_energy.magnetic, dist_energy.mass);

  // Cross-check against the serial reference.
  core::SerialYinYangSolver ref(cfg);
  ref.initialize();
  for (int i = 0; i < steps; ++i) ref.step(dist_dt);
  const mhd::EnergyBudget re = ref.energies();
  const double rel =
      std::abs(re.kinetic - dist_energy.kinetic) / (re.kinetic + 1e-30);
  std::printf("serial reference KE %.5e -> relative difference %.2e %s\n",
              re.kinetic, rel,
              rel < 1e-9 ? "(trajectories match)" : "(MISMATCH!)");

  // ---- Observability exports: timeline, metrics, phase cross-check.
  // All artifacts are stamped with the run manifest so they remain
  // self-describing once they leave this directory.
  const obs::MetricsSummary metrics = obs::collect_metrics(rec, traffic);
  if (obs::write_chrome_trace_file(rec, "yy_trace.json", man))
    std::printf("\nwrote yy_trace.json  (open in chrome://tracing or "
                "ui.perfetto.dev)\n");
  {
    std::ofstream csv("yy_metrics.csv");
    obs::write_metrics_csv(metrics, csv, man);
    std::ofstream js("yy_metrics.json");
    obs::write_metrics_json(metrics, js, man);
    std::printf("wrote yy_metrics.csv, yy_metrics.json\n");
  }
  if (heartbeat > 0) {
    if (sink.write_files("telemetry.csv", "telemetry.json"))
      std::printf("wrote telemetry.csv, telemetry.json  (%zu aggregated "
                  "steps)\n",
                  sink.series().size());
  }
  for (int e = 0; e < obs::kNumEvents; ++e)
    if (metrics.events[static_cast<std::size_t>(e)] != 0)
      std::printf("event %-22s %llu\n",
                  obs::event_name(static_cast<obs::Event>(e)),
                  static_cast<unsigned long long>(
                      metrics.events[static_cast<std::size_t>(e)]));
  std::printf("\n");

  std::printf("%s\n", perf::format_measured_proginf(metrics).c_str());

  // Cross-check the measured phase split against the ES model run at
  // the same process count and per-panel grid.
  const perf::EsPerformanceModel model(perf::EarthSimulatorSpec{},
                                       perf::EsCostParams{}, 3000.0);
  const perf::RunConfig rc{world, cfg.nr, cfg.nt_core, cfg.np_core,
                           perf::Parallelization::flat_mpi};
  std::printf("%s\n", perf::format_phase_report(metrics, model, rc).c_str());

  if (counters) {
    std::printf("counter backend: %s\n", ctr_detail.c_str());
    std::printf("%s\n",
                perf::RooflineReport::build(metrics, ctr_backend)
                    .format()
                    .c_str());
  }
  return 0;
}

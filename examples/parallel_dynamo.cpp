/// The full flat-MPI structure of paper §IV in action: a world of
/// 2 x pt x pp ranks (threads standing in for the Earth Simulator's
/// processes) runs the distributed yycore solver — panel split, 2-D
/// cartesian halo exchange and inter-panel overset interpolation — and
/// the result is verified against the single-process reference solver.
///
/// Every rank records per-phase spans (obs/trace.hpp); the run emits a
/// chrome://tracing timeline (yy_trace.json), a metrics CSV/JSON, and a
/// measured List-1-style report cross-checked against the Earth
/// Simulator performance model's predicted phase split.
///
/// Usage: parallel_dynamo [pt pp steps]   (default 2 x 2, 10 steps)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "comm/runtime.hpp"
#include "common/timer.hpp"
#include "core/distributed_solver.hpp"
#include "core/serial_solver.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/proginf.hpp"

using namespace yy;
using yinyang::Panel;

int main(int argc, char** argv) {
  const int pt = argc > 1 ? std::atoi(argv[1]) : 2;
  const int pp = argc > 2 ? std::atoi(argv[2]) : 2;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 10;

  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 10.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;

  const int world = 2 * pt * pp;
  std::printf("== Distributed yycore: %d ranks = 2 panels x (%d x %d) ========\n\n",
              world, pt, pp);

  mhd::EnergyBudget dist_energy;
  double dist_dt = 0.0;
  std::mutex mu;
  obs::TraceRecorder rec;
  comm::Runtime rt(world);
  WallTimer timer;
  rt.run([&](comm::Communicator& w) {
    obs::ScopedRankBind bind(rec, w.rank());
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    const mhd::EnergyBudget e = solver.energies();
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      dist_energy = e;
      dist_dt = dt;
    }
  });
  const double wall = timer.seconds();
  const auto traffic = rt.traffic_total();

  std::printf("%d RK4 steps on %d ranks: %.2f s wall\n", steps, world, wall);
  std::printf("message traffic: %llu messages, %.2f MB\n",
              static_cast<unsigned long long>(traffic.messages),
              traffic.bytes / 1048576.0);
  std::printf("global energies: KE %.5e  ME %.5e  mass %.6f\n\n",
              dist_energy.kinetic, dist_energy.magnetic, dist_energy.mass);

  // Cross-check against the serial reference.
  core::SerialYinYangSolver ref(cfg);
  ref.initialize();
  for (int i = 0; i < steps; ++i) ref.step(dist_dt);
  const mhd::EnergyBudget re = ref.energies();
  const double rel =
      std::abs(re.kinetic - dist_energy.kinetic) / (re.kinetic + 1e-30);
  std::printf("serial reference KE %.5e -> relative difference %.2e %s\n",
              re.kinetic, rel,
              rel < 1e-9 ? "(trajectories match)" : "(MISMATCH!)");

  // ---- Observability exports: timeline, metrics, phase cross-check.
  const obs::MetricsSummary metrics = obs::collect_metrics(rec, traffic);
  if (obs::write_chrome_trace_file(rec, "yy_trace.json"))
    std::printf("\nwrote yy_trace.json  (open in chrome://tracing or "
                "ui.perfetto.dev)\n");
  {
    std::ofstream csv("yy_metrics.csv");
    obs::write_metrics_csv(metrics, csv);
    std::ofstream js("yy_metrics.json");
    obs::write_metrics_json(metrics, js);
    std::printf("wrote yy_metrics.csv, yy_metrics.json\n\n");
  }

  std::printf("%s\n", perf::format_measured_proginf(metrics).c_str());

  // Cross-check the measured phase split against the ES model run at
  // the same process count and per-panel grid.
  const perf::EsPerformanceModel model(perf::EarthSimulatorSpec{},
                                       perf::EsCostParams{}, 3000.0);
  const perf::RunConfig rc{world, cfg.nr, cfg.nt_core, cfg.np_core,
                           perf::Parallelization::flat_mpi};
  std::printf("%s\n", perf::format_phase_report(metrics, model, rc).c_str());
  return 0;
}

/// Flow streamlines of the developed convection state — the
/// visualization style of the paper's Fig. 2(a)/(b), where flow
/// structures are rendered as lines that cross the Yin-Yang internal
/// border without any seam.  Writes streamlines.csv (line, x, y, z) for
/// plotting, plus a meridional temperature section (meridional.ppm).
#include <cstdio>
#include <cstdlib>

#include "core/serial_solver.hpp"
#include "io/fieldline.hpp"
#include "io/slice.hpp"
#include "mhd/derived.hpp"

using namespace yy;
using yinyang::Panel;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 250;

  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.eq.mu = 1.5e-3;
  cfg.eq.kappa = 1.5e-3;
  cfg.eq.eta = 1.5e-3;
  cfg.eq.g0 = 3.0;
  cfg.eq.omega = {0.0, 0.0, 15.0};
  cfg.thermal = {2.5, 1.0};
  cfg.ic.perturb_amp = 2e-2;

  std::printf("== Flow streamlines across the Yin-Yang border =================\n");
  core::SerialYinYangSolver solver(cfg);
  solver.initialize();
  solver.run_steps(steps);
  std::printf("ran %d steps to t = %.4f (KE %.3e)\n", steps, solver.time(),
              solver.energies().kinetic);

  // Velocity on both panels.
  const SphericalGrid& g = solver.grid();
  Field3 vy[3], vg[3];
  for (int i = 0; i < 3; ++i) {
    vy[i] = Field3(g.Nr(), g.Nt(), g.Np());
    vg[i] = Field3(g.Nr(), g.Nt(), g.Np());
  }
  Field3 t_yin(g.Nr(), g.Nt(), g.Np()), t_yang(g.Nr(), g.Nt(), g.Np());
  mhd::velocity_and_temperature(solver.panel(Panel::yin), vy[0], vy[1], vy[2],
                                t_yin, g.full());
  mhd::velocity_and_temperature(solver.panel(Panel::yang), vg[0], vg[1], vg[2],
                                t_yang, g.full());

  io::SphereSampler sampler(g, solver.geometry());
  io::TraceOptions opt;
  opt.step = 0.01;
  opt.max_steps = 600;
  opt.r_inner = cfg.shell.r_inner + 0.01;
  opt.r_outer = cfg.shell.r_outer - 0.01;
  const double r_seed = 0.5 * (cfg.shell.r_inner + cfg.shell.r_outer);
  const bool ok = io::trace_ring_to_csv(
      sampler, {&vy[0], &vy[1], &vy[2]}, {&vg[0], &vg[1], &vg[2]}, r_seed, 12,
      opt, "streamlines.csv");
  std::printf("%s streamlines.csv (12 seeds on the mid-depth equator)\n",
              ok ? "wrote" : "FAILED to write");

  const io::MeridionalSlice mer = io::sample_meridional_scalar(
      sampler, t_yin, t_yang, cfg.shell.r_inner, cfg.shell.r_outer, 0.0, 32,
      64);
  io::write_meridional_ppm(mer, "meridional.ppm", 400);
  std::printf("wrote meridional.ppm (temperature section through the axis)\n");
  return 0;
}

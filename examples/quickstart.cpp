/// Quickstart: build a small Yin-Yang geodynamo, run a few dozen steps,
/// watch the energy budget.  This is the 60-second tour of the public
/// API — grid/geometry configuration, the serial whole-sphere solver,
/// CFL stepping and global diagnostics.
#include <cstdio>

#include "core/serial_solver.hpp"

int main() {
  using namespace yy;

  // 1. Describe the run: resolution, shell geometry, physics.
  core::SimulationConfig cfg;
  cfg.nr = 17;        // radial nodes (the "vectorized" direction)
  cfg.nt_core = 17;   // colatitude nodes across the 90-degree core span
  cfg.np_core = 49;   // longitude nodes across the 270-degree core span
  cfg.eq.mu = 2e-3;   // viscosity
  cfg.eq.kappa = 2e-3;  // thermal conductivity
  cfg.eq.eta = 2e-3;  // electrical resistivity
  cfg.eq.g0 = 2.0;    // central gravity strength, g = -g0/r^2 r_hat
  cfg.eq.omega = {0.0, 0.0, 10.0};  // rotation axis = z (Yin frame)
  cfg.thermal = {2.0, 1.0};         // hot inner sphere, cold outer
  cfg.ic.perturb_amp = 1e-2;        // random temperature perturbation
  cfg.ic.seed_b_amp = 1e-4;         // random magnetic seed (paper SIII)

  // 2. The solver owns both Yin and Yang panels and their coupling.
  core::SerialYinYangSolver solver(cfg);
  solver.initialize();

  std::printf("Yin-Yang geodynamo: %d x %d x %d nodes per panel (x2 panels)\n",
              cfg.nr, solver.geometry().nt(), solver.geometry().np());
  std::printf("minimal overlap of the two panels: %.1f%% of the sphere\n\n",
              100.0 * yinyang::ComponentGeometry::minimal_overlap_ratio());

  // 3. March in time at the CFL-stable step; print the global budget.
  std::printf("%8s %12s %14s %14s %12s\n", "step", "time", "kinetic",
              "magnetic", "mass");
  for (int burst = 0; burst < 5; ++burst) {
    solver.run_steps(10);
    const mhd::EnergyBudget e = solver.energies();
    std::printf("%8lld %12.5f %14.5e %14.5e %12.6f\n", solver.steps_taken(),
                solver.time(), e.kinetic, e.magnetic, e.mass);
  }

  // 4. The overlap region holds a "double solution" (paper SII); its
  //    mismatch is bounded by the discretization error.
  const auto [rms, mx] = solver.double_solution_error(/*pressure*/ 4);
  std::printf("\ndouble-solution consistency in the overlap: rms %.2e, max %.2e\n",
              rms, mx);
  std::printf("done.\n");
  return 0;
}

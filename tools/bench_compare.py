#!/usr/bin/env python3
"""Compare a fresh yy-bench-1 result against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json
    tools/bench_compare.py --report BASELINE.json CURRENT.json
    tools/bench_compare.py --selftest

--report renders the same comparison as a markdown table (metric,
baseline, current, delta, band verdict) for pasting into a PR or log;
the exit status is the same as the plain comparison.

Each baseline metric carries its own tolerance band, recorded when the
baseline was written (see bench/bench_json.hpp):

    allowed = max(tol_abs, |value| * tol_rel)
    direction "min"  -> regression if current < value - allowed
    direction "max"  -> regression if current > value + allowed
    direction "band" -> regression if |current - value| > allowed

Exit status: 0 when every baseline metric is present and within band,
1 on any regression, missing metric, or schema mismatch.
"""

import json
import sys

SCHEMA = "yy-bench-1"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: expected schema {SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    return doc


def metric_value(name, entry, origin):
    """The metric's recorded value, or ValueError with a diagnostic
    naming the document and metric instead of a bare KeyError."""
    if not isinstance(entry, dict) or "value" not in entry:
        raise ValueError(f"{origin} metric {name!r} is malformed: expected "
                         f"an object with a 'value' key, got {entry!r}")
    return entry["value"]


def check_metric(name, base, cur_value):
    """Returns (ok, description)."""
    value = metric_value(name, base, "baseline")
    allowed = max(base.get("tol_abs", 0.0),
                  abs(value) * base.get("tol_rel", 0.0))
    direction = base.get("direction", "band")
    if direction == "min":
        ok = cur_value >= value - allowed
        bound = f">= {value - allowed:.6g}"
    elif direction == "max":
        ok = cur_value <= value + allowed
        bound = f"<= {value + allowed:.6g}"
    else:
        ok = abs(cur_value - value) <= allowed
        bound = f"within {value:.6g} +/- {allowed:.6g}"
    return ok, (f"{name}: baseline {value:.6g}, current {cur_value:.6g} "
                f"({direction}: {bound})")


def compare(baseline, current):
    """Compares two parsed documents; returns the number of failures."""
    failures = 0
    if baseline.get("name") != current.get("name"):
        print(f"FAIL  bench name mismatch: baseline "
              f"{baseline.get('name')!r} vs current {current.get('name')!r}")
        failures += 1
    cur_metrics = current.get("metrics", {})
    for name, base in baseline.get("metrics", {}).items():
        if name not in cur_metrics:
            print(f"FAIL  {name}: missing from current result")
            failures += 1
            continue
        try:
            cur = metric_value(name, cur_metrics[name], "current")
            ok, desc = check_metric(name, base, cur)
        except ValueError as e:
            print(f"FAIL  {e}")
            failures += 1
            continue
        print(("ok    " if ok else "FAIL  ") + desc)
        if not ok:
            failures += 1
    return failures


def report(baseline, current):
    """Markdown table of metric deltas; returns (text, failures)."""
    failures = 0
    lines = [f"### {baseline.get('name')}: current vs baseline", "",
             "| metric | baseline | current | delta | direction | status |",
             "|---|---:|---:|---:|---|---|"]
    cur_metrics = current.get("metrics", {})
    for name, base in baseline.get("metrics", {}).items():
        direction = base.get("direction", "band")
        try:
            value = metric_value(name, base, "baseline")
        except ValueError:
            lines.append(f"| {name} | malformed | - | - | "
                         f"{direction} | MALFORMED |")
            failures += 1
            continue
        if name not in cur_metrics:
            lines.append(f"| {name} | {value:.6g} | - | - | "
                         f"{direction} | MISSING |")
            failures += 1
            continue
        try:
            cur = metric_value(name, cur_metrics[name], "current")
        except ValueError:
            lines.append(f"| {name} | {value:.6g} | malformed | - | "
                         f"{direction} | MALFORMED |")
            failures += 1
            continue
        ok, _ = check_metric(name, base, cur)
        delta = cur - value
        pct = f" ({100.0 * delta / value:+.1f}%)" if value else ""
        lines.append(f"| {name} | {value:.6g} | {cur:.6g} | "
                     f"{delta:+.6g}{pct} | {direction} | "
                     f"{'ok' if ok else 'FAIL'} |")
        if not ok:
            failures += 1
    return "\n".join(lines), failures


def selftest():
    """Exercises every direction both ways without touching the disk."""
    base = {
        "schema": SCHEMA, "name": "selftest",
        "metrics": {
            "rate": {"value": 100.0, "tol_rel": 0.10, "tol_abs": 0.0,
                     "direction": "min"},
            "cost": {"value": 2.0, "tol_rel": 0.0, "tol_abs": 0.5,
                     "direction": "max"},
            "share": {"value": 0.80, "tol_rel": 0.0, "tol_abs": 0.05,
                      "direction": "band"},
        },
    }

    def current(rate, cost, share):
        return {"schema": SCHEMA, "name": "selftest",
                "metrics": {"rate": {"value": rate},
                            "cost": {"value": cost},
                            "share": {"value": share}}}

    cases = [
        (current(100.0, 2.0, 0.80), 0),   # identical
        (current(91.0, 2.4, 0.84), 0),    # inside every band
        (current(89.0, 2.0, 0.80), 1),    # rate regressed past tol_rel
        (current(100.0, 2.6, 0.80), 1),   # cost regressed past tol_abs
        (current(100.0, 2.0, 0.86), 1),   # share drifted up past band
        (current(100.0, 2.0, 0.74), 1),   # share drifted down past band
        (current(120.0, 1.0, 0.80), 0),   # improvements never fail min/max
        (current(89.0, 2.6, 0.80), 2),    # two independent regressions
    ]
    for i, (cur, want) in enumerate(cases):
        got = compare(base, cur)
        if got != want:
            print(f"selftest case {i}: expected {want} failures, got {got}")
            return 1
    missing = {"schema": SCHEMA, "name": "selftest",
               "metrics": {"rate": {"value": 100.0}}}
    if compare(base, missing) != 2:
        print("selftest: missing metrics must fail")
        return 1

    # A metric present but without a "value" key (truncated or
    # hand-edited result) must fail with a diagnostic, not a KeyError.
    malformed = {"schema": SCHEMA, "name": "selftest",
                 "metrics": {"rate": {"val": 100.0},
                             "cost": "2.0",
                             "share": {"value": 0.80}}}
    try:
        if compare(base, malformed) != 2:
            print("selftest: malformed current metrics must fail")
            return 1
    except KeyError:
        print("selftest: malformed current metric raised KeyError")
        return 1
    bad_base = {"schema": SCHEMA, "name": "selftest",
                "metrics": {"rate": {"tol_rel": 0.1, "direction": "min"}}}
    try:
        if compare(bad_base, current(100.0, 2.0, 0.80)) != 1:
            print("selftest: malformed baseline metric must fail")
            return 1
    except KeyError:
        print("selftest: malformed baseline metric raised KeyError")
        return 1

    # --report mode: the same verdicts rendered as a markdown table.
    text, fails = report(base, current(89.0, 2.4, 0.80))
    if fails != 1:
        print(f"selftest: report expected 1 failure, got {fails}")
        return 1
    if "| rate | 100 | 89 |" not in text or "FAIL" not in text:
        print("selftest: report table missing the failing rate row:\n" + text)
        return 1
    if text.count("| ok |") != 2:
        print("selftest: report must mark the two passing metrics ok:\n"
              + text)
        return 1
    if not text.splitlines()[2].startswith("| metric |"):
        print("selftest: report header malformed:\n" + text)
        return 1
    text, fails = report(base, missing)
    if fails != 2 or "MISSING" not in text:
        print("selftest: report must flag missing metrics:\n" + text)
        return 1
    text, fails = report(base, malformed)
    if fails != 2 or "MALFORMED" not in text:
        print("selftest: report must flag malformed metrics:\n" + text)
        return 1
    print("selftest ok")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    as_report = len(argv) == 4 and argv[1] == "--report"
    if not as_report and len(argv) != 3:
        print(__doc__.strip())
        return 2
    try:
        baseline = load(argv[-2])
        current = load(argv[-1])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"FAIL  {e}")
        return 1
    if as_report:
        text, failures = report(baseline, current)
        print(text)
        return 1 if failures else 0
    print(f"== {baseline.get('name')}: {argv[2]} vs baseline {argv[1]}")
    failures = compare(baseline, current)
    print(f"{'REGRESSION' if failures else 'ok'}: "
          f"{failures} failing metric(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# One-command perf-regression entry point (the bench-side companion of
# tools/sanitize.sh): builds Release, runs bench/baseline_runner, and
# either records the committed BENCH_*.json baselines or compares the
# fresh run against them with tools/bench_compare.py.
#
# Usage: tools/bench_baseline.sh [check|record]   (default: check)
#   check   run the benches, diff against committed BENCH_*.json,
#           exit nonzero on any out-of-tolerance regression
#   record  run the benches and overwrite the committed baselines
set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-check}
case "${mode}" in check|record) ;; *)
  echo "usage: tools/bench_baseline.sh [check|record]" >&2; exit 2;;
esac

build=build-bench
cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${build}" -j "$(nproc)" --target baseline_runner > /dev/null

out=$(mktemp -d)
trap 'rm -rf "${out}"' EXIT
# Run the bench explicitly guarded: under `set -e` a bare invocation
# would exit the script on failure without saying which stage died,
# and a later `cp` in record mode could then canonize partial output.
if "./${build}/bench/baseline_runner" --out "${out}"; then :; else
  rc=$?
  echo "FAIL  baseline_runner exited ${rc}; no baselines ${mode}ed" >&2
  exit "${rc}"
fi

if [ "${mode}" = record ]; then
  cp "${out}"/BENCH_*.json .
  echo "recorded: $(ls BENCH_*.json | tr '\n' ' ')"
  exit 0
fi

status=0
for fresh in "${out}"/BENCH_*.json; do
  base=$(basename "${fresh}")
  if [ ! -f "${base}" ]; then
    echo "FAIL  no committed baseline ${base} (run: tools/bench_baseline.sh record)"
    status=1
    continue
  fi
  python3 tools/bench_compare.py "${base}" "${fresh}" || status=1
done
exit "${status}"

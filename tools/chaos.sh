#!/usr/bin/env bash
# Scripted rank-death chaos drill: runs parallel_dynamo with an
# injected mid-run rank death at several points of the run (early,
# after the first checkpoint, late) and verifies each run survives the
# loss — shrinks the world, restores the dead rank's patch from its
# buddy's diskless replica, completes, and still matches the serial
# reference trajectory.  Runs in a scratch directory so checkpoint sets
# and trace/metrics artifacts never pollute the repo.
# Usage: tools/chaos.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

cmake --build "${build}" -j "$(nproc)" --target parallel_dynamo > /dev/null
bin="$(pwd)/${build}/examples/parallel_dynamo"

scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT
cd "${scratch}"

steps=20
fail=0
for death in 3 7 13; do
  echo "== chaos drill: 8 ranks, rank death after step ${death}/${steps} =="
  rm -rf yy_checkpoints
  # Explicit capture: under `set -e` a bare out=$(...) would kill the
  # whole script on a nonzero inner exit with no diagnostic and no
  # remaining drills; instead record the failure and keep drilling.
  # The display grep gets `|| true` so an output with none of the
  # expected lines cannot abort the script either — the -q checks
  # below are what decide pass/fail.
  if ! out="$("${bin}" 2 2 "${steps}" --chaos "rank-death:${death}")"; then
    echo "FAIL  parallel_dynamo exited nonzero (death step ${death})" >&2
    fail=1
    echo
    continue
  fi
  echo "${out}" | grep -E "run control|rank loss|relative difference" || true
  echo "${out}" | grep -q "run control: completed" || fail=1
  echo "${out}" | grep -q "rank loss survived: 1 shrink" || fail=1
  echo "${out}" | grep -q "(trajectories match)" || fail=1
  echo
done

if [ "${fail}" -ne 0 ]; then
  echo "CHAOS DRILL FAILED: a run did not survive its rank death" >&2
  exit 1
fi
echo "chaos drill passed: every rank death was survived with a shrink"

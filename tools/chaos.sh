#!/usr/bin/env bash
# Scripted chaos drills: runs parallel_dynamo with injected faults and
# verifies each run survives.
#  * rank-death sweep: a mid-run rank death at several points of the
#    run (early, after the first checkpoint, late); the survivors must
#    shrink the world, restore the dead rank's patch from its buddy's
#    diskless replica, complete, and still match the serial reference.
#  * SDC sweep: a silent in-memory bit flip at varying steps x audit
#    cadences; each run must detect the flip within one audit cadence,
#    repair from the buddy replicas with no disk rewind, and complete
#    bitwise equal to the unfaulted trajectory (the serial cross-check
#    is exactly that assertion).
# Runs in a scratch directory so checkpoint sets and trace/metrics
# artifacts never pollute the repo.
# Usage: tools/chaos.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

cmake --build "${build}" -j "$(nproc)" --target parallel_dynamo > /dev/null
bin="$(pwd)/${build}/examples/parallel_dynamo"

scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT
cd "${scratch}"

steps=20
fail=0
for death in 3 7 13; do
  echo "== chaos drill: 8 ranks, rank death after step ${death}/${steps} =="
  rm -rf yy_checkpoints
  # Explicit capture: under `set -e` a bare out=$(...) would kill the
  # whole script on a nonzero inner exit with no diagnostic and no
  # remaining drills; instead record the failure and keep drilling.
  # The display grep gets `|| true` so an output with none of the
  # expected lines cannot abort the script either — the -q checks
  # below are what decide pass/fail.
  if ! out="$("${bin}" 2 2 "${steps}" --chaos "rank-death:${death}")"; then
    echo "FAIL  parallel_dynamo exited nonzero (death step ${death})" >&2
    fail=1
    echo
    continue
  fi
  echo "${out}" | grep -E "run control|rank loss|relative difference" || true
  echo "${out}" | grep -q "run control: completed" || fail=1
  echo "${out}" | grep -q "rank loss survived: 1 shrink" || fail=1
  echo "${out}" | grep -q "(trajectories match)" || fail=1
  echo
done

if [ "${fail}" -ne 0 ]; then
  echo "CHAOS DRILL FAILED: a run did not survive its rank death" >&2
  exit 1
fi
echo "chaos drill passed: every rank death was survived with a shrink"
echo

# ---- SDC sweep: bitflip step x audit cadence.  The flip step must be
# a multiple of the cadence so the corruption lands on an audited
# boundary (an unaligned flip is baked into the next reference refresh
# and only the physics probes could see it — the binary rejects such
# specs outright).
for spec in 4:2 6:3 8:4; do
  flip="${spec%%:*}"
  cadence="${spec##*:}"
  echo "== chaos drill: 8 ranks, bit flip after step ${flip}/${steps}," \
       "audit cadence ${cadence} =="
  rm -rf yy_checkpoints
  if ! out="$("${bin}" 2 2 "${steps}" --chaos "bitflip:${spec}")"; then
    echo "FAIL  parallel_dynamo exited nonzero (bitflip ${spec})" >&2
    fail=1
    echo
    continue
  fi
  echo "${out}" | grep -E "run control|sdc defense|relative difference" || true
  echo "${out}" | grep -q "run control: completed" || fail=1
  echo "${out}" | grep -q "sdc defense: bit flip detected and repaired" || fail=1
  echo "${out}" | grep -q "(trajectories match)" || fail=1
  echo
done

if [ "${fail}" -ne 0 ]; then
  echo "CHAOS DRILL FAILED: a run did not repair its bit flip" >&2
  exit 1
fi
echo "chaos drill passed: every bit flip was detected and repaired"

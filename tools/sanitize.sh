#!/usr/bin/env bash
# Builds the sanitizer-labelled test suites under ThreadSanitizer and
# AddressSanitizer+UBSan and runs `ctest -L sanitize` in each tree
# (this includes the `resilience` fault-injection/recovery suite and
# the `counters` hwcounter/roofline suite, which are double-labelled
# with sanitize).  YY_COUNTERS=software keeps the counter tests on the
# portable fallback under the sanitizers: the interceptors make
# perf_event syscall timing meaningless, and the fallback path is the
# one whose exactness is load-bearing.
# Usage: tools/sanitize.sh [thread|address]...   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

modes=("$@")
[ ${#modes[@]} -eq 0 ] && modes=(thread address)

for mode in "${modes[@]}"; do
  build="build-${mode}san"
  echo "== ${mode} sanitizer -> ${build} =="
  cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DYY_SANITIZE="${mode}" > /dev/null
  cmake --build "${build}" -j "$(nproc)" --target \
    test_comm test_core test_obs test_counters test_resilience test_sdc \
    test_overlap test_rhs_fused test_rhs_simd test_config_fuzz > /dev/null
  (cd "${build}" &&
    YY_COUNTERS=software ctest -L 'sanitize|resilience|sdc|counters' \
      --output-on-failure)
done

# Scalar-fallback leg: the tree with -DYY_SIMD=OFF (no native ISA flags,
# compiled_max_width() == 1) must still pass the kernel equivalence
# suites — the SIMD backend has to stay functional, not just disabled,
# when the lanes are compiled out.
build=build-nosimd
echo "== YY_SIMD=OFF scalar fallback -> ${build} =="
cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DYY_SIMD=OFF > /dev/null
cmake --build "${build}" -j "$(nproc)" --target \
  test_rhs_fused test_rhs_simd test_config_fuzz > /dev/null
(cd "${build}" && ctest -L kernels --output-on-failure)

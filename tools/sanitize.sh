#!/usr/bin/env bash
# Builds the sanitizer-labelled test suites under ThreadSanitizer and
# AddressSanitizer+UBSan and runs `ctest -L sanitize` in each tree
# (this includes the `resilience` fault-injection/recovery suite, which
# is double-labelled sanitize;resilience).
# Usage: tools/sanitize.sh [thread|address]...   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

modes=("$@")
[ ${#modes[@]} -eq 0 ] && modes=(thread address)

for mode in "${modes[@]}"; do
  build="build-${mode}san"
  echo "== ${mode} sanitizer -> ${build} =="
  cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DYY_SANITIZE="${mode}" > /dev/null
  cmake --build "${build}" -j "$(nproc)" --target \
    test_comm test_core test_obs test_resilience test_overlap test_rhs_fused > /dev/null
  (cd "${build}" && ctest -L 'sanitize|resilience' --output-on-failure)
done

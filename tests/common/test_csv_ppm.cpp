#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/ppm.hpp"

namespace yy {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Csv, HeaderAndRowsWritten) {
  const std::string path = temp_path("t.csv");
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.row({1.0, 2.5});
    w.row({-3.0, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "-3,4");
}

TEST(Csv, VectorRowOverload) {
  const std::string path = temp_path("t2.csv");
  CsvWriter w(path, {"x", "y", "z"});
  w.row(std::vector<double>{1, 2, 3});
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(Ppm, RoundTripPixels) {
  PpmImage img(8, 4);
  img.set(3, 2, {10, 20, 30});
  const Rgb c = img.get(3, 2);
  EXPECT_EQ(c.r, 10);
  EXPECT_EQ(c.g, 20);
  EXPECT_EQ(c.b, 30);
}

TEST(Ppm, WritesValidP6Header) {
  const std::string path = temp_path("t.ppm");
  PpmImage img(5, 7, {1, 2, 3});
  ASSERT_TRUE(img.write(path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 7);
  EXPECT_EQ(maxv, 255);
}

TEST(Colormap, DivergingEndpointsAndCenter) {
  const Rgb neg = diverging_color(-1.0);
  const Rgb mid = diverging_color(0.0);
  const Rgb pos = diverging_color(1.0);
  EXPECT_GT(neg.b, neg.r);   // negative side is blue
  EXPECT_GT(pos.r, pos.b);   // positive side is red
  EXPECT_EQ(mid.r, 255);     // center is white
  EXPECT_EQ(mid.g, 255);
  EXPECT_EQ(mid.b, 255);
}

TEST(Colormap, SequentialMonotoneBrightness) {
  int prev = -1;
  for (int i = 0; i <= 10; ++i) {
    const Rgb c = sequential_color(i / 10.0);
    const int lum = c.r + c.g + c.b;
    EXPECT_GE(lum, prev);
    prev = lum;
  }
}

TEST(Colormap, InputClamped) {
  const Rgb a = diverging_color(-5.0);
  const Rgb b = diverging_color(-1.0);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.b, b.b);
}

}  // namespace
}  // namespace yy

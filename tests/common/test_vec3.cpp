#include "common/vec3.hpp"

#include <gtest/gtest.h>

namespace yy {
namespace {

TEST(Vec3, ArithmeticAndDot) {
  const Vec3 a{1, 2, 3}, b{4, -5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ(s.y, -3);
  EXPECT_DOUBLE_EQ(s.z, 9);
  EXPECT_DOUBLE_EQ(a.dot(b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ((-a).z, -3.0);
}

TEST(Vec3, CrossProductRightHanded) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  const Vec3 c = x.cross(y);
  EXPECT_DOUBLE_EQ(c.x, z.x);
  EXPECT_DOUBLE_EQ(c.y, z.y);
  EXPECT_DOUBLE_EQ(c.z, z.z);
  EXPECT_DOUBLE_EQ(y.cross(x).z, -1.0);
}

TEST(Vec3, NormOfPythagoreanTriple) {
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
}

TEST(Mat3, IdentityActsTrivially) {
  const Mat3 id = Mat3::identity();
  const Vec3 v{1.5, -2.5, 3.5};
  const Vec3 w = id * v;
  EXPECT_DOUBLE_EQ(w.x, v.x);
  EXPECT_DOUBLE_EQ(w.y, v.y);
  EXPECT_DOUBLE_EQ(w.z, v.z);
}

TEST(Mat3, MultiplyAndTranspose) {
  Mat3 a;  // permutation (x,y,z) -> (y,z,x)
  a.m[0][1] = 1;
  a.m[1][2] = 1;
  a.m[2][0] = 1;
  const Vec3 v{1, 2, 3};
  const Vec3 w = a * v;
  EXPECT_DOUBLE_EQ(w.x, 2);
  EXPECT_DOUBLE_EQ(w.y, 3);
  EXPECT_DOUBLE_EQ(w.z, 1);
  // aᵀ a = identity for a permutation.
  const Mat3 ata = a.transpose() * a;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(ata.m[i][j], i == j ? 1.0 : 0.0);
}

}  // namespace
}  // namespace yy

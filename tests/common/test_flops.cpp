#include "common/flops.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace yy {
namespace {

TEST(Flops, AddAccumulatesOnThisThread) {
  flops::global_reset();
  flops::add(100);
  flops::add(23);
  EXPECT_EQ(flops::count(), 123u);
}

TEST(Flops, ResetPreservesGlobalAccounting) {
  flops::global_reset();
  flops::add(50);
  flops::reset();
  EXPECT_EQ(flops::count(), 0u);
  EXPECT_EQ(flops::global_count(), 50u);  // folded into retired pool
}

TEST(Flops, ScopeMeasuresDelta) {
  flops::global_reset();
  flops::add(10);
  flops::Scope scope;
  flops::add(7);
  EXPECT_EQ(scope.elapsed(), 7u);
}

TEST(Flops, WorkerThreadsDrainIntoGlobalOnExit) {
  flops::global_reset();
  std::thread a([] { flops::add(1000); });
  std::thread b([] { flops::add(234); });
  a.join();
  b.join();
  EXPECT_EQ(flops::global_count(), 1234u);
}

TEST(Flops, GlobalResetZeroesEverything) {
  flops::add(5);
  flops::global_reset();
  EXPECT_EQ(flops::count(), 0u);
  EXPECT_EQ(flops::global_count(), 0u);
}

}  // namespace
}  // namespace yy

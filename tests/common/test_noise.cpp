#include "common/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy {
namespace {

TEST(HashNoise, DeterministicPureFunction) {
  EXPECT_DOUBLE_EQ(hash_noise(42, 0, 0, 1, 2, 3), hash_noise(42, 0, 0, 1, 2, 3));
}

TEST(HashNoise, InHalfOpenSymmetricInterval) {
  for (int i = 0; i < 1000; ++i) {
    const double v = hash_noise(1, 0, 0, i, 2 * i, 3 * i);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(HashNoise, SensitiveToEveryArgument) {
  const double base = hash_noise(5, 1, 0, 10, 20, 30);
  EXPECT_NE(base, hash_noise(6, 1, 0, 10, 20, 30));
  EXPECT_NE(base, hash_noise(5, 2, 0, 10, 20, 30));
  EXPECT_NE(base, hash_noise(5, 1, 1, 10, 20, 30));
  EXPECT_NE(base, hash_noise(5, 1, 0, 11, 20, 30));
  EXPECT_NE(base, hash_noise(5, 1, 0, 10, 21, 30));
  EXPECT_NE(base, hash_noise(5, 1, 0, 10, 20, 31));
}

TEST(HashNoise, ApproximatelyZeroMean) {
  double sum = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) sum += hash_noise(3, 0, 0, i, j, i + j);
  EXPECT_NEAR(sum / (n * n), 0.0, 0.02);
}

TEST(HashNoise, NeighbourNodesDecorrelated) {
  // Lag-1 autocorrelation along one index should be tiny.
  double c = 0.0, v = 0.0;
  const int n = 20000;
  double prev = hash_noise(8, 0, 0, 0, 5, 5);
  for (int i = 1; i < n; ++i) {
    const double cur = hash_noise(8, 0, 0, i, 5, 5);
    c += prev * cur;
    v += cur * cur;
    prev = cur;
  }
  EXPECT_LT(std::abs(c / v), 0.03);
}

}  // namespace
}  // namespace yy

#include "common/array3d.hpp"

#include <gtest/gtest.h>

namespace yy {
namespace {

TEST(Array3D, DefaultIsEmpty) {
  Array3D<double> a;
  EXPECT_EQ(a.nr(), 0);
  EXPECT_EQ(a.size(), 0u);
}

TEST(Array3D, ShapeAndFillValue) {
  Field3 a(3, 4, 5, 2.5);
  EXPECT_EQ(a.nr(), 3);
  EXPECT_EQ(a.nt(), 4);
  EXPECT_EQ(a.np(), 5);
  EXPECT_EQ(a.size(), 60u);
  EXPECT_DOUBLE_EQ(a(2, 3, 4), 2.5);
}

TEST(Array3D, RadialIndexIsUnitStride) {
  Field3 a(4, 3, 2);
  EXPECT_EQ(a.index(1, 0, 0), a.index(0, 0, 0) + 1);
  EXPECT_EQ(a.index(0, 1, 0), a.index(0, 0, 0) + 4u);
  EXPECT_EQ(a.index(0, 0, 1), a.index(0, 0, 0) + 12u);
}

TEST(Array3D, LineIsContiguousRadialSpan) {
  Field3 a(5, 2, 2);
  for (int ir = 0; ir < 5; ++ir) a(ir, 1, 1) = 10.0 + ir;
  auto line = a.line(1, 1);
  ASSERT_EQ(line.size(), 5u);
  for (int ir = 0; ir < 5; ++ir) EXPECT_DOUBLE_EQ(line[static_cast<std::size_t>(ir)], 10.0 + ir);
}

TEST(Array3D, WriteReadRoundTrip) {
  Field3 a(3, 3, 3);
  double v = 0.0;
  for (int ip = 0; ip < 3; ++ip)
    for (int it = 0; it < 3; ++it)
      for (int ir = 0; ir < 3; ++ir) a(ir, it, ip) = v += 1.0;
  v = 0.0;
  for (int ip = 0; ip < 3; ++ip)
    for (int it = 0; it < 3; ++it)
      for (int ir = 0; ir < 3; ++ir) EXPECT_DOUBLE_EQ(a(ir, it, ip), v += 1.0);
}

TEST(Array3D, FillOverwritesEverything) {
  Field3 a(2, 2, 2, 1.0);
  a.fill(-3.0);
  for (double x : a.flat()) EXPECT_DOUBLE_EQ(x, -3.0);
}

TEST(Array3D, SameShapeComparesAllDims) {
  Field3 a(2, 3, 4), b(2, 3, 4), c(2, 3, 5);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

}  // namespace
}  // namespace yy

#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace yy {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, MeanOfUniformNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SymmetricMeanNearZero) {
  Rng r(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.symmetric(2.0);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

}  // namespace
}  // namespace yy

/// StepStats / StepStatsRing / aggregate_step unit tests, plus the
/// RankTrace span-budget cap and the enum<->name-table sync guards the
/// static_asserts in trace.hpp / events.hpp pin at compile time.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/stepstats.hpp"
#include "obs/trace.hpp"

using namespace yy::obs;

namespace {

StepStats make_step(std::int64_t step, int rank) {
  StepStats s;
  s.step = step;
  s.dt = 0.5;
  s.cfl_limit_dt = 0.25;
  s.wall_seconds = 0.02;
  // Compute grows with rank (rank 3 is the straggler); the halo wait
  // shrinks to match, the way a bulk-synchronous step really behaves.
  s.seconds[static_cast<std::size_t>(Phase::rhs)] = 1e-3 * (rank + 1);
  s.seconds[static_cast<std::size_t>(Phase::halo_wait)] = 1e-2 - 1e-3 * rank;
  s.bytes[static_cast<std::size_t>(Phase::halo_wait)] =
      1000 * static_cast<std::uint64_t>(rank);
  s.event_delta[static_cast<std::size_t>(Event::comm_timeout)] =
      static_cast<std::uint64_t>(rank);
  s.spans_dropped = static_cast<std::uint64_t>(rank);
  return s;
}

TEST(StepStats, WaitPhaseClassification) {
  EXPECT_TRUE(is_wait_phase(Phase::halo_wait));
  EXPECT_TRUE(is_wait_phase(Phase::overset_wait));
  EXPECT_TRUE(is_wait_phase(Phase::reduce));
  EXPECT_FALSE(is_wait_phase(Phase::rhs));
  EXPECT_FALSE(is_wait_phase(Phase::rk4_stage));
  EXPECT_FALSE(is_wait_phase(Phase::boundary));
  EXPECT_FALSE(is_wait_phase(Phase::io));
  EXPECT_FALSE(is_wait_phase(Phase::other));
}

TEST(StepStats, ComputeWaitSplit) {
  const StepStats s = make_step(0, 2);
  EXPECT_DOUBLE_EQ(s.compute_seconds(), 3e-3);
  EXPECT_DOUBLE_EQ(s.wait_seconds(), 8e-3);
  EXPECT_DOUBLE_EQ(s.phase_seconds(), s.compute_seconds() + s.wait_seconds());
}

TEST(StepStats, PackUnpackRoundTrip) {
  StepStats s;
  s.step = 123456789;
  s.dt = 1.25e-3;
  s.cfl_limit_dt = 2.5e-3;
  s.wall_seconds = 0.75;
  s.spans_dropped = 4242;
  for (int p = 0; p < kNumPhases; ++p) {
    s.seconds[static_cast<std::size_t>(p)] = 0.001 * (p + 1);
    s.bytes[static_cast<std::size_t>(p)] = 1000u * (p + 7);
    CounterValues& c = s.ctr[static_cast<std::size_t>(p)];
    c.cycles = 1000000u * (p + 1) + 1;
    c.instructions = 2000000u * (p + 1) + 3;
    c.cache_refs = 30000u * (p + 1);
    c.cache_misses = 4000u * (p + 1);
    c.hw_flops = 500000u * (p + 1);
    c.flops = 600000u * (p + 1) + 7;
  }
  for (int e = 0; e < kNumEvents; ++e)
    s.event_delta[static_cast<std::size_t>(e)] = 10u * e + 1;

  double buf[kStepStatsDoubles];
  pack_step_stats(s, buf);
  const StepStats r = unpack_step_stats(buf);
  EXPECT_EQ(r.step, s.step);
  EXPECT_DOUBLE_EQ(r.dt, s.dt);
  EXPECT_DOUBLE_EQ(r.cfl_limit_dt, s.cfl_limit_dt);
  EXPECT_DOUBLE_EQ(r.wall_seconds, s.wall_seconds);
  EXPECT_EQ(r.spans_dropped, s.spans_dropped);
  EXPECT_EQ(r.seconds, s.seconds);
  EXPECT_EQ(r.bytes, s.bytes);
  EXPECT_EQ(r.event_delta, s.event_delta);
  for (int p = 0; p < kNumPhases; ++p) {
    const CounterValues& a = r.ctr[static_cast<std::size_t>(p)];
    const CounterValues& b = s.ctr[static_cast<std::size_t>(p)];
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cache_refs, b.cache_refs);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.hw_flops, b.hw_flops);
    EXPECT_EQ(a.flops, b.flops);
  }
}

TEST(StepStatsRing, RetainsNewestOnceFull) {
  StepStatsRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) ring.push(make_step(i, 0));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.from_oldest(i).step, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(ring.from_newest(i).step, static_cast<std::int64_t>(9 - i));
  }
  EXPECT_THROW(ring.from_oldest(4), std::out_of_range);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_pushed(), 0u);
}

TEST(StepStatsRing, InOrderBeforeWrap) {
  StepStatsRing ring(8);
  for (int i = 0; i < 3; ++i) ring.push(make_step(i, 0));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.from_oldest(0).step, 0);
  EXPECT_EQ(ring.from_newest(0).step, 2);
}

TEST(AggregateStep, SkewedRanksImbalanceAndStraggler) {
  std::vector<StepStats> per_rank;
  for (int r = 0; r < 4; ++r) per_rank.push_back(make_step(7, r));
  const StepAgg a = aggregate_step(per_rank);

  EXPECT_EQ(a.step, 7);
  EXPECT_DOUBLE_EQ(a.dt, 0.5);
  EXPECT_DOUBLE_EQ(a.cfl_limit_dt, 0.25);
  EXPECT_EQ(a.ranks, 4);

  // Compute per rank is 1,2,3,4 ms: mean 2.5, max 4 -> imbalance 1.6,
  // straggler is world rank 3.
  EXPECT_NEAR(a.compute_mean_s, 2.5e-3, 1e-12);
  EXPECT_NEAR(a.compute_max_s, 4e-3, 1e-12);
  EXPECT_NEAR(a.imbalance, 1.6, 1e-12);
  EXPECT_EQ(a.straggler, 3);

  const PhaseAgg& rhs = a.phase_agg(Phase::rhs);
  EXPECT_NEAR(rhs.min_s, 1e-3, 1e-12);
  EXPECT_NEAR(rhs.mean_s, 2.5e-3, 1e-12);
  EXPECT_NEAR(rhs.max_s, 4e-3, 1e-12);
  EXPECT_NEAR(rhs.sum_s, 1e-2, 1e-12);
  EXPECT_EQ(rhs.argmax_rank, 3);

  // Halo wait shrinks with rank: max (and argmax) is rank 0; bytes sum.
  const PhaseAgg& halo = a.phase_agg(Phase::halo_wait);
  EXPECT_NEAR(halo.min_s, 7e-3, 1e-12);
  EXPECT_NEAR(halo.max_s, 1e-2, 1e-12);
  EXPECT_EQ(halo.argmax_rank, 0);
  EXPECT_EQ(halo.bytes, 6000u);

  EXPECT_NEAR(a.wait_mean_s, 8.5e-3, 1e-12);
  EXPECT_NEAR(a.wait_max_s, 1e-2, 1e-12);
  EXPECT_NEAR(a.wall_max_s, 0.02, 1e-12);
  EXPECT_GT(a.wait_fraction(), 0.5);

  // Events are process-global counters: cross-rank reduction is max,
  // not sum; span drops are genuinely per-rank and do sum.
  EXPECT_EQ(a.event_delta[static_cast<std::size_t>(Event::comm_timeout)], 3u);
  EXPECT_EQ(a.spans_dropped, 6u);
}

TEST(AggregateStep, SingleRankIsIdentity) {
  const StepAgg a = aggregate_step({make_step(3, 1)});
  EXPECT_EQ(a.ranks, 1);
  EXPECT_DOUBLE_EQ(a.imbalance, 1.0);
  EXPECT_EQ(a.straggler, 0);
  EXPECT_DOUBLE_EQ(a.compute_mean_s, a.compute_max_s);
}

TEST(AggregateStep, EmptyThrows) {
  EXPECT_THROW(aggregate_step({}), std::invalid_argument);
}

TEST(AggregateStep, ZeroComputeHasUnitImbalance) {
  StepStats s;
  s.step = 0;
  const StepAgg a = aggregate_step({s, s});
  EXPECT_DOUBLE_EQ(a.imbalance, 1.0);
}

TEST(SpanBudget, CapsBufferAndCountsEvictions) {
  TraceRecorder rec;
  RankTrace& t = rec.rank_trace(0);
  EXPECT_EQ(t.span_budget(), 0u);  // unbounded by default (seed behaviour)
  t.set_span_budget(16);
  for (std::int64_t i = 0; i < 100; ++i)
    t.record(Phase::rhs, i, i + 1, 0);
  EXPECT_LE(t.spans().size(), 16u);
  EXPECT_EQ(t.recorded_total(), 100u);
  EXPECT_EQ(t.evicted(), 100u - t.spans().size());
  EXPECT_GT(t.evicted(), 0u);
  // The survivors are exactly the newest recorded_total - evicted.
  EXPECT_EQ(t.spans().front().t0_ns,
            static_cast<std::int64_t>(t.evicted()));
  EXPECT_EQ(t.spans().back().t0_ns, 99);
}

TEST(SpanBudget, UnboundedKeepsEverything) {
  TraceRecorder rec;
  RankTrace& t = rec.rank_trace(0);
  for (std::int64_t i = 0; i < 5000; ++i)
    t.record(Phase::other, i, i + 1, 0);
  EXPECT_EQ(t.spans().size(), 5000u);
  EXPECT_EQ(t.evicted(), 0u);
}

TEST(EnumSync, PhaseNamesDistinctAndValid) {
  std::set<std::string> names;
  for (int p = 0; p < kNumPhases; ++p) {
    const char* n = phase_name(static_cast<Phase>(p));
    ASSERT_NE(n, nullptr);
    EXPECT_GT(std::strlen(n), 0u);
    EXPECT_STRNE(n, "?");
    names.insert(n);
  }
  // A duplicated table entry would collapse the set.
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumPhases));
}

TEST(EnumSync, EventNamesDistinctAndValid) {
  std::set<std::string> names;
  for (int e = 0; e < kNumEvents; ++e) {
    const char* n = event_name(static_cast<Event>(e));
    ASSERT_NE(n, nullptr);
    EXPECT_GT(std::strlen(n), 0u);
    EXPECT_STRNE(n, "?");
    names.insert(n);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumEvents));
}

TEST(EnumSync, PackedWidthMatchesTaxonomies) {
  // The gather payload layout depends on both enum sizes and the
  // CounterValues width; a change to any must revisit
  // pack_step_stats/unpack_step_stats.
  EXPECT_EQ(kStepStatsDoubles,
            5u + (2u + kCounterDoubles) * static_cast<std::size_t>(kNumPhases) +
                static_cast<std::size_t>(kNumEvents));
}

}  // namespace

/// Minimal recursive-descent JSON parser for test assertions (the repo
/// deliberately has no JSON dependency).  Supports the full JSON value
/// grammar minus \u escapes (the exporters emit none).  Parse failures
/// throw std::runtime_error with a byte offset.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace yy::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { null, boolean, number, string, array, object } kind =
      Kind::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<ValuePtr> arr;
  std::map<std::string, ValuePtr> obj;

  const Value& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return *it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", [](Value& v) { v.kind = Value::Kind::boolean; v.b = true; });
      case 'f': return keyword("false", [](Value& v) { v.kind = Value::Kind::boolean; v.b = false; });
      case 'n': return keyword("null", [](Value& v) { v.kind = Value::Kind::null; });
      default: return number();
    }
  }

  template <typename Fn>
  ValuePtr keyword(const char* word, Fn set) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (pos_ >= s_.size() || s_[pos_] != *c) fail("bad keyword");
      ++pos_;
    }
    auto v = std::make_shared<Value>();
    set(*v);
    return v;
  }

  ValuePtr number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::number;
    try {
      v->num = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  ValuePtr string_value() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::string;
    v->str = raw_string();
    return v;
  }

  ValuePtr array() {
    expect('[');
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::array;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v->arr.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  ValuePtr object() {
    expect('{');
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::object;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v->obj[key] = value();
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace yy::testjson

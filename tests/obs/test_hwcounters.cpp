/// Counter-backend honesty and software-fallback exactness
/// (obs/hwcounters.hpp, DESIGN.md §13).  The perf_event expectations
/// auto-skip where the kernel refuses the syscall (containers, locked
/// hosts, VMs without a PMU) — the fallback path is then what runs, and
/// it must reproduce the analytic flop charges bitwise.
#include "obs/hwcounters.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/flops.hpp"
#include "core/serial_solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yy::obs {
namespace {

TEST(HwCounters, BackendNamesArePinned) {
  EXPECT_STREQ(counter_backend_name(CounterBackend::off), "off");
  EXPECT_STREQ(counter_backend_name(CounterBackend::software), "software");
  EXPECT_STREQ(counter_backend_name(CounterBackend::perf_event),
               "perf_event");
}

TEST(HwCounters, ConfigFromEnvRespectsOverrides) {
  ::setenv("YY_COUNTERS", "software", 1);
  ::setenv("YY_COUNTER_FPOPS_RAW", "0x1c7", 1);
  const CounterConfig cfg = CounterGroup::config_from_env();
  EXPECT_FALSE(cfg.want_perf_event);
  EXPECT_EQ(cfg.fp_raw_event, 0x1c7);
  ::unsetenv("YY_COUNTERS");
  ::unsetenv("YY_COUNTER_FPOPS_RAW");
  const CounterConfig def = CounterGroup::config_from_env();
  EXPECT_TRUE(def.want_perf_event);
  EXPECT_EQ(def.fp_raw_event, -1);
}

TEST(HwCounters, BackendIsReportedHonestly) {
  // Default config: the group either got real hardware counters or says
  // exactly why it fell back (the errno goes into the detail string).
  CounterGroup g;
  ASSERT_TRUE(g.backend() == CounterBackend::perf_event ||
              g.backend() == CounterBackend::software);
  EXPECT_FALSE(g.backend_detail().empty());
  if (g.backend() == CounterBackend::software)
    EXPECT_NE(g.backend_detail().find("software"), std::string::npos)
        << g.backend_detail();
}

TEST(HwCounters, ForcedSoftwareNeverOpensPerfEvent) {
  CounterConfig cfg;
  cfg.want_perf_event = false;
  CounterGroup g(cfg);
  EXPECT_EQ(g.backend(), CounterBackend::software);
  // Software samples carry the charge counter and nothing hardware.
  flops::reset();
  const CounterValues a = g.sample();
  flops::add(1234);
  const CounterValues b = g.sample();
  EXPECT_EQ(b.flops - a.flops, 1234u);
  EXPECT_EQ(b.cycles, 0u);
  EXPECT_EQ(b.instructions, 0u);
  EXPECT_EQ(b.hw_flops, 0u);
}

TEST(HwCounters, PerfEventCountsWhenAvailable) {
  CounterGroup g;
  if (g.backend() != CounterBackend::perf_event)
    GTEST_SKIP() << "perf_event unavailable here: " << g.backend_detail();
  const CounterValues a = g.sample();
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001 + 1e-9;
  const CounterValues b = g.sample();
  EXPECT_GT(b.instructions, a.instructions);
  EXPECT_GE(b.cycles, a.cycles);
}

TEST(HwCounters, ScopedBindNestsAndRestores) {
  EXPECT_EQ(detail::current_counters(), nullptr);
  CounterConfig cfg;
  cfg.want_perf_event = false;
  CounterGroup outer(cfg), inner(cfg);
  {
    ScopedCounterBind a(outer);
    EXPECT_EQ(detail::current_counters(), &outer);
    {
      ScopedCounterBind b(inner);
      EXPECT_EQ(detail::current_counters(), &inner);
    }
    EXPECT_EQ(detail::current_counters(), &outer);
  }
  EXPECT_EQ(detail::current_counters(), nullptr);
}

TEST(HwCounters, SpansCarryExactChargeDeltas) {
  // Software fallback: a span's flop delta is *defined* as the charge
  // inside the scope, so the reconciliation is bitwise.
  CounterConfig cfg;
  cfg.want_perf_event = false;
  CounterGroup g(cfg);
  TraceRecorder rec;
  ScopedRankBind bind(rec, 0);
  ScopedCounterBind cbind(g);
  {
    PhaseScope sc(Phase::rhs);
    flops::add(777777);
  }
  flops::add(111);  // outside any span: must not be attributed
  {
    PhaseScope sc(Phase::rk4_stage);
    flops::add(333333);
  }
  const MetricsSummary m = collect_metrics(rec);
  EXPECT_EQ(m.phase(Phase::rhs).ctr.flops, 777777u);
  EXPECT_EQ(m.phase(Phase::rk4_stage).ctr.flops, 333333u);
  EXPECT_EQ(m.phase(Phase::rhs).ctr.hw_flops, 0u);
}

TEST(HwCounters, SolverPhaseChargesReconcileWithGlobalCount) {
  // End-to-end exactness on the real instrumented solver: every flop
  // the step loop charges lands in some phase's counter, so the
  // per-phase sums reproduce flops::global_count() exactly.
  CounterConfig cfg;
  cfg.want_perf_event = false;
  CounterGroup g(cfg);

  core::SimulationConfig sim;
  sim.nr = 13;
  sim.nt_core = 11;
  sim.np_core = 31;
  core::SerialYinYangSolver solver(sim);
  solver.initialize();
  const double dt = solver.stable_dt();

  // Bind and reset only around the step loop, so the recorded spans
  // and the global counter cover exactly the same work.
  TraceRecorder rec;
  std::uint64_t global = 0;
  {
    ScopedRankBind bind(rec, 0);
    ScopedCounterBind cbind(g);
    flops::global_reset();
    for (int s = 0; s < 2; ++s) solver.step(dt);
    global = flops::global_count();
  }

  const MetricsSummary m = collect_metrics(rec);
  std::uint64_t attributed = 0;
  for (int p = 0; p < kNumPhases; ++p)
    attributed += m.total[static_cast<std::size_t>(p)].ctr.flops;
  EXPECT_EQ(attributed, global);
  EXPECT_GT(global, 0u);
}

}  // namespace
}  // namespace yy::obs

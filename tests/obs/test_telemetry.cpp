/// Telemetry-layer tests: RunManifest stamping, the collective
/// RankTelemetry gather at 1/2/4 ranks with synthetically skewed span
/// durations (imbalance and straggler attribution are checked against
/// closed-form values), telemetry CSV/JSON schema validation with the
/// json_lite parser, span-budget interaction, and the headline
/// reconciliation guarantee: the per-step phase sums in the telemetry
/// series equal the end-of-run MetricsSummary totals computed from the
/// very same spans.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

#include "json_lite.hpp"

using namespace yy;
using namespace yy::obs;

namespace {

RunManifest test_manifest(int world) {
  RunManifest man = RunManifest::current_build();
  man.app = "test_telemetry";
  man.mode = "synthetic";
  man.world = world;
  man.pt = 1;
  man.pp = world / 2;
  man.nr = 13;
  man.nt_core = 17;
  man.np_core = 49;
  man.heartbeat_interval = 1;
  man.extra.emplace_back("steps", "4");
  return man;
}

/// Drives RankTelemetry over `world` rank threads with hand-recorded
/// spans of known, rank-dependent durations: each step, rank r spends
/// (r+1) ms in rhs (compute) and 2 ms in halo_wait, so the expected
/// imbalance, straggler and per-phase aggregates have closed forms.
void run_synthetic(int world, int steps, int interval, TelemetrySink& sink,
                   int spans_per_step = 1) {
  TraceRecorder rec;
  comm::Runtime rt(world);
  rt.run([&](comm::Communicator& w) {
    ScopedRankBind bind(rec, w.rank());
    RankTrace& t = rec.rank_trace(w.rank());
    TelemetryConfig cfg;
    cfg.interval = interval;
    cfg.ring_capacity = 64;
    cfg.span_budget = 0;  // leave the trace unbounded here
    RankTelemetry tel(w, sink, cfg);
    for (int i = 0; i < steps; ++i) {
      tel.begin_step(i, 0.5, 0.25);
      for (int k = 0; k < spans_per_step; ++k) {
        t.record(Phase::rhs, 0, 1'000'000 * (w.rank() + 1), 100);
        t.record(Phase::halo_wait, 0, 2'000'000, 50);
      }
      tel.end_step();
    }
    tel.flush();
  });
}

TEST(RunManifest, JsonRoundTripsThroughParser) {
  RunManifest man = test_manifest(4);
  man.app = "quoted \"app\"";  // exercises string escaping
  const auto doc = testjson::parse(man.json());
  EXPECT_EQ(doc->at("app").str, "quoted \"app\"");
  EXPECT_EQ(doc->at("mode").str, "synthetic");
  EXPECT_EQ(doc->at("world").num, 4.0);
  EXPECT_EQ(doc->at("pt").num, 1.0);
  EXPECT_EQ(doc->at("pp").num, 2.0);
  EXPECT_EQ(doc->at("nr").num, 13.0);
  EXPECT_EQ(doc->at("trace_level").num, static_cast<double>(YY_TRACE_LEVEL));
  EXPECT_EQ(doc->at("heartbeat_interval").num, 1.0);
  EXPECT_FALSE(doc->at("build_type").str.empty());
  EXPECT_FALSE(doc->at("sanitizer").str.empty());
  EXPECT_EQ(doc->at("extra").at("steps").str, "4");
}

TEST(RunManifest, CsvCommentsAreCommentLines) {
  std::ostringstream os;
  test_manifest(2).write_csv_comments(os);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("# app=test_telemetry", 0), 0u);
  EXPECT_NE(s.find("# world=2"), std::string::npos);
  EXPECT_NE(s.find("# steps=4"), std::string::npos);
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) EXPECT_EQ(line.rfind("#", 0), 0u) << line;
}

class SyntheticAggregation : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticAggregation, ImbalanceStragglerAndPhaseStats) {
  const int world = GetParam();
  const int steps = 4;
  TelemetrySink sink(test_manifest(world));
  run_synthetic(world, steps, /*interval=*/2, sink);

  ASSERT_EQ(sink.series().size(), static_cast<std::size_t>(steps));
  for (int k = 0; k < steps; ++k) {
    const StepAgg& a = sink.series()[static_cast<std::size_t>(k)];
    EXPECT_EQ(a.step, k);
    EXPECT_DOUBLE_EQ(a.dt, 0.5);
    EXPECT_DOUBLE_EQ(a.cfl_limit_dt, 0.25);
    EXPECT_EQ(a.ranks, world);

    // Compute per rank is (r+1) ms: mean (world+1)/2, max world.
    EXPECT_NEAR(a.compute_mean_s, 1e-3 * (world + 1) / 2.0, 1e-12);
    EXPECT_NEAR(a.compute_max_s, 1e-3 * world, 1e-12);
    EXPECT_NEAR(a.imbalance, 2.0 * world / (world + 1), 1e-9);
    EXPECT_EQ(a.straggler, world - 1);

    const PhaseAgg& rhs = a.phase_agg(Phase::rhs);
    EXPECT_NEAR(rhs.min_s, 1e-3, 1e-12);
    EXPECT_NEAR(rhs.max_s, 1e-3 * world, 1e-12);
    EXPECT_EQ(rhs.argmax_rank, world - 1);
    EXPECT_EQ(rhs.bytes, 100u * static_cast<std::uint64_t>(world));

    const PhaseAgg& halo = a.phase_agg(Phase::halo_wait);
    EXPECT_NEAR(halo.mean_s, 2e-3, 1e-12);
    EXPECT_NEAR(a.wait_mean_s, 2e-3, 1e-12);
    EXPECT_EQ(a.spans_dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, SyntheticAggregation,
                         ::testing::Values(1, 2, 4));

TEST(Telemetry, PartialWindowIsFlushed) {
  // 5 steps at interval 3: one full gather plus a 2-step flush.
  TelemetrySink sink(test_manifest(2));
  run_synthetic(2, /*steps=*/5, /*interval=*/3, sink);
  ASSERT_EQ(sink.series().size(), 5u);
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(sink.series()[static_cast<std::size_t>(k)].step, k);
}

TEST(Telemetry, JsonSchemaValidates) {
  TelemetrySink sink(test_manifest(2));
  run_synthetic(2, 4, 2, sink);

  const auto doc = testjson::parse(sink.json());
  EXPECT_EQ(doc->at("schema").str, "yy-telemetry-2");
  EXPECT_EQ(doc->at("manifest").at("counter_backend").str, "off");
  EXPECT_EQ(doc->at("manifest").at("app").str, "test_telemetry");
  const auto& steps = doc->at("steps");
  ASSERT_EQ(steps.kind, testjson::Value::Kind::array);
  ASSERT_EQ(steps.arr.size(), 4u);
  for (std::size_t k = 0; k < steps.arr.size(); ++k) {
    const auto& s = *steps.arr[k];
    EXPECT_EQ(s.at("step").num, static_cast<double>(k));
    EXPECT_EQ(s.at("ranks").num, 2.0);
    EXPECT_EQ(s.at("straggler").num, 1.0);
    EXPECT_NEAR(s.at("imbalance").num, 4.0 / 3.0, 1e-6);
    const auto& rhs = s.at("phases").at("rhs");
    EXPECT_EQ(rhs.at("argmax_rank").num, 1.0);
    EXPECT_NEAR(rhs.at("max_s").num, 2e-3, 1e-9);
    EXPECT_EQ(rhs.at("bytes").num, 200.0);
    EXPECT_TRUE(s.at("phases").has("halo_wait"));
    EXPECT_EQ(s.at("events").kind, testjson::Value::Kind::object);
  }
}

TEST(Telemetry, CsvSchemaValidates) {
  TelemetrySink sink(test_manifest(2));
  run_synthetic(2, 4, 2, sink);

  const std::string csv = sink.csv();
  EXPECT_EQ(csv.rfind("# app=test_telemetry", 0), 0u);
  EXPECT_NE(csv.find("step,dt,phase,min_s,mean_s,max_s,sum_s,argmax_rank,"
                     "bytes,cycles,instructions,cache_refs,cache_misses,"
                     "hw_flops,flops\n"),
            std::string::npos);
  // One STEP summary row per aggregated step, plus the column-doc line.
  int step_rows = 0, phase_rows = 0, comments = 0;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) ++comments;
    else if (line.find(",STEP,") != std::string::npos) ++step_rows;
    else if (line.find(",rhs,") != std::string::npos ||
             line.find(",halo_wait,") != std::string::npos)
      ++phase_rows;
  }
  EXPECT_EQ(step_rows, 4);
  EXPECT_EQ(phase_rows, 8);  // 2 non-empty phases x 4 steps
  EXPECT_GE(comments, 7);    // manifest + column docs
}

TEST(Telemetry, HeartbeatLinePerStep) {
  std::ostringstream hb;
  TelemetrySink sink(test_manifest(2), &hb);
  run_synthetic(2, 3, 1, sink);

  const std::string out = hb.str();
  int lines = 0;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("[telemetry] step", 0), 0u) << line;
    EXPECT_NE(line.find("imb"), std::string::npos);
    EXPECT_NE(line.find("straggler r1"), std::string::npos);
    EXPECT_NE(line.find("rhs"), std::string::npos);
  }
  EXPECT_EQ(lines, 3);
}

TEST(Telemetry, SpanBudgetBoundsTraceAndReportsDrops) {
  TraceRecorder rec;
  comm::Runtime rt(1);
  TelemetrySink sink(test_manifest(1));
  rt.run([&](comm::Communicator& w) {
    ScopedRankBind bind(rec, w.rank());
    RankTrace& t = rec.rank_trace(w.rank());
    TelemetryConfig cfg;
    cfg.interval = 1;
    cfg.ring_capacity = 64;
    cfg.span_budget = 8;  // tiny on purpose
    RankTelemetry tel(w, sink, cfg);
    for (int i = 0; i < 4; ++i) {
      tel.begin_step(i, 0.5);
      for (int k = 0; k < 20; ++k)
        t.record(Phase::rhs, 0, 1'000'000, 0);
      tel.end_step();
    }
    tel.flush();
  });

  const RankTrace& t = *rec.traces()[0];
  EXPECT_LE(t.spans().size(), 8u);
  EXPECT_GT(t.evicted(), 0u);
  std::uint64_t dropped = 0;
  for (const StepAgg& a : sink.series()) dropped += a.spans_dropped;
  EXPECT_EQ(dropped, t.evicted());
  // Every retained span is still folded: the last step's rhs time can
  // never exceed what was recorded in it.
  EXPECT_GT(dropped, 0u);
}

// The acceptance-criterion test: drive the real distributed solver with
// telemetry attached and check the exported per-step phase sums
// reconcile with the end-of-run MetricsSummary computed from the same
// spans.  The trace is bound only after initialize()/stable_dt(), so
// the recorder holds exactly the step-loop spans the telemetry saw.
TEST(Telemetry, SeriesReconcilesWithMetricsSummary) {
#if YY_TRACE_LEVEL == 0
  GTEST_SKIP() << "solver span instrumentation compiled out";
#endif
  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;

  const int steps = 7;
  RunManifest man = test_manifest(2);
  man.app = "reconcile";
  TelemetrySink sink(man);
  TraceRecorder rec;
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, /*pt=*/1, /*pp=*/1);
    solver.initialize();
    const double dt = solver.stable_dt();
    ScopedRankBind bind(rec, w.rank());
    TelemetryConfig tcfg;
    tcfg.interval = 3;  // 2 full windows + a 1-step flush
    tcfg.ring_capacity = 16;
    tcfg.span_budget = 0;
    RankTelemetry tel(w, sink, tcfg);
    solver.attach_telemetry(&tel);
    for (int i = 0; i < steps; ++i) solver.step(dt);
    tel.flush();
  });

  ASSERT_EQ(sink.series().size(), static_cast<std::size_t>(steps));
  for (int k = 0; k < steps; ++k) {
    const StepAgg& a = sink.series()[static_cast<std::size_t>(k)];
    EXPECT_EQ(a.step, k);
    EXPECT_EQ(a.ranks, 2);
    EXPECT_GT(a.compute_mean_s, 0.0);
    EXPECT_GT(a.cfl_limit_dt, 0.0);  // stable_dt() cache reached telemetry
  }

  const MetricsSummary m = collect_metrics(rec);
  EXPECT_EQ(m.steps, steps);
  for (int p = 0; p < kNumPhases; ++p) {
    const double total = m.total[static_cast<std::size_t>(p)].seconds;
    double series_sum = 0.0;
    for (const StepAgg& a : sink.series())
      series_sum += a.phase[static_cast<std::size_t>(p)].sum_s;
    // Same spans, different summation order: FP tolerance only.
    EXPECT_NEAR(series_sum, total, 1e-9 * (total + 1.0))
        << phase_name(static_cast<Phase>(p));
    std::uint64_t series_bytes = 0;
    for (const StepAgg& a : sink.series())
      series_bytes += a.phase[static_cast<std::size_t>(p)].bytes;
    EXPECT_EQ(series_bytes, m.total[static_cast<std::size_t>(p)].bytes)
        << phase_name(static_cast<Phase>(p));
  }
  // The solver really did exchange data while telemetry watched (one
  // rank per panel: traffic is the inter-panel overset interpolation).
  EXPECT_GT(m.phase(Phase::overset_wait).bytes, 0u);
}

TEST(ManifestStamping, MetricsJsonCarriesManifest) {
  TraceRecorder rec;
  rec.rank_trace(0).record(Phase::rhs, 0, 1'000'000, 0);
  const MetricsSummary m = collect_metrics(rec);

  std::ostringstream js;
  write_metrics_json(m, js, test_manifest(1));
  const auto doc = testjson::parse(js.str());
  EXPECT_EQ(doc->at("manifest").at("app").str, "test_telemetry");
  EXPECT_TRUE(doc->has("ranks"));

  std::ostringstream csv;
  write_metrics_csv(m, csv, test_manifest(1));
  EXPECT_EQ(csv.str().rfind("# app=test_telemetry", 0), 0u);
}

TEST(ManifestStamping, ChromeTraceCarriesManifest) {
  TraceRecorder rec;
  rec.rank_trace(0).record(Phase::rhs, 0, 1'000'000, 0);

  std::ostringstream os;
  write_chrome_trace(rec, os, test_manifest(1));
  const auto doc = testjson::parse(os.str());
  EXPECT_EQ(doc->at("otherData").at("app").str, "test_telemetry");
  ASSERT_EQ(doc->at("traceEvents").kind, testjson::Value::Kind::array);
  EXPECT_FALSE(doc->at("traceEvents").arr.empty());
}

}  // namespace

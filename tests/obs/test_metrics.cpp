/// Metrics aggregation and exporter tests: phase sums must equal the
/// recorded spans, the CSV must round-trip its numbers, and the JSON
/// export must parse.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_lite.hpp"

namespace yy::obs {
namespace {

/// Builds a recorder with hand-authored spans on two ranks.
TraceRecorder& synthetic_recorder(TraceRecorder& rec) {
  RankTrace& r0 = rec.rank_trace(0);
  r0.set_step(0);
  r0.record(Phase::rhs, 0, 1'000'000, 0);           // 1 ms
  r0.record(Phase::halo_wait, 1'000'000, 1'500'000, 4096);
  r0.set_step(1);
  r0.record(Phase::rhs, 2'000'000, 3'500'000, 0);   // 1.5 ms
  RankTrace& r1 = rec.rank_trace(1);
  r1.set_step(1);
  r1.record(Phase::halo_wait, 500'000, 2'500'000, 8192);
  return rec;
}

TEST(Metrics, AggregatesPerRankAndTotals) {
  TraceRecorder rec;
  const MetricsSummary m =
      collect_metrics(synthetic_recorder(rec), {42, 12345});

  ASSERT_EQ(m.ranks.size(), 2u);
  EXPECT_EQ(m.steps, 2);
  EXPECT_EQ(m.traffic.messages, 42u);
  EXPECT_EQ(m.traffic.bytes, 12345u);

  const auto& rhs = m.phase(Phase::rhs);
  EXPECT_NEAR(rhs.seconds, 2.5e-3, 1e-12);
  EXPECT_EQ(rhs.count, 2u);
  const auto& halo = m.phase(Phase::halo_wait);
  EXPECT_NEAR(halo.seconds, 2.5e-3, 1e-12);
  EXPECT_EQ(halo.count, 2u);
  EXPECT_EQ(halo.bytes, 12288u);

  // Rank 0 spans [0, 3.5 ms]; rank 1 spans [0.5, 2.5 ms]; globally 3.5.
  EXPECT_NEAR(m.ranks[0].span_seconds, 3.5e-3, 1e-12);
  EXPECT_NEAR(m.ranks[1].span_seconds, 2.0e-3, 1e-12);
  EXPECT_NEAR(m.wall_seconds, 3.5e-3, 1e-12);
  EXPECT_NEAR(m.traced_seconds(), 5.0e-3, 1e-12);
}

TEST(Metrics, CsvHasHeaderRankRowsAndTotals) {
  TraceRecorder rec;
  const std::string csv = metrics_csv(collect_metrics(synthetic_recorder(rec)));
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line,
            "rank,phase,seconds,count,bytes,cycles,instructions,cache_refs,"
            "cache_misses,hw_flops,flops");
  int rank_rows = 0, total_rows = 0;
  while (std::getline(is, line)) {
    if (line.rfind("TOTAL,", 0) == 0)
      ++total_rows;
    else
      ++rank_rows;
  }
  EXPECT_EQ(rank_rows, 3);   // r0: rhs + halo; r1: halo
  EXPECT_EQ(total_rows, 2);  // rhs + halo
  EXPECT_NE(csv.find("TOTAL,halo_wait,"), std::string::npos);
  EXPECT_NE(csv.find(",12288"), std::string::npos);
}

TEST(Metrics, JsonParsesAndMatchesTotals) {
  TraceRecorder rec;
  const MetricsSummary m =
      collect_metrics(synthetic_recorder(rec), {7, 999});
  const testjson::ValuePtr doc = testjson::parse(metrics_json(m));
  EXPECT_EQ(doc->at("steps").num, 2.0);
  EXPECT_EQ(doc->at("traffic").at("messages").num, 7.0);
  EXPECT_EQ(doc->at("traffic").at("bytes").num, 999.0);
  const testjson::Value& halo = doc->at("total").at("halo_wait");
  EXPECT_NEAR(halo.at("seconds").num, 2.5e-3, 1e-9);
  EXPECT_EQ(halo.at("bytes").num, 12288.0);
  ASSERT_EQ(doc->at("ranks").arr.size(), 2u);
  EXPECT_EQ(doc->at("ranks").arr[0]->at("rank").num, 0.0);
}

TEST(Metrics, EmptyRecorderYieldsEmptySummary) {
  TraceRecorder rec;
  const MetricsSummary m = collect_metrics(rec);
  EXPECT_TRUE(m.ranks.empty());
  EXPECT_EQ(m.steps, 0);
  EXPECT_EQ(m.wall_seconds, 0.0);
  EXPECT_EQ(m.traced_seconds(), 0.0);
  // Exports of an empty run are still well-formed.
  EXPECT_NO_THROW(testjson::parse(metrics_json(m)));
}

}  // namespace
}  // namespace yy::obs

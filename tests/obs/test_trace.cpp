/// Tracing layer tests: recording semantics, chrome://tracing export
/// (the golden trace of a real 2-rank distributed run must be valid
/// JSON with monotonic, non-overlapping spans per thread), and the
/// halo byte attribution cross-checked against the analytic message
/// size formula of core/decomposition.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "json_lite.hpp"
#include "obs/chrome_trace.hpp"

namespace yy::obs {
namespace {

TEST(Trace, UnboundThreadRecordsNothing) {
  TraceRecorder rec;
  {
    PhaseScope sc(Phase::rhs);
    sc.add_bytes(100);
  }
  EXPECT_TRUE(rec.traces().empty());
}

TEST(Trace, BoundScopeRecordsSpanWithStepAndBytes) {
  TraceRecorder rec;
  {
    ScopedRankBind bind(rec, 3);
    set_current_step(7);
    {
      PhaseScope sc(Phase::halo_wait);
      sc.add_bytes(256);
      sc.add_bytes(44);
    }
    { PhaseScope sc(Phase::rhs); }
  }
  const auto traces = rec.traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0]->rank(), 3);
  const auto& spans = traces[0]->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].phase, Phase::halo_wait);
  EXPECT_EQ(spans[0].bytes, 300u);
  EXPECT_EQ(spans[0].step, 7);
  EXPECT_GE(spans[0].t1_ns, spans[0].t0_ns);
  EXPECT_EQ(spans[1].phase, Phase::rhs);
  // Leaf spans on one thread never overlap.
  EXPECT_LE(spans[0].t1_ns, spans[1].t0_ns);
}

TEST(Trace, BindRestoresPreviousBindingOnExit) {
  TraceRecorder rec;
  ScopedRankBind outer(rec, 0);
  {
    ScopedRankBind inner(rec, 1);
    { PhaseScope sc(Phase::io); }
  }
  { PhaseScope sc(Phase::rhs); }
  const auto traces = rec.traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0]->spans().size(), 1u);
  EXPECT_EQ(traces[0]->spans()[0].phase, Phase::rhs);
  EXPECT_EQ(traces[1]->spans()[0].phase, Phase::io);
}

TEST(Trace, ConcurrentRankRegistrationIsSafe) {
  TraceRecorder rec;
  std::vector<std::thread> threads;
  for (int r = 0; r < 8; ++r)
    threads.emplace_back([&rec, r] {
      ScopedRankBind bind(rec, r);
      for (int i = 0; i < 100; ++i) PhaseScope sc(Phase::other);
    });
  for (auto& t : threads) t.join();
  const auto traces = rec.traces();
  ASSERT_EQ(traces.size(), 8u);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(traces[static_cast<std::size_t>(r)]->rank(), r);
    EXPECT_EQ(traces[static_cast<std::size_t>(r)]->spans().size(), 100u);
  }
}

TEST(Trace, NullPhaseScopeCompilesToNothing) {
  // The YY_TRACE_LEVEL=0 stand-in must accept the same calls.
  NullPhaseScope sc(Phase::rhs);
  sc.add_bytes(123);
}

core::SimulationConfig small_config() {
  core::SimulationConfig cfg;
  cfg.nr = 7;
  cfg.nt_core = 11;
  cfg.np_core = 31;
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Runs the distributed solver with every rank bound to `rec`.
void traced_run(TraceRecorder& rec, const core::SimulationConfig& cfg, int pt,
                int pp, int steps) {
  comm::Runtime rt(2 * pt * pp);
  rt.run([&](comm::Communicator& w) {
    ScopedRankBind bind(rec, w.rank());
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    solver.gather_field(0, yinyang::Panel::yin);
  });
}

TEST(GoldenTrace, TwoRankRunExportsValidNonOverlappingChromeTrace) {
#if !YY_TRACE_LEVEL
  GTEST_SKIP() << "solver instrumentation compiled out (YY_TRACE_LEVEL=0)";
#endif
  TraceRecorder rec;
  traced_run(rec, small_config(), 1, 1, 2);

  const std::string json = chrome_trace_json(rec);
  const testjson::ValuePtr doc = testjson::parse(json);  // throws if invalid
  ASSERT_EQ(doc->kind, testjson::Value::Kind::object);
  const testjson::Value& events = doc->at("traceEvents");
  ASSERT_EQ(events.kind, testjson::Value::Kind::array);
  ASSERT_GT(events.arr.size(), 10u);

  // Collect complete events per (pid, tid).
  std::map<std::pair<double, double>, std::vector<std::pair<double, double>>>
      per_thread;  // (pid,tid) -> [(ts, dur)]
  int metadata = 0;
  for (const testjson::ValuePtr& ev : events.arr) {
    const std::string ph = ev->at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const double ts = ev->at("ts").num;
    const double dur = ev->at("dur").num;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    EXPECT_GE(ev->at("args").at("bytes").num, 0.0);
    // Span names are drawn from the documented taxonomy.
    const std::string name = ev->at("name").str;
    const char* known[] = {"rhs",      "rk4_stage", "halo_wait",
                           "overset_wait", "boundary",  "reduce",
                           "io",       "other"};
    EXPECT_NE(std::find_if(std::begin(known), std::end(known),
                           [&](const char* k) { return name == k; }),
              std::end(known))
        << "unknown span name " << name;
    per_thread[{ev->at("pid").num, ev->at("tid").num}].push_back({ts, dur});
  }
  EXPECT_EQ(metadata, 2);        // one thread_name row per rank
  ASSERT_EQ(per_thread.size(), 2u);  // both ranks on the one timeline

  // Per thread: spans sorted by start must not overlap (leaf-level
  // instrumentation guarantees strict sequencing per rank).
  for (auto& [tid, spans] : per_thread) {
    EXPECT_GT(spans.size(), 20u);
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].first + spans[i - 1].second,
                spans[i].first + 0.01)  // 10 ns slack for µs rounding
          << "overlapping spans on tid " << tid.second << " at index " << i;
    }
  }
}

TEST(GoldenTrace, HaloSpanBytesMatchAnalyticMessageSizeFormula) {
#if !YY_TRACE_LEVEL
  GTEST_SKIP() << "solver instrumentation compiled out (YY_TRACE_LEVEL=0)";
#endif
  const core::SimulationConfig cfg = small_config();
  const int pt = 2, pp = 1, steps = 2;
  TraceRecorder rec;
  traced_run(rec, cfg, pt, pp, steps);

  // The analytic halo volume per exchange, derived independently from
  // the decomposition: with a 2×1 panel grid every rank has exactly one
  // θ neighbour, so it sends + receives one θ strip of all 8 fields:
  //   2 × [Nr_full · ghost · Np_full · 8 fields] · sizeof(double).
  const auto geom = yinyang::ComponentGeometry::with_auto_margin(
      cfg.nt_core, cfg.np_core);
  const core::PanelDecomposition decomp(geom.nt(), geom.np(), pt, pp);
  const int gh = geom.ghost();

  const auto traces = rec.traces();
  ASSERT_EQ(traces.size(), static_cast<std::size_t>(2 * pt * pp));
  for (const RankTrace* t : traces) {
    const int panel_rank = t->rank() % (pt * pp);
    const auto e = decomp.patch(panel_rank / pp, panel_rank % pp);
    const std::uint64_t nr_full = static_cast<std::uint64_t>(cfg.nr) + 2 * gh;
    const std::uint64_t np_full = static_cast<std::uint64_t>(e.np) + 2 * gh;
    const std::uint64_t expected =
        2 * nr_full * static_cast<std::uint64_t>(gh) * np_full * 8 *
        sizeof(double);

    std::uint64_t n_halo = 0;
    for (const Span& s : t->spans()) {
      if (s.phase != Phase::halo_wait) continue;
      ++n_halo;
      EXPECT_EQ(s.bytes, expected) << "rank " << t->rank();
    }
    // initialize() fills ghosts once; each RK4 step fills 4 times.
    EXPECT_EQ(n_halo, static_cast<std::uint64_t>(1 + 4 * steps))
        << "rank " << t->rank();
  }
}

}  // namespace
}  // namespace yy::obs

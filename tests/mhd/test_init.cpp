#include "mhd/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy::mhd {
namespace {

const ShellSpec kShell;  // Earth core ratio
const ThermalBc kBc{2.0, 1.0};

TEST(Init, ConductiveProfileHitsWallTemperatures) {
  EXPECT_NEAR(conductive_temperature(kShell, kBc, kShell.r_inner), 2.0, 1e-12);
  EXPECT_NEAR(conductive_temperature(kShell, kBc, kShell.r_outer), 1.0, 1e-12);
}

TEST(Init, ConductiveProfileIsHarmonic) {
  // T = a + b/r solves ∇²T = 0; check the 1/r form via three points.
  const double r1 = 0.5, r2 = 0.7;
  const double t1 = conductive_temperature(kShell, kBc, r1);
  const double t2 = conductive_temperature(kShell, kBc, r2);
  const double b = (t1 - t2) / (1.0 / r1 - 1.0 / r2);
  const double a = t1 - b / r1;
  EXPECT_NEAR(conductive_temperature(kShell, kBc, 0.9), a + b / 0.9, 1e-12);
}

TEST(Init, ConductiveProfileMonotoneDecreasing) {
  double prev = 1e30;
  for (double r = kShell.r_inner; r <= kShell.r_outer; r += 0.05) {
    const double t = conductive_temperature(kShell, kBc, r);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Init, HydrostaticDensityNormalizedAtOuterWall) {
  EXPECT_NEAR(hydrostatic_density(kShell, kBc, 2.0, kShell.r_outer), 1.0, 1e-12);
}

TEST(Init, HydrostaticDensityIncreasesInward) {
  // Gravity compresses the fluid toward the inner sphere when gravity
  // dominates the temperature gradient.
  const double g0 = 2.0;
  EXPECT_GT(hydrostatic_density(kShell, kBc, g0, 0.5),
            hydrostatic_density(kShell, kBc, g0, 0.9));
}

TEST(Init, HydrostaticBalanceResidualSmall) {
  // dp/dr = −ρ g0/r² with p = ρT must hold to integration accuracy.
  const double g0 = 2.0;
  const double r = 0.6, h = 1e-4;
  auto p_of = [&](double rr) {
    return hydrostatic_density(kShell, kBc, g0, rr) *
           conductive_temperature(kShell, kBc, rr);
  };
  const double dpdr = (p_of(r + h) - p_of(r - h)) / (2 * h);
  const double rho = hydrostatic_density(kShell, kBc, g0, r);
  EXPECT_NEAR(dpdr, -rho * g0 / (r * r), 1e-4 * rho * g0 / (r * r) + 1e-6);
}

class InitState : public ::testing::Test {
 protected:
  InitState() : grid(make_spec()), s(grid) {
    ic.perturb_amp = 1e-2;
    ic.seed_b_amp = 1e-4;
    initialize_state(grid, kShell, kBc, 2.0, ic, 0, {0, 0}, s);
  }
  static GridSpec make_spec() {
    GridSpec sp;
    sp.nr = 9;
    sp.nt = 7;
    sp.np = 9;
    sp.r0 = kShell.r_inner;
    sp.r1 = kShell.r_outer;
    sp.t0 = 0.8;
    sp.t1 = 2.3;
    sp.p0 = -2.0;
    sp.p1 = 2.0;
    sp.ghost = 2;
    return sp;
  }
  SphericalGrid grid;
  InitialConditions ic;
  Fields s;
};

TEST_F(InitState, FluidStartsAtRest) {
  for_box(grid.full(), [&](int ir, int it, int ip) {
    EXPECT_DOUBLE_EQ(s.fr(ir, it, ip), 0.0);
    EXPECT_DOUBLE_EQ(s.ft(ir, it, ip), 0.0);
    EXPECT_DOUBLE_EQ(s.fp(ir, it, ip), 0.0);
  });
}

TEST_F(InitState, PressurePerturbationWithinAmplitude) {
  const int gh = grid.ghost();
  for_box(grid.interior(), [&](int ir, int it, int ip) {
    const double rho = s.rho(ir, it, ip);
    const double t0 = conductive_temperature(kShell, kBc, grid.r(ir));
    const double rel = s.p(ir, it, ip) / (rho * t0) - 1.0;
    EXPECT_LE(std::abs(rel), ic.perturb_amp + 1e-12);
    (void)gh;
  });
}

TEST_F(InitState, WallsUnperturbed) {
  const int gh = grid.ghost();
  const int iw_out = gh + grid.spec().nr - 1;
  for (int it = gh; it < gh + grid.spec().nt; ++it) {
    EXPECT_NEAR(s.p(gh, it, gh) / s.rho(gh, it, gh), 2.0, 1e-12);
    EXPECT_NEAR(s.p(iw_out, it, gh) / s.rho(iw_out, it, gh), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.ar(gh, it, gh), 0.0);
    EXPECT_DOUBLE_EQ(s.ap(iw_out, it, gh), 0.0);
  }
}

TEST_F(InitState, SeedFieldSmallAndNonzero) {
  double max_a = 0.0;
  for_box(grid.interior(), [&](int ir, int it, int ip) {
    max_a = std::max({max_a, std::abs(s.ar(ir, it, ip)),
                      std::abs(s.at(ir, it, ip)), std::abs(s.ap(ir, it, ip))});
  });
  EXPECT_GT(max_a, 0.0);
  EXPECT_LE(max_a, ic.seed_b_amp);
}

TEST_F(InitState, DecompositionIndependentNoise) {
  // A patch offset by (2, 3) must reproduce the same physical values at
  // the same global nodes.
  SphericalGrid patch = grid;  // same shape; offsets differ only in noise
  Fields t(patch);
  initialize_state(patch, kShell, kBc, 2.0, ic, 0, {2, 3}, t);
  const int gh = grid.ghost();
  // Global node (it=4, ip=5) is local (4,5) on the (0,0) patch and
  // local (2,2) on the (2,3) patch.
  for (int ir = gh + 1; ir < gh + grid.spec().nr - 1; ++ir) {
    EXPECT_DOUBLE_EQ(s.p(ir, gh + 4, gh + 5), t.p(ir, gh + 2, gh + 2));
    EXPECT_DOUBLE_EQ(s.ar(ir, gh + 4, gh + 5), t.ar(ir, gh + 2, gh + 2));
  }
}

TEST_F(InitState, PanelsGetIndependentNoise) {
  Fields t(grid);
  initialize_state(grid, kShell, kBc, 2.0, ic, 1, {0, 0}, t);
  const int gh = grid.ghost();
  EXPECT_NE(s.p(gh + 3, gh + 3, gh + 3), t.p(gh + 3, gh + 3, gh + 3));
}

}  // namespace
}  // namespace yy::mhd

/// The SIMD-backend lane-equivalence harness (DESIGN.md §14): the
/// lane-widened fused sweep must reproduce the scalar fused sweep — and
/// therefore the reference chain — *bitwise* at every supported lane
/// width, because the per-point expression trees are the same
/// grid/fd_stencils.hpp templates instantiated over Pack<W> lanes with
/// FMA contraction pinned off.  Covered here:
///  * Pack<W> semantics: broadcast (including −0.0), load/store
///    round-trips, strictly elementwise arithmetic vs scalar ops.
///  * Width policy: parse_width_override, the force_active_width hook.
///  * Lane sweep vs fused, bitwise: full interiors, the all-rim split,
///    threaded φ-slabs, and remainder tails — grid n=6 has a radial
///    extent of 2, so W=4/8 run all-tail rows and W=2 runs exactly one
///    pack; n=9 (extent 5) and n=14 (extent 10) mix packs and tails.
///  * Identical flop charge and analytic lane-statistics accounting.
///  * Manufactured-solution 2nd-order convergence through the SIMD path.
///  * 10-step RK4 trajectories at 1/2/4 ranks per panel, sync and
///    overlapped, at widths {1, 2, compiled max} (the scalar fallback
///    plus at least two lane widths on any x86-64 build).
#include "mhd/rhs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/flops.hpp"
#include "common/simd.hpp"
#include "grid/analytic_fields.hpp"
#include "support/equivalence.hpp"

namespace yy::mhd {
namespace {

using testutil::test_grid;

// ---------------------------------------------------------------------
// Pack<W> semantics: the lane abstraction must be strictly elementwise
// IEEE-754 double arithmetic, bitwise-identical to the scalar ops.
// ---------------------------------------------------------------------

template <int W>
void expect_pack_semantics() {
  SCOPED_TRACE(W);
  using P = simd::Pack<W>;
  static_assert(P::width == W);
  static_assert(sizeof(typename P::V) == W * sizeof(double));

  // Broadcast must be exact for every payload, including signed zero
  // (a zero-init + add would turn −0.0 into +0.0).
  for (double s : {-0.0, 1.0 / 3.0, -2.7e-308, 5.0e307}) {
    const P b(s);
    for (int i = 0; i < W; ++i) {
      const double l = b.lane(i);
      EXPECT_EQ(std::memcmp(&l, &s, sizeof(double)), 0)
          << "lane " << i << " of broadcast " << s;
    }
  }

  // Unaligned load/store round-trip, offset by one double.
  double src[W + 1], dst[W + 1];
  for (int i = 0; i < W + 1; ++i) src[i] = 0.1 * (i + 1) / 7.0;
  P::load(src + 1).store(dst + 1);
  for (int i = 1; i < W + 1; ++i) EXPECT_EQ(dst[i], src[i]);

  // Every operator, lane by lane, against the scalar expression.
  double a[W], b[W];
  for (int i = 0; i < W; ++i) {
    a[i] = std::sin(1.0 + i) / 3.0;
    b[i] = std::cos(2.0 + i) / 7.0;
  }
  const P pa = P::load(a), pb = P::load(b);
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ((pa + pb).lane(i), a[i] + b[i]);
    EXPECT_EQ((pa - pb).lane(i), a[i] - b[i]);
    EXPECT_EQ((pa * pb).lane(i), a[i] * b[i]);
    EXPECT_EQ((pa / pb).lane(i), a[i] / b[i]);
    EXPECT_EQ((-pa).lane(i), -a[i]);
    // Mixed scalar⊙pack forms (what the stencil bodies use).
    EXPECT_EQ((2.0 * pa).lane(i), 2.0 * a[i]);
    EXPECT_EQ((pa - 0.5).lane(i), a[i] - 0.5);
  }
  P acc = pa;
  acc += pb;
  P acc2 = pa;
  acc2 -= pb;
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ(acc.lane(i), a[i] + b[i]);
    EXPECT_EQ(acc2.lane(i), a[i] - b[i]);
  }
}

TEST(SimdPack, ElementwiseBitwiseSemanticsAtEveryWidth) {
  expect_pack_semantics<1>();
  expect_pack_semantics<2>();
  expect_pack_semantics<4>();
  expect_pack_semantics<8>();
}

// ---------------------------------------------------------------------
// Width policy.
// ---------------------------------------------------------------------

TEST(SimdWidthPolicy, ParseOverride) {
  using simd::parse_width_override;
  EXPECT_EQ(parse_width_override(nullptr, 8), 8);
  EXPECT_EQ(parse_width_override("", 8), 8);
  EXPECT_EQ(parse_width_override("scalar", 8), 1);
  EXPECT_EQ(parse_width_override("1", 8), 1);
  EXPECT_EQ(parse_width_override("2", 8), 2);
  EXPECT_EQ(parse_width_override("4", 8), 4);
  EXPECT_EQ(parse_width_override("8", 8), 8);
  // Clamped down to the compiled max, never up.
  EXPECT_EQ(parse_width_override("8", 2), 2);
  EXPECT_EQ(parse_width_override("4", 1), 1);
  // Unrecognized values fall back to the max (3 is not a pack width).
  EXPECT_EQ(parse_width_override("3", 4), 4);
  EXPECT_EQ(parse_width_override("wide", 4), 4);
}

TEST(SimdWidthPolicy, CompiledMaxAndForceHook) {
  const int max = simd::compiled_max_width();
  EXPECT_TRUE(max == 1 || max == 2 || max == 4 || max == 8);
#if defined(__x86_64__) && !defined(YY_SIMD_DISABLED)
  EXPECT_GE(max, 2) << "x86-64 guarantees SSE2 double lanes";
#endif
  const int before = simd::active_width();
  EXPECT_GE(before, 1);
  simd::force_active_width(2);
  EXPECT_EQ(simd::active_width(), 2);
  simd::force_active_width(0);
  EXPECT_EQ(simd::active_width(), before);
}

// ---------------------------------------------------------------------
// Lane sweep vs scalar fused sweep, bitwise.
// ---------------------------------------------------------------------

void fill_smooth(const SphericalGrid& g, Fields& s) {
  testutil::fill_scalar(g, s.rho, [](const Vec3& x) {
    return 1.0 + 0.1 * std::sin(x.x) * std::cos(x.y);
  });
  testutil::fill_scalar(g, s.p, [](const Vec3& x) {
    return 1.0 + 0.05 * std::cos(2.0 * x.z);
  });
  testutil::fill_vector(g, s.fr, s.ft, s.fp, [](const Vec3& x) {
    return Vec3{0.2 * x.y, -0.1 * x.z, 0.3 * std::sin(x.x)};
  });
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return Vec3{0.02 * x.z * x.z, 0.01 * x.x, 0.03 * std::cos(x.y)};
  });
}

EquationParams test_eq() {
  EquationParams eq;
  eq.mu = 2e-3;
  eq.kappa = 1e-3;
  eq.eta = 4e-3;
  eq.g0 = 1.5;
  eq.omega = {0.3, 0.0, 5.0};
  return eq;
}

void expect_fields_bitwise(const Fields& a, const Fields& b,
                           const IndexBox& box) {
  for_box(box, [&](int ir, int it, int ip) {
    for (int f = 0; f < Fields::kNumFields; ++f) {
      ASSERT_EQ((*a.all()[f])(ir, it, ip), (*b.all()[f])(ir, it, ip))
          << "field " << f << " at " << ir << "," << it << "," << ip;
    }
  });
}

constexpr int kWidths[] = {1, 2, 4, 8};

class SimdSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimdSweep, MatchesFusedBitwiseOnFullInteriorAtEveryWidth) {
  const SphericalGrid g = test_grid(GetParam());
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields fused(g);
  PencilWorkspace pwf;
  compute_rhs_fused(g, eq, s, fused, pwf, g.interior());

  for (int w : kWidths) {
    SCOPED_TRACE(w);
    Fields lanes(g);
    PencilWorkspace pw;
    compute_rhs_simd_width(w, g, eq, s, lanes, pw, g.interior());
    expect_fields_bitwise(fused, lanes, g.interior());
  }
}

TEST_P(SimdSweep, SplitInteriorPlusRimMatchesFusedBitwise) {
  // On n = 6 the split interior collapses and every box is rim: the
  // lane sweep must handle arbitrary skinny boxes, not just interiors.
  const SphericalGrid g = test_grid(GetParam());
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields fused(g);
  PencilWorkspace pwf;
  compute_rhs_fused(g, eq, s, fused, pwf, g.interior());

  const RhsSplit sp = split_rhs_box(g.interior(), g.ghost());
  for (int w : kWidths) {
    SCOPED_TRACE(w);
    Fields lanes(g);
    PencilWorkspace pw;
    compute_rhs_simd_width(w, g, eq, s, lanes, pw, sp.interior);
    for (const IndexBox& b : sp.rim)
      compute_rhs_simd_width(w, g, eq, s, lanes, pw, b);
    expect_fields_bitwise(fused, lanes, g.interior());
  }
}

TEST_P(SimdSweep, ThreadedSlabsMatchFusedBitwise) {
  const SphericalGrid g = test_grid(GetParam());
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields fused(g);
  PencilWorkspace pwf;
  compute_rhs_fused(g, eq, s, fused, pwf, g.interior());

  for (int w : kWidths) {
    for (int nthreads : {1, 2, 3, 7}) {
      SCOPED_TRACE(testing::Message() << "width " << w << " threads "
                                      << nthreads);
      Fields par(g);
      std::vector<PencilWorkspace> pool;
      compute_rhs_parallel_simd_width(w, g, eq, s, par, pool, g.interior(),
                                      nthreads);
      expect_fields_bitwise(fused, par, g.interior());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, SimdSweep, ::testing::Values(6, 9, 14));

TEST(SimdRhs, ActiveWidthDispatchMatchesExplicitWidth) {
  // compute_rhs_simd (what the integrators call) must be exactly the
  // forced-width sweep.
  const SphericalGrid g = test_grid(9);
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  for (int w : kWidths) {
    SCOPED_TRACE(w);
    Fields direct(g), dispatched(g);
    PencilWorkspace pw1, pw2;
    compute_rhs_simd_width(w, g, eq, s, direct, pw1, g.interior());
    simd::force_active_width(w);
    compute_rhs_simd(g, eq, s, dispatched, pw2, g.interior());
    simd::force_active_width(0);
    expect_fields_bitwise(direct, dispatched, g.interior());
  }
}

TEST(SimdRhs, ChargesIdenticalFlopsPerBoxAtEveryWidth) {
  // The honest flop count is backend- and width-independent: lanes
  // change the loop shape, not the arithmetic charged per point.
  const SphericalGrid g = test_grid(9);
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);
  Fields out(g);
  PencilWorkspace pw;

  const RhsSplit sp = split_rhs_box(g.interior(), g.ghost());
  std::vector<IndexBox> boxes{g.interior(), sp.interior};
  boxes.insert(boxes.end(), sp.rim.begin(), sp.rim.end());
  for (const IndexBox& b : boxes) {
    if (b.volume() == 0) continue;
    flops::global_reset();
    compute_rhs_fused(g, eq, s, out, pw, b);
    const auto fused_count = flops::global_count();
    EXPECT_GT(fused_count, 0u);
    for (int w : kWidths) {
      flops::global_reset();
      compute_rhs_simd_width(w, g, eq, s, out, pw, b);
      EXPECT_EQ(flops::global_count(), fused_count)
          << "width " << w << " box [" << b.r0 << "," << b.r1 << ")x[" << b.t0
          << "," << b.t1 << ")x[" << b.p0 << "," << b.p1 << ")";
    }
  }
}

TEST(SimdRhs, LaneStatsAccountForPacksAndTails) {
  const SphericalGrid g = test_grid(9);
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);
  Fields out(g);
  PencilWorkspace pw;

  // The sweep runs three radial-line families: the velocity/temperature
  // priming over box.grown(2) on np+4 φ-planes, the derived fields over
  // box.grown(1) on np+2 planes, and the combine over box itself.
  const IndexBox box = g.interior();
  const IndexBox e2 = box.grown(2), e1 = box.grown(1);
  const auto family = [](const IndexBox& b, std::uint64_t planes) {
    return std::pair<std::uint64_t, std::uint64_t>{
        static_cast<std::uint64_t>(b.t1 - b.t0) * planes,
        static_cast<std::uint64_t>(b.r1 - b.r0)};
  };
  const std::uint64_t np = static_cast<std::uint64_t>(box.p1 - box.p0);
  const std::pair<std::uint64_t, std::uint64_t> families[] = {
      family(e2, np + 4), family(e1, np + 2), family(box, np)};

  for (int w : kWidths) {
    SCOPED_TRACE(w);
    simd::LaneStats want;
    for (const auto& [lines, len] : families) {
      const std::uint64_t full = len / w, tail = len % w;
      want.iterations += lines * (full + tail);
      if (w > 1) want.vector_points += lines * full * w;
      want.points += lines * len;
    }

    simd::lane_stats_reset();
    compute_rhs_simd_width(w, g, eq, s, out, pw, g.interior());
    const simd::LaneStats st = simd::lane_stats_total();
    EXPECT_EQ(st.points, want.points);
    EXPECT_EQ(st.iterations, want.iterations);
    EXPECT_EQ(st.vector_points, want.vector_points);
    if (w == 1) {
      // Scalar fallback: every trip retires one point, nothing vector.
      EXPECT_EQ(st.vector_points, 0u);
      EXPECT_EQ(st.iterations, st.points);
      EXPECT_EQ(st.avg_vector_length(), 1.0);
      EXPECT_EQ(st.vector_coverage(), 0.0);
    } else {
      // Odd extents never divide evenly: packs plus a genuine tail.
      EXPECT_GT(st.vector_points, 0u);
      EXPECT_GT(st.avg_vector_length(), 1.0);
      EXPECT_LT(st.avg_vector_length(), static_cast<double>(w));
      EXPECT_GT(st.vector_coverage(), 0.0);
      EXPECT_LT(st.vector_coverage(), 1.0);
    }
  }
  simd::lane_stats_reset();
}

// ---------------------------------------------------------------------
// Manufactured-solution convergence through the SIMD path (compare
// test_rhs_fused.cpp: same oracles, lane-swept evaluation).
// ---------------------------------------------------------------------

double wavy(const Vec3& x) {
  return std::sin(1.3 * x.x) * std::cos(0.7 * x.y) + std::sin(0.9 * x.z);
}
double wavy_lap(const Vec3& x) {
  return -(1.3 * 1.3 + 0.7 * 0.7) * std::sin(1.3 * x.x) * std::cos(0.7 * x.y) -
         0.81 * std::sin(0.9 * x.z);
}
Vec3 wavy_vec(const Vec3& x) {
  return {std::sin(x.y), std::sin(x.z), std::sin(x.x)};
}

/// SIMD RHS of a state at rest with p = 4 + wavy: only (γ−1)κ∇²T
/// survives, evaluated through the lane-widened pencil sweep at the
/// compiled max width (packs *and* tails on these odd-sized grids).
double pressure_diffusion_error_simd(int n) {
  const SphericalGrid g = test_grid(n);
  EquationParams eq;
  eq.kappa = 0.7;
  Fields s(g), rhs(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3& x) { return 4.0 + wavy(x); });
  PencilWorkspace pw;
  compute_rhs_simd_width(simd::compiled_max_width(), g, eq, s, rhs, pw,
                         g.interior());
  const double gm1 = eq.gamma - 1.0;
  return testutil::max_error(g, rhs.p, g.interior(),
                             [&](int ir, int it, int ip) {
                               return gm1 * eq.kappa *
                                      wavy_lap(testutil::cart_of(g, ir, it, ip));
                             });
}

/// Divergence-free momentum through the SIMD continuity channel.
double continuity_error_simd(int n) {
  const SphericalGrid g = test_grid(n);
  EquationParams eq;
  Fields s(g), rhs(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3&) { return 1.0; });
  testutil::fill_vector(g, s.fr, s.ft, s.fp, wavy_vec);
  PencilWorkspace pw;
  compute_rhs_simd_width(simd::compiled_max_width(), g, eq, s, rhs, pw,
                         g.interior());
  return testutil::max_error(g, rhs.rho, g.interior(),
                             [](int, int, int) { return 0.0; });
}

/// A = (sin y, sin z, sin x) ⇒ j = A, so ∂A/∂t → −ηA through the SIMD
/// induction channel.
double induction_error_simd(int n) {
  const SphericalGrid g = test_grid(n);
  EquationParams eq;
  eq.eta = 0.4;
  Fields s(g), rhs(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3&) { return 1.0; });
  testutil::fill_vector(g, s.ar, s.at, s.ap, wavy_vec);
  PencilWorkspace pw;
  compute_rhs_simd_width(simd::compiled_max_width(), g, eq, s, rhs, pw,
                         g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    const Vec3 e = testutil::to_spherical(
        g, it, ip, wavy_vec(testutil::cart_of(g, ir, it, ip)) * (-eq.eta));
    err = std::max({err, std::abs(rhs.ar(ir, it, ip) - e.x),
                    std::abs(rhs.at(ir, it, ip) - e.y),
                    std::abs(rhs.ap(ir, it, ip) - e.z)});
  });
  return err;
}

class SimdConvergence : public ::testing::TestWithParam<double (*)(int)> {};

TEST_P(SimdConvergence, SecondOrderRatioBetweenRefinements) {
  const auto err = GetParam();
  const double e1 = err(13);
  const double e2 = err(25);  // h halves (12 -> 24 intervals)
  EXPECT_GT(e1 / e2, 3.0) << "coarse=" << e1 << " fine=" << e2;
  EXPECT_LT(e2, e1);
}

INSTANTIATE_TEST_SUITE_P(ManufacturedSolutions, SimdConvergence,
                         ::testing::Values(&pressure_diffusion_error_simd,
                                           &continuity_error_simd,
                                           &induction_error_simd));

// ---------------------------------------------------------------------
// Trajectory equivalence: 10 RK4 steps of the distributed solver with
// cfg.simd_rhs on must land on the reference trajectory bitwise, in the
// synchronous and the overlapped stepping mode, at 1, 2 and 4 ranks per
// panel — swept over widths {1, 2, compiled max} via the
// force_active_width hook, which covers the scalar fallback plus at
// least two genuine lane widths on any x86-64 build.  (YY_THREADS=2
// from the ctest registration makes the overlapped runs exercise the
// threaded lane sweep too.)
// ---------------------------------------------------------------------

using testsupport::expect_bitwise_equal;
using testsupport::run_case;
using testsupport::RunResult;

std::vector<int> trajectory_widths() {
  std::vector<int> ws{1, 2, simd::compiled_max_width()};
  std::sort(ws.begin(), ws.end());
  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
  return ws;
}

class SimdTrajectory : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SimdTrajectory, BitwiseEqualToReferenceInSyncAndOverlapModes) {
  const auto [pt, pp] = GetParam();
  const int steps = 10;
  core::SimulationConfig cfg = testsupport::small_trajectory_config();

  cfg.overlap = false;
  const RunResult ref = run_case(cfg, pt, pp, steps);
  ASSERT_GT(ref.dt, 0.0);

  cfg.simd_rhs = true;
  for (int w : trajectory_widths()) {
    SCOPED_TRACE(testing::Message() << "width " << w);
    simd::force_active_width(w);
    cfg.overlap = false;
    const RunResult simd_sync = run_case(cfg, pt, pp, steps);
    expect_bitwise_equal(ref, simd_sync);
    cfg.overlap = true;
    const RunResult simd_over = run_case(cfg, pt, pp, steps);
    expect_bitwise_equal(ref, simd_over);
    simd::force_active_width(0);
  }
}

INSTANTIATE_TEST_SUITE_P(RankLayouts, SimdTrajectory,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 2},
                                           std::pair{2, 2}));

}  // namespace
}  // namespace yy::mhd

/// Pins the scratch-memory contract of both RHS backends (the fix for
/// the historic ~19×YY_THREADS full-grid multiplier): a Workspace
/// allocates exactly the grown-box extents an evaluation indexes, the
/// threaded pool holds slab-sized (not full-grid) entries, and the
/// fused backend's pencil rings are O(depth·Nr·Nt) planes, far below
/// any box-sized volume.
#include "mhd/rhs.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "grid/analytic_fields.hpp"

namespace yy::mhd {
namespace {

using testutil::test_grid;

/// The documented allocation bound: v/T on box.grown(2), the
/// differentiated derived fields on box.grown(1), operator outputs on
/// the box itself — 4 + 7 + 8 = kWorkspaceFields scratch blocks.
std::size_t expected_workspace_doubles(const IndexBox& box) {
  const auto vol = [](const IndexBox& b) {
    return static_cast<std::size_t>(b.volume());
  };
  return 4 * vol(box.grown(2)) + 7 * vol(box.grown(1)) + 8 * vol(box);
}

TEST(WorkspaceFootprint, DefaultWorkspaceAllocatesNothing) {
  Workspace ws;
  EXPECT_EQ(ws.allocated_doubles(), 0u);
  EXPECT_FALSE(ws.covers(IndexBox{2, 3, 2, 3, 2, 3}));
}

TEST(WorkspaceFootprint, BoxWorkspaceAllocatesExactlyTheGrownExtents) {
  static_assert(kWorkspaceFields == 4 + 7 + 8);
  for (const IndexBox box : {IndexBox{2, 9, 2, 14, 2, 20},
                             IndexBox{2, 4, 2, 4, 2, 4},
                             IndexBox{3, 10, 5, 7, 2, 30}}) {
    Workspace ws(box);
    EXPECT_EQ(ws.allocated_doubles(), expected_workspace_doubles(box));
    EXPECT_TRUE(ws.covers(box));
  }
}

TEST(WorkspaceFootprint, EnsureIsMonotoneAndIdempotent) {
  const IndexBox a{2, 8, 2, 8, 2, 10};
  const IndexBox b{4, 10, 3, 9, 6, 14};
  Workspace ws(a);
  ws.ensure(b);
  EXPECT_TRUE(ws.covers(a));
  EXPECT_TRUE(ws.covers(b));
  const std::size_t grown = ws.allocated_doubles();
  ws.ensure(a);  // already covered: no reallocation
  ws.ensure(b);
  EXPECT_EQ(ws.allocated_doubles(), grown);
}

TEST(WorkspaceFootprint, GridWorkspaceCoversEveryInteriorBox) {
  const SphericalGrid g = test_grid(9);
  Workspace ws(g);
  EXPECT_EQ(ws.allocated_doubles(), expected_workspace_doubles(g.interior()));
  const RhsSplit sp = split_rhs_box(g.interior(), g.ghost());
  for (const IndexBox& b : sp.rim) EXPECT_TRUE(ws.covers(b));
}

TEST(WorkspaceFootprint, ParallelPoolEntriesAreSlabSizedNotFullGrid) {
  const SphericalGrid g = test_grid(14);
  EquationParams eq;
  Fields s(g), out(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3&) { return 1.0; });

  const int nthreads = 4;
  std::vector<Workspace> pool;
  compute_rhs_parallel(g, eq, s, out, pool, g.interior(), nthreads);

  ASSERT_EQ(pool.size(), static_cast<std::size_t>(nthreads));
  std::size_t total = 0;
  for (int k = 0; k < nthreads; ++k) {
    const IndexBox slab = phi_slab(g.interior(), nthreads, k);
    EXPECT_EQ(pool[k].allocated_doubles(), expected_workspace_doubles(slab))
        << "pool entry " << k;
    total += pool[k].allocated_doubles();
  }
  // The regression this file exists for: the pool must not hold
  // nthreads full-grid workspaces (the historic ~19×YY_THREADS
  // multiplier).  Slab coverage overlaps only in the stencil halos, so
  // the pool total stays well under two full-patch workspaces.
  const std::size_t full = expected_workspace_doubles(g.interior());
  EXPECT_LT(total, 2 * full);
  EXPECT_LT(total, static_cast<std::size_t>(nthreads) * full);
}

TEST(WorkspaceFootprint, PencilWorkspaceIsPlanesNotVolumes) {
  static_assert(kPencilPlanes == 4 * 5 + 7 * 3);
  const SphericalGrid g = test_grid(14);
  const IndexBox in = g.interior();
  PencilWorkspace pw;
  pw.ensure(in);

  const auto area = [](const IndexBox& b) {
    return static_cast<std::size_t>(b.r1 - b.r0) *
           static_cast<std::size_t>(b.t1 - b.t0);
  };
  const std::size_t expected =
      4 * 5 * area(in.grown(2)) + 7 * 3 * area(in.grown(1));
  EXPECT_EQ(pw.allocated_doubles(), expected);

  // The point of the fused path's memory layer: pencil scratch is a
  // small fraction of the reference path's box-sized volumes.
  EXPECT_LT(5 * pw.allocated_doubles(), expected_workspace_doubles(in));
}

}  // namespace
}  // namespace yy::mhd

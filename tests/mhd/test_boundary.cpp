#include "mhd/boundary.hpp"

#include <gtest/gtest.h>

namespace yy::mhd {
namespace {

SphericalGrid shell_grid() {
  GridSpec s;
  s.nr = 7;
  s.nt = 5;
  s.np = 5;
  s.r0 = 0.4;
  s.r1 = 1.0;
  s.t0 = 0.9;
  s.t1 = 2.2;
  s.p0 = -1.0;
  s.p1 = 1.0;
  s.ghost = 2;
  return SphericalGrid(s);
}

class BoundaryTest : public ::testing::Test {
 protected:
  BoundaryTest() : g(shell_grid()), bc({2.0, 1.0}), s(g) {
    // Some non-trivial interior data.
    for_box(g.full(), [&](int ir, int it, int ip) {
      s.rho(ir, it, ip) = 1.0 + 0.1 * ir;
      s.p(ir, it, ip) = 2.0 + 0.05 * ir + 0.01 * it;
      s.fr(ir, it, ip) = 0.3 * ir - it * 0.1;
      s.ft(ir, it, ip) = 0.2 * ip;
      s.fp(ir, it, ip) = -0.1 * ir;
      s.ar(ir, it, ip) = 0.01 * (ir + it + ip);
      s.at(ir, it, ip) = 0.02 * ir;
      s.ap(ir, it, ip) = -0.01 * it;
    });
  }
  SphericalGrid g;
  RadialBoundary bc;
  Fields s;
};

TEST_F(BoundaryTest, WallsAreRigidNoSlip) {
  bc.apply(g, s);
  const int iw_in = g.ghost();
  const int iw_out = g.ghost() + g.spec().nr - 1;
  for (int ip = 0; ip < g.Np(); ++ip)
    for (int it = 0; it < g.Nt(); ++it)
      for (int iw : {iw_in, iw_out}) {
        EXPECT_DOUBLE_EQ(s.fr(iw, it, ip), 0.0);
        EXPECT_DOUBLE_EQ(s.ft(iw, it, ip), 0.0);
        EXPECT_DOUBLE_EQ(s.fp(iw, it, ip), 0.0);
      }
}

TEST_F(BoundaryTest, WallTemperaturesFixedHotInnerColdOuter) {
  bc.apply(g, s);
  const int iw_in = g.ghost();
  const int iw_out = g.ghost() + g.spec().nr - 1;
  for (int ip = 0; ip < g.Np(); ++ip)
    for (int it = 0; it < g.Nt(); ++it) {
      EXPECT_DOUBLE_EQ(s.p(iw_in, it, ip) / s.rho(iw_in, it, ip), 2.0);
      EXPECT_DOUBLE_EQ(s.p(iw_out, it, ip) / s.rho(iw_out, it, ip), 1.0);
    }
}

TEST_F(BoundaryTest, PotentialClampedOnWalls) {
  bc.apply(g, s);
  const int iw_in = g.ghost();
  const int iw_out = g.ghost() + g.spec().nr - 1;
  for (int iw : {iw_in, iw_out}) {
    EXPECT_DOUBLE_EQ(s.ar(iw, 2, 2), 0.0);
    EXPECT_DOUBLE_EQ(s.at(iw, 2, 2), 0.0);
    EXPECT_DOUBLE_EQ(s.ap(iw, 2, 2), 0.0);
  }
}

TEST_F(BoundaryTest, MassFluxGhostsOddReflected) {
  bc.apply(g, s);
  const int iw = g.ghost();  // inner wall
  for (int k = 1; k <= g.ghost(); ++k) {
    EXPECT_DOUBLE_EQ(s.fr(iw - k, 2, 3), -s.fr(iw + k, 2, 3));
    EXPECT_DOUBLE_EQ(s.ft(iw - k, 2, 3), -s.ft(iw + k, 2, 3));
  }
}

TEST_F(BoundaryTest, DensityGhostsZeroGradient) {
  bc.apply(g, s);
  const int iw = g.ghost() + g.spec().nr - 1;  // outer wall
  for (int k = 1; k <= g.ghost(); ++k)
    EXPECT_DOUBLE_EQ(s.rho(iw + k, 1, 1), s.rho(iw - k, 1, 1));
}

TEST_F(BoundaryTest, TemperatureGhostsOddAboutWallValue) {
  bc.apply(g, s);
  const int iw = g.ghost();
  for (int k = 1; k <= g.ghost(); ++k) {
    const double t_ghost = s.p(iw - k, 3, 3) / s.rho(iw - k, 3, 3);
    const double t_mirror = s.p(iw + k, 3, 3) / s.rho(iw + k, 3, 3);
    EXPECT_NEAR(t_ghost + t_mirror, 2.0 * 2.0, 1e-12);  // avg = T_bc = 2
  }
}

TEST_F(BoundaryTest, InteriorAwayFromWallsUntouched) {
  const double before = s.p(g.ghost() + 3, 3, 3);
  bc.apply(g, s);
  EXPECT_DOUBLE_EQ(s.p(g.ghost() + 3, 3, 3), before);
}

TEST_F(BoundaryTest, SingleWallVariantsTouchOneSideOnly) {
  Fields t(g);
  t.copy_from(s);
  RadialBoundary inner_only({2.0, 1.0}, true, false);
  inner_only.apply(g, t);
  const int iw_out = g.ghost() + g.spec().nr - 1;
  // Outer wall flux untouched (still whatever the fixture set).
  EXPECT_DOUBLE_EQ(t.fr(iw_out, 2, 2), s.fr(iw_out, 2, 2));
  EXPECT_DOUBLE_EQ(t.fr(g.ghost(), 2, 2), 0.0);
}

}  // namespace
}  // namespace yy::mhd

/// Pins the interior/rim decomposition of the RHS sweep (mhd/rhs.hpp
/// RhsSplit): the split tiles the box exactly, and evaluating interior
/// then rim reproduces the monolithic compute_rhs bitwise — including
/// on the minimum patch where the rim covers everything, and under the
/// threaded φ-slab sweep for several thread counts.
#include "mhd/rhs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grid/analytic_fields.hpp"

namespace yy::mhd {
namespace {

using testutil::test_grid;

void fill_smooth(const SphericalGrid& g, Fields& s) {
  testutil::fill_scalar(g, s.rho, [](const Vec3& x) {
    return 1.0 + 0.1 * std::sin(x.x) * std::cos(x.y);
  });
  testutil::fill_scalar(g, s.p, [](const Vec3& x) {
    return 1.0 + 0.05 * std::cos(2.0 * x.z);
  });
  testutil::fill_vector(g, s.fr, s.ft, s.fp, [](const Vec3& x) {
    return Vec3{0.2 * x.y, -0.1 * x.z, 0.3 * std::sin(x.x)};
  });
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return Vec3{0.02 * x.z * x.z, 0.01 * x.x, 0.03 * std::cos(x.y)};
  });
}

EquationParams test_eq() {
  EquationParams eq;
  eq.mu = 2e-3;
  eq.kappa = 1e-3;
  eq.eta = 4e-3;
  eq.g0 = 1.5;
  eq.omega = {0.3, 0.0, 5.0};
  return eq;
}

/// Every point of `box` must land in exactly one piece of the split.
void expect_exact_tiling(const IndexBox& box, const RhsSplit& sp) {
  std::int64_t vol = sp.interior.volume();
  for (const IndexBox& b : sp.rim) {
    EXPECT_GT(b.volume(), 0);
    vol += b.volume();
  }
  EXPECT_EQ(vol, box.volume());  // total volume matches ...
  std::set<std::tuple<int, int, int>> seen;  // ... and no point twice
  auto collect = [&](const IndexBox& b) {
    for_box(b, [&](int ir, int it, int ip) {
      EXPECT_TRUE(seen.insert({ir, it, ip}).second)
          << "duplicate point " << ir << "," << it << "," << ip;
      EXPECT_TRUE(ir >= box.r0 && ir < box.r1 && it >= box.t0 &&
                  it < box.t1 && ip >= box.p0 && ip < box.p1);
    });
  };
  collect(sp.interior);
  for (const IndexBox& b : sp.rim) collect(b);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(box.volume()));
}

TEST(RhsSplit, TilesExactlyForVariousBoxesAndRims) {
  for (const IndexBox box : {IndexBox{2, 9, 2, 14, 2, 20},
                             IndexBox{0, 3, 1, 5, 1, 5},
                             IndexBox{2, 4, 2, 4, 2, 4}}) {
    for (int rim = 0; rim <= 4; ++rim) {
      SCOPED_TRACE(rim);
      expect_exact_tiling(box, split_rhs_box(box, rim));
    }
  }
}

TEST(RhsSplit, InteriorNeverShrinksRadially) {
  const IndexBox box{1, 10, 2, 12, 2, 12};
  const RhsSplit sp = split_rhs_box(box, 2);
  EXPECT_EQ(sp.interior.r0, box.r0);
  EXPECT_EQ(sp.interior.r1, box.r1);
  EXPECT_EQ(sp.interior.t0, box.t0 + 2);
  EXPECT_EQ(sp.interior.t1, box.t1 - 2);
  EXPECT_EQ(sp.interior.p0, box.p0 + 2);
  EXPECT_EQ(sp.interior.p1, box.p1 - 2);
  EXPECT_FALSE(sp.interior_empty());
}

TEST(RhsSplit, DegeneratePatchIsAllRim) {
  // Horizontal extent ≤ 2·rim: the interior collapses, the rim covers
  // the whole box, and nothing is double-counted.
  const IndexBox box{2, 9, 2, 6, 2, 6};
  const RhsSplit sp = split_rhs_box(box, 2);
  EXPECT_TRUE(sp.interior_empty());
  expect_exact_tiling(box, sp);
}

TEST(RhsSplit, ZeroRimIsAllInterior) {
  const IndexBox box{2, 9, 2, 12, 2, 16};
  const RhsSplit sp = split_rhs_box(box, 0);
  EXPECT_EQ(sp.interior.volume(), box.volume());
  EXPECT_TRUE(sp.rim.empty());
}

class RhsSplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(RhsSplitSweep, InteriorPlusRimMatchesMonolithicBitwise) {
  // Grid edge length n: n = 6 is the minimum decomposable size with
  // ghost 2 (rim covers the whole interior), larger sizes exercise a
  // genuine interior.
  const int n = GetParam();
  const SphericalGrid g = test_grid(n);
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields mono(g), split(g);
  Workspace ws(g);
  compute_rhs(g, eq, s, mono, ws, g.interior());

  const RhsSplit sp = split_rhs_box(g.interior(), g.ghost());
  compute_rhs(g, eq, s, split, ws, sp.interior);
  for (const IndexBox& b : sp.rim) compute_rhs(g, eq, s, split, ws, b);

  for_box(g.interior(), [&](int ir, int it, int ip) {
    for (int f = 0; f < Fields::kNumFields; ++f) {
      ASSERT_EQ((*mono.all()[f])(ir, it, ip), (*split.all()[f])(ir, it, ip))
          << "field " << f << " at " << ir << "," << it << "," << ip;
    }
  });
}

TEST_P(RhsSplitSweep, ThreadedSlabsMatchMonolithicBitwise) {
  const int n = GetParam();
  const SphericalGrid g = test_grid(n);
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields mono(g);
  Workspace ws(g);
  compute_rhs(g, eq, s, mono, ws, g.interior());

  for (int nthreads : {1, 2, 3, 7}) {
    SCOPED_TRACE(nthreads);
    Fields par(g);
    std::vector<Workspace> pool;
    compute_rhs_parallel(g, eq, s, par, pool, g.interior(), nthreads);
    for_box(g.interior(), [&](int ir, int it, int ip) {
      for (int f = 0; f < Fields::kNumFields; ++f) {
        ASSERT_EQ((*mono.all()[f])(ir, it, ip), (*par.all()[f])(ir, it, ip))
            << "nthreads " << nthreads << " field " << f;
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, RhsSplitSweep,
                         ::testing::Values(6, 9, 14));

}  // namespace
}  // namespace yy::mhd

#include "mhd/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grid/analytic_fields.hpp"

namespace yy::mhd {
namespace {

SphericalGrid diag_grid(int n) {
  GridSpec s;
  s.nr = n;
  s.nt = n;
  s.np = n;
  s.r0 = 0.5;
  s.r1 = 1.0;
  s.t0 = 0.7;
  s.t1 = 2.1;
  s.p0 = -1.5;
  s.p1 = 1.5;
  s.ghost = 2;
  return SphericalGrid(s);
}

double patch_volume(const SphericalGrid& g) {
  // Analytic ∫ r² sinθ over the interior spans.
  const auto& sp = g.spec();
  return (std::pow(sp.r1, 3) - std::pow(sp.r0, 3)) / 3.0 *
         (std::cos(sp.t0) - std::cos(sp.t1)) * (sp.p1 - sp.p0);
}

class DiagnosticsTest : public ::testing::Test {
 protected:
  DiagnosticsTest()
      : g(diag_grid(20)), s(g), ws(g), w(g.Nt(), g.Np(), 0.0) {
    // Trapezoid column weights in θ/φ (integrate_energies supplies the
    // radial end-weights itself), so integrals are quadrature-accurate.
    const IndexBox in = g.interior();
    for (int it = in.t0; it < in.t1; ++it)
      for (int ip = in.p0; ip < in.p1; ++ip) {
        double ww = 1.0;
        if (it == in.t0 || it == in.t1 - 1) ww *= 0.5;
        if (ip == in.p0 || ip == in.p1 - 1) ww *= 0.5;
        w.at(it, ip) = ww;
      }
  }
  SphericalGrid g;
  Fields s;
  Workspace ws;
  ColumnWeights w;
  EquationParams eq;
};

TEST_F(DiagnosticsTest, MassOfUniformDensity) {
  const EnergyBudget e = integrate_energies(g, eq, s, ws, w, g.interior());
  EXPECT_NEAR(e.mass, patch_volume(g), 0.1 * patch_volume(g));
}

TEST_F(DiagnosticsTest, KineticEnergyOfKnownFlow) {
  // f = ρv with ρ = 2, |v| = 3: KE density = ½ρ|v|² = 9.
  s.rho.fill(2.0);
  for_box(g.full(), [&](int ir, int it, int ip) {
    s.fr(ir, it, ip) = 2.0 * 3.0;  // v = (3, 0, 0)
  });
  const EnergyBudget e = integrate_energies(g, eq, s, ws, w, g.interior());
  EXPECT_NEAR(e.kinetic / patch_volume(g), 9.0, 0.9);
}

TEST_F(DiagnosticsTest, MagneticEnergyOfUniformField) {
  // A = ½ B0×x: B = B0, energy density = |B0|²/2.
  const Vec3 b0{0.6, 0.0, 0.8};  // |B0| = 1
  testutil::fill_vector(g, s.ar, s.at, s.ap,
                        [&](const Vec3& x) { return 0.5 * b0.cross(x); });
  const EnergyBudget e = integrate_energies(g, eq, s, ws, w, g.interior());
  EXPECT_NEAR(e.magnetic / patch_volume(g), 0.5, 0.05);
}

TEST_F(DiagnosticsTest, ThermalEnergyTracksPressure) {
  s.p.fill(3.0);
  const EnergyBudget e = integrate_energies(g, eq, s, ws, w, g.interior());
  EXPECT_NEAR(e.thermal / patch_volume(g), 3.0 / (eq.gamma - 1.0), 0.5);
}

TEST_F(DiagnosticsTest, ZeroWeightColumnsExcluded) {
  ColumnWeights none(g.Nt(), g.Np(), 0.0);
  const EnergyBudget e = integrate_energies(g, eq, s, ws, none, g.interior());
  EXPECT_DOUBLE_EQ(e.mass, 0.0);
  EXPECT_DOUBLE_EQ(e.thermal, 0.0);
}

TEST_F(DiagnosticsTest, HalfWeightHalvesIntegral) {
  ColumnWeights half(g.Nt(), g.Np(), 0.0);
  const IndexBox in = g.interior();
  for (int it = in.t0; it < in.t1; ++it)
    for (int ip = in.p0; ip < in.p1; ++ip) half.at(it, ip) = 0.5 * w.at(it, ip);
  const EnergyBudget full = integrate_energies(g, eq, s, ws, w, g.interior());
  const EnergyBudget h = integrate_energies(g, eq, s, ws, half, g.interior());
  EXPECT_NEAR(h.mass, 0.5 * full.mass, 1e-12);
}

TEST_F(DiagnosticsTest, BudgetAccumulationOperator) {
  EnergyBudget a{1, 2, 3, 4}, b{10, 20, 30, 40};
  a += b;
  EXPECT_DOUBLE_EQ(a.mass, 11);
  EXPECT_DOUBLE_EQ(a.kinetic, 22);
  EXPECT_DOUBLE_EQ(a.magnetic, 33);
  EXPECT_DOUBLE_EQ(a.thermal, 44);
}

TEST_F(DiagnosticsTest, TimestepPositiveAndFinite) {
  const double dt = stable_timestep(g, eq, s, ws, g.interior());
  EXPECT_GT(dt, 0.0);
  EXPECT_LT(dt, 1.0);
}

TEST_F(DiagnosticsTest, TimestepShrinksWithResolution) {
  SphericalGrid fine = diag_grid(40);
  Fields sf(fine);
  Workspace wf(fine);
  const double dt_coarse = stable_timestep(g, eq, s, ws, g.interior());
  const double dt_fine = stable_timestep(fine, eq, sf, wf, fine.interior());
  EXPECT_LT(dt_fine, dt_coarse);
  // Advection-limited: halving h should roughly halve dt.
  EXPECT_NEAR(dt_coarse / dt_fine, 2.0, 0.6);
}

TEST_F(DiagnosticsTest, TimestepShrinksWithFlowSpeed) {
  const double dt_rest = stable_timestep(g, eq, s, ws, g.interior());
  s.fr.fill(10.0);  // fast radial flow
  const double dt_fast = stable_timestep(g, eq, s, ws, g.interior());
  EXPECT_LT(dt_fast, dt_rest);
}

TEST_F(DiagnosticsTest, TimestepShrinksWithStiffDiffusion) {
  EquationParams stiff = eq;
  stiff.mu = 1.0;
  const double dt_soft = stable_timestep(g, eq, s, ws, g.interior());
  const double dt_stiff = stable_timestep(g, stiff, s, ws, g.interior());
  EXPECT_LT(dt_stiff, dt_soft);
}

TEST_F(DiagnosticsTest, TimestepShrinksWithStrongField) {
  // Large uniform B raises the fast speed: A = ½ B0×x with |B0| = 20.
  const double dt_weak = stable_timestep(g, eq, s, ws, g.interior());
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return 0.5 * Vec3{0, 0, 20.0}.cross(x);
  });
  const double dt_strong = stable_timestep(g, eq, s, ws, g.interior());
  EXPECT_LT(dt_strong, 0.5 * dt_weak);
}

}  // namespace
}  // namespace yy::mhd

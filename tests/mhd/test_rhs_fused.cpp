/// The fused-backend equivalence harness (DESIGN.md §11): the fused
/// cache-blocked pencil sweep must reproduce the reference
/// operator-at-a-time chain *bitwise* — same per-point expression trees
/// instantiated twice, no FMA contraction — on full interiors, on the
/// interior/rim split (including the all-rim minimum patch), under the
/// threaded φ-slab sweep, and over full 10-step RK4 trajectories at
/// 1, 2 and 4 ranks per panel in both the synchronous and overlapped
/// stepping modes.  Manufactured solutions additionally pin the fused
/// path's second-order convergence, and the software flop counter must
/// charge identically for both backends.
#include "mhd/rhs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/flops.hpp"
#include "grid/analytic_fields.hpp"
#include "support/equivalence.hpp"

namespace yy::mhd {
namespace {

using testutil::test_grid;

void fill_smooth(const SphericalGrid& g, Fields& s) {
  testutil::fill_scalar(g, s.rho, [](const Vec3& x) {
    return 1.0 + 0.1 * std::sin(x.x) * std::cos(x.y);
  });
  testutil::fill_scalar(g, s.p, [](const Vec3& x) {
    return 1.0 + 0.05 * std::cos(2.0 * x.z);
  });
  testutil::fill_vector(g, s.fr, s.ft, s.fp, [](const Vec3& x) {
    return Vec3{0.2 * x.y, -0.1 * x.z, 0.3 * std::sin(x.x)};
  });
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return Vec3{0.02 * x.z * x.z, 0.01 * x.x, 0.03 * std::cos(x.y)};
  });
}

EquationParams test_eq() {
  EquationParams eq;
  eq.mu = 2e-3;
  eq.kappa = 1e-3;
  eq.eta = 4e-3;
  eq.g0 = 1.5;
  eq.omega = {0.3, 0.0, 5.0};
  return eq;
}

void expect_fields_bitwise(const Fields& a, const Fields& b,
                           const IndexBox& box) {
  for_box(box, [&](int ir, int it, int ip) {
    for (int f = 0; f < Fields::kNumFields; ++f) {
      ASSERT_EQ((*a.all()[f])(ir, it, ip), (*b.all()[f])(ir, it, ip))
          << "field " << f << " at " << ir << "," << it << "," << ip;
    }
  });
}

class FusedSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusedSweep, MatchesReferenceBitwiseOnFullInterior) {
  const SphericalGrid g = test_grid(GetParam());
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields ref(g), fused(g);
  Workspace ws(g);
  compute_rhs(g, eq, s, ref, ws, g.interior());
  PencilWorkspace pw;
  compute_rhs_fused(g, eq, s, fused, pw, g.interior());

  expect_fields_bitwise(ref, fused, g.interior());
}

TEST_P(FusedSweep, SplitInteriorPlusRimMatchesReferenceBitwise) {
  // n = 6 is the minimum decomposable size with ghost 2: the interior
  // collapses and the fused sweep runs on rim boxes only.
  const SphericalGrid g = test_grid(GetParam());
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields ref(g), fused(g);
  Workspace ws(g);
  compute_rhs(g, eq, s, ref, ws, g.interior());

  const RhsSplit sp = split_rhs_box(g.interior(), g.ghost());
  PencilWorkspace pw;
  compute_rhs_fused(g, eq, s, fused, pw, sp.interior);
  for (const IndexBox& b : sp.rim) compute_rhs_fused(g, eq, s, fused, pw, b);

  expect_fields_bitwise(ref, fused, g.interior());
}

TEST_P(FusedSweep, ThreadedSlabsMatchReferenceBitwise) {
  const SphericalGrid g = test_grid(GetParam());
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);

  Fields ref(g);
  Workspace ws(g);
  compute_rhs(g, eq, s, ref, ws, g.interior());

  for (int nthreads : {1, 2, 3, 7}) {
    SCOPED_TRACE(nthreads);
    Fields par(g);
    std::vector<PencilWorkspace> pool;
    compute_rhs_parallel_fused(g, eq, s, par, pool, g.interior(), nthreads);
    expect_fields_bitwise(ref, par, g.interior());
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, FusedSweep, ::testing::Values(6, 9, 14));

TEST(FusedRhs, ChargesIdenticalFlopsPerBox) {
  // Both backends must report the same honest flop count over every
  // box shape — the perf model's flops_per_point_per_step is
  // backend-independent by construction.
  const SphericalGrid g = test_grid(9);
  const EquationParams eq = test_eq();
  Fields s(g);
  fill_smooth(g, s);
  Fields out(g);
  Workspace ws(g);
  PencilWorkspace pw;

  const RhsSplit sp = split_rhs_box(g.interior(), g.ghost());
  std::vector<IndexBox> boxes{g.interior(), sp.interior};
  boxes.insert(boxes.end(), sp.rim.begin(), sp.rim.end());
  for (const IndexBox& b : boxes) {
    if (b.volume() == 0) continue;
    flops::global_reset();
    compute_rhs(g, eq, s, out, ws, b);
    const auto ref_count = flops::global_count();
    flops::global_reset();
    compute_rhs_fused(g, eq, s, out, pw, b);
    EXPECT_EQ(flops::global_count(), ref_count)
        << "box [" << b.r0 << "," << b.r1 << ")x[" << b.t0 << "," << b.t1
        << ")x[" << b.p0 << "," << b.p1 << ")";
    EXPECT_GT(ref_count, 0u);
  }
}

TEST(FusedRhs, PhiSlabsTileTheBoxExactly) {
  const IndexBox box{2, 9, 2, 14, 2, 21};
  for (int n : {1, 2, 3, 7, 19}) {
    SCOPED_TRACE(n);
    int covered = box.p0;
    for (int k = 0; k < n; ++k) {
      const IndexBox slab = phi_slab(box, n, k);
      EXPECT_EQ(slab.r0, box.r0);
      EXPECT_EQ(slab.r1, box.r1);
      EXPECT_EQ(slab.t0, box.t0);
      EXPECT_EQ(slab.t1, box.t1);
      EXPECT_EQ(slab.p0, covered);  // contiguous, no gap or overlap
      EXPECT_GE(slab.p1, slab.p0);
      covered = slab.p1;
    }
    EXPECT_EQ(covered, box.p1);
  }
}

// ---------------------------------------------------------------------
// Manufactured-solution convergence through the fused path: the same
// second-order slopes tests/grid/test_fd_convergence.cpp pins for the
// standalone operators, but measured on compute_rhs_fused outputs.
// ---------------------------------------------------------------------

// Smooth fields with known derivatives (shared with the FD sweep).
double wavy(const Vec3& x) {
  return std::sin(1.3 * x.x) * std::cos(0.7 * x.y) + std::sin(0.9 * x.z);
}
double wavy_lap(const Vec3& x) {
  return -(1.3 * 1.3 + 0.7 * 0.7) * std::sin(1.3 * x.x) * std::cos(0.7 * x.y) -
         0.81 * std::sin(0.9 * x.z);
}
Vec3 wavy_vec(const Vec3& x) {
  return {std::sin(x.y), std::sin(x.z), std::sin(x.x)};
}

/// Fused RHS of a state at rest (ρ = 1, f = 0, A = 0) with p = 4 + wavy:
/// every term of eq. (4) vanishes except (γ−1)κ∇²T with T = p.
double pressure_diffusion_error(int n) {
  const SphericalGrid g = test_grid(n);
  EquationParams eq;
  eq.kappa = 0.7;
  Fields s(g), rhs(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3& x) { return 4.0 + wavy(x); });
  PencilWorkspace pw;
  compute_rhs_fused(g, eq, s, rhs, pw, g.interior());
  const double gm1 = eq.gamma - 1.0;
  return testutil::max_error(g, rhs.p, g.interior(),
                             [&](int ir, int it, int ip) {
                               return gm1 * eq.kappa *
                                      wavy_lap(testutil::cart_of(g, ir, it, ip));
                             });
}

/// ∂ρ/∂t = −∇·f with the divergence-free f = (sin y, sin z, sin x):
/// the fused continuity channel must converge to zero at 2nd order.
double continuity_error(int n) {
  const SphericalGrid g = test_grid(n);
  EquationParams eq;
  Fields s(g), rhs(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3&) { return 1.0; });
  testutil::fill_vector(g, s.fr, s.ft, s.fp, wavy_vec);
  PencilWorkspace pw;
  compute_rhs_fused(g, eq, s, rhs, pw, g.interior());
  return testutil::max_error(g, rhs.rho, g.interior(),
                             [](int, int, int) { return 0.0; });
}

/// At rest with A = (sin y, sin z, sin x): ∇·A = 0 and ∇²A = −A, so
/// j = ∇×∇×A = A and the fused induction channel must converge to
/// ∂A/∂t = −ηA at 2nd order.
double induction_error(int n) {
  const SphericalGrid g = test_grid(n);
  EquationParams eq;
  eq.eta = 0.4;
  Fields s(g), rhs(g);
  testutil::fill_scalar(g, s.rho, [](const Vec3&) { return 1.0; });
  testutil::fill_scalar(g, s.p, [](const Vec3&) { return 1.0; });
  testutil::fill_vector(g, s.ar, s.at, s.ap, wavy_vec);
  PencilWorkspace pw;
  compute_rhs_fused(g, eq, s, rhs, pw, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    const Vec3 e = testutil::to_spherical(
        g, it, ip, wavy_vec(testutil::cart_of(g, ir, it, ip)) * (-eq.eta));
    err = std::max({err, std::abs(rhs.ar(ir, it, ip) - e.x),
                    std::abs(rhs.at(ir, it, ip) - e.y),
                    std::abs(rhs.ap(ir, it, ip) - e.z)});
  });
  return err;
}

class FusedConvergence
    : public ::testing::TestWithParam<double (*)(int)> {};

TEST_P(FusedConvergence, SecondOrderRatioBetweenRefinements) {
  // error(n) ~ C h² with h ∝ 1/(n−1): refining n−1 by 2× must shrink
  // the error by ≈4×; accept ≥3× to absorb higher-order terms.
  const auto err = GetParam();
  const double e1 = err(13);
  const double e2 = err(25);  // h halves (12 -> 24 intervals)
  EXPECT_GT(e1 / e2, 3.0) << "coarse=" << e1 << " fine=" << e2;
  EXPECT_LT(e2, e1);
}

INSTANTIATE_TEST_SUITE_P(ManufacturedSolutions, FusedConvergence,
                         ::testing::Values(&pressure_diffusion_error,
                                           &continuity_error,
                                           &induction_error));

// ---------------------------------------------------------------------
// Trajectory equivalence: 10 RK4 steps of the distributed solver with
// cfg.fused_rhs on must land on the reference trajectory bitwise, in
// the synchronous and the overlapped stepping mode, at 1, 2 and 4
// ranks per panel.  (With YY_THREADS=2 from the ctest registration the
// overlapped runs also exercise the threaded fused φ-slab sweep.)
// Helpers shared with the overlap/SIMD/rank-death suites:
// tests/support/equivalence.hpp.
// ---------------------------------------------------------------------

using testsupport::expect_bitwise_equal;
using testsupport::run_case;
using testsupport::RunResult;

class FusedTrajectory : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FusedTrajectory, BitwiseEqualToReferenceInSyncAndOverlapModes) {
  const auto [pt, pp] = GetParam();
  const int steps = 10;
  core::SimulationConfig cfg = testsupport::small_trajectory_config();

  cfg.fused_rhs = false;
  cfg.overlap = false;
  const RunResult ref = run_case(cfg, pt, pp, steps);
  ASSERT_GT(ref.dt, 0.0);

  cfg.fused_rhs = true;
  const RunResult fused_sync = run_case(cfg, pt, pp, steps);
  expect_bitwise_equal(ref, fused_sync);

  cfg.overlap = true;
  const RunResult fused_over = run_case(cfg, pt, pp, steps);
  expect_bitwise_equal(ref, fused_over);
}

INSTANTIATE_TEST_SUITE_P(RankLayouts, FusedTrajectory,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 2},
                                           std::pair{2, 2}));

}  // namespace
}  // namespace yy::mhd

#include "mhd/state.hpp"

#include <gtest/gtest.h>

namespace yy::mhd {
namespace {

SphericalGrid small_grid() {
  GridSpec s;
  s.nr = 4;
  s.nt = 5;
  s.np = 6;
  s.r0 = 0.5;
  s.r1 = 1.0;
  s.t0 = 0.8;
  s.t1 = 2.3;
  s.p0 = -1.0;
  s.p1 = 1.0;
  s.ghost = 2;
  return SphericalGrid(s);
}

TEST(Fields, ConstructedWithPhysicalDefaults) {
  SphericalGrid g = small_grid();
  Fields s(g);
  EXPECT_DOUBLE_EQ(s.rho(0, 0, 0), 1.0);  // normalized outer density
  EXPECT_DOUBLE_EQ(s.p(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.fr(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.ar(0, 0, 0), 0.0);
}

TEST(Fields, AllExposesEightFieldsInPaperOrder) {
  SphericalGrid g = small_grid();
  Fields s(g);
  auto all = s.all();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0], &s.rho);
  EXPECT_EQ(all[1], &s.fr);
  EXPECT_EQ(all[4], &s.p);
  EXPECT_EQ(all[7], &s.ap);
}

TEST(Fields, CopyFromReplicatesEverything) {
  SphericalGrid g = small_grid();
  Fields a(g), b(g);
  a.rho(1, 2, 3) = 9.0;
  a.ap(2, 2, 2) = -4.0;
  b.copy_from(a);
  EXPECT_DOUBLE_EQ(b.rho(1, 2, 3), 9.0);
  EXPECT_DOUBLE_EQ(b.ap(2, 2, 2), -4.0);
}

TEST(Fields, AxpyIsElementwiseFma) {
  SphericalGrid g = small_grid();
  Fields a(g), x(g);
  x.p(1, 1, 1) = 4.0;     // p starts at 1.0 in a
  x.fr(1, 1, 1) = 2.0;    // fr starts at 0.0
  a.axpy(0.5, x);
  EXPECT_DOUBLE_EQ(a.p(1, 1, 1), 1.0 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(a.fr(1, 1, 1), 1.0);
}

TEST(Fields, AssignAxpyMatchesManualComposition) {
  SphericalGrid g = small_grid();
  Fields base(g), x(g), out(g), manual(g);
  base.p(2, 3, 1) = 3.0;
  x.p(2, 3, 1) = -2.0;
  out.assign_axpy(base, 0.25, x);
  manual.copy_from(base);
  manual.axpy(0.25, x);
  EXPECT_DOUBLE_EQ(out.p(2, 3, 1), manual.p(2, 3, 1));
  EXPECT_DOUBLE_EQ(out.p(2, 3, 1), 3.0 + 0.25 * -2.0);
}

TEST(Fields, SetZeroClearsAll) {
  SphericalGrid g = small_grid();
  Fields s(g);
  s.set_zero();
  for (const Field3* f : s.all())
    for (double v : f->flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Fields, RungeKuttaStageAlgebraIdentity) {
  // acc = y + dt/6 k1 + dt/3 k2 composed via axpy must equal the direct
  // expression — the exact algebra Rk4 relies on.
  SphericalGrid g = small_grid();
  Fields y(g), k1(g), k2(g), acc(g);
  y.p(1, 1, 1) = 2.0;
  k1.p(1, 1, 1) = 6.0;
  k2.p(1, 1, 1) = -3.0;
  const double dt = 0.1;
  acc.copy_from(y);
  acc.axpy(dt / 6.0, k1);
  acc.axpy(dt / 3.0, k2);
  EXPECT_NEAR(acc.p(1, 1, 1), 2.0 + dt * (6.0 / 6.0 - 3.0 / 3.0), 1e-15);
}

}  // namespace
}  // namespace yy::mhd

#include "mhd/rhs.hpp"

#include <gtest/gtest.h>

#include "common/flops.hpp"
#include "grid/analytic_fields.hpp"
#include "mhd/init.hpp"

namespace yy::mhd {
namespace {

using testutil::test_grid;

class RhsTest : public ::testing::Test {
 protected:
  RhsTest() : g(test_grid(14)), s(g), rhs(g), ws(g) {}

  double max_abs(const Field3& f, const IndexBox& box) const {
    double m = 0.0;
    for_box(box, [&](int ir, int it, int ip) {
      m = std::max(m, std::abs(f(ir, it, ip)));
    });
    return m;
  }

  SphericalGrid g;
  Fields s;
  Fields rhs;
  Workspace ws;
};

TEST_F(RhsTest, UniformRestStateIsStationaryWithoutGravity) {
  EquationParams eq;
  eq.g0 = 0.0;
  eq.omega = {0, 0, 0};
  // ρ = p = 1, f = A = 0 (the Fields defaults) is an exact equilibrium.
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  const IndexBox in = g.interior();
  for (const Field3* f :
       {&rhs.rho, &rhs.fr, &rhs.ft, &rhs.fp, &rhs.ar, &rhs.at, &rhs.ap})
    EXPECT_LT(max_abs(*f, in), 1e-11);
  EXPECT_LT(max_abs(rhs.p, in), 1e-10);
}

TEST_F(RhsTest, HydrostaticConductiveStateNearlyBalanced) {
  EquationParams eq;
  eq.g0 = 2.0;
  eq.kappa = 1e-3;
  const ShellSpec shell{0.5, 1.0};
  const ThermalBc bc{2.0, 1.0};
  for_box(g.full(), [&](int ir, int it, int ip) {
    const double rho = hydrostatic_density(shell, bc, eq.g0, g.r(ir));
    s.rho(ir, it, ip) = rho;
    s.p(ir, it, ip) = rho * conductive_temperature(shell, bc, g.r(ir));
  });
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  // Momentum residual must be truncation-sized, far below the
  // competing terms (|∇p| = ρ g0/r² reaches 8 at the inner wall).
  EXPECT_LT(max_abs(rhs.fr, g.interior()), 0.25);
  // Conductive T is harmonic: heating term ~ K·∇²T ≈ 0.
  EXPECT_LT(max_abs(rhs.p, g.interior()), 2e-2);
}

TEST_F(RhsTest, ContinuityMatchesMinusDivF) {
  EquationParams eq;
  eq.g0 = 0.0;
  // f = (x, 2y, 3z) Cartesian with uniform ρ: ∂ρ/∂t = −∇·f = −6.
  testutil::fill_vector(g, s.fr, s.ft, s.fp,
                        [](const Vec3& x) { return Vec3{x.x, 2 * x.y, 3 * x.z}; });
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    err = std::max(err, std::abs(rhs.rho(ir, it, ip) + 6.0));
  });
  EXPECT_LT(err, 5e-2);
}

TEST_F(RhsTest, CoriolisForceMatchesClosedForm) {
  EquationParams eq;
  eq.g0 = 0.0;
  eq.mu = 0.0;
  eq.kappa = 0.0;
  eq.eta = 0.0;
  eq.omega = {0.0, 0.0, 4.0};
  // Uniform Cartesian velocity u (ρ=1 → f = u): advection ∇·(vf)
  // vanishes analytically and ∇p = 0, so ∂f/∂t = 2ρ v×Ω exactly.
  const Vec3 u{0.3, -0.5, 0.2};
  testutil::fill_vector(g, s.fr, s.ft, s.fp, [&](const Vec3&) { return u; });
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  const Vec3 expect_cart = 2.0 * u.cross(Vec3{0, 0, 4.0});
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    const Vec3 e = testutil::to_spherical(g, it, ip, expect_cart);
    err = std::max({err, std::abs(rhs.fr(ir, it, ip) - e.x),
                    std::abs(rhs.ft(ir, it, ip) - e.y),
                    std::abs(rhs.fp(ir, it, ip) - e.z)});
  });
  EXPECT_LT(err, 5e-2);
}

TEST_F(RhsTest, GravityPullsInward) {
  EquationParams eq;
  eq.g0 = 3.0;
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  // ρ = 1 uniform: radial momentum source = −g0/r² (no pressure
  // gradient).
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    err = std::max(err,
                   std::abs(rhs.fr(ir, it, ip) + 3.0 * g.inv_r(ir) * g.inv_r(ir)));
  });
  EXPECT_LT(err, 1e-10);
}

TEST_F(RhsTest, InductionIsMinusResistiveEAtRest) {
  EquationParams eq;
  eq.g0 = 0.0;
  eq.eta = 0.05;
  // A = ¼ (x²+y²+z²) ĉ for constant ĉ: j = ∇×∇×A computable; simpler:
  // check ∂A/∂t = −η j with j from the workspace itself.
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return Vec3{x.y * x.y, x.z * x.x, x.x * x.y};
  });
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    err = std::max({err,
                    std::abs(rhs.ar(ir, it, ip) + eq.eta * ws.jr(ir, it, ip)),
                    std::abs(rhs.at(ir, it, ip) + eq.eta * ws.jt(ir, it, ip)),
                    std::abs(rhs.ap(ir, it, ip) + eq.eta * ws.jp(ir, it, ip))});
  });
  EXPECT_LT(err, 1e-12);
}

TEST_F(RhsTest, OhmicHeatingRaisesPressure) {
  EquationParams eq;
  eq.g0 = 0.0;
  eq.eta = 0.1;
  eq.kappa = 0.0;
  // Uniform-j potential: A = ½ B0×x gives j = 0; instead use A with
  // curl(curl A) ≠ 0: A = (0, 0, x²+y²-ish)… simplest: sinusoidal.
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return Vec3{0.0, 0.0, std::sin(2.0 * x.x)};
  });
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  // At rest with K = 0: ∂p/∂t = (γ−1) η j² ≥ 0, strictly > somewhere.
  double mn = 1e30, mx = -1e30;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    mn = std::min(mn, rhs.p(ir, it, ip));
    mx = std::max(mx, rhs.p(ir, it, ip));
  });
  EXPECT_GE(mn, -1e-12);
  EXPECT_GT(mx, 1e-6);
}

TEST_F(RhsTest, ViscousHeatingNonNegativeAtRestlessShear) {
  EquationParams eq;
  eq.g0 = 0.0;
  eq.mu = 0.1;  // heating term must dominate the ∇·v truncation error
  eq.kappa = 0.0;
  eq.eta = 0.0;
  testutil::fill_vector(g, s.fr, s.ft, s.fp,
                        [](const Vec3& x) { return Vec3{x.y, x.z, x.x}; });
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  // Φ = 2µ·(3/2) = 3µ > 0 adds (γ−1)Φ to ∂p/∂t; the adiabatic terms
  // −v·∇p − γp∇·v contribute 0 here (p uniform, ∇·v = 0 analytically).
  double mn = 1e30;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    mn = std::min(mn, rhs.p(ir, it, ip));
  });
  EXPECT_GT(mn, 0.5 * (5.0 / 3.0 - 1.0) * 2.0 * eq.mu * 1.5);
}

TEST_F(RhsTest, ChargesFlopsForEveryKernel) {
  EquationParams eq;
  flops::global_reset();
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  const auto counted = flops::count();
  // At least the pointwise-combine cost on the interior plus the FD
  // operators on interior + extended boxes.
  const auto vol = static_cast<std::uint64_t>(g.interior().volume());
  EXPECT_GT(counted, vol * kFlopsPointwiseCombine);
  EXPECT_GT(counted, vol * 300u);  // the full step is hundreds of flops/pt
}

TEST_F(RhsTest, RhsIsDeterministic) {
  EquationParams eq;
  eq.omega = {0, 0, 2.0};
  Fields rhs2(g);
  Workspace ws2(g);
  compute_rhs(g, eq, s, rhs, ws, g.interior());
  compute_rhs(g, eq, s, rhs2, ws2, g.interior());
  for_box(g.interior(), [&](int ir, int it, int ip) {
    EXPECT_DOUBLE_EQ(rhs.p(ir, it, ip), rhs2.p(ir, it, ip));
    EXPECT_DOUBLE_EQ(rhs.fr(ir, it, ip), rhs2.fr(ir, it, ip));
  });
}

}  // namespace
}  // namespace yy::mhd

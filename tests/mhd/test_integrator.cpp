#include "mhd/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/serial_solver.hpp"

namespace yy::mhd {
namespace {

TEST(Integrator, SchemeOrdersAndNames) {
  EXPECT_EQ(scheme_order(TimeScheme::euler), 1);
  EXPECT_EQ(scheme_order(TimeScheme::rk2), 2);
  EXPECT_EQ(scheme_order(TimeScheme::rk4), 4);
  EXPECT_STREQ(scheme_name(TimeScheme::rk4), "rk4");
}

core::SimulationConfig order_config(TimeScheme scheme) {
  // A smooth, gently driven configuration (no random fields) so the
  // temporal error dominates over noise.
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 9;
  cfg.np_core = 25;
  cfg.eq.mu = 5e-3;
  cfg.eq.kappa = 5e-3;
  cfg.eq.eta = 5e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 5.0};
  cfg.ic.perturb_amp = 0.0;
  cfg.ic.seed_b_amp = 0.0;
  cfg.scheme = scheme;
  return cfg;
}

/// Integrates to a fixed time T with `nsteps` and returns the pressure
/// field at a probe point (the conduction/hydrostatic adjustment is a
/// smooth trajectory ideal for order measurement).
double probe_after(TimeScheme scheme, int nsteps, double T) {
  core::SerialYinYangSolver s(order_config(scheme));
  s.initialize();
  const double dt = T / nsteps;
  for (int i = 0; i < nsteps; ++i) s.step(dt);
  return s.panel(yinyang::Panel::yin).p(5, 5, 9);
}

class IntegratorOrder : public ::testing::TestWithParam<TimeScheme> {};

TEST_P(IntegratorOrder, RichardsonOrderMatchesScheme) {
  const TimeScheme scheme = GetParam();
  const double T = 0.02;
  // Richardson: p ≈ log2(|y(dt) − y(dt/2)| / |y(dt/2) − y(dt/4)|).
  const double y1 = probe_after(scheme, 8, T);
  const double y2 = probe_after(scheme, 16, T);
  const double y3 = probe_after(scheme, 32, T);
  const double d12 = std::abs(y1 - y2);
  const double d23 = std::abs(y2 - y3);
  ASSERT_GT(d23, 0.0);
  const double p = std::log2(d12 / d23);
  EXPECT_NEAR(p, scheme_order(scheme), 0.8)
      << "d12=" << d12 << " d23=" << d23;
}

INSTANTIATE_TEST_SUITE_P(Schemes, IntegratorOrder,
                         ::testing::Values(TimeScheme::euler, TimeScheme::rk2,
                                           TimeScheme::rk4),
                         [](const ::testing::TestParamInfo<TimeScheme>& info) {
                           return scheme_name(info.param);
                         });

TEST(Integrator, SchemesConvergeToSameTrajectory) {
  // At small dt all schemes approximate the same solution.
  const double T = 0.02;
  const double ref = probe_after(TimeScheme::rk4, 64, T);
  EXPECT_NEAR(probe_after(TimeScheme::euler, 64, T), ref, 1e-4);
  EXPECT_NEAR(probe_after(TimeScheme::rk2, 64, T), ref, 1e-7);
}

TEST(Integrator, Rk4MatchesLegacyRk4Class) {
  // The Integrator's rk4 path delegates to the Rk4 implementation;
  // trajectories must be bit-identical.
  core::SimulationConfig cfg = order_config(TimeScheme::rk4);
  cfg.ic.perturb_amp = 1e-2;
  core::SerialYinYangSolver a(cfg);
  a.initialize();
  a.run_steps(5);

  core::SimulationConfig cfg2 = cfg;  // same scheme enum value
  core::SerialYinYangSolver b(cfg2);
  b.initialize();
  b.run_steps(5);
  for_box(a.grid().interior(), [&](int ir, int it, int ip) {
    ASSERT_DOUBLE_EQ(a.panel(yinyang::Panel::yin).p(ir, it, ip),
                     b.panel(yinyang::Panel::yin).p(ir, it, ip));
  });
}

TEST(Integrator, EulerNeedsNoExtraStageStorage) {
  core::SimulationConfig cfg = order_config(TimeScheme::euler);
  core::SerialYinYangSolver s(cfg);
  s.initialize();
  s.run_steps(3);
  EXPECT_TRUE(std::isfinite(s.energies().thermal));
}

}  // namespace
}  // namespace yy::mhd

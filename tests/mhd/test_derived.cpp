#include "mhd/derived.hpp"

#include <gtest/gtest.h>

#include "grid/analytic_fields.hpp"
#include "grid/fd_ops.hpp"

namespace yy::mhd {
namespace {

using testutil::test_grid;

TEST(Derived, VelocityAndTemperaturePointwise) {
  SphericalGrid g = test_grid(8);
  Fields s(g);
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), T(g.Nr(), g.Nt(), g.Np());
  s.rho(3, 3, 3) = 2.0;
  s.fr(3, 3, 3) = 4.0;
  s.ft(3, 3, 3) = -6.0;
  s.fp(3, 3, 3) = 1.0;
  s.p(3, 3, 3) = 5.0;
  velocity_and_temperature(s, vr, vt, vp, T, g.interior());
  EXPECT_DOUBLE_EQ(vr(3, 3, 3), 2.0);   // f/ρ
  EXPECT_DOUBLE_EQ(vt(3, 3, 3), -3.0);
  EXPECT_DOUBLE_EQ(vp(3, 3, 3), 0.5);
  EXPECT_DOUBLE_EQ(T(3, 3, 3), 2.5);    // p/ρ — ideal gas p = ρT
}

TEST(Derived, MagneticFieldIsCurlOfPotential) {
  // A = ½ B0×x gives uniform B = B0.
  SphericalGrid g = test_grid(16);
  Fields s(g);
  const Vec3 b0{0.3, -0.2, 0.9};
  testutil::fill_vector(g, s.ar, s.at, s.ap,
                        [&](const Vec3& x) { return 0.5 * b0.cross(x); });
  Field3 br(g.Nr(), g.Nt(), g.Np()), bt(g.Nr(), g.Nt(), g.Np()),
      bp(g.Nr(), g.Nt(), g.Np());
  magnetic_field(g, s, br, bt, bp, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    const Vec3 expect = testutil::to_spherical(g, it, ip, b0);
    err = std::max({err, std::abs(br(ir, it, ip) - expect.x),
                    std::abs(bt(ir, it, ip) - expect.y),
                    std::abs(bp(ir, it, ip) - expect.z)});
  });
  EXPECT_LT(err, 5e-3);
}

TEST(Derived, DivergenceOfBIsTruncationSmall) {
  // ∇·B with B = ∇×A must vanish at the discrete truncation level for
  // ANY A — here a deliberately rough polynomial.
  SphericalGrid g = test_grid(16);
  Fields s(g);
  testutil::fill_vector(g, s.ar, s.at, s.ap, [](const Vec3& x) {
    return Vec3{x.y * x.z + x.x, x.x * x.x - x.z, x.y + x.z * x.z};
  });
  Field3 br(g.Nr(), g.Nt(), g.Np()), bt(g.Nr(), g.Nt(), g.Np()),
      bp(g.Nr(), g.Nt(), g.Np()), div_b(g.Nr(), g.Nt(), g.Np());
  magnetic_field(g, s, br, bt, bp, g.interior().grown(1));
  fd::div(g, br, bt, bp, div_b, g.interior());
  EXPECT_LT(testutil::max_error(g, div_b, g.interior(),
                                [](int, int, int) { return 0.0; }),
            5e-2);
}

TEST(Derived, CurrentOfUniformFieldVanishes) {
  SphericalGrid g = test_grid(14);
  Field3 br(g.Nr(), g.Nt(), g.Np()), bt(g.Nr(), g.Nt(), g.Np()),
      bp(g.Nr(), g.Nt(), g.Np());
  Field3 jr(g.Nr(), g.Nt(), g.Np()), jt(g.Nr(), g.Nt(), g.Np()),
      jp(g.Nr(), g.Nt(), g.Np());
  testutil::fill_vector(g, br, bt, bp,
                        [](const Vec3&) { return Vec3{1.0, 2.0, -1.5}; });
  current_density(g, br, bt, bp, jr, jt, jp, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    err = std::max({err, std::abs(jr(ir, it, ip)), std::abs(jt(ir, it, ip)),
                    std::abs(jp(ir, it, ip))});
  });
  EXPECT_LT(err, 5e-2);
}

TEST(Derived, ElectricFieldCombinesIdealAndResistive) {
  // E = −v×B + ηj, pointwise (paper eq. 6).
  SphericalGrid g = test_grid(6);
  const int c = 3;
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np());
  Field3 br(g.Nr(), g.Nt(), g.Np()), bt(g.Nr(), g.Nt(), g.Np()),
      bp(g.Nr(), g.Nt(), g.Np());
  Field3 jr(g.Nr(), g.Nt(), g.Np()), jt(g.Nr(), g.Nt(), g.Np()),
      jp(g.Nr(), g.Nt(), g.Np());
  Field3 er(g.Nr(), g.Nt(), g.Np()), et(g.Nr(), g.Nt(), g.Np()),
      ep(g.Nr(), g.Nt(), g.Np());
  vr(c, c, c) = 1.0;
  vt(c, c, c) = 2.0;
  vp(c, c, c) = 3.0;
  br(c, c, c) = -1.0;
  bt(c, c, c) = 0.5;
  bp(c, c, c) = 2.0;
  jr(c, c, c) = 10.0;
  jt(c, c, c) = 20.0;
  jp(c, c, c) = 30.0;
  const double eta = 0.1;
  electric_field(eta, vr, vt, vp, br, bt, bp, jr, jt, jp, er, et, ep,
                 {c, c + 1, c, c + 1, c, c + 1});
  // v×B = (2·2−3·0.5, 3·(−1)−1·2, 1·0.5−2·(−1)) = (2.5, −5, 2.5).
  EXPECT_DOUBLE_EQ(er(c, c, c), -2.5 + eta * 10.0);
  EXPECT_DOUBLE_EQ(et(c, c, c), 5.0 + eta * 20.0);
  EXPECT_DOUBLE_EQ(ep(c, c, c), -2.5 + eta * 30.0);
}

}  // namespace
}  // namespace yy::mhd

#include <gtest/gtest.h>

#include "comm/runtime.hpp"

namespace yy::comm {
namespace {

TEST(SendRecv, RingShiftExchangesWithoutDeadlock) {
  const int n = 5;
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    const int right = (w.rank() + 1) % n;
    const int left = (w.rank() + n - 1) % n;
    const double mine = 100.0 + w.rank();
    double got = -1.0;
    // Everyone sends right and receives from the left simultaneously.
    w.sendrecv(right, 3, {&mine, 1}, left, 3, {&got, 1});
    EXPECT_DOUBLE_EQ(got, 100.0 + left);
  });
}

TEST(SendRecv, PairwiseSwap) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    const int peer = 1 - w.rank();
    const double mine[2] = {static_cast<double>(w.rank()), 7.0};
    double got[2] = {};
    w.sendrecv(peer, 0, mine, peer, 0, got);
    EXPECT_DOUBLE_EQ(got[0], peer);
    EXPECT_DOUBLE_EQ(got[1], 7.0);
  });
}

TEST(SendRecv, NullPeersAreNoOps) {
  Runtime rt(1);
  rt.run([](Communicator& w) {
    const double mine = 1.0;
    double got = 42.0;
    w.sendrecv(proc_null, 0, {&mine, 1}, proc_null, 0, {&got, 1});
    EXPECT_DOUBLE_EQ(got, 42.0);  // untouched
  });
}

TEST(SendRecv, HalfNullStillDelivers) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    const double mine = 5.0 + w.rank();
    double got = -1.0;
    if (w.rank() == 0) {
      // Send to 1, receive from nobody.
      w.sendrecv(1, 2, {&mine, 1}, proc_null, 2, {&got, 1});
      EXPECT_DOUBLE_EQ(got, -1.0);
    } else {
      // Receive from 0, send to nobody.
      w.sendrecv(proc_null, 2, {&mine, 1}, 0, 2, {&got, 1});
      EXPECT_DOUBLE_EQ(got, 5.0);
    }
  });
}

}  // namespace
}  // namespace yy::comm

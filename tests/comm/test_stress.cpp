/// Concurrency stress for the Fabric/Communicator stack, sized for
/// ThreadSanitizer (`-DYY_SANITIZE=thread`, `ctest -L sanitize`).  All
/// ranks hammer the mailboxes with thousands of randomized tagged
/// exchanges interleaved with collectives; every payload is verified.
/// The randomness is derived from the iteration number alone, so all
/// ranks agree on partners/tags/lengths without communicating.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "comm/runtime.hpp"

namespace yy::comm {
namespace {

/// Value that rank `src` sends at iteration `iter`, slot `k` — lets the
/// receiver verify provenance without any side channel.
double payload(int src, int iter, int k) {
  return 1000.0 * src + iter + 1e-3 * k;
}

TEST(CommStress, RandomizedTaggedSendrecvWithCollectives) {
  const int n = 5;
  const int iters = 2000;
  Runtime rt(n);
  rt.run([&](Communicator& w) {
    for (int iter = 0; iter < iters; ++iter) {
      // Same seed on every rank: identical shift distance, tag, length.
      std::minstd_rand gen(static_cast<std::uint32_t>(iter + 1));
      const int shift = 1 + static_cast<int>(gen() % (n - 1));
      const int tag = static_cast<int>(gen() % 97);
      const int len = 1 + static_cast<int>(gen() % 16);

      const int dest = (w.rank() + shift) % n;
      const int src = (w.rank() + n - shift) % n;
      std::vector<double> out(static_cast<std::size_t>(len));
      std::vector<double> in(static_cast<std::size_t>(len), -1.0);
      for (int k = 0; k < len; ++k)
        out[static_cast<std::size_t>(k)] = payload(w.rank(), iter, k);
      w.sendrecv(dest, tag, out, src, tag, in);
      for (int k = 0; k < len; ++k)
        ASSERT_DOUBLE_EQ(in[static_cast<std::size_t>(k)],
                         payload(src, iter, k))
            << "iter " << iter << " rank " << w.rank();

      if (iter % 8 != 0) continue;
      switch ((iter / 8) % 4) {
        case 0: {
          const double s = w.allreduce_sum(static_cast<double>(w.rank()));
          ASSERT_DOUBLE_EQ(s, n * (n - 1) / 2.0);
          break;
        }
        case 1: {
          const int root = (iter / 8) % n;
          double v = (w.rank() == root) ? 3.25 + iter : -1.0;
          w.broadcast({&v, 1}, root);
          ASSERT_DOUBLE_EQ(v, 3.25 + iter);
          break;
        }
        case 2: {
          const int root = (iter / 8) % n;
          const double mine = 10.0 + w.rank();
          const auto all = w.gather({&mine, 1}, root);
          if (w.rank() == root) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r)
              ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], 10.0 + r);
          }
          break;
        }
        default:
          w.barrier();
      }
    }
  });
}

TEST(CommStress, OutOfOrderTagMatchingAcrossManyMessages) {
  // Pairs flood each other with K distinctly-tagged messages sent in a
  // permuted order; the receiver drains them in tag order.  Envelope
  // matching on (src, tag) must pair every message despite the shuffle.
  const int n = 4;
  const int rounds = 300;
  const int k_msgs = 8;
  Runtime rt(n);
  rt.run([&](Communicator& w) {
    const int peer = w.rank() ^ 1;  // (0,1) and (2,3) pairs
    for (int round = 0; round < rounds; ++round) {
      std::minstd_rand gen(static_cast<std::uint32_t>(round * 31 + 7));
      std::vector<int> order(k_msgs);
      for (int k = 0; k < k_msgs; ++k) order[static_cast<std::size_t>(k)] = k;
      std::shuffle(order.begin(), order.end(), gen);

      for (const int k : order) {
        const double v = payload(w.rank(), round, k);
        w.send(peer, k, {&v, 1});
      }
      for (int k = 0; k < k_msgs; ++k) {
        double got = -1.0;
        w.recv(peer, k, {&got, 1});
        ASSERT_DOUBLE_EQ(got, payload(peer, round, k))
            << "round " << round << " tag " << k;
      }
    }
  });
}

TEST(CommStress, SplitSubcommunicatorsReduceIndependently) {
  // Repeated splits while point-to-point traffic is in flight: the
  // split handshake (rank 0 gathers colors) and the subcommunicator
  // collectives must not cross-talk with world-context messages.
  const int n = 6;
  const int rounds = 200;
  Runtime rt(n);
  rt.run([&](Communicator& w) {
    for (int round = 0; round < rounds; ++round) {
      const int color = (w.rank() + round) % 2;
      // Keep a world-context message pending across the split.
      const int peer = (w.rank() + 1) % n;
      const int src = (w.rank() + n - 1) % n;
      const double mine = payload(w.rank(), round, 0);
      double got = -1.0;
      w.send(peer, 500 + round % 7, {&mine, 1});

      Communicator sub = w.split(color, w.rank());
      double expected = 0.0;
      for (int r = 0; r < n; ++r)
        if ((r + round) % 2 == color) expected += r;
      ASSERT_DOUBLE_EQ(sub.allreduce_sum(static_cast<double>(w.rank())),
                       expected);
      ASSERT_EQ(sub.size(), n / 2);

      w.recv(src, 500 + round % 7, {&got, 1});
      ASSERT_DOUBLE_EQ(got, payload(src, round, 0));
    }
  });
}

}  // namespace
}  // namespace yy::comm

#include <gtest/gtest.h>

#include "comm/cart.hpp"
#include "comm/runtime.hpp"

namespace yy::comm {
namespace {

TEST(Cart, ChooseDimsNearSquare) {
  EXPECT_EQ(CartComm::choose_dims(1), (std::pair{1, 1}));
  EXPECT_EQ(CartComm::choose_dims(6), (std::pair{2, 3}));
  EXPECT_EQ(CartComm::choose_dims(12), (std::pair{3, 4}));
  EXPECT_EQ(CartComm::choose_dims(2048), (std::pair{32, 64}));
  EXPECT_EQ(CartComm::choose_dims(7), (std::pair{1, 7}));  // prime
}

TEST(Cart, CoordsRowMajor) {
  Runtime rt(6);
  rt.run([](Communicator& w) {
    CartComm cart = CartComm::create(w, 2, 3, false, false);
    EXPECT_EQ(cart.coord(0), w.rank() / 3);
    EXPECT_EQ(cart.coord(1), w.rank() % 3);
    EXPECT_EQ(cart.rank_at(cart.coord(0), cart.coord(1)), cart.rank());
  });
}

TEST(Cart, ShiftNonPeriodicEndsAreNull) {
  Runtime rt(4);
  rt.run([](Communicator& w) {
    CartComm cart = CartComm::create(w, 2, 2, false, false);
    const auto [src0, dst0] = cart.shift(0, 1);
    if (cart.coord(0) == 0) {
      EXPECT_EQ(src0, proc_null);
      EXPECT_EQ(dst0, cart.rank_at(1, cart.coord(1)));
    }
    if (cart.coord(0) == 1) {
      EXPECT_EQ(dst0, proc_null);
    }
  });
}

TEST(Cart, ShiftPeriodicWraps) {
  Runtime rt(4);
  rt.run([](Communicator& w) {
    CartComm cart = CartComm::create(w, 1, 4, false, true);
    const auto [src, dst] = cart.shift(1, 1);
    EXPECT_EQ(src, (cart.coord(1) + 3) % 4);
    EXPECT_EQ(dst, (cart.coord(1) + 1) % 4);
  });
}

TEST(Cart, FourNeighbourExchangeLikeHalo) {
  // The paper's pattern: each process exchanges with north/east/south/
  // west; sum of received values must match the expected neighbours.
  Runtime rt(6);
  rt.run([](Communicator& w) {
    CartComm cart = CartComm::create(w, 2, 3, false, false);
    const double mine = cart.rank();
    double received_sum = 0.0;
    for (int d = 0; d < 2; ++d) {
      for (int disp : {-1, 1}) {
        const auto [src, dst] = cart.shift(d, disp);
        double buf = 0.0;
        Request req = cart.comm().irecv(src, d * 10 + disp + 1, {&buf, 1});
        cart.comm().send(dst, d * 10 + disp + 1, {&mine, 1});
        cart.comm().wait(req);
        received_sum += buf;  // proc_null recv leaves 0
      }
    }
    double expected = 0.0;
    for (int d = 0; d < 2; ++d)
      for (int disp : {-1, 1}) {
        int c[2] = {cart.coord(0), cart.coord(1)};
        c[d] -= disp;  // the rank whose dst is me
        const int r = cart.rank_at(c[0], c[1]);
        if (r != proc_null) expected += r;
      }
    EXPECT_DOUBLE_EQ(received_sum, expected);
  });
}

TEST(Cart, RankAtOutOfRangeIsNull) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    CartComm cart = CartComm::create(w, 1, 2, false, false);
    EXPECT_EQ(cart.rank_at(-1, 0), proc_null);
    EXPECT_EQ(cart.rank_at(0, 2), proc_null);
    EXPECT_EQ(cart.rank_at(0, 1), 1);
  });
}

}  // namespace
}  // namespace yy::comm

#include <gtest/gtest.h>

#include "comm/runtime.hpp"

namespace yy::comm {
namespace {

TEST(Split, TwoPanelsLikeThePaper) {
  // The yycore pattern: even world size splits into Yin/Yang halves.
  const int n = 8;
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    const int color = w.rank() < n / 2 ? 0 : 1;
    Communicator panel = w.split(color, w.rank());
    EXPECT_EQ(panel.size(), n / 2);
    EXPECT_EQ(panel.rank(), w.rank() % (n / 2));
    // Sub-communicator collectives stay inside the panel.
    const double s = panel.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(s, n / 2.0);
  });
}

TEST(Split, KeyReversesRankOrder) {
  const int n = 4;
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    Communicator c = w.split(0, -w.rank());  // descending keys
    EXPECT_EQ(c.size(), n);
    EXPECT_EQ(c.rank(), n - 1 - w.rank());
  });
}

TEST(Split, MessagesDoNotCrossCommunicators) {
  Runtime rt(4);
  rt.run([](Communicator& w) {
    Communicator sub = w.split(w.rank() % 2, w.rank());
    // Rank pattern: world 0,2 -> color 0 {ranks 0,1}; world 1,3 -> color 1.
    // Send on `sub` with the SAME tag also used on `w`; matching must be
    // per-communicator.
    const double on_world = 100.0 + w.rank();
    const double on_sub = 200.0 + w.rank();
    if (sub.rank() == 0) {
      sub.send(1, 5, {&on_sub, 1});
    }
    if (w.rank() == 0) w.send(1, 5, {&on_world, 1});
    if (w.rank() == 1) {
      double v = 0;
      w.recv(0, 5, {&v, 1});
      EXPECT_DOUBLE_EQ(v, 100.0);
    }
    if (sub.rank() == 1) {
      double v = 0;
      sub.recv(0, 5, {&v, 1});
      EXPECT_DOUBLE_EQ(v, 200.0 + (sub.world_rank_of(0)));
    }
  });
}

TEST(Split, ThreeColorsPartition) {
  const int n = 9;
  Runtime rt(n);
  rt.run([](Communicator& w) {
    Communicator c = w.split(w.rank() % 3, 0);
    EXPECT_EQ(c.size(), 3);
    const double s = c.allreduce_sum(static_cast<double>(w.rank()));
    // Members of color k are world ranks {k, k+3, k+6}.
    const int k = w.rank() % 3;
    EXPECT_DOUBLE_EQ(s, k + (k + 3) + (k + 6));
  });
}

TEST(Split, NestedSplitsCompose) {
  const int n = 8;
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    Communicator half = w.split(w.rank() < n / 2 ? 0 : 1, w.rank());
    Communicator quarter = half.split(half.rank() % 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const double s = quarter.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(s, 2.0);
  });
}

}  // namespace
}  // namespace yy::comm

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "comm/runtime.hpp"

namespace yy::comm {
namespace {

TEST(PointToPoint, SingleMessageDelivered) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    if (w.rank() == 0) {
      const double v[3] = {1.0, 2.0, 3.0};
      w.send(1, 5, v);
    } else {
      double v[3] = {};
      w.recv(0, 5, v);
      EXPECT_DOUBLE_EQ(v[0], 1.0);
      EXPECT_DOUBLE_EQ(v[1], 2.0);
      EXPECT_DOUBLE_EQ(v[2], 3.0);
    }
  });
}

TEST(PointToPoint, TagsMatchIndependently) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    if (w.rank() == 0) {
      const double a = 10.0, b = 20.0;
      w.send(1, 2, {&a, 1});  // sent first
      w.send(1, 1, {&b, 1});
    } else {
      double a = 0, b = 0;
      w.recv(0, 1, {&b, 1});  // received out of send order, by tag
      w.recv(0, 2, {&a, 1});
      EXPECT_DOUBLE_EQ(a, 10.0);
      EXPECT_DOUBLE_EQ(b, 20.0);
    }
  });
}

TEST(PointToPoint, FifoOrderPerSourceAndTag) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    constexpr int n = 50;
    if (w.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        const double v = i;
        w.send(1, 0, {&v, 1});
      }
    } else {
      for (int i = 0; i < n; ++i) {
        double v = -1;
        w.recv(0, 0, {&v, 1});
        EXPECT_DOUBLE_EQ(v, i);
      }
    }
  });
}

TEST(PointToPoint, IrecvBeforeSendCompletes) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    double buf = 0.0;
    if (w.rank() == 1) {
      Request req = w.irecv(0, 9, {&buf, 1});
      w.barrier();  // ensure irecv is posted before the send happens
      w.wait(req);
      EXPECT_DOUBLE_EQ(buf, 3.14);
    } else {
      w.barrier();
      const double v = 3.14;
      w.send(1, 9, {&v, 1});
    }
  });
}

TEST(PointToPoint, SendToProcNullIsNoOp) {
  Runtime rt(1);
  rt.run([](Communicator& w) {
    const double v = 1.0;
    w.send(proc_null, 0, {&v, 1});  // must not crash or block
    double buf = 42.0;
    Request r = w.irecv(proc_null, 0, {&buf, 1});
    w.wait(r);
    EXPECT_DOUBLE_EQ(buf, 42.0);  // buffer untouched
  });
}

TEST(PointToPoint, SelfSendWorks) {
  Runtime rt(1);
  rt.run([](Communicator& w) {
    const double v = 7.0;
    w.send(0, 3, {&v, 1});
    double buf = 0.0;
    w.recv(0, 3, {&buf, 1});
    EXPECT_DOUBLE_EQ(buf, 7.0);
  });
}

TEST(PointToPoint, ExchangeBetweenAllPairs) {
  const int n = 6;
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    // Everyone sends its rank to everyone (including itself).
    for (int d = 0; d < n; ++d) {
      const double v = w.rank() * 100.0 + d;
      w.send(d, 7, {&v, 1});
    }
    std::vector<double> got(n);
    for (int s = 0; s < n; ++s) w.recv(s, 7, {&got[static_cast<std::size_t>(s)], 1});
    for (int s = 0; s < n; ++s)
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(s)], s * 100.0 + w.rank());
  });
}

TEST(PointToPoint, TrafficCountersMeter) {
  Runtime rt(2);
  rt.run([](Communicator& w) {
    if (w.rank() == 0) {
      const double v[4] = {1, 2, 3, 4};
      w.send(1, 0, v);
    } else {
      double v[4];
      w.recv(0, 0, v);
    }
  });
  const TrafficStats t0 = rt.traffic(0);
  EXPECT_EQ(t0.messages, 1u);
  EXPECT_EQ(t0.bytes, 4u * sizeof(double));
}

TEST(Runtime, ExceptionFromRankIsRethrown) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Communicator& w) {
    if (w.rank() == 1) throw std::runtime_error("rank 1 failed");
  }),
               std::runtime_error);
}

TEST(Runtime, RepeatedRunsAccumulateTraffic) {
  Runtime rt(2);
  auto once = [](Communicator& w) {
    const double v = 1.0;
    double b = 0.0;
    if (w.rank() == 0) w.send(1, 0, {&v, 1});
    if (w.rank() == 1) w.recv(0, 0, {&b, 1});
  };
  rt.run(once);
  rt.run(once);
  EXPECT_EQ(rt.traffic(0).messages, 2u);
}

}  // namespace
}  // namespace yy::comm

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "comm/runtime.hpp"

namespace yy::comm {
namespace {

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, AllreduceSumOfRanks) {
  const int n = GetParam();
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    const double s = w.allreduce_sum(static_cast<double>(w.rank()));
    EXPECT_DOUBLE_EQ(s, n * (n - 1) / 2.0);
  });
}

TEST_P(CollectivesP, AllreduceMinMax) {
  const int n = GetParam();
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    const double v = 10.0 + w.rank();
    EXPECT_DOUBLE_EQ(w.allreduce_min(v), 10.0);
    EXPECT_DOUBLE_EQ(w.allreduce_max(v), 10.0 + n - 1);
  });
}

TEST_P(CollectivesP, VectorAllreduceSum) {
  const int n = GetParam();
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    double v[3] = {1.0, static_cast<double>(w.rank()), -1.0};
    w.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], n);
    EXPECT_DOUBLE_EQ(v[1], n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(v[2], -n);
  });
}

TEST_P(CollectivesP, GatherConcatenatesByRank) {
  const int n = GetParam();
  Runtime rt(n);
  rt.run([n](Communicator& w) {
    const double mine[2] = {static_cast<double>(w.rank()),
                            w.rank() * 10.0};
    const std::vector<double> all = w.gather(mine, 0);
    if (w.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
      for (int r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10.0);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesP, BroadcastFromNonzeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  Runtime rt(n);
  rt.run([](Communicator& w) {
    double v[2] = {0.0, 0.0};
    if (w.rank() == 1) {
      v[0] = 5.5;
      v[1] = -6.5;
    }
    w.broadcast(v, 1);
    EXPECT_DOUBLE_EQ(v[0], 5.5);
    EXPECT_DOUBLE_EQ(v[1], -6.5);
  });
}

TEST_P(CollectivesP, BarrierSeparatesPhases) {
  const int n = GetParam();
  Runtime rt(n);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  rt.run([&](Communicator& w) {
    phase1.fetch_add(1);
    w.barrier();
    if (phase1.load() != n) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace yy::comm

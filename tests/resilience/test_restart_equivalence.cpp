#include "resilience/checkpoint_manager.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "obs/events.hpp"

namespace yy::resilience {
namespace {

core::SimulationConfig restart_config() {
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  // Pid-unique: concurrent suite instances (e.g. ctest in two build
  // trees at once) must never clobber each other's directories.
  const std::string dir = std::string(::testing::TempDir()) + "/" + name +
                          "." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> flatten(const mhd::Fields& s) {
  std::vector<double> out;
  for (const Field3* f : s.all())
    out.insert(out.end(), f->flat().begin(), f->flat().end());
  return out;
}

/// Satellite (d): run 20 RK4 steps; separately run 10, checkpoint,
/// restore into a *fresh* solver and run 10 more.  The two final states
/// must be bitwise identical on every rank.
void expect_restart_bitwise_equal(int pt, int pp) {
  const core::SimulationConfig cfg = restart_config();
  const int nranks = 2 * pt * pp;
  const std::string dir = fresh_dir("restart_eq_" + std::to_string(pt) +
                                    "x" + std::to_string(pp));
  std::vector<int> rank_ok(static_cast<std::size_t>(nranks), 0);
  std::vector<long long> restored(static_cast<std::size_t>(nranks), -2);

  comm::Runtime rt(nranks);
  rt.run([&](comm::Communicator& w) {
    // Reference: 20 uninterrupted steps.
    core::DistributedSolver ref(cfg, w, pt, pp);
    ref.initialize();
    const double dt = ref.stable_dt();
    for (int i = 0; i < 20; ++i) ref.step(dt);
    const std::vector<double> want = flatten(ref.local_state());

    // Interrupted run: 10 steps, checkpoint, abandon the solver.
    CheckpointManager saver({dir, "eq", 2});
    {
      core::DistributedSolver first(cfg, w, pt, pp);
      first.initialize();
      for (int i = 0; i < 10; ++i) first.step(dt);
      ASSERT_TRUE(saver.save(first, dt));
    }

    // Fresh solver restores from disk discovery and finishes the run.
    core::DistributedSolver second(cfg, w, pt, pp);
    CheckpointManager loader({dir, "eq", 2});
    double dt_back = 0.0;
    restored[static_cast<std::size_t>(w.rank())] =
        loader.restore_newest(second, &dt_back);
    ASSERT_EQ(second.steps_taken(), 10);
    ASSERT_DOUBLE_EQ(dt_back, dt);
    for (int i = 0; i < 10; ++i) second.step(dt);

    const std::vector<double> got = flatten(second.local_state());
    ASSERT_EQ(got.size(), want.size());
    bool same = true;
    for (std::size_t i = 0; i < got.size(); ++i)
      if (got[i] != want[i]) same = false;
    rank_ok[static_cast<std::size_t>(w.rank())] = same ? 1 : 0;
  });

  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(restored[static_cast<std::size_t>(r)], 10) << "rank " << r;
    EXPECT_EQ(rank_ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
}

TEST(RestartEquivalence, OneRankPerPanel) {
  expect_restart_bitwise_equal(1, 1);
}

TEST(RestartEquivalence, TwoRanksPerPanel) {
  expect_restart_bitwise_equal(1, 2);
}

TEST(RestartEquivalence, FourRanksPerPanel) {
  expect_restart_bitwise_equal(2, 2);
}

TEST(CheckpointManager, RotationKeepsLastK) {
  const core::SimulationConfig cfg = restart_config();
  const std::string dir = fresh_dir("rotation");
  comm::Runtime rt(2);
  std::vector<long long> committed;
  std::vector<int> on_disk;
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver s(cfg, w, 1, 1);
    s.initialize();
    const double dt = s.stable_dt();
    CheckpointManager mgr({dir, "rot", 2});
    for (int i = 0; i < 4; ++i) {
      s.step(dt);
      ASSERT_TRUE(mgr.save(s, dt));
    }
    if (w.rank() == 0) {
      committed = mgr.committed_steps();
      for (long long step : {1LL, 2LL, 3LL, 4LL})
        on_disk.push_back(
            std::filesystem::exists(mgr.patch_path(step, 0)) ? 1 : 0);
    }
  });
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_EQ(committed[0], 3);
  EXPECT_EQ(committed[1], 4);
  EXPECT_EQ(on_disk, (std::vector<int>{0, 0, 1, 1}));
}

/// Satellite: crash hygiene.  A death between temp-write and rename
/// leaves `<basename>.*.tmp` orphans nothing ever reclaims; the
/// manager's constructor must sweep exactly those (counted in the obs
/// events), leave committed sets and foreign files alone, and rotation
/// must behave identically afterwards.
TEST(CheckpointManager, StartupSweepsStaleTmpFilesButNotCommittedSets) {
  namespace fs = std::filesystem;
  const core::SimulationConfig cfg = restart_config();
  const std::string dir = fresh_dir("tmp_sweep");
  fs::create_directories(dir);
  const auto touch = [&](const std::string& name) {
    std::ofstream(dir + "/" + name) << "leftover";
  };
  touch("rot.step7.r0.yyc2.tmp");       // torn patch commit
  touch("rot.step7.manifest.tmp");      // torn manifest commit
  touch("other.step3.r1.yyc2.tmp");     // foreign basename: keep
  touch("rot.step3.r1.yyc2");           // committed-looking: keep
  obs::EventCounters::global().reset();

  comm::Runtime rt(2);
  std::vector<long long> committed;
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver s(cfg, w, 1, 1);
    s.initialize();
    const double dt = s.stable_dt();
    CheckpointManager mgr({dir, "rot", 2});
    if (w.rank() == 0) {
      EXPECT_FALSE(fs::exists(dir + "/rot.step7.r0.yyc2.tmp"));
      EXPECT_FALSE(fs::exists(dir + "/rot.step7.manifest.tmp"));
      EXPECT_TRUE(fs::exists(dir + "/other.step3.r1.yyc2.tmp"));
      EXPECT_TRUE(fs::exists(dir + "/rot.step3.r1.yyc2"));
    }
    w.barrier();  // both managers finish sweeping before the saves
    for (int i = 0; i < 4; ++i) {
      s.step(dt);
      ASSERT_TRUE(mgr.save(s, dt));
    }
    if (w.rank() == 0) committed = mgr.committed_steps();
  });
  // The rotation regression: the sweep must not have disturbed keep_last
  // accounting (2 newest sets committed, exactly as without the sweep).
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_EQ(committed[0], 3);
  EXPECT_EQ(committed[1], 4);
  // Two orphans, each swept once (whichever rank's sweep won the race).
  EXPECT_EQ(obs::EventCounters::global().count(obs::Event::stale_tmp_swept),
            2u);
}

TEST(CheckpointManager, RestoreSkipsTornNewestSet) {
  // A set torn on one rank must demote collectively to the older set.
  const core::SimulationConfig cfg = restart_config();
  const std::string dir = fresh_dir("demote");
  comm::Runtime rt(2);
  std::vector<long long> restored(2, -2);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver s(cfg, w, 1, 1);
    s.initialize();
    const double dt = s.stable_dt();
    CheckpointManager mgr({dir, "dm", 2});
    s.step(dt);
    ASSERT_TRUE(mgr.save(s, dt));  // step 1, intact
    s.step(dt);
    comm::FaultPlan faults;
    faults.schedule_io_fault(2, /*world_rank=*/1,
                             comm::FaultPlan::IoFault::torn);
    ASSERT_TRUE(mgr.save(s, dt, &faults));  // step 2, torn on rank 1

    core::DistributedSolver fresh(cfg, w, 1, 1);
    CheckpointManager loader({dir, "dm", 2});
    restored[static_cast<std::size_t>(w.rank())] =
        loader.restore_newest(fresh);
    ASSERT_EQ(fresh.steps_taken(), 1);
  });
  EXPECT_EQ(restored[0], 1);
  EXPECT_EQ(restored[1], 1);
}

/// Satellite sweep for the rank-death PR: torn commits and
/// fail-before-commit faults scattered across SIX rotation generations
/// (keep_last = 2).  The rotation must keep exactly the last two
/// committed sets, a failed commit must leave the committed list
/// untouched, and restore_newest must demote past a torn newest set to
/// the newest generation that is intact on every rank — bitwise.
TEST(CheckpointManager, TornAndFailedCommitsAcrossRotationGenerations) {
  const core::SimulationConfig cfg = restart_config();
  const std::string dir = fresh_dir("rotation_sweep");
  comm::Runtime rt(2);
  std::vector<long long> restored(2, -2);
  std::vector<std::vector<long long>> committed(2);
  std::vector<std::vector<double>> at5(2), got(2);
  std::vector<double> dt_back(2, 0.0);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver s(cfg, w, 1, 1);
    s.initialize();
    const double dt = s.stable_dt();
    CheckpointManager mgr({dir, "sw", 2});
    comm::FaultPlan faults;
    faults.schedule_io_fault(3, /*world_rank=*/0,
                             comm::FaultPlan::IoFault::torn);
    faults.schedule_io_fault(4, /*world_rank=*/1,
                             comm::FaultPlan::IoFault::fail);
    faults.schedule_io_fault(6, /*world_rank=*/1,
                             comm::FaultPlan::IoFault::torn);
    for (int i = 1; i <= 6; ++i) {
      s.step(dt);
      const bool saved = mgr.save(s, dt, &faults);
      // A torn commit *claims* success (only the loader's CRC catches
      // it); a failed commit aborts the whole set collectively.
      EXPECT_EQ(saved, i != 4) << "generation " << i;
      if (i == 5)
        at5[static_cast<std::size_t>(w.rank())] = flatten(s.local_state());
    }
    committed[static_cast<std::size_t>(w.rank())] = mgr.committed_steps();

    core::DistributedSolver fresh(cfg, w, 1, 1);
    CheckpointManager loader({dir, "sw", 2});
    restored[static_cast<std::size_t>(w.rank())] = loader.restore_newest(
        fresh, &dt_back[static_cast<std::size_t>(w.rank())]);
    got[static_cast<std::size_t>(w.rank())] = flatten(fresh.local_state());
  });
  for (int r = 0; r < 2; ++r) {
    // Generations 1..6 minus the aborted 4, rotated down to the last 2.
    EXPECT_EQ(committed[static_cast<std::size_t>(r)],
              (std::vector<long long>{5, 6}))
        << "rank " << r;
    // 6 is torn on rank 1 -> the collective demotes to the intact 5.
    EXPECT_EQ(restored[static_cast<std::size_t>(r)], 5) << "rank " << r;
    EXPECT_GT(dt_back[static_cast<std::size_t>(r)], 0.0);
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              at5[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(CheckpointManager, FailedWriteAbortsWholeSet) {
  const core::SimulationConfig cfg = restart_config();
  const std::string dir = fresh_dir("abort_set");
  comm::Runtime rt(2);
  std::vector<int> saved(2, -1), patch0(2, -1);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver s(cfg, w, 1, 1);
    s.initialize();
    const double dt = s.stable_dt();
    s.step(dt);
    CheckpointManager mgr({dir, "ab", 2});
    comm::FaultPlan faults;
    faults.schedule_io_fault(1, /*world_rank=*/0,
                             comm::FaultPlan::IoFault::fail);
    saved[static_cast<std::size_t>(w.rank())] =
        mgr.save(s, dt, &faults) ? 1 : 0;
    // The collective verdict must also have deleted rank 1's patch.
    patch0[static_cast<std::size_t>(w.rank())] =
        std::filesystem::exists(mgr.patch_path(1, w.rank())) ? 1 : 0;
  });
  EXPECT_EQ(saved, (std::vector<int>{0, 0}));
  EXPECT_EQ(patch0, (std::vector<int>{0, 0}));
}

}  // namespace
}  // namespace yy::resilience

/// Silent-data-corruption defense: the compute-fault injector, the
/// slab-CRC auditor, the physics invariant probes, replica scrubbing,
/// and the buddy-restore recovery tier.
///
/// The acceptance scenario of the PR: a scheduled in-memory bit flip
/// on one rank — at 1, 2 and 4 ranks per panel, sync and overlapped
/// stepping — is detected within one audit cadence, recovered by
/// restoring every patch from the diskless buddy images, and the run
/// completes BITWISE equal, per rank and per gathered panel, to the
/// unfaulted run.  Rot in the buddy images themselves is healed by the
/// scrubber (or ring-refetched during the restore), and unscrubbed rot
/// turns a later restore down cleanly instead of crashing mid-rebuild.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "obs/events.hpp"
#include "resilience/resilient_runner.hpp"
#include "resilience/scrubber.hpp"
#include "resilience/sdc_audit.hpp"
#include "support/equivalence.hpp"

namespace yy::resilience {
namespace {

using testsupport::count_diffs;
using testsupport::field_data;
using testsupport::flatten;

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name +
                          "." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SdcFaultPlan, ComputeScheduleFiresOnceAndErases) {
  comm::FaultPlan plan;
  comm::FaultPlan::ComputeFault f;
  f.field = 5;
  f.elem = 1234;
  f.byte = 0;
  f.mask = 0x01;
  plan.schedule_bitflip(/*world_rank=*/1, /*step=*/8, f);
  plan.schedule_bitflip(/*world_rank=*/1, /*step=*/8, f);  // two at once

  EXPECT_TRUE(plan.take_compute_faults(0, 8).empty());  // wrong rank
  EXPECT_TRUE(plan.take_compute_faults(1, 7).empty());  // wrong step
  EXPECT_EQ(plan.compute_faults_fired(), 0u);

  const auto due = plan.take_compute_faults(1, 8);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].field, 5);
  EXPECT_EQ(due[0].elem, 1234);
  EXPECT_EQ(plan.compute_faults_fired(), 2u);
  // Erase-on-take: a rewound re-run of step 8 is not re-flipped.
  EXPECT_TRUE(plan.take_compute_faults(1, 8).empty());
  EXPECT_EQ(plan.compute_faults_fired(), 2u);
}

TEST(SdcFaultPlan, ReplicaRotScheduleFiresOnceAndErases) {
  comm::FaultPlan plan;
  plan.schedule_replica_rot(2, 11, comm::FaultPlan::ReplicaTarget::ward);
  EXPECT_TRUE(plan.take_replica_rot(2, 10).empty());
  const auto due = plan.take_replica_rot(2, 11);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], comm::FaultPlan::ReplicaTarget::ward);
  EXPECT_TRUE(plan.take_replica_rot(2, 11).empty());
  EXPECT_EQ(plan.replica_rots_fired(), 1u);
}

/// Direct auditor use on a live 2-rank solver: a clean audit, then a
/// hand-flipped bit caught collectively, with the local suspicion on
/// the flipped rank only.
TEST(SdcAuditor, DetectsInMemoryFlipCollectively) {
  const core::SimulationConfig cfg = testsupport::small_trajectory_config();
  std::vector<int> verdicts(2, -1), suspects(2, -1);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, 1, 1);
    solver.initialize();
    const double dt = solver.stable_dt();
    solver.step(dt);

    SdcPolicy pol;
    pol.audit_interval = 1;
    SdcAuditor auditor(pol);
    auditor.refresh(solver);
    ASSERT_TRUE(auditor.armed());
    ASSERT_EQ(auditor.audit(solver), SdcVerdict::clean);

    if (w.rank() == 0) {
      // One low mantissa bit: invisible to any magnitude threshold.
      auto* bytes = reinterpret_cast<unsigned char*>(
          solver.local_state().ar.flat().data() + 100);
      bytes[0] ^= 0x01;
    }
    const SdcVerdict v = auditor.audit(solver);
    verdicts[static_cast<std::size_t>(w.rank())] = static_cast<int>(v);
    suspects[static_cast<std::size_t>(w.rank())] =
        auditor.suspect_local() ? 1 : 0;
  });
  // Collective verdict on both ranks; local evidence only on rank 0.
  EXPECT_EQ(verdicts[0], static_cast<int>(SdcVerdict::checksum_mismatch));
  EXPECT_EQ(verdicts[1], static_cast<int>(SdcVerdict::checksum_mismatch));
  EXPECT_EQ(suspects[0], 1);
  EXPECT_EQ(suspects[1], 0);
}

/// Direct scrub round: a corrupted ward replica is detected by re-CRC
/// and replaced with a fresh copy from the partner, in place.
TEST(SdcScrub, RepairsCorruptReplicaInPlace) {
  const core::SimulationConfig cfg = testsupport::small_trajectory_config();
  obs::EventCounters::global().reset();
  std::vector<int> healed(2, -1);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, 1, 1);
    solver.initialize();
    const double dt = solver.stable_dt();

    BuddyStore store;
    ASSERT_TRUE(store.refresh(solver, dt, 5000));
    const int ward = BuddyStore::ward_of(w.rank(), w.size());
    ASSERT_TRUE(store.validate(ward));

    if (w.rank() == 1) store.corrupt_image(ward);
    EXPECT_EQ(store.validate(ward), w.rank() != 1);

    ReplicaScrubber scrubber(ScrubPolicy{/*interval=*/1,
                                         /*deadline_ms=*/5000});
    EXPECT_TRUE(scrubber.due(1));
    const bool ok = scrubber.scrub(store, w);
    healed[static_cast<std::size_t>(w.rank())] =
        ok && store.validate(ward) ? 1 : 0;

    // The repaired replica must decode — rot never reaches a restore.
    mhd::Fields out(solver.local_grid());
    EXPECT_TRUE(store.load(ward, out));
  });
  EXPECT_EQ(healed[0], 1);
  EXPECT_EQ(healed[1], 1);
  const auto& ev = obs::EventCounters::global();
  EXPECT_EQ(ev.count(obs::Event::replica_rot_detected), 1u);
  EXPECT_EQ(ev.count(obs::Event::replica_refetched), 1u);
  EXPECT_GE(ev.count(obs::Event::replica_scrubbed), 1u);
}

/// The PR acceptance run: a single mantissa-bit flip on world rank 1 at
/// step kFlip is caught by the audit at the same step (the flip lands
/// between steps, the audit cadence divides kFlip), every patch is
/// restored from the buddy images, and the completed run is bitwise
/// the unfaulted trajectory.  With `rot_own`, the victim's own buddy
/// image is rotted at the same step, forcing the restore to ring-fetch
/// the replica back from its holder.
void expect_sdc_recovery_bitwise(int pt, int pp, bool overlap, bool rot_own) {
  core::SimulationConfig cfg = testsupport::small_trajectory_config();
  cfg.overlap = overlap;
  const int ranks = 2 * pt * pp;
  constexpr long long kTarget = 12;
  constexpr long long kFlip = 8;
  constexpr int kCadence = 4;
  constexpr int kVictim = 1;
  const std::string dir =
      fresh_dir("sdc_" + std::to_string(ranks) + (overlap ? "_ov" : "_sync") +
                (rot_own ? "_rot" : ""));
  obs::EventCounters::global().reset();

  // ---- Reference: the unfaulted trajectory on the same layout.
  std::vector<std::vector<double>> want(static_cast<std::size_t>(ranks));
  std::vector<std::vector<double>> want_panel(2);
  {
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, pt, pp);
      solver.initialize();
      const double dt = solver.stable_dt();
      for (long long i = 0; i < kTarget; ++i) solver.step(dt);
      want[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
      for (int p = 0; p < 2; ++p) {
        const Field3 gathered = solver.gather_field(
            0, p == 0 ? yinyang::Panel::yin : yinyang::Panel::yang);
        if (w.rank() == 0)
          want_panel[static_cast<std::size_t>(p)] = field_data(gathered);
      }
    });
  }

  // ---- Faulted: same layout under the resilient runner with the SDC
  // audit on; one flip (plus optional own-image rot) at step kFlip.
  std::vector<std::vector<double>> got(static_cast<std::size_t>(ranks));
  std::vector<std::vector<double>> got_panel(2);
  std::vector<RunReport> reports(static_cast<std::size_t>(ranks));
  auto plan = std::make_shared<comm::FaultPlan>();
  {
    comm::Runtime rt(ranks);
    comm::FaultPlan::ComputeFault f;
    f.field = 5;   // A_r
    f.elem = 1234;
    f.byte = 0;    // low mantissa byte: only the CRC can see this
    f.mask = 0x01;
    plan->schedule_bitflip(kVictim, kFlip, f);
    if (rot_own)
      plan->schedule_replica_rot(kVictim, kFlip,
                                 comm::FaultPlan::ReplicaTarget::own);
    rt.install_fault_plan(plan);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, pt, pp);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "sdc", 2};
      policy.checkpoint_interval = 50;  // the audit owns the snapshots
      policy.take_deadline_ms = 3000;
      policy.sdc.audit_interval = kCadence;
      policy.max_sdc_restores = 2;
      ResilientRunner runner(solver, policy);
      const RunReport rep = runner.run(kTarget, dt);
      reports[static_cast<std::size_t>(w.rank())] = rep;
      if (!rep.completed) return;
      got[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
      for (int p = 0; p < 2; ++p) {
        const Field3 gathered = solver.gather_field(
            0, p == 0 ? yinyang::Panel::yin : yinyang::Panel::yang);
        if (w.rank() == 0)
          got_panel[static_cast<std::size_t>(p)] = field_data(gathered);
      }
    });
    rt.install_fault_plan(nullptr);
  }
  EXPECT_EQ(plan->compute_faults_fired(), 1u);

  for (int r = 0; r < ranks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.final_step, kTarget) << "rank " << r;
    EXPECT_EQ(rep.sdc_restores, 1) << "rank " << r;
    EXPECT_EQ(rep.recoveries, 0) << "rank " << r;  // no disk rewind
    EXPECT_EQ(rep.shrinks, 0) << "rank " << r;
  }

  for (int r = 0; r < ranks; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              want[static_cast<std::size_t>(r)].size())
        << "rank " << r;
    EXPECT_EQ(count_diffs(got[static_cast<std::size_t>(r)],
                          want[static_cast<std::size_t>(r)]),
              0u)
        << "rank " << r;
  }
  for (int p = 0; p < 2; ++p)
    EXPECT_EQ(got_panel[static_cast<std::size_t>(p)],
              want_panel[static_cast<std::size_t>(p)])
        << "panel " << p;

  const auto& ev = obs::EventCounters::global();
  EXPECT_GE(ev.count(obs::Event::sdc_audit), 3u);
  EXPECT_EQ(ev.count(obs::Event::sdc_detected), 1u);
  EXPECT_GE(ev.count(obs::Event::sdc_mismatch), 1u);
  EXPECT_EQ(ev.count(obs::Event::sdc_restore), 1u);
  if (rot_own) {
    EXPECT_GE(ev.count(obs::Event::replica_rot_detected), 1u);
    EXPECT_GE(ev.count(obs::Event::replica_refetched), 1u);
  }
}

TEST(SdcRecovery, BitflipRestoredBitwise2RanksSync) {
  expect_sdc_recovery_bitwise(1, 1, /*overlap=*/false, /*rot_own=*/false);
}
TEST(SdcRecovery, BitflipRestoredBitwise2RanksOverlapped) {
  expect_sdc_recovery_bitwise(1, 1, /*overlap=*/true, /*rot_own=*/false);
}
TEST(SdcRecovery, BitflipRestoredBitwise4RanksSync) {
  expect_sdc_recovery_bitwise(1, 2, /*overlap=*/false, /*rot_own=*/false);
}
TEST(SdcRecovery, BitflipRestoredBitwise4RanksOverlapped) {
  expect_sdc_recovery_bitwise(1, 2, /*overlap=*/true, /*rot_own=*/false);
}
TEST(SdcRecovery, BitflipRestoredBitwise8RanksSync) {
  expect_sdc_recovery_bitwise(2, 2, /*overlap=*/false, /*rot_own=*/false);
}
TEST(SdcRecovery, BitflipRestoredBitwise8RanksOverlapped) {
  expect_sdc_recovery_bitwise(2, 2, /*overlap=*/true, /*rot_own=*/false);
}

TEST(SdcRecovery, OwnImageRotRefetchedDuringRestore) {
  expect_sdc_recovery_bitwise(1, 2, /*overlap=*/false, /*rot_own=*/true);
}

/// Probe-only mode (checksums off): an exponent-byte flip in ρ sends
/// the energy budget off by orders of magnitude between audits; the
/// rate bound trips, the buddy tier restores, and the run still
/// completes bitwise-unfaulted.
TEST(SdcRecovery, InvariantProbeCatchesEnergyBreach) {
  const core::SimulationConfig cfg = testsupport::small_trajectory_config();
  constexpr long long kTarget = 8;
  const std::string dir = fresh_dir("sdc_energy");
  obs::EventCounters::global().reset();

  std::vector<std::vector<double>> want(2), got(2);
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 1);
      solver.initialize();
      const double dt = solver.stable_dt();
      for (long long i = 0; i < kTarget; ++i) solver.step(dt);
      want[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
    });
  }

  std::vector<RunReport> reports(2);
  {
    comm::Runtime rt(2);
    auto plan = std::make_shared<comm::FaultPlan>();
    comm::FaultPlan::ComputeFault f;
    f.field = 0;  // ρ
    f.elem = 4321;
    f.byte = 7;   // high exponent byte: a magnitude catastrophe
    f.mask = 0x40;
    plan->schedule_bitflip(/*world_rank=*/1, /*step=*/6, f);
    rt.install_fault_plan(plan);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 1);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "sdc", 2};
      policy.checkpoint_interval = 50;
      policy.take_deadline_ms = 3000;
      policy.sdc.audit_interval = 2;
      policy.sdc.checksums = false;  // isolate the probe
      policy.sdc.max_energy_rate = 1.0;
      ResilientRunner runner(solver, policy);
      reports[static_cast<std::size_t>(w.rank())] = runner.run(kTarget, dt);
      got[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
    });
    rt.install_fault_plan(nullptr);
  }

  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(reports[static_cast<std::size_t>(r)].completed)
        << reports[static_cast<std::size_t>(r)].failure;
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].sdc_restores, 1);
  }
  for (int r = 0; r < 2; ++r)
    EXPECT_EQ(count_diffs(got[static_cast<std::size_t>(r)],
                          want[static_cast<std::size_t>(r)]),
              0u)
        << "rank " << r;
  const auto& ev = obs::EventCounters::global();
  EXPECT_GE(ev.count(obs::Event::sdc_invariant_trip), 1u);
  EXPECT_EQ(ev.count(obs::Event::sdc_mismatch), 0u);  // checksums were off
  EXPECT_EQ(ev.count(obs::Event::sdc_restore), 1u);
}

/// The divB probe guards the derived-field pipeline: B = ∇×A is
/// divergence-free at the discretization floor, but the floor scales
/// with |A| — an exponent catastrophe in A blows the cancellation
/// error past any drift bound even with the energy probe disabled.
TEST(SdcRecovery, DivbDriftProbeCatchesPotentialCorruption) {
  const core::SimulationConfig cfg = testsupport::small_trajectory_config();
  constexpr long long kTarget = 8;
  const std::string dir = fresh_dir("sdc_divb");
  obs::EventCounters::global().reset();

  std::vector<RunReport> reports(2);
  {
    comm::Runtime rt(2);
    auto plan = std::make_shared<comm::FaultPlan>();
    comm::FaultPlan::ComputeFault f;
    f.field = 5;  // A_r
    f.elem = 4321;
    f.byte = 7;
    f.mask = 0x40;
    plan->schedule_bitflip(/*world_rank=*/0, /*step=*/6, f);
    rt.install_fault_plan(plan);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 1);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "sdc", 2};
      policy.checkpoint_interval = 50;
      policy.take_deadline_ms = 3000;
      policy.sdc.audit_interval = 2;
      policy.sdc.checksums = false;
      policy.sdc.max_divb_drift = 1e-3;
      ResilientRunner runner(solver, policy);
      reports[static_cast<std::size_t>(w.rank())] = runner.run(kTarget, dt);
    });
    rt.install_fault_plan(nullptr);
  }
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(reports[static_cast<std::size_t>(r)].completed)
        << reports[static_cast<std::size_t>(r)].failure;
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].sdc_restores, 1);
  }
  EXPECT_GE(obs::EventCounters::global().count(obs::Event::sdc_invariant_trip),
            1u);
}

/// Scrub-then-die: the replica a later rank-death restore depends on
/// rots after its refresh; the scheduled scrub detects and re-fetches
/// it in time, so the shrink recovery still completes.
TEST(SdcScrub, ScrubHealsRotBeforeRankDeathRestore) {
  core::SimulationConfig cfg = testsupport::small_trajectory_config();
  constexpr int kRanks = 4;
  constexpr long long kTarget = 20;
  constexpr long long kDeath = 13;  // checkpoint cadence 5 -> snapshot 10
  constexpr int kVictim = 1;
  // Rank 2 holds rank 1's replica (ring); rot it after the step-10
  // refresh, scrub at 12, death at 13.
  const int holder = BuddyStore::holder_of(kVictim, kRanks);
  const std::string dir = fresh_dir("sdc_scrub_death");
  obs::EventCounters::global().reset();

  std::vector<RunReport> reports(kRanks);
  auto plan = std::make_shared<comm::FaultPlan>();
  {
    comm::Runtime rt(kRanks);
    plan->schedule_rank_death(kVictim, kDeath);
    plan->schedule_replica_rot(holder, 11,
                               comm::FaultPlan::ReplicaTarget::ward);
    rt.install_fault_plan(plan);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 2);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "sd", 2};
      policy.checkpoint_interval = 5;
      policy.take_deadline_ms = 3000;
      policy.scrub_interval = 4;  // scrubs at 4, 8, 12 — before the death
      ResilientRunner runner(solver, policy);
      reports[static_cast<std::size_t>(w.rank())] = runner.run(kTarget, dt);
    });
    rt.install_fault_plan(nullptr);
  }
  EXPECT_EQ(plan->replica_rots_fired(), 1u);
  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    if (r == kVictim) {
      EXPECT_FALSE(rep.completed);
      continue;
    }
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.shrinks, 1) << "rank " << r;
    EXPECT_EQ(rep.final_world_size, 3) << "rank " << r;
  }
  const auto& ev = obs::EventCounters::global();
  EXPECT_GE(ev.count(obs::Event::replica_scrubbed), 2u);
  EXPECT_GE(ev.count(obs::Event::replica_rot_detected), 1u);
  EXPECT_GE(ev.count(obs::Event::replica_refetched), 1u);
  EXPECT_GE(ev.count(obs::Event::buddy_restore), 1u);
}

/// Negative control for the scrubber: the same rot with scrubbing off
/// must fail the restore *cleanly* — the full re-validation in the
/// serve vote turns the recovery down symmetrically, no crash, no
/// partial rebuild.
TEST(SdcScrub, UnscrubbedRotFailsRestoreCleanly) {
  core::SimulationConfig cfg = testsupport::small_trajectory_config();
  constexpr int kRanks = 4;
  constexpr long long kTarget = 20;
  constexpr long long kDeath = 13;
  constexpr int kVictim = 1;
  const int holder = BuddyStore::holder_of(kVictim, kRanks);
  const std::string dir = fresh_dir("sdc_noscrub_death");
  obs::EventCounters::global().reset();

  std::vector<RunReport> reports(kRanks);
  {
    comm::Runtime rt(kRanks);
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->schedule_rank_death(kVictim, kDeath);
    plan->schedule_replica_rot(holder, 11,
                               comm::FaultPlan::ReplicaTarget::ward);
    rt.install_fault_plan(plan);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 2);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "sd", 2};
      policy.checkpoint_interval = 5;
      policy.take_deadline_ms = 3000;  // scrub_interval stays 0: no scrubbing
      ResilientRunner runner(solver, policy);
      reports[static_cast<std::size_t>(w.rank())] = runner.run(kTarget, dt);
    });
    rt.install_fault_plan(nullptr);
  }
  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_FALSE(rep.completed) << "rank " << r;
    if (r == kVictim) {
      EXPECT_NE(rep.failure.find("rank death"), std::string::npos);
    } else {
      EXPECT_NE(rep.failure.find("unrecoverable"), std::string::npos)
          << "rank " << r << ": " << rep.failure;
    }
  }
  EXPECT_GE(obs::EventCounters::global().count(obs::Event::run_failed), 1u);
}

}  // namespace
}  // namespace yy::resilience

#include "resilience/buddy_store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "resilience/checkpoint2.hpp"

namespace yy::resilience {
namespace {

core::SimulationConfig buddy_config() {
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

SphericalGrid tiny_grid() {
  GridSpec s;
  s.nr = 3;
  s.nt = 4;
  s.np = 4;
  s.r0 = 0.4;
  s.r1 = 1.0;
  s.t0 = 0.9;
  s.t1 = 2.2;
  s.p0 = -1.0;
  s.p1 = 1.0;
  s.ghost = 1;
  return SphericalGrid(s);
}

CheckpointMetaV2 tiny_meta(const SphericalGrid& g) {
  CheckpointMetaV2 m;
  m.nr = g.Nr();
  m.nt = g.Nt();
  m.np = g.Np();
  m.panels = 1;
  m.time = 1.25;
  m.step = 42;
  m.dt = 3.5e-4;
  m.world_size = 4;
  m.world_rank = 1;
  m.pt = 1;
  m.pp = 2;
  m.panel = 0;
  return m;
}

void fill_pattern(mhd::Fields& s, double scale) {
  int k = 0;
  for (Field3* f : s.all())
    for (double& v : f->flat()) v = scale * ++k;
}

std::vector<double> flatten(const mhd::Fields& s) {
  std::vector<double> out;
  for (const Field3* f : s.all())
    out.insert(out.end(), f->flat().begin(), f->flat().end());
  return out;
}

TEST(BuddyStore, RingPairingWrapsAround) {
  EXPECT_EQ(BuddyStore::holder_of(0, 4), 1);
  EXPECT_EQ(BuddyStore::holder_of(3, 4), 0);  // wrap
  EXPECT_EQ(BuddyStore::ward_of(0, 4), 3);    // wrap
  EXPECT_EQ(BuddyStore::ward_of(1, 4), 0);
  for (int n = 2; n <= 5; ++n)
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(BuddyStore::ward_of(BuddyStore::holder_of(r, n), n), r);
      EXPECT_NE(BuddyStore::holder_of(r, n), r);  // never self-buddied
    }
}

/// The diskless image IS the on-disk format: encode must produce the
/// exact bytes save_checkpoint_v2 commits, so one validation/decoding
/// machinery covers both transports.
TEST(BuddyStore, EncodedImageMatchesSavedFileBytes) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const CheckpointMetaV2 meta = tiny_meta(g);

  const std::vector<unsigned char> img =
      encode_checkpoint_v2(meta, &s, nullptr);
  const std::string path = std::string(::testing::TempDir()) +
                           "/buddy_bytes." + std::to_string(::getpid()) +
                           ".yyc2";
  ASSERT_TRUE(save_checkpoint_v2(path, meta, &s, nullptr));
  std::ifstream in(path, std::ios::binary);
  const std::string file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  ASSERT_EQ(file.size(), img.size());
  EXPECT_EQ(0, std::memcmp(file.data(), img.data(), img.size()));

  // And the image round-trips bit-exactly through the decoder.
  mhd::Fields t(g);
  CheckpointMetaV2 back;
  ASSERT_EQ(decode_checkpoint_v2(img.data(), img.size(), back, &t, nullptr),
            LoadStatus::ok);
  EXPECT_EQ(flatten(t), flatten(s));
  EXPECT_EQ(back.step, meta.step);
  EXPECT_EQ(back.world_rank, meta.world_rank);
}

/// validate_checkpoint_image needs no Fields of the right shape — the
/// property the buddy ring depends on (a replica's shape differs from
/// its holder's) — and must reject every corruption class.
TEST(BuddyStore, ValidateCatchesCorruptionSweep) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.01);
  std::vector<unsigned char> img =
      encode_checkpoint_v2(tiny_meta(g), &s, nullptr);

  CheckpointMetaV2 m;
  ASSERT_EQ(validate_checkpoint_image(img.data(), img.size(), &m),
            LoadStatus::ok);
  EXPECT_EQ(m.step, 42);
  EXPECT_EQ(m.nr, g.Nr());

  // Truncations at every structural boundary.
  EXPECT_EQ(validate_checkpoint_image(img.data(), 0), LoadStatus::bad_magic);
  EXPECT_EQ(validate_checkpoint_image(img.data(), 4), LoadStatus::bad_magic);
  for (const std::size_t cut : {std::size_t{10}, img.size() / 2,
                                img.size() - 1})
    EXPECT_NE(validate_checkpoint_image(img.data(), cut), LoadStatus::ok)
        << "cut at " << cut;

  // Trailing garbage after the last section.
  std::vector<unsigned char> grown = img;
  grown.push_back(0);
  EXPECT_EQ(validate_checkpoint_image(grown.data(), grown.size()),
            LoadStatus::bad_payload);

  // Single-bit flips in the magic, the header and the payload.
  const auto flipped = [&](std::size_t at) {
    std::vector<unsigned char> c = img;
    c[at] ^= 0x10;
    return c;
  };
  EXPECT_EQ(validate_checkpoint_image(flipped(0).data(), img.size()),
            LoadStatus::bad_magic);
  EXPECT_EQ(validate_checkpoint_image(flipped(20).data(), img.size()),
            LoadStatus::bad_header);
  EXPECT_EQ(
      validate_checkpoint_image(flipped(img.size() - 40).data(), img.size()),
      LoadStatus::bad_payload);
}

/// Four ranks refresh the ring: every rank must be able to serve its
/// own patch AND its ward's, and the served bytes must decode to the
/// ward's state bitwise (the shapes differ across ranks, which is the
/// point of validating without a reference shape).
TEST(BuddyStore, RingRefreshServesSelfAndWardBitwise) {
  constexpr int kRanks = 4;
  comm::Runtime rt(kRanks);
  std::vector<const SphericalGrid*> grids(kRanks, nullptr);
  std::vector<std::vector<double>> states(kRanks);
  std::atomic<int> ok{0};
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(buddy_config(), w, 1, 2);
    solver.initialize();
    const double dt = solver.stable_dt();
    solver.step(dt);
    solver.step(dt);
    const int r = w.rank();
    grids[static_cast<std::size_t>(r)] = &solver.local_grid();
    states[static_cast<std::size_t>(r)] = flatten(solver.local_state());
    w.barrier();  // publish grids/states before anyone loads a replica

    BuddyStore store;
    ASSERT_TRUE(store.refresh(solver, dt, 3000));
    EXPECT_TRUE(store.armed());
    EXPECT_EQ(store.snapshot_step(), 2);
    EXPECT_DOUBLE_EQ(store.snapshot_dt(), dt);

    const int ward = BuddyStore::ward_of(r, kRanks);
    EXPECT_TRUE(store.can_serve(r));
    EXPECT_TRUE(store.can_serve(ward));
    EXPECT_FALSE(store.can_serve(BuddyStore::holder_of(r, kRanks)));

    mhd::Fields mine(*grids[static_cast<std::size_t>(r)]);
    ASSERT_TRUE(store.load(r, mine));
    EXPECT_EQ(flatten(mine), states[static_cast<std::size_t>(r)]);

    mhd::Fields theirs(*grids[static_cast<std::size_t>(ward)]);
    ASSERT_TRUE(store.load(ward, theirs));
    EXPECT_EQ(flatten(theirs), states[static_cast<std::size_t>(ward)]);

    // A later refresh supersedes the snapshot on the whole ring.
    solver.step(dt);
    ASSERT_TRUE(store.refresh(solver, dt, 3000));
    EXPECT_EQ(store.snapshot_step(), 3);

    store.reset();
    EXPECT_FALSE(store.armed());
    EXPECT_FALSE(store.can_serve(r));
    EXPECT_FALSE(store.can_serve(ward));
    ++ok;
  });
  EXPECT_EQ(ok.load(), kRanks);
}

}  // namespace
}  // namespace yy::resilience

#include "resilience/health.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>

#include "comm/runtime.hpp"
#include "common/error.hpp"
#include "obs/events.hpp"

namespace yy::resilience {
namespace {

core::SimulationConfig health_config() {
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Runs `fn(solver)` on 4 ranks (1×2 per panel) and health-checks the
/// result; returns true iff every rank saw `expect`.
bool all_ranks_see(HealthPolicy policy, double dt, HealthVerdict expect,
                   void (*poison)(core::DistributedSolver&, int)) {
  comm::Runtime rt(4);
  std::atomic<int> agree{0};
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(health_config(), w, 1, 2);
    solver.initialize();
    if (poison != nullptr) poison(solver, w.rank());
    HealthMonitor mon(policy);
    if (mon.check(solver, dt) == expect) ++agree;
  });
  return agree.load() == 4;
}

TEST(HealthMonitor, HealthyStateGetsHealthyVerdict) {
  EXPECT_TRUE(all_ranks_see(HealthPolicy{}, 1e-4, HealthVerdict::healthy,
                            nullptr));
}

TEST(HealthMonitor, NanOnOneRankYieldsCollectiveNonfiniteVerdict) {
  EXPECT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::nonfinite,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 2)
          s.local_state().p(1, 1, 1) =
              std::numeric_limits<double>::quiet_NaN();
      }));
}

TEST(HealthMonitor, HugeValueYieldsCollectiveBlowupVerdict) {
  EXPECT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::blowup,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 1) s.local_state().fr(1, 1, 1) = 1e12;
      }));
}

TEST(HealthMonitor, NegativeInfinityYieldsCollectiveNonfiniteVerdict) {
  // The blow-up probe must trip on ±Inf exactly like NaN: a magnitude
  // threshold alone would pass -Inf < threshold comparisons silently.
  EXPECT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::nonfinite,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 3)
          s.local_state().ft(1, 1, 1) =
              -std::numeric_limits<double>::infinity();
      }));
}

TEST(HealthMonitor, DenormalFloodYieldsCollectiveVerdict) {
  // A handful of denormals is numerically routine; a *flood* of them
  // (here: all of f_r on one rank) means the solution is collapsing
  // toward underflow and every FLOP is running at trap-to-microcode
  // speed — the monitor must call it out before the timestep ramp does.
  EXPECT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::denormal_flood,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 1)
          for (double& v : s.local_state().fr.flat())
            v = std::numeric_limits<double>::denorm_min();
      }));
}

TEST(HealthMonitor, SparseDenormalsStayHealthy) {
  HealthPolicy policy;  // default flood fraction 0.05
  EXPECT_TRUE(all_ranks_see(
      policy, 1e-4, HealthVerdict::healthy,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 2)
          s.local_state().fr(1, 1, 1) =
              std::numeric_limits<double>::denorm_min();
      }));
}

TEST(HealthMonitor, DenormalFloodIsCountedAsEvent) {
  obs::EventCounters::global().reset();
  ASSERT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::denormal_flood,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 0)
          for (double& v : s.local_state().ap.flat())
            v = std::numeric_limits<double>::denorm_min();
      }));
  EXPECT_EQ(obs::EventCounters::global().count(obs::Event::health_denormal),
            1u);
}

TEST(HealthMonitor, NonfiniteOutranksDenormalFlood) {
  EXPECT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::nonfinite,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 1)
          for (double& v : s.local_state().fr.flat())
            v = std::numeric_limits<double>::denorm_min();
        if (rank == 2)
          s.local_state().p(1, 1, 1) =
              std::numeric_limits<double>::infinity();
      }));
}

TEST(HealthMonitor, TinyTimestepYieldsCflCollapseVerdict) {
  HealthPolicy policy;
  policy.min_dt = 1.0;
  EXPECT_TRUE(
      all_ranks_see(policy, 1e-4, HealthVerdict::cfl_collapse, nullptr));
}

TEST(HealthMonitor, NonfiniteOutranksBlowup) {
  EXPECT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::nonfinite,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 0) s.local_state().fr(1, 1, 1) = 1e12;
        if (rank == 3)
          s.local_state().rho(1, 1, 1) =
              std::numeric_limits<double>::infinity();
      }));
}

TEST(HealthMonitor, DueFollowsCheckInterval) {
  HealthPolicy policy;
  policy.check_interval = 5;
  HealthMonitor mon(policy);
  EXPECT_FALSE(mon.due(0));
  EXPECT_FALSE(mon.due(4));
  EXPECT_TRUE(mon.due(5));
  EXPECT_FALSE(mon.due(6));
  EXPECT_TRUE(mon.due(10));
}

/// Satellite regression for the rank-death PR: the verdict collective
/// must honour the policy deadline.  One rank goes silent before the
/// sweep; with verdict_deadline_ms set, every participating rank gets
/// a timeout Error instead of wedging in the allreduce forever (which
/// is exactly how the ResilientRunner learns a health sweep lost a
/// peer).
TEST(HealthMonitor, VerdictCollectiveHonorsDeadline) {
  comm::Runtime rt(4);
  std::atomic<int> timeouts{0};
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(health_config(), w, 1, 2);
    solver.initialize();
    if (w.rank() == 2) return;  // dead-silent peer: never joins the sweep
    HealthPolicy policy;
    policy.verdict_deadline_ms = 300;
    HealthMonitor mon(policy);
    try {
      mon.check(solver, 1e-4);
    } catch (const Error& e) {
      if (e.kind() == Error::Kind::timeout) ++timeouts;
    }
  });
  EXPECT_EQ(timeouts.load(), 3);
}

TEST(HealthMonitor, VerdictsAreCountedAsEvents) {
  obs::EventCounters::global().reset();
  ASSERT_TRUE(all_ranks_see(
      HealthPolicy{}, 1e-4, HealthVerdict::nonfinite,
      +[](core::DistributedSolver& s, int rank) {
        if (rank == 0)
          s.local_state().p(1, 1, 1) =
              std::numeric_limits<double>::quiet_NaN();
      }));
  EXPECT_EQ(obs::EventCounters::global().count(obs::Event::health_check),
            1u);
  EXPECT_EQ(
      obs::EventCounters::global().count(obs::Event::health_nonfinite), 1u);
}

}  // namespace
}  // namespace yy::resilience

/// Rank-death fault model and shrink-to-survive recovery.
///
/// The acceptance scenario of the PR: a 4-rank run loses a rank
/// mid-flight, the survivors shrink to 3 ranks, restore the dead
/// rank's patch from its buddy's diskless replica and complete — and
/// the final state is BITWISE equal to an unfaulted run executed
/// directly on the shrunk 3-rank layout, verified per rank and per
/// gathered panel, in both the synchronous and the overlapped
/// stepping modes, for an interior victim and for world rank 0 (root
/// failover in every collective).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "common/error.hpp"
#include "core/distributed_solver.hpp"
#include "obs/events.hpp"
#include "resilience/resilient_runner.hpp"
#include "support/equivalence.hpp"

namespace yy::resilience {
namespace {

// Shared state-flattening/diff helpers: tests/support/equivalence.hpp.
using testsupport::count_diffs;
using testsupport::field_data;
using testsupport::flatten;

core::SimulationConfig death_config(bool overlap = false) {
  core::SimulationConfig cfg = testsupport::small_trajectory_config();
  cfg.overlap = overlap;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  // Pid-unique: concurrent suite instances (e.g. ctest in two build
  // trees at once) must never clobber each other's directories.
  const std::string dir = std::string(::testing::TempDir()) + "/" + name +
                          "." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(RankDeath, RetiredPeerFailsReceivesFastButPreDeathSendsSurvive) {
  comm::Runtime rt(2);
  std::atomic<int> delivered{0}, fast_failed{0};
  rt.run([&](comm::Communicator& w) {
    if (w.rank() == 0) {
      const double v[1] = {7.0};
      w.send(1, 5, v);  // queued before death: must stay consumable
      w.retire();
      return;
    }
    double buf[1] = {0.0};
    w.recv(0, 5, buf);
    if (buf[0] == 7.0) ++delivered;
    try {
      // Even a generous deadline must not be waited out: the queue is
      // exhausted and the peer is retired, so this fails immediately.
      w.recv(0, 5, buf, 60000);
    } catch (const Error& e) {
      if (e.kind() == Error::Kind::timeout) ++fast_failed;
    }
  });
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(fast_failed.load(), 1);
}

TEST(RankDeath, ShrinkBuildsDenseSurvivorCommunicator) {
  constexpr int kRanks = 4;
  comm::Runtime rt(kRanks);
  std::atomic<int> ok{0};
  rt.run([&](comm::Communicator& w) {
    w.barrier();
    if (w.rank() == 1) {
      w.retire();
      return;
    }
    // Wait until the retirement is visible, then agree on survivors.
    while (w.retired_ranks().empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(w.retired_ranks(), (std::vector<int>{1}));

    comm::Communicator small = w.shrink({0, 2, 3}, 5000);
    EXPECT_EQ(small.size(), 3);
    const int want_rank = w.rank() == 0 ? 0 : w.rank() - 1;
    EXPECT_EQ(small.rank(), want_rank);
    // Dense renumbering still addresses the original fabric ranks.
    EXPECT_EQ(small.world_rank_of(small.rank()), w.rank());

    // The new context carries collectives and point-to-point alike.
    EXPECT_DOUBLE_EQ(small.allreduce_sum(1.0), 3.0);
    const double mine[1] = {10.0 + small.rank()};
    small.send((small.rank() + 1) % 3, 9, mine);
    double got[1] = {0.0};
    small.recv((small.rank() + 2) % 3, 9, got, 5000);
    EXPECT_DOUBLE_EQ(got[0], 10.0 + (small.rank() + 2) % 3);
    ++ok;
  });
  EXPECT_EQ(ok.load(), 3);
}

TEST(RankDeath, ShrunkLayoutsKeepUntouchedPanelsAndRefactorLossy) {
  using core::DistributedSolver;
  using core::PanelLayout;
  // Yin loses one of two -> refactored to 1x1; Yang untouched.
  auto [yin, yang] =
      DistributedSolver::shrunk_layouts({1, 2}, {1, 2}, {0, 2, 3});
  EXPECT_EQ(yin.pt * yin.pp, 1);
  EXPECT_EQ(yang.pt, 1);
  EXPECT_EQ(yang.pp, 2);
  // Both panels lose one of four -> each refactored near-square.
  auto [y2, g2] =
      DistributedSolver::shrunk_layouts({2, 2}, {2, 2}, {0, 1, 2, 4, 6, 7});
  EXPECT_EQ(y2.size(), 3);
  EXPECT_EQ(g2.size(), 3);
  EXPECT_EQ(y2.pt, 1);  // choose_dims(3) = (1, 3)
  EXPECT_EQ(y2.pp, 3);
}

/// The PR acceptance run.  `victim` dies after completing `kDeath`
/// steps; the survivors must finish all kTarget steps on 3 ranks with
/// per-rank state and per-panel gathered fields bitwise equal to a
/// direct 3-rank run of the same dt schedule.
void expect_shrink_to_survive_bitwise(int victim, bool overlap) {
  const core::SimulationConfig cfg = death_config(overlap);
  constexpr int kRanks = 4;  // (1x2) Yin + (1x2) Yang
  constexpr long long kTarget = 20;
  constexpr long long kDeath = 13;  // checkpoint cadence 5 -> snapshot 10
  const std::string dir = fresh_dir(
      "rankdeath_" + std::to_string(victim) + (overlap ? "_ov" : "_sync"));
  obs::EventCounters::global().reset();

  std::vector<int> survivors;
  for (int r = 0; r < kRanks; ++r)
    if (r != victim) survivors.push_back(r);
  const auto [yin, yang] =
      core::DistributedSolver::shrunk_layouts({1, 2}, {1, 2}, survivors);

  // ---- Reference: an unfaulted run executed DIRECTLY on the shrunk
  // 3-rank layout for the whole trajectory.
  std::vector<std::vector<double>> want(3);
  std::vector<std::vector<double>> want_panel(2);
  {
    comm::Runtime rt(3);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, yin, yang);
      solver.initialize();
      const double dt = solver.stable_dt();
      for (long long i = 0; i < kTarget; ++i) solver.step(dt);
      want[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
      for (int p = 0; p < 2; ++p) {
        const Field3 gathered = solver.gather_field(
            0, p == 0 ? yinyang::Panel::yin : yinyang::Panel::yang);
        if (w.rank() == 0)
          want_panel[static_cast<std::size_t>(p)] = field_data(gathered);
      }
    });
  }

  // ---- Faulted: 4 ranks, `victim` dies after step kDeath; the
  // survivors shrink and continue.
  std::vector<std::vector<double>> got(3);
  std::vector<std::vector<double>> got_panel(2);
  std::vector<RunReport> reports(kRanks);
  {
    comm::Runtime rt(kRanks);
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->schedule_rank_death(victim, kDeath);
    rt.install_fault_plan(plan);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 2);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "rd", 2};
      policy.checkpoint_interval = 5;
      policy.take_deadline_ms = 3000;  // generous for sanitizer builds
      ResilientRunner runner(solver, policy);
      const RunReport rep = runner.run(kTarget, dt);
      reports[static_cast<std::size_t>(w.rank())] = rep;
      if (!rep.completed) return;  // the victim: retired from the fabric

      const int nr = solver.runner().world().rank();  // post-shrink rank
      got[static_cast<std::size_t>(nr)] = flatten(solver.local_state());
      for (int p = 0; p < 2; ++p) {
        const Field3 gathered = solver.gather_field(
            0, p == 0 ? yinyang::Panel::yin : yinyang::Panel::yang);
        if (nr == 0)
          got_panel[static_cast<std::size_t>(p)] = field_data(gathered);
      }
    });
    rt.install_fault_plan(nullptr);
    EXPECT_EQ(plan->rank_deaths_fired(), 1u);
  }

  // The victim reports the injected death; every survivor reports a
  // completed run with exactly one shrink and no rewind recoveries.
  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    if (r == victim) {
      EXPECT_FALSE(rep.completed);
      EXPECT_NE(rep.failure.find("rank death"), std::string::npos)
          << rep.failure;
      continue;
    }
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.final_step, kTarget) << "rank " << r;
    EXPECT_EQ(rep.shrinks, 1) << "rank " << r;
    EXPECT_EQ(rep.recoveries, 0) << "rank " << r;
    EXPECT_EQ(rep.final_world_size, 3) << "rank " << r;
    EXPECT_GE(rep.checkpoints_saved, 4) << "rank " << r;
  }

  // Bitwise equality, per surviving rank and per gathered panel.
  for (int nr = 0; nr < 3; ++nr) {
    ASSERT_EQ(got[static_cast<std::size_t>(nr)].size(),
              want[static_cast<std::size_t>(nr)].size())
        << "new rank " << nr;
    EXPECT_EQ(count_diffs(got[static_cast<std::size_t>(nr)],
                          want[static_cast<std::size_t>(nr)]),
              0u)
        << "new rank " << nr;
  }
  for (int p = 0; p < 2; ++p)
    EXPECT_EQ(got_panel[static_cast<std::size_t>(p)],
              want_panel[static_cast<std::size_t>(p)])
        << "panel " << p;

  // The recovery must be visible in the obs event counters.
  const auto& ev = obs::EventCounters::global();
  EXPECT_GE(ev.count(obs::Event::rank_death_detected), 1u);
  EXPECT_EQ(ev.count(obs::Event::world_shrunk), 1u);
  EXPECT_GE(ev.count(obs::Event::buddy_restore), 1u);
  EXPECT_GE(ev.count(obs::Event::comm_timeout), 1u);
}

TEST(RankDeath, ShrinkToSurviveMatchesDirectShrunkRunSync) {
  expect_shrink_to_survive_bitwise(/*victim=*/1, /*overlap=*/false);
}

TEST(RankDeath, ShrinkToSurviveMatchesDirectShrunkRunOverlapped) {
  expect_shrink_to_survive_bitwise(/*victim=*/1, /*overlap=*/true);
}

TEST(RankDeath, ShrinkSurvivesDeathOfWorldRankZero) {
  // Root failover: every rank-0-star collective (reductions, gathers,
  // shrink itself) must re-root on the lowest survivor.
  expect_shrink_to_survive_bitwise(/*victim=*/0, /*overlap=*/false);
}

}  // namespace
}  // namespace yy::resilience

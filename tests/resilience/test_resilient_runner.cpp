#include "resilience/resilient_runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace yy::resilience {
namespace {

core::SimulationConfig runner_config() {
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  // Pid-unique: concurrent suite instances (e.g. ctest in two build
  // trees at once) must never clobber each other's directories.
  const std::string dir = std::string(::testing::TempDir()) + "/" + name +
                          "." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<double> flatten(const mhd::Fields& s) {
  std::vector<double> out;
  for (const Field3* f : s.all())
    out.insert(out.end(), f->flat().begin(), f->flat().end());
  return out;
}

/// The PR's acceptance scenario: an overset message is dropped
/// mid-run, a checkpoint commit is torn on one rank, and the run must
/// still complete with a final state bitwise equal to an unfaulted run
/// on the same step/dt schedule — with the recovery visible in the
/// yy_metrics event output.
TEST(ResilientRunner, FaultedRunMatchesUnfaultedRunBitwise) {
  const core::SimulationConfig cfg = runner_config();
  const std::string dir = fresh_dir("acceptance");
  constexpr int kRanks = 4;
  constexpr long long kTarget = 20;
  obs::EventCounters::global().reset();

  std::vector<std::vector<double>> want(kRanks), got(kRanks);
  std::vector<RunReport> reports(kRanks);

  {  // Reference: plain uninterrupted stepping, no faults.
    comm::Runtime rt(kRanks);
    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 2);
      solver.initialize();
      const double dt = solver.stable_dt();
      for (long long i = 0; i < kTarget; ++i) solver.step(dt);
      want[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
    });
  }

  {  // Faulted: drop one overset envelope at step 17, tear the step-15
     // checkpoint on rank 0.  The runner must rewind past the torn set
     // to step 10 and re-run the tail.
    comm::Runtime rt(kRanks);
    auto plan = std::make_shared<comm::FaultPlan>();
    comm::FaultPlan::Rule drop;
    drop.kind = comm::FaultPlan::Kind::drop;
    drop.tag = 200;  // overset interpolation traffic
    drop.min_step = 17;
    drop.max_count = 1;
    plan->add_rule(drop);
    plan->schedule_io_fault(15, /*world_rank=*/0,
                            comm::FaultPlan::IoFault::torn);
    rt.install_fault_plan(plan);

    rt.run([&](comm::Communicator& w) {
      core::DistributedSolver solver(cfg, w, 1, 2);
      solver.initialize();
      const double dt = solver.stable_dt();
      RunPolicy policy;
      policy.store = {dir, "acc", 3};
      policy.checkpoint_interval = 5;
      policy.max_recoveries = 3;
      policy.take_deadline_ms = 3000;  // generous for sanitizer builds
      ResilientRunner runner(solver, policy);
      reports[static_cast<std::size_t>(w.rank())] = runner.run(kTarget, dt);
      got[static_cast<std::size_t>(w.rank())] =
          flatten(solver.local_state());
    });
    rt.install_fault_plan(nullptr);
    EXPECT_EQ(plan->injected(comm::FaultPlan::Kind::drop), 1u);
    EXPECT_EQ(plan->io_faults_fired(), 1u);
  }

  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.final_step, kTarget);
    EXPECT_EQ(rep.recoveries, 1) << "rank " << r;
    EXPECT_GE(rep.checkpoints_saved, 3) << "rank " << r;
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              want[static_cast<std::size_t>(r)].size());
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < got[static_cast<std::size_t>(r)].size(); ++i)
      if (got[static_cast<std::size_t>(r)][i] !=
          want[static_cast<std::size_t>(r)][i])
        ++diffs;
    EXPECT_EQ(diffs, 0u) << "rank " << r;
  }

  // Recovery activity must be visible through the obs metrics export.
  const auto& ev = obs::EventCounters::global();
  EXPECT_EQ(ev.count(obs::Event::recovery_rewind), 1u);
  EXPECT_EQ(ev.count(obs::Event::restart_loaded), 1u);
  EXPECT_GE(ev.count(obs::Event::comm_timeout), 1u);
  EXPECT_GE(ev.count(obs::Event::checkpoint_rejected), 1u);  // torn set
  EXPECT_GE(ev.count(obs::Event::checkpoint_saved), 4u);
  obs::TraceRecorder rec;
  const std::string json = obs::metrics_json(obs::collect_metrics(rec));
  EXPECT_NE(json.find("\"recovery_rewind\":1"), std::string::npos) << json;
  const std::string csv = obs::metrics_csv(obs::collect_metrics(rec));
  EXPECT_NE(csv.find("EVENT,recovery_rewind"), std::string::npos) << csv;
}

TEST(ResilientRunner, BlowupTriggersDtBackoffAndCompletes) {
  const core::SimulationConfig cfg = runner_config();
  const std::string dir = fresh_dir("blowup");
  constexpr int kRanks = 4;
  obs::EventCounters::global().reset();

  std::vector<RunReport> reports(kRanks);
  std::vector<double> stable(kRanks, 0.0);
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, 1, 2);
    solver.initialize();
    const double dt = solver.stable_dt();
    stable[static_cast<std::size_t>(w.rank())] = dt;
    RunPolicy policy;
    policy.store = {dir, "bl", 2};
    policy.checkpoint_interval = 2;
    policy.health.check_interval = 1;  // scan after every step
    policy.max_recoveries = 4;
    policy.dt_backoff = 0.005;  // one backoff lands well under stable dt
    policy.take_deadline_ms = 3000;
    ResilientRunner runner(solver, policy);
    // 100× the stable dt: RK4 diverges within a few steps.
    reports[static_cast<std::size_t>(w.rank())] = runner.run(6, 100.0 * dt);
  });

  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.final_step, 6);
    EXPECT_GE(rep.recoveries, 1) << "rank " << r;
    EXPECT_LT(rep.final_dt, stable[static_cast<std::size_t>(r)]);
  }
  const auto& ev = obs::EventCounters::global();
  EXPECT_GE(ev.count(obs::Event::dt_backoff), 1u);
  EXPECT_GE(ev.count(obs::Event::health_check), 1u);
  EXPECT_GE(ev.count(obs::Event::recovery_rewind), 1u);
}

/// Satellite regression: after a blow-up backoff, every healthy
/// scheduled health sweep grows dt by dt_growth, bounded by
/// min(run-entry dt, dt_ramp_fraction x current CFL-stable dt) — so a
/// long enough healthy tail climbs well clear of the backed-off value
/// without ever crossing the stable ceiling, identically on all ranks.
TEST(ResilientRunner, DtReRampRecoversTowardStableAfterBackoff) {
  const core::SimulationConfig cfg = runner_config();
  const std::string dir = fresh_dir("reramp");
  constexpr int kRanks = 4;
  constexpr long long kSteps = 20;
  obs::EventCounters::global().reset();

  std::vector<RunReport> reports(kRanks);
  std::vector<double> stable(kRanks, 0.0);
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, 1, 2);
    solver.initialize();
    const double dt = solver.stable_dt();
    stable[static_cast<std::size_t>(w.rank())] = dt;
    RunPolicy policy;
    policy.store = {dir, "rr", 2};
    policy.checkpoint_interval = 4;
    policy.health.check_interval = 1;  // a ramp opportunity every step
    policy.max_recoveries = 4;
    policy.dt_backoff = 0.002;  // backed-off dt lands at 0.2x stable
    policy.take_deadline_ms = 3000;
    ResilientRunner runner(solver, policy);
    reports[static_cast<std::size_t>(w.rank())] = runner.run(kSteps, 100.0 * dt);
  });

  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.final_step, kSteps);
    EXPECT_GE(rep.recoveries, 1) << "rank " << r;
    const double s = stable[static_cast<std::size_t>(r)];
    // Climbed well past the post-backoff 0.2x stable...
    EXPECT_GT(rep.final_dt, 0.5 * s) << "rank " << r;
    // ...but stayed under the CFL-stable ceiling.
    EXPECT_LT(rep.final_dt, s) << "rank " << r;
    // stable_dt() is an exact collective: the ramp is rank-identical.
    EXPECT_EQ(rep.final_dt, reports[0].final_dt) << "rank " << r;
  }
  const auto& ev = obs::EventCounters::global();
  EXPECT_GE(ev.count(obs::Event::dt_backoff), 1u);
  EXPECT_GE(ev.count(obs::Event::dt_reramp), 3u);
}

TEST(ResilientRunner, PersistentFaultFailsCleanlyWithoutHanging) {
  const core::SimulationConfig cfg = runner_config();
  const std::string dir = fresh_dir("persistent");
  constexpr int kRanks = 4;
  obs::EventCounters::global().reset();

  comm::Runtime rt(kRanks);
  auto plan = std::make_shared<comm::FaultPlan>();
  comm::FaultPlan::Rule drop;  // drop EVERY user-tag envelope from step 2
  drop.kind = comm::FaultPlan::Kind::drop;
  drop.min_step = 2;
  drop.max_count = 0;  // unlimited
  plan->add_rule(drop);
  rt.install_fault_plan(plan);

  std::vector<RunReport> reports(kRanks);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, 1, 2);
    solver.initialize();
    const double dt = solver.stable_dt();
    RunPolicy policy;
    policy.store = {dir, "pf", 2};
    policy.checkpoint_interval = 100;  // none get saved before the fault
    policy.max_recoveries = 1;
    policy.take_deadline_ms = 300;  // short: the test must not crawl
    ResilientRunner runner(solver, policy);
    reports[static_cast<std::size_t>(w.rank())] = runner.run(10, dt);
  });
  rt.install_fault_plan(nullptr);

  for (int r = 0; r < kRanks; ++r) {
    const RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_FALSE(rep.completed) << "rank " << r;
    EXPECT_FALSE(rep.failure.empty()) << "rank " << r;
    EXPECT_LT(rep.final_step, 10) << "rank " << r;
  }
  EXPECT_GE(obs::EventCounters::global().count(obs::Event::run_failed), 1u);
}

TEST(ResilientRunner, CleanRunSavesAndNeverRecovers) {
  const core::SimulationConfig cfg = runner_config();
  const std::string dir = fresh_dir("clean");
  constexpr int kRanks = 2;
  std::vector<RunReport> reports(kRanks);
  std::vector<std::vector<long long>> committed(kRanks);
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, 1, 1);
    solver.initialize();
    const double dt = solver.stable_dt();
    RunPolicy policy;
    policy.store = {dir, "cl", 2};
    policy.checkpoint_interval = 4;
    policy.take_deadline_ms = 3000;
    ResilientRunner runner(solver, policy);
    reports[static_cast<std::size_t>(w.rank())] = runner.run(8, dt);
    committed[static_cast<std::size_t>(w.rank())] =
        runner.checkpoints().committed_steps();
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(reports[static_cast<std::size_t>(r)].completed);
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].recoveries, 0);
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].checkpoints_saved, 2);
    EXPECT_EQ(committed[static_cast<std::size_t>(r)],
              (std::vector<long long>{4, 8}));
  }
}

}  // namespace
}  // namespace yy::resilience

#include "resilience/checkpoint2.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"

namespace yy::resilience {
namespace {

SphericalGrid tiny_grid() {
  GridSpec s;
  s.nr = 3;
  s.nt = 4;
  s.np = 4;
  s.r0 = 0.4;
  s.r1 = 1.0;
  s.t0 = 0.9;
  s.t1 = 2.2;
  s.p0 = -1.0;
  s.p1 = 1.0;
  s.ghost = 1;
  return SphericalGrid(s);
}

CheckpointMetaV2 meta_for_grid(const SphericalGrid& g, int panels) {
  CheckpointMetaV2 m;
  m.nr = g.Nr();
  m.nt = g.Nt();
  m.np = g.Np();
  m.panels = panels;
  m.time = 1.25;
  m.step = 42;
  m.dt = 3.5e-4;
  m.world_size = 4;
  m.world_rank = 1;
  m.pt = 1;
  m.pp = 2;
  m.panel = 0;
  return m;
}

void fill_pattern(mhd::Fields& s, double scale) {
  int k = 0;
  for (Field3* f : s.all())
    for (double& v : f->flat()) v = scale * ++k;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string temp_path(const char* name) {
  // Pid-unique: concurrent suite instances (e.g. ctest in two build
  // trees at once) must never clobber each other's files.
  return std::string(::testing::TempDir()) + "/" + name + "." +
         std::to_string(::getpid());
}

TEST(CheckpointV2, SinglePanelRoundTripBitExact) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_single.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));

  mhd::Fields t(g);
  CheckpointMetaV2 back;
  ASSERT_EQ(load_checkpoint_v2(path, back, &t, nullptr), LoadStatus::ok);
  EXPECT_EQ(back.panels, 1);
  EXPECT_DOUBLE_EQ(back.time, 1.25);
  EXPECT_EQ(back.step, 42);
  EXPECT_DOUBLE_EQ(back.dt, 3.5e-4);
  EXPECT_EQ(back.world_size, 4);
  EXPECT_EQ(back.world_rank, 1);
  EXPECT_EQ(back.pt, 1);
  EXPECT_EQ(back.pp, 2);
  EXPECT_EQ(back.panel, 0);
  for (int i = 0; i < mhd::Fields::kNumFields; ++i) {
    auto a = s.all()[static_cast<std::size_t>(i)]->flat();
    auto b = t.all()[static_cast<std::size_t>(i)]->flat();
    for (std::size_t j = 0; j < a.size(); ++j) ASSERT_EQ(a[j], b[j]);
  }
}

TEST(CheckpointV2, TwoPanelRoundTrip) {
  SphericalGrid g = tiny_grid();
  mhd::Fields yin(g), yang(g);
  fill_pattern(yin, 0.001);
  fill_pattern(yang, -0.002);
  const std::string path = temp_path("v2_two.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 2), &yin, &yang));

  mhd::Fields yin2(g), yang2(g);
  CheckpointMetaV2 back;
  ASSERT_EQ(load_checkpoint_v2(path, back, &yin2, &yang2), LoadStatus::ok);
  EXPECT_EQ(back.panels, 2);
  EXPECT_EQ(yin.p.flat()[5], yin2.p.flat()[5]);
  EXPECT_EQ(yang.ar.flat()[7], yang2.ar.flat()[7]);
}

TEST(CheckpointV2, HeaderPeekWithoutFields) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  const std::string path = temp_path("v2_peek.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));
  CheckpointMetaV2 back;
  ASSERT_EQ(load_checkpoint_v2(path, back, nullptr, nullptr), LoadStatus::ok);
  EXPECT_EQ(back.step, 42);
  EXPECT_EQ(back.nr, g.Nr());
}

TEST(CheckpointV2, ShapeMismatchRejectedWithoutTouchingState) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_shape.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));

  GridSpec big;
  big.nr = 5;
  big.nt = 6;
  big.np = 7;
  big.r0 = 0.4;
  big.r1 = 1.0;
  big.t0 = 0.9;
  big.t1 = 2.2;
  big.p0 = -1.0;
  big.p1 = 1.0;
  big.ghost = 2;
  SphericalGrid g2{big};
  mhd::Fields t(g2);
  t.p(1, 1, 1) = 99.0;
  CheckpointMetaV2 back;
  EXPECT_EQ(load_checkpoint_v2(path, back, &t, nullptr),
            LoadStatus::bad_shape);
  EXPECT_DOUBLE_EQ(t.p(1, 1, 1), 99.0);  // failed load leaves state alone
}

TEST(CheckpointV2, MissingFileIsIoError) {
  SphericalGrid g = tiny_grid();
  mhd::Fields t(g);
  CheckpointMetaV2 back;
  EXPECT_EQ(load_checkpoint_v2("/nonexistent/x.yyc2", back, &t, nullptr),
            LoadStatus::io_error);
}

TEST(CheckpointV2, EveryByteFlipIsRejected) {
  // Corruption sweep: XOR-ing any single byte of the file must yield a
  // clean rejection — never a crash, never LoadStatus::ok.
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_flip.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 100u);

  const std::string victim = temp_path("v2_flip_victim.yyc2");
  mhd::Fields t(g);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    write_file(victim, bad);
    CheckpointMetaV2 back;
    const LoadStatus st = load_checkpoint_v2(victim, back, &t, nullptr);
    if (st != LoadStatus::ok) ++rejected;
  }
  EXPECT_EQ(rejected, good.size());
}

TEST(CheckpointV2, EveryTruncationIsRejected) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_trunc.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));
  const std::string good = read_file(path);

  const std::string victim = temp_path("v2_trunc_victim.yyc2");
  mhd::Fields t(g);
  std::size_t rejected = 0;
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(victim, good.substr(0, len));
    CheckpointMetaV2 back;
    if (load_checkpoint_v2(victim, back, &t, nullptr) != LoadStatus::ok)
      ++rejected;
  }
  EXPECT_EQ(rejected, good.size());
}

TEST(CheckpointV2, TrailingGarbageIsRejected) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  const std::string path = temp_path("v2_tail.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));
  write_file(path, read_file(path) + "x");
  mhd::Fields t(g);
  CheckpointMetaV2 back;
  EXPECT_EQ(load_checkpoint_v2(path, back, &t, nullptr),
            LoadStatus::bad_payload);
}

/// Targeted header-field fuzz: unlike the blind every-byte sweep above,
/// each case corrupts one *semantic* header field — magic, the header
/// length, the format version, the dims, the panel (section) count, a
/// section length — and where the field sits under the header CRC, the
/// CRC is re-patched so the corrupted value itself reaches the
/// validation logic.  Every case must fail the load cleanly with the
/// right status and leave a sentinel-filled target bitwise untouched.
TEST(CheckpointV2, HeaderFieldFuzzFailsCleanWithoutPartialApply) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_hdr.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));
  const std::string good = read_file(path);

  // Layout: magic [0,8); u32 header length H [8,12); header [12,12+H)
  // starting with u32 version, then i32 nr/nt/np/panels; u32 header CRC
  // [12+H,12+H+4); u64 payload length [12+H+4, ...).
  std::uint32_t hlen = 0;
  for (int i = 0; i < 4; ++i)
    hlen |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(good[8 + static_cast<std::size_t>(i)]))
            << (8 * i);
  ASSERT_GE(hlen, 56u);
  ASSERT_LT(12 + hlen + 4, good.size());
  const std::size_t crc_at = 12 + hlen;
  const std::size_t payload_len_at = crc_at + 4;

  // Recompute the header CRC so a fuzzed header *field* (not a stray
  // bit the CRC would mask) is what the semantic checks see.
  const auto patch_header_crc = [&](std::string& img) {
    const std::uint32_t crc = crc32(img.data() + 12, hlen);
    for (int i = 0; i < 4; ++i)
      img[crc_at + static_cast<std::size_t>(i)] =
          static_cast<char>((crc >> (8 * i)) & 0xFFu);
  };

  struct Case {
    const char* what;
    std::size_t at;       ///< byte offset to XOR
    unsigned char mask;
    bool repatch_crc;     ///< field lives under the header CRC
    LoadStatus want;
  };
  std::vector<Case> cases;
  for (std::size_t i = 0; i < 8; ++i)  // every magic byte
    cases.push_back({"magic", i, 0xFF, false, LoadStatus::bad_magic});
  for (std::size_t i = 8; i < 12; ++i)  // header length u32
    cases.push_back({"hlen", i, 0x01, false, LoadStatus::bad_header});
  for (std::size_t i = 12; i < 16; ++i)  // version u32 (CRC re-patched)
    cases.push_back({"version", i, 0x01, true, LoadStatus::bad_header});
  cases.push_back({"nr", 16, 0x02, true, LoadStatus::bad_shape});
  cases.push_back({"nt", 20, 0x02, true, LoadStatus::bad_shape});
  cases.push_back({"np", 24, 0x02, true, LoadStatus::bad_shape});
  // panels: 1 -> 3 is structurally invalid; 1 -> 0 is too.
  cases.push_back({"panels", 28, 0x02, true, LoadStatus::bad_header});
  cases.push_back({"panels", 28, 0x01, true, LoadStatus::bad_header});
  for (std::size_t i = 0; i < 8; ++i)  // section length u64
    cases.push_back({"payload_len", payload_len_at + i, 0x01, false,
                     LoadStatus::bad_payload});

  const std::string victim = temp_path("v2_hdr_victim.yyc2");
  for (const Case& c : cases) {
    std::string bad = good;
    bad[c.at] = static_cast<char>(bad[c.at] ^ c.mask);
    if (c.repatch_crc) patch_header_crc(bad);
    write_file(victim, bad);

    mhd::Fields t(g);
    fill_pattern(t, 99.5);  // sentinel: must survive bitwise
    mhd::Fields want_t(g);
    fill_pattern(want_t, 99.5);
    CheckpointMetaV2 back;
    const LoadStatus st = load_checkpoint_v2(victim, back, &t, nullptr);
    EXPECT_EQ(st, c.want) << c.what << " byte " << c.at << " -> "
                          << load_status_name(st);
    for (int fi = 0; fi < mhd::Fields::kNumFields; ++fi) {
      auto a = t.all()[static_cast<std::size_t>(fi)]->flat();
      auto b = want_t.all()[static_cast<std::size_t>(fi)]->flat();
      for (std::size_t j = 0; j < a.size(); ++j)
        ASSERT_EQ(a[j], b[j]) << c.what << ": partial apply at field " << fi;
    }
  }
}

TEST(CheckpointV2, FailBeforeCommitPreservesPreviousFile) {
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_atomic.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr));

  mhd::Fields s2(g);
  fill_pattern(s2, 7.0);
  EXPECT_FALSE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s2, nullptr,
                                  IoFaultSim::fail_before_commit));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  mhd::Fields t(g);
  CheckpointMetaV2 back;
  ASSERT_EQ(load_checkpoint_v2(path, back, &t, nullptr), LoadStatus::ok);
  EXPECT_EQ(t.rho.flat()[0], s.rho.flat()[0]);  // old content intact
}

TEST(CheckpointV2, TornCommitReportsSuccessButLoaderRejects) {
  // The nasty case: the writer believes the commit succeeded but the
  // published file is truncated.  Only the loader's CRC can catch it.
  SphericalGrid g = tiny_grid();
  mhd::Fields s(g);
  fill_pattern(s, 0.001);
  const std::string path = temp_path("v2_torn.yyc2");
  ASSERT_TRUE(save_checkpoint_v2(path, meta_for_grid(g, 1), &s, nullptr,
                                 IoFaultSim::torn_commit));
  ASSERT_TRUE(std::filesystem::exists(path));
  mhd::Fields t(g);
  CheckpointMetaV2 back;
  EXPECT_NE(load_checkpoint_v2(path, back, &t, nullptr), LoadStatus::ok);
}

}  // namespace
}  // namespace yy::resilience

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "common/error.hpp"

namespace yy::comm {
namespace {

std::vector<double> iota(int n, double base) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = base + i;
  return v;
}

TEST(FaultInjection, DroppedMessageSurfacesAsDescriptiveTimeout) {
  Runtime rt(2);
  auto plan = std::make_shared<FaultPlan>();
  FaultPlan::Rule r;
  r.kind = FaultPlan::Kind::drop;
  r.src_world = 0;
  r.dest_world = 1;
  r.tag = 7;
  plan->add_rule(r);
  rt.install_fault_plan(plan);

  std::atomic<bool> timed_out{false};
  std::string what;
  rt.run([&](Communicator& w) {
    if (w.rank() == 0) w.send(1, 7, iota(4, 1.0));
    if (w.rank() == 1) {
      std::vector<double> buf(4);
      try {
        w.recv(0, 7, buf, /*deadline_ms=*/150);
      } catch (const Error& e) {
        timed_out = e.kind() == Error::Kind::timeout;
        what = e.what();
      }
    }
  });
  rt.install_fault_plan(nullptr);
  EXPECT_TRUE(timed_out.load());
  EXPECT_EQ(plan->injected(FaultPlan::Kind::drop), 1u);
  // The error names the awaited sender, the tag and the deadline.
  EXPECT_NE(what.find("world rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("tag 7"), std::string::npos) << what;
  EXPECT_NE(what.find("150"), std::string::npos) << what;
}

TEST(FaultInjection, BitFlipIsDetectedByPayloadCrc) {
  Runtime rt(2);
  auto plan = std::make_shared<FaultPlan>();
  FaultPlan::Rule r;
  r.kind = FaultPlan::Kind::bitflip;
  r.src_world = 0;
  r.dest_world = 1;
  r.tag = 7;
  plan->add_rule(r);
  rt.install_fault_plan(plan);

  std::atomic<bool> corrupted{false};
  std::string what;
  rt.run([&](Communicator& w) {
    if (w.rank() == 0) w.send(1, 7, iota(8, 1.0));
    if (w.rank() == 1) {
      std::vector<double> buf(8);
      try {
        w.recv(0, 7, buf, /*deadline_ms=*/2000);
      } catch (const Error& e) {
        corrupted = e.kind() == Error::Kind::corruption;
        what = e.what();
      }
    }
  });
  rt.install_fault_plan(nullptr);
  EXPECT_TRUE(corrupted.load());
  EXPECT_EQ(plan->injected(FaultPlan::Kind::bitflip), 1u);
  EXPECT_NE(what.find("CRC"), std::string::npos) << what;
}

TEST(FaultInjection, DuplicateEnvelopeIsDiscardedBySequenceNumber) {
  Runtime rt(2);
  auto plan = std::make_shared<FaultPlan>();
  FaultPlan::Rule r;
  r.kind = FaultPlan::Kind::duplicate;
  r.src_world = 0;
  r.dest_world = 1;
  r.tag = 7;
  plan->add_rule(r);  // duplicates the first matching envelope only
  rt.install_fault_plan(plan);

  std::atomic<bool> order_ok{false};
  std::atomic<bool> third_times_out{false};
  rt.run([&](Communicator& w) {
    if (w.rank() == 0) {
      w.send(1, 7, iota(2, 10.0));
      w.send(1, 7, iota(2, 20.0));
    }
    if (w.rank() == 1) {
      std::vector<double> a(2), b(2), c(2);
      w.recv(0, 7, a, 2000);
      w.recv(0, 7, b, 2000);  // the duplicate must NOT satisfy this
      order_ok = a[0] == 10.0 && b[0] == 20.0;
      try {
        w.recv(0, 7, c, 100);
      } catch (const Error& e) {
        third_times_out = e.kind() == Error::Kind::timeout;
      }
    }
  });
  rt.install_fault_plan(nullptr);
  EXPECT_EQ(plan->injected(FaultPlan::Kind::duplicate), 1u);
  EXPECT_TRUE(order_ok.load());
  EXPECT_TRUE(third_times_out.load());
}

TEST(FaultInjection, DelayedMessageStillArrivesIntact) {
  Runtime rt(2);
  auto plan = std::make_shared<FaultPlan>();
  FaultPlan::Rule r;
  r.kind = FaultPlan::Kind::delay;
  r.delay_ms = 50;
  r.src_world = 0;
  r.dest_world = 1;
  r.tag = 7;
  plan->add_rule(r);
  rt.install_fault_plan(plan);

  std::atomic<bool> got{false};
  rt.run([&](Communicator& w) {
    if (w.rank() == 0) w.send(1, 7, iota(3, 5.0));
    if (w.rank() == 1) {
      std::vector<double> buf(3);
      w.recv(0, 7, buf, 5000);
      got = buf[0] == 5.0 && buf[2] == 7.0;
    }
  });
  rt.install_fault_plan(nullptr);
  EXPECT_TRUE(got.load());
  EXPECT_EQ(plan->injected(FaultPlan::Kind::delay), 1u);
}

TEST(FaultInjection, WildcardRuleNeverTouchesSystemTraffic) {
  // kAnyTag matches user tags only: collectives (negative system tags)
  // must run untouched even under a drop-everything wildcard.
  Runtime rt(4);
  auto plan = std::make_shared<FaultPlan>();
  FaultPlan::Rule r;
  r.kind = FaultPlan::Kind::drop;
  r.max_count = 0;  // unlimited
  plan->add_rule(r);
  rt.install_fault_plan(plan);

  std::atomic<int> sum{0};
  rt.run([&](Communicator& w) {
    w.barrier();
    sum += static_cast<int>(w.allreduce_sum(1.0));
  });
  rt.install_fault_plan(nullptr);
  EXPECT_EQ(sum.load(), 16);  // 4 ranks × allreduce result 4
  EXPECT_EQ(plan->injected(FaultPlan::Kind::drop), 0u);
}

TEST(FaultInjection, RendezvousPurgesInFlightTrafficThenFabricWorks) {
  Runtime rt(2);
  std::atomic<bool> purged{false};
  std::atomic<bool> fresh_ok{false};
  rt.run([&](Communicator& w) {
    if (w.rank() == 0) {
      w.send(1, 9, iota(2, 1.0));
      w.send(1, 9, iota(2, 2.0));
      w.send(1, 9, iota(2, 3.0));
    }
    w.recovery_rendezvous(5000);  // collective: purges every mailbox
    if (w.rank() == 1) {
      std::vector<double> buf(2);
      try {
        w.recv(0, 9, buf, 100);
      } catch (const Error& e) {
        purged = e.kind() == Error::Kind::timeout;
      }
    }
    w.barrier();
    // The fabric must be fully usable after a purge.
    if (w.rank() == 0) w.send(1, 11, iota(2, 42.0));
    if (w.rank() == 1) {
      std::vector<double> buf(2);
      w.recv(0, 11, buf, 2000);
      fresh_ok = buf[0] == 42.0;
    }
  });
  EXPECT_TRUE(purged.load());
  EXPECT_TRUE(fresh_ok.load());
}

TEST(FaultInjection, MinStepGatesRuleOnFaultClock) {
  Runtime rt(2);
  auto plan = std::make_shared<FaultPlan>();
  FaultPlan::Rule r;
  r.kind = FaultPlan::Kind::drop;
  r.src_world = 0;
  r.dest_world = 1;
  r.tag = 7;
  r.min_step = 5;
  plan->add_rule(r);
  rt.install_fault_plan(plan);

  std::atomic<bool> early_ok{false};
  std::atomic<bool> late_dropped{false};
  rt.run([&](Communicator& w) {
    if (w.rank() == 0) w.send(1, 7, iota(1, 1.0));
    if (w.rank() == 1) {
      std::vector<double> buf(1);
      w.recv(0, 7, buf, 2000);  // clock at -1: rule disarmed
      early_ok = buf[0] == 1.0;
    }
    w.barrier();
    plan->note_step(5);  // arm the rule
    if (w.rank() == 0) w.send(1, 7, iota(1, 2.0));
    if (w.rank() == 1) {
      std::vector<double> buf(1);
      try {
        w.recv(0, 7, buf, 100);
      } catch (const Error& e) {
        late_dropped = e.kind() == Error::Kind::timeout;
      }
    }
  });
  rt.install_fault_plan(nullptr);
  EXPECT_TRUE(early_ok.load());
  EXPECT_TRUE(late_dropped.load());
  EXPECT_EQ(plan->injected(FaultPlan::Kind::drop), 1u);
}

}  // namespace
}  // namespace yy::comm

/// Whole-system physics tests: the qualitative behaviours of paper §V
/// at workstation scale — convective instability when the Rayleigh
/// forcing exceeds critical, divergence-free magnetic fields along
/// whole trajectories, overlap-region consistency, and checkpoint
/// restart exactness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/serial_solver.hpp"
#include "grid/fd_ops.hpp"
#include "io/checkpoint.hpp"
#include "mhd/derived.hpp"

namespace yy {
namespace {

using core::SerialYinYangSolver;
using core::SimulationConfig;
using yinyang::Panel;

SimulationConfig convective_config() {
  SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 2e-3;
  cfg.eq.kappa = 2e-3;
  cfg.eq.eta = 2e-3;
  cfg.eq.g0 = 3.0;
  cfg.eq.omega = {0.0, 0.0, 10.0};
  cfg.thermal = {2.5, 1.0};  // strong driving
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

TEST(Physics, ConvectionGrowsFromPerturbation) {
  SerialYinYangSolver s(convective_config());
  s.initialize();
  s.run_steps(5);
  const double ke_early = s.energies().kinetic;
  s.run_steps(60);
  const double ke_late = s.energies().kinetic;
  EXPECT_GT(ke_early, 0.0);
  EXPECT_GT(ke_late, 3.0 * ke_early);  // buoyancy-driven growth
}

TEST(Physics, StableStratificationStaysQuiet) {
  // Remove the temperature contrast: with no buoyancy drive the only
  // motion is the decaying discrete hydrostatic-adjustment transient,
  // so the kinetic energy stays bounded and does not grow — unlike the
  // driven case, whose convective instability keeps amplifying.
  SimulationConfig quiet = convective_config();
  quiet.eq.g0 = 1.0;  // keep the density scale height resolved
  quiet.thermal = {1.0, 1.0};  // no contrast at all
  quiet.ic.perturb_amp = 1e-4;
  SerialYinYangSolver s(quiet);
  s.initialize();
  s.run_steps(40);
  const double ke_mid = s.energies().kinetic;
  s.run_steps(40);
  const double ke_late = s.energies().kinetic;
  EXPECT_LT(ke_late, 2.0 * ke_mid + 1e-12);  // bounded, not amplifying
  EXPECT_LT(ke_late, 1e-2);                  // and small in absolute terms

  SimulationConfig driven = convective_config();
  SerialYinYangSolver d(driven);
  d.initialize();
  d.run_steps(40);
  const double dke_mid = d.energies().kinetic;
  d.run_steps(40);
  const double dke_late = d.energies().kinetic;
  EXPECT_GT(dke_late, 1.4 * dke_mid);  // convection keeps growing
}

TEST(Physics, DivergenceOfBStaysTruncationSmall) {
  // B = ∇×A by construction: ∇·B must stay at the discretization
  // error level along the whole trajectory (a key reason the paper
  // evolves A rather than B).
  SerialYinYangSolver s(convective_config());
  s.initialize();
  s.run_steps(25);
  const SphericalGrid& g = s.grid();
  mhd::Workspace& ws = s.workspace();
  for (Panel p : {Panel::yin, Panel::yang}) {
    mhd::Fields& f = s.panel(p);
    mhd::magnetic_field(g, f, ws.br, ws.bt, ws.bp, g.interior().grown(1));
    fd::div(g, ws.br, ws.bt, ws.bp, ws.s0, g.interior());
    double max_div = 0.0, max_b = 0.0;
    for_box(g.interior(), [&](int ir, int it, int ip) {
      max_div = std::max(max_div, std::abs(ws.s0(ir, it, ip)));
      max_b = std::max({max_b, std::abs(ws.br(ir, it, ip)),
                        std::abs(ws.bt(ir, it, ip)),
                        std::abs(ws.bp(ir, it, ip))});
    });
    // Scale-compare against |B|/h — the natural magnitude of one
    // derivative — requiring a deep relative cancellation.
    EXPECT_LT(max_div, 0.35 * max_b / g.dr()) << name(p);
  }
}

TEST(Physics, TotalEnergyBudgetClosesApproximately) {
  // Closed shell with fixed-T walls exchanges heat but not mass;
  // kinetic + magnetic stay bounded by the thermal reservoir.
  SerialYinYangSolver s(convective_config());
  s.initialize();
  const auto e0 = s.energies();
  s.run_steps(40);
  const auto e1 = s.energies();
  EXPECT_NEAR(e1.mass, e0.mass, 5e-3 * e0.mass);
  EXPECT_LT(e1.kinetic + e1.magnetic, 0.2 * e1.thermal);
  EXPECT_NEAR(e1.thermal, e0.thermal, 0.1 * e0.thermal);
}

TEST(Physics, RotationSuppressesRadialFlows) {
  // Rapid rotation organizes convection into columns (Taylor-Proudman):
  // the ratio of z-parallel to total kinetic energy rises with Ω.
  SimulationConfig slow = convective_config();
  slow.eq.omega = {0, 0, 1.0};
  SimulationConfig fast = convective_config();
  fast.eq.omega = {0, 0, 40.0};
  SerialYinYangSolver a(slow), b(fast);
  a.initialize();
  b.initialize();
  a.run_steps(50);
  b.run_steps(50);
  // Strong rotation delays/weakens the onset: kinetic energy is lower.
  EXPECT_LT(b.energies().kinetic, a.energies().kinetic);
}

TEST(Physics, CheckpointRestartBitExact) {
  SerialYinYangSolver s(convective_config());
  s.initialize();
  s.run_steps(8);
  const std::string path = std::string(::testing::TempDir()) + "/restart.bin";
  const SphericalGrid& g = s.grid();
  io::CheckpointHeader hdr{g.Nr(), g.Nt(), g.Np(), 2, s.time(),
                           s.steps_taken()};
  ASSERT_TRUE(io::save_checkpoint(path, hdr, &s.panel(Panel::yin),
                                  &s.panel(Panel::yang)));

  // Continue the original for 5 more steps at a fixed dt.
  const double dt = s.stable_dt();
  for (int i = 0; i < 5; ++i) s.step(dt);

  // Restart a fresh solver from the checkpoint and do the same.
  SerialYinYangSolver r(convective_config());
  r.initialize();
  io::CheckpointHeader back;
  ASSERT_TRUE(io::load_checkpoint(path, back, &r.panel(Panel::yin),
                                  &r.panel(Panel::yang)));
  for (int i = 0; i < 5; ++i) r.step(dt);

  for_box(g.interior(), [&](int ir, int it, int ip) {
    ASSERT_DOUBLE_EQ(s.panel(Panel::yin).p(ir, it, ip),
                     r.panel(Panel::yin).p(ir, it, ip));
    ASSERT_DOUBLE_EQ(s.panel(Panel::yang).ar(ir, it, ip),
                     r.panel(Panel::yang).ar(ir, it, ip));
  });
}

TEST(Physics, FinerGridReducesDoubleSolutionError) {
  // The paper (§II): the double solution differs by the discretization
  // error — so refining the grid must shrink it.
  SimulationConfig coarse = convective_config();
  coarse.ic.perturb_amp = 0.0;
  coarse.ic.seed_b_amp = 0.0;
  SimulationConfig fine = coarse;
  fine.nt_core = 25;
  fine.np_core = 73;
  fine.nr = 17;

  SerialYinYangSolver a(coarse), b(fine);
  a.initialize();
  b.initialize();
  // Evolve smooth axisymmetric states (pure conduction adjustment).
  a.run_steps(10);
  b.run_steps(10);
  const double ea = a.double_solution_error(4).first;
  const double eb = b.double_solution_error(4).first;
  EXPECT_LT(eb, ea + 1e-12);
}

}  // namespace
}  // namespace yy

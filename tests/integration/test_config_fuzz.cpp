/// Seeded randomized differential fuzzing of the solver stack: ~20
/// random small configurations sweeping grid sizes, RHS backends
/// (reference / fused / simd, with random forced lane widths), the
/// overlapped stepping mode (which with the registered YY_THREADS=2
/// also toggles the threaded sweeps) and rank layouts — each asserting
/// that the serial whole-sphere solver and the distributed solver land
/// on *bitwise* identical trajectories.  The generator is a fixed
/// master seed expanded per case, so every run covers the same corpus;
/// on failure the scoped trace prints the case's derived seed and full
/// configuration as a standalone reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/serial_solver.hpp"
#include "support/equivalence.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

constexpr std::uint64_t kMasterSeed = 0x9dce60f2a15e2bd7ull;
constexpr int kCases = 20;
constexpr int kSteps = 3;

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&options)[N]) {
  return options[rng.next_u64() % N];
}

struct CaseSpec {
  SimulationConfig cfg;
  int pt = 1;
  int pp = 1;
  int simd_width = 0;  ///< forced lane width when cfg.simd_rhs, else 0

  std::string describe(int index, std::uint64_t seed) const {
    std::ostringstream os;
    os << "fuzz case " << index << " (derived seed 0x" << std::hex << seed
       << std::dec << "): nr=" << cfg.nr << " nt_core=" << cfg.nt_core
       << " np_core=" << cfg.np_core << " backend="
       << mhd::backend_name(cfg.rhs_backend());
    if (simd_width > 0) os << " width=" << simd_width;
    os << " overlap=" << (cfg.overlap ? 1 : 0) << " layout=" << pt << "x"
       << pp << " mu=" << cfg.eq.mu << " kappa=" << cfg.eq.kappa
       << " eta=" << cfg.eq.eta << " g0=" << cfg.eq.g0
       << " omega_z=" << cfg.eq.omega.z << " ic.seed=" << cfg.ic.seed
       << " steps=" << kSteps;
    return os.str();
  }
};

CaseSpec random_case(std::uint64_t seed) {
  Rng rng(seed);
  CaseSpec c;

  // Grid: nr free; (nt, np) paired to keep the Yin-Yang core aspect
  // ratio the overset interpolation is built for (np ≈ 3·nt).
  static constexpr int kNr[] = {7, 8, 9, 10, 11};
  static constexpr std::pair<int, int> kHoriz[] = {{11, 31}, {13, 37},
                                                   {15, 43}};
  c.cfg.nr = pick(rng, kNr);
  const auto [nt, np] = pick(rng, kHoriz);
  c.cfg.nt_core = nt;
  c.cfg.np_core = np;

  // Physics: smooth random parameters in the regime the equivalence
  // suites use, plus a random initial-condition noise seed.
  c.cfg.eq.mu = rng.uniform(1e-3, 5e-3);
  c.cfg.eq.kappa = rng.uniform(1e-3, 5e-3);
  c.cfg.eq.eta = rng.uniform(1e-3, 5e-3);
  c.cfg.eq.g0 = rng.uniform(1.0, 3.0);
  c.cfg.eq.omega = {0.0, 0.0, rng.uniform(4.0, 10.0)};
  c.cfg.ic.perturb_amp = rng.uniform(5e-3, 2e-2);
  c.cfg.ic.seed_b_amp = rng.uniform(5e-5, 5e-4);
  c.cfg.ic.seed = rng.next_u64();

  // Execution shape: backend × overlap × rank layout.
  static constexpr int kBackend[] = {0, 1, 2};
  const int backend = pick(rng, kBackend);
  c.cfg.fused_rhs = backend == 1;
  c.cfg.simd_rhs = backend == 2;
  if (c.cfg.simd_rhs) {
    static constexpr int kWidths[] = {1, 2, 4, 8};
    c.simd_width = pick(rng, kWidths);
  }
  c.cfg.overlap = rng.next_u64() % 2 == 1;
  static constexpr std::pair<int, int> kLayouts[] = {
      {1, 1}, {1, 2}, {2, 1}, {2, 2}};
  const auto [pt, pp] = pick(rng, kLayouts);
  c.pt = pt;
  c.pp = pp;
  return c;
}

/// Serial analogue of testsupport::run_case: same field indices, both
/// panels, core-only extents (matching DistributedSolver::gather_field).
testsupport::RunResult run_serial(const SimulationConfig& cfg, int steps) {
  testsupport::RunResult result;
  SerialYinYangSolver solver(cfg);
  solver.initialize();
  result.dt = solver.stable_dt();
  for (int i = 0; i < steps; ++i) solver.step(result.dt);
  result.energy = solver.energies();
  const int gh = solver.grid().ghost();
  for (Panel p : {Panel::yin, Panel::yang}) {
    const mhd::Fields& s = solver.panel(p);
    for (int fi : testsupport::kFieldIndices) {
      const Field3& src = *s.all()[fi];
      Field3 core(src.nr() - 2 * gh, src.nt() - 2 * gh, src.np() - 2 * gh);
      for (int ip = 0; ip < core.np(); ++ip)
        for (int it = 0; it < core.nt(); ++it)
          for (int ir = 0; ir < core.nr(); ++ir)
            core(ir, it, ip) = src(ir + gh, it + gh, ip + gh);
      result.fields.push_back(std::move(core));
    }
  }
  return result;
}

TEST(ConfigFuzz, SerialAndDistributedTrajectoriesAgreeBitwise) {
  for (int i = 0; i < kCases; ++i) {
    // SplitMix-style per-case seed derivation from the fixed master.
    const std::uint64_t seed =
        kMasterSeed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
    const CaseSpec c = random_case(seed);
    SCOPED_TRACE(c.describe(i, seed));

    if (c.simd_width > 0) simd::force_active_width(c.simd_width);
    const testsupport::RunResult serial = run_serial(c.cfg, kSteps);
    const testsupport::RunResult dist =
        testsupport::run_case(c.cfg, c.pt, c.pp, kSteps);
    simd::force_active_width(0);

    ASSERT_GT(serial.dt, 0.0);
    ASSERT_EQ(dist.dt, serial.dt);
    ASSERT_EQ(dist.fields.size(), serial.fields.size());
    for (std::size_t f = 0; f < serial.fields.size(); ++f) {
      ASSERT_TRUE(serial.fields[f].same_shape(dist.fields[f]))
          << "gathered field slot " << f;
      EXPECT_EQ(testsupport::count_diffs(
                    testsupport::field_data(serial.fields[f]),
                    testsupport::field_data(dist.fields[f])),
                0u)
          << "gathered field slot " << f;
    }
    // Energies are summed in different orders (hierarchical reduction
    // vs one serial pass) — only the states are bitwise invariants.
  }
}

/// The corpus must actually sweep the execution-shape axes, or a
/// generator regression could silently fuzz one backend forever.
TEST(ConfigFuzz, CorpusCoversBackendsModesAndLayouts) {
  bool backend_seen[3] = {false, false, false};
  bool overlap_seen[2] = {false, false};
  bool multirank = false;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t seed =
        kMasterSeed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
    const CaseSpec c = random_case(seed);
    backend_seen[static_cast<int>(c.cfg.rhs_backend())] = true;
    overlap_seen[c.cfg.overlap ? 1 : 0] = true;
    if (c.pt * c.pp > 1) multirank = true;
  }
  EXPECT_TRUE(backend_seen[0] && backend_seen[1] && backend_seen[2]);
  EXPECT_TRUE(overlap_seen[0] && overlap_seen[1]);
  EXPECT_TRUE(multirank);
}

}  // namespace
}  // namespace yy::core

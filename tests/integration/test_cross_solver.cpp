/// Cross-solver validation: the Yin-Yang solver and the lat-lon
/// baseline integrate the SAME physics, so on a smooth axisymmetric
/// problem (pure conduction adjustment, no rotation, no perturbation)
/// their temperature evolutions must agree — the property that made
/// the paper's code conversion trustworthy ("most of the Yin-Yang grid
/// code shares source lines with the latitude-longitude grid code").
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/latlon_solver.hpp"
#include "core/serial_solver.hpp"
#include "io/sphere_sampler.hpp"
#include "mhd/derived.hpp"

namespace yy {
namespace {

using yinyang::Panel;

TEST(CrossSolver, ConductionProfilesAgreeBetweenGrids) {
  // Shared physics: no rotation/gravity noise sources; mild conduction
  // drives a smooth axisymmetric adjustment from a slightly-off-profile
  // initial condition.
  mhd::EquationParams eq;
  eq.mu = 5e-3;
  eq.kappa = 5e-3;
  eq.eta = 5e-3;
  eq.g0 = 1.0;
  eq.omega = {0, 0, 0};
  const mhd::ThermalBc thermal{1.6, 1.0};

  baseline::LatLonConfig lc;
  lc.nr = 13;
  lc.nt = 24;
  lc.np = 48;
  lc.eq = eq;
  lc.thermal = thermal;
  lc.ic.perturb_amp = 0.0;
  lc.ic.seed_b_amp = 0.0;
  baseline::LatLonSolver latlon(lc);
  latlon.initialize();

  core::SimulationConfig yc;
  yc.nr = 13;
  yc.nt_core = 13;
  yc.np_core = 37;
  yc.eq = eq;
  yc.thermal = thermal;
  yc.ic.perturb_amp = 0.0;
  yc.ic.seed_b_amp = 0.0;
  core::SerialYinYangSolver yysolver(yc);
  yysolver.initialize();

  // March both to the same simulated time.
  const double t_target = 0.02;
  const double dt_ll = latlon.stable_dt();
  while (latlon.time() < t_target) latlon.step(std::min(dt_ll, t_target - latlon.time()));
  const double dt_yy = yysolver.stable_dt();
  while (yysolver.time() < t_target)
    yysolver.step(std::min(dt_yy, t_target - yysolver.time()));

  // Compare temperature T = p/ρ along a mid-latitude radial line.
  // Lat-lon: nearest node to (θ=1.0, φ=0.2); Yin-Yang: sample.
  const SphericalGrid& lg = latlon.grid();
  int jt = lg.ghost(), jp = lg.ghost();
  for (int j = lg.ghost(); j < lg.ghost() + lg.spec().nt; ++j)
    if (std::abs(lg.theta(j) - 1.0) < std::abs(lg.theta(jt) - 1.0)) jt = j;
  for (int k = lg.ghost(); k < lg.ghost() + lg.spec().np; ++k)
    if (std::abs(lg.phi(k) - 0.2) < std::abs(lg.phi(jp) - 0.2)) jp = k;

  io::SphereSampler sampler(yysolver.grid(), yysolver.geometry());
  double max_rel = 0.0;
  for (int ir = lg.ghost() + 1; ir < lg.ghost() + lg.spec().nr - 1; ++ir) {
    const double t_ll = latlon.state().p(ir, jt, jp) /
                        latlon.state().rho(ir, jt, jp);
    // Same radius on the Yin-Yang side (its radial nodes coincide).
    const double rho = sampler.sample_scalar(
        yysolver.panel(Panel::yin).rho, yysolver.panel(Panel::yang).rho,
        lg.r(ir), lg.theta(jt), lg.phi(jp));
    const double p = sampler.sample_scalar(
        yysolver.panel(Panel::yin).p, yysolver.panel(Panel::yang).p, lg.r(ir),
        lg.theta(jt), lg.phi(jp));
    const double t_yy = p / rho;
    max_rel = std::max(max_rel, std::abs(t_ll - t_yy) / t_ll);
  }
  // Different grids, same physics: agreement to discretization error.
  EXPECT_LT(max_rel, 5e-3);
}

TEST(CrossSolver, MassAgreesBetweenGrids) {
  mhd::EquationParams eq;
  eq.g0 = 1.5;
  eq.omega = {0, 0, 0};
  const mhd::ThermalBc thermal{1.5, 1.0};

  baseline::LatLonConfig lc;
  lc.nr = 11;
  lc.nt = 20;
  lc.np = 40;
  lc.eq = eq;
  lc.thermal = thermal;
  lc.ic.perturb_amp = 0.0;
  lc.ic.seed_b_amp = 0.0;
  baseline::LatLonSolver latlon(lc);
  latlon.initialize();

  core::SimulationConfig yc;
  yc.nr = 11;
  yc.nt_core = 11;
  yc.np_core = 31;
  yc.eq = eq;
  yc.thermal = thermal;
  yc.ic.perturb_amp = 0.0;
  yc.ic.seed_b_amp = 0.0;
  core::SerialYinYangSolver yysolver(yc);
  yysolver.initialize();

  // The same hydrostatic shell must weigh the same on both grids
  // (the Yin-Yang ownership weights make the overlap count once).
  const double m_ll = latlon.energies().mass;
  const double m_yy = yysolver.energies().mass;
  EXPECT_NEAR(m_yy, m_ll, 0.05 * m_ll);
}

}  // namespace
}  // namespace yy

/// Cross-solver validation: the Yin-Yang solver and the lat-lon
/// baseline integrate the SAME physics, so on a smooth axisymmetric
/// problem (pure conduction adjustment, no rotation, no perturbation)
/// their temperature evolutions must agree — the property that made
/// the paper's code conversion trustworthy ("most of the Yin-Yang grid
/// code shares source lines with the latitude-longitude grid code").
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "baseline/latlon_solver.hpp"
#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "core/serial_solver.hpp"
#include "io/sphere_sampler.hpp"
#include "mhd/derived.hpp"

namespace yy {
namespace {

using yinyang::Panel;

TEST(CrossSolver, ConductionProfilesAgreeBetweenGrids) {
  // Shared physics: no rotation/gravity noise sources; mild conduction
  // drives a smooth axisymmetric adjustment from a slightly-off-profile
  // initial condition.
  mhd::EquationParams eq;
  eq.mu = 5e-3;
  eq.kappa = 5e-3;
  eq.eta = 5e-3;
  eq.g0 = 1.0;
  eq.omega = {0, 0, 0};
  const mhd::ThermalBc thermal{1.6, 1.0};

  baseline::LatLonConfig lc;
  lc.nr = 13;
  lc.nt = 24;
  lc.np = 48;
  lc.eq = eq;
  lc.thermal = thermal;
  lc.ic.perturb_amp = 0.0;
  lc.ic.seed_b_amp = 0.0;
  baseline::LatLonSolver latlon(lc);
  latlon.initialize();

  core::SimulationConfig yc;
  yc.nr = 13;
  yc.nt_core = 13;
  yc.np_core = 37;
  yc.eq = eq;
  yc.thermal = thermal;
  yc.ic.perturb_amp = 0.0;
  yc.ic.seed_b_amp = 0.0;
  core::SerialYinYangSolver yysolver(yc);
  yysolver.initialize();

  // March both to the same simulated time.
  const double t_target = 0.02;
  const double dt_ll = latlon.stable_dt();
  while (latlon.time() < t_target) latlon.step(std::min(dt_ll, t_target - latlon.time()));
  const double dt_yy = yysolver.stable_dt();
  while (yysolver.time() < t_target)
    yysolver.step(std::min(dt_yy, t_target - yysolver.time()));

  // Compare temperature T = p/ρ along a mid-latitude radial line.
  // Lat-lon: nearest node to (θ=1.0, φ=0.2); Yin-Yang: sample.
  const SphericalGrid& lg = latlon.grid();
  int jt = lg.ghost(), jp = lg.ghost();
  for (int j = lg.ghost(); j < lg.ghost() + lg.spec().nt; ++j)
    if (std::abs(lg.theta(j) - 1.0) < std::abs(lg.theta(jt) - 1.0)) jt = j;
  for (int k = lg.ghost(); k < lg.ghost() + lg.spec().np; ++k)
    if (std::abs(lg.phi(k) - 0.2) < std::abs(lg.phi(jp) - 0.2)) jp = k;

  io::SphereSampler sampler(yysolver.grid(), yysolver.geometry());
  double max_rel = 0.0;
  for (int ir = lg.ghost() + 1; ir < lg.ghost() + lg.spec().nr - 1; ++ir) {
    const double t_ll = latlon.state().p(ir, jt, jp) /
                        latlon.state().rho(ir, jt, jp);
    // Same radius on the Yin-Yang side (its radial nodes coincide).
    const double rho = sampler.sample_scalar(
        yysolver.panel(Panel::yin).rho, yysolver.panel(Panel::yang).rho,
        lg.r(ir), lg.theta(jt), lg.phi(jp));
    const double p = sampler.sample_scalar(
        yysolver.panel(Panel::yin).p, yysolver.panel(Panel::yang).p, lg.r(ir),
        lg.theta(jt), lg.phi(jp));
    const double t_yy = p / rho;
    max_rel = std::max(max_rel, std::abs(t_ll - t_yy) / t_ll);
  }
  // Different grids, same physics: agreement to discretization error.
  EXPECT_LT(max_rel, 5e-3);
}

TEST(CrossSolver, MassAgreesBetweenGrids) {
  mhd::EquationParams eq;
  eq.g0 = 1.5;
  eq.omega = {0, 0, 0};
  const mhd::ThermalBc thermal{1.5, 1.0};

  baseline::LatLonConfig lc;
  lc.nr = 11;
  lc.nt = 20;
  lc.np = 40;
  lc.eq = eq;
  lc.thermal = thermal;
  lc.ic.perturb_amp = 0.0;
  lc.ic.seed_b_amp = 0.0;
  baseline::LatLonSolver latlon(lc);
  latlon.initialize();

  core::SimulationConfig yc;
  yc.nr = 11;
  yc.nt_core = 11;
  yc.np_core = 31;
  yc.eq = eq;
  yc.thermal = thermal;
  yc.ic.perturb_amp = 0.0;
  yc.ic.seed_b_amp = 0.0;
  core::SerialYinYangSolver yysolver(yc);
  yysolver.initialize();

  // The same hydrostatic shell must weigh the same on both grids
  // (the Yin-Yang ownership weights make the overlap count once).
  const double m_ll = latlon.energies().mass;
  const double m_yy = yysolver.energies().mass;
  EXPECT_NEAR(m_yy, m_ll, 0.05 * m_ll);
}

// ---------------------------------------------------------------------------
// Cross-rank-count determinism: the distributed solver must reproduce
// the serial trajectory at EVERY decomposition, over enough steps for a
// drift to compound.  The halo/overset exchanges move exact field
// values and the reductions are order-fixed, so agreement is expected
// to roundoff; a tight absolute tolerance guards against any future
// reassociation sneaking into the exchange or reduction paths.

core::SimulationConfig determinism_config() {
  core::SimulationConfig cfg;
  cfg.nr = 7;
  cfg.nt_core = 11;
  cfg.np_core = 31;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Yin-panel pressure after `steps` RK4 steps on pt × pp ranks/panel.
Field3 distributed_pressure(const core::SimulationConfig& cfg, int pt, int pp,
                            int steps, double* dt_out) {
  Field3 out;
  double dt_used = 0.0;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    Field3 f = solver.gather_field(/*p*/ 4, yinyang::Panel::yin);
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      out = std::move(f);
      dt_used = dt;
    }
  });
  if (dt_out != nullptr) *dt_out = dt_used;
  return out;
}

TEST(CrossSolver, RankCountsAgreeWithSerialOverTwentySteps) {
  const core::SimulationConfig cfg = determinism_config();
  const int steps = 20;

  core::SerialYinYangSolver serial(cfg);
  serial.initialize();
  const double dt_serial = serial.stable_dt();
  for (int i = 0; i < steps; ++i) serial.step(dt_serial);
  const Field3& sp = serial.panel(yinyang::Panel::yin).p;
  const int gh = serial.grid().ghost();

  double field_scale = 0.0;
  for (const double v : sp.flat())
    field_scale = std::max(field_scale, std::abs(v));
  ASSERT_GT(field_scale, 0.0);

  // 1, 2 and 4 ranks per panel (worlds of 2, 4 and 8), both split axes.
  const int layouts[][2] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}};
  for (const auto& layout : layouts) {
    const int pt = layout[0], pp = layout[1];
    double dt = 0.0;
    const Field3 f = distributed_pressure(cfg, pt, pp, steps, &dt);
    ASSERT_NEAR(dt, dt_serial, 1e-15) << pt << "x" << pp;
    ASSERT_EQ(f.nr(), cfg.nr) << pt << "x" << pp;

    double max_diff = 0.0;
    for (int ip = 0; ip < f.np(); ++ip)
      for (int it = 0; it < f.nt(); ++it)
        for (int ir = 0; ir < f.nr(); ++ir)
          max_diff = std::max(
              max_diff,
              std::abs(f(ir, it, ip) - sp(ir + gh, it + gh, ip + gh)));
    EXPECT_LE(max_diff, 1e-12 * field_scale)
        << "decomposition " << pt << "x" << pp << " diverged from serial";
  }
}

TEST(CrossSolver, RankCountsAgreeWithEachOtherBitwise) {
  // Among decompositions the arithmetic is identical (same kernels,
  // same patch-local stencils), so trajectories must agree bit-for-bit
  // even where serial-vs-distributed roundoff might legitimately creep.
  const core::SimulationConfig cfg = determinism_config();
  const int steps = 20;
  const Field3 a = distributed_pressure(cfg, 1, 1, steps, nullptr);
  const Field3 b = distributed_pressure(cfg, 1, 2, steps, nullptr);
  const Field3 c = distributed_pressure(cfg, 2, 2, steps, nullptr);
  ASSERT_TRUE(a.same_shape(b));
  ASSERT_TRUE(a.same_shape(c));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat()[i], b.flat()[i]) << "1x1 vs 1x2 at " << i;
    ASSERT_EQ(a.flat()[i], c.flat()[i]) << "1x1 vs 2x2 at " << i;
  }
}

}  // namespace
}  // namespace yy

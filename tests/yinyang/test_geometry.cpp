#include "yinyang/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace yy::yinyang {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Geometry, CoreSpansMatchPaper) {
  // 90° of colatitude around the equator, 270° of longitude (§II).
  EXPECT_DOUBLE_EQ(ComponentGeometry::core_t_min(), kPi / 4);
  EXPECT_DOUBLE_EQ(ComponentGeometry::core_t_max(), 3 * kPi / 4);
  EXPECT_DOUBLE_EQ(ComponentGeometry::core_p_min(), -3 * kPi / 4);
  EXPECT_DOUBLE_EQ(ComponentGeometry::core_p_max(), 3 * kPi / 4);
}

TEST(Geometry, MinimalOverlapIsSixPercent) {
  // Paper §II: "the overlapping area has still non-zero ratio of about
  // 6% of the whole spherical surface"; analytically (3√2 − 4)/4.
  const double ratio = ComponentGeometry::minimal_overlap_ratio();
  EXPECT_NEAR(ratio, (3.0 * std::sqrt(2.0) - 4.0) / 4.0, 1e-12);
  EXPECT_NEAR(ratio, 0.0607, 5e-4);
}

TEST(Geometry, TwoCoresCoverTheSphere) {
  EXPECT_TRUE(ComponentGeometry::covers_sphere(200000));
}

TEST(Geometry, SpacingFromCoreNodeCounts) {
  ComponentGeometry g(13, 37, 0, 0, 2);
  EXPECT_DOUBLE_EQ(g.dt(), (kPi / 2) / 12);
  EXPECT_DOUBLE_EQ(g.dp(), (3 * kPi / 2) / 36);
}

TEST(Geometry, MarginExtendsInteriorSymmetrically) {
  ComponentGeometry g(13, 37, 2, 3, 2);
  EXPECT_EQ(g.nt(), 17);
  EXPECT_EQ(g.np(), 43);
  EXPECT_DOUBLE_EQ(g.t_min(), kPi / 4 - 2 * g.dt());
  EXPECT_DOUBLE_EQ(g.t_max(), 3 * kPi / 4 + 2 * g.dt());
  EXPECT_DOUBLE_EQ(g.p_min(), -3 * kPi / 4 - 3 * g.dp());
}

TEST(Geometry, AutoMarginValidatesDonorContainment) {
  // At practical resolutions the basic rectangle needs no margin: the
  // ghost images curve *into* the partner's core.
  for (int nt : {9, 13, 17, 33}) {
    ComponentGeometry g = ComponentGeometry::with_auto_margin(nt, 3 * nt - 2);
    EXPECT_GE(g.margin_t(), 0);
    EXPECT_GE(g.margin_p(), 0);
    EXPECT_LE(g.margin_t() + g.margin_p(), 8) << "nt=" << nt;
  }
}

TEST(Geometry, ExtendedOverlapGrowsWithMargin) {
  ComponentGeometry a(17, 49, 0, 0, 2);
  ComponentGeometry b(17, 49, 2, 2, 2);
  EXPECT_GT(b.extended_overlap_ratio(), a.extended_overlap_ratio());
  EXPECT_NEAR(a.extended_overlap_ratio(),
              ComponentGeometry::minimal_overlap_ratio(), 1e-12);
}

TEST(Geometry, InCoreBoundaryInclusive) {
  EXPECT_TRUE(ComponentGeometry::in_core({kPi / 4, 0.0}));
  EXPECT_TRUE(ComponentGeometry::in_core({kPi / 2, 3 * kPi / 4}));
  EXPECT_FALSE(ComponentGeometry::in_core({kPi / 4 - 1e-9, 0.0}));
  EXPECT_FALSE(ComponentGeometry::in_core({kPi / 2, 3 * kPi / 4 + 1e-9}));
}

TEST(Geometry, GridSpecMatchesGeometry) {
  ComponentGeometry g = ComponentGeometry::with_auto_margin(13, 37);
  const GridSpec s = g.make_grid_spec(9, 0.35, 1.0);
  EXPECT_EQ(s.nr, 9);
  EXPECT_EQ(s.nt, g.nt());
  EXPECT_EQ(s.np, g.np());
  EXPECT_DOUBLE_EQ(s.t0, g.t_min());
  EXPECT_DOUBLE_EQ(s.p1, g.p_max());
  EXPECT_FALSE(s.phi_periodic);
  const SphericalGrid grid(s);
  EXPECT_NEAR(grid.dt(), g.dt(), 1e-14);
  EXPECT_NEAR(grid.dp(), g.dp(), 1e-14);
}

TEST(Geometry, EveryPointOutsideCoreIsInPartnerCore) {
  // The complement of one core must lie inside the other core — the
  // ownership rule (margin → partner) depends on it.
  Rng rng(21);
  int checked = 0;
  for (int i = 0; i < 100000; ++i) {
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(-kPi, kPi);
    const Angles a{std::acos(z), phi};
    if (ComponentGeometry::in_core(a)) continue;
    ++checked;
    EXPECT_TRUE(ComponentGeometry::in_core(partner_angles(a)))
        << "theta=" << a.theta << " phi=" << a.phi;
  }
  EXPECT_GT(checked, 10000);  // the complement is ~47% of the sphere
}

TEST(Geometry, PanelNamesFollowPaper) {
  EXPECT_STREQ(name(Panel::yin), "yin");
  EXPECT_STREQ(name(Panel::yang), "yang");
  EXPECT_EQ(other(Panel::yin), Panel::yang);
  EXPECT_EQ(other(Panel::yang), Panel::yin);
}

}  // namespace
}  // namespace yy::yinyang

#include "yinyang/interpolator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "yinyang/transform.hpp"

namespace yy::yinyang {
namespace {

class InterpolatorTest : public ::testing::Test {
 protected:
  InterpolatorTest()
      : geom(ComponentGeometry::with_auto_margin(13, 37)),
        grid(geom.make_grid_spec(7, 0.4, 1.0)),
        interp(geom) {}

  Field3 make_field() const { return Field3(grid.Nr(), grid.Nt(), grid.Np()); }

  /// Fills a scalar field from a global (Yin-frame) Cartesian function,
  /// with `panel` selecting the frame.
  template <typename F>
  void fill_global(Field3& f, Panel panel, F&& func) const {
    for_box(grid.full(), [&](int ir, int it, int ip) {
      const Angles a{grid.theta(it), grid.phi(ip)};
      Vec3 pos = position(a) * grid.r(ir);
      if (panel == Panel::yang) pos = axis_swap(pos);  // to global frame
      f(ir, it, ip) = func(pos);
    });
  }

  ComponentGeometry geom;
  SphericalGrid grid;
  OversetInterpolator interp;
};

TEST_F(InterpolatorTest, EntriesCoverExactlyTheGhostFrame) {
  const int gh = geom.ghost();
  const std::size_t frame =
      static_cast<std::size_t>(grid.Nt()) * grid.Np() -
      static_cast<std::size_t>(geom.nt()) * geom.np();
  EXPECT_EQ(interp.entries().size(), frame);
  for (const StencilEntry& e : interp.entries()) {
    const bool interior = e.recv_it >= gh && e.recv_it < gh + geom.nt() &&
                          e.recv_ip >= gh && e.recv_ip < gh + geom.np();
    EXPECT_FALSE(interior);
    // Donor cells are strictly inside the partner interior.
    EXPECT_GE(e.donor_jt, gh);
    EXPECT_LE(e.donor_jt + 1, gh + geom.nt() - 1);
    EXPECT_GE(e.donor_jp, gh);
    EXPECT_LE(e.donor_jp + 1, gh + geom.np() - 1);
  }
}

TEST_F(InterpolatorTest, WeightsArePartitionOfUnity) {
  for (const StencilEntry& e : interp.entries()) {
    const double s = e.w[0][0] + e.w[0][1] + e.w[1][0] + e.w[1][1];
    EXPECT_NEAR(s, 1.0, 1e-12);
    for (int a = 0; a < 2; ++a)
      for (int b = 0; b < 2; ++b) {
        EXPECT_GE(e.w[a][b], -1e-12);
        EXPECT_LE(e.w[a][b], 1.0 + 1e-12);
      }
  }
}

TEST_F(InterpolatorTest, ConstantFieldReproducedExactly) {
  Field3 donor = make_field(), recv = make_field();
  donor.fill(4.25);
  recv.fill(-1.0);
  interp.fill_scalar(grid, donor, recv);
  const int gh = grid.ghost();
  for (const StencilEntry& e : interp.entries())
    for (int ir = gh; ir < gh + grid.spec().nr; ++ir)
      EXPECT_NEAR(recv(ir, e.recv_it, e.recv_ip), 4.25, 1e-12);
}

TEST_F(InterpolatorTest, GlobalLinearScalarInterpolatedAcrossPanels) {
  // A globally smooth function sampled on Yang must land on Yin's
  // ghosts within bilinear error.
  auto func = [](const Vec3& x) { return 0.3 * x.x - 0.8 * x.y + 0.5 * x.z; };
  Field3 yang = make_field(), yin = make_field();
  fill_global(yang, Panel::yang, func);
  interp.fill_scalar(grid, yang, yin);
  const int gh = grid.ghost();
  double err = 0.0;
  for (const StencilEntry& e : interp.entries()) {
    for (int ir = gh; ir < gh + grid.spec().nr; ++ir) {
      const Angles a{grid.theta(e.recv_it), grid.phi(e.recv_ip)};
      const Vec3 pos = position(a) * grid.r(ir);  // Yin ghost = global frame
      err = std::max(err, std::abs(yin(ir, e.recv_it, e.recv_ip) - func(pos)));
    }
  }
  EXPECT_LT(err, 5e-3);
}

TEST_F(InterpolatorTest, VectorRotationCarriesUniformField) {
  // A uniform global Cartesian vector U: its spherical components on
  // Yang, interpolated + rotated onto Yin ghosts, must equal U's
  // spherical components in Yin coordinates.
  const Vec3 u{0.4, -1.1, 0.7};
  Field3 dr = make_field(), dt = make_field(), dp = make_field();
  Field3 rr = make_field(), rt = make_field(), rp = make_field();
  for_box(grid.full(), [&](int ir, int it, int ip) {
    (void)ir;
    const Angles b{grid.theta(it), grid.phi(ip)};
    // Yang panel: express the *global* vector in Yang-local Cartesian
    // (axis swap), then in Yang spherical components.
    const Vec3 sph = spherical_basis(b).transpose() * axis_swap(u);
    dr(ir, it, ip) = sph.x;
    dt(ir, it, ip) = sph.y;
    dp(ir, it, ip) = sph.z;
  });
  interp.fill_vector(grid, dr, dt, dp, rr, rt, rp);
  const int gh = grid.ghost();
  double err = 0.0;
  for (const StencilEntry& e : interp.entries()) {
    const Angles a{grid.theta(e.recv_it), grid.phi(e.recv_ip)};
    const Vec3 expect = spherical_basis(a).transpose() * u;
    for (int ir = gh; ir < gh + grid.spec().nr; ++ir) {
      err = std::max({err, std::abs(rr(ir, e.recv_it, e.recv_ip) - expect.x),
                      std::abs(rt(ir, e.recv_it, e.recv_ip) - expect.y),
                      std::abs(rp(ir, e.recv_it, e.recv_ip) - expect.z)});
    }
  }
  // The components are smooth (not linear) functions of angle, so the
  // error is bilinear-interpolation sized.
  EXPECT_LT(err, 5e-3);
}

TEST_F(InterpolatorTest, RadialComponentPassesThroughUnrotated) {
  // A purely radial field is invariant under the panel rotation.
  Field3 dr = make_field(), dt = make_field(), dp = make_field();
  Field3 rr = make_field(), rt = make_field(), rp = make_field();
  dr.fill(2.0);
  interp.fill_vector(grid, dr, dt, dp, rr, rt, rp);
  const int gh = grid.ghost();
  for (const StencilEntry& e : interp.entries()) {
    for (int ir = gh; ir < gh + grid.spec().nr; ++ir) {
      EXPECT_NEAR(rr(ir, e.recv_it, e.recv_ip), 2.0, 1e-12);
      EXPECT_NEAR(rt(ir, e.recv_it, e.recv_ip), 0.0, 1e-12);
      EXPECT_NEAR(rp(ir, e.recv_it, e.recv_ip), 0.0, 1e-12);
    }
  }
}

TEST_F(InterpolatorTest, InterpolationErrorIsSecondOrder) {
  auto run = [&](int nt, int np) {
    ComponentGeometry ge = ComponentGeometry::with_auto_margin(nt, np);
    SphericalGrid gr(ge.make_grid_spec(5, 0.4, 1.0));
    OversetInterpolator it(ge);
    Field3 donor(gr.Nr(), gr.Nt(), gr.Np()), recv(gr.Nr(), gr.Nt(), gr.Np());
    auto func = [](const Vec3& x) {
      return std::sin(2 * x.x) * std::cos(x.y) + x.z * x.z;
    };
    for_box(gr.full(), [&](int ir, int jt, int jp) {
      const Angles a{gr.theta(jt), gr.phi(jp)};
      donor(ir, jt, jp) = func(axis_swap(position(a) * gr.r(ir)));
    });
    it.fill_scalar(gr, donor, recv);
    double err = 0.0;
    const int gh = gr.ghost();
    for (const StencilEntry& e : it.entries()) {
      for (int ir = gh; ir < gh + gr.spec().nr; ++ir) {
        const Angles a{gr.theta(e.recv_it), gr.phi(e.recv_ip)};
        err = std::max(err, std::abs(recv(ir, e.recv_it, e.recv_ip) -
                                     func(position(a) * gr.r(ir))));
      }
    }
    return err;
  };
  const double coarse = run(13, 37);
  const double fine = run(25, 73);
  EXPECT_GT(coarse / fine, 3.0) << "coarse=" << coarse << " fine=" << fine;
}

}  // namespace
}  // namespace yy::yinyang

#include "yinyang/transform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace yy::yinyang {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Transform, AxisSwapMatchesPaperEquation1) {
  // (xe, ye, ze) = (−xn, zn, yn).
  const Vec3 v = axis_swap({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(v.x, -1.0);
  EXPECT_DOUBLE_EQ(v.y, 3.0);
  EXPECT_DOUBLE_EQ(v.z, 2.0);
}

TEST(Transform, AxisSwapIsInvolution) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec3 v{rng.symmetric(2), rng.symmetric(2), rng.symmetric(2)};
    const Vec3 w = axis_swap(axis_swap(v));
    EXPECT_DOUBLE_EQ(w.x, v.x);
    EXPECT_DOUBLE_EQ(w.y, v.y);
    EXPECT_DOUBLE_EQ(w.z, v.z);
  }
}

TEST(Transform, AxisSwapMatrixAgreesWithFunction) {
  const Mat3 p = axis_swap_matrix();
  const Vec3 v{0.3, -0.7, 1.1};
  const Vec3 a = p * v;
  const Vec3 b = axis_swap(v);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
  EXPECT_DOUBLE_EQ(a.z, b.z);
}

TEST(Transform, PositionAnglesRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Angles a{rng.uniform(0.05, kPi - 0.05), rng.uniform(-kPi + 0.01, kPi)};
    const Angles b = angles_of(position(a));
    EXPECT_NEAR(b.theta, a.theta, 1e-12);
    EXPECT_NEAR(b.phi, a.phi, 1e-12);
  }
}

TEST(Transform, PartnerAnglesIsInvolution) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Angles a{rng.uniform(0.3, kPi - 0.3), rng.uniform(-2.0, 2.0)};
    const Angles b = partner_angles(partner_angles(a));
    EXPECT_NEAR(b.theta, a.theta, 1e-12);
    EXPECT_NEAR(b.phi, a.phi, 1e-12);
  }
}

TEST(Transform, PartnerPreservesPhysicalPosition) {
  // The same physical point: position(a) in Yin frame equals the
  // inverse axis swap of position(partner(a)) in the Yang frame.
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Angles a{rng.uniform(0.3, kPi - 0.3), rng.uniform(-3.0, 3.0)};
    const Vec3 via_partner = axis_swap(position(partner_angles(a)));
    const Vec3 direct = position(a);
    EXPECT_NEAR(via_partner.x, direct.x, 1e-12);
    EXPECT_NEAR(via_partner.y, direct.y, 1e-12);
    EXPECT_NEAR(via_partner.z, direct.z, 1e-12);
  }
}

TEST(Transform, YinPoleMapsToYangEquator) {
  // The Yin z-axis (θ=0) lies on the Yang equator — the design property
  // that removes the pole singularity from both panels' computed cores.
  const Angles pole{1e-9, 0.0};
  const Angles b = partner_angles(pole);
  EXPECT_NEAR(b.theta, kPi / 2.0, 1e-6);
}

TEST(Transform, SphericalBasisOrthonormal) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const Angles a{rng.uniform(0.1, kPi - 0.1), rng.uniform(-kPi, kPi)};
    const Mat3 b = spherical_basis(a);
    const Mat3 btb = b.transpose() * b;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        EXPECT_NEAR(btb.m[r][c], r == c ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Transform, BasisFirstColumnIsRadial) {
  const Angles a{0.8, 1.1};
  const Mat3 b = spherical_basis(a);
  const Vec3 pos = position(a);
  EXPECT_NEAR(b.m[0][0], pos.x, 1e-14);
  EXPECT_NEAR(b.m[1][0], pos.y, 1e-14);
  EXPECT_NEAR(b.m[2][0], pos.z, 1e-14);
}

TEST(Transform, VectorTransformPreservesRadialComponent) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const Angles a{rng.uniform(0.4, kPi - 0.4), rng.uniform(-2.2, 2.2)};
    const Mat3 m = partner_vector_transform(a);
    // Row/column 0 must be (1, 0, 0): v_r is frame-independent.
    EXPECT_NEAR(m.m[0][0], 1.0, 1e-12);
    EXPECT_NEAR(m.m[0][1], 0.0, 1e-12);
    EXPECT_NEAR(m.m[0][2], 0.0, 1e-12);
    EXPECT_NEAR(m.m[1][0], 0.0, 1e-12);
    EXPECT_NEAR(m.m[2][0], 0.0, 1e-12);
  }
}

TEST(Transform, VectorTransformIsOrthogonal) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    const Angles a{rng.uniform(0.4, kPi - 0.4), rng.uniform(-2.2, 2.2)};
    const Mat3 m = partner_vector_transform(a);
    const Mat3 mtm = m.transpose() * m;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        EXPECT_NEAR(mtm.m[r][c], r == c ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Transform, VectorTransformRoundTripsThroughPartner) {
  // Applying the transform at a and then at partner(a) must return the
  // original components — the code-level complementarity of eq. (1).
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const Angles a{rng.uniform(0.4, kPi - 0.4), rng.uniform(-2.2, 2.2)};
    const Mat3 fwd = partner_vector_transform(a);
    const Mat3 bwd = partner_vector_transform(partner_angles(a));
    const Mat3 round = bwd * fwd;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        EXPECT_NEAR(round.m[r][c], r == c ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Transform, VectorTransformMatchesCartesianPath) {
  // Carrying a physical vector through Cartesian explicitly must agree
  // with the composed matrix.
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    const Angles a{rng.uniform(0.4, kPi - 0.4), rng.uniform(-2.2, 2.2)};
    const Vec3 sph{rng.symmetric(1), rng.symmetric(1), rng.symmetric(1)};
    const Vec3 via_matrix = partner_vector_transform(a) * sph;
    const Vec3 cart = spherical_basis(a) * sph;          // Yin Cartesian
    const Vec3 cart_e = axis_swap(cart);                 // Yang Cartesian
    const Vec3 expect = spherical_basis(partner_angles(a)).transpose() * cart_e;
    EXPECT_NEAR(via_matrix.x, expect.x, 1e-12);
    EXPECT_NEAR(via_matrix.y, expect.y, 1e-12);
    EXPECT_NEAR(via_matrix.z, expect.z, 1e-12);
  }
}

}  // namespace
}  // namespace yy::yinyang

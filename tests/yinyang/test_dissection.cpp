#include "yinyang/dissection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "yinyang/geometry.hpp"

namespace yy::yinyang {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Dissection, PaperRectangleCoversWithSixPercentOverlap) {
  const RectangleVariant v = analyze_rectangle(kPi / 4, 3 * kPi / 4);
  EXPECT_TRUE(v.covers);
  EXPECT_NEAR(v.coverage, 1.0, 2e-3);
  EXPECT_NEAR(v.overlap_ratio, ComponentGeometry::minimal_overlap_ratio(),
              3e-3);
}

TEST(Dissection, NarrowerPhiSpanLosesCoverage) {
  // Shrinking the longitude span below 270° opens uncovered gaps.
  const RectangleVariant v = analyze_rectangle(kPi / 4, 0.65 * kPi);
  EXPECT_FALSE(v.covers);
  EXPECT_LT(v.coverage, 0.999);
}

TEST(Dissection, WiderSpansOverlapMore) {
  const RectangleVariant paper = analyze_rectangle(kPi / 4, 3 * kPi / 4);
  const RectangleVariant fat = analyze_rectangle(0.3 * kPi, 3 * kPi / 4);
  EXPECT_TRUE(fat.covers);
  EXPECT_GT(fat.overlap_ratio, paper.overlap_ratio);
}

TEST(Dissection, ScanFindsPaperChoiceAsMinimalCoveringSpan) {
  const auto variants = scan_phi_spans(9, 60000);
  // Find the smallest covering φ half-span in the scan; it must be the
  // paper's 3π/4 (within the scan's resolution).
  double smallest_covering = 1e30;
  for (const RectangleVariant& v : variants) {
    if (v.covers) smallest_covering = std::min(smallest_covering, v.p_halfspan);
  }
  EXPECT_NEAR(smallest_covering, 3 * kPi / 4, kPi / 16);
  // And overlap grows monotonically with the span among covering ones.
  double prev = -1.0;
  for (const RectangleVariant& v : variants) {
    if (!v.covers) continue;
    EXPECT_GE(v.overlap_ratio + 3e-3, prev);
    prev = v.overlap_ratio;
  }
}

TEST(Dissection, FamilyMinimumMatchesAnalyticValue) {
  EXPECT_NEAR(rectangle_family_minimum_overlap(), (3 * std::sqrt(2.0) - 4) / 4,
              1e-12);
}

}  // namespace
}  // namespace yy::yinyang

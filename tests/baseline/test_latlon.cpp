#include "baseline/latlon_solver.hpp"

#include "core/serial_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy::baseline {
namespace {

LatLonConfig small_config() {
  LatLonConfig cfg;
  cfg.nr = 9;
  cfg.nt = 16;
  cfg.np = 32;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

TEST(LatLon, GridIsCellCenteredOffPoles) {
  LatLonSolver s(small_config());
  const SphericalGrid& g = s.grid();
  const int gh = g.ghost();
  EXPECT_GT(g.theta(gh), 0.0);
  EXPECT_LT(g.theta(gh + g.spec().nt - 1), 3.14159265358979);
  EXPECT_NEAR(g.theta(gh), 0.5 * g.dt(), 1e-14);
}

TEST(LatLon, PhiWrapIsPeriodic) {
  LatLonSolver s(small_config());
  s.initialize();
  const SphericalGrid& g = s.grid();
  const int gh = g.ghost();
  const int np = g.spec().np;
  mhd::Fields& f = s.state();
  // Ghost column left of p0 equals the last interior column.
  for (int it = gh; it < gh + g.spec().nt; ++it)
    for (int ir = gh; ir < gh + g.spec().nr; ++ir) {
      EXPECT_DOUBLE_EQ(f.p(ir, it, gh - 1), f.p(ir, it, gh + np - 1));
      EXPECT_DOUBLE_EQ(f.p(ir, it, gh + np), f.p(ir, it, gh));
    }
}

TEST(LatLon, PoleGhostsMirrorAcrossWithSignFlip) {
  LatLonSolver s(small_config());
  s.initialize();
  // Plant a recognizable vector value near the north pole.
  const SphericalGrid& g = s.grid();
  const int gh = g.ghost();
  const int np = g.spec().np;
  mhd::Fields& f = s.state();
  f.ft(gh + 2, gh, gh + 3) = 0.123;   // first interior row
  f.fr(gh + 2, gh, gh + 3) = 0.456;
  s.fill_ghosts(f);
  const int ip_opposite = (3 + np / 2) % np + gh;
  EXPECT_DOUBLE_EQ(f.ft(gh + 2, gh - 1, ip_opposite), -0.123);
  EXPECT_DOUBLE_EQ(f.fr(gh + 2, gh - 1, ip_opposite), 0.456);
}

TEST(LatLon, StableOverSteps) {
  LatLonSolver s(small_config());
  s.initialize();
  s.run_steps(15);
  const auto e = s.energies();
  EXPECT_TRUE(std::isfinite(e.kinetic));
  EXPECT_TRUE(std::isfinite(e.thermal));
  EXPECT_GT(e.kinetic, 0.0);
}

TEST(LatLon, MassApproximatelyConserved) {
  LatLonSolver s(small_config());
  s.initialize();
  const double m0 = s.energies().mass;
  s.run_steps(15);
  EXPECT_NEAR(s.energies().mass, m0, 2e-3 * m0);
}

TEST(LatLon, PoleTimestepPenaltyVersusYinYang) {
  // The paper's motivation (§II): grid convergence near the poles
  // degrades the lat-lon code.  At matched angular resolution the
  // lat-lon CFL timestep must be well below the Yin-Yang panel's,
  // because dφ·r·sinθ collapses at the poles while the Yin-Yang panel
  // never leaves |cosθ| ≤ cos(π/4)+margin.
  LatLonConfig cfg = small_config();
  cfg.nt = 48;  // fine enough that the pole crowding bites
  cfg.np = 96;
  LatLonSolver latlon(cfg);
  latlon.initialize();
  const double dt_latlon = latlon.stable_dt();

  // Yin-Yang with the same angular spacing: dθ = π/48 → nt_core ≈ 25.
  core::SimulationConfig yycfg;
  yycfg.nr = cfg.nr;
  yycfg.nt_core = 25;
  yycfg.np_core = 73;
  yycfg.eq = cfg.eq;
  yycfg.ic = cfg.ic;
  core::SerialYinYangSolver yysolver(yycfg);
  yysolver.initialize();
  const double dt_yy = yysolver.stable_dt();

  EXPECT_LT(dt_latlon, 0.55 * dt_yy)
      << "latlon dt=" << dt_latlon << " yinyang dt=" << dt_yy;
}

TEST(LatLon, PolarFilterAllowsLargerEffectiveStep) {
  LatLonConfig cfg = small_config();
  cfg.polar_filter_threshold = 0.4;
  LatLonSolver s(cfg);
  s.initialize();
  s.run_steps(10);
  const auto e = s.energies();
  EXPECT_TRUE(std::isfinite(e.kinetic));
}

TEST(LatLon, PoleCrowdingFractionGrowsWithResolution) {
  LatLonConfig coarse = small_config();
  LatLonSolver a(coarse);
  // sinθ < 0.5 covers θ < 30° and θ > 150°: exactly 1/3 of rows.
  EXPECT_NEAR(a.pole_crowding_fraction(), 1.0 / 3.0, 0.15);
}

TEST(LatLon, DeterministicTrajectories) {
  LatLonSolver a(small_config()), b(small_config());
  a.initialize();
  b.initialize();
  const double dt = a.stable_dt();
  for (int i = 0; i < 3; ++i) {
    a.step(dt);
    b.step(dt);
  }
  for_box(a.grid().interior(), [&](int ir, int it, int ip) {
    ASSERT_DOUBLE_EQ(a.state().p(ir, it, ip), b.state().p(ir, it, ip));
  });
}

}  // namespace
}  // namespace yy::baseline

#include "core/halo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/decomposition.hpp"

namespace yy::core {
namespace {

// A 2-D decomposed rectangle in (θ, φ); field values encode the global
// node identity so any misrouted strip is detected exactly.
struct HaloFixture {
  static constexpr int panel_nt = 12, panel_np = 15, nr = 5, ghost = 2;

  static SphericalGrid patch_grid(const PatchExtent& e) {
    const double dt = 0.1, dp = 0.08;
    GridSpec s;
    s.nr = nr;
    s.nt = e.nt;
    s.np = e.np;
    s.r0 = 0.5;
    s.r1 = 1.0;
    s.t0 = 1.0 + e.t0 * dt;
    s.t1 = 1.0 + (e.t0 + e.nt - 1) * dt;
    s.p0 = -0.5 + e.p0 * dp;
    s.p1 = -0.5 + (e.p0 + e.np - 1) * dp;
    s.ghost = ghost;
    return SphericalGrid(s);
  }

  static double code(int field, int ir, int gt, int gp) {
    return field * 1e6 + ir * 1e4 + gt * 1e2 + gp;
  }
};

TEST(Halo, GhostsCarryNeighbourInteriorValues) {
  constexpr int pt = 2, pp = 2;
  comm::Runtime rt(pt * pp);
  rt.run([](comm::Communicator& w) {
    PanelDecomposition d(HaloFixture::panel_nt, HaloFixture::panel_np, pt, pp);
    comm::CartComm cart = comm::CartComm::create(w, pt, pp, false, false);
    const PatchExtent e = d.patch(cart.coord(0), cart.coord(1));
    SphericalGrid g = HaloFixture::patch_grid(e);
    mhd::Fields s(g);
    // Code every interior node with its global identity, per field.
    int field_id = 0;
    for (Field3* f : s.all()) {
      for_box(g.interior(), [&](int ir, int it, int ip) {
        (*f)(ir, it, ip) = HaloFixture::code(field_id, ir, e.t0 + it - g.ghost(),
                                             e.p0 + ip - g.ghost());
      });
      ++field_id;
    }
    HaloExchanger halo(g, cart);
    halo.exchange(s);

    // Every ghost column that maps inside the panel must now hold the
    // correct global code (including the diagonal corners).
    field_id = 0;
    for (Field3* f : s.all()) {
      for_box(g.full(), [&](int ir, int it, int ip) {
        if (ir < g.ghost() || ir >= g.ghost() + g.spec().nr) return;
        if (g.interior().contains(ir, it, ip)) return;
        const int gt = e.t0 + it - g.ghost();
        const int gp = e.p0 + ip - g.ghost();
        if (gt < 0 || gt >= HaloFixture::panel_nt) return;  // panel edge
        if (gp < 0 || gp >= HaloFixture::panel_np) return;
        EXPECT_DOUBLE_EQ((*f)(ir, it, ip),
                         HaloFixture::code(field_id, ir, gt, gp))
            << "field " << field_id << " at (" << ir << "," << it << "," << ip
            << ") rank " << w.rank();
      });
      ++field_id;
    }
  });
}

TEST(Halo, CornersCompleteAfterTwoPhases) {
  // A 3×3 decomposition gives the center rank 4 diagonal neighbours —
  // corners must arrive via the two-phase scheme with no corner
  // messages.
  constexpr int pt = 3, pp = 3;
  comm::Runtime rt(pt * pp);
  rt.run([](comm::Communicator& w) {
    PanelDecomposition d(HaloFixture::panel_nt, HaloFixture::panel_np, pt, pp);
    comm::CartComm cart = comm::CartComm::create(w, pt, pp, false, false);
    const PatchExtent e = d.patch(cart.coord(0), cart.coord(1));
    SphericalGrid g = HaloFixture::patch_grid(e);
    mhd::Fields s(g);
    for_box(g.interior(), [&](int ir, int it, int ip) {
      s.p(ir, it, ip) = HaloFixture::code(4, ir, e.t0 + it - g.ghost(),
                                          e.p0 + ip - g.ghost());
    });
    HaloExchanger halo(g, cart);
    halo.exchange(s);
    if (cart.coord(0) == 1 && cart.coord(1) == 1) {
      // All four ghost corners of the center rank.
      const int gh = g.ghost();
      for (int ct : {0, 1})
        for (int cp : {0, 1}) {
          const int it = ct == 0 ? gh - 1 : gh + g.spec().nt;
          const int ip = cp == 0 ? gh - 1 : gh + g.spec().np;
          const int gt = e.t0 + it - gh;
          const int gp = e.p0 + ip - gh;
          EXPECT_DOUBLE_EQ(s.p(gh, it, ip), HaloFixture::code(4, gh, gt, gp));
        }
    }
  });
}

TEST(Halo, SingleRankExchangeIsNoOp) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& w) {
    PanelDecomposition d(HaloFixture::panel_nt, HaloFixture::panel_np, 1, 1);
    comm::CartComm cart = comm::CartComm::create(w, 1, 1, false, false);
    SphericalGrid g = HaloFixture::patch_grid(d.patch(0, 0));
    mhd::Fields s(g);
    s.p.fill(3.5);
    HaloExchanger halo(g, cart);
    halo.exchange(s);  // must not deadlock or modify anything
    EXPECT_DOUBLE_EQ(s.p(0, 0, 0), 3.5);
    EXPECT_EQ(halo.bytes_per_exchange(), 0u);
  });
}

TEST(Halo, BytesEstimateMatchesMeteredTraffic) {
  constexpr int pt = 1, pp = 2;
  std::uint64_t expected[2] = {0, 0};
  auto run_once = [&](bool do_exchange) {
    comm::Runtime rt(pt * pp);
    rt.run([&](comm::Communicator& w) {
      PanelDecomposition d(HaloFixture::panel_nt, HaloFixture::panel_np, pt, pp);
      comm::CartComm cart = comm::CartComm::create(w, pt, pp, false, false);
      SphericalGrid g =
          HaloFixture::patch_grid(d.patch(cart.coord(0), cart.coord(1)));
      mhd::Fields s(g);
      HaloExchanger halo(g, cart);
      if (do_exchange) halo.exchange(s);
      expected[w.rank()] = halo.bytes_per_exchange();
    });
    return rt.traffic_total().bytes;
  };
  // Subtract the (deterministic) communicator-setup traffic measured by
  // an otherwise identical run without the exchange.
  const std::uint64_t setup_only = run_once(false);
  const std::uint64_t with_exchange = run_once(true);
  // bytes_per_exchange counts send+recv per rank; metered traffic counts
  // sends only, so the world total is half the per-rank sum.
  EXPECT_EQ(with_exchange - setup_only, (expected[0] + expected[1]) / 2);
}

}  // namespace
}  // namespace yy::core

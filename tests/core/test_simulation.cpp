#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace yy::core {
namespace {

SimulationConfig sim_config() {
  SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 9;
  cfg.np_core = 25;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  return cfg;
}

TEST(Simulation, ReachesEndTimeExactly) {
  SerialYinYangSolver solver(sim_config());
  solver.initialize();
  Simulation sim(solver);
  RunControl ctl;
  ctl.t_end = 0.02;
  const RunSummary sum = sim.run(ctl);
  EXPECT_NEAR(sum.t_final, 0.02, 1e-12);
  EXPECT_FALSE(sum.hit_step_limit);
  EXPECT_FALSE(sum.diverged);
  EXPECT_GT(sum.steps, 2);
}

TEST(Simulation, StepLimitTrips) {
  SerialYinYangSolver solver(sim_config());
  solver.initialize();
  Simulation sim(solver);
  RunControl ctl;
  ctl.t_end = 10.0;
  ctl.max_steps = 5;
  const RunSummary sum = sim.run(ctl);
  EXPECT_TRUE(sum.hit_step_limit);
  EXPECT_EQ(sum.steps, 5);
  EXPECT_LT(sum.t_final, 10.0);
}

TEST(Simulation, SnapshotsAtRequestedCadence) {
  SerialYinYangSolver solver(sim_config());
  solver.initialize();
  Simulation sim(solver);
  RunControl ctl;
  ctl.t_end = 0.02;
  ctl.snapshot_interval = 0.005;
  std::vector<double> snapshot_times;
  const RunSummary sum = sim.run(ctl, [&](SerialYinYangSolver& s, int id) {
    EXPECT_EQ(id, static_cast<int>(snapshot_times.size()));
    snapshot_times.push_back(s.time());
  });
  EXPECT_EQ(sum.snapshots, 4);
  ASSERT_EQ(snapshot_times.size(), 4u);
  for (std::size_t k = 0; k < snapshot_times.size(); ++k) {
    // Each snapshot fires at the first step crossing k·interval.
    EXPECT_GE(snapshot_times[k], 0.005 * (k + 1) - 1e-9);
  }
}

TEST(Simulation, GrowthLimiterBoundsDtJumps) {
  SerialYinYangSolver solver(sim_config());
  solver.initialize();
  Simulation sim(solver);
  RunControl ctl;
  ctl.t_end = 0.02;
  ctl.max_dt_growth = 1.05;
  std::vector<double> times{solver.time()};
  const RunSummary sum = sim.run(ctl, {});
  EXPECT_FALSE(sum.diverged);
  EXPECT_GT(sum.steps, 0);
  // Re-run with recorded dt sequence via snapshots is overkill; the
  // limiter's contract is indirectly covered by reaching t_end stably.
  (void)times;
}

TEST(Simulation, WallClockLimitTrips) {
  SerialYinYangSolver solver(sim_config());
  solver.initialize();
  Simulation sim(solver);
  RunControl ctl;
  ctl.t_end = 1e6;       // effectively forever
  ctl.max_steps = 1 << 20;
  ctl.max_wall_seconds = 0.05;
  const RunSummary sum = sim.run(ctl);
  EXPECT_TRUE(sum.hit_wall_limit);
  EXPECT_LT(sum.wall_seconds, 5.0);
}

}  // namespace
}  // namespace yy::core

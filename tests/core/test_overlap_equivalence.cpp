/// The tentpole harness: overlapped stepping (cfg.overlap = true) must
/// reproduce the synchronous trajectories *bitwise* — same gathered
/// fields on both panels, same global energies — across 1, 2 and 4
/// ranks per panel, over a 10-step RK4 run.  With YY_THREADS > 1 (the
/// ctest registration exports YY_THREADS=2) this also pins the threaded
/// interior sweep and axpy updates to the serial results.
#include <gtest/gtest.h>

#include <utility>

#include "support/equivalence.hpp"

namespace yy::core {
namespace {

// Shared run/compare helpers: tests/support/equivalence.hpp.
using testsupport::expect_bitwise_equal;
using testsupport::run_case;
using testsupport::RunResult;

SimulationConfig overlap_config() { return testsupport::small_trajectory_config(); }

class OverlapEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OverlapEquivalence, BitwiseEqualToSynchronous) {
  const auto [pt, pp] = GetParam();
  const int steps = 10;
  SimulationConfig cfg = overlap_config();

  cfg.overlap = false;
  const RunResult sync = run_case(cfg, pt, pp, steps);
  cfg.overlap = true;
  const RunResult over = run_case(cfg, pt, pp, steps);

  ASSERT_GT(sync.dt, 0.0);
  expect_bitwise_equal(sync, over);
}

// 1 rank per panel: overset-only exchange (all four halo sides are
// proc_null).  1×2 adds a φ halo; 2×2 runs θ+φ halos and overset
// together, with a genuinely decomposed cart grid in both directions.
INSTANTIATE_TEST_SUITE_P(RankLayouts, OverlapEquivalence,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 2},
                                           std::pair{2, 2}));

TEST(OverlapEquivalence, EulerAndRk2FallBackToSynchronousFill) {
  // Non-RK4 schemes ignore the hooks: the overlap flag must be a no-op
  // (bitwise) there too, not an error.
  SimulationConfig cfg = overlap_config();
  cfg.scheme = mhd::TimeScheme::rk2;
  cfg.overlap = false;
  const RunResult sync = run_case(cfg, 1, 2, 4);
  cfg.overlap = true;
  const RunResult over = run_case(cfg, 1, 2, 4);
  expect_bitwise_equal(sync, over);
}

}  // namespace
}  // namespace yy::core

/// The tentpole harness: overlapped stepping (cfg.overlap = true) must
/// reproduce the synchronous trajectories *bitwise* — same gathered
/// fields on both panels, same global energies — across 1, 2 and 4
/// ranks per panel, over a 10-step RK4 run.  With YY_THREADS > 1 (the
/// ctest registration exports YY_THREADS=2) this also pins the threaded
/// interior sweep and axpy updates to the serial results.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

SimulationConfig overlap_config() {
  SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Gathered end-state of one run: a few representative fields (ρ, f_r,
/// p, A_r) from both panels, plus the global energy budget and dt.
struct RunResult {
  std::vector<Field3> fields;  // [panel][field] flattened, see run_case
  mhd::EnergyBudget energy{};
  double dt = 0.0;
};

constexpr int kFieldIndices[] = {0, 1, 4, 5};

RunResult run_case(const SimulationConfig& cfg, int pt, int pp, int steps) {
  RunResult result;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    const mhd::EnergyBudget e = solver.energies();
    std::vector<Field3> fields;
    for (Panel p : {Panel::yin, Panel::yang})
      for (int fi : kFieldIndices)
        fields.push_back(solver.gather_field(fi, p));
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      result.fields = std::move(fields);
      result.energy = e;
      result.dt = dt;
    }
  });
  return result;
}

void expect_bitwise_equal(const RunResult& sync, const RunResult& over) {
  ASSERT_EQ(sync.fields.size(), over.fields.size());
  ASSERT_EQ(sync.dt, over.dt);
  for (std::size_t f = 0; f < sync.fields.size(); ++f) {
    ASSERT_TRUE(sync.fields[f].same_shape(over.fields[f]));
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < sync.fields[f].size(); ++i)
      if (sync.fields[f].flat()[i] != over.fields[f].flat()[i]) ++diffs;
    EXPECT_EQ(diffs, 0u) << "gathered field slot " << f;
  }
  // Energies are reductions of identical states in identical order.
  EXPECT_EQ(sync.energy.mass, over.energy.mass);
  EXPECT_EQ(sync.energy.kinetic, over.energy.kinetic);
  EXPECT_EQ(sync.energy.magnetic, over.energy.magnetic);
  EXPECT_EQ(sync.energy.thermal, over.energy.thermal);
}

class OverlapEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OverlapEquivalence, BitwiseEqualToSynchronous) {
  const auto [pt, pp] = GetParam();
  const int steps = 10;
  SimulationConfig cfg = overlap_config();

  cfg.overlap = false;
  const RunResult sync = run_case(cfg, pt, pp, steps);
  cfg.overlap = true;
  const RunResult over = run_case(cfg, pt, pp, steps);

  ASSERT_GT(sync.dt, 0.0);
  expect_bitwise_equal(sync, over);
}

// 1 rank per panel: overset-only exchange (all four halo sides are
// proc_null).  1×2 adds a φ halo; 2×2 runs θ+φ halos and overset
// together, with a genuinely decomposed cart grid in both directions.
INSTANTIATE_TEST_SUITE_P(RankLayouts, OverlapEquivalence,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 2},
                                           std::pair{2, 2}));

TEST(OverlapEquivalence, EulerAndRk2FallBackToSynchronousFill) {
  // Non-RK4 schemes ignore the hooks: the overlap flag must be a no-op
  // (bitwise) there too, not an error.
  SimulationConfig cfg = overlap_config();
  cfg.scheme = mhd::TimeScheme::rk2;
  cfg.overlap = false;
  const RunResult sync = run_case(cfg, 1, 2, 4);
  cfg.overlap = true;
  const RunResult over = run_case(cfg, 1, 2, 4);
  expect_bitwise_equal(sync, over);
}

}  // namespace
}  // namespace yy::core

#include "core/distributed_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/runtime.hpp"
#include "core/serial_solver.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

SimulationConfig dist_config() {
  SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Runs `steps` RK4 steps on (pt × pp)-per-panel ranks and returns the
/// gathered Yin-panel field (`field_index`) plus global diagnostics.
struct DistResult {
  Field3 yin_field;
  mhd::EnergyBudget energy;
  double dt = 0.0;
};

DistResult run_distributed(const SimulationConfig& cfg, int pt, int pp,
                           int steps, int field_index) {
  DistResult result;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    mhd::EnergyBudget e = solver.energies();
    Field3 f = solver.gather_field(field_index, Panel::yin);
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      result.yin_field = std::move(f);
      result.energy = e;
      result.dt = dt;
    }
  });
  return result;
}

TEST(DistributedSolver, MatchesSerialReferenceBitwise) {
  const SimulationConfig cfg = dist_config();
  const int steps = 3;

  SerialYinYangSolver serial(cfg);
  serial.initialize();
  const double dt_serial = serial.stable_dt();
  for (int i = 0; i < steps; ++i) serial.step(dt_serial);

  const DistResult dist = run_distributed(cfg, 1, 2, steps, /*p*/ 4);

  ASSERT_NEAR(dist.dt, dt_serial, 1e-15);
  const auto& sp = serial.panel(Panel::yin).p;
  const int gh = serial.grid().ghost();
  ASSERT_EQ(dist.yin_field.nr(), cfg.nr);
  double max_diff = 0.0;
  for (int ip = 0; ip < dist.yin_field.np(); ++ip)
    for (int it = 0; it < dist.yin_field.nt(); ++it)
      for (int ir = 0; ir < dist.yin_field.nr(); ++ir)
        max_diff = std::max(max_diff,
                            std::abs(dist.yin_field(ir, it, ip) -
                                     sp(ir + gh, it + gh, ip + gh)));
  // Identical kernels, identical exchange values: bit-level agreement.
  EXPECT_EQ(max_diff, 0.0);
}

TEST(DistributedSolver, DecompositionsAgreeWithEachOther) {
  const SimulationConfig cfg = dist_config();
  const DistResult a = run_distributed(cfg, 1, 2, 2, 0);
  const DistResult b = run_distributed(cfg, 2, 2, 2, 0);
  ASSERT_TRUE(a.yin_field.same_shape(b.yin_field));
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.yin_field.size(); ++i)
    max_diff = std::max(max_diff, std::abs(a.yin_field.flat()[i] -
                                           b.yin_field.flat()[i]));
  EXPECT_EQ(max_diff, 0.0);
}

TEST(DistributedSolver, GlobalEnergiesMatchSerial) {
  const SimulationConfig cfg = dist_config();
  SerialYinYangSolver serial(cfg);
  serial.initialize();
  serial.step(serial.stable_dt());
  const auto es = serial.energies();
  const DistResult d = run_distributed(cfg, 2, 2, 1, 0);
  EXPECT_NEAR(d.energy.mass, es.mass, 1e-10 * es.mass);
  EXPECT_NEAR(d.energy.thermal, es.thermal, 1e-10 * es.thermal);
  EXPECT_NEAR(d.energy.kinetic, es.kinetic, 1e-7 * es.kinetic + 1e-14);
}

TEST(DistributedSolver, OversetPlansArePaired) {
  // Σ bytes sent by Yin ranks must equal Σ bytes received by Yang ranks
  // (and vice versa): the plans on both sides must pair exactly, which
  // exchange() implicitly proves by completing without deadlock.
  const SimulationConfig cfg = dist_config();
  comm::Runtime rt(8);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, 2, 2);
    solver.initialize();  // includes one full exchange
    EXPECT_GT(solver.overset().bytes_sent_per_exchange(), 0u);
    EXPECT_GE(solver.overset().send_partner_count(), 1);
    EXPECT_GE(solver.overset().recv_partner_count(), 1);
  });
}

TEST(DistributedSolver, StableDtIsGlobalMinimum) {
  const SimulationConfig cfg = dist_config();
  comm::Runtime rt(4);
  double dts[4];
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, 1, 2);
    solver.initialize();
    dts[w.rank()] = solver.stable_dt();
  });
  EXPECT_DOUBLE_EQ(dts[0], dts[1]);
  EXPECT_DOUBLE_EQ(dts[0], dts[2]);
  EXPECT_DOUBLE_EQ(dts[0], dts[3]);
}

}  // namespace
}  // namespace yy::core

#include "core/serial_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy::core {
namespace {

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 10.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

TEST(SerialSolver, InitializeEstablishesFiniteState) {
  SerialYinYangSolver s(small_config());
  s.initialize();
  const auto e = s.energies();
  EXPECT_GT(e.mass, 0.0);
  EXPECT_GT(e.thermal, 0.0);
  EXPECT_DOUBLE_EQ(e.kinetic, 0.0);  // fluid at rest
  EXPECT_GT(e.magnetic, 0.0);        // seed field present
  EXPECT_LT(e.magnetic, 1e-4);       // ... and infinitesimally small
}

TEST(SerialSolver, StableOverManySteps) {
  SerialYinYangSolver s(small_config());
  s.initialize();
  s.run_steps(30);
  const auto e = s.energies();
  EXPECT_TRUE(std::isfinite(e.kinetic));
  EXPECT_TRUE(std::isfinite(e.magnetic));
  EXPECT_TRUE(std::isfinite(e.thermal));
  EXPECT_GT(e.kinetic, 0.0);  // convection being driven
}

TEST(SerialSolver, MassApproximatelyConserved) {
  SerialYinYangSolver s(small_config());
  s.initialize();
  const double m0 = s.energies().mass;
  s.run_steps(30);
  const double m1 = s.energies().mass;
  EXPECT_NEAR(m1, m0, 2e-3 * m0);
}

TEST(SerialSolver, DeterministicTrajectories) {
  SerialYinYangSolver a(small_config()), b(small_config());
  a.initialize();
  b.initialize();
  const double dt = a.stable_dt();
  for (int i = 0; i < 5; ++i) {
    a.step(dt);
    b.step(dt);
  }
  const auto& fa = a.panel(yinyang::Panel::yin);
  const auto& fb = b.panel(yinyang::Panel::yin);
  for_box(a.grid().interior(), [&](int ir, int it, int ip) {
    ASSERT_DOUBLE_EQ(fa.p(ir, it, ip), fb.p(ir, it, ip));
    ASSERT_DOUBLE_EQ(fa.ar(ir, it, ip), fb.ar(ir, it, ip));
  });
}

TEST(SerialSolver, SeedChangesTrajectory) {
  SimulationConfig ca = small_config();
  SimulationConfig cb = small_config();
  cb.ic.seed = 777;
  SerialYinYangSolver a(ca), b(cb);
  a.initialize();
  b.initialize();
  a.run_steps(3);
  b.run_steps(3);
  EXPECT_NE(a.panel(yinyang::Panel::yin).p(5, 5, 5),
            b.panel(yinyang::Panel::yin).p(5, 5, 5));
}

TEST(SerialSolver, DoubleSolutionSmallForSmoothState) {
  // With zero perturbation and no seed, the state is spherically
  // symmetric: both panels hold the same radial profiles and the
  // double solution in the overlap must match to interpolation error.
  SimulationConfig cfg = small_config();
  cfg.ic.perturb_amp = 0.0;
  cfg.ic.seed_b_amp = 0.0;
  SerialYinYangSolver s(cfg);
  s.initialize();
  auto [rms0, max0] = s.double_solution_error(0);   // ρ
  EXPECT_LT(max0, 1e-12);  // radial profile is exactly shared
  s.run_steps(10);
  auto [rms1, max1] = s.double_solution_error(0);
  // The evolved state stays consistent between panels (paper §II: the
  // difference is within the discretization error).
  EXPECT_LT(rms1, 1e-4);
}

TEST(SerialSolver, DoubleSolutionWithinDiscretizationError) {
  SerialYinYangSolver s(small_config());
  s.initialize();
  s.run_steps(20);
  auto [rms, mx] = s.double_solution_error(4);  // pressure
  const double p_scale = s.panel(yinyang::Panel::yin).p(7, 7, 7);
  EXPECT_LT(rms, 0.05 * std::abs(p_scale));
}

TEST(SerialSolver, CflTimestepScalesWithResolution) {
  SimulationConfig coarse = small_config();
  SimulationConfig fine = small_config();
  fine.nr = 2 * coarse.nr - 1;
  fine.nt_core = 2 * coarse.nt_core - 1;
  fine.np_core = 2 * coarse.np_core - 1;
  SerialYinYangSolver a(coarse), b(fine);
  a.initialize();
  b.initialize();
  EXPECT_LT(b.stable_dt(), a.stable_dt());
}

TEST(SerialSolver, RunStepsAdvancesClock) {
  SerialYinYangSolver s(small_config());
  s.initialize();
  const double advanced = s.run_steps(7);
  EXPECT_GT(advanced, 0.0);
  EXPECT_NEAR(s.time(), advanced, 1e-15);
  EXPECT_EQ(s.steps_taken(), 7);
}

TEST(SerialSolver, HeatFlowsWithoutConvection) {
  // Diffusion-only configuration (no gravity: no buoyancy): thermal
  // energy drifts toward the conductive balance; kinetic stays ~0.
  SimulationConfig cfg = small_config();
  cfg.eq.g0 = 0.0;
  cfg.eq.omega = {0, 0, 0};
  cfg.ic.perturb_amp = 0.0;
  cfg.ic.seed_b_amp = 0.0;
  SerialYinYangSolver s(cfg);
  s.initialize();
  s.run_steps(10);
  EXPECT_LT(s.energies().kinetic, 1e-8);
}

}  // namespace
}  // namespace yy::core

/// Telemetry semantics of the overlapped mode (satellite of the
/// overlap tentpole):
///  * reconciliation — with overlap on, the per-step leaf-phase seconds
///    still sum to (at most, and most of) the step wall clock, and the
///    new phases (halo_overlap / interior_rhs / rim_rhs) actually carry
///    the stage work;
///  * attribution — on a skewed run (fault-injected delivery delays on
///    the θ-halo streams) the overlapped mode's wait seconds stay below
///    the synchronous baseline: the sender-side delay lands in the
///    active halo_overlap phase and the receive completes behind the
///    interior sweep, which is exactly the point of overlapping.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace yy::core {
namespace {

SimulationConfig tel_config() {
  SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  return cfg;
}

/// Runs `steps` telemetry-bracketed steps on 2·pt·pp ranks and returns
/// every rank's per-step StepStats (outer index = world rank).
std::vector<std::vector<obs::StepStats>> run_with_telemetry(
    const SimulationConfig& cfg, int pt, int pp, int steps,
    std::shared_ptr<comm::FaultPlan> plan = nullptr) {
  const int world = 2 * pt * pp;
  std::vector<std::vector<obs::StepStats>> out(
      static_cast<std::size_t>(world));
  std::mutex mu;
  obs::RunManifest man = obs::RunManifest::current_build();
  man.app = "test_overlap_telemetry";
  man.world = world;
  obs::TelemetrySink sink(man);
  obs::TraceRecorder rec;
  comm::Runtime rt(world);
  if (plan != nullptr) rt.install_fault_plan(plan);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    obs::ScopedRankBind bind(rec, w.rank());
    obs::TelemetryConfig tcfg;
    tcfg.interval = steps;
    obs::RankTelemetry tel(w, sink, tcfg);
    solver.attach_telemetry(&tel);
    for (int i = 0; i < steps; ++i) solver.step(dt);
    tel.flush();
    solver.attach_telemetry(nullptr);
    std::vector<obs::StepStats> mine;
    for (std::size_t i = 0; i < tel.ring().size(); ++i)
      mine.push_back(tel.ring().from_oldest(i));
    std::lock_guard lock(mu);
    out[static_cast<std::size_t>(w.rank())] = std::move(mine);
  });
  if (plan != nullptr) rt.install_fault_plan(nullptr);
  return out;
}

double phase_s(const obs::StepStats& s, obs::Phase p) {
  return s.seconds[static_cast<std::size_t>(p)];
}

TEST(OverlapTelemetry, PhaseSecondsReconcileWithStepWall) {
  SimulationConfig cfg = tel_config();
  cfg.overlap = true;
  const int steps = 4;
  const auto stats = run_with_telemetry(cfg, 2, 1, steps);

  for (std::size_t r = 0; r < stats.size(); ++r) {
    ASSERT_EQ(stats[r].size(), static_cast<std::size_t>(steps));
    for (const obs::StepStats& s : stats[r]) {
      // Leaf spans never overlap, so their sum is bounded by the step
      // wall (small slack for clock granularity) and — because every
      // heavy kernel is instrumented — covers most of it.
      EXPECT_LE(s.phase_seconds(), 1.05 * s.wall_seconds + 1e-4);
      EXPECT_GE(s.phase_seconds(), 0.25 * s.wall_seconds);
      // The overlapped stage fills attribute their work to the new
      // phases: posting, interior sweep and rim sweep all non-empty.
      EXPECT_GT(phase_s(s, obs::Phase::interior_rhs), 0.0) << "rank " << r;
      EXPECT_GT(phase_s(s, obs::Phase::rim_rhs), 0.0) << "rank " << r;
      EXPECT_GT(phase_s(s, obs::Phase::halo_overlap), 0.0) << "rank " << r;
      // Stage 1 still evaluates the full-box RHS under Phase::rhs.
      EXPECT_GT(phase_s(s, obs::Phase::rhs), 0.0) << "rank " << r;
      // Wait phases are still recorded (finish side) with the bytes.
      EXPECT_GT(s.bytes[static_cast<std::size_t>(obs::Phase::halo_wait)], 0u);
    }
  }
}

TEST(OverlapTelemetry, OverlapWaitStaysBelowSynchronousOnSkewedRun) {
  // Sanitizer instrumentation inflates compute ~30×, so the injected
  // 3 ms delays no longer dominate the wait budget and the comparison
  // below stops being about overlap.  The sanitizer trees still run
  // every other test here (that is what they are for — races, not
  // timing); the timing gate runs in the plain trees and in
  // bench/baseline_runner.
  if (obs::RunManifest::current_build().sanitizer != std::string("none"))
    GTEST_SKIP() << "timing comparison is meaningless under sanitizers";
  SimulationConfig cfg = tel_config();
  const int pt = 2, pp = 1, steps = 4;

  auto make_plan = [] {
    auto plan = std::make_shared<comm::FaultPlan>();
    for (int tag : {100, 101}) {
      comm::FaultPlan::Rule r;
      r.kind = comm::FaultPlan::Kind::delay;
      r.tag = tag;
      r.max_count = 0;  // every θ-strip envelope
      r.delay_ms = 3;
      plan->add_rule(r);
    }
    return plan;
  };

  cfg.overlap = false;
  const auto sync_stats = run_with_telemetry(cfg, pt, pp, steps, make_plan());
  cfg.overlap = true;
  const auto over_stats = run_with_telemetry(cfg, pt, pp, steps, make_plan());

  auto total_wait = [](const std::vector<std::vector<obs::StepStats>>& all) {
    double t = 0.0;
    for (const auto& rank : all)
      for (const obs::StepStats& s : rank) t += s.wait_seconds();
    return t;
  };
  const double sync_wait = total_wait(sync_stats);
  const double over_wait = total_wait(over_stats);
  // Synchronous: every fill's halo_wait span swallows the 3 ms
  // sender-side delay (4 fills × 4 steps × 4 ranks ≳ 190 ms total).
  // Overlapped: the three stage fills post instead, moving their delay
  // into halo_overlap (active); only the final state fill of each step
  // stays synchronous, and the cross-panel overset skew is the same in
  // both modes, so the expected ratio here is ~0.6.  Assert a wide,
  // scheduler-proof margin, not a tight timing bound.
  EXPECT_GT(sync_wait, 0.1);
  EXPECT_LT(over_wait, 0.8 * sync_wait);
}

}  // namespace
}  // namespace yy::core

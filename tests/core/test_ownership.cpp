#include "core/ownership.hpp"

#include "core/decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy::core {
namespace {

constexpr double kPi = 3.14159265358979323846;

class OwnershipTest : public ::testing::Test {
 protected:
  OwnershipTest()
      : geom(yinyang::ComponentGeometry::with_auto_margin(17, 49)),
        grid(geom.make_grid_spec(5, 0.4, 1.0)),
        w(ownership_weights(geom, grid, 0, 0)) {}
  yinyang::ComponentGeometry geom;
  SphericalGrid grid;
  mhd::ColumnWeights w;
};

TEST_F(OwnershipTest, WeightsOnlyZeroHalfOrOne) {
  for (int it = 0; it < grid.Nt(); ++it)
    for (int ip = 0; ip < grid.Np(); ++ip) {
      const double v = w.at(it, ip);
      EXPECT_TRUE(v == 0.0 || v == 0.5 || v == 1.0) << v;
    }
}

TEST_F(OwnershipTest, GhostColumnsHaveZeroWeight) {
  for (int it = 0; it < grid.Nt(); ++it) {
    EXPECT_DOUBLE_EQ(w.at(it, 0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(it, grid.Np() - 1), 0.0);
  }
}

TEST_F(OwnershipTest, EquatorCenterOwnedOutright) {
  // (θ=π/2, φ=0) maps to the partner's φ boundary region — beyond the
  // partner's core — so Yin owns it fully.
  const int gh = grid.ghost();
  int it_eq = -1, ip_c = -1;
  for (int it = gh; it < gh + grid.spec().nt; ++it)
    if (std::abs(grid.theta(it) - kPi / 2) < 1e-9) it_eq = it;
  for (int ip = gh; ip < gh + grid.spec().np; ++ip)
    if (std::abs(grid.phi(ip)) < 1e-9) ip_c = ip;
  ASSERT_GE(it_eq, 0);
  ASSERT_GE(ip_c, 0);
  EXPECT_DOUBLE_EQ(w.at(it_eq, ip_c), 1.0);
}

TEST_F(OwnershipTest, CoreCornerSharedWithPartner) {
  // The core corners lie deep inside the partner core (overlap zone).
  const int gh = grid.ghost();
  int it_corner = -1, ip_corner = -1;
  for (int it = gh; it < gh + grid.spec().nt; ++it)
    if (std::abs(grid.theta(it) - kPi / 4) < 1e-9) it_corner = it;
  for (int ip = gh; ip < gh + grid.spec().np; ++ip)
    if (std::abs(grid.phi(ip) + 3 * kPi / 4) < 1e-9) ip_corner = ip;
  ASSERT_GE(it_corner, 0);
  ASSERT_GE(ip_corner, 0);
  EXPECT_DOUBLE_EQ(w.at(it_corner, ip_corner), 0.5);
}

TEST_F(OwnershipTest, WeightedAreaOfBothPanelsIsSphere) {
  // Σ w sinθ dθ dφ over one panel, doubled (panels are congruent and
  // weights are symmetric), must equal 4π to quadrature accuracy.
  double area = 0.0;
  const IndexBox in = grid.interior();
  for (int it = in.t0; it < in.t1; ++it)
    for (int ip = in.p0; ip < in.p1; ++ip)
      area += w.at(it, ip) * grid.sin_t(it) * grid.dt() * grid.dp();
  EXPECT_NEAR(2.0 * area, 4.0 * kPi, 0.05 * 4.0 * kPi);
}

TEST_F(OwnershipTest, PatchWeightsTileThePanelWeights) {
  // Splitting the panel must redistribute, never duplicate, ownership.
  PanelDecomposition d(geom.nt(), geom.np(), 2, 3);
  double total_patch = 0.0;
  for (int ct = 0; ct < 2; ++ct) {
    for (int cp = 0; cp < 3; ++cp) {
      const PatchExtent e = d.patch(ct, cp);
      GridSpec sp = geom.make_grid_spec(5, 0.4, 1.0);
      sp.nt = e.nt;
      sp.np = e.np;
      sp.t0 = geom.t_min() + e.t0 * geom.dt();
      sp.t1 = geom.t_min() + (e.t0 + e.nt - 1) * geom.dt();
      sp.p0 = geom.p_min() + e.p0 * geom.dp();
      sp.p1 = geom.p_min() + (e.p0 + e.np - 1) * geom.dp();
      sp.t_offset = e.t0;  // global alignment, as core::patch_spec sets
      sp.p_offset = e.p0;
      SphericalGrid pg(sp);
      mhd::ColumnWeights pw = ownership_weights(geom, pg, e.t0, e.p0);
      const IndexBox in = pg.interior();
      for (int it = in.t0; it < in.t1; ++it)
        for (int ip = in.p0; ip < in.p1; ++ip)
          total_patch += pw.at(it, ip) * pg.sin_t(it);
    }
  }
  double total_whole = 0.0;
  const IndexBox in = grid.interior();
  for (int it = in.t0; it < in.t1; ++it)
    for (int ip = in.p0; ip < in.p1; ++ip)
      total_whole += w.at(it, ip) * grid.sin_t(it);
  EXPECT_NEAR(total_patch, total_whole, 1e-9);
}

}  // namespace
}  // namespace yy::core

/// Parameterized decomposition sweep: the distributed solver must be
/// bit-identical to the serial reference for EVERY decomposition shape,
/// not just the two spot-checked in test_distributed_solver.cpp —
/// this is the property that makes flat-MPI scaling trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "core/serial_solver.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

SimulationConfig sweep_config() {
  SimulationConfig cfg;
  cfg.nr = 7;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

struct Decomp {
  int pt, pp;
};

class DecompositionSweep : public ::testing::TestWithParam<Decomp> {};

TEST_P(DecompositionSweep, BitIdenticalToSerial) {
  const auto [pt, pp] = GetParam();
  const SimulationConfig cfg = sweep_config();

  SerialYinYangSolver serial(cfg);
  serial.initialize();
  const double dt = serial.stable_dt();
  serial.step(dt);
  serial.step(dt);

  Field3 got;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    ASSERT_NEAR(solver.stable_dt(), dt, 1e-15);
    solver.step(dt);
    solver.step(dt);
    Field3 f = solver.gather_field(/*pressure*/ 4, Panel::yang);
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      got = std::move(f);
    }
  });

  const Field3& ref = serial.panel(Panel::yang).p;
  const int gh = serial.grid().ghost();
  double max_diff = 0.0;
  for (int ip = 0; ip < got.np(); ++ip)
    for (int it = 0; it < got.nt(); ++it)
      for (int ir = 0; ir < got.nr(); ++ir)
        max_diff = std::max(max_diff, std::abs(got(ir, it, ip) -
                                               ref(ir + gh, it + gh, ip + gh)));
  EXPECT_EQ(max_diff, 0.0) << "pt=" << pt << " pp=" << pp;
}

INSTANTIATE_TEST_SUITE_P(Shapes, DecompositionSweep,
                         ::testing::Values(Decomp{1, 1}, Decomp{1, 2},
                                           Decomp{2, 1}, Decomp{2, 2},
                                           Decomp{1, 4}, Decomp{3, 2}),
                         [](const ::testing::TestParamInfo<Decomp>& info) {
                           return std::to_string(info.param.pt) + "x" +
                                  std::to_string(info.param.pp);
                         });

}  // namespace
}  // namespace yy::core

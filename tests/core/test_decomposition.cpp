#include "core/decomposition.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace yy::core {
namespace {

TEST(Decomposition, PatchesTileWithoutGapsOrOverlap) {
  PanelDecomposition d(17, 49, 3, 5);
  std::vector<int> cover_t(17, 0), cover_p(49, 0);
  for (int ct = 0; ct < 3; ++ct) {
    const PatchExtent e = d.patch(ct, 0);
    for (int j = e.t0; j < e.t0 + e.nt; ++j) ++cover_t[static_cast<std::size_t>(j)];
  }
  for (int cp = 0; cp < 5; ++cp) {
    const PatchExtent e = d.patch(0, cp);
    for (int j = e.p0; j < e.p0 + e.np; ++j) ++cover_p[static_cast<std::size_t>(j)];
  }
  for (int c : cover_t) EXPECT_EQ(c, 1);
  for (int c : cover_p) EXPECT_EQ(c, 1);
}

TEST(Decomposition, RemainderGoesToLowCoordinates) {
  PanelDecomposition d(10, 10, 3, 1);
  EXPECT_EQ(d.patch(0, 0).nt, 4);  // 10 = 4 + 3 + 3
  EXPECT_EQ(d.patch(1, 0).nt, 3);
  EXPECT_EQ(d.patch(2, 0).nt, 3);
}

TEST(Decomposition, SinglePatchTakesEverything) {
  PanelDecomposition d(21, 63, 1, 1);
  const PatchExtent e = d.patch(0, 0);
  EXPECT_EQ(e.t0, 0);
  EXPECT_EQ(e.nt, 21);
  EXPECT_EQ(e.p0, 0);
  EXPECT_EQ(e.np, 63);
}

TEST(Decomposition, OwnerInvertsPatchAssignment) {
  PanelDecomposition d(23, 31, 4, 3);
  for (int ct = 0; ct < 4; ++ct) {
    const PatchExtent e = d.patch(ct, 0);
    for (int j = e.t0; j < e.t0 + e.nt; ++j) EXPECT_EQ(d.owner_t(j), ct);
  }
  for (int cp = 0; cp < 3; ++cp) {
    const PatchExtent e = d.patch(0, cp);
    for (int j = e.p0; j < e.p0 + e.np; ++j) EXPECT_EQ(d.owner_p(j), cp);
  }
}

TEST(Decomposition, MinPatchSpanReflectsSmallestPiece) {
  PanelDecomposition d(10, 9, 3, 4);
  EXPECT_EQ(d.min_patch_span(), 2);  // 9 over 4: 3,2,2,2
}

TEST(Decomposition, EvenSplitExact) {
  PanelDecomposition d(16, 32, 4, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(d.patch(c, c).nt, 4);
    EXPECT_EQ(d.patch(c, c).np, 8);
  }
}

}  // namespace
}  // namespace yy::core

#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "comm/runtime.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

TEST(Runner, SplitsWorldIntoYinAndYangHalves) {
  comm::Runtime rt(8);
  rt.run([](comm::Communicator& w) {
    Runner r(w, 2, 2);
    EXPECT_EQ(r.panel(), w.rank() < 4 ? Panel::yin : Panel::yang);
    EXPECT_EQ(r.panel_comm().size(), 4);
    EXPECT_EQ(r.panel_rank(), w.rank() % 4);
  });
}

TEST(Runner, CartCoordsRowMajorWithinPanel) {
  comm::Runtime rt(12);
  rt.run([](comm::Communicator& w) {
    Runner r(w, 2, 3);
    const int pr = r.panel_rank();
    EXPECT_EQ(r.cart().coord(0), pr / 3);
    EXPECT_EQ(r.cart().coord(1), pr % 3);
    EXPECT_FALSE(r.cart().periodic(0));
    EXPECT_FALSE(r.cart().periodic(1));
  });
}

TEST(Runner, WorldRankMappingRoundTrips) {
  comm::Runtime rt(8);
  rt.run([](comm::Communicator& w) {
    Runner r(w, 2, 2);
    // Yang panel rank k lives at world rank k + 4.
    EXPECT_EQ(r.world_rank(Panel::yin, 3), 3);
    EXPECT_EQ(r.world_rank(Panel::yang, 0), 4);
    EXPECT_EQ(r.world_rank(r.panel(), r.panel_rank()), w.rank());
  });
}

TEST(Runner, PanelCollectivesAreIndependent) {
  comm::Runtime rt(4);
  rt.run([](comm::Communicator& w) {
    Runner r(w, 1, 2);
    // Sum of panel ranks within a 2-rank panel = 0 + 1.
    const double s =
        r.panel_comm().allreduce_sum(static_cast<double>(r.panel_rank()));
    EXPECT_DOUBLE_EQ(s, 1.0);
    // World-wide sum still sees all four ranks.
    const double t = w.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(t, 4.0);
  });
}

TEST(Runner, InterPanelMessagingViaWorld) {
  // The paper sends overset data under the world communicator; verify a
  // Yin rank can address its Yang counterpart through world_rank().
  comm::Runtime rt(4);
  rt.run([](comm::Communicator& w) {
    Runner r(w, 1, 2);
    const Panel partner = yinyang::other(r.panel());
    const int peer = r.world_rank(partner, r.panel_rank());
    const double v = 100.0 + w.rank();
    w.send(peer, 1, {&v, 1});
    double got = 0.0;
    w.recv(peer, 1, {&got, 1});
    EXPECT_DOUBLE_EQ(got, 100.0 + peer);
  });
}

}  // namespace
}  // namespace yy::core

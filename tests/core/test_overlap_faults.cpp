/// Tag-collision regression for the overlapped mode: with halo *and*
/// overset messages simultaneously in flight, fault-injected delivery
/// delays scramble arrival order — matching must still pair envelopes
/// by (context, source, tag) FIFO, never by arrival.  The halo tags
/// (100–103) live on the panel cart communicator and the overset tag
/// (200) on the world communicator, so even equal tags could never
/// cross-match; this test proves it end-to-end by demanding bitwise
/// trajectories under heavy skew.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

SimulationConfig fault_config() {
  SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

std::vector<Field3> run_with_plan(const SimulationConfig& cfg, int pt, int pp,
                                  int steps,
                                  std::shared_ptr<comm::FaultPlan> plan) {
  std::vector<Field3> result;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  if (plan != nullptr) rt.install_fault_plan(plan);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    std::vector<Field3> fields;
    for (Panel p : {Panel::yin, Panel::yang})
      for (int fi : {0, 4}) fields.push_back(solver.gather_field(fi, p));
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      result = std::move(fields);
    }
  });
  if (plan != nullptr) rt.install_fault_plan(nullptr);
  return result;
}

TEST(OverlapFaults, DelayedDeliveriesNeverCrossMatch) {
  SimulationConfig cfg = fault_config();
  const int pt = 2, pp = 1, steps = 3;

  cfg.overlap = false;
  const std::vector<Field3> clean = run_with_plan(cfg, pt, pp, steps, nullptr);

  // Uneven delays on both θ-halo directions and the overset stream:
  // halo and overset envelopes are in flight together in the overlapped
  // mode, and these delays invert their natural arrival order.
  auto plan = std::make_shared<comm::FaultPlan>();
  for (const auto& [tag, ms] : {std::pair{100, 4}, {101, 1}, {200, 2}}) {
    comm::FaultPlan::Rule r;
    r.kind = comm::FaultPlan::Kind::delay;
    r.tag = tag;
    r.max_count = 0;  // every envelope of the stream
    r.delay_ms = ms;
    plan->add_rule(r);
  }

  cfg.overlap = true;
  const std::vector<Field3> skewed = run_with_plan(cfg, pt, pp, steps, plan);

  EXPECT_GT(plan->injected(comm::FaultPlan::Kind::delay), 0u);
  ASSERT_EQ(clean.size(), skewed.size());
  for (std::size_t f = 0; f < clean.size(); ++f) {
    ASSERT_TRUE(clean[f].same_shape(skewed[f]));
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < clean[f].size(); ++i)
      if (clean[f].flat()[i] != skewed[f].flat()[i]) ++diffs;
    EXPECT_EQ(diffs, 0u) << "field slot " << f;
  }
}

TEST(OverlapFaults, SynchronousModeEquallyImmune) {
  // Same skew against the synchronous path: the posted-state refactor
  // must not have weakened exchange() either.
  SimulationConfig cfg = fault_config();
  const int pt = 2, pp = 1, steps = 2;

  const std::vector<Field3> clean = run_with_plan(cfg, pt, pp, steps, nullptr);

  auto plan = std::make_shared<comm::FaultPlan>();
  for (const auto& [tag, ms] : {std::pair{101, 3}, {200, 1}}) {
    comm::FaultPlan::Rule r;
    r.kind = comm::FaultPlan::Kind::delay;
    r.tag = tag;
    r.max_count = 0;
    r.delay_ms = ms;
    plan->add_rule(r);
  }
  const std::vector<Field3> skewed = run_with_plan(cfg, pt, pp, steps, plan);

  ASSERT_EQ(clean.size(), skewed.size());
  for (std::size_t f = 0; f < clean.size(); ++f) {
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < clean[f].size(); ++i)
      if (clean[f].flat()[i] != skewed[f].flat()[i]) ++diffs;
    EXPECT_EQ(diffs, 0u) << "field slot " << f;
  }
}

}  // namespace
}  // namespace yy::core

/// Tag-collision regression for the overlapped mode: with halo *and*
/// overset messages simultaneously in flight, fault-injected delivery
/// delays scramble arrival order — matching must still pair envelopes
/// by (context, source, tag) FIFO, never by arrival.  The halo tags
/// (100–103) live on the panel cart communicator and the overset tag
/// (200) on the world communicator, so even equal tags could never
/// cross-match; this test proves it end-to-end by demanding bitwise
/// trajectories under heavy skew.
///
/// Also here: the timeout-recovery regression — a dropped message must
/// not wedge the *other* posted exchanger (cancel-on-unwind), so an
/// overlapped resilient run survives transient faults exactly like the
/// synchronous mode does.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "resilience/resilient_runner.hpp"

namespace yy::core {
namespace {

using yinyang::Panel;

SimulationConfig fault_config() {
  SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

std::vector<Field3> run_with_plan(const SimulationConfig& cfg, int pt, int pp,
                                  int steps,
                                  std::shared_ptr<comm::FaultPlan> plan) {
  std::vector<Field3> result;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  if (plan != nullptr) rt.install_fault_plan(plan);
  rt.run([&](comm::Communicator& w) {
    DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    std::vector<Field3> fields;
    for (Panel p : {Panel::yin, Panel::yang})
      for (int fi : {0, 4}) fields.push_back(solver.gather_field(fi, p));
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      result = std::move(fields);
    }
  });
  if (plan != nullptr) rt.install_fault_plan(nullptr);
  return result;
}

TEST(OverlapFaults, DelayedDeliveriesNeverCrossMatch) {
  SimulationConfig cfg = fault_config();
  const int pt = 2, pp = 1, steps = 3;

  cfg.overlap = false;
  const std::vector<Field3> clean = run_with_plan(cfg, pt, pp, steps, nullptr);

  // Uneven delays on both θ-halo directions and the overset stream:
  // halo and overset envelopes are in flight together in the overlapped
  // mode, and these delays invert their natural arrival order.
  auto plan = std::make_shared<comm::FaultPlan>();
  for (const auto& [tag, ms] : {std::pair{100, 4}, {101, 1}, {200, 2}}) {
    comm::FaultPlan::Rule r;
    r.kind = comm::FaultPlan::Kind::delay;
    r.tag = tag;
    r.max_count = 0;  // every envelope of the stream
    r.delay_ms = ms;
    plan->add_rule(r);
  }

  cfg.overlap = true;
  const std::vector<Field3> skewed = run_with_plan(cfg, pt, pp, steps, plan);

  EXPECT_GT(plan->injected(comm::FaultPlan::Kind::delay), 0u);
  ASSERT_EQ(clean.size(), skewed.size());
  for (std::size_t f = 0; f < clean.size(); ++f) {
    ASSERT_TRUE(clean[f].same_shape(skewed[f]));
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < clean[f].size(); ++i)
      if (clean[f].flat()[i] != skewed[f].flat()[i]) ++diffs;
    EXPECT_EQ(diffs, 0u) << "field slot " << f;
  }
}

TEST(OverlapFaults, SynchronousModeEquallyImmune) {
  // Same skew against the synchronous path: the posted-state refactor
  // must not have weakened exchange() either.
  SimulationConfig cfg = fault_config();
  const int pt = 2, pp = 1, steps = 2;

  const std::vector<Field3> clean = run_with_plan(cfg, pt, pp, steps, nullptr);

  auto plan = std::make_shared<comm::FaultPlan>();
  for (const auto& [tag, ms] : {std::pair{101, 3}, {200, 1}}) {
    comm::FaultPlan::Rule r;
    r.kind = comm::FaultPlan::Kind::delay;
    r.tag = tag;
    r.max_count = 0;
    r.delay_ms = ms;
    plan->add_rule(r);
  }
  const std::vector<Field3> skewed = run_with_plan(cfg, pt, pp, steps, plan);

  ASSERT_EQ(clean.size(), skewed.size());
  for (std::size_t f = 0; f < clean.size(); ++f) {
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < clean[f].size(); ++i)
      if (clean[f].flat()[i] != skewed[f].flat()[i]) ++diffs;
    EXPECT_EQ(diffs, 0u) << "field slot " << f;
  }
}

/// The unrecoverable-wedge regression: when a timeout unwinds out of
/// finish_exchanges mid-step, the exchange that did NOT throw is still
/// in flight; unless it is cancelled, its one-in-flight guard trips
/// (and aborts) on the first post-recovery step — one transient fault
/// kills an overlapped run for good, while the synchronous mode
/// recovers.  Two faults are injected so both orderings are exercised:
/// a dropped θ-halo envelope (halo finish throws while the overset is
/// posted) and a dropped overset envelope (overset finish throws after
/// the halo completed).  Because a dropped envelope starves its FIFO
/// stream only once the donor stops producing, ranks drift a step or
/// two past the first fault before deadlocking — so the two drops may
/// collapse into one collective recovery episode or surface as two,
/// depending on machine speed.  Either way the run must complete and
/// end bitwise equal to an unfaulted overlapped run on the same
/// step/dt schedule (the rewind discards the whole drifted segment).
TEST(OverlapFaults, TimeoutRecoveryUnwedgesPostedExchanges) {
  SimulationConfig cfg = fault_config();
  cfg.overlap = true;
  const int pt = 2, pp = 1;
  constexpr int kRanks = 4;  // 2 panels × pt × pp
  constexpr long long kTarget = 12;
  // Pid-unique: concurrent suite instances must not share the dir.
  const std::string dir = std::string(::testing::TempDir()) +
                          "/overlap_recovery." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  const auto flatten = [](const mhd::Fields& s) {
    std::vector<double> out;
    for (const Field3* f : s.all())
      out.insert(out.end(), f->flat().begin(), f->flat().end());
    return out;
  };

  std::vector<std::vector<double>> want(kRanks), got(kRanks);
  std::vector<resilience::RunReport> reports(kRanks);

  {  // Reference: uninterrupted overlapped stepping, no faults.
    comm::Runtime rt(kRanks);
    rt.run([&](comm::Communicator& w) {
      DistributedSolver solver(cfg, w, pt, pp);
      solver.initialize();
      const double dt = solver.stable_dt();
      for (long long i = 0; i < kTarget; ++i) solver.step(dt);
      want[static_cast<std::size_t>(w.rank())] = flatten(solver.local_state());
    });
  }

  {  // Faulted: one θ-halo envelope dropped at step 7 (halo finish
     // times out with the overset receives posted), one overset
     // envelope dropped at step 9 of the re-run (overset finish times
     // out after the halo completed).
    comm::Runtime rt(kRanks);
    auto plan = std::make_shared<comm::FaultPlan>();
    comm::FaultPlan::Rule drop_halo;
    drop_halo.kind = comm::FaultPlan::Kind::drop;
    drop_halo.tag = 100;  // θ-strip halo traffic
    drop_halo.min_step = 7;
    drop_halo.max_count = 1;
    plan->add_rule(drop_halo);
    comm::FaultPlan::Rule drop_overset;
    drop_overset.kind = comm::FaultPlan::Kind::drop;
    drop_overset.tag = 200;  // overset interpolation traffic
    drop_overset.min_step = 9;
    drop_overset.max_count = 1;
    plan->add_rule(drop_overset);
    rt.install_fault_plan(plan);

    rt.run([&](comm::Communicator& w) {
      DistributedSolver solver(cfg, w, pt, pp);
      solver.initialize();
      const double dt = solver.stable_dt();
      resilience::RunPolicy policy;
      policy.store = {dir, "ovl", 3};
      policy.checkpoint_interval = 5;
      policy.max_recoveries = 4;
      policy.take_deadline_ms = 3000;  // generous for sanitizer builds
      resilience::ResilientRunner runner(solver, policy);
      reports[static_cast<std::size_t>(w.rank())] = runner.run(kTarget, dt);
      got[static_cast<std::size_t>(w.rank())] = flatten(solver.local_state());
    });
    rt.install_fault_plan(nullptr);
    EXPECT_EQ(plan->injected(comm::FaultPlan::Kind::drop), 2u);
  }

  for (int r = 0; r < kRanks; ++r) {
    const resilience::RunReport& rep = reports[static_cast<std::size_t>(r)];
    EXPECT_TRUE(rep.completed) << "rank " << r << ": " << rep.failure;
    EXPECT_EQ(rep.final_step, kTarget) << "rank " << r;
    // 1 or 2 episodes (see header comment); recovery is collective, so
    // every rank must report the same count as rank 0.
    EXPECT_GE(rep.recoveries, 1) << "rank " << r;
    EXPECT_LE(rep.recoveries, 2) << "rank " << r;
    EXPECT_EQ(rep.recoveries, reports[0].recoveries) << "rank " << r;
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              want[static_cast<std::size_t>(r)].size());
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < got[static_cast<std::size_t>(r)].size(); ++i)
      if (got[static_cast<std::size_t>(r)][i] !=
          want[static_cast<std::size_t>(r)][i])
        ++diffs;
    EXPECT_EQ(diffs, 0u) << "rank " << r;
  }
}

}  // namespace
}  // namespace yy::core

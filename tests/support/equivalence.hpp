/// \file equivalence.hpp
/// Shared bitwise-trajectory-equivalence helpers for the cross-backend
/// and cross-mode suites (fused RHS, SIMD RHS, overlapped stepping,
/// rank-death recovery, config fuzzing).  One definition of "run this
/// config on pt×pp ranks per panel and hand me the gathered end state"
/// and one definition of "these two runs are bitwise identical", so
/// the suites cannot drift apart in what they compare.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <vector>

#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"

namespace yy::testsupport {

/// The shared small-trajectory config: big enough to exercise both
/// panels, halo + overset exchange and every RHS term (rotation,
/// gravity, seeded B), small enough for a 10-step run per case under
/// sanitizers.  Suites tweak flags (overlap, fused_rhs, simd_rhs,
/// scheme) on top of it.
inline core::SimulationConfig small_trajectory_config() {
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.mu = 3e-3;
  cfg.eq.kappa = 3e-3;
  cfg.eq.eta = 3e-3;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0.0, 0.0, 8.0};
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Gathered end-state of one run: a few representative fields (ρ, f_r,
/// p, A_r) from both panels, plus the global energy budget and dt.
struct RunResult {
  std::vector<Field3> fields;  // [panel][field] flattened, see run_case
  mhd::EnergyBudget energy{};
  double dt = 0.0;
};

inline constexpr int kFieldIndices[] = {0, 1, 4, 5};  // rho, f_r, p, A_r

/// Runs `cfg` for `steps` RK-steps on 2·pt·pp ranks (pt×pp per panel)
/// and returns rank 0's gathered RunResult.
inline RunResult run_case(const core::SimulationConfig& cfg, int pt, int pp,
                          int steps) {
  RunResult result;
  std::mutex mu;
  comm::Runtime rt(2 * pt * pp);
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    for (int i = 0; i < steps; ++i) solver.step(dt);
    const mhd::EnergyBudget e = solver.energies();
    std::vector<Field3> fields;
    for (yinyang::Panel p : {yinyang::Panel::yin, yinyang::Panel::yang})
      for (int fi : kFieldIndices)
        fields.push_back(solver.gather_field(fi, p));
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      result.fields = std::move(fields);
      result.energy = e;
      result.dt = dt;
    }
  });
  return result;
}

/// Bitwise equality of two runs: every gathered field value and every
/// energy reduction, with no tolerance.
inline void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.fields.size(), b.fields.size());
  ASSERT_EQ(a.dt, b.dt);
  for (std::size_t f = 0; f < a.fields.size(); ++f) {
    ASSERT_TRUE(a.fields[f].same_shape(b.fields[f]));
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < a.fields[f].size(); ++i)
      if (a.fields[f].flat()[i] != b.fields[f].flat()[i]) ++diffs;
    EXPECT_EQ(diffs, 0u) << "gathered field slot " << f;
  }
  // Energies are reductions of identical states in identical order.
  EXPECT_EQ(a.energy.mass, b.energy.mass);
  EXPECT_EQ(a.energy.kinetic, b.energy.kinetic);
  EXPECT_EQ(a.energy.magnetic, b.energy.magnetic);
  EXPECT_EQ(a.energy.thermal, b.energy.thermal);
}

/// All eight fields of a local state, flattened for whole-state
/// comparisons (the rank-death suite compares per surviving rank).
inline std::vector<double> flatten(const mhd::Fields& s) {
  std::vector<double> out;
  for (const Field3* f : s.all())
    out.insert(out.end(), f->flat().begin(), f->flat().end());
  return out;
}

/// One gathered field's values as a flat vector.
inline std::vector<double> field_data(const Field3& f) {
  return {f.flat().begin(), f.flat().end()};
}

/// Number of positions where two equal-length flat vectors differ
/// bitwise (callers assert the sizes match first).
inline std::size_t count_diffs(const std::vector<double>& a,
                               const std::vector<double>& b) {
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    if (a[i] != b[i]) ++diffs;
  return diffs;
}

}  // namespace yy::testsupport

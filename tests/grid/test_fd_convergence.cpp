/// Parameterized convergence sweep: every FD operator must show
/// second-order accuracy (paper §III: "second-order central finite
/// differences") on smooth trigonometric fields, measured by the error
/// ratio between successive grid refinements.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "grid/analytic_fields.hpp"
#include "grid/fd_ops.hpp"

namespace yy {
namespace {

using testutil::fill_scalar;
using testutil::fill_vector;
using testutil::test_grid;

// A smooth, non-polynomial scalar so no operator is exact on it.
double wavy(const Vec3& x) {
  return std::sin(1.3 * x.x) * std::cos(0.7 * x.y) + std::sin(0.9 * x.z);
}
Vec3 wavy_grad(const Vec3& x) {
  return {1.3 * std::cos(1.3 * x.x) * std::cos(0.7 * x.y),
          -0.7 * std::sin(1.3 * x.x) * std::sin(0.7 * x.y),
          0.9 * std::cos(0.9 * x.z)};
}
double wavy_lap(const Vec3& x) {
  return -(1.3 * 1.3 + 0.7 * 0.7) * std::sin(1.3 * x.x) * std::cos(0.7 * x.y) -
         0.81 * std::sin(0.9 * x.z);
}
Vec3 wavy_vec(const Vec3& x) {
  return {std::sin(x.y), std::sin(x.z), std::sin(x.x)};
}
double wavy_div(const Vec3&) { return 0.0; }
Vec3 wavy_curl(const Vec3& x) {
  // ∇×(sin y, sin z, sin x) = (−cos z, −cos x, −cos y).
  return {-std::cos(x.z), -std::cos(x.x), -std::cos(x.y)};
}

struct OpCase {
  const char* name;
  // Returns max interior error at resolution n.
  std::function<double(int)> error_at;
};

double grad_error(int n) {
  SphericalGrid g = test_grid(n);
  Field3 s(g.Nr(), g.Nt(), g.Np());
  Field3 gr(g.Nr(), g.Nt(), g.Np()), gt(g.Nr(), g.Nt(), g.Np()),
      gp(g.Nr(), g.Nt(), g.Np());
  fill_scalar(g, s, wavy);
  fd::grad(g, s, gr, gt, gp, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    const Vec3 e =
        testutil::to_spherical(g, it, ip, wavy_grad(testutil::cart_of(g, ir, it, ip)));
    err = std::max({err, std::abs(gr(ir, it, ip) - e.x),
                    std::abs(gt(ir, it, ip) - e.y),
                    std::abs(gp(ir, it, ip) - e.z)});
  });
  return err;
}

double lap_error(int n) {
  SphericalGrid g = test_grid(n);
  Field3 s(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_scalar(g, s, wavy);
  fd::laplacian(g, s, out, g.interior());
  return testutil::max_error(g, out, g.interior(), [&](int ir, int it, int ip) {
    return wavy_lap(testutil::cart_of(g, ir, it, ip));
  });
}

double div_error(int n) {
  SphericalGrid g = test_grid(n);
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, wavy_vec);
  fd::div(g, vr, vt, vp, out, g.interior());
  return testutil::max_error(g, out, g.interior(), [&](int ir, int it, int ip) {
    return wavy_div(testutil::cart_of(g, ir, it, ip));
  });
}

double curl_error(int n) {
  SphericalGrid g = test_grid(n);
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np());
  Field3 cr(g.Nr(), g.Nt(), g.Np()), ct(g.Nr(), g.Nt(), g.Np()),
      cp(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, wavy_vec);
  fd::curl(g, vr, vt, vp, cr, ct, cp, g.interior());
  double err = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    const Vec3 e =
        testutil::to_spherical(g, it, ip, wavy_curl(testutil::cart_of(g, ir, it, ip)));
    err = std::max({err, std::abs(cr(ir, it, ip) - e.x),
                    std::abs(ct(ir, it, ip) - e.y),
                    std::abs(cp(ir, it, ip) - e.z)});
  });
  return err;
}

double advect_error(int n) {
  SphericalGrid g = test_grid(n);
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), s(g.Nr(), g.Nt(), g.Np()),
      out(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, wavy_vec);
  fill_scalar(g, s, wavy);
  fd::advect(g, vr, vt, vp, s, out, g.interior());
  return testutil::max_error(g, out, g.interior(), [&](int ir, int it, int ip) {
    const Vec3 x = testutil::cart_of(g, ir, it, ip);
    return wavy_vec(x).dot(wavy_grad(x));
  });
}

class FdConvergence : public ::testing::TestWithParam<int> {};

TEST_P(FdConvergence, SecondOrderRatioBetweenRefinements) {
  // error(n) ~ C h² with h ∝ 1/(n−1): refining n−1 by 2× must shrink
  // the error by ≈4×; accept ≥3× to absorb higher-order terms.
  std::function<double(int)> cases[] = {grad_error, lap_error, div_error,
                                        curl_error, advect_error};
  const auto& err = cases[GetParam()];
  const double e1 = err(13);
  const double e2 = err(25);  // h halves (12 -> 24 intervals)
  EXPECT_GT(e1 / e2, 3.0) << "coarse=" << e1 << " fine=" << e2;
  EXPECT_LT(e2, e1);
}

std::string op_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"grad", "laplacian", "div", "curl",
                                      "advect"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllOperators, FdConvergence,
                         ::testing::Values(0, 1, 2, 3, 4), op_name);

}  // namespace
}  // namespace yy

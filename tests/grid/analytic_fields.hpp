/// Test helpers: smooth analytic fields defined in Cartesian
/// coordinates, evaluated on spherical patches with their exact
/// derivatives, for validating the FD operators against closed forms.
#pragma once

#include <cmath>

#include "common/array3d.hpp"
#include "common/vec3.hpp"
#include "grid/spherical_grid.hpp"
#include "yinyang/transform.hpp"

namespace yy::testutil {

inline Vec3 cart_of(const SphericalGrid& g, int ir, int it, int ip) {
  const double r = g.r(ir);
  return {r * g.sin_t(it) * g.cos_p(ip), r * g.sin_t(it) * g.sin_p(ip),
          r * g.cos_t(it)};
}

/// Spherical components of a Cartesian vector at a grid node.
inline Vec3 to_spherical(const SphericalGrid& g, int it, int ip,
                         const Vec3& v_cart) {
  const yinyang::Angles a{g.theta(it), g.phi(ip)};
  return yinyang::spherical_basis(a).transpose() * v_cart;
}

/// Fills a scalar field from a Cartesian function over the full patch.
template <typename F>
void fill_scalar(const SphericalGrid& g, Field3& out, F&& f) {
  for_box(g.full(), [&](int ir, int it, int ip) {
    out(ir, it, ip) = f(cart_of(g, ir, it, ip));
  });
}

/// Fills spherical-component fields from a Cartesian vector function.
template <typename F>
void fill_vector(const SphericalGrid& g, Field3& vr, Field3& vt, Field3& vp,
                 F&& f) {
  for_box(g.full(), [&](int ir, int it, int ip) {
    const Vec3 s = to_spherical(g, it, ip, f(cart_of(g, ir, it, ip)));
    vr(ir, it, ip) = s.x;
    vt(ir, it, ip) = s.y;
    vp(ir, it, ip) = s.z;
  });
}

/// A test patch away from poles and origin.
inline SphericalGrid test_grid(int n, int ghost = 2) {
  GridSpec s;
  s.nr = n;
  s.nt = n;
  s.np = n;
  s.r0 = 0.5;
  s.r1 = 1.0;
  s.t0 = 0.7;
  s.t1 = 2.0;
  s.p0 = -1.0;
  s.p1 = 1.2;
  s.ghost = ghost;
  return SphericalGrid(s);
}

/// Max abs error of `got` against an expected-value functor over a box.
template <typename F>
double max_error(const SphericalGrid& g, const Field3& got, const IndexBox& box,
                 F&& expected) {
  (void)g;
  double e = 0.0;
  for_box(box, [&](int ir, int it, int ip) {
    e = std::max(e, std::abs(got(ir, it, ip) - expected(ir, it, ip)));
  });
  return e;
}

}  // namespace yy::testutil

#include "grid/spherical_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy {
namespace {

GridSpec basic_spec() {
  GridSpec s;
  s.nr = 5;
  s.nt = 7;
  s.np = 9;
  s.r0 = 0.4;
  s.r1 = 1.0;
  s.t0 = 0.8;
  s.t1 = 2.3;
  s.p0 = -2.0;
  s.p1 = 2.0;
  s.ghost = 2;
  return s;
}

TEST(SphericalGrid, NodeCountsIncludeGhosts) {
  SphericalGrid g(basic_spec());
  EXPECT_EQ(g.Nr(), 9);
  EXPECT_EQ(g.Nt(), 11);
  EXPECT_EQ(g.Np(), 13);
}

TEST(SphericalGrid, SpacingFromInclusiveSpans) {
  SphericalGrid g(basic_spec());
  EXPECT_DOUBLE_EQ(g.dr(), 0.6 / 4);
  EXPECT_DOUBLE_EQ(g.dt(), 1.5 / 6);
  EXPECT_DOUBLE_EQ(g.dp(), 4.0 / 8);
}

TEST(SphericalGrid, PeriodicPhiUsesExclusiveEndpoint) {
  GridSpec s = basic_spec();
  s.phi_periodic = true;
  s.p0 = -3.0;
  s.p1 = 3.0;
  s.np = 12;
  SphericalGrid g(s);
  EXPECT_DOUBLE_EQ(g.dp(), 0.5);
  EXPECT_DOUBLE_EQ(g.phi(g.ghost()), -3.0);
  EXPECT_DOUBLE_EQ(g.phi(g.ghost() + 11), 2.5);  // last node < p1
}

TEST(SphericalGrid, InteriorNodesHitSpanEndpoints) {
  SphericalGrid g(basic_spec());
  const int gh = g.ghost();
  EXPECT_DOUBLE_EQ(g.r(gh), 0.4);
  EXPECT_DOUBLE_EQ(g.r(gh + 4), 1.0);
  EXPECT_DOUBLE_EQ(g.theta(gh), 0.8);
  EXPECT_NEAR(g.theta(gh + 6), 2.3, 1e-14);
}

TEST(SphericalGrid, GhostCoordinatesExtrapolate) {
  SphericalGrid g(basic_spec());
  EXPECT_DOUBLE_EQ(g.r(0), 0.4 - 2 * g.dr());
  EXPECT_DOUBLE_EQ(g.r(g.Nr() - 1), 1.0 + 2 * g.dr());
}

TEST(SphericalGrid, MetricTablesMatchDirectEvaluation) {
  SphericalGrid g(basic_spec());
  for (int i = 0; i < g.Nr(); ++i)
    EXPECT_DOUBLE_EQ(g.inv_r(i), 1.0 / g.r(i));
  for (int j = 0; j < g.Nt(); ++j) {
    EXPECT_DOUBLE_EQ(g.sin_t(j), std::sin(g.theta(j)));
    EXPECT_DOUBLE_EQ(g.cos_t(j), std::cos(g.theta(j)));
    EXPECT_NEAR(g.cot_t(j), std::cos(g.theta(j)) / std::sin(g.theta(j)), 1e-12);
    EXPECT_NEAR(g.inv_sin_t(j), 1.0 / std::sin(g.theta(j)), 1e-12);
  }
}

TEST(SphericalGrid, InteriorBoxExcludesGhosts) {
  SphericalGrid g(basic_spec());
  const IndexBox in = g.interior();
  EXPECT_EQ(in.r0, 2);
  EXPECT_EQ(in.r1, 7);
  EXPECT_EQ(in.volume(), 5ll * 7 * 9);
  EXPECT_TRUE(in.contains(2, 2, 2));
  EXPECT_FALSE(in.contains(1, 2, 2));
}

TEST(SphericalGrid, VolumeElementIsMetricWeighted) {
  SphericalGrid g(basic_spec());
  const int gh = g.ghost();
  const double expect =
      0.4 * 0.4 * std::sin(0.8) * g.dr() * g.dt() * g.dp();
  EXPECT_DOUBLE_EQ(g.volume_element(gh, gh), expect);
}

TEST(SphericalGrid, ShellVolumeIntegralConverges) {
  // Σ r² sinθ ΔV over a full longitude circle + θ span approximates the
  // analytic (r1³−r0³)/3 (cosθ0−cosθ1) Δφ.
  GridSpec s;
  s.nr = 40;
  s.nt = 40;
  s.np = 40;
  s.r0 = 0.5;
  s.r1 = 1.0;
  s.t0 = 0.6;
  s.t1 = 2.2;
  s.p0 = 0.0;
  s.p1 = 3.0;
  s.ghost = 0;
  SphericalGrid g(s);
  double sum = 0.0;
  for_box(g.interior(), [&](int ir, int it, int ip) {
    double w = 1.0;
    if (ir == 0 || ir == g.Nr() - 1) w *= 0.5;  // trapezoid ends
    if (it == 0 || it == g.Nt() - 1) w *= 0.5;
    if (ip == 0 || ip == g.Np() - 1) w *= 0.5;
    sum += w * g.volume_element(ir, it);
  });
  const double analytic =
      (1.0 - 0.125) / 3.0 * (std::cos(0.6) - std::cos(2.2)) * 3.0;
  EXPECT_NEAR(sum, analytic, 1e-3 * analytic);
}

TEST(IndexBox, GrownExpandsAllFaces) {
  const IndexBox b{2, 4, 3, 6, 1, 9};
  const IndexBox e = b.grown(2);
  EXPECT_EQ(e.r0, 0);
  EXPECT_EQ(e.r1, 6);
  EXPECT_EQ(e.t0, 1);
  EXPECT_EQ(e.p1, 11);
}

TEST(ForBox, VisitsEveryIndexOnceRadialFastest) {
  const IndexBox b{0, 2, 0, 3, 0, 2};
  int count = 0;
  int last_ir = -1;
  for_box(b, [&](int ir, int, int) {
    ++count;
    last_ir = ir;
  });
  EXPECT_EQ(count, 12);
  EXPECT_EQ(last_ir, 1);
}

}  // namespace
}  // namespace yy

#include "grid/fd_ops.hpp"

#include <gtest/gtest.h>

#include "common/flops.hpp"
#include "grid/analytic_fields.hpp"

namespace yy {
namespace {

using testutil::fill_scalar;
using testutil::fill_vector;
using testutil::max_error;
using testutil::test_grid;

class FdOps : public ::testing::Test {
 protected:
  FdOps() : g(test_grid(24)), in(g.interior()) {}
  SphericalGrid g;
  IndexBox in;
};

TEST_F(FdOps, DerivRExactForLinearInR) {
  Field3 a(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  for_box(g.full(), [&](int ir, int it, int ip) { a(ir, it, ip) = 3.0 * g.r(ir); });
  fd::deriv_r(g, a, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 3.0; }), 1e-12);
}

TEST_F(FdOps, DerivTAndPExactForLinear) {
  Field3 a(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  for_box(g.full(),
          [&](int ir, int it, int ip) { a(ir, it, ip) = 2.0 * g.theta(it) - g.phi(ip); });
  fd::deriv_t(g, a, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 2.0; }), 1e-11);
  fd::deriv_p(g, a, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return -1.0; }), 1e-11);
}

TEST_F(FdOps, GradientOfLinearCartesianField) {
  // s = 2x − y + 3z has constant Cartesian gradient (2, −1, 3).
  Field3 s(g.Nr(), g.Nt(), g.Np());
  Field3 gr(g.Nr(), g.Nt(), g.Np()), gt(g.Nr(), g.Nt(), g.Np()),
      gp(g.Nr(), g.Nt(), g.Np());
  fill_scalar(g, s, [](const Vec3& x) { return 2 * x.x - x.y + 3 * x.z; });
  fd::grad(g, s, gr, gt, gp, in);
  double err = 0.0;
  for_box(in, [&](int ir, int it, int ip) {
    const Vec3 expect = testutil::to_spherical(g, it, ip, {2, -1, 3});
    err = std::max({err, std::abs(gr(ir, it, ip) - expect.x),
                    std::abs(gt(ir, it, ip) - expect.y),
                    std::abs(gp(ir, it, ip) - expect.z)});
  });
  EXPECT_LT(err, 5e-3);  // 2nd-order error on the curvilinear grid
}

TEST_F(FdOps, DivergenceOfLinearField) {
  // v = (x, 2y, 3z): ∇·v = 6 everywhere.
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp,
              [](const Vec3& x) { return Vec3{x.x, 2 * x.y, 3 * x.z}; });
  fd::div(g, vr, vt, vp, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 6.0; }), 2e-2);
}

TEST_F(FdOps, CurlOfRotationField) {
  // v = ω×x with ω = (1, −2, 3): ∇×v = 2ω exactly.
  const Vec3 w{1, -2, 3};
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np());
  Field3 cr(g.Nr(), g.Nt(), g.Np()), ct(g.Nr(), g.Nt(), g.Np()),
      cp(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, [&](const Vec3& x) { return w.cross(x); });
  fd::curl(g, vr, vt, vp, cr, ct, cp, in);
  double err = 0.0;
  for_box(in, [&](int ir, int it, int ip) {
    const Vec3 expect = testutil::to_spherical(g, it, ip, 2.0 * w);
    err = std::max({err, std::abs(cr(ir, it, ip) - expect.x),
                    std::abs(ct(ir, it, ip) - expect.y),
                    std::abs(cp(ir, it, ip) - expect.z)});
  });
  EXPECT_LT(err, 2e-2);
}

TEST_F(FdOps, CurlOfGradientVanishes) {
  Field3 s(g.Nr(), g.Nt(), g.Np());
  Field3 gr(g.Nr(), g.Nt(), g.Np()), gt(g.Nr(), g.Nt(), g.Np()),
      gp(g.Nr(), g.Nt(), g.Np());
  Field3 cr(g.Nr(), g.Nt(), g.Np()), ct(g.Nr(), g.Nt(), g.Np()),
      cp(g.Nr(), g.Nt(), g.Np());
  fill_scalar(g, s, [](const Vec3& x) { return x.x * x.y + x.z * x.z; });
  const IndexBox ext = in.grown(1);
  fd::grad(g, s, gr, gt, gp, ext);
  fd::curl(g, gr, gt, gp, cr, ct, cp, in);
  double err = 0.0;
  for_box(in, [&](int ir, int it, int ip) {
    err = std::max({err, std::abs(cr(ir, it, ip)), std::abs(ct(ir, it, ip)),
                    std::abs(cp(ir, it, ip))});
  });
  EXPECT_LT(err, 2e-2);  // truncation-error sized, not exactly zero
}

TEST_F(FdOps, DivergenceOfCurlIsMachineSmall) {
  // Discrete div∘curl does not vanish identically for these expanded
  // operators, but for a smooth field it must sit at truncation level.
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np());
  Field3 cr(g.Nr(), g.Nt(), g.Np()), ct(g.Nr(), g.Nt(), g.Np()),
      cp(g.Nr(), g.Nt(), g.Np()), dv(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, [](const Vec3& x) {
    return Vec3{x.y * x.z, x.x + x.z * x.x, x.x * x.y};
  });
  fd::curl(g, vr, vt, vp, cr, ct, cp, in.grown(1));
  fd::div(g, cr, ct, cp, dv, in);
  EXPECT_LT(max_error(g, dv, in, [](int, int, int) { return 0.0; }), 3e-2);
}

TEST_F(FdOps, LaplacianOfHarmonicIsZero) {
  // s = xy is harmonic.
  Field3 s(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_scalar(g, s, [](const Vec3& x) { return x.x * x.y; });
  fd::laplacian(g, s, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 0.0; }), 2e-2);
}

TEST_F(FdOps, LaplacianOfQuadratic) {
  // s = x² + 2y² + 3z²: ∇²s = 12.
  Field3 s(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_scalar(g, s,
              [](const Vec3& x) { return x.x * x.x + 2 * x.y * x.y + 3 * x.z * x.z; });
  fd::laplacian(g, s, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 12.0; }), 5e-2);
}

TEST_F(FdOps, AdvectionOfLinearScalar) {
  // v = (1, 2, 3) constant, s = x + y + z: v·∇s = 6.
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), s(g.Nr(), g.Nt(), g.Np()),
      out(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, [](const Vec3&) { return Vec3{1, 2, 3}; });
  fill_scalar(g, s, [](const Vec3& x) { return x.x + x.y + x.z; });
  fd::advect(g, vr, vt, vp, s, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 6.0; }), 2e-2);
}

TEST_F(FdOps, MomentumFluxDivergenceAgainstClosedForm) {
  // v = (y, z, x), f = (z, x, y): ∇·(v⊗f) = (x, y, z) = r r̂.
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np());
  Field3 fr(g.Nr(), g.Nt(), g.Np()), ft(g.Nr(), g.Nt(), g.Np()),
      fp(g.Nr(), g.Nt(), g.Np());
  Field3 outr(g.Nr(), g.Nt(), g.Np()), outt(g.Nr(), g.Nt(), g.Np()),
      outp(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, [](const Vec3& x) { return Vec3{x.y, x.z, x.x}; });
  fill_vector(g, fr, ft, fp, [](const Vec3& x) { return Vec3{x.z, x.x, x.y}; });
  fd::div_vf(g, vr, vt, vp, fr, ft, fp, outr, outt, outp, in);
  double err = 0.0;
  for_box(in, [&](int ir, int it, int ip) {
    err = std::max({err, std::abs(outr(ir, it, ip) - g.r(ir)),
                    std::abs(outt(ir, it, ip)), std::abs(outp(ir, it, ip))});
  });
  EXPECT_LT(err, 6e-2);
}

TEST_F(FdOps, StrainInvariantOfPureShear) {
  // v = (y, z, x): e_ij e_ij − (∇·v)²/3 = 3/2 everywhere.
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp, [](const Vec3& x) { return Vec3{x.y, x.z, x.x}; });
  fd::strain_invariant(g, vr, vt, vp, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 1.5; }), 3e-2);
}

TEST_F(FdOps, StrainInvariantOfRigidRotationVanishes) {
  // Rigid rotation has zero strain: v = ω×x.
  Field3 vr(g.Nr(), g.Nt(), g.Np()), vt(g.Nr(), g.Nt(), g.Np()),
      vp(g.Nr(), g.Nt(), g.Np()), out(g.Nr(), g.Nt(), g.Np());
  fill_vector(g, vr, vt, vp,
              [](const Vec3& x) { return Vec3{0.5, -1.0, 2.0}.cross(x); });
  fd::strain_invariant(g, vr, vt, vp, out, in);
  EXPECT_LT(max_error(g, out, in, [](int, int, int) { return 0.0; }), 2e-2);
}

TEST_F(FdOps, FlopChargesMatchDeclaredConstants) {
  Field3 a(g.Nr(), g.Nt(), g.Np(), 1.0), out(g.Nr(), g.Nt(), g.Np());
  const auto vol = static_cast<std::uint64_t>(in.volume());
  flops::global_reset();
  fd::deriv_r(g, a, out, in);
  EXPECT_EQ(flops::count(), vol * fd::kFlopsDeriv);
  flops::global_reset();
  fd::laplacian(g, a, out, in);
  EXPECT_EQ(flops::count(), vol * fd::kFlopsLaplacian);
  flops::global_reset();
  fd::div(g, a, a, a, out, in);
  EXPECT_EQ(flops::count(), vol * fd::kFlopsDiv);
}

}  // namespace
}  // namespace yy

#include "io/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy::io {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<double> pure_mode(int n, int m, double amp, double phase = 0.3) {
  std::vector<double> ring(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k)
    ring[static_cast<std::size_t>(k)] =
        amp * std::cos(m * (2.0 * kPi * k / n) + phase);
  return ring;
}

TEST(Spectrum, PureModePowerLandsAtItsWavenumber) {
  for (int m : {1, 3, 7}) {
    const auto ring = pure_mode(96, m, 2.0);
    const auto p = ring_power_spectrum(ring, 10);
    for (int mm = 0; mm <= 10; ++mm) {
      if (mm == m) {
        EXPECT_NEAR(p[static_cast<std::size_t>(mm)], 4.0, 1e-9) << mm;
      } else {
        EXPECT_NEAR(p[static_cast<std::size_t>(mm)], 0.0, 1e-9) << mm;
      }
    }
  }
}

TEST(Spectrum, MeanGoesToModeZero) {
  std::vector<double> ring(64, 5.0);
  const auto p = ring_power_spectrum(ring, 4);
  EXPECT_NEAR(p[0], 25.0, 1e-9);
  EXPECT_NEAR(p[1], 0.0, 1e-9);
}

TEST(Spectrum, DominantWavenumberPicksStrongestMode) {
  auto ring = pure_mode(120, 4, 3.0);
  const auto weak = pure_mode(120, 7, 1.0, 1.1);
  for (std::size_t i = 0; i < ring.size(); ++i) ring[i] += weak[i];
  EXPECT_EQ(dominant_wavenumber(ring, 12), 4);
}

TEST(Spectrum, ZeroRingHasNoDominantMode) {
  std::vector<double> ring(48, 0.0);
  EXPECT_EQ(dominant_wavenumber(ring, 8), 0);
}

TEST(Spectrum, SpectralColumnCountIsTwiceDominantM) {
  EquatorialSlice s;
  s.rings = 5;
  s.spokes = 96;
  s.r_inner = 0.4;
  s.r_outer = 1.0;
  s.values.assign(static_cast<std::size_t>(s.rings) * s.spokes, 0.0);
  const auto ring = pure_mode(96, 5, 1.0);
  for (int k = 0; k < s.spokes; ++k)
    s.values[static_cast<std::size_t>(s.rings / 2) * s.spokes + k] =
        ring[static_cast<std::size_t>(k)];
  EXPECT_EQ(spectral_column_count(s), 10);
}

TEST(Spectrum, AgreesWithSignCountingOnCleanModes) {
  EquatorialSlice s;
  s.rings = 3;
  s.spokes = 144;
  s.r_inner = 0.4;
  s.r_outer = 1.0;
  s.values.assign(static_cast<std::size_t>(s.rings) * s.spokes, 0.0);
  for (int ring = 0; ring < 3; ++ring) {
    const auto vals = pure_mode(144, 6, 1.0);
    for (int k = 0; k < s.spokes; ++k)
      s.values[static_cast<std::size_t>(ring) * s.spokes + k] =
          vals[static_cast<std::size_t>(k)];
  }
  EXPECT_EQ(spectral_column_count(s), count_columns(s));
}

}  // namespace
}  // namespace yy::io

#include "io/sphere_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "yinyang/transform.hpp"

namespace yy::io {
namespace {

using yinyang::Angles;
using yinyang::ComponentGeometry;
using yinyang::Panel;

constexpr double kPi = 3.14159265358979323846;

class SamplerTest : public ::testing::Test {
 protected:
  SamplerTest()
      : geom(ComponentGeometry::with_auto_margin(17, 49)),
        grid(geom.make_grid_spec(9, 0.4, 1.0)),
        sampler(grid, geom),
        yin_s(grid.Nr(), grid.Nt(), grid.Np()),
        yang_s(grid.Nr(), grid.Nt(), grid.Np()) {}

  /// Fills both panels' scalar fields from one global function.
  template <typename F>
  void fill_both(F&& func) {
    for_box(grid.full(), [&](int ir, int it, int ip) {
      const Angles a{grid.theta(it), grid.phi(ip)};
      const Vec3 pos_yin = yinyang::position(a) * grid.r(ir);
      yin_s(ir, it, ip) = func(pos_yin);
      yang_s(ir, it, ip) = func(yinyang::axis_swap(pos_yin));
    });
  }

  ComponentGeometry geom;
  SphericalGrid grid;
  SphereSampler sampler;
  Field3 yin_s, yang_s;
};

TEST_F(SamplerTest, PanelSelectionPrefersCoveringCore) {
  EXPECT_EQ(sampler.panel_for(kPi / 2, 0.0), Panel::yin);
  EXPECT_EQ(sampler.panel_for(0.05, 0.0), Panel::yang);     // near north pole
  EXPECT_EQ(sampler.panel_for(kPi - 0.05, 0.0), Panel::yang);
  EXPECT_EQ(sampler.panel_for(kPi / 2, kPi), Panel::yang);  // behind the seam
}

TEST_F(SamplerTest, ScalarSampleMatchesGlobalFunction) {
  auto func = [](const Vec3& x) { return 0.7 * x.x - 0.4 * x.y + 0.2 * x.z; };
  fill_both(func);
  // Sweep the whole sphere including both panels' territory.
  double err = 0.0;
  for (int i = 0; i < 24; ++i) {
    for (int k = 0; k < 48; ++k) {
      const double th = 0.05 + (kPi - 0.1) * i / 23.0;
      const double ph = -kPi + 2 * kPi * k / 48.0;
      const double r = 0.7;
      const Vec3 pos = yinyang::position({th, ph}) * r;
      err = std::max(err, std::abs(sampler.sample_scalar(yin_s, yang_s, r, th,
                                                         ph) -
                                   func(pos)));
    }
  }
  EXPECT_LT(err, 1e-2);
}

TEST_F(SamplerTest, SampleAtGridNodeIsExact) {
  auto func = [](const Vec3& x) { return x.x + 2.0 * x.y; };
  fill_both(func);
  const int gh = grid.ghost();
  const int it = gh + geom.nt() / 2;
  const int ip = gh + geom.np() / 2;
  const double got = sampler.sample_scalar(
      yin_s, yang_s, grid.r(gh + 4), grid.theta(it), grid.phi(ip));
  EXPECT_NEAR(got, yin_s(gh + 4, it, ip), 1e-12);
}

TEST_F(SamplerTest, VectorSampleReturnsGlobalCartesian) {
  // A uniform global vector field must sample to itself anywhere on the
  // sphere — including deep inside Yang territory (near the poles).
  const Vec3 u{0.3, -0.9, 0.5};
  Field3 yin_r(grid.Nr(), grid.Nt(), grid.Np()), yin_t = yin_r, yin_p = yin_r;
  Field3 yang_r = yin_r, yang_t = yin_r, yang_p = yin_r;
  for_box(grid.full(), [&](int ir, int it, int ip) {
    const Angles a{grid.theta(it), grid.phi(ip)};
    const Vec3 yin_sph = yinyang::spherical_basis(a).transpose() * u;
    yin_r(ir, it, ip) = yin_sph.x;
    yin_t(ir, it, ip) = yin_sph.y;
    yin_p(ir, it, ip) = yin_sph.z;
    const Vec3 yang_sph =
        yinyang::spherical_basis(a).transpose() * yinyang::axis_swap(u);
    yang_r(ir, it, ip) = yang_sph.x;
    yang_t(ir, it, ip) = yang_sph.y;
    yang_p(ir, it, ip) = yang_sph.z;
  });
  const PanelVectorView yin{&yin_r, &yin_t, &yin_p};
  const PanelVectorView yang{&yang_r, &yang_t, &yang_p};
  for (double th : {0.1, kPi / 3, kPi / 2, kPi - 0.1}) {
    for (double ph : {-3.0, -1.0, 0.0, 2.0, 3.1}) {
      const Vec3 got = sampler.sample_vector(yin, yang, 0.8, th, ph);
      EXPECT_NEAR(got.x, u.x, 2e-2);
      EXPECT_NEAR(got.y, u.y, 2e-2);
      EXPECT_NEAR(got.z, u.z, 2e-2);
    }
  }
}

}  // namespace
}  // namespace yy::io

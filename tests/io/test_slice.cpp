#include "io/slice.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "yinyang/transform.hpp"

namespace yy::io {
namespace {

using yinyang::Angles;
using yinyang::ComponentGeometry;

constexpr double kPi = 3.14159265358979323846;

class SliceTest : public ::testing::Test {
 protected:
  SliceTest()
      : geom(ComponentGeometry::with_auto_margin(17, 49)),
        grid(geom.make_grid_spec(9, 0.4, 1.0)),
        sampler(grid, geom) {}

  /// Builds panel vector fields whose global z-component equals
  /// cos(m·φ_global) — m alternating "columns" around the equator.
  void make_columns(int m, Field3& yr, Field3& yt, Field3& yp, Field3& gr,
                    Field3& gt, Field3& gp) const {
    for_box(grid.full(), [&](int ir, int it, int ip) {
      (void)ir;
      const Angles a{grid.theta(it), grid.phi(ip)};
      // Yin frame IS the global frame.
      const Vec3 pos = yinyang::position(a);
      const double phi_g = std::atan2(pos.y, pos.x);
      const Vec3 u{0.0, 0.0, std::cos(m * phi_g)};
      const Vec3 sph = yinyang::spherical_basis(a).transpose() * u;
      yr(ir, it, ip) = sph.x;
      yt(ir, it, ip) = sph.y;
      yp(ir, it, ip) = sph.z;
      const Vec3 pos_g = yinyang::axis_swap(pos);  // Yang node in global frame
      const double phi_g2 = std::atan2(pos_g.y, pos_g.x);
      const Vec3 u2{0.0, 0.0, std::cos(m * phi_g2)};
      const Vec3 sph2 =
          yinyang::spherical_basis(a).transpose() * yinyang::axis_swap(u2);
      gr(ir, it, ip) = sph2.x;
      gt(ir, it, ip) = sph2.y;
      gp(ir, it, ip) = sph2.z;
    });
  }

  ComponentGeometry geom;
  SphericalGrid grid;
  SphereSampler sampler;
};

TEST_F(SliceTest, SliceDimensionsAndRange) {
  Field3 f(grid.Nr(), grid.Nt(), grid.Np());
  Field3 yr = f, yt = f, yp = f, gr = f, gt = f, gp = f;
  make_columns(4, yr, yt, yp, gr, gt, gp);
  const EquatorialSlice s =
      sample_equatorial_z(sampler, {&yr, &yt, &yp}, {&gr, &gt, &gp}, 0.4, 1.0,
                          8, 64);
  EXPECT_EQ(s.rings, 8);
  EXPECT_EQ(s.spokes, 64);
  EXPECT_EQ(s.values.size(), 8u * 64u);
  EXPECT_NEAR(s.max_abs(), 1.0, 0.1);
}

TEST_F(SliceTest, ColumnCountRecoversWaveNumber) {
  // cos(mφ) has exactly 2m sign changes around the ring.
  Field3 f(grid.Nr(), grid.Nt(), grid.Np());
  for (int m : {2, 3, 5}) {
    Field3 yr = f, yt = f, yp = f, gr = f, gt = f, gp = f;
    make_columns(m, yr, yt, yp, gr, gt, gp);
    const EquatorialSlice s =
        sample_equatorial_z(sampler, {&yr, &yt, &yp}, {&gr, &gt, &gp}, 0.4,
                            1.0, 6, 96);
    EXPECT_EQ(count_columns(s), 2 * m) << "m=" << m;
  }
}

TEST_F(SliceTest, QuietFieldHasNoColumns) {
  Field3 z(grid.Nr(), grid.Nt(), grid.Np());
  const EquatorialSlice s =
      sample_equatorial_z(sampler, {&z, &z, &z}, {&z, &z, &z}, 0.4, 1.0, 4, 32);
  EXPECT_EQ(count_columns(s), 0);
}

TEST_F(SliceTest, PpmAndCsvWritten) {
  Field3 f(grid.Nr(), grid.Nt(), grid.Np());
  Field3 yr = f, yt = f, yp = f, gr = f, gt = f, gp = f;
  make_columns(4, yr, yt, yp, gr, gt, gp);
  const EquatorialSlice s =
      sample_equatorial_z(sampler, {&yr, &yt, &yp}, {&gr, &gt, &gp}, 0.4, 1.0,
                          6, 48);
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(write_equatorial_ppm(s, dir + "/eq.ppm", 120));
  EXPECT_TRUE(write_equatorial_csv(s, dir + "/eq.csv"));
  std::ifstream ppm(dir + "/eq.ppm");
  EXPECT_TRUE(ppm.good());
  std::ifstream csv(dir + "/eq.csv");
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "radius,phi,omega_z");
}

}  // namespace
}  // namespace yy::io

#include "io/fieldline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "yinyang/transform.hpp"

namespace yy::io {
namespace {

constexpr double kPi = 3.14159265358979323846;

class FieldlineTest : public ::testing::Test {
 protected:
  FieldlineTest()
      : geom(yinyang::ComponentGeometry::with_auto_margin(17, 49)),
        grid(geom.make_grid_spec(9, 0.35, 1.0)),
        sampler(grid, geom) {
    for (auto* f : {&yr, &yt, &yp, &gr, &gt, &gp})
      *f = Field3(grid.Nr(), grid.Nt(), grid.Np());
  }

  /// Fills both panels from a global Cartesian vector function.
  template <typename F>
  void fill(F&& func) {
    for_box(grid.full(), [&](int ir, int it, int ip) {
      const yinyang::Angles a{grid.theta(it), grid.phi(ip)};
      const Vec3 pos = yinyang::position(a) * grid.r(ir);
      const Vec3 sy = yinyang::spherical_basis(a).transpose() * func(pos);
      yr(ir, it, ip) = sy.x;
      yt(ir, it, ip) = sy.y;
      yp(ir, it, ip) = sy.z;
      const Vec3 pos_g = yinyang::axis_swap(pos);
      const Vec3 sg =
          yinyang::spherical_basis(a).transpose() * yinyang::axis_swap(func(pos_g));
      gr(ir, it, ip) = sg.x;
      gt(ir, it, ip) = sg.y;
      gp(ir, it, ip) = sg.z;
    });
  }

  PanelVectorView yin() const { return {&yr, &yt, &yp}; }
  PanelVectorView yang() const { return {&gr, &gt, &gp}; }

  yinyang::ComponentGeometry geom;
  SphericalGrid grid;
  SphereSampler sampler;
  Field3 yr, yt, yp, gr, gt, gp;
};

TEST_F(FieldlineTest, RigidRotationTracesCircles) {
  // v = ẑ×x: streamlines are circles of constant radius about z.
  fill([](const Vec3& x) { return Vec3{0, 0, 1}.cross(x); });
  TraceOptions opt;
  opt.step = 0.01;
  opt.max_steps = 1200;
  opt.r_inner = 0.3;
  opt.r_outer = 1.05;
  const Vec3 seed{0.7, 0.0, 0.0};
  const Streamline line = trace_streamline(sampler, yin(), yang(), seed, opt);
  ASSERT_GT(line.points.size(), 100u);
  EXPECT_FALSE(line.exited_shell);
  for (const Vec3& p : line.points) {
    EXPECT_NEAR(p.norm(), 0.7, 0.02);
    EXPECT_NEAR(p.z, 0.0, 0.02);
  }
}

TEST_F(FieldlineTest, CircleClosesAfterFullTurn) {
  fill([](const Vec3& x) { return Vec3{0, 0, 1}.cross(x); });
  TraceOptions opt;
  opt.step = 0.01;
  opt.r_inner = 0.3;
  opt.r_outer = 1.05;
  const double circumference = 2.0 * kPi * 0.7;
  opt.max_steps = static_cast<int>(circumference / opt.step) + 1;
  const Vec3 seed{0.7, 0.0, 0.0};
  const Streamline line = trace_streamline(sampler, yin(), yang(), seed, opt);
  const Vec3 end = line.points.back();
  EXPECT_NEAR(end.x, seed.x, 0.08);
  EXPECT_NEAR(end.y, seed.y, 0.08);
}

TEST_F(FieldlineTest, RadialFieldExitsShell) {
  fill([](const Vec3& x) { return x; });  // purely radial outflow
  TraceOptions opt;
  opt.step = 0.02;
  opt.max_steps = 200;
  opt.r_inner = 0.36;
  opt.r_outer = 0.99;
  const Streamline line =
      trace_streamline(sampler, yin(), yang(), {0.0, 0.6, 0.0}, opt);
  EXPECT_TRUE(line.exited_shell);
}

TEST_F(FieldlineTest, CrossesYinYangBorderSeamlessly) {
  // A meridional circulation v = φ̂-free field crossing the panel seam:
  // use rotation about x so lines leave Yin's core into Yang territory.
  fill([](const Vec3& x) { return Vec3{1, 0, 0}.cross(x); });
  TraceOptions opt;
  opt.step = 0.01;
  opt.max_steps = 800;
  opt.r_inner = 0.3;
  opt.r_outer = 1.05;
  // Start on the equator; rotation about x carries the point over the
  // poles — deep into the Yang panel's core.
  const Streamline line =
      trace_streamline(sampler, yin(), yang(), {0.0, 0.7, 0.0}, opt);
  ASSERT_GT(line.points.size(), 300u);
  bool visited_pole_region = false;
  for (const Vec3& p : line.points) {
    EXPECT_NEAR(p.norm(), 0.7, 0.03);   // stays on its circle…
    EXPECT_NEAR(p.x, 0.0, 0.03);        // …in the x = 0 plane
    if (std::abs(p.z) > 0.6) visited_pole_region = true;
  }
  EXPECT_TRUE(visited_pole_region);  // actually sampled the Yang panel
}

TEST_F(FieldlineTest, ZeroFieldProducesPointLine) {
  fill([](const Vec3&) { return Vec3{}; });
  TraceOptions opt;
  const Streamline line =
      trace_streamline(sampler, yin(), yang(), {0.0, 0.6, 0.0}, opt);
  EXPECT_EQ(line.points.size(), 1u);
  EXPECT_DOUBLE_EQ(line.length, 0.0);
}

TEST_F(FieldlineTest, RingCsvContainsAllSeeds) {
  fill([](const Vec3& x) { return Vec3{0, 0, 1}.cross(x); });
  TraceOptions opt;
  opt.step = 0.05;
  opt.max_steps = 10;
  opt.r_inner = 0.3;
  opt.r_outer = 1.05;
  const std::string path = std::string(::testing::TempDir()) + "/ring.csv";
  ASSERT_TRUE(trace_ring_to_csv(sampler, yin(), yang(), 0.7, 6, opt, path));
  std::ifstream in(path);
  int lines = 0;
  std::string l;
  while (std::getline(in, l)) ++lines;
  EXPECT_GE(lines, 1 + 6 * 10);  // header + ≥10 points per seed
}

}  // namespace
}  // namespace yy::io

#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace yy::io {
namespace {

SphericalGrid small_grid() {
  GridSpec s;
  s.nr = 5;
  s.nt = 6;
  s.np = 7;
  s.r0 = 0.4;
  s.r1 = 1.0;
  s.t0 = 0.9;
  s.t1 = 2.2;
  s.p0 = -1.0;
  s.p1 = 1.0;
  s.ghost = 2;
  return SphericalGrid(s);
}

TEST(Checkpoint, TwoPanelRoundTripBitExact) {
  SphericalGrid g = small_grid();
  mhd::Fields yin(g), yang(g);
  int k = 0;
  for (Field3* f : yin.all())
    for (double& v : f->flat()) v = 0.001 * ++k;
  for (Field3* f : yang.all())
    for (double& v : f->flat()) v = -0.002 * ++k;

  const std::string path = std::string(::testing::TempDir()) + "/cp2.bin";
  CheckpointHeader hdr{g.Nr(), g.Nt(), g.Np(), 2, 1.25, 42};
  ASSERT_TRUE(save_checkpoint(path, hdr, &yin, &yang));

  mhd::Fields yin2(g), yang2(g);
  CheckpointHeader back;
  ASSERT_TRUE(load_checkpoint(path, back, &yin2, &yang2));
  EXPECT_EQ(back.panels, 2);
  EXPECT_DOUBLE_EQ(back.time, 1.25);
  EXPECT_EQ(back.step, 42);
  for (int i = 0; i < mhd::Fields::kNumFields; ++i) {
    auto a = yin.all()[static_cast<std::size_t>(i)]->flat();
    auto b = yin2.all()[static_cast<std::size_t>(i)]->flat();
    for (std::size_t j = 0; j < a.size(); ++j) ASSERT_EQ(a[j], b[j]);
    auto c = yang.all()[static_cast<std::size_t>(i)]->flat();
    auto d = yang2.all()[static_cast<std::size_t>(i)]->flat();
    for (std::size_t j = 0; j < c.size(); ++j) ASSERT_EQ(c[j], d[j]);
  }
}

TEST(Checkpoint, SinglePanelVariant) {
  SphericalGrid g = small_grid();
  mhd::Fields s(g);
  s.p(3, 3, 3) = 77.0;
  const std::string path = std::string(::testing::TempDir()) + "/cp1.bin";
  CheckpointHeader hdr{g.Nr(), g.Nt(), g.Np(), 1, 0.5, 7};
  ASSERT_TRUE(save_checkpoint(path, hdr, &s, nullptr));
  mhd::Fields t(g);
  CheckpointHeader back;
  ASSERT_TRUE(load_checkpoint(path, back, &t, nullptr));
  EXPECT_DOUBLE_EQ(t.p(3, 3, 3), 77.0);
}

TEST(Checkpoint, MissingFileFailsCleanly) {
  CheckpointHeader hdr;
  SphericalGrid g = small_grid();
  mhd::Fields s(g);
  EXPECT_FALSE(load_checkpoint("/nonexistent/path/cp.bin", hdr, &s, nullptr));
}

TEST(Checkpoint, ShapeMismatchRejected) {
  // Regression: load_checkpoint used to ignore the caller's Fields
  // shapes and write straight through the header's (possibly foreign)
  // dimensions.  A file whose dims don't match the target must fail.
  SphericalGrid g = small_grid();
  mhd::Fields s(g);
  const std::string path = std::string(::testing::TempDir()) + "/cp_shape.bin";
  CheckpointHeader hdr{g.Nr(), g.Nt(), g.Np(), 1, 0.5, 7};
  ASSERT_TRUE(save_checkpoint(path, hdr, &s, nullptr));

  GridSpec spec;
  spec.nr = 4;  // different radial extent → different array shape
  spec.nt = 6;
  spec.np = 7;
  spec.r0 = 0.4;
  spec.r1 = 1.0;
  spec.t0 = 0.9;
  spec.t1 = 2.2;
  spec.p0 = -1.0;
  spec.p1 = 1.0;
  spec.ghost = 2;
  SphericalGrid g2{spec};
  mhd::Fields t(g2);
  CheckpointHeader back;
  EXPECT_FALSE(load_checkpoint(path, back, &t, nullptr));
}

TEST(Checkpoint, TwoPanelFileNeedsBothTargets) {
  SphericalGrid g = small_grid();
  mhd::Fields yin(g), yang(g);
  const std::string path = std::string(::testing::TempDir()) + "/cp_two1.bin";
  CheckpointHeader hdr{g.Nr(), g.Nt(), g.Np(), 2, 0.5, 7};
  ASSERT_TRUE(save_checkpoint(path, hdr, &yin, &yang));
  mhd::Fields t(g);
  CheckpointHeader back;
  EXPECT_FALSE(load_checkpoint(path, back, &t, nullptr));
}

TEST(Checkpoint, CorruptMagicRejected) {
  const std::string path = std::string(::testing::TempDir()) + "/bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACHECKPOINT", f);
    std::fclose(f);
  }
  CheckpointHeader hdr;
  SphericalGrid g = small_grid();
  mhd::Fields s(g);
  EXPECT_FALSE(load_checkpoint(path, hdr, &s, nullptr));
}

}  // namespace
}  // namespace yy::io

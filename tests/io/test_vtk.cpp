#include "io/vtk.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace yy::io {
namespace {

SphericalGrid vtk_grid() {
  yinyang::ComponentGeometry geom =
      yinyang::ComponentGeometry::with_auto_margin(9, 25);
  return SphericalGrid(geom.make_grid_spec(5, 0.4, 1.0));
}

TEST(Vtk, WritesValidStructuredGridHeader) {
  SphericalGrid g = vtk_grid();
  Field3 temp(g.Nr(), g.Nt(), g.Np(), 1.5);
  const std::string path = std::string(::testing::TempDir()) + "/panel.vtk";
  ASSERT_TRUE(write_vtk_panel(path, g, yinyang::Panel::yin,
                              {{"temperature", temp}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  std::getline(in, line);
  EXPECT_NE(line.find("yin"), std::string::npos);
  std::getline(in, line);
  EXPECT_EQ(line, "ASCII");
  std::getline(in, line);
  EXPECT_EQ(line, "DATASET STRUCTURED_GRID");
  std::getline(in, line);
  std::istringstream dims(line);
  std::string tag;
  int nr = 0, nt = 0, np = 0;
  dims >> tag >> nr >> nt >> np;
  EXPECT_EQ(tag, "DIMENSIONS");
  EXPECT_EQ(nr, 5);
  EXPECT_EQ(nt, g.spec().nt);
  EXPECT_EQ(np, g.spec().np);
}

TEST(Vtk, PointCountMatchesDimensions) {
  SphericalGrid g = vtk_grid();
  Field3 temp(g.Nr(), g.Nt(), g.Np());
  const std::string path = std::string(::testing::TempDir()) + "/count.vtk";
  ASSERT_TRUE(write_vtk_panel(path, g, yinyang::Panel::yang, {{"t", temp}}));
  std::ifstream in(path);
  std::string line;
  long long expected = 5ll * g.spec().nt * g.spec().np;
  bool found_points = false, found_data = false;
  while (std::getline(in, line)) {
    if (line.rfind("POINTS", 0) == 0) {
      found_points = true;
      EXPECT_NE(line.find(std::to_string(expected)), std::string::npos);
    }
    if (line.rfind("POINT_DATA", 0) == 0) {
      found_data = true;
      EXPECT_NE(line.find(std::to_string(expected)), std::string::npos);
    }
  }
  EXPECT_TRUE(found_points);
  EXPECT_TRUE(found_data);
}

TEST(Vtk, YangPointsAreAxisSwapped) {
  // The same node index must land at different global positions for the
  // two panels (the axis swap of eq. 1): compare the first point lines.
  SphericalGrid g = vtk_grid();
  Field3 temp(g.Nr(), g.Nt(), g.Np());
  const std::string p1 = std::string(::testing::TempDir()) + "/yin.vtk";
  const std::string p2 = std::string(::testing::TempDir()) + "/yang.vtk";
  ASSERT_TRUE(write_vtk_panel(p1, g, yinyang::Panel::yin, {{"t", temp}}));
  ASSERT_TRUE(write_vtk_panel(p2, g, yinyang::Panel::yang, {{"t", temp}}));
  auto first_point = [](const std::string& path) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
      if (line.rfind("POINTS", 0) == 0) break;
    std::getline(in, line);
    return line;
  };
  EXPECT_NE(first_point(p1), first_point(p2));
}

TEST(Vtk, MultipleScalarsListed) {
  SphericalGrid g = vtk_grid();
  Field3 a(g.Nr(), g.Nt(), g.Np()), b(g.Nr(), g.Nt(), g.Np());
  const std::string path = std::string(::testing::TempDir()) + "/multi.vtk";
  ASSERT_TRUE(write_vtk_panel(path, g, yinyang::Panel::yin,
                              {{"rho", a}, {"pressure", b}}));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("SCALARS rho float 1"), std::string::npos);
  EXPECT_NE(all.find("SCALARS pressure float 1"), std::string::npos);
}

}  // namespace
}  // namespace yy::io

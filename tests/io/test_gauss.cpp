#include "io/gauss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace yy::io {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(SchmidtPlm, LowDegreeClosedForms) {
  for (double x : {-0.9, -0.3, 0.0, 0.5, 0.8}) {
    const double s = std::sqrt(1.0 - x * x);
    EXPECT_NEAR(schmidt_plm(1, 0, x), x, 1e-12);
    EXPECT_NEAR(schmidt_plm(1, 1, x), s, 1e-12);
    EXPECT_NEAR(schmidt_plm(2, 0, x), 0.5 * (3 * x * x - 1), 1e-12);
    EXPECT_NEAR(schmidt_plm(2, 1, x), std::sqrt(3.0) * x * s, 1e-12);
    EXPECT_NEAR(schmidt_plm(2, 2, x), 0.5 * std::sqrt(3.0) * s * s, 1e-12);
  }
}

TEST(SchmidtPlm, NormalizationIntegral) {
  // ∫_{-1}^{1} [P_lm]² dx = 2(2−δ_m0)/(2l+1) for Schmidt functions…
  // combined with the φ factor this gives the 4π/(2l+1) solid-angle
  // normalization the expansion relies on.  Verify by quadrature.
  for (int l = 1; l <= 4; ++l) {
    for (int m = 0; m <= l; ++m) {
      double sum = 0.0;
      const int n = 4000;
      for (int i = 0; i < n; ++i) {
        const double x = -1.0 + 2.0 * (i + 0.5) / n;
        const double p = schmidt_plm(l, m, x);
        sum += p * p * 2.0 / n;
      }
      const double expect = 2.0 * (m == 0 ? 1.0 : 2.0) / (2.0 * l + 1.0) *
                            (m == 0 ? 1.0 : 0.5) * 2.0;
      // Schmidt: ∫ P² dx = 2·(2 − δ)/(2l+1) / (2 − δ)·(2−δ)…  simplify:
      // the defining property is ∫∫ (P cos mφ)² dΩ = 4π/(2l+1):
      // ∫ P² dx · (π(1+δ_m0)) = 4π/(2l+1).
      const double phi_factor = kPi * (m == 0 ? 2.0 : 1.0);
      EXPECT_NEAR(sum * phi_factor, 4.0 * kPi / (2.0 * l + 1.0), 2e-3)
          << "l=" << l << " m=" << m;
      (void)expect;
    }
  }
}

TEST(Gauss, RecoversAxialDipole) {
  // B_r = 2 g10 cosθ is the axial dipole's radial field at r = a.
  const double g10 = 0.7;
  const GaussCoefficients gc = analyze_gauss_of(
      [&](double th, double) { return 2.0 * g10 * std::cos(th); }, 3);
  EXPECT_NEAR(gc.g_lm(1, 0), g10, 1e-6);
  EXPECT_NEAR(gc.g_lm(1, 1), 0.0, 1e-9);
  EXPECT_NEAR(gc.h_lm(1, 1), 0.0, 1e-9);
  EXPECT_NEAR(gc.g_lm(2, 0), 0.0, 1e-6);
  EXPECT_NEAR(gc.dipole_tilt(), 0.0, 1e-6);
}

TEST(Gauss, RecoversTiltedDipole) {
  // Equatorial dipole pieces: B_r = 2(g11 cosφ + h11 sinφ) sinθ.
  const double g11 = 0.4, h11 = -0.3;
  const GaussCoefficients gc = analyze_gauss_of(
      [&](double th, double ph) {
        return 2.0 * (g11 * std::cos(ph) + h11 * std::sin(ph)) * std::sin(th);
      },
      3);
  EXPECT_NEAR(gc.g_lm(1, 1), g11, 1e-6);
  EXPECT_NEAR(gc.h_lm(1, 1), h11, 1e-6);
  EXPECT_NEAR(gc.dipole_tilt(), kPi / 2.0, 1e-5);  // fully equatorial
}

TEST(Gauss, RecoversQuadrupoleWithoutLeakage) {
  // B_r = 3 g20 P20(cosθ).
  const double g20 = 1.2;
  const GaussCoefficients gc = analyze_gauss_of(
      [&](double th, double) {
        const double x = std::cos(th);
        return 3.0 * g20 * 0.5 * (3 * x * x - 1);
      },
      4);
  EXPECT_NEAR(gc.g_lm(2, 0), g20, 1e-5);
  EXPECT_NEAR(gc.g_lm(1, 0), 0.0, 1e-6);
  EXPECT_NEAR(gc.g_lm(3, 0), 0.0, 1e-5);
}

TEST(Gauss, LowesSpectrumSeparatesDegrees) {
  const GaussCoefficients gc = analyze_gauss_of(
      [&](double th, double ph) {
        const double x = std::cos(th);
        return 2.0 * 1.0 * x +                        // dipole g10 = 1
               3.0 * 0.5 * (0.5 * (3 * x * x - 1)) +  // quadrupole g20 = 0.5
               2.0 * 0.2 * std::sin(th) * std::cos(ph);  // g11 = 0.2
      },
      3);
  const auto spec = gc.lowes_spectrum();
  EXPECT_NEAR(spec[1], 2.0 * (1.0 * 1.0 + 0.2 * 0.2), 1e-3);
  EXPECT_NEAR(spec[2], 3.0 * 0.25, 1e-3);
  EXPECT_NEAR(spec[3], 0.0, 1e-5);
}

TEST(Gauss, IndexPackingIsTriangular) {
  EXPECT_EQ(GaussCoefficients::index(1, 0), 0u);
  EXPECT_EQ(GaussCoefficients::index(1, 1), 1u);
  EXPECT_EQ(GaussCoefficients::index(2, 0), 2u);
  EXPECT_EQ(GaussCoefficients::index(2, 2), 4u);
  EXPECT_EQ(GaussCoefficients::index(3, 0), 5u);
}

}  // namespace
}  // namespace yy::io

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "io/slice.hpp"
#include "yinyang/transform.hpp"

namespace yy::io {
namespace {

constexpr double kPi = 3.14159265358979323846;

class MeridionalTest : public ::testing::Test {
 protected:
  MeridionalTest()
      : geom(yinyang::ComponentGeometry::with_auto_margin(17, 49)),
        grid(geom.make_grid_spec(9, 0.4, 1.0)),
        sampler(grid, geom),
        yin(grid.Nr(), grid.Nt(), grid.Np()),
        yang(grid.Nr(), grid.Nt(), grid.Np()) {}

  template <typename F>
  void fill(F&& func) {
    for_box(grid.full(), [&](int ir, int it, int ip) {
      const yinyang::Angles a{grid.theta(it), grid.phi(ip)};
      const Vec3 pos = yinyang::position(a) * grid.r(ir);
      yin(ir, it, ip) = func(pos);
      yang(ir, it, ip) = func(yinyang::axis_swap(pos));
    });
  }

  yinyang::ComponentGeometry geom;
  SphericalGrid grid;
  SphereSampler sampler;
  Field3 yin, yang;
};

TEST_F(MeridionalTest, SamplesMatchGlobalFunctionOnBothHalves) {
  auto func = [](const Vec3& x) { return x.z + 0.3 * x.x; };
  fill(func);
  const MeridionalSlice s =
      sample_meridional_scalar(sampler, yin, yang, 0.4, 1.0, 0.0, 12, 24);
  EXPECT_EQ(s.nr, 12);
  EXPECT_EQ(s.nth, 24);
  double err = 0.0;
  for (int half = 0; half < 2; ++half) {
    const double phi = half == 0 ? 0.0 : kPi;
    for (int i = 0; i < s.nr; ++i) {
      const double r = 0.4 + 0.6 * i / 11.0;
      for (int j = 0; j < s.nth; ++j) {
        const double th = 1e-4 + (kPi - 2e-4) * j / 23.0;
        const Vec3 pos = yinyang::position({th, phi}) * r;
        err = std::max(err, std::abs(s.at(half, i, j) - func(pos)));
      }
    }
  }
  EXPECT_LT(err, 2e-2);
}

TEST_F(MeridionalTest, PolarRegionsServedByYangPanel) {
  // The slice passes straight through both global poles — Yang-core
  // territory; the sampler must hand those points over seamlessly.
  fill([](const Vec3& x) { return x.z; });
  const MeridionalSlice s =
      sample_meridional_scalar(sampler, yin, yang, 0.4, 1.0, 0.5, 8, 33);
  // θ ≈ 0 row: value ≈ +r; θ ≈ π row: ≈ −r.
  for (int i = 0; i < s.nr; ++i) {
    const double r = 0.4 + 0.6 * i / 7.0;
    EXPECT_NEAR(s.at(0, i, 0), r, 0.03);
    EXPECT_NEAR(s.at(0, i, 32), -r, 0.03);
  }
}

TEST_F(MeridionalTest, PpmWritten) {
  fill([](const Vec3& x) { return x.z * x.z; });
  const MeridionalSlice s =
      sample_meridional_scalar(sampler, yin, yang, 0.4, 1.0, 0.0, 10, 20);
  const std::string path = std::string(::testing::TempDir()) + "/mer.ppm";
  ASSERT_TRUE(write_meridional_ppm(s, path, 150));
  std::ifstream in(path);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST_F(MeridionalTest, MaxAbsReflectsData) {
  fill([](const Vec3&) { return -3.5; });
  const MeridionalSlice s =
      sample_meridional_scalar(sampler, yin, yang, 0.4, 1.0, 0.0, 6, 12);
  EXPECT_NEAR(s.max_abs(), 3.5, 1e-9);
}

}  // namespace
}  // namespace yy::io

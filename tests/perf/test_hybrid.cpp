#include <gtest/gtest.h>

#include "perf/es_model.hpp"

namespace yy::perf {
namespace {

EsPerformanceModel model() {
  return EsPerformanceModel(EarthSimulatorSpec{}, EsCostParams{}, 2000.0);
}

RunConfig hybridized(RunConfig rc) {
  rc.parallelization = Parallelization::hybrid_microtask;
  return rc;
}

TEST(HybridModel, SameApCountFewerRanks) {
  const ModelResult flat = model().predict(kTable2Configs[0]);
  const ModelResult hyb = model().predict(hybridized(kTable2Configs[0]));
  // 4096 APs -> 512 hybrid processes -> a 16x16 panel grid.
  EXPECT_EQ(hyb.pt * hyb.pp, 256);
  EXPECT_EQ(flat.pt * flat.pp, 2048);
}

TEST(HybridModel, HybridWinsAtSmallProblemSizes) {
  // The paper (citing Nakajima): flat MPI needs a larger problem to
  // reach the same efficiency as hybrid parallelization.
  RunConfig small{4096, 255, 130, 386};
  const double eff_flat = model().predict(small).efficiency;
  const double eff_hyb = model().predict(hybridized(small)).efficiency;
  EXPECT_GT(eff_hyb, eff_flat);
}

TEST(HybridModel, FlatMpiCompetitiveAtPaperScale) {
  // At the paper's production size, flat MPI is within striking
  // distance of hybrid — the regime the paper exploits.
  const ModelResult flat = model().predict(kTable2Configs[0]);
  const ModelResult hyb = model().predict(hybridized(kTable2Configs[0]));
  EXPECT_GT(flat.efficiency, 0.55 * hyb.efficiency);
}

TEST(HybridModel, MicrotaskOverheadCapsHybridCeiling) {
  // With communication negligible (huge per-process work), hybrid's
  // ceiling sits below flat's by the microtasking efficiency factor.
  EsCostParams cost;
  cost.straggler_s_per_proc = 0.0;
  cost.msg_latency_s = 0.0;
  cost.eff_bandwidth_gbs = 1e9;  // effectively free bandwidth
  EsPerformanceModel m(EarthSimulatorSpec{}, cost, 2000.0);
  RunConfig huge{256, 511, 1028, 3076};
  const double eff_flat = m.predict(huge).efficiency;
  const double eff_hyb = m.predict(hybridized(huge)).efficiency;
  EXPECT_GT(eff_flat, eff_hyb);
  EXPECT_NEAR(eff_hyb / eff_flat, cost.microtask_efficiency, 0.03);
}

TEST(HybridModel, EfficiencyGapShrinksWithProblemSize) {
  const EsPerformanceModel m = model();
  auto gap = [&](int nt, int np) {
    RunConfig rc{4096, 255, nt, np};
    return m.predict(hybridized(rc)).efficiency - m.predict(rc).efficiency;
  };
  EXPECT_GT(gap(130, 386), gap(514, 1538));
}

}  // namespace
}  // namespace yy::perf

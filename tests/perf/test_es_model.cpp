#include "perf/es_model.hpp"

#include <gtest/gtest.h>

namespace yy::perf {
namespace {

EsPerformanceModel default_model() {
  // A representative flops/point/step for the FD MHD kernel; the
  // Table II bench uses the measured value instead.
  return EsPerformanceModel(EarthSimulatorSpec{}, EsCostParams{}, 3000.0);
}

TEST(EsSpec, TableOneTotals) {
  EarthSimulatorSpec spec;
  EXPECT_EQ(spec.total_aps(), 5120);
  EXPECT_DOUBLE_EQ(spec.total_peak_tflops(), 40.96);  // "40 Tflops" in Table I
  EXPECT_NEAR(spec.total_memory_tb(), 10.0, 0.3);
}

TEST(EsModel, FlagshipConfigurationShape) {
  const ModelResult m = default_model().predict(kTable2Configs[0]);
  EXPECT_EQ(m.pt, 32);
  EXPECT_EQ(m.pp, 64);
  EXPECT_EQ(m.grid_points, 2ll * 511 * 514 * 1538);
  EXPECT_GT(m.tflops, 8.0);
  EXPECT_LT(m.tflops, 25.0);
  EXPECT_GT(m.efficiency, 0.3);
  EXPECT_LT(m.efficiency, 0.7);
}

TEST(EsModel, EfficiencyFallsWithProcessorCountAtFixedGrid) {
  const EsPerformanceModel model = default_model();
  const ModelResult big = model.predict({4096, 511, 514, 1538});
  const ModelResult mid = model.predict({2560, 511, 514, 1538});
  EXPECT_LT(big.efficiency, mid.efficiency);
}

TEST(EsModel, TotalTflopsGrowsWithProcessorCount) {
  const EsPerformanceModel model = default_model();
  const ModelResult big = model.predict({4096, 511, 514, 1538});
  const ModelResult mid = model.predict({2560, 511, 514, 1538});
  const ModelResult small = model.predict({1200, 511, 514, 1538});
  EXPECT_GT(big.tflops, mid.tflops);
  EXPECT_GT(mid.tflops, small.tflops);
}

TEST(EsModel, LongRadialGridBeatsShortAtSameProcessorCount) {
  // The vector-length effect (paper: 13.8 vs 12.1 Tflops at 3888).
  const EsPerformanceModel model = default_model();
  const ModelResult r511 = model.predict({3888, 511, 514, 1538});
  const ModelResult r255 = model.predict({3888, 255, 514, 1538});
  EXPECT_GT(r511.tflops, r255.tflops);
  EXPECT_GT(r511.efficiency, r255.efficiency);
}

TEST(EsModel, AverageVectorLengthMatchesHardwareCounterConvention) {
  const EsPerformanceModel model = default_model();
  EXPECT_NEAR(model.predict({4096, 511, 514, 1538}).avg_vector_length, 255.5,
              1e-9);
  EXPECT_NEAR(model.predict({1200, 255, 514, 1538}).avg_vector_length, 255.0,
              1e-9);
}

TEST(EsModel, VectorOpRatioNear99Percent) {
  const ModelResult m = default_model().predict(kTable2Configs[0]);
  EXPECT_GT(m.vec_op_ratio, 0.985);
  EXPECT_LT(m.vec_op_ratio, 1.0);
}

TEST(EsModel, CommunicationShareNearPaperTenPercent) {
  const ModelResult m = default_model().predict(kTable2Configs[0]);
  EXPECT_GT(m.comm_fraction, 0.02);
  EXPECT_LT(m.comm_fraction, 0.30);
}

TEST(EsModel, Table2RowsReproduceWinnersAndOrdering) {
  // Shape reproduction (who wins): within each radial-grid family total
  // Tflops grows with processors (paper: 15.2 > 13.8 > 10.3 for the
  // 511 rows; 12.1 > 9.17 > 5.40 for the 255 rows) and the 511 grid
  // beats the 255 grid at equal processor count.
  const EsPerformanceModel model = default_model();
  const double t511[3] = {model.predict({4096, 511, 514, 1538}).tflops,
                          model.predict({3888, 511, 514, 1538}).tflops,
                          model.predict({2560, 511, 514, 1538}).tflops};
  const double t255[3] = {model.predict({3888, 255, 514, 1538}).tflops,
                          model.predict({2560, 255, 514, 1538}).tflops,
                          model.predict({1200, 255, 514, 1538}).tflops};
  EXPECT_GT(t511[0], t511[1]);
  EXPECT_GT(t511[1], t511[2]);
  EXPECT_GT(t255[0], t255[1]);
  EXPECT_GT(t255[1], t255[2]);
  EXPECT_GT(t511[1], t255[0]);  // 3888: 13.8 vs 12.1
  EXPECT_GT(t511[2], t255[1]);  // 2560: 10.3 vs 9.17
  // Flagship-to-smallest factor ≈ 15.2/5.40 ≈ 2.8 in the paper.
  EXPECT_NEAR(t511[0] / t255[2], 15.2 / 5.40, 1.0);
}

TEST(EsModel, Table2EfficienciesInPaperBand) {
  // Not an exact-number fit: every modeled efficiency must land within
  // 12 percentage points of the paper's reported value.
  const EsPerformanceModel model = default_model();
  for (std::size_t i = 0; i < std::size(kTable2Configs); ++i) {
    const ModelResult m = model.predict(kTable2Configs[i]);
    EXPECT_NEAR(m.efficiency, kTable2Reported[i].efficiency, 0.12)
        << "row " << i;
  }
}

TEST(EsModel, FlopsPerGridpointRateMatchesTflopsIdentity) {
  const ModelResult m = default_model().predict(kTable2Configs[0]);
  EXPECT_NEAR(m.flops_per_gridpoint_rate * m.grid_points, m.tflops * 1e12,
              1e-3 * m.tflops * 1e12);
}

TEST(EsModel, OverlapPredictionIsConsistent) {
  const ModelResult m = default_model().predict(kTable2Configs[0]);
  // Interior fraction is a genuine fraction and large on ES-size
  // patches (ghost rim of 2 off a 17×25-ish patch).
  EXPECT_GT(m.interior_fraction, 0.4);
  EXPECT_LT(m.interior_fraction, 1.0);
  // Hidden time is bounded by both total comm and the overlapped share
  // of compute; the overlapped step is faster but can never beat
  // compute-only time.
  EXPECT_GT(m.hidden_comm_s, 0.0);
  EXPECT_GT(m.overlap_efficiency, 0.0);
  EXPECT_LE(m.overlap_efficiency, 0.75 + 1e-12);  // ≤ 3 of 4 fills
  EXPECT_LT(m.overlapped_time_per_step_s, m.time_per_step_s);
  EXPECT_GE(m.overlapped_time_per_step_s,
            m.comp_fraction * m.time_per_step_s - 1e-12);
}

TEST(EsModel, OverlapHidesMoreWhenCommShareGrows) {
  // Scaling out at fixed grid raises the comm share; as long as the
  // interior compute still covers the in-flight time, the absolute
  // hidden seconds cannot shrink relative to a comm-bound run's needs:
  // overlap efficiency stays meaningful across Table II rows.
  const EsPerformanceModel model = default_model();
  for (const RunConfig& rc : kTable2Configs) {
    const ModelResult m = model.predict(rc);
    EXPECT_GT(m.overlap_efficiency, 0.05) << rc.processors;
    EXPECT_LE(m.hidden_comm_s,
              m.comm_fraction * m.time_per_step_s + 1e-12);
  }
}

TEST(EsModel, MoreFlopsPerPointRaisesTflopsNotEfficiencyMuch) {
  EsPerformanceModel lean(EarthSimulatorSpec{}, EsCostParams{}, 1500.0);
  EsPerformanceModel fat(EarthSimulatorSpec{}, EsCostParams{}, 6000.0);
  const ModelResult a = lean.predict(kTable2Configs[0]);
  const ModelResult b = fat.predict(kTable2Configs[0]);
  // More work per point amortizes fixed comm costs: efficiency rises.
  EXPECT_GE(b.efficiency, a.efficiency);
  EXPECT_GT(b.time_per_step_s, a.time_per_step_s);
}

}  // namespace
}  // namespace yy::perf

/// RooflineReport: the measured/charged join (perf/roofline.hpp).
/// Pins the derived quantities on synthetic inputs, the bitwise
/// measured==charged identity of the software backend, and the
/// agreement between the roofline's charged column and the kernel
/// profile's flops-per-point at 1, 2 and 4 ranks.
#include "perf/roofline.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "comm/runtime.hpp"
#include "common/flops.hpp"
#include "core/distributed_solver.hpp"
#include "core/serial_solver.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/kernel_profile.hpp"

namespace yy::perf {
namespace {

obs::MetricsSummary synthetic_summary() {
  obs::MetricsSummary m;
  obs::PhaseMetrics& rhs =
      m.total[static_cast<std::size_t>(obs::Phase::rhs)];
  rhs.seconds = 2.0;
  rhs.count = 4;
  rhs.ctr = {8'000'000'000ull, 4'000'000'000ull, 50'000'000ull,
             10'000'000ull, 6'000'000'000ull, 5'000'000'000ull};
  obs::PhaseMetrics& wait =
      m.total[static_cast<std::size_t>(obs::Phase::halo_wait)];
  wait.seconds = 1.0;
  wait.count = 4;
  return m;
}

TEST(Roofline, DerivedQuantitiesFromSyntheticCounters) {
  const RooflineReport rep = RooflineReport::build(
      synthetic_summary(), obs::CounterBackend::perf_event);
  ASSERT_EQ(rep.rows.size(), 2u);
  const RooflineRow& rhs = rep.rows[0];
  EXPECT_EQ(rhs.label, "rhs");
  // hw_flops present: the measured column is the hardware count.
  EXPECT_EQ(rhs.measured_flops(), 6'000'000'000ull);
  EXPECT_NEAR(rhs.achieved_gflops(), 3.0, 1e-12);
  EXPECT_NEAR(rhs.ipc(), 0.5, 1e-12);
  EXPECT_NEAR(rhs.dram_gbs(), 10e6 * 64.0 / 2.0 / 1e9, 1e-12);
  EXPECT_NEAR(rhs.flops_per_byte(), 6e9 / (10e6 * 64.0), 1e-12);
  EXPECT_NEAR(rhs.efficiency_vs_charge(), 1.2, 1e-12);
  // A wait phase with no counters still appears (it has spans) but
  // derives zeros rather than NaNs.
  EXPECT_EQ(rep.rows[1].measured_flops(), 0u);
  EXPECT_EQ(rep.rows[1].ipc(), 0.0);
  // Totals are plain sums.
  EXPECT_EQ(rep.total.charged_flops, 5'000'000'000ull);
  EXPECT_NEAR(rep.total.seconds, 3.0, 1e-12);
}

TEST(Roofline, SoftwareBackendMeasuredEqualsChargeBitwise) {
  obs::MetricsSummary m = synthetic_summary();
  // Software backend: no hw_flops event — the measured column must be
  // the charge itself, bit for bit.
  m.total[static_cast<std::size_t>(obs::Phase::rhs)].ctr.hw_flops = 0;
  const RooflineReport rep =
      RooflineReport::build(m, obs::CounterBackend::software);
  EXPECT_EQ(rep.rows[0].measured_flops(), rep.rows[0].charged_flops);
  EXPECT_EQ(rep.rows[0].measured_flops(), 5'000'000'000ull);
  EXPECT_NEAR(rep.rows[0].efficiency_vs_charge(), 1.0, 0.0);
}

TEST(Roofline, UnattributedResidualAndFormat) {
  const RooflineReport rep = RooflineReport::build(
      synthetic_summary(), obs::CounterBackend::software,
      /*global_flops=*/5'500'000'000ull);
  EXPECT_EQ(rep.unattributed_flops, 500'000'000ull);
  const std::string text = rep.format();
  EXPECT_NE(text.find("software"), std::string::npos);
  EXPECT_NE(text.find("unattributed"), std::string::npos);
  EXPECT_NE(text.find("rhs"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  // No residual known -> no residual row.
  const RooflineReport rep0 =
      RooflineReport::build(synthetic_summary(), obs::CounterBackend::off);
  EXPECT_EQ(rep0.unattributed_flops, 0u);
  EXPECT_EQ(rep0.format().find("unattributed"), std::string::npos);
}

core::SimulationConfig profile_config() {
  core::SimulationConfig cfg;
  cfg.nr = 17;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.omega = {0.0, 0.0, 5.0};
  return cfg;
}

/// Charged flops per point per step attributed to spans by an
/// instrumented serial run (counter fallback backend).
double serial_charged_per_point(int steps) {
  obs::CounterConfig ccfg;
  ccfg.want_perf_event = false;
  obs::CounterGroup ctrs(ccfg);
  core::SerialYinYangSolver solver(profile_config());
  solver.initialize();
  const double dt = solver.stable_dt();
  obs::TraceRecorder rec;
  {
    obs::ScopedRankBind bind(rec, 0);
    obs::ScopedCounterBind cbind(ctrs);
    for (int s = 0; s < steps; ++s) solver.step(dt);
  }
  const RooflineReport rep = RooflineReport::build(
      obs::collect_metrics(rec), ctrs.backend());
  const double points = 2.0 * static_cast<double>(
                                  solver.grid().interior().volume());
  return static_cast<double>(rep.total.charged_flops) / points / steps;
}

/// Same quantity from a distributed run on 2*pt*pp ranks.
double distributed_charged_per_point(int pt, int pp, int steps) {
  const core::SimulationConfig cfg = profile_config();
  const int world = 2 * pt * pp;
  obs::TraceRecorder rec;
  comm::Runtime rt(world);
  rt.run([&](comm::Communicator& w) {
    obs::CounterConfig ccfg;
    ccfg.want_perf_event = false;
    obs::CounterGroup ctrs(ccfg);  // per-thread, like the spans
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    obs::ScopedRankBind bind(rec, w.rank());
    obs::ScopedCounterBind cbind(ctrs);
    for (int s = 0; s < steps; ++s) solver.step(dt);
  });
  const RooflineReport rep = RooflineReport::build(
      obs::collect_metrics(rec), obs::CounterBackend::software);
  core::SerialYinYangSolver ref(cfg);  // same grid: point count
  const double points =
      2.0 * static_cast<double>(ref.grid().interior().volume());
  return static_cast<double>(rep.total.charged_flops) / points / steps;
}

TEST(Roofline, ChargedColumnMatchesKernelProfileAcrossRanks) {
  const KernelProfile prof = KernelProfile::measure();
  const double serial = serial_charged_per_point(/*steps=*/1);
  // One rank: the span-attributed charge is the same accounting the
  // kernel profile reads from flops::global_count() — exact agreement.
  EXPECT_DOUBLE_EQ(serial, prof.flops_per_point_per_step);

  // 2 and 4 ranks: decomposition adds rim/overset work at patch edges,
  // so the per-point charge may drift slightly, never wildly.
  for (const auto& [pt, pp] : {std::pair{1, 1}, std::pair{1, 2}}) {
    const double dist = distributed_charged_per_point(pt, pp, /*steps=*/1);
    EXPECT_NEAR(dist / prof.flops_per_point_per_step, 1.0, 0.10)
        << "world=" << 2 * pt * pp;
  }
}

}  // namespace
}  // namespace yy::perf

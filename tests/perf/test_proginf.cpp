#include "perf/proginf.hpp"

#include <gtest/gtest.h>

#include "perf/sc_comparison.hpp"

namespace yy::perf {
namespace {

EsPerformanceModel model() {
  return EsPerformanceModel(EarthSimulatorSpec{}, EsCostParams{}, 3000.0);
}

TEST(ProgInf, ContainsListOneSections) {
  const std::string out = format_proginf(model(), kTable2Configs[0]);
  EXPECT_NE(out.find("MPI Program Information:"), std::string::npos);
  EXPECT_NE(out.find("Global Data of 4096 processes"), std::string::npos);
  EXPECT_NE(out.find("Vector Operation Ratio (%)"), std::string::npos);
  EXPECT_NE(out.find("Overall Data:"), std::string::npos);
  EXPECT_NE(out.find("GFLOPS (rel. to User Time)"), std::string::npos);
  EXPECT_NE(out.find("TFlops"), std::string::npos);
}

TEST(ProgInf, ReportsEveryCounterRow) {
  const std::string out = format_proginf(model(), kTable2Configs[0]);
  for (const char* row :
       {"Real Time (sec)", "User Time (sec)", "System Time (sec)",
        "Vector Time (sec)", "Instruction Count", "Vector Instruction Count",
        "Vector Element Count", "FLOP Count", "MOPS", "MFLOPS",
        "Average Vector Length", "Memory size used (MB)"}) {
    EXPECT_NE(out.find(row), std::string::npos) << row;
  }
}

TEST(ProgInf, DeterministicForFixedSeed) {
  const std::string a = format_proginf(model(), kTable2Configs[0]);
  const std::string b = format_proginf(model(), kTable2Configs[0]);
  EXPECT_EQ(a, b);
}

TEST(ProgInf, VectorTimeBelowUserTime) {
  const std::string out = format_proginf(model(), kTable2Configs[0]);
  // Sanity of the derived quantities: vector share is a proper subset
  // of user time.  Parse the Overall Data block loosely.
  const auto user_pos = out.find("User Time (sec)        :");
  const auto vec_pos = out.find("Vector Time (sec)      :");
  ASSERT_NE(user_pos, std::string::npos);
  ASSERT_NE(vec_pos, std::string::npos);
  const double user = std::stod(out.substr(user_pos + 25, 20));
  const double vec = std::stod(out.substr(vec_pos + 25, 20));
  EXPECT_LT(vec, user);
  EXPECT_GT(vec, 0.4 * user);  // mostly-vector code, like List 1
}

/// A measured-run summary with a plausible phase mix on two ranks.
obs::MetricsSummary measured_summary() {
  obs::TraceRecorder rec;
  for (int rank = 0; rank < 2; ++rank) {
    obs::RankTrace& t = rec.rank_trace(rank);
    t.set_step(0);
    std::int64_t now = 0;
    auto add = [&](obs::Phase p, std::int64_t dur_ns, std::uint64_t bytes) {
      t.record(p, now, now + dur_ns, bytes);
      now += dur_ns;
    };
    add(obs::Phase::rhs, 8'000'000, 0);
    add(obs::Phase::rk4_stage, 1'000'000, 0);
    add(obs::Phase::boundary, 500'000, 0);
    add(obs::Phase::halo_wait, 700'000, 1 << 16);
    add(obs::Phase::overset_wait, 300'000, 1 << 14);
    add(obs::Phase::reduce, 100'000, 0);
  }
  return obs::collect_metrics(rec, {120, 9'000'000});
}

TEST(MeasuredProgInf, ListsPhaseRowsWithRealExtremes) {
  const std::string out = format_measured_proginf(measured_summary());
  EXPECT_NE(out.find("MPI Program Information (measured):"), std::string::npos);
  EXPECT_NE(out.find("Global Data of 2 processes"), std::string::npos);
  for (const char* phase : {"rhs", "rk4_stage", "halo_wait", "overset_wait",
                            "boundary", "reduce"})
    EXPECT_NE(out.find(phase), std::string::npos) << phase;
  EXPECT_NE(out.find("Messages"), std::string::npos);
  EXPECT_NE(out.find("Message volume (MB)"), std::string::npos);
  // No io spans were recorded: no io row.
  EXPECT_EQ(out.find("  io "), std::string::npos);
}

TEST(MeasuredPhaseReport, ComparesMeasuredSharesAgainstModel) {
  const obs::MetricsSummary m = measured_summary();
  const std::string out =
      format_phase_report(m, model(), kTable2Configs[0]);
  EXPECT_NE(out.find("measured"), std::string::npos);
  EXPECT_NE(out.find("compute"), std::string::npos);
  EXPECT_NE(out.find("halo_wait"), std::string::npos);
  EXPECT_NE(out.find("overset_wait"), std::string::npos);
  EXPECT_NE(out.find("comm fraction:"), std::string::npos);
  // The measured comm share of the synthetic mix is (0.7+0.3)/10.6 ≈ 9.4%.
  EXPECT_NE(out.find("9.4%"), std::string::npos);
}

TEST(MeasuredPhaseReport, ModelPhaseFractionsAreConsistent) {
  const ModelResult r = model().predict(kTable2Configs[0]);
  EXPECT_GT(r.comp_fraction, 0.0);
  EXPECT_GT(r.halo_fraction, 0.0);
  EXPECT_GT(r.overset_fraction, 0.0);
  EXPECT_NEAR(r.comp_fraction + r.halo_fraction + r.overset_fraction, 1.0,
              1e-12);
  EXPECT_NEAR(r.halo_fraction + r.overset_fraction, r.comm_fraction, 1e-12);
  // The halo carries more volume and messages than the overset share.
  EXPECT_GT(r.halo_fraction, r.overset_fraction);
}

TEST(Table3, LiteratureRowsMatchPaperNumbers) {
  const auto rows = sc_literature_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows[0].tflops, 26.6);  // Shingu
  EXPECT_EQ(rows[0].nodes, 640);
  EXPECT_DOUBLE_EQ(rows[3].tflops, 5.0);   // Komatitsch
  EXPECT_EQ(rows[3].parallelization, "flat MPI");
}

TEST(Table3, PaperYycoreRowDerivedQuantities) {
  const ScEntry e = yycore_paper_row();
  // g.p./AP = 8.1e8 / (512·8) ≈ 2.0e5 (paper: 2.1e5).
  EXPECT_NEAR(e.gridpoints_per_ap(), 2.0e5, 0.2e5);
  // Flops/g.p. = 15.2e12/8.1e8 ≈ 18.8K (paper: 19K).
  EXPECT_NEAR(e.flops_per_gridpoint() / 1000.0, 19.0, 1.0);
}

TEST(Table3, ModelRowLandsNearPaperRow) {
  const ScEntry mine = yycore_model_row(model());
  const ScEntry paper = yycore_paper_row();
  EXPECT_EQ(mine.nodes, paper.nodes);
  EXPECT_NEAR(mine.efficiency, paper.efficiency, 0.12);
  EXPECT_EQ(mine.method, "finite difference");
}

TEST(Table3, FormatListsEveryRow) {
  auto rows = sc_literature_rows();
  rows.push_back(yycore_paper_row());
  const std::string out = format_table3(rows);
  EXPECT_NE(out.find("Shingu"), std::string::npos);
  EXPECT_NE(out.find("Komatitsch"), std::string::npos);
  EXPECT_NE(out.find("Kageyama"), std::string::npos);
  EXPECT_NE(out.find("finite difference / flat MPI"), std::string::npos);
}

}  // namespace
}  // namespace yy::perf

#include "perf/kernel_profile.hpp"

#include <gtest/gtest.h>

namespace yy::perf {
namespace {

TEST(KernelProfile, MeasuresPositiveFlopsPerPoint) {
  const KernelProfile p = KernelProfile::measure();
  // One RK4 step = 4 RHS evaluations of a multi-operator MHD kernel:
  // hundreds to thousands of flops per point.
  EXPECT_GT(p.flops_per_point_per_step, 500.0);
  EXPECT_LT(p.flops_per_point_per_step, 50000.0);
  EXPECT_GT(p.local_gflops, 0.0);
  EXPECT_GT(p.seconds_per_point_per_step, 0.0);
}

TEST(KernelProfile, FlopsPerPointStableAcrossResolutions) {
  // The claim the Table II bench relies on: flops/point/step is a
  // property of the algorithm, not of the grid size (ghost-overhead
  // effects stay within ~40% at these tiny sizes).
  const KernelProfile small = KernelProfile::measure(13, 11, 31);
  const KernelProfile big = KernelProfile::measure(21, 17, 49);
  EXPECT_NEAR(small.flops_per_point_per_step / big.flops_per_point_per_step,
              1.0, 0.4);
}

TEST(KernelProfile, RepeatedMeasurementsIdenticalFlops) {
  const KernelProfile a = KernelProfile::measure(13, 11, 31);
  const KernelProfile b = KernelProfile::measure(13, 11, 31);
  EXPECT_DOUBLE_EQ(a.flops_per_point_per_step, b.flops_per_point_per_step);
}

}  // namespace
}  // namespace yy::perf

# Empty dependencies file for convection_columns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/convection_columns.dir/convection_columns.cpp.o"
  "CMakeFiles/convection_columns.dir/convection_columns.cpp.o.d"
  "convection_columns"
  "convection_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convection_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

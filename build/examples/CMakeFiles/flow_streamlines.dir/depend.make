# Empty dependencies file for flow_streamlines.
# This may be replaced when dependencies are built.

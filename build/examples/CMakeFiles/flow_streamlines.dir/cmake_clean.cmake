file(REMOVE_RECURSE
  "CMakeFiles/flow_streamlines.dir/flow_streamlines.cpp.o"
  "CMakeFiles/flow_streamlines.dir/flow_streamlines.cpp.o.d"
  "flow_streamlines"
  "flow_streamlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_streamlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

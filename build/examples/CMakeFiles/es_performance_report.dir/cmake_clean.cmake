file(REMOVE_RECURSE
  "CMakeFiles/es_performance_report.dir/es_performance_report.cpp.o"
  "CMakeFiles/es_performance_report.dir/es_performance_report.cpp.o.d"
  "es_performance_report"
  "es_performance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_performance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for es_performance_report.
# This may be replaced when dependencies are built.

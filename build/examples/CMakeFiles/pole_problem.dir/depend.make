# Empty dependencies file for pole_problem.
# This may be replaced when dependencies are built.

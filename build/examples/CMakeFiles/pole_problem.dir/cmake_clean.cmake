file(REMOVE_RECURSE
  "CMakeFiles/pole_problem.dir/pole_problem.cpp.o"
  "CMakeFiles/pole_problem.dir/pole_problem.cpp.o.d"
  "pole_problem"
  "pole_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pole_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dynamo_growth.dir/dynamo_growth.cpp.o"
  "CMakeFiles/dynamo_growth.dir/dynamo_growth.cpp.o.d"
  "dynamo_growth"
  "dynamo_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamo_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

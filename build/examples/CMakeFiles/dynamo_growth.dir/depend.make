# Empty dependencies file for dynamo_growth.
# This may be replaced when dependencies are built.

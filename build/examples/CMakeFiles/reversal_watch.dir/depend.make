# Empty dependencies file for reversal_watch.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reversal_watch.cpp" "examples/CMakeFiles/reversal_watch.dir/reversal_watch.cpp.o" "gcc" "examples/CMakeFiles/reversal_watch.dir/reversal_watch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/yycore.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/yy_latlon.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/yy_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/yy_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mhd/CMakeFiles/yy_mhd.dir/DependInfo.cmake"
  "/root/repo/build/src/yinyang/CMakeFiles/yy_yinyang.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/yy_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/yy_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/yy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/reversal_watch.dir/reversal_watch.cpp.o"
  "CMakeFiles/reversal_watch.dir/reversal_watch.cpp.o.d"
  "reversal_watch"
  "reversal_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reversal_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/parallel_dynamo.dir/parallel_dynamo.cpp.o"
  "CMakeFiles/parallel_dynamo.dir/parallel_dynamo.cpp.o.d"
  "parallel_dynamo"
  "parallel_dynamo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_dynamo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

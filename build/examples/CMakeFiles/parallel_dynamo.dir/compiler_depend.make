# Empty compiler generated dependencies file for parallel_dynamo.
# This may be replaced when dependencies are built.

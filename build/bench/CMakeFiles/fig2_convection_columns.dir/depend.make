# Empty dependencies file for fig2_convection_columns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_convection_columns.dir/fig2_convection_columns.cpp.o"
  "CMakeFiles/fig2_convection_columns.dir/fig2_convection_columns.cpp.o.d"
  "fig2_convection_columns"
  "fig2_convection_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_convection_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1_yinyang_grid.
# This may be replaced when dependencies are built.

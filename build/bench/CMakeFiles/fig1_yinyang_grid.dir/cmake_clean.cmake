file(REMOVE_RECURSE
  "CMakeFiles/fig1_yinyang_grid.dir/fig1_yinyang_grid.cpp.o"
  "CMakeFiles/fig1_yinyang_grid.dir/fig1_yinyang_grid.cpp.o.d"
  "fig1_yinyang_grid"
  "fig1_yinyang_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_yinyang_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec4_comm_pattern.
# This may be replaced when dependencies are built.

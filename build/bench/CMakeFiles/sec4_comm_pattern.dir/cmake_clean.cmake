file(REMOVE_RECURSE
  "CMakeFiles/sec4_comm_pattern.dir/sec4_comm_pattern.cpp.o"
  "CMakeFiles/sec4_comm_pattern.dir/sec4_comm_pattern.cpp.o.d"
  "sec4_comm_pattern"
  "sec4_comm_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_comm_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

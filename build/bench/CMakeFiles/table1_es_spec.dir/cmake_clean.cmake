file(REMOVE_RECURSE
  "CMakeFiles/table1_es_spec.dir/table1_es_spec.cpp.o"
  "CMakeFiles/table1_es_spec.dir/table1_es_spec.cpp.o.d"
  "table1_es_spec"
  "table1_es_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_es_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_es_spec.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sec2_latlon_vs_yinyang.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec2_latlon_vs_yinyang.dir/sec2_latlon_vs_yinyang.cpp.o"
  "CMakeFiles/sec2_latlon_vs_yinyang.dir/sec2_latlon_vs_yinyang.cpp.o.d"
  "sec2_latlon_vs_yinyang"
  "sec2_latlon_vs_yinyang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_latlon_vs_yinyang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

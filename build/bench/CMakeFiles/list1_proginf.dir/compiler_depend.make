# Empty compiler generated dependencies file for list1_proginf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/list1_proginf.dir/list1_proginf.cpp.o"
  "CMakeFiles/list1_proginf.dir/list1_proginf.cpp.o.d"
  "list1_proginf"
  "list1_proginf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list1_proginf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_grid "/root/repo/build/tests/test_grid")
set_tests_properties(test_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;26;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_yinyang "/root/repo/build/tests/test_yinyang")
set_tests_properties(test_yinyang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;31;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mhd "/root/repo/build/tests/test_mhd")
set_tests_properties(test_mhd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;37;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;46;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baseline "/root/repo/build/tests/test_baseline")
set_tests_properties(test_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;56;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;59;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_io "/root/repo/build/tests/test_io")
set_tests_properties(test_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;65;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;75;yy_add_test;/root/repo/tests/CMakeLists.txt;0;")

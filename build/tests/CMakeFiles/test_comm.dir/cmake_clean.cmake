file(REMOVE_RECURSE
  "CMakeFiles/test_comm.dir/comm/test_cart.cpp.o"
  "CMakeFiles/test_comm.dir/comm/test_cart.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/test_collectives.cpp.o"
  "CMakeFiles/test_comm.dir/comm/test_collectives.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/test_pointtopoint.cpp.o"
  "CMakeFiles/test_comm.dir/comm/test_pointtopoint.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/test_sendrecv.cpp.o"
  "CMakeFiles/test_comm.dir/comm/test_sendrecv.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/test_split.cpp.o"
  "CMakeFiles/test_comm.dir/comm/test_split.cpp.o.d"
  "test_comm"
  "test_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_array3d.cpp.o"
  "CMakeFiles/test_common.dir/common/test_array3d.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_csv_ppm.cpp.o"
  "CMakeFiles/test_common.dir/common/test_csv_ppm.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_flops.cpp.o"
  "CMakeFiles/test_common.dir/common/test_flops.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_noise.cpp.o"
  "CMakeFiles/test_common.dir/common/test_noise.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_vec3.cpp.o"
  "CMakeFiles/test_common.dir/common/test_vec3.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

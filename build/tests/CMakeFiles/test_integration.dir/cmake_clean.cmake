file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_cross_solver.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_cross_solver.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_physics.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_physics.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_perf.dir/perf/test_es_model.cpp.o"
  "CMakeFiles/test_perf.dir/perf/test_es_model.cpp.o.d"
  "CMakeFiles/test_perf.dir/perf/test_hybrid.cpp.o"
  "CMakeFiles/test_perf.dir/perf/test_hybrid.cpp.o.d"
  "CMakeFiles/test_perf.dir/perf/test_kernel_profile.cpp.o"
  "CMakeFiles/test_perf.dir/perf/test_kernel_profile.cpp.o.d"
  "CMakeFiles/test_perf.dir/perf/test_proginf.cpp.o"
  "CMakeFiles/test_perf.dir/perf/test_proginf.cpp.o.d"
  "test_perf"
  "test_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

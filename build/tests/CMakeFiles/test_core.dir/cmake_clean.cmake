file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_decomposition.cpp.o"
  "CMakeFiles/test_core.dir/core/test_decomposition.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_distributed_solver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_distributed_solver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_halo.cpp.o"
  "CMakeFiles/test_core.dir/core/test_halo.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ownership.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ownership.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_parallel_sweep.cpp.o"
  "CMakeFiles/test_core.dir/core/test_parallel_sweep.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_serial_solver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_serial_solver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_simulation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_simulation.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

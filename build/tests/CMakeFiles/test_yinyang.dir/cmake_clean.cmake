file(REMOVE_RECURSE
  "CMakeFiles/test_yinyang.dir/yinyang/test_dissection.cpp.o"
  "CMakeFiles/test_yinyang.dir/yinyang/test_dissection.cpp.o.d"
  "CMakeFiles/test_yinyang.dir/yinyang/test_geometry.cpp.o"
  "CMakeFiles/test_yinyang.dir/yinyang/test_geometry.cpp.o.d"
  "CMakeFiles/test_yinyang.dir/yinyang/test_interpolator.cpp.o"
  "CMakeFiles/test_yinyang.dir/yinyang/test_interpolator.cpp.o.d"
  "CMakeFiles/test_yinyang.dir/yinyang/test_transform.cpp.o"
  "CMakeFiles/test_yinyang.dir/yinyang/test_transform.cpp.o.d"
  "test_yinyang"
  "test_yinyang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yinyang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

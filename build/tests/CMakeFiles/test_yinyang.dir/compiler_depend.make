# Empty compiler generated dependencies file for test_yinyang.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_grid.dir/grid/test_fd_convergence.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_fd_convergence.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_fd_ops.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_fd_ops.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_spherical_grid.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_spherical_grid.cpp.o.d"
  "test_grid"
  "test_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_io.dir/io/test_checkpoint.cpp.o"
  "CMakeFiles/test_io.dir/io/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_fieldline.cpp.o"
  "CMakeFiles/test_io.dir/io/test_fieldline.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_gauss.cpp.o"
  "CMakeFiles/test_io.dir/io/test_gauss.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_meridional.cpp.o"
  "CMakeFiles/test_io.dir/io/test_meridional.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_sampler.cpp.o"
  "CMakeFiles/test_io.dir/io/test_sampler.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_slice.cpp.o"
  "CMakeFiles/test_io.dir/io/test_slice.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_spectrum.cpp.o"
  "CMakeFiles/test_io.dir/io/test_spectrum.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_vtk.cpp.o"
  "CMakeFiles/test_io.dir/io/test_vtk.cpp.o.d"
  "test_io"
  "test_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_mhd.
# This may be replaced when dependencies are built.

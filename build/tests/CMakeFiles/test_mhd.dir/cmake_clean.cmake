file(REMOVE_RECURSE
  "CMakeFiles/test_mhd.dir/mhd/test_boundary.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_boundary.cpp.o.d"
  "CMakeFiles/test_mhd.dir/mhd/test_derived.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_derived.cpp.o.d"
  "CMakeFiles/test_mhd.dir/mhd/test_diagnostics.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_diagnostics.cpp.o.d"
  "CMakeFiles/test_mhd.dir/mhd/test_init.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_init.cpp.o.d"
  "CMakeFiles/test_mhd.dir/mhd/test_integrator.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_integrator.cpp.o.d"
  "CMakeFiles/test_mhd.dir/mhd/test_rhs.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_rhs.cpp.o.d"
  "CMakeFiles/test_mhd.dir/mhd/test_state.cpp.o"
  "CMakeFiles/test_mhd.dir/mhd/test_state.cpp.o.d"
  "test_mhd"
  "test_mhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for yy_mhd.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/boundary.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/boundary.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/boundary.cpp.o.d"
  "/root/repo/src/mhd/derived.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/derived.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/derived.cpp.o.d"
  "/root/repo/src/mhd/diagnostics.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/diagnostics.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/diagnostics.cpp.o.d"
  "/root/repo/src/mhd/init.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/init.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/init.cpp.o.d"
  "/root/repo/src/mhd/integrator.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/integrator.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/integrator.cpp.o.d"
  "/root/repo/src/mhd/rhs.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/rhs.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/rhs.cpp.o.d"
  "/root/repo/src/mhd/rk4.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/rk4.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/rk4.cpp.o.d"
  "/root/repo/src/mhd/state.cpp" "src/mhd/CMakeFiles/yy_mhd.dir/state.cpp.o" "gcc" "src/mhd/CMakeFiles/yy_mhd.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/yy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/yy_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libyy_mhd.a"
)

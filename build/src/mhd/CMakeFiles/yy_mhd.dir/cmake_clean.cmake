file(REMOVE_RECURSE
  "CMakeFiles/yy_mhd.dir/boundary.cpp.o"
  "CMakeFiles/yy_mhd.dir/boundary.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/derived.cpp.o"
  "CMakeFiles/yy_mhd.dir/derived.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/diagnostics.cpp.o"
  "CMakeFiles/yy_mhd.dir/diagnostics.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/init.cpp.o"
  "CMakeFiles/yy_mhd.dir/init.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/integrator.cpp.o"
  "CMakeFiles/yy_mhd.dir/integrator.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/rhs.cpp.o"
  "CMakeFiles/yy_mhd.dir/rhs.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/rk4.cpp.o"
  "CMakeFiles/yy_mhd.dir/rk4.cpp.o.d"
  "CMakeFiles/yy_mhd.dir/state.cpp.o"
  "CMakeFiles/yy_mhd.dir/state.cpp.o.d"
  "libyy_mhd.a"
  "libyy_mhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_mhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for yy_comm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/yy_comm.dir/cart.cpp.o"
  "CMakeFiles/yy_comm.dir/cart.cpp.o.d"
  "CMakeFiles/yy_comm.dir/communicator.cpp.o"
  "CMakeFiles/yy_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/yy_comm.dir/runtime.cpp.o"
  "CMakeFiles/yy_comm.dir/runtime.cpp.o.d"
  "libyy_comm.a"
  "libyy_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

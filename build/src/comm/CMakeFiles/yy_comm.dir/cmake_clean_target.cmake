file(REMOVE_RECURSE
  "libyy_comm.a"
)

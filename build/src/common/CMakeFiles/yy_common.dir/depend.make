# Empty dependencies file for yy_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libyy_common.a"
)

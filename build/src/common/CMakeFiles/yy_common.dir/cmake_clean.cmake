file(REMOVE_RECURSE
  "CMakeFiles/yy_common.dir/csv.cpp.o"
  "CMakeFiles/yy_common.dir/csv.cpp.o.d"
  "CMakeFiles/yy_common.dir/flops.cpp.o"
  "CMakeFiles/yy_common.dir/flops.cpp.o.d"
  "CMakeFiles/yy_common.dir/ppm.cpp.o"
  "CMakeFiles/yy_common.dir/ppm.cpp.o.d"
  "libyy_common.a"
  "libyy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

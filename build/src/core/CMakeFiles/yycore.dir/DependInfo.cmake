
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distributed_solver.cpp" "src/core/CMakeFiles/yycore.dir/distributed_solver.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/distributed_solver.cpp.o.d"
  "/root/repo/src/core/halo.cpp" "src/core/CMakeFiles/yycore.dir/halo.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/halo.cpp.o.d"
  "/root/repo/src/core/overset_exchange.cpp" "src/core/CMakeFiles/yycore.dir/overset_exchange.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/overset_exchange.cpp.o.d"
  "/root/repo/src/core/ownership.cpp" "src/core/CMakeFiles/yycore.dir/ownership.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/ownership.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/yycore.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/runner.cpp.o.d"
  "/root/repo/src/core/serial_solver.cpp" "src/core/CMakeFiles/yycore.dir/serial_solver.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/serial_solver.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/yycore.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/yycore.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/yy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/yy_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/yy_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/yinyang/CMakeFiles/yy_yinyang.dir/DependInfo.cmake"
  "/root/repo/build/src/mhd/CMakeFiles/yy_mhd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for yycore.
# This may be replaced when dependencies are built.

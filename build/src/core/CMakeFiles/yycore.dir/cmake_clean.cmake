file(REMOVE_RECURSE
  "CMakeFiles/yycore.dir/distributed_solver.cpp.o"
  "CMakeFiles/yycore.dir/distributed_solver.cpp.o.d"
  "CMakeFiles/yycore.dir/halo.cpp.o"
  "CMakeFiles/yycore.dir/halo.cpp.o.d"
  "CMakeFiles/yycore.dir/overset_exchange.cpp.o"
  "CMakeFiles/yycore.dir/overset_exchange.cpp.o.d"
  "CMakeFiles/yycore.dir/ownership.cpp.o"
  "CMakeFiles/yycore.dir/ownership.cpp.o.d"
  "CMakeFiles/yycore.dir/runner.cpp.o"
  "CMakeFiles/yycore.dir/runner.cpp.o.d"
  "CMakeFiles/yycore.dir/serial_solver.cpp.o"
  "CMakeFiles/yycore.dir/serial_solver.cpp.o.d"
  "CMakeFiles/yycore.dir/simulation.cpp.o"
  "CMakeFiles/yycore.dir/simulation.cpp.o.d"
  "libyycore.a"
  "libyycore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yycore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

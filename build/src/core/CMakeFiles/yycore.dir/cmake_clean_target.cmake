file(REMOVE_RECURSE
  "libyycore.a"
)

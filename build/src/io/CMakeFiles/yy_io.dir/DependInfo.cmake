
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/checkpoint.cpp" "src/io/CMakeFiles/yy_io.dir/checkpoint.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/checkpoint.cpp.o.d"
  "/root/repo/src/io/fieldline.cpp" "src/io/CMakeFiles/yy_io.dir/fieldline.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/fieldline.cpp.o.d"
  "/root/repo/src/io/gauss.cpp" "src/io/CMakeFiles/yy_io.dir/gauss.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/gauss.cpp.o.d"
  "/root/repo/src/io/slice.cpp" "src/io/CMakeFiles/yy_io.dir/slice.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/slice.cpp.o.d"
  "/root/repo/src/io/spectrum.cpp" "src/io/CMakeFiles/yy_io.dir/spectrum.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/spectrum.cpp.o.d"
  "/root/repo/src/io/sphere_sampler.cpp" "src/io/CMakeFiles/yy_io.dir/sphere_sampler.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/sphere_sampler.cpp.o.d"
  "/root/repo/src/io/vtk.cpp" "src/io/CMakeFiles/yy_io.dir/vtk.cpp.o" "gcc" "src/io/CMakeFiles/yy_io.dir/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/yy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/yy_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/yinyang/CMakeFiles/yy_yinyang.dir/DependInfo.cmake"
  "/root/repo/build/src/mhd/CMakeFiles/yy_mhd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for yy_io.
# This may be replaced when dependencies are built.

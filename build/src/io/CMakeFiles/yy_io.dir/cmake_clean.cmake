file(REMOVE_RECURSE
  "CMakeFiles/yy_io.dir/checkpoint.cpp.o"
  "CMakeFiles/yy_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/yy_io.dir/fieldline.cpp.o"
  "CMakeFiles/yy_io.dir/fieldline.cpp.o.d"
  "CMakeFiles/yy_io.dir/gauss.cpp.o"
  "CMakeFiles/yy_io.dir/gauss.cpp.o.d"
  "CMakeFiles/yy_io.dir/slice.cpp.o"
  "CMakeFiles/yy_io.dir/slice.cpp.o.d"
  "CMakeFiles/yy_io.dir/spectrum.cpp.o"
  "CMakeFiles/yy_io.dir/spectrum.cpp.o.d"
  "CMakeFiles/yy_io.dir/sphere_sampler.cpp.o"
  "CMakeFiles/yy_io.dir/sphere_sampler.cpp.o.d"
  "CMakeFiles/yy_io.dir/vtk.cpp.o"
  "CMakeFiles/yy_io.dir/vtk.cpp.o.d"
  "libyy_io.a"
  "libyy_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

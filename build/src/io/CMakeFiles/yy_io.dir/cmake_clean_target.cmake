file(REMOVE_RECURSE
  "libyy_io.a"
)

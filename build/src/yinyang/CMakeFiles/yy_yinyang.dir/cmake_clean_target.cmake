file(REMOVE_RECURSE
  "libyy_yinyang.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/yy_yinyang.dir/dissection.cpp.o"
  "CMakeFiles/yy_yinyang.dir/dissection.cpp.o.d"
  "CMakeFiles/yy_yinyang.dir/geometry.cpp.o"
  "CMakeFiles/yy_yinyang.dir/geometry.cpp.o.d"
  "CMakeFiles/yy_yinyang.dir/interpolator.cpp.o"
  "CMakeFiles/yy_yinyang.dir/interpolator.cpp.o.d"
  "CMakeFiles/yy_yinyang.dir/transform.cpp.o"
  "CMakeFiles/yy_yinyang.dir/transform.cpp.o.d"
  "libyy_yinyang.a"
  "libyy_yinyang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_yinyang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

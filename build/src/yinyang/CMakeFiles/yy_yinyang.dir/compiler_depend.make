# Empty compiler generated dependencies file for yy_yinyang.
# This may be replaced when dependencies are built.

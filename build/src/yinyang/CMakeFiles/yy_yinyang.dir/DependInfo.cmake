
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yinyang/dissection.cpp" "src/yinyang/CMakeFiles/yy_yinyang.dir/dissection.cpp.o" "gcc" "src/yinyang/CMakeFiles/yy_yinyang.dir/dissection.cpp.o.d"
  "/root/repo/src/yinyang/geometry.cpp" "src/yinyang/CMakeFiles/yy_yinyang.dir/geometry.cpp.o" "gcc" "src/yinyang/CMakeFiles/yy_yinyang.dir/geometry.cpp.o.d"
  "/root/repo/src/yinyang/interpolator.cpp" "src/yinyang/CMakeFiles/yy_yinyang.dir/interpolator.cpp.o" "gcc" "src/yinyang/CMakeFiles/yy_yinyang.dir/interpolator.cpp.o.d"
  "/root/repo/src/yinyang/transform.cpp" "src/yinyang/CMakeFiles/yy_yinyang.dir/transform.cpp.o" "gcc" "src/yinyang/CMakeFiles/yy_yinyang.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/yy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/yy_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

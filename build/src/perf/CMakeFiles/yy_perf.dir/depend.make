# Empty dependencies file for yy_perf.
# This may be replaced when dependencies are built.

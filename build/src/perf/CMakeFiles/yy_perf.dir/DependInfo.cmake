
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/es_model.cpp" "src/perf/CMakeFiles/yy_perf.dir/es_model.cpp.o" "gcc" "src/perf/CMakeFiles/yy_perf.dir/es_model.cpp.o.d"
  "/root/repo/src/perf/kernel_profile.cpp" "src/perf/CMakeFiles/yy_perf.dir/kernel_profile.cpp.o" "gcc" "src/perf/CMakeFiles/yy_perf.dir/kernel_profile.cpp.o.d"
  "/root/repo/src/perf/proginf.cpp" "src/perf/CMakeFiles/yy_perf.dir/proginf.cpp.o" "gcc" "src/perf/CMakeFiles/yy_perf.dir/proginf.cpp.o.d"
  "/root/repo/src/perf/sc_comparison.cpp" "src/perf/CMakeFiles/yy_perf.dir/sc_comparison.cpp.o" "gcc" "src/perf/CMakeFiles/yy_perf.dir/sc_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/yy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/yycore.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/yy_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/yinyang/CMakeFiles/yy_yinyang.dir/DependInfo.cmake"
  "/root/repo/build/src/mhd/CMakeFiles/yy_mhd.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/yy_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

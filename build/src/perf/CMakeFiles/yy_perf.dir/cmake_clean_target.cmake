file(REMOVE_RECURSE
  "libyy_perf.a"
)

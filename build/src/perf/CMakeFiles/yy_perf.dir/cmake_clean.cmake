file(REMOVE_RECURSE
  "CMakeFiles/yy_perf.dir/es_model.cpp.o"
  "CMakeFiles/yy_perf.dir/es_model.cpp.o.d"
  "CMakeFiles/yy_perf.dir/kernel_profile.cpp.o"
  "CMakeFiles/yy_perf.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/yy_perf.dir/proginf.cpp.o"
  "CMakeFiles/yy_perf.dir/proginf.cpp.o.d"
  "CMakeFiles/yy_perf.dir/sc_comparison.cpp.o"
  "CMakeFiles/yy_perf.dir/sc_comparison.cpp.o.d"
  "libyy_perf.a"
  "libyy_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for yy_latlon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libyy_latlon.a"
)

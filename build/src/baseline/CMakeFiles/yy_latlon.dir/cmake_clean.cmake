file(REMOVE_RECURSE
  "CMakeFiles/yy_latlon.dir/latlon_solver.cpp.o"
  "CMakeFiles/yy_latlon.dir/latlon_solver.cpp.o.d"
  "libyy_latlon.a"
  "libyy_latlon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_latlon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for yy_grid.
# This may be replaced when dependencies are built.

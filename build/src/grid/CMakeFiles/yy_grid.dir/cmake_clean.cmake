file(REMOVE_RECURSE
  "CMakeFiles/yy_grid.dir/fd_ops.cpp.o"
  "CMakeFiles/yy_grid.dir/fd_ops.cpp.o.d"
  "CMakeFiles/yy_grid.dir/spherical_grid.cpp.o"
  "CMakeFiles/yy_grid.dir/spherical_grid.cpp.o.d"
  "libyy_grid.a"
  "libyy_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yy_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

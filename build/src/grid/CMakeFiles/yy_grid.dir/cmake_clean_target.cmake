file(REMOVE_RECURSE
  "libyy_grid.a"
)

/// Records the perf-regression baselines the ROADMAP's "as fast as the
/// hardware allows" goal is measured against: runs the distributed
/// solver with telemetry plus the instrumented micro-kernel profile and
/// writes `BENCH_solver.json` / `BENCH_kernels.json` in the yy-bench-1
/// schema (bench_json.hpp).  `tools/bench_compare.py` diffs a fresh run
/// against the committed baselines with the tolerance bands recorded in
/// the files themselves; `tools/bench_baseline.sh` wraps both ends.
///
/// Usage: baseline_runner [--out DIR] [--steps N]
///
/// Pure-timing metrics (steps/sec, GFLOPS) carry wide tolerances so the
/// gate survives machine noise; structural metrics (flops per point,
/// spans per step, phase fractions) are tight — those only move when
/// the code changes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "common/flops.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/distributed_solver.hpp"
#include "core/serial_solver.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "perf/kernel_profile.hpp"
#include "perf/proginf.hpp"
#include "perf/roofline.hpp"
#include "resilience/sdc_audit.hpp"

#include "bench_json.hpp"

using namespace yy;

namespace {

constexpr int kPt = 1, kPp = 2;  // 2 panels x (1 x 2) = 4 ranks

core::SimulationConfig bench_config() {
  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

obs::RunManifest manifest_for(const char* mode, int steps,
                              const core::SimulationConfig& cfg) {
  obs::RunManifest man = obs::RunManifest::current_build();
  man.app = "baseline_runner";
  man.mode = mode;
  man.world = 2 * kPt * kPp;
  man.pt = kPt;
  man.pp = kPp;
  man.nr = cfg.nr;
  man.nt_core = cfg.nt_core;
  man.np_core = cfg.np_core;
  man.extra.emplace_back("steps", std::to_string(steps));
  return man;
}

bool write_doc(const std::string& path, const std::string& name,
               const obs::RunManifest& man,
               const std::vector<bench::BenchMetric>& metrics) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  bench::write_bench_json(f, name, man, metrics);
  std::printf("wrote %s\n", path.c_str());
  return f.good();
}

/// Total wait seconds per step on a skewed 4-rank run (2×1 per panel so
/// the θ-halo streams are live; a 3 ms delivery delay on both θ tags
/// skews every fill), summed over ranks and steps, divided by steps.
/// With cfg.overlap on, the stage fills post the exchange and sweep the
/// interior while the delayed envelopes are in flight, so this number
/// must come out strictly lower than the synchronous run's — the
/// overlap-efficiency regression gate (DESIGN.md §10).
double skewed_wait_per_step(bool overlap, int steps) {
  core::SimulationConfig cfg = bench_config();
  cfg.overlap = overlap;
  constexpr int pt = 2, pp = 1;
  const int world = 2 * pt * pp;

  auto plan = std::make_shared<comm::FaultPlan>();
  for (int tag : {100, 101}) {
    comm::FaultPlan::Rule r;
    r.kind = comm::FaultPlan::Kind::delay;
    r.tag = tag;
    r.max_count = 0;  // every θ-strip envelope
    r.delay_ms = 3;
    plan->add_rule(r);
  }

  obs::RunManifest man = obs::RunManifest::current_build();
  man.app = "baseline_runner";
  man.mode = overlap ? "skewed_overlap" : "skewed_sync";
  man.world = world;
  obs::TelemetrySink sink(man);
  obs::TraceRecorder rec;
  comm::Runtime rt(world);
  rt.install_fault_plan(plan);
  double wait_total = 0.0;
  std::mutex mu;
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, pt, pp);
    solver.initialize();
    const double dt = solver.stable_dt();
    obs::ScopedRankBind bind(rec, w.rank());
    obs::RankTelemetry tel(w, sink, {/*interval=*/steps, /*ring=*/1024,
                                     /*span_budget=*/0});
    solver.attach_telemetry(&tel);
    for (int i = 0; i < steps; ++i) solver.step(dt);
    tel.flush();
    double mine = 0.0;
    for (std::size_t i = 0; i < tel.ring().size(); ++i)
      mine += tel.ring().from_oldest(i).wait_seconds();
    std::lock_guard lock(mu);
    wait_total += mine;
  });
  rt.install_fault_plan(nullptr);
  return wait_total / steps;
}

/// Relative per-step cost of the SDC audit tier (DESIGN.md §15) on the
/// bench layout: the steady-state tax is the slab-CRC reference
/// refresh on audit-cadence steps plus the collective audit itself —
/// the same pattern ResilientRunner executes.  Measured additively
/// inside ONE run (audit seconds over pure stepping seconds) so
/// machine noise between two separate runs cannot masquerade as
/// overhead.
double sdc_audit_overhead(int steps) {
  const core::SimulationConfig cfg = bench_config();
  const int world = 2 * kPt * kPp;
  comm::Runtime rt(world);
  double overhead = 0.0;
  std::mutex mu;
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver solver(cfg, w, kPt, kPp);
    solver.initialize();
    const double dt = solver.stable_dt();
    resilience::SdcPolicy pol;
    pol.audit_interval = 5;
    resilience::SdcAuditor auditor(pol);
    auditor.refresh(solver);
    WallTimer loop;
    double audit_s = 0.0;
    for (int i = 0; i < steps; ++i) {
      solver.step(dt);
      if (!auditor.due(solver.steps_taken())) continue;
      WallTimer t;
      auditor.refresh(solver);
      auditor.audit(solver);
      audit_s += t.seconds();
    }
    const double wall = loop.seconds();
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      overhead = wall > audit_s ? audit_s / (wall - audit_s) : 0.0;
    }
  });
  return overhead;
}

bool run_solver_bench(const std::string& out_dir, int steps) {
  const core::SimulationConfig cfg = bench_config();
  const int world = 2 * kPt * kPp;

  obs::TraceRecorder rec;
  obs::RunManifest man = manifest_for("solver", steps, cfg);
  obs::TelemetrySink sink(man);
  comm::Runtime rt(world);
  double loop_wall = 0.0;
  std::mutex mu;

  rt.run([&](comm::Communicator& w) {
    obs::ScopedRankBind bind(rec, w.rank());
    core::DistributedSolver solver(cfg, w, kPt, kPp);
    solver.initialize();
    const double dt = solver.stable_dt();
    obs::RankTelemetry tel(w, sink, {/*interval=*/5, /*ring=*/1024,
                                     /*span_budget=*/0});
    solver.attach_telemetry(&tel);
    WallTimer t;
    for (int i = 0; i < steps; ++i) solver.step(dt);
    tel.flush();
    if (w.rank() == 0) {
      std::lock_guard lock(mu);
      loop_wall = t.seconds();
    }
  });

  const obs::MetricsSummary m = obs::collect_metrics(rec, rt.traffic_total());
  const double traced = m.traced_seconds();
  const double comp = m.phase(obs::Phase::rhs).seconds +
                      m.phase(obs::Phase::rk4_stage).seconds +
                      m.phase(obs::Phase::boundary).seconds;

  double imbalance_sum = 0.0;
  for (const obs::StepAgg& a : sink.series()) imbalance_sum += a.imbalance;
  const double imbalance_mean =
      sink.series().empty() ? 1.0
                            : imbalance_sum / static_cast<double>(
                                                  sink.series().size());

  // es_model drift at this process count: the predicted/measured share
  // ratio for the compute bucket (1.0 = this machine splits the step
  // exactly as the ES model says it should).
  const perf::EsPerformanceModel model(perf::EarthSimulatorSpec{},
                                       perf::EsCostParams{}, 3000.0);
  const perf::RunConfig rc{world, cfg.nr, cfg.nt_core, cfg.np_core,
                           perf::Parallelization::flat_mpi};
  double pred_over_meas_compute = 0.0;
  for (const perf::PhaseDriftRow& row : perf::phase_drift(m, model, rc))
    if (row.label == "compute") pred_over_meas_compute = row.pred_over_meas;

  std::uint64_t span_count = 0;
  for (const obs::RankMetrics& rm : m.ranks)
    for (const obs::PhaseMetrics& pm : rm.phase) span_count += pm.count;

  std::vector<bench::BenchMetric> metrics;
  // Timing: wide bands, machine noise dominates.
  metrics.push_back({"steps_per_sec",
                     loop_wall > 0.0 ? steps / loop_wall : 0.0, 0.60, 0.0,
                     "min"});
  // Structure: tight bands, these only move when the code changes.
  metrics.push_back({"spans_per_step",
                     static_cast<double>(span_count) / steps, 0.0, 2.0,
                     "band"});
  metrics.push_back({"compute_fraction", traced > 0.0 ? comp / traced : 0.0,
                     0.0, 0.20, "band"});
  metrics.push_back({"halo_fraction",
                     traced > 0.0
                         ? m.phase(obs::Phase::halo_wait).seconds / traced
                         : 0.0,
                     0.0, 0.15, "band"});
  metrics.push_back({"overset_fraction",
                     traced > 0.0
                         ? m.phase(obs::Phase::overset_wait).seconds / traced
                         : 0.0,
                     0.0, 0.15, "band"});
  // Thread ranks timeslicing real cores make wall-clock imbalance
  // noisy; only a large sustained jump should fail.
  metrics.push_back({"imbalance_mean", imbalance_mean, 0.0, 2.0, "max"});
  metrics.push_back({"es_pred_over_meas_compute", pred_over_meas_compute,
                     0.75, 0.0, "band"});

  // Overlap-efficiency gate: per-step wait on the skewed run, sync vs
  // overlapped.  The absolute numbers are dominated by the injected
  // 3 ms delays (deterministic), so the bands can be moderate; the
  // ratio is the real gate — its max bound is pinned strictly below
  // 1.0, so overlapped wait regressing to (or past) the synchronous
  // level always fails the comparison.
  const double wait_sync = skewed_wait_per_step(false, steps);
  const double wait_over = skewed_wait_per_step(true, steps);
  const double wait_ratio = wait_sync > 0.0 ? wait_over / wait_sync : 1.0;
  metrics.push_back({"wait_per_step_sync_skewed", wait_sync, 0.80, 0.0,
                     "band"});
  metrics.push_back({"wait_per_step_overlap_skewed", wait_over, 0.80, 0.0,
                     "max"});
  metrics.push_back({"overlap_wait_ratio", wait_ratio, 0.0,
                     std::max(0.05, 0.95 - wait_ratio), "max"});

  // SDC-audit overhead gate: the tol_abs pins the failure bound at 2%
  // (or recorded + 0.3 points once the recorded value nears the bound),
  // so the audit tier silently growing past its budget always fails.
  const double audit_tax = sdc_audit_overhead(steps);
  metrics.push_back({"sdc_audit_overhead", audit_tax, 0.0,
                     std::max(0.003, 0.02 - audit_tax), "max"});

  std::printf("solver: %.2f steps/s, imbalance %.2f, compute %.0f%%\n",
              steps / loop_wall, imbalance_mean,
              100.0 * (traced > 0.0 ? comp / traced : 0.0));
  std::printf("skewed wait/step: sync %.1f ms, overlap %.1f ms (ratio %.2f)\n",
              1e3 * wait_sync, 1e3 * wait_over, wait_ratio);
  std::printf("sdc audit overhead: %.2f%% of step time\n", 100.0 * audit_tax);
  return write_doc(out_dir + "/BENCH_solver.json", "solver", man, metrics);
}

bool run_kernel_bench(const std::string& out_dir) {
  // All three backends, same step: the SIMD lane sweep is the recorded
  // fast path; the fused scalar sweep and the reference chain are kept
  // alongside so both speedups are themselves gated metrics.
  const perf::KernelProfile ref = perf::KernelProfile::measure();
  const perf::KernelProfile fused =
      perf::KernelProfile::measure(17, 13, 37, /*fused_rhs=*/true);
  const perf::KernelProfile simd =
      perf::KernelProfile::measure(17, 13, 37, mhd::RhsBackend::simd);
  obs::RunManifest man = manifest_for("kernels", 1, bench_config());
  man.mode = "kernels";
  man.extra.emplace_back("rhs_backend", "simd");
  man.extra.emplace_back("simd_isa", simd::compiled_isa());
  man.extra.emplace_back("simd_width", std::to_string(simd.simd_width));

  // Measured-MPIPROGINF leg: an instrumented serial run with whatever
  // counter backend this host grants (perf_event where permitted, the
  // software charge counter otherwise — the manifest says which).
  obs::CounterGroup ctrs(obs::CounterGroup::config_from_env());
  man.counter_backend = obs::counter_backend_name(ctrs.backend());
  obs::TraceRecorder rec;
  std::uint64_t global_flops = 0;
  {
    obs::ScopedRankBind bind(rec, 0);
    obs::ScopedCounterBind cbind(ctrs);
    core::SimulationConfig cfg;
    cfg.nr = 17;
    cfg.nt_core = 13;
    cfg.np_core = 37;
    core::SerialYinYangSolver solver(cfg);
    solver.initialize();
    const double dt = solver.stable_dt();
    solver.step(dt);  // warm-up, outside the charged window
    flops::global_reset();
    for (int s = 0; s < 3; ++s) {
      obs::set_current_step(s);
      solver.step(dt);
    }
    global_flops = flops::global_count();
  }
  const perf::RooflineReport roof = perf::RooflineReport::build(
      obs::collect_metrics(rec), ctrs.backend(), global_flops);

  const double speedup =
      fused.seconds_per_point_per_step > 0.0
          ? ref.seconds_per_point_per_step / fused.seconds_per_point_per_step
          : 0.0;

  std::vector<bench::BenchMetric> metrics;
  // flops/point is a property of the numerics, not the machine: it
  // moves only when the stencils change, so the band is tight.  Both
  // backends charge identically (tests/mhd/test_rhs_fused.cpp pins
  // this), so one recorded value covers both.
  metrics.push_back(
      {"flops_per_point_per_step", fused.flops_per_point_per_step, 0.02, 0.0,
       "band"});
  metrics.push_back(
      {"local_gflops", fused.local_gflops, 0.60, 0.0, "min"});
  // Tightened from the pre-fused 1.50: the fused sweep both lowered
  // the value and cut its variance (no more whole-array scratch
  // traffic), so the band no longer needs to absorb cache noise.
  metrics.push_back({"seconds_per_point_per_step",
                     fused.seconds_per_point_per_step, 0.80, 0.0, "max"});
  metrics.push_back({"seconds_per_point_per_step_reference",
                     ref.seconds_per_point_per_step, 1.50, 0.0, "max"});
  // The fused-vs-reference gate: the tol_abs pins the lower bound at
  // 1.15, so the comparison fails whenever the fused sweep's advantage
  // drops below 15% regardless of the recorded value.
  metrics.push_back({"rhs_fused_speedup", speedup, 0.0,
                     std::max(0.05, speedup - 1.15), "min"});

  // The SIMD leg: same gate pattern against the fused *scalar* sweep,
  // floor pinned at 1.3× (ISSUE 9's acceptance bar) — the lane packs
  // must keep paying for themselves or the comparison fails.
  const double simd_speedup =
      simd.seconds_per_point_per_step > 0.0
          ? fused.seconds_per_point_per_step / simd.seconds_per_point_per_step
          : 0.0;
  metrics.push_back({"seconds_per_point_per_step_simd",
                     simd.seconds_per_point_per_step, 0.80, 0.0, "max"});
  metrics.push_back({"rhs_simd_speedup", simd_speedup, 0.0,
                     std::max(0.05, simd_speedup - 1.3), "min"});
  // Lane utilization of the timed SIMD step (analytic, so the bands are
  // tight): the measured counterpart of the ES model's vector columns.
  metrics.push_back({"simd_avg_vector_length", simd.simd_avg_vector_length,
                     0.02, 0.0, "band"});
  metrics.push_back({"simd_vector_coverage", simd.simd_vector_coverage, 0.02,
                     0.0, "band"});

  // Counter-derived gates.  The measured/charged flop ratio is exactly
  // 1.0 under the software backend (the measured column *is* the
  // charge) and must stay near 1.0 under perf_event — a real hardware
  // count drifting far from the analytic charge means either the
  // charge table or the kernels changed.
  const double flops_vs_charge =
      roof.total.charged_flops > 0
          ? static_cast<double>(roof.total.measured_flops()) /
                static_cast<double>(roof.total.charged_flops)
          : 0.0;
  metrics.push_back({"counter_flops_vs_charge", flops_vs_charge, 0.0, 0.25,
                     "band"});
  // Achieved GFlop/s over the traced phases: a timing metric, so a
  // wide min band like local_gflops.
  metrics.push_back({"counter_achieved_gflops", roof.total.achieved_gflops(),
                     0.60, 0.0, "min"});
  if (ctrs.backend() == obs::CounterBackend::perf_event) {
    // IPC floor: only meaningful (and only recorded) when real hardware
    // counters are available; the comparator skips metrics absent from
    // the baseline, so software-backend hosts stay consistent.
    metrics.push_back({"counter_ipc", roof.total.ipc(), 0.0,
                       std::max(0.25, 0.5 * roof.total.ipc()), "min"});
  }

  std::printf("counters: backend %s, measured/charged %.4f, %.2f GF/s\n",
              obs::counter_backend_name(ctrs.backend()), flops_vs_charge,
              roof.total.achieved_gflops());
  std::printf("%s", roof.format().c_str());
  std::printf("kernels: %.0f flops/point/step, %.2f GFLOPS local (fused)\n",
              fused.flops_per_point_per_step, fused.local_gflops);
  std::printf("rhs backends: reference %.3e s/pt/step, fused %.3e (x%.2f)\n",
              ref.seconds_per_point_per_step, fused.seconds_per_point_per_step,
              speedup);
  std::printf(
      "simd (%s, w=%d): %.3e s/pt/step (x%.2f over fused), avl %.2f, "
      "coverage %.0f%%\n",
      simd::compiled_isa(), simd.simd_width, simd.seconds_per_point_per_step,
      simd_speedup, simd.simd_avg_vector_length,
      100.0 * simd.simd_vector_coverage);
  return write_doc(out_dir + "/BENCH_kernels.json", "kernels", man, metrics);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  int steps = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR] [--steps N]\n", argv[0]);
      return 2;
    }
  }
  if (steps < 1) steps = 1;

  std::printf("== Perf-regression baseline run ============================\n");
  const bool ok = run_solver_bench(out_dir, steps) && run_kernel_bench(out_dir);
  return ok ? 0 : 1;
}

/// §II reproduction — the pole problem: "Due to the existence of the
/// coordinate singularity and grid convergence near the poles of the
/// latitude-longitude grid, we had to take special care at the poles
/// and this inevitably degraded the numerical efficiency".
///
/// Quantifies, at matched angular resolution, what the Yin-Yang grid
/// buys relative to the baseline lat-lon code this repository also
/// implements: the CFL timestep penalty from converging meridians, the
/// fraction of crowded columns, the grid-point budget, and the wasted
/// work — against the Yin-Yang grid's fixed ~6% overlap cost.
#include <cstdio>

#include "baseline/latlon_solver.hpp"
#include "common/timer.hpp"
#include "core/serial_solver.hpp"

using namespace yy;

int main() {
  std::printf("== Section II: lat-lon pole problem vs Yin-Yang =================\n\n");
  std::printf("%-14s %-12s %-12s %-12s %-12s %-10s\n", "resolution",
              "dt(latlon)", "dt(yinyang)", "dt ratio", "crowded", "pts ratio");

  for (int nt_ll : {24, 36, 48, 72}) {
    baseline::LatLonConfig lc;
    lc.nr = 9;
    lc.nt = nt_ll;
    lc.np = 2 * nt_ll;
    lc.eq.g0 = 2.0;
    lc.eq.omega = {0, 0, 8.0};
    baseline::LatLonSolver latlon(lc);
    latlon.initialize();
    const double dt_ll = latlon.stable_dt();

    // Yin-Yang at the same angular spacing: dθ = π/nt_ll.
    core::SimulationConfig yc;
    yc.nr = lc.nr;
    yc.nt_core = nt_ll / 2 + 1;
    yc.np_core = 3 * (nt_ll / 2) + 1;
    yc.eq = lc.eq;
    core::SerialYinYangSolver yy_solver(yc);
    yy_solver.initialize();
    const double dt_yy = yy_solver.stable_dt();

    const long long pts_ll = static_cast<long long>(lc.nr) * lc.nt * lc.np;
    const auto& geom = yy_solver.geometry();
    const long long pts_yy =
        2ll * yc.nr * geom.nt() * geom.np();
    char res[24];
    std::snprintf(res, sizeof res, "%dx%d", nt_ll, 2 * nt_ll);
    std::printf("%-14s %-12.2e %-12.2e %-12.2f %-11.0f%% %-10.2f\n", res, dt_ll,
                dt_yy, dt_yy / dt_ll, 100.0 * latlon.pole_crowding_fraction(),
                static_cast<double>(pts_yy) / pts_ll);
  }

  std::printf("\nThe dt ratio grows with resolution (the meridian spacing\n"
              "r*sin(theta)*dphi collapses near the poles), so the lat-lon\n"
              "code pays ever more steps per unit simulated time; the\n"
              "Yin-Yang grid also needs ~20%% fewer points at matched angular\n"
              "resolution, and its only overhead is the ~6%% overlap.\n\n");

  // Work-per-unit-time comparison at one resolution: steps/second of
  // wall clock x dt = simulated time per second.
  baseline::LatLonConfig lc;
  lc.nr = 9;
  lc.nt = 32;
  lc.np = 64;
  lc.eq.g0 = 2.0;
  lc.eq.omega = {0, 0, 8.0};
  baseline::LatLonSolver latlon(lc);
  latlon.initialize();
  core::SimulationConfig yc;
  yc.nr = 9;
  yc.nt_core = 17;
  yc.np_core = 49;
  yc.eq = lc.eq;
  core::SerialYinYangSolver yys(yc);
  yys.initialize();

  WallTimer t1;
  const double sim_ll = latlon.run_steps(30);
  const double wall_ll = t1.seconds();
  WallTimer t2;
  const double sim_yy = yys.run_steps(30);
  const double wall_yy = t2.seconds();
  std::printf("simulated-time throughput (30 steps each):\n");
  std::printf("  lat-lon : %.3e simulated / %.2fs wall = %.3e /s\n", sim_ll,
              wall_ll, sim_ll / wall_ll);
  std::printf("  yin-yang: %.3e simulated / %.2fs wall = %.3e /s  (%.1fx)\n",
              sim_yy, wall_yy, sim_yy / wall_yy,
              (sim_yy / wall_yy) / (sim_ll / wall_ll));
  return 0;
}

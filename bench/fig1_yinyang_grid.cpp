/// Fig. 1 reproduction — "Basic Yin-Yang grid.  The Yin grid and Yang
/// grid are combined to cover a spherical surface with partial overlap."
///
/// Prints the geometric facts the figure illustrates (coverage,
/// identical panels, ~6% overlap) across resolutions, and exports the
/// two component grids as CSV point clouds (yinyang_grid_{yin,yang}.csv,
/// global Cartesian coordinates) for plotting Fig. 1 directly.
#include <cstdio>

#include "common/csv.hpp"
#include "yinyang/geometry.hpp"
#include "yinyang/interpolator.hpp"
#include "yinyang/transform.hpp"

using namespace yy;
using yinyang::Angles;
using yinyang::ComponentGeometry;
using yinyang::Panel;

namespace {

void export_grid(const ComponentGeometry& g, Panel panel, const char* path) {
  CsvWriter csv(path, {"x", "y", "z", "theta", "phi"});
  for (int jt = 0; jt < g.nt(); ++jt) {
    for (int jp = 0; jp < g.np(); ++jp) {
      const Angles a{g.t_min() + jt * g.dt(), g.p_min() + jp * g.dp()};
      Vec3 pos = yinyang::position(a);
      if (panel == Panel::yang) pos = yinyang::axis_swap(pos);
      csv.row({pos.x, pos.y, pos.z, a.theta, a.phi});
    }
  }
  std::printf("  wrote %s (%d x %d nodes)\n", path, g.nt(), g.np());
}

}  // namespace

int main() {
  std::printf("== Fig. 1: the basic Yin-Yang grid =============================\n");
  std::printf("Component grid core span: colatitude [45deg, 135deg] (90deg),\n");
  std::printf("longitude [-135deg, 135deg] (270deg)  — paper Section II.\n\n");

  std::printf("Analytic minimal overlap ratio (infinitesimal mesh): %.4f  (paper: ~6%%)\n",
              ComponentGeometry::minimal_overlap_ratio());
  std::printf("Two core rectangles cover the sphere: %s (2e5 Monte-Carlo rays)\n\n",
              ComponentGeometry::covers_sphere(200000) ? "yes" : "NO — BUG");

  std::printf("%-12s %-10s %-10s %-12s %-12s %-14s\n", "nt x np", "margin_t",
              "margin_p", "overlap", "ghost cols", "donors interior");
  for (int nt : {13, 17, 25, 33, 65}) {
    const int np = 3 * nt - 2;  // matched angular resolution
    const ComponentGeometry g = ComponentGeometry::with_auto_margin(nt, np);
    const yinyang::OversetInterpolator interp(g);
    bool donors_ok = true;
    for (const auto& e : interp.entries()) {
      if (e.donor_jt < g.ghost() || e.donor_jp < g.ghost()) donors_ok = false;
    }
    char label[32];
    std::snprintf(label, sizeof label, "%dx%d", nt, np);
    std::printf("%-12s %-10d %-10d %-12.4f %-12zu %-14s\n", label, g.margin_t(),
                g.margin_p(), g.extended_overlap_ratio(), interp.entries().size(),
                donors_ok ? "yes" : "NO");
  }

  std::printf("\nThe two component grids are identical (same shape, size and\n");
  std::printf("metric); eq. (1) is an involution, so one interpolation table\n");
  std::printf("serves both directions (verified by the yinyang test suite).\n\n");

  const ComponentGeometry g = ComponentGeometry::with_auto_margin(17, 49);
  export_grid(g, Panel::yin, "yinyang_grid_yin.csv");
  export_grid(g, Panel::yang, "yinyang_grid_yang.csv");
  return 0;
}

/// §IV reproduction — the flat-MPI communication structure:
/// MPI_COMM_SPLIT divides the world into the Yin and Yang panels,
/// MPI_CART_CREATE builds the 2-D per-panel process grid whose
/// MPI_CART_SHIFT neighbours exchange halos, and the overset
/// interpolation crosses panels under the world communicator.
///
/// Runs the real distributed solver on an 8-rank world (2 panels x 2x2)
/// and reports the measured traffic, reproducing the paper's structural
/// claims (four neighbours each, inter-panel overset messages, ~10%
/// communication share at scale per the model).
#include <cstdio>
#include <mutex>

#include "comm/runtime.hpp"
#include "core/distributed_solver.hpp"
#include "perf/es_model.hpp"
#include "perf/kernel_profile.hpp"

using namespace yy;

int main() {
  std::printf("== Section IV: flat-MPI parallelization structure ==============\n\n");
  core::SimulationConfig cfg;
  cfg.nr = 9;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 8.0};

  constexpr int pt = 2, pp = 2;
  comm::Runtime rt(2 * pt * pp);
  std::mutex mu;
  rt.run([&](comm::Communicator& w) {
    core::DistributedSolver d(cfg, w, pt, pp);
    d.initialize();
    d.step(d.stable_dt());
    std::lock_guard lock(mu);
    if (d.runner().panel_rank() == 0 && d.runner().panel() == yinyang::Panel::yin) {
      std::printf("world size %d -> MPI_COMM_SPLIT -> 2 panels of %d ranks\n",
                  w.size(), d.runner().panel_comm().size());
      std::printf("MPI_CART_CREATE per panel: %d x %d (theta x phi)\n\n", pt, pp);
    }
    const auto [tlow, thigh] = d.runner().cart().shift(0, 1);
    const auto [plow, phigh] = d.runner().cart().shift(1, 1);
    int neighbours = 0;
    for (int r : {tlow, thigh, plow, phigh})
      if (r != comm::proc_null) ++neighbours;
    std::printf("rank %d [%s panel, cart (%d,%d)]: %d cart neighbours, halo "
                "%.1f KB/fill, overset -> %d partner ranks, %.1f KB/fill\n",
                w.rank(), name(d.runner().panel()), d.runner().cart().coord(0),
                d.runner().cart().coord(1), neighbours,
                d.halo().bytes_per_exchange() / 1024.0,
                d.overset().send_partner_count(),
                d.overset().bytes_sent_per_exchange() / 1024.0);
  });

  const auto total = rt.traffic_total();
  std::printf("\nmeasured world traffic (init + 1 RK4 step = 5 ghost fills):\n");
  std::printf("  %llu messages, %.2f MB\n",
              static_cast<unsigned long long>(total.messages),
              total.bytes / 1048576.0);

  const perf::KernelProfile prof = perf::KernelProfile::measure();
  const perf::EsPerformanceModel model(perf::EarthSimulatorSpec{},
                                       perf::EsCostParams{},
                                       prof.flops_per_point_per_step);
  const perf::ModelResult m = model.predict(perf::kTable2Configs[0]);
  std::printf("\nES model at the flagship 4096-process configuration:\n");
  std::printf("  communication share of a step: %.0f%% (paper: ~10%%)\n",
              m.comm_fraction * 100.0);
  std::printf("  vector operation ratio:        %.1f%% (paper: 99%%)\n",
              m.vec_op_ratio * 100.0);
  std::printf("  average vector length:         %.1f (paper: 251.6)\n",
              m.avg_vector_length);
  return 0;
}

/// Ablation studies on the Earth Simulator model — the design-choice
/// sweeps DESIGN.md calls out:
///  (a) vector-length: efficiency vs radial grid size (the paper's
///      255-vs-511 effect, §IV: "the radial grid size is 255 or 511,
///      which is just below the size (or doubled size) of the vector
///      register"), swept over nr with a CSV series;
///  (b) flat MPI vs hybrid microtasking (§IV, citing Nakajima): the
///      efficiency crossover as the per-process problem size grows;
///  (c) strong scaling of the flagship grid far beyond the paper's six
///      rows (the implicit "figure" behind Table II).
#include <cstdio>

#include "common/csv.hpp"
#include "perf/es_model.hpp"
#include "perf/kernel_profile.hpp"

using namespace yy::perf;

int main() {
  const KernelProfile prof = KernelProfile::measure();
  const EsPerformanceModel model(EarthSimulatorSpec{}, EsCostParams{},
                                 prof.flops_per_point_per_step);

  std::printf("== Ablation (a): vector length — efficiency vs radial size ====\n");
  std::printf("%-6s %-10s %-10s %-8s\n", "nr", "avg.VL", "Tflops", "eff.");
  {
    yy::CsvWriter csv("ablation_vector_length.csv",
                      {"nr", "avg_vector_length", "tflops", "efficiency"});
    for (int nr : {63, 127, 191, 255, 383, 511, 767, 1023}) {
      const ModelResult m = model.predict({4096, nr, 514, 1538});
      csv.row({static_cast<double>(nr), m.avg_vector_length, m.tflops,
               m.efficiency});
      std::printf("%-6d %-10.1f %-10.2f %-7.1f%%\n", nr, m.avg_vector_length,
                  m.tflops, m.efficiency * 100);
    }
  }
  std::printf("(251-ish average vector lengths — register-filling radial\n"
              " loops — sit at the efficiency plateau, the paper's choice)\n\n");

  std::printf("== Ablation (b): flat MPI vs hybrid microtasking ===============\n");
  std::printf("%-18s %-12s %-12s %s\n", "grid (nt x np)", "flat eff.",
              "hybrid eff.", "winner");
  {
    yy::CsvWriter csv("ablation_parallelization.csv",
                      {"nt", "np", "eff_flat", "eff_hybrid"});
    const int scales[][2] = {{130, 386}, {258, 770}, {514, 1538}, {1028, 3076}};
    for (const auto& sc : scales) {
      RunConfig flat{4096, 255, sc[0], sc[1]};
      RunConfig hyb = flat;
      hyb.parallelization = Parallelization::hybrid_microtask;
      const double ef = model.predict(flat).efficiency;
      const double eh = model.predict(hyb).efficiency;
      csv.row({static_cast<double>(sc[0]), static_cast<double>(sc[1]), ef, eh});
      char label[32];
      std::snprintf(label, sizeof label, "%dx%d", sc[0], sc[1]);
      std::printf("%-18s %-11.1f%% %-11.1f%% %s\n", label, ef * 100, eh * 100,
                  eh > ef ? "hybrid" : "flat MPI");
    }
  }
  std::printf("(flat MPI catches up as the problem grows — the paper's point\n"
              " that yycore reaches high performance at relatively low mesh\n"
              " sizes is what makes flat MPI viable for it)\n\n");

  std::printf("== Ablation (c): strong scaling of the flagship grid ==========\n");
  std::printf("%-8s %-10s %-8s %-8s\n", "procs", "Tflops", "eff.", "comm%%");
  {
    yy::CsvWriter csv("ablation_strong_scaling.csv",
                      {"processors", "tflops", "efficiency", "comm_fraction"});
    for (int p : {256, 512, 1024, 2048, 4096, 5120}) {
      const ModelResult m = model.predict({p, 511, 514, 1538});
      csv.row({static_cast<double>(p), m.tflops, m.efficiency,
               m.comm_fraction});
      std::printf("%-8d %-10.2f %-7.1f%% %-7.0f%%\n", p, m.tflops,
                  m.efficiency * 100, m.comm_fraction * 100);
    }
  }
  std::printf("wrote ablation_vector_length.csv, ablation_parallelization.csv,"
              "\nablation_strong_scaling.csv\n");
  return 0;
}

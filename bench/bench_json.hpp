/// \file bench_json.hpp
/// The machine-readable benchmark-result schema ("yy-bench-1") shared
/// by bench/baseline_runner, bench/obs_overhead and the comparator
/// tools/bench_compare.py.  One document per bench:
///
///   {"schema":"yy-bench-1","name":"solver","manifest":{...},
///    "metrics":{"steps_per_sec":{"value":12.3,"tol_rel":0.5,
///               "direction":"min"}, ...}}
///
/// Each metric carries its own tolerance band, recorded at baseline
/// time, so the comparator needs no external configuration:
///   direction "min"  — higher is better; regression if
///                      current < value - allowed
///   direction "max"  — lower is better; regression if
///                      current > value + allowed
///   direction "band" — drift either way beyond `allowed` fails
/// with allowed = max(tol_abs, |value| * tol_rel).
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace yy::bench {

struct BenchMetric {
  std::string name;
  double value = 0.0;
  double tol_rel = 0.0;
  double tol_abs = 0.0;
  const char* direction = "band";  ///< "min", "max" or "band"
};

inline void write_bench_json(std::ostream& out, const std::string& name,
                             const obs::RunManifest& manifest,
                             const std::vector<BenchMetric>& metrics) {
  out << "{\"schema\":\"yy-bench-1\",\"name\":\"" << name
      << "\",\"manifest\":";
  manifest.write_json(out);
  out << ",\"metrics\":{";
  char buf[256];
  bool first = true;
  for (const BenchMetric& m : metrics) {
    if (!first) out << ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\n\"%s\":{\"value\":%.9e,\"tol_rel\":%.4f,"
                  "\"tol_abs\":%.9e,\"direction\":\"%s\"}",
                  m.name.c_str(), m.value, m.tol_rel, m.tol_abs, m.direction);
    out << buf;
  }
  out << "\n}}\n";
}

}  // namespace yy::bench

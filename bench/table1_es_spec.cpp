/// Table I reproduction — "Specifications of the Earth Simulator."
/// The constants drive the performance model; this binary prints them
/// in the paper's layout together with the derived totals.
#include <cstdio>

#include "perf/es_spec.hpp"

int main() {
  const yy::perf::EarthSimulatorSpec spec;
  std::printf("== Table I: Specifications of the Earth Simulator ==============\n");
  std::printf("Peak performance of arithmetic processor (AP)  %g Gflops\n",
              spec.ap_peak_gflops);
  std::printf("Number of AP in a processor node (PN)          %d\n",
              spec.aps_per_node);
  std::printf("Total number of PN                             %d\n",
              spec.total_nodes);
  std::printf("Total number of AP                             %d AP x %d PN = %d\n",
              spec.aps_per_node, spec.total_nodes, spec.total_aps());
  std::printf("Shared memory size of PN                       %g GB\n",
              spec.node_memory_gb);
  std::printf("Total peak performance                         %g Gflops x %d AP = %.0f Tflops\n",
              spec.ap_peak_gflops, spec.total_aps(), spec.total_peak_tflops());
  std::printf("Total main memory                              %.0f TB\n",
              spec.total_memory_tb());
  std::printf("Inter-node data transfer rate                  %g GB/s x 2\n",
              spec.internode_bw_gbs);
  std::printf("Vector register length                         %d elements\n",
              spec.vector_register_length);
  return 0;
}

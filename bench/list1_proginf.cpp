/// List 1 reproduction — "An example of MPIPROGINF output."
/// On the Earth Simulator this report came from hardware counters; here
/// both sides are printed: the *emulated* report (the performance model
/// driven by the measured kernel profile, formatted like the paper's
/// listing for the flagship 4096-process run) and the *measured* one —
/// an instrumented serial run with per-phase performance counters
/// (obs/hwcounters) joined against the analytic flop charges in a
/// roofline attribution table.
#include <cstdio>

#include "common/flops.hpp"
#include "common/simd.hpp"
#include "core/serial_solver.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/kernel_profile.hpp"
#include "perf/proginf.hpp"
#include "perf/roofline.hpp"

using namespace yy;
using namespace yy::perf;

namespace {

/// Instrumented serial run: spans + counter deltas for a few steps.
obs::MetricsSummary measured_run(obs::CounterGroup& ctrs,
                                 std::uint64_t* global_flops, int steps = 4) {
  static obs::TraceRecorder rec;  // outlives the returned summary's spans
  obs::ScopedRankBind bind(rec, 0);
  obs::ScopedCounterBind cbind(ctrs);

  core::SimulationConfig cfg;
  cfg.nr = 17;
  cfg.nt_core = 13;
  cfg.np_core = 37;
  cfg.eq.omega = {0.0, 0.0, 5.0};
  core::SerialYinYangSolver solver(cfg);
  solver.initialize();
  const double dt = solver.stable_dt();
  flops::global_reset();
  for (int s = 0; s < steps; ++s) {
    obs::set_current_step(s);
    solver.step(dt);
  }
  *global_flops = flops::global_count();
  return obs::collect_metrics(rec);
}

}  // namespace

int main() {
  const KernelProfile prof = KernelProfile::measure();
  const EsPerformanceModel model(EarthSimulatorSpec{}, EsCostParams{},
                                 prof.flops_per_point_per_step);
  std::printf("== List 1: MPIPROGINF-style report (modeled) ===================\n\n");
  std::printf("%s\n", format_proginf(model, kTable2Configs[0]).c_str());

  obs::CounterGroup ctrs(obs::CounterGroup::config_from_env());
  std::uint64_t global_flops = 0;
  const obs::MetricsSummary m = measured_run(ctrs, &global_flops);
  std::printf("== Measured MPIPROGINF (instrumented serial run) ===============\n");
  std::printf("counter backend: %s\n\n", ctrs.backend_detail().c_str());
  std::printf("%s\n", format_measured_proginf(m).c_str());
  std::printf("%s\n",
              RooflineReport::build(m, ctrs.backend(), global_flops)
                  .format()
                  .c_str());

  // List 1's vector columns, closed measured: the ES model's modeled
  // Average Vector Length / Vector Operation Ratio against the lane
  // utilization the SIMD backend actually achieved on this host.
  const KernelProfile simd_prof =
      KernelProfile::measure(17, 13, 37, mhd::RhsBackend::simd);
  MeasuredLaneProfile lanes;
  lanes.width = simd_prof.simd_width;
  lanes.avg_vector_length = simd_prof.simd_avg_vector_length;
  lanes.vector_coverage = simd_prof.simd_vector_coverage;
  std::printf("== Vector columns: modeled vs measured (simd backend, %s) ======\n\n",
              simd::compiled_isa());
  std::printf("%s\n",
              format_lane_report(model, kTable2Configs[0], lanes).c_str());
  return 0;
}

/// List 1 reproduction — "An example of MPIPROGINF output."
/// On the Earth Simulator this report came from hardware counters; here
/// the same quantities derive from the performance model driven by the
/// measured kernel profile, formatted like the paper's listing for the
/// flagship 4096-process run.
#include <cstdio>

#include "perf/kernel_profile.hpp"
#include "perf/proginf.hpp"

using namespace yy::perf;

int main() {
  const KernelProfile prof = KernelProfile::measure();
  const EsPerformanceModel model(EarthSimulatorSpec{}, EsCostParams{},
                                 prof.flops_per_point_per_step);
  std::printf("== List 1: MPIPROGINF-style report (modeled) ===================\n\n");
  std::printf("%s\n", format_proginf(model, kTable2Configs[0]).c_str());
  return 0;
}

/// Table II reproduction — "Performance achieved by the yycore code on
/// the Earth Simulator."
///
/// The pipeline mirrors how the paper's numbers arise:
///  1. measure the real flops-per-grid-point-per-step of THIS
///     repository's yycore kernels (software counter standing in for
///     the ES hardware counter);
///  2. feed it to the Earth Simulator model (Table I machine constants
///     + calibrated cost parameters, see src/perf/es_model.hpp);
///  3. evaluate the paper's six (processors, grid) configurations.
///
/// Absolute Tflops are model outputs, but the *shape* — Tflops rising
/// with processors, efficiency falling, the 511-radial grid beating the
/// 255-radial grid, the ~2.8x flagship-to-smallest factor — follows
/// from the measured kernel and the decomposition geometry.
#include <cstdio>
#include <iterator>
#include <string>

#include "perf/es_model.hpp"
#include "perf/kernel_profile.hpp"

using namespace yy::perf;

int main() {
  std::printf("== Table II: yycore performance on the Earth Simulator =========\n\n");
  const KernelProfile prof = KernelProfile::measure();
  std::printf("measured kernel: %.0f flops/gridpoint/step "
              "(workstation: %.2f Gflops sustained)\n\n",
              prof.flops_per_point_per_step, prof.local_gflops);

  const EsPerformanceModel model(EarthSimulatorSpec{}, EsCostParams{},
                                 prof.flops_per_point_per_step);

  std::printf("%-6s %-22s | %-8s %-6s | %-8s %-6s | %-6s %-7s\n", "procs",
              "grid points", "Tflops", "eff.", "paper-T", "eff.", "comm%",
              "avg.VL");
  std::printf("%s\n", std::string(86, '-').c_str());
  for (std::size_t i = 0; i < std::size(kTable2Configs); ++i) {
    const RunConfig& rc = kTable2Configs[i];
    const ModelResult m = model.predict(rc);
    char grid[40];
    std::snprintf(grid, sizeof grid, "%dx%dx%dx2", rc.nr, rc.nt, rc.np);
    std::printf("%-6d %-22s | %-8.1f %-5.0f%% | %-8.1f %-5.0f%% | %-6.0f %-7.1f\n",
                rc.processors, grid, m.tflops, m.efficiency * 100.0,
                kTable2Reported[i].tflops, kTable2Reported[i].efficiency * 100,
                m.comm_fraction * 100.0, m.avg_vector_length);
  }

  const ModelResult flag = model.predict(kTable2Configs[0]);
  std::printf("\nflagship check: %.1f Tflops = %.0f%% of %d x 8 Gflops peak "
              "(paper: 15.2 Tflops, 46%%)\n",
              flag.tflops, flag.efficiency * 100.0,
              kTable2Configs[0].processors);
  std::printf("vector operation ratio %.2f%% (paper: 99%%), "
              "average vector length %.1f (paper: 251.6)\n",
              flag.vec_op_ratio * 100.0, flag.avg_vector_length);
  std::printf("memory per process: %.0f MB x 8 AP/node -> %s the 16 GB node "
              "(List 1 reported ~1.1 GB/proc incl. visualization arrays)\n",
              flag.memory_per_process_mb,
              flag.fits_node_memory ? "fits" : "EXCEEDS");
  return 0;
}

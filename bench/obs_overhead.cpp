/// Overhead proof for the tracing layer: runs the serial solver with
/// and without a bound TraceRecorder and reports the relative cost of
/// span recording.  The acceptance bar is <2% when tracing is enabled;
/// building with -DYY_TRACE_LEVEL=0 compiles every YY_TRACE_SCOPE to a
/// no-op object, making the overhead exactly zero by construction.
///
/// A third leg measures counter sampling (obs/hwcounters): tracing plus
/// a bound CounterGroup, so every PhaseScope additionally samples the
/// backend twice.  The same <2% bar applies to the counter increment
/// over plain tracing.
///
/// Besides the text report, the measurements are exported as
/// `obs_overhead.json` (yy-bench-1 schema, see bench_json.hpp /
/// `--out FILE`) so the <2% claims are tracked in the perf-regression
/// trajectory alongside the BENCH_* baselines.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/timer.hpp"
#include "core/serial_solver.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

#include "bench_json.hpp"

using namespace yy;

namespace {

core::SimulationConfig bench_config() {
  core::SimulationConfig cfg;
  cfg.nr = 15;
  cfg.nt_core = 19;
  cfg.np_core = 55;
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Seconds for `steps` RK4 steps; records into `rec` when non-null and
/// additionally samples counters per span when `ctrs` is non-null.
double run_once(obs::TraceRecorder* rec, obs::CounterGroup* ctrs, int steps) {
  core::SerialYinYangSolver solver(bench_config());
  if (rec != nullptr) {
    obs::ScopedRankBind bind(*rec, 0);
    if (ctrs != nullptr) {
      obs::ScopedCounterBind cbind(*ctrs);
      solver.initialize();
      const double dt = solver.stable_dt();
      WallTimer t;
      for (int i = 0; i < steps; ++i) solver.step(dt);
      return t.seconds();
    }
    solver.initialize();
    const double dt = solver.stable_dt();
    WallTimer t;
    for (int i = 0; i < steps; ++i) solver.step(dt);
    return t.seconds();
  }
  solver.initialize();
  const double dt = solver.stable_dt();
  WallTimer t;
  for (int i = 0; i < steps; ++i) solver.step(dt);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = 30;
  const int reps = 5;
  std::string out_path = "obs_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== Tracing overhead (YY_TRACE_LEVEL=%d) =====================\n",
              YY_TRACE_LEVEL);
  std::printf("serial solver, %d RK4 steps, best of %d reps each way\n\n",
              steps, reps);

  // Warm-up: populate caches and fault in the working set once.
  run_once(nullptr, nullptr, 2);

  obs::CounterGroup ctrs(obs::CounterGroup::config_from_env());
  double best_off = 1e30, best_on = 1e30, best_ctr = 1e30;
  std::size_t spans = 0;
  for (int r = 0; r < reps; ++r) {
    best_off = std::min(best_off, run_once(nullptr, nullptr, steps));
    obs::TraceRecorder rec;
    best_on = std::min(best_on, run_once(&rec, nullptr, steps));
    const auto traces = rec.traces();
    spans = traces.empty() ? 0 : traces[0]->spans().size();
    obs::TraceRecorder rec_ctr;
    best_ctr = std::min(best_ctr, run_once(&rec_ctr, &ctrs, steps));
  }

  const double overhead = best_on / best_off - 1.0;
  const double ctr_overhead = best_ctr / best_on - 1.0;
  std::printf("untraced          : %9.4f s\n", best_off);
  std::printf("traced            : %9.4f s   (%zu spans recorded per run)\n",
              best_on, spans);
  std::printf("traced + counters : %9.4f s   (backend: %s)\n", best_ctr,
              obs::counter_backend_name(ctrs.backend()));
  std::printf("trace overhead    : %+8.2f %%   (acceptance: < 2%% enabled;\n",
              overhead * 100.0);
  std::printf("            0%% with -DYY_TRACE_LEVEL=0 — the macros then\n"
              "            expand to NullPhaseScope and vanish entirely)\n");
  std::printf("counter overhead  : %+8.2f %%   over plain tracing "
              "(acceptance: < 2%%)\n",
              ctr_overhead * 100.0);

#if YY_TRACE_LEVEL
  const bool pass = overhead < 0.02 && ctr_overhead < 0.02;
#else
  // Compiled out: all runs execute the identical instruction stream
  // (counter binding without scopes never samples).
  const bool pass = true;
#endif

  // Machine-readable result in the baseline schema: the overhead bar
  // itself is the tolerance (direction max, allowed drift = the gap to
  // 2%), so bench_compare flags any creep past the acceptance line.
  {
    obs::RunManifest man = obs::RunManifest::current_build();
    man.app = "obs_overhead";
    man.mode = "serial";
    man.world = 1;
    man.counter_backend = obs::counter_backend_name(ctrs.backend());
    man.extra.emplace_back("steps", std::to_string(steps));
    std::vector<yy::bench::BenchMetric> metrics;
    metrics.push_back({"overhead_frac", overhead, 0.0, 0.02, "max"});
    metrics.push_back({"counter_overhead_frac", ctr_overhead, 0.0, 0.02,
                       "max"});
    metrics.push_back({"spans_per_run", static_cast<double>(spans), 0.0,
                       2.0 * steps, "band"});
    std::ofstream f(out_path);
    if (f) {
      yy::bench::write_bench_json(f, "obs_overhead", man, metrics);
      std::printf("\nwrote %s\n", out_path.c_str());
    }
  }

  std::printf("\n%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

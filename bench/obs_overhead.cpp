/// Overhead proof for the tracing layer: runs the serial solver with
/// and without a bound TraceRecorder and reports the relative cost of
/// span recording.  The acceptance bar is <2% when tracing is enabled;
/// building with -DYY_TRACE_LEVEL=0 compiles every YY_TRACE_SCOPE to a
/// no-op object, making the overhead exactly zero by construction.
#include <algorithm>
#include <cstddef>
#include <cstdio>

#include "common/timer.hpp"
#include "core/serial_solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace yy;

namespace {

core::SimulationConfig bench_config() {
  core::SimulationConfig cfg;
  cfg.nr = 15;
  cfg.nt_core = 19;
  cfg.np_core = 55;
  cfg.ic.perturb_amp = 1e-2;
  cfg.ic.seed_b_amp = 1e-4;
  return cfg;
}

/// Seconds for `steps` RK4 steps; records into `rec` when non-null.
double run_once(obs::TraceRecorder* rec, int steps) {
  core::SerialYinYangSolver solver(bench_config());
  if (rec != nullptr) {
    obs::ScopedRankBind bind(*rec, 0);
    solver.initialize();
    const double dt = solver.stable_dt();
    WallTimer t;
    for (int i = 0; i < steps; ++i) solver.step(dt);
    return t.seconds();
  }
  solver.initialize();
  const double dt = solver.stable_dt();
  WallTimer t;
  for (int i = 0; i < steps; ++i) solver.step(dt);
  return t.seconds();
}

}  // namespace

int main() {
  const int steps = 30;
  const int reps = 5;

  std::printf("== Tracing overhead (YY_TRACE_LEVEL=%d) =====================\n",
              YY_TRACE_LEVEL);
  std::printf("serial solver, %d RK4 steps, best of %d reps each way\n\n",
              steps, reps);

  // Warm-up: populate caches and fault in the working set once.
  run_once(nullptr, 2);

  double best_off = 1e30, best_on = 1e30;
  std::size_t spans = 0;
  for (int r = 0; r < reps; ++r) {
    best_off = std::min(best_off, run_once(nullptr, steps));
    obs::TraceRecorder rec;
    best_on = std::min(best_on, run_once(&rec, steps));
    const auto traces = rec.traces();
    spans = traces.empty() ? 0 : traces[0]->spans().size();
  }

  const double overhead = best_on / best_off - 1.0;
  std::printf("untraced : %9.4f s\n", best_off);
  std::printf("traced   : %9.4f s   (%zu spans recorded per run)\n", best_on,
              spans);
  std::printf("overhead : %+8.2f %%   (acceptance: < 2%% enabled; 0%% when\n",
              overhead * 100.0);
  std::printf("            built with -DYY_TRACE_LEVEL=0 — the macros then\n"
              "            expand to NullPhaseScope and vanish entirely)\n");

#if YY_TRACE_LEVEL
  const bool pass = overhead < 0.02;
#else
  // Compiled out: both runs execute the identical instruction stream.
  const bool pass = true;
#endif
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

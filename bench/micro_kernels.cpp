/// Microbenchmarks of the kernels behind every table/figure harness:
/// the FD operators (§III discretization), the overset interpolation
/// (§II), the full RHS, one RK4 step of the assembled solver, and the
/// lat-lon baseline step for comparison.  google-benchmark reports
/// per-iteration time; the Items/s counters are grid points processed.
#include <benchmark/benchmark.h>

#include "baseline/latlon_solver.hpp"
#include "core/serial_solver.hpp"
#include "grid/fd_ops.hpp"
#include "mhd/rhs.hpp"
#include "yinyang/interpolator.hpp"

namespace {

using namespace yy;

SphericalGrid bench_grid(int n) {
  GridSpec s;
  s.nr = n;
  s.nt = n;
  s.np = n;
  s.r0 = 0.5;
  s.r1 = 1.0;
  s.t0 = 0.8;
  s.t1 = 2.3;
  s.p0 = -1.2;
  s.p1 = 1.2;
  s.ghost = 2;
  return SphericalGrid(s);
}

void BM_Laplacian(benchmark::State& state) {
  SphericalGrid g = bench_grid(static_cast<int>(state.range(0)));
  Field3 a(g.Nr(), g.Nt(), g.Np(), 1.0), out(g.Nr(), g.Nt(), g.Np());
  for (auto _ : state) {
    fd::laplacian(g, a, out, g.interior());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.interior().volume());
}
BENCHMARK(BM_Laplacian)->Arg(16)->Arg(32);

void BM_Curl(benchmark::State& state) {
  SphericalGrid g = bench_grid(static_cast<int>(state.range(0)));
  Field3 a(g.Nr(), g.Nt(), g.Np(), 1.0);
  Field3 cr(g.Nr(), g.Nt(), g.Np()), ct = cr, cp = cr;
  for (auto _ : state) {
    fd::curl(g, a, a, a, cr, ct, cp, g.interior());
    benchmark::DoNotOptimize(cr.data());
  }
  state.SetItemsProcessed(state.iterations() * g.interior().volume());
}
BENCHMARK(BM_Curl)->Arg(16)->Arg(32);

void BM_DivVf(benchmark::State& state) {
  SphericalGrid g = bench_grid(static_cast<int>(state.range(0)));
  Field3 a(g.Nr(), g.Nt(), g.Np(), 1.0);
  Field3 r0(g.Nr(), g.Nt(), g.Np()), r1 = r0, r2 = r0;
  for (auto _ : state) {
    fd::div_vf(g, a, a, a, a, a, a, r0, r1, r2, g.interior());
    benchmark::DoNotOptimize(r0.data());
  }
  state.SetItemsProcessed(state.iterations() * g.interior().volume());
}
BENCHMARK(BM_DivVf)->Arg(16)->Arg(32);

void BM_OversetInterpolation(benchmark::State& state) {
  const auto geom = yinyang::ComponentGeometry::with_auto_margin(
      static_cast<int>(state.range(0)), 3 * static_cast<int>(state.range(0)) - 2);
  SphericalGrid g(geom.make_grid_spec(17, 0.4, 1.0));
  yinyang::OversetInterpolator interp(geom);
  Field3 donor(g.Nr(), g.Nt(), g.Np(), 1.0), recv(g.Nr(), g.Nt(), g.Np());
  for (auto _ : state) {
    interp.fill_scalar(g, donor, recv);
    benchmark::DoNotOptimize(recv.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(interp.entries().size()) * 17);
}
BENCHMARK(BM_OversetInterpolation)->Arg(17)->Arg(33);

void BM_MhdRhs(benchmark::State& state) {
  SphericalGrid g = bench_grid(static_cast<int>(state.range(0)));
  mhd::Fields s(g), rhs(g);
  mhd::Workspace ws(g);
  mhd::EquationParams eq;
  eq.omega = {0, 0, 8.0};
  for (auto _ : state) {
    mhd::compute_rhs(g, eq, s, rhs, ws, g.interior());
    benchmark::DoNotOptimize(rhs.rho.data());
  }
  state.SetItemsProcessed(state.iterations() * g.interior().volume());
}
BENCHMARK(BM_MhdRhs)->Arg(16)->Arg(24);

void BM_MhdRhsFused(benchmark::State& state) {
  SphericalGrid g = bench_grid(static_cast<int>(state.range(0)));
  mhd::Fields s(g), rhs(g);
  mhd::PencilWorkspace pw;
  mhd::EquationParams eq;
  eq.omega = {0, 0, 8.0};
  for (auto _ : state) {
    mhd::compute_rhs_fused(g, eq, s, rhs, pw, g.interior());
    benchmark::DoNotOptimize(rhs.rho.data());
  }
  state.SetItemsProcessed(state.iterations() * g.interior().volume());
}
BENCHMARK(BM_MhdRhsFused)->Arg(16)->Arg(24);

void BM_YinYangStep(benchmark::State& state) {
  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = static_cast<int>(state.range(0));
  cfg.np_core = 3 * static_cast<int>(state.range(0)) - 2;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 8.0};
  core::SerialYinYangSolver solver(cfg);
  solver.initialize();
  const double dt = solver.stable_dt();
  for (auto _ : state) solver.step(dt);
  state.SetItemsProcessed(state.iterations() * 2 *
                          solver.grid().interior().volume());
}
BENCHMARK(BM_YinYangStep)->Arg(13)->Arg(17);

void BM_YinYangStepFused(benchmark::State& state) {
  core::SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = static_cast<int>(state.range(0));
  cfg.np_core = 3 * static_cast<int>(state.range(0)) - 2;
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 8.0};
  cfg.fused_rhs = true;
  core::SerialYinYangSolver solver(cfg);
  solver.initialize();
  const double dt = solver.stable_dt();
  for (auto _ : state) solver.step(dt);
  state.SetItemsProcessed(state.iterations() * 2 *
                          solver.grid().interior().volume());
}
BENCHMARK(BM_YinYangStepFused)->Arg(13)->Arg(17);

void BM_LatLonStep(benchmark::State& state) {
  baseline::LatLonConfig cfg;
  cfg.nr = 13;
  cfg.nt = static_cast<int>(state.range(0));
  cfg.np = 2 * static_cast<int>(state.range(0));
  cfg.eq.g0 = 2.0;
  cfg.eq.omega = {0, 0, 8.0};
  baseline::LatLonSolver solver(cfg);
  solver.initialize();
  const double dt = solver.stable_dt();
  for (auto _ : state) solver.step(dt);
  state.SetItemsProcessed(state.iterations() * solver.grid().interior().volume());
}
BENCHMARK(BM_LatLonStep)->Arg(24)->Arg(32);

}  // namespace

/// Table III reproduction — "Performances on the Earth Simulator
/// reported at SC": the four literature rows the paper quotes, the
/// paper's own yycore row, and the row this repository's model
/// regenerates for the same flagship configuration.
#include <cstdio>

#include "perf/kernel_profile.hpp"
#include "perf/sc_comparison.hpp"

using namespace yy::perf;

int main() {
  std::printf("== Table III: performances on the Earth Simulator at SC ========\n\n");
  const KernelProfile prof = KernelProfile::measure();
  const EsPerformanceModel model(EarthSimulatorSpec{}, EsCostParams{},
                                 prof.flops_per_point_per_step);

  auto rows = sc_literature_rows();
  rows.push_back(yycore_paper_row());
  rows.push_back(yycore_model_row(model));
  std::printf("%s\n", format_table3(rows).c_str());

  const ScEntry paper = yycore_paper_row();
  const ScEntry mine = yycore_model_row(model);
  std::printf("shape checks vs the paper's row:\n");
  std::printf("  grid points per AP:   %.2g (paper %.2g) — an order of\n"
              "    magnitude below the other flat-MPI entries, the paper's\n"
              "    point about Yin-Yang needing a small per-process mesh\n",
              mine.gridpoints_per_ap(), paper.gridpoints_per_ap());
  std::printf("  Flops per grid point: %.1fK (paper %.0fK)\n",
              mine.flops_per_gridpoint() / 1000.0,
              paper.flops_per_gridpoint() / 1000.0);
  return 0;
}

/// Fig. 2 reproduction (fast variant) — "Thermal convection structure…
/// Columnar convection cells viewed in the equatorial plane.  Two
/// colors indicate cyclonic and anti-cyclonic convection columns."
///
/// Runs a scaled-down rotating dynamo from a random perturbation past
/// convective onset, extracts the equatorial-plane z-vorticity and
/// verifies the figure's qualitative content: several alternating
/// cyclonic/anti-cyclonic columns.  Writes fig2_equatorial.ppm (the
/// two-colour disk view) and fig2_equatorial.csv.  The slower
/// examples/convection_columns drives the same pipeline at higher
/// resolution.
#include <algorithm>
#include <cstdio>

#include "core/serial_solver.hpp"
#include "grid/fd_ops.hpp"
#include "io/slice.hpp"
#include "io/spectrum.hpp"
#include "mhd/derived.hpp"

using namespace yy;
using core::SerialYinYangSolver;
using core::SimulationConfig;
using yinyang::Panel;

int main() {
  SimulationConfig cfg;
  cfg.nr = 13;
  cfg.nt_core = 17;
  cfg.np_core = 49;
  cfg.eq.mu = 1.5e-3;
  cfg.eq.kappa = 1.5e-3;
  cfg.eq.eta = 1.5e-3;
  cfg.eq.g0 = 3.0;
  cfg.eq.omega = {0.0, 0.0, 15.0};
  cfg.thermal = {2.5, 1.0};
  cfg.ic.perturb_amp = 2e-2;
  cfg.ic.seed_b_amp = 1e-4;

  std::printf("== Fig. 2: columnar convection cells (fast variant) ============\n");
  SerialYinYangSolver s(cfg);
  s.initialize();
  s.run_steps(5);
  const double ke0 = s.energies().kinetic;  // just after onset of motion

  const int bursts = 6, steps_per_burst = 50;
  for (int b = 0; b < bursts; ++b) {
    s.run_steps(steps_per_burst);
    const auto e = s.energies();
    std::printf("  t=%.4f steps=%lld KE=%.3e ME=%.3e\n", s.time(),
                s.steps_taken(), e.kinetic, e.magnetic);
  }
  const double ke1 = s.energies().kinetic;
  std::printf("kinetic energy grew %.1fx beyond the early perturbation level\n",
              ke1 / ke0);

  // Vorticity ω = ∇×v on both panels, then the equatorial ω_z map.
  const SphericalGrid& g = s.grid();
  mhd::Workspace& ws = s.workspace();
  Field3 wy_r(g.Nr(), g.Nt(), g.Np()), wy_t = wy_r, wy_p = wy_r;
  Field3 wg_r = wy_r, wg_t = wy_r, wg_p = wy_r;
  auto vorticity = [&](Panel p, Field3& wr, Field3& wt, Field3& wp) {
    const mhd::Fields& f = s.panel(p);
    mhd::velocity_and_temperature(f, ws.vr, ws.vt, ws.vp, ws.T,
                                  g.interior().grown(1));
    fd::curl(g, ws.vr, ws.vt, ws.vp, wr, wt, wp, g.interior());
  };
  vorticity(Panel::yin, wy_r, wy_t, wy_p);
  vorticity(Panel::yang, wg_r, wg_t, wg_p);

  io::SphereSampler sampler(g, s.geometry());
  const io::EquatorialSlice slice = io::sample_equatorial_z(
      sampler, {&wy_r, &wy_t, &wy_p}, {&wg_r, &wg_t, &wg_p},
      cfg.shell.r_inner + 0.02, cfg.shell.r_outer - 0.02, 24, 180);

  const int sign_columns = io::count_columns(slice);
  const int spectral_columns = io::spectral_column_count(slice);
  const auto spectrum = io::slice_spectrum(slice, 10);
  std::printf("\nequatorial ring at mid-depth: %d sign-alternations, dominant\n",
              sign_columns);
  std::printf("azimuthal wavenumber m = %d -> %d columns (%d cyclonic/anti-\n",
              spectral_columns / 2, spectral_columns, spectral_columns / 2);
  std::printf("cyclonic pairs); power(m)/power(0): ");
  for (int m = 1; m <= 6; ++m)
    std::printf("m%d=%.2f ", m,
                spectrum[0] > 0 ? spectrum[m] / spectrum[0] : spectrum[m]);
  const int columns = std::max(sign_columns, spectral_columns);
  std::printf("\npaper's Fig. 2 shows a set of such columnar cells; shape check:"
              " %s\n", columns >= 4 ? "PASS (>= 2 pairs)" : "WEAK (run longer)");

  io::write_equatorial_ppm(io::remove_zonal_mean(slice),
                           "fig2_equatorial.ppm", 400);
  io::write_equatorial_csv(slice, "fig2_equatorial.csv");
  std::printf("wrote fig2_equatorial.ppm / fig2_equatorial.csv\n");
  return 0;
}

/// \file decomposition.hpp
/// Two-dimensional horizontal domain decomposition of one Yin-Yang
/// panel (paper §IV: "two-dimensional decomposition in the horizontal
/// space, colatitude θ and longitude φ, in each panel").  The radial
/// dimension is never decomposed — it is the vectorized direction.
#pragma once

#include <algorithm>

#include "common/error.hpp"

namespace yy::core {

/// One patch's extent in panel-interior node indices.
struct PatchExtent {
  int t0 = 0, nt = 0;  ///< first θ node and count
  int p0 = 0, np = 0;  ///< first φ node and count
};

/// Overlap of two extents; an empty intersection has nt == 0 or
/// np == 0 (starts clamped to the max of the origins).  Used by the
/// shrink-to-survive redistribution to route old patches onto a new
/// decomposition.
inline PatchExtent intersect(const PatchExtent& a, const PatchExtent& b) {
  PatchExtent e;
  e.t0 = std::max(a.t0, b.t0);
  e.p0 = std::max(a.p0, b.p0);
  e.nt = std::max(0, std::min(a.t0 + a.nt, b.t0 + b.nt) - e.t0);
  e.np = std::max(0, std::min(a.p0 + a.np, b.p0 + b.np) - e.p0);
  return e;
}

class PanelDecomposition {
 public:
  /// Splits panel_nt × panel_np interior nodes over pt × pp ranks,
  /// near-evenly (remainders go to the lower coordinates).
  PanelDecomposition(int panel_nt, int panel_np, int pt, int pp)
      : nt_(panel_nt), np_(panel_np), pt_(pt), pp_(pp) {
    YY_REQUIRE(pt >= 1 && pp >= 1);
    YY_REQUIRE(panel_nt >= pt && panel_np >= pp);
  }

  int pt() const { return pt_; }
  int pp() const { return pp_; }
  int panel_nt() const { return nt_; }
  int panel_np() const { return np_; }

  PatchExtent patch(int ct, int cp) const {
    YY_REQUIRE(ct >= 0 && ct < pt_ && cp >= 0 && cp < pp_);
    PatchExtent e;
    split(nt_, pt_, ct, e.t0, e.nt);
    split(np_, pp_, cp, e.p0, e.np);
    return e;
  }

  /// The θ-coordinate of the rank owning panel-interior node `jt`.
  int owner_t(int jt) const { return owner(nt_, pt_, jt); }
  /// The φ-coordinate of the rank owning panel-interior node `jp`.
  int owner_p(int jp) const { return owner(np_, pp_, jp); }

  /// Smallest patch extent in either direction (halo-validity check).
  int min_patch_span() const {
    int m = nt_;
    for (int c = 0; c < pt_; ++c) m = std::min(m, patch(c, 0).nt);
    for (int c = 0; c < pp_; ++c) m = std::min(m, patch(0, c).np);
    return m;
  }

 private:
  static void split(int n, int parts, int idx, int& start, int& count) {
    const int base = n / parts;
    const int rem = n % parts;
    count = base + (idx < rem ? 1 : 0);
    start = idx * base + std::min(idx, rem);
  }
  static int owner(int n, int parts, int j) {
    YY_REQUIRE(j >= 0 && j < n);
    const int base = n / parts;
    const int rem = n % parts;
    const int fat = rem * (base + 1);  // nodes held by the first rem parts
    return j < fat ? j / (base + 1) : rem + (j - fat) / base;
  }

  int nt_, np_, pt_, pp_;
};

}  // namespace yy::core

/// \file overset_exchange.hpp
/// Distributed overset interpolation between the Yin and Yang panels
/// (paper §IV: "Communication between two groups (Yin and Yang) is
/// required for the overset interpolation.  This communication is
/// implemented by MPI_SEND and MPI_IRECV under
/// gRunner%world%communicator").
///
/// The communication plan is computed locally on every rank with zero
/// setup traffic: the interpolator's stencil table and the panel
/// decomposition are global knowledge, so donor and receiver
/// independently derive identical, identically-ordered message lists.
/// Donors interpolate (and rotate vector components) before sending, so
/// one radial line of 8 field values travels per boundary column per
/// message — the minimal payload.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "comm/communicator.hpp"
#include "core/decomposition.hpp"
#include "core/runner.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/state.hpp"
#include "yinyang/interpolator.hpp"

namespace yy::core {

class OversetExchanger {
 public:
  /// `local` is this rank's patch grid, `extent` its panel-interior
  /// extent.  `my_decomp` decomposes this rank's panel, `partner_decomp`
  /// the other panel — they differ after a shrink-to-survive rebuild
  /// (pass the same object twice for the symmetric layout).  All ranks
  /// of both panels must construct this collectively (the exchange
  /// pairs messages by the shared deterministic plan).
  OversetExchanger(const yinyang::OversetInterpolator& interp,
                   const PanelDecomposition& my_decomp,
                   const PanelDecomposition& partner_decomp,
                   const Runner& runner, const SphericalGrid& local,
                   const PatchExtent& extent);

  /// In-flight state of one posted exchange: the pre-posted receives,
  /// in plan order.  Obtained from post(), consumed once by finish().
  struct Posted {
    std::vector<comm::Request> reqs;
    bool active = false;
  };

  /// Donates from `s` (this rank's interior + halo) and fills the
  /// panel-boundary ghost columns of `s` from the partner panel.
  /// `s` must have fresh wall values and halos.
  void exchange(mhd::Fields& s) const;

  /// Posts the receives only (MPI_IRECV side).  Safe to call before the
  /// halo exchange completes — donation happens in finish(), which must
  /// run *after* the donor's halos are fresh (the 2×2 stencil's +1 rows
  /// may live in the halo).  One exchange in flight per exchanger.
  Posted post() const;

  /// Interpolates + sends to every partner, then completes the receives
  /// and scatters into the ghost columns.  Returns bytes sent.  Records
  /// no trace span — the caller owns phase attribution.
  std::uint64_t finish(mhd::Fields& s, Posted& p) const;

  /// Abandons a posted exchange without completing it (see
  /// HaloExchanger::cancel for the contract): drops the receive handles
  /// and clears the in-flight guard; undelivered envelopes must be
  /// purged by the caller's recovery path.  No-op when `p` was never
  /// posted or has already finished.
  void cancel(Posted& p) const noexcept;

  /// Bytes this rank sends per exchange (perf-model input).
  std::uint64_t bytes_sent_per_exchange() const;

  /// Number of distinct partner ranks this rank talks to.
  int send_partner_count() const { return static_cast<int>(send_plan_.size()); }
  int recv_partner_count() const { return static_cast<int>(recv_plan_.size()); }

 private:
  std::uint64_t finish_impl(mhd::Fields& s, Posted& p) const;

  struct SendItem {
    yinyang::StencilEntry entry;  // donor indices rebased to local patch
  };
  struct RecvItem {
    int itloc = 0, iploc = 0;  // local ghost column (full-array indices)
  };

  const SphericalGrid* grid_;
  const Runner* runner_;
  int nr_;
  mutable bool in_flight_ = false;
  // Keyed by *world* rank of the partner; std::map keeps deterministic
  // iteration order on both sides.
  std::map<int, std::vector<SendItem>> send_plan_;
  std::map<int, std::vector<RecvItem>> recv_plan_;
  mutable std::vector<std::vector<double>> send_bufs_, recv_bufs_;
};

}  // namespace yy::core

#include "core/serial_solver.hpp"

#include <cmath>

#include "core/ownership.hpp"
#include "mhd/derived.hpp"
#include "mhd/init.hpp"
#include "obs/trace.hpp"
#include "yinyang/transform.hpp"

namespace yy::core {

using yinyang::Panel;

SerialYinYangSolver::SerialYinYangSolver(const SimulationConfig& cfg)
    : cfg_(cfg),
      geom_(yinyang::ComponentGeometry::with_auto_margin(cfg.nt_core,
                                                         cfg.np_core)),
      grid_(geom_.make_grid_spec(cfg.nr, cfg.shell.r_inner, cfg.shell.r_outer)),
      interp_(geom_),
      bc_(cfg.thermal),
      eq_yin_(cfg.eq),
      eq_yang_(cfg.eq.for_partner_panel()),
      yin_(grid_),
      yang_(grid_),
      ws_(grid_),
      integrator_(cfg.scheme, {&grid_, &grid_}, cfg.rhs_backend()),
      weights_(ownership_weights(geom_, grid_, 0, 0)) {}

void SerialYinYangSolver::initialize() {
  mhd::initialize_state(grid_, cfg_.shell, cfg_.thermal, cfg_.eq.g0, cfg_.ic,
                        0, {0, 0}, yin_);
  mhd::initialize_state(grid_, cfg_.shell, cfg_.thermal, cfg_.eq.g0, cfg_.ic,
                        1, {0, 0}, yang_);
  fill_ghosts(yin_, yang_);
  time_ = 0.0;
  steps_ = 0;
  cached_dt_ = 0.0;
}

void SerialYinYangSolver::fill_ghosts(mhd::Fields& yin, mhd::Fields& yang) {
  // 1. Enforce wall values so donor data includes the physical BCs.
  {
    YY_TRACE_SCOPE(obs::Phase::boundary);
    bc_.enforce_walls(grid_, yin);
    bc_.enforce_walls(grid_, yang);
  }
  // 2. Overset internal boundary conditions, both directions.  By the
  //    complementarity of eq. (1) the same interpolator serves both.
  //    (In-process, the `overset_wait` span measures interpolation
  //    compute — the serial analogue of the distributed exchange.)
  {
    YY_TRACE_SCOPE(obs::Phase::overset_wait);
    auto overset = [&](const mhd::Fields& donor, mhd::Fields& recv) {
      interp_.fill_scalar(grid_, donor.rho, recv.rho);
      interp_.fill_scalar(grid_, donor.p, recv.p);
      interp_.fill_vector(grid_, donor.fr, donor.ft, donor.fp, recv.fr,
                          recv.ft, recv.fp);
      interp_.fill_vector(grid_, donor.ar, donor.at, donor.ap, recv.ar,
                          recv.at, recv.ap);
    };
    overset(yang, yin);
    overset(yin, yang);
  }
  // 3. Radial ghosts last, over every column incl. the fresh ghosts.
  YY_TRACE_SCOPE(obs::Phase::boundary);
  bc_.fill_ghosts(grid_, yin);
  bc_.fill_ghosts(grid_, yang);
}

void SerialYinYangSolver::step(double dt) {
  obs::set_current_step(steps_);
  std::vector<mhd::PatchDef> patches{{&grid_, eq_yin_, &yin_},
                                     {&grid_, eq_yang_, &yang_}};
  integrator_.step(patches, dt, [this](const std::vector<mhd::Fields*>& s) {
    fill_ghosts(*s[0], *s[1]);
  });
  time_ += dt;
  ++steps_;
}

double SerialYinYangSolver::stable_dt() {
  const double a =
      mhd::stable_timestep(grid_, eq_yin_, yin_, ws_, grid_.interior());
  const double b =
      mhd::stable_timestep(grid_, eq_yang_, yang_, ws_, grid_.interior());
  return cfg_.cfl_safety * std::min(a, b);
}

double SerialYinYangSolver::run_steps(int n, int recompute_every) {
  double advanced = 0.0;
  for (int i = 0; i < n; ++i) {
    if (cached_dt_ == 0.0 || i % recompute_every == 0) cached_dt_ = stable_dt();
    step(cached_dt_);
    advanced += cached_dt_;
  }
  return advanced;
}

mhd::EnergyBudget SerialYinYangSolver::energies() {
  mhd::EnergyBudget e = mhd::integrate_energies(grid_, eq_yin_, yin_, ws_,
                                                weights_, grid_.interior());
  e += mhd::integrate_energies(grid_, eq_yang_, yang_, ws_, weights_,
                               grid_.interior());
  return e;
}

std::pair<double, double> SerialYinYangSolver::double_solution_error(
    int field_index) {
  using yinyang::Angles;
  using yinyang::ComponentGeometry;
  // Compare Yin's interior values in the overlap region against
  // interpolation from Yang (scalar comparison; for vector components
  // this is only meaningful for field 0 (ρ) and 4 (p), or after
  // rotating — tests use the scalars).
  const Field3& mine = *yin_.all()[static_cast<std::size_t>(field_index)];
  const Field3& partner = *yang_.all()[static_cast<std::size_t>(field_index)];
  const IndexBox in = grid_.interior();
  double sum2 = 0.0, maxd = 0.0;
  long long count = 0;
  for (int it = in.t0; it < in.t1; ++it) {
    for (int ip = in.p0; ip < in.p1; ++ip) {
      const Angles a{grid_.theta(it), grid_.phi(ip)};
      if (!ComponentGeometry::in_core(a)) continue;
      const Angles b = yinyang::partner_angles(a);
      if (!ComponentGeometry::in_core(b)) continue;  // not in overlap
      for (int ir = in.r0; ir < in.r1; ++ir) {
        const double v = mine(ir, it, ip);
        const double w = yinyang::OversetInterpolator::interpolate_at(
            grid_, partner, geom_, b, ir);
        const double d = std::abs(v - w);
        sum2 += d * d;
        maxd = std::max(maxd, d);
        ++count;
      }
    }
  }
  return {count > 0 ? std::sqrt(sum2 / count) : 0.0, maxd};
}

}  // namespace yy::core

#include "core/runner.hpp"

#include "common/error.hpp"

namespace yy::core {

Runner::Runner(const comm::Communicator& world, int pt, int pp)
    : Runner(world, PanelLayout{pt, pp}, PanelLayout{pt, pp}) {}

Runner::Runner(const comm::Communicator& world, PanelLayout yin,
               PanelLayout yang)
    : world_(world), layouts_{yin, yang} {
  YY_REQUIRE(yin.pt >= 1 && yin.pp >= 1 && yang.pt >= 1 && yang.pp >= 1);
  YY_REQUIRE(world.size() == yin.size() + yang.size());
  panel_ = world.rank() < yin.size() ? yinyang::Panel::yin
                                     : yinyang::Panel::yang;
  // MPI_COMM_SPLIT by panel colour, keeping world order within a panel.
  comm::Communicator panel_comm =
      world_.split(static_cast<int>(panel_), world.rank());
  const PanelLayout& mine = layout(panel_);
  YY_ASSERT(panel_comm.size() == mine.size());
  // 2-D cartesian topology inside the panel; neither direction is
  // periodic (a panel is a bounded rectangle in (θ, φ)).
  cart_ = std::make_unique<comm::CartComm>(
      comm::CartComm::create(panel_comm, mine.pt, mine.pp, false, false));
}

}  // namespace yy::core

#include "core/runner.hpp"

#include "common/error.hpp"

namespace yy::core {

Runner::Runner(const comm::Communicator& world, int pt, int pp)
    : world_(world), pt_(pt), pp_(pp) {
  YY_REQUIRE(world.size() == 2 * pt * pp);
  const int half = world.size() / 2;
  panel_ = world.rank() < half ? yinyang::Panel::yin : yinyang::Panel::yang;
  // MPI_COMM_SPLIT by panel colour, keeping world order within a panel.
  comm::Communicator panel_comm =
      world_.split(static_cast<int>(panel_), world.rank());
  YY_ASSERT(panel_comm.size() == half);
  // 2-D cartesian topology inside the panel; neither direction is
  // periodic (a panel is a bounded rectangle in (θ, φ)).
  cart_ = std::make_unique<comm::CartComm>(
      comm::CartComm::create(panel_comm, pt, pp, false, false));
}

}  // namespace yy::core

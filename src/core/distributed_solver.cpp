#include "core/distributed_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "comm/cart.hpp"
#include "core/ownership.hpp"
#include "mhd/init.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace yy::core {

using yinyang::Panel;

namespace {

GridSpec patch_spec(const yinyang::ComponentGeometry& geom,
                    const PatchExtent& e, int nr, double r0, double r1) {
  GridSpec s;
  s.nr = nr;
  s.nt = e.nt;
  s.np = e.np;
  s.r0 = r0;
  s.r1 = r1;
  s.t0 = geom.t_min() + e.t0 * geom.dt();
  s.t1 = geom.t_min() + (e.t0 + e.nt - 1) * geom.dt();
  s.p0 = geom.p_min() + e.p0 * geom.dp();
  s.p1 = geom.p_min() + (e.p0 + e.np - 1) * geom.dp();
  s.ghost = geom.ghost();
  s.phi_periodic = false;
  // Align the patch with the whole-panel grid: exact parent spacings
  // and global node indices make the coordinate and metric tables
  // bitwise identical across every decomposition of the panel — the
  // property the shrink-to-survive bitwise-restore guarantee rests on.
  s.t_spacing = geom.dt();
  s.p_spacing = geom.dp();
  s.t_origin = geom.t_min();
  s.p_origin = geom.p_min();
  s.t_offset = e.t0;
  s.p_offset = e.p0;
  return s;
}

}  // namespace

DistributedSolver::DistributedSolver(const SimulationConfig& cfg,
                                     const comm::Communicator& world, int pt,
                                     int pp)
    : DistributedSolver(cfg, world, PanelLayout{pt, pp}, PanelLayout{pt, pp}) {}

DistributedSolver::DistributedSolver(const SimulationConfig& cfg,
                                     const comm::Communicator& world,
                                     PanelLayout yin, PanelLayout yang)
    : cfg_(cfg),
      geom_(yinyang::ComponentGeometry::with_auto_margin(cfg.nt_core,
                                                         cfg.np_core)),
      runner_(std::make_unique<Runner>(world, yin, yang)),
      decomp_(geom_.nt(), geom_.np(), runner_->pt(), runner_->pp()),
      partner_decomp_(geom_.nt(), geom_.np(),
                      runner_->layout(yinyang::other(runner_->panel())).pt,
                      runner_->layout(yinyang::other(runner_->panel())).pp),
      extent_(decomp_.patch(runner_->cart().coord(0), runner_->cart().coord(1))),
      bc_(cfg.thermal),
      eq_(runner_->panel() == Panel::yin ? cfg.eq : cfg.eq.for_partner_panel()) {
  grid_ = std::make_unique<SphericalGrid>(
      patch_spec(geom_, extent_, cfg.nr, cfg.shell.r_inner, cfg.shell.r_outer));
  interp_ = std::make_unique<yinyang::OversetInterpolator>(geom_);
  halo_ = std::make_unique<HaloExchanger>(*grid_, runner_->cart());
  overset_ = std::make_unique<OversetExchanger>(
      *interp_, decomp_, partner_decomp_, *runner_, *grid_, extent_);
  state_ = std::make_unique<mhd::Fields>(*grid_);
  ws_ = std::make_unique<mhd::Workspace>(*grid_);
  integrator_ = std::make_unique<mhd::Integrator>(
      cfg.scheme, std::vector<const SphericalGrid*>{grid_.get()},
      cfg.rhs_backend());
  weights_ = std::make_unique<mhd::ColumnWeights>(
      ownership_weights(geom_, *grid_, extent_.t0, extent_.p0));
}

void DistributedSolver::fill_ghosts(mhd::Fields& s) {
  {
    YY_TRACE_SCOPE(obs::Phase::boundary);
    bc_.enforce_walls(*grid_, s);
  }
  halo_->exchange(s);     // records halo_wait
  overset_->exchange(s);  // records overset_wait
  YY_TRACE_SCOPE(obs::Phase::boundary);
  bc_.fill_ghosts(*grid_, s);
}

void DistributedSolver::cancel_exchanges() noexcept {
  halo_->cancel(halo_posted_);
  overset_->cancel(overset_posted_);
}

void DistributedSolver::post_exchanges(mhd::Fields& s) {
  const int gh = grid_->ghost();
  {
    YY_TRACE_SCOPE(obs::Phase::boundary);
    bc_.enforce_walls(*grid_, s);
    // Radial prefill of the owned columns: per-column local, so it can
    // run before the horizontal exchanges — and must, so the interior
    // RHS sees valid radial ghosts while the messages are in flight.
    bc_.fill_ghosts(*grid_, s, gh, gh + grid_->spec().nt, gh,
                    gh + grid_->spec().np);
  }
  YY_TRACE_SCOPE(obs::Phase::halo_overlap);
  try {
    halo_posted_ = halo_->post(s);
    overset_posted_ = overset_->post();
  } catch (...) {
    // A partial post (e.g. overset_->post() after a successful halo
    // post) must not leave the other exchanger wedged in flight.
    cancel_exchanges();
    throw;
  }
}

void DistributedSolver::finish_exchanges(mhd::Fields& s) {
  try {
    {
      YY_TRACE_SCOPE_V(span, obs::Phase::halo_wait);
      span.add_bytes(halo_->finish(s, halo_posted_));
    }
    {
      YY_TRACE_SCOPE_V(span, obs::Phase::overset_wait);
      span.add_bytes(overset_->finish(s, overset_posted_));
    }
  } catch (...) {
    // A faulted wait (comm timeout/corruption) unwinds the throwing
    // exchanger itself, but the *other* one may still be in flight —
    // cancel it so post-recovery steps can post afresh.
    cancel_exchanges();
    throw;
  }
  // Radial fill of the freshly received ghost frame; with the owned
  // prefill in post_exchanges this covers exactly one full fill_ghosts.
  YY_TRACE_SCOPE(obs::Phase::boundary);
  const int gh = grid_->ghost();
  const int nt = grid_->spec().nt;
  const int np = grid_->spec().np;
  bc_.fill_ghosts(*grid_, s, 0, gh, 0, grid_->Np());
  bc_.fill_ghosts(*grid_, s, gh + nt, grid_->Nt(), 0, grid_->Np());
  bc_.fill_ghosts(*grid_, s, gh, gh + nt, 0, gh);
  bc_.fill_ghosts(*grid_, s, gh, gh + nt, gh + np, grid_->Np());
}

void DistributedSolver::restore_state(const mhd::Fields& s, double time,
                                      long long step) {
  state_->copy_from(s);  // shape-checked inside
  time_ = time;
  steps_ = step;
}

void DistributedSolver::initialize() {
  mhd::initialize_state(*grid_, cfg_.shell, cfg_.thermal, cfg_.eq.g0, cfg_.ic,
                        static_cast<int>(runner_->panel()),
                        {extent_.t0, extent_.p0}, *state_);
  fill_ghosts(*state_);
  time_ = 0.0;
  steps_ = 0;
}

void DistributedSolver::step(double dt) {
  obs::set_current_step(steps_);
  if (telemetry_ != nullptr)
    telemetry_->begin_step(steps_, dt, last_stable_dt_);
  std::vector<mhd::PatchDef> patches{{grid_.get(), eq_, state_.get()}};
  const auto fill = [this](const std::vector<mhd::Fields*>& s) {
    fill_ghosts(*s[0]);
  };
  if (cfg_.overlap) {
    mhd::OverlapHooks hooks;
    hooks.post = [this](const std::vector<mhd::Fields*>& s) {
      post_exchanges(*s[0]);
    };
    hooks.finish = [this](const std::vector<mhd::Fields*>& s) {
      finish_exchanges(*s[0]);
    };
    hooks.rim_width = grid_->ghost();
    try {
      integrator_->step(patches, dt, fill, &hooks);
    } catch (...) {
      // The hooks unwind their own failures; this catches a throw from
      // the compute between post and finish, where both exchanges are
      // legitimately in flight with no finish() left to clean them up.
      cancel_exchanges();
      throw;
    }
  } else {
    integrator_->step(patches, dt, fill);
  }
  time_ += dt;
  ++steps_;
  if (telemetry_ != nullptr) telemetry_->end_step();
}

double DistributedSolver::stable_dt() {
  const double local = mhd::stable_timestep(*grid_, eq_, *state_, *ws_,
                                            grid_->interior());
  YY_TRACE_SCOPE(obs::Phase::reduce);
  last_stable_dt_ = cfg_.cfl_safety * runner_->world().allreduce_min(local);
  return last_stable_dt_;
}

mhd::EnergyBudget DistributedSolver::energies() {
  mhd::EnergyBudget e = mhd::integrate_energies(
      *grid_, eq_, *state_, *ws_, *weights_, grid_->interior());
  YY_TRACE_SCOPE(obs::Phase::reduce);
  double vals[4] = {e.mass, e.kinetic, e.magnetic, e.thermal};
  runner_->world().allreduce_sum(vals);
  return {vals[0], vals[1], vals[2], vals[3]};
}

Field3 DistributedSolver::gather_field(int field_index, Panel p) {
  YY_TRACE_SCOPE(obs::Phase::io);
  const comm::Communicator& world = runner_->world();
  const int gh = grid_->ghost();
  const bool mine = runner_->panel() == p;
  constexpr int tag_gather = 300;

  // Every rank of panel `p` ships its interior block (header + data)
  // to world rank 0, which assembles the global panel field.
  if (mine) {
    const Field3& f = *state_->all()[static_cast<std::size_t>(field_index)];
    std::vector<double> msg;
    msg.reserve(4 + static_cast<std::size_t>(cfg_.nr) * extent_.nt * extent_.np);
    msg.push_back(extent_.t0);
    msg.push_back(extent_.nt);
    msg.push_back(extent_.p0);
    msg.push_back(extent_.np);
    for (int ip = 0; ip < extent_.np; ++ip)
      for (int it = 0; it < extent_.nt; ++it)
        for (int ir = 0; ir < cfg_.nr; ++ir)
          msg.push_back(f(gh + ir, gh + it, gh + ip));
    world.send(0, tag_gather, msg);
  }

  Field3 out;
  if (world.rank() == 0) {
    out = Field3(cfg_.nr, geom_.nt(), geom_.np());
    // Panel p's own layout/decomposition (the panels differ after a
    // shrink-to-survive rebuild).
    const PanelLayout& pl = runner_->layout(p);
    const PanelDecomposition& pd = decomp_of(p);
    for (int pr = 0; pr < pl.size(); ++pr) {
      const int src = runner_->world_rank(p, pr);
      const auto pe = pd.patch(pr / pl.pp, pr % pl.pp);
      std::vector<double> msg(4 + static_cast<std::size_t>(cfg_.nr) * pe.nt *
                                      pe.np);
      world.recv(src, tag_gather, msg);
      const int t0 = static_cast<int>(msg[0]);
      const int nt = static_cast<int>(msg[1]);
      const int p0 = static_cast<int>(msg[2]);
      const int np = static_cast<int>(msg[3]);
      std::size_t k = 4;
      for (int ip = 0; ip < np; ++ip)
        for (int it = 0; it < nt; ++it)
          for (int ir = 0; ir < cfg_.nr; ++ir)
            out(ir, t0 + it, p0 + ip) = msg[k++];
    }
  }
  return out;
}

std::pair<PanelLayout, PanelLayout> DistributedSolver::shrunk_layouts(
    PanelLayout old_yin, PanelLayout old_yang,
    const std::vector<int>& survivors) {
  int n_yin = 0, n_yang = 0;
  for (const int s : survivors) {
    YY_REQUIRE(s >= 0 && s < old_yin.size() + old_yang.size());
    (s < old_yin.size() ? n_yin : n_yang) += 1;
  }
  YY_REQUIRE(n_yin >= 1 && n_yang >= 1);
  const auto relayout = [](PanelLayout old, int n) {
    if (n == old.size()) return old;  // untouched panel keeps its shape
    const auto [d0, d1] = comm::CartComm::choose_dims(n);
    return PanelLayout{d0, d1};
  };
  return {relayout(old_yin, n_yin), relayout(old_yang, n_yang)};
}

void DistributedSolver::rebuild(const comm::Communicator& new_world,
                                const std::vector<int>& survivors,
                                const RebuildSource& src) {
  YY_REQUIRE(src.load != nullptr);
  YY_REQUIRE(static_cast<int>(survivors.size()) == new_world.size());
  const int old_world_size = runner_->world().size();
  YY_REQUIRE(static_cast<int>(src.holder_of.size()) == old_world_size);
  cancel_exchanges();

  // ---- capture the old layout before any member is replaced.
  const PanelLayout old_yin = runner_->layout(Panel::yin);
  const PanelLayout old_yang = runner_->layout(Panel::yang);
  const PanelDecomposition old_decomp[2] = {
      PanelDecomposition(geom_.nt(), geom_.np(), old_yin.pt, old_yin.pp),
      PanelDecomposition(geom_.nt(), geom_.np(), old_yang.pt, old_yang.pp)};

  std::vector<int> new_rank_of(static_cast<std::size_t>(old_world_size), -1);
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const int s = survivors[i];
    YY_REQUIRE(s >= 0 && s < old_world_size);
    YY_REQUIRE(i == 0 || s > survivors[i - 1]);
    new_rank_of[static_cast<std::size_t>(s)] = static_cast<int>(i);
  }

  const auto [new_yin, new_yang] =
      shrunk_layouts(old_yin, old_yang, survivors);
  YY_REQUIRE(new_yin.size() + new_yang.size() == new_world.size());

  // ---- rebuild the solver structure on the shrunk world (geom_ and
  // interp_ are global knowledge and survive as-is; a Yin survivor
  // stays Yin because survivor order preserves the panel partition).
  runner_ = std::make_unique<Runner>(new_world, new_yin, new_yang);
  const Panel panel = runner_->panel();
  decomp_ =
      PanelDecomposition(geom_.nt(), geom_.np(), runner_->pt(), runner_->pp());
  const PanelLayout& partner = runner_->layout(yinyang::other(panel));
  partner_decomp_ =
      PanelDecomposition(geom_.nt(), geom_.np(), partner.pt, partner.pp);
  extent_ = decomp_.patch(runner_->cart().coord(0), runner_->cart().coord(1));
  grid_ = std::make_unique<SphericalGrid>(
      patch_spec(geom_, extent_, cfg_.nr, cfg_.shell.r_inner,
                 cfg_.shell.r_outer));
  halo_ = std::make_unique<HaloExchanger>(*grid_, runner_->cart());
  overset_ = std::make_unique<OversetExchanger>(
      *interp_, decomp_, partner_decomp_, *runner_, *grid_, extent_);
  state_ = std::make_unique<mhd::Fields>(*grid_);
  ws_ = std::make_unique<mhd::Workspace>(*grid_);
  integrator_ = std::make_unique<mhd::Integrator>(
      cfg_.scheme, std::vector<const SphericalGrid*>{grid_.get()},
      cfg_.rhs_backend());
  weights_ = std::make_unique<mhd::ColumnWeights>(
      ownership_weights(geom_, *grid_, extent_.t0, extent_.p0));
  eq_ = panel == Panel::yin ? cfg_.eq : cfg_.eq.for_partner_panel();
  halo_posted_ = HaloExchanger::Posted{};
  overset_posted_ = OversetExchanger::Posted{};
  telemetry_ = nullptr;  // its aggregation window was over the old world

  // ---- deterministic redistribution plan, identical on every rank:
  // for each old patch, the rank serving its snapshot ships the
  // intersection with every new patch of the same panel.  Sends are
  // buffered and receives complete in the same global order, so the
  // two passes cannot deadlock or mismatch.
  struct Xfer {
    Panel p;
    int server;     // new world rank serving the old patch's snapshot
    int dest;       // new world rank owning the new patch
    int old_world;  // old world rank whose snapshot is shipped
    PatchExtent inter, old_e;
  };
  std::vector<Xfer> plan;
  for (const Panel p : {Panel::yin, Panel::yang}) {
    const int pi = p == Panel::yin ? 0 : 1;
    const PanelLayout& ol = pi == 0 ? old_yin : old_yang;
    const PanelDecomposition& od = old_decomp[pi];
    const PanelLayout& nl = runner_->layout(p);
    const PanelDecomposition& nd = decomp_of(p);
    const int old_base = pi == 0 ? 0 : old_yin.size();
    for (int o = 0; o < ol.size(); ++o) {
      const int w = old_base + o;
      const int holder = src.holder_of[static_cast<std::size_t>(w)];
      YY_REQUIRE(holder >= 0 && holder < old_world_size);
      const int server = new_rank_of[static_cast<std::size_t>(holder)];
      YY_REQUIRE(server >= 0);  // a dead holder cannot serve
      const PatchExtent oe = od.patch(o / ol.pp, o % ol.pp);
      for (int nn = 0; nn < nl.size(); ++nn) {
        const PatchExtent ne = nd.patch(nn / nl.pp, nn % nl.pp);
        const PatchExtent ov = intersect(oe, ne);
        if (ov.nt == 0 || ov.np == 0) continue;
        plan.push_back({p, server, runner_->world_rank(p, nn), w, ov, oe});
      }
    }
  }

  // Snapshots this rank serves, decoded once per old rank.
  std::map<int, std::unique_ptr<mhd::Fields>> served;
  const auto serve = [&](const Xfer& x) -> const mhd::Fields& {
    auto it = served.find(x.old_world);
    if (it == served.end()) {
      const SphericalGrid g(patch_spec(geom_, x.old_e, cfg_.nr,
                                       cfg_.shell.r_inner,
                                       cfg_.shell.r_outer));
      auto f = std::make_unique<mhd::Fields>(g);
      if (!src.load(x.old_world, *f)) {
        char msg[96];
        std::snprintf(msg, sizeof msg,
                      "rebuild: snapshot for old world rank %d cannot be "
                      "served",
                      x.old_world);
        throw Error(Error::Kind::corruption, msg);
      }
      it = served.emplace(x.old_world, std::move(f)).first;
    }
    return *it->second;
  };
  const auto pack = [&](const Xfer& x, std::vector<double>& buf) {
    const mhd::Fields& f = serve(x);
    buf.reserve(static_cast<std::size_t>(mhd::Fields::kNumFields) *
                static_cast<std::size_t>(cfg_.nr) *
                static_cast<std::size_t>(x.inter.nt) *
                static_cast<std::size_t>(x.inter.np));
    const int gh = geom_.ghost();
    for (const Field3* fld : f.all())
      for (int ip = 0; ip < x.inter.np; ++ip)
        for (int it = 0; it < x.inter.nt; ++it)
          for (int ir = 0; ir < cfg_.nr; ++ir)
            buf.push_back((*fld)(gh + ir, gh + (x.inter.t0 - x.old_e.t0) + it,
                                 gh + (x.inter.p0 - x.old_e.p0) + ip));
  };

  const int me = new_world.rank();
  const int gh = grid_->ghost();
  constexpr int tag_rebuild = 400;

  // Pass 1: post every send (self-copies are handled in pass 2).
  for (const Xfer& x : plan) {
    if (x.server != me || x.dest == me) continue;
    std::vector<double> buf;
    pack(x, buf);
    new_world.send(x.dest, tag_rebuild, buf);
  }

  // Pass 2: receives and self-copies, in the same global plan order.
  for (const Xfer& x : plan) {
    if (x.dest != me) continue;
    std::vector<double> buf;
    if (x.server == me) {
      pack(x, buf);
    } else {
      buf.resize(static_cast<std::size_t>(mhd::Fields::kNumFields) *
                 static_cast<std::size_t>(cfg_.nr) *
                 static_cast<std::size_t>(x.inter.nt) *
                 static_cast<std::size_t>(x.inter.np));
      new_world.recv(x.server, tag_rebuild, buf);
    }
    std::size_t k = 0;
    for (Field3* fld : state_->all())
      for (int ip = 0; ip < x.inter.np; ++ip)
        for (int it = 0; it < x.inter.nt; ++it)
          for (int ir = 0; ir < cfg_.nr; ++ir)
            (*fld)(gh + ir, gh + (x.inter.t0 - extent_.t0) + it,
                   gh + (x.inter.p0 - extent_.p0) + ip) = buf[k++];
  }
  served.clear();

  // Interiors are exact; the ghost frame (walls, halos, overset,
  // radial) is recomputed collectively, exactly as the end of a step
  // leaves it — completing the bitwise-equivalence argument.
  time_ = src.time;
  steps_ = src.step;
  fill_ghosts(*state_);
}

}  // namespace yy::core

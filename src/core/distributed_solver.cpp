#include "core/distributed_solver.hpp"

#include <algorithm>
#include <cmath>

#include "core/ownership.hpp"
#include "mhd/init.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace yy::core {

using yinyang::Panel;

namespace {

GridSpec patch_spec(const yinyang::ComponentGeometry& geom,
                    const PatchExtent& e, int nr, double r0, double r1) {
  GridSpec s;
  s.nr = nr;
  s.nt = e.nt;
  s.np = e.np;
  s.r0 = r0;
  s.r1 = r1;
  s.t0 = geom.t_min() + e.t0 * geom.dt();
  s.t1 = geom.t_min() + (e.t0 + e.nt - 1) * geom.dt();
  s.p0 = geom.p_min() + e.p0 * geom.dp();
  s.p1 = geom.p_min() + (e.p0 + e.np - 1) * geom.dp();
  s.ghost = geom.ghost();
  s.phi_periodic = false;
  return s;
}

}  // namespace

DistributedSolver::DistributedSolver(const SimulationConfig& cfg,
                                     const comm::Communicator& world, int pt,
                                     int pp)
    : cfg_(cfg),
      geom_(yinyang::ComponentGeometry::with_auto_margin(cfg.nt_core,
                                                         cfg.np_core)),
      runner_(std::make_unique<Runner>(world, pt, pp)),
      decomp_(geom_.nt(), geom_.np(), pt, pp),
      extent_(decomp_.patch(runner_->cart().coord(0), runner_->cart().coord(1))),
      bc_(cfg.thermal),
      eq_(runner_->panel() == Panel::yin ? cfg.eq : cfg.eq.for_partner_panel()) {
  grid_ = std::make_unique<SphericalGrid>(
      patch_spec(geom_, extent_, cfg.nr, cfg.shell.r_inner, cfg.shell.r_outer));
  interp_ = std::make_unique<yinyang::OversetInterpolator>(geom_);
  halo_ = std::make_unique<HaloExchanger>(*grid_, runner_->cart());
  overset_ = std::make_unique<OversetExchanger>(*interp_, decomp_, *runner_,
                                                *grid_, extent_);
  state_ = std::make_unique<mhd::Fields>(*grid_);
  ws_ = std::make_unique<mhd::Workspace>(*grid_);
  integrator_ = std::make_unique<mhd::Integrator>(
      cfg.scheme, std::vector<const SphericalGrid*>{grid_.get()},
      cfg.fused_rhs ? mhd::RhsBackend::fused : mhd::RhsBackend::reference);
  weights_ = std::make_unique<mhd::ColumnWeights>(
      ownership_weights(geom_, *grid_, extent_.t0, extent_.p0));
}

void DistributedSolver::fill_ghosts(mhd::Fields& s) {
  {
    YY_TRACE_SCOPE(obs::Phase::boundary);
    bc_.enforce_walls(*grid_, s);
  }
  halo_->exchange(s);     // records halo_wait
  overset_->exchange(s);  // records overset_wait
  YY_TRACE_SCOPE(obs::Phase::boundary);
  bc_.fill_ghosts(*grid_, s);
}

void DistributedSolver::cancel_exchanges() noexcept {
  halo_->cancel(halo_posted_);
  overset_->cancel(overset_posted_);
}

void DistributedSolver::post_exchanges(mhd::Fields& s) {
  const int gh = grid_->ghost();
  {
    YY_TRACE_SCOPE(obs::Phase::boundary);
    bc_.enforce_walls(*grid_, s);
    // Radial prefill of the owned columns: per-column local, so it can
    // run before the horizontal exchanges — and must, so the interior
    // RHS sees valid radial ghosts while the messages are in flight.
    bc_.fill_ghosts(*grid_, s, gh, gh + grid_->spec().nt, gh,
                    gh + grid_->spec().np);
  }
  YY_TRACE_SCOPE(obs::Phase::halo_overlap);
  try {
    halo_posted_ = halo_->post(s);
    overset_posted_ = overset_->post();
  } catch (...) {
    // A partial post (e.g. overset_->post() after a successful halo
    // post) must not leave the other exchanger wedged in flight.
    cancel_exchanges();
    throw;
  }
}

void DistributedSolver::finish_exchanges(mhd::Fields& s) {
  try {
    {
      YY_TRACE_SCOPE_V(span, obs::Phase::halo_wait);
      span.add_bytes(halo_->finish(s, halo_posted_));
    }
    {
      YY_TRACE_SCOPE_V(span, obs::Phase::overset_wait);
      span.add_bytes(overset_->finish(s, overset_posted_));
    }
  } catch (...) {
    // A faulted wait (comm timeout/corruption) unwinds the throwing
    // exchanger itself, but the *other* one may still be in flight —
    // cancel it so post-recovery steps can post afresh.
    cancel_exchanges();
    throw;
  }
  // Radial fill of the freshly received ghost frame; with the owned
  // prefill in post_exchanges this covers exactly one full fill_ghosts.
  YY_TRACE_SCOPE(obs::Phase::boundary);
  const int gh = grid_->ghost();
  const int nt = grid_->spec().nt;
  const int np = grid_->spec().np;
  bc_.fill_ghosts(*grid_, s, 0, gh, 0, grid_->Np());
  bc_.fill_ghosts(*grid_, s, gh + nt, grid_->Nt(), 0, grid_->Np());
  bc_.fill_ghosts(*grid_, s, gh, gh + nt, 0, gh);
  bc_.fill_ghosts(*grid_, s, gh, gh + nt, gh + np, grid_->Np());
}

void DistributedSolver::restore_state(const mhd::Fields& s, double time,
                                      long long step) {
  state_->copy_from(s);  // shape-checked inside
  time_ = time;
  steps_ = step;
}

void DistributedSolver::initialize() {
  mhd::initialize_state(*grid_, cfg_.shell, cfg_.thermal, cfg_.eq.g0, cfg_.ic,
                        static_cast<int>(runner_->panel()),
                        {extent_.t0, extent_.p0}, *state_);
  fill_ghosts(*state_);
  time_ = 0.0;
  steps_ = 0;
}

void DistributedSolver::step(double dt) {
  obs::set_current_step(steps_);
  if (telemetry_ != nullptr)
    telemetry_->begin_step(steps_, dt, last_stable_dt_);
  std::vector<mhd::PatchDef> patches{{grid_.get(), eq_, state_.get()}};
  const auto fill = [this](const std::vector<mhd::Fields*>& s) {
    fill_ghosts(*s[0]);
  };
  if (cfg_.overlap) {
    mhd::OverlapHooks hooks;
    hooks.post = [this](const std::vector<mhd::Fields*>& s) {
      post_exchanges(*s[0]);
    };
    hooks.finish = [this](const std::vector<mhd::Fields*>& s) {
      finish_exchanges(*s[0]);
    };
    hooks.rim_width = grid_->ghost();
    try {
      integrator_->step(patches, dt, fill, &hooks);
    } catch (...) {
      // The hooks unwind their own failures; this catches a throw from
      // the compute between post and finish, where both exchanges are
      // legitimately in flight with no finish() left to clean them up.
      cancel_exchanges();
      throw;
    }
  } else {
    integrator_->step(patches, dt, fill);
  }
  time_ += dt;
  ++steps_;
  if (telemetry_ != nullptr) telemetry_->end_step();
}

double DistributedSolver::stable_dt() {
  const double local = mhd::stable_timestep(*grid_, eq_, *state_, *ws_,
                                            grid_->interior());
  YY_TRACE_SCOPE(obs::Phase::reduce);
  last_stable_dt_ = cfg_.cfl_safety * runner_->world().allreduce_min(local);
  return last_stable_dt_;
}

mhd::EnergyBudget DistributedSolver::energies() {
  mhd::EnergyBudget e = mhd::integrate_energies(
      *grid_, eq_, *state_, *ws_, *weights_, grid_->interior());
  YY_TRACE_SCOPE(obs::Phase::reduce);
  double vals[4] = {e.mass, e.kinetic, e.magnetic, e.thermal};
  runner_->world().allreduce_sum(vals);
  return {vals[0], vals[1], vals[2], vals[3]};
}

Field3 DistributedSolver::gather_field(int field_index, Panel p) {
  YY_TRACE_SCOPE(obs::Phase::io);
  const comm::Communicator& world = runner_->world();
  const int gh = grid_->ghost();
  const bool mine = runner_->panel() == p;
  constexpr int tag_gather = 300;

  // Every rank of panel `p` ships its interior block (header + data)
  // to world rank 0, which assembles the global panel field.
  if (mine) {
    const Field3& f = *state_->all()[static_cast<std::size_t>(field_index)];
    std::vector<double> msg;
    msg.reserve(4 + static_cast<std::size_t>(cfg_.nr) * extent_.nt * extent_.np);
    msg.push_back(extent_.t0);
    msg.push_back(extent_.nt);
    msg.push_back(extent_.p0);
    msg.push_back(extent_.np);
    for (int ip = 0; ip < extent_.np; ++ip)
      for (int it = 0; it < extent_.nt; ++it)
        for (int ir = 0; ir < cfg_.nr; ++ir)
          msg.push_back(f(gh + ir, gh + it, gh + ip));
    world.send(0, tag_gather, msg);
  }

  Field3 out;
  if (world.rank() == 0) {
    out = Field3(cfg_.nr, geom_.nt(), geom_.np());
    const int nranks_panel = runner_->pt() * runner_->pp();
    for (int pr = 0; pr < nranks_panel; ++pr) {
      const int src = runner_->world_rank(p, pr);
      const auto pe = decomp_.patch(pr / runner_->pp(), pr % runner_->pp());
      std::vector<double> msg(4 + static_cast<std::size_t>(cfg_.nr) * pe.nt *
                                      pe.np);
      world.recv(src, tag_gather, msg);
      const int t0 = static_cast<int>(msg[0]);
      const int nt = static_cast<int>(msg[1]);
      const int p0 = static_cast<int>(msg[2]);
      const int np = static_cast<int>(msg[3]);
      std::size_t k = 4;
      for (int ip = 0; ip < np; ++ip)
        for (int it = 0; it < nt; ++it)
          for (int ir = 0; ir < cfg_.nr; ++ir)
            out(ir, t0 + it, p0 + ip) = msg[k++];
    }
  }
  return out;
}

}  // namespace yy::core

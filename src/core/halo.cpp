#include "core/halo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace yy::core {

namespace {
constexpr int tag_theta_to_low = 100;
constexpr int tag_theta_to_high = 101;
constexpr int tag_phi_to_low = 102;
constexpr int tag_phi_to_high = 103;
}  // namespace

HaloExchanger::HaloExchanger(const SphericalGrid& local,
                             const comm::CartComm& cart)
    : grid_(&local), cart_(&cart) {
  // Halo strips must come from the neighbour's interior: each patch
  // needs at least `ghost` interior nodes in a decomposed direction.
  if (cart.dim(0) > 1) YY_REQUIRE(local.spec().nt >= local.ghost());
  if (cart.dim(1) > 1) YY_REQUIRE(local.spec().np >= local.ghost());
  const std::size_t theta_strip = static_cast<std::size_t>(grid_->Nr()) *
                                  grid_->ghost() * grid_->Np() *
                                  mhd::Fields::kNumFields;
  const std::size_t phi_strip = static_cast<std::size_t>(grid_->Nr()) *
                                grid_->Nt() * grid_->ghost() *
                                mhd::Fields::kNumFields;
  const std::size_t cap = std::max(theta_strip, phi_strip);
  send_low_.resize(cap);
  send_high_.resize(cap);
  recv_low_.resize(cap);
  recv_high_.resize(cap);
}

std::uint64_t HaloExchanger::exchange_dim(mhd::Fields& s, int dim) const {
  const auto [low, high] = cart_->shift(dim, 1);  // (source, dest)
  if (low == comm::proc_null && high == comm::proc_null) return 0;

  const SphericalGrid& g = *grid_;
  const int gh = g.ghost();
  const int Nr = g.Nr();
  // θ phase (dim 0): strips are gh rows × full φ range.
  // φ phase (dim 1): strips are gh columns × full θ range (corners ride
  // along, completing the diagonal ghosts).
  const int t_lo_int = gh, t_hi_int = gh + g.spec().nt - gh;   // dim 0 strips
  const int p_lo_int = gh, p_hi_int = gh + g.spec().np - gh;   // dim 1 strips

  auto pack = [&](std::vector<double>& buf, int it0, int it1, int ip0,
                  int ip1) {
    std::size_t k = 0;
    for (const Field3* f : const_cast<const mhd::Fields&>(s).all())
      for (int ip = ip0; ip < ip1; ++ip)
        for (int it = it0; it < it1; ++it) {
          auto line = f->line(it, ip);
          std::copy(line.begin(), line.end(), buf.begin() + static_cast<std::ptrdiff_t>(k));
          k += static_cast<std::size_t>(Nr);
        }
    return k;
  };
  auto unpack = [&](const std::vector<double>& buf, int it0, int it1, int ip0,
                    int ip1) {
    std::size_t k = 0;
    for (Field3* f : s.all())
      for (int ip = ip0; ip < ip1; ++ip)
        for (int it = it0; it < it1; ++it) {
          auto line = f->line(it, ip);
          std::copy(buf.begin() + static_cast<std::ptrdiff_t>(k),
                    buf.begin() + static_cast<std::ptrdiff_t>(k + static_cast<std::size_t>(Nr)),
                    line.begin());
          k += static_cast<std::size_t>(Nr);
        }
    return k;
  };

  const comm::Communicator& c = cart_->comm();
  const int tag_to_low = dim == 0 ? tag_theta_to_low : tag_phi_to_low;
  const int tag_to_high = dim == 0 ? tag_theta_to_high : tag_phi_to_high;

  std::size_t n = 0;
  if (dim == 0) {
    n = static_cast<std::size_t>(Nr) * gh * g.Np() * mhd::Fields::kNumFields;
    // Receive into ghosts, send interior edge strips.
    auto rl = c.irecv(low, tag_to_high, {recv_low_.data(), n});
    auto rh = c.irecv(high, tag_to_low, {recv_high_.data(), n});
    if (low != comm::proc_null) {
      const std::size_t k = pack(send_low_, t_lo_int, t_lo_int + gh, 0, g.Np());
      YY_ASSERT(k == n);
      c.send(low, tag_to_low, {send_low_.data(), n});
    }
    if (high != comm::proc_null) {
      const std::size_t k = pack(send_high_, t_hi_int, t_hi_int + gh, 0, g.Np());
      YY_ASSERT(k == n);
      c.send(high, tag_to_high, {send_high_.data(), n});
    }
    c.wait(rl);
    c.wait(rh);
    if (low != comm::proc_null) unpack(recv_low_, 0, gh, 0, g.Np());
    if (high != comm::proc_null)
      unpack(recv_high_, gh + g.spec().nt, gh + g.spec().nt + gh, 0, g.Np());
  } else {
    n = static_cast<std::size_t>(Nr) * g.Nt() * gh * mhd::Fields::kNumFields;
    auto rl = c.irecv(low, tag_to_high, {recv_low_.data(), n});
    auto rh = c.irecv(high, tag_to_low, {recv_high_.data(), n});
    if (low != comm::proc_null) {
      const std::size_t k = pack(send_low_, 0, g.Nt(), p_lo_int, p_lo_int + gh);
      YY_ASSERT(k == n);
      c.send(low, tag_to_low, {send_low_.data(), n});
    }
    if (high != comm::proc_null) {
      const std::size_t k = pack(send_high_, 0, g.Nt(), p_hi_int, p_hi_int + gh);
      YY_ASSERT(k == n);
      c.send(high, tag_to_high, {send_high_.data(), n});
    }
    c.wait(rl);
    c.wait(rh);
    if (low != comm::proc_null) unpack(recv_low_, 0, g.Nt(), 0, gh);
    if (high != comm::proc_null)
      unpack(recv_high_, 0, g.Nt(), gh + g.spec().np, gh + g.spec().np + gh);
  }
  // Bytes moved by this rank in this dim: send + recv per live side.
  std::uint64_t bytes = 0;
  if (low != comm::proc_null) bytes += 2 * n * sizeof(double);
  if (high != comm::proc_null) bytes += 2 * n * sizeof(double);
  return bytes;
}

void HaloExchanger::exchange(mhd::Fields& s) const {
  YY_TRACE_SCOPE_V(span, obs::Phase::halo_wait);
  span.add_bytes(exchange_dim(s, 0));  // θ strips
  span.add_bytes(exchange_dim(s, 1));  // φ strips (full θ range → corners)
}

std::uint64_t HaloExchanger::bytes_per_exchange() const {
  const SphericalGrid& g = *grid_;
  std::uint64_t bytes = 0;
  for (int dim = 0; dim < 2; ++dim) {
    const auto [low, high] = cart_->shift(dim, 1);
    const std::uint64_t strip =
        static_cast<std::uint64_t>(g.Nr()) * g.ghost() *
        (dim == 0 ? g.Np() : g.Nt()) * mhd::Fields::kNumFields * sizeof(double);
    if (low != comm::proc_null) bytes += 2 * strip;   // send + recv
    if (high != comm::proc_null) bytes += 2 * strip;
  }
  return bytes;
}

}  // namespace yy::core

#include "core/halo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace yy::core {

namespace {
constexpr int tag_theta_to_low = 100;
constexpr int tag_theta_to_high = 101;
constexpr int tag_phi_to_low = 102;
constexpr int tag_phi_to_high = 103;
}  // namespace

HaloExchanger::HaloExchanger(const SphericalGrid& local,
                             const comm::CartComm& cart)
    : grid_(&local), cart_(&cart) {
  // Halo strips must come from the neighbour's interior: each patch
  // needs at least `ghost` interior nodes in a decomposed direction.
  if (cart.dim(0) > 1) YY_REQUIRE(local.spec().nt >= local.ghost());
  if (cart.dim(1) > 1) YY_REQUIRE(local.spec().np >= local.ghost());
  send_t_low_.resize(theta_count());
  send_t_high_.resize(theta_count());
  recv_t_low_.resize(theta_count());
  recv_t_high_.resize(theta_count());
  send_p_low_.resize(phi_count());
  send_p_high_.resize(phi_count());
  recv_p_low_.resize(phi_count());
  recv_p_high_.resize(phi_count());
}

std::size_t HaloExchanger::theta_count() const {
  return static_cast<std::size_t>(grid_->Nr()) * grid_->ghost() *
         grid_->Np() * mhd::Fields::kNumFields;
}

std::size_t HaloExchanger::phi_count() const {
  return static_cast<std::size_t>(grid_->Nr()) * grid_->Nt() *
         grid_->ghost() * mhd::Fields::kNumFields;
}

std::size_t HaloExchanger::pack(const mhd::Fields& s, std::vector<double>& buf,
                                int it0, int it1, int ip0, int ip1) const {
  const int Nr = grid_->Nr();
  std::size_t k = 0;
  for (const Field3* f : s.all())
    for (int ip = ip0; ip < ip1; ++ip)
      for (int it = it0; it < it1; ++it) {
        auto line = f->line(it, ip);
        std::copy(line.begin(), line.end(),
                  buf.begin() + static_cast<std::ptrdiff_t>(k));
        k += static_cast<std::size_t>(Nr);
      }
  return k;
}

std::size_t HaloExchanger::unpack(mhd::Fields& s,
                                  const std::vector<double>& buf, int it0,
                                  int it1, int ip0, int ip1) const {
  const int Nr = grid_->Nr();
  std::size_t k = 0;
  for (Field3* f : s.all())
    for (int ip = ip0; ip < ip1; ++ip)
      for (int it = it0; it < it1; ++it) {
        auto line = f->line(it, ip);
        std::copy(buf.begin() + static_cast<std::ptrdiff_t>(k),
                  buf.begin() +
                      static_cast<std::ptrdiff_t>(k + static_cast<std::size_t>(Nr)),
                  line.begin());
        k += static_cast<std::size_t>(Nr);
      }
  return k;
}

HaloExchanger::Posted HaloExchanger::post(mhd::Fields& s) const {
  YY_REQUIRE(!in_flight_);  // single-buffered: one exchange in flight max
  in_flight_ = true;

  const SphericalGrid& g = *grid_;
  const int gh = g.ghost();
  const comm::Communicator& c = cart_->comm();
  const auto [t_low, t_high] = cart_->shift(0, 1);
  const auto [p_low, p_high] = cart_->shift(1, 1);
  const std::size_t nt = theta_count();
  const std::size_t np = phi_count();

  Posted po;
  po.active = true;
  // Pre-post every receive before any send (the paper's irecv-then-send
  // idiom).  proc_null sides yield immediately-complete requests.
  po.rt_low = c.irecv(t_low, tag_theta_to_high, {recv_t_low_.data(), nt});
  po.rt_high = c.irecv(t_high, tag_theta_to_low, {recv_t_high_.data(), nt});
  po.rp_low = c.irecv(p_low, tag_phi_to_high, {recv_p_low_.data(), np});
  po.rp_high = c.irecv(p_high, tag_phi_to_low, {recv_p_high_.data(), np});

  // θ strips depend only on owned interior data — send them now.
  const int t_lo_int = gh;
  const int t_hi_int = gh + g.spec().nt - gh;
  if (t_low != comm::proc_null) {
    const std::size_t k = pack(s, send_t_low_, t_lo_int, t_lo_int + gh, 0, g.Np());
    YY_ASSERT(k == nt);
    c.send(t_low, tag_theta_to_low, {send_t_low_.data(), nt});
  }
  if (t_high != comm::proc_null) {
    const std::size_t k = pack(s, send_t_high_, t_hi_int, t_hi_int + gh, 0, g.Np());
    YY_ASSERT(k == nt);
    c.send(t_high, tag_theta_to_high, {send_t_high_.data(), nt});
  }
  return po;
}

std::uint64_t HaloExchanger::finish(mhd::Fields& s, Posted& p) const {
  YY_REQUIRE(p.active && in_flight_);
  // A faulted fabric surfaces timeouts from wait(); the recovery path
  // (recovery_rendezvous) purges all in-flight traffic, so the next
  // exchange must start from a clean slate — drop the in-flight state
  // before letting the error unwind.
  try {
    return finish_impl(s, p);
  } catch (...) {
    p.active = false;
    in_flight_ = false;
    throw;
  }
}

std::uint64_t HaloExchanger::finish_impl(mhd::Fields& s, Posted& p) const {
  const SphericalGrid& g = *grid_;
  const int gh = g.ghost();
  const comm::Communicator& c = cart_->comm();
  const auto [t_low, t_high] = cart_->shift(0, 1);
  const auto [p_low, p_high] = cart_->shift(1, 1);
  const std::size_t nt = theta_count();
  const std::size_t np = phi_count();

  // θ phase: land the ghost rows.
  c.wait(p.rt_low);
  c.wait(p.rt_high);
  if (t_low != comm::proc_null) unpack(s, recv_t_low_, 0, gh, 0, g.Np());
  if (t_high != comm::proc_null)
    unpack(s, recv_t_high_, gh + g.spec().nt, gh + g.spec().nt + gh, 0, g.Np());

  // φ phase: strips span the full ghost-inclusive θ range, so packing
  // had to wait for the θ ghosts above — this completes the corners.
  const int p_lo_int = gh;
  const int p_hi_int = gh + g.spec().np - gh;
  if (p_low != comm::proc_null) {
    const std::size_t k = pack(s, send_p_low_, 0, g.Nt(), p_lo_int, p_lo_int + gh);
    YY_ASSERT(k == np);
    c.send(p_low, tag_phi_to_low, {send_p_low_.data(), np});
  }
  if (p_high != comm::proc_null) {
    const std::size_t k = pack(s, send_p_high_, 0, g.Nt(), p_hi_int, p_hi_int + gh);
    YY_ASSERT(k == np);
    c.send(p_high, tag_phi_to_high, {send_p_high_.data(), np});
  }
  c.wait(p.rp_low);
  c.wait(p.rp_high);
  if (p_low != comm::proc_null) unpack(s, recv_p_low_, 0, g.Nt(), 0, gh);
  if (p_high != comm::proc_null)
    unpack(s, recv_p_high_, 0, g.Nt(), gh + g.spec().np, gh + g.spec().np + gh);

  p.active = false;
  in_flight_ = false;

  std::uint64_t bytes = 0;
  if (t_low != comm::proc_null) bytes += 2 * nt * sizeof(double);
  if (t_high != comm::proc_null) bytes += 2 * nt * sizeof(double);
  if (p_low != comm::proc_null) bytes += 2 * np * sizeof(double);
  if (p_high != comm::proc_null) bytes += 2 * np * sizeof(double);
  return bytes;
}

void HaloExchanger::cancel(Posted& p) const noexcept {
  if (!p.active) return;
  p = Posted{};  // requests are lazy matchers: dropping them abandons them
  in_flight_ = false;
}

void HaloExchanger::exchange(mhd::Fields& s) const {
  YY_TRACE_SCOPE_V(span, obs::Phase::halo_wait);
  Posted p = post(s);
  span.add_bytes(finish(s, p));
}

std::uint64_t HaloExchanger::bytes_per_exchange() const {
  const SphericalGrid& g = *grid_;
  std::uint64_t bytes = 0;
  for (int dim = 0; dim < 2; ++dim) {
    const auto [low, high] = cart_->shift(dim, 1);
    const std::uint64_t strip =
        static_cast<std::uint64_t>(g.Nr()) * g.ghost() *
        (dim == 0 ? g.Np() : g.Nt()) * mhd::Fields::kNumFields * sizeof(double);
    if (low != comm::proc_null) bytes += 2 * strip;   // send + recv
    if (high != comm::proc_null) bytes += 2 * strip;
  }
  return bytes;
}

}  // namespace yy::core

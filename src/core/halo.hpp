/// \file halo.hpp
/// Intra-panel nearest-neighbour halo exchange (paper §IV: "MPI_SEND
/// and MPI_IRECV are called between nearest neighbor processes.  Each
/// process has four neighbors (north, east, south, and west)").
///
/// The exchange is two-phase — θ strips first, then φ strips spanning
/// the *full* (ghost-inclusive) θ range — so the diagonal ghost
/// corners needed by the composite second-derivative stencils arrive
/// without explicit corner messages.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cart.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/state.hpp"

namespace yy::core {

class HaloExchanger {
 public:
  HaloExchanger(const SphericalGrid& local, const comm::CartComm& cart);

  /// Refreshes the θ/φ ghost layers of `s` shared with cart neighbours;
  /// panel-boundary ghosts (proc_null sides) are left for the overset.
  /// Records one `halo_wait` trace span carrying the bytes moved.
  void exchange(mhd::Fields& s) const;

  /// Bytes moved per exchange by this rank (both directions, all
  /// fields); feeds the perf model's communication volumes.
  std::uint64_t bytes_per_exchange() const;

 private:
  /// Returns the bytes moved (send + recv over live sides).
  std::uint64_t exchange_dim(mhd::Fields& s, int dim) const;

  const SphericalGrid* grid_;
  const comm::CartComm* cart_;
  mutable std::vector<double> send_low_, send_high_, recv_low_, recv_high_;
};

}  // namespace yy::core

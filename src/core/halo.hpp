/// \file halo.hpp
/// Intra-panel nearest-neighbour halo exchange (paper §IV: "MPI_SEND
/// and MPI_IRECV are called between nearest neighbor processes.  Each
/// process has four neighbors (north, east, south, and west)").
///
/// The exchange is two-phase — θ strips first, then φ strips spanning
/// the *full* (ghost-inclusive) θ range — so the diagonal ghost
/// corners needed by the composite second-derivative stencils arrive
/// without explicit corner messages.
///
/// Two entry points drive the same wire protocol:
///  * exchange(): the synchronous seed path — post, then finish, in
///    one call under a `halo_wait` span.
///  * post()/finish(): the overlapped path.  post() pre-posts all four
///    receives and launches the θ-strip sends (they depend only on
///    owned interior data); finish() completes θ, then packs and sends
///    the φ strips (they span the ghost-inclusive θ range, so they
///    must wait for the θ ghosts to land) and completes them.  Between
///    the two calls the caller may compute on any data the exchange
///    does not write — the interior sweep of the overlapped stepping
///    mode.  The wire messages are identical to exchange(), so the
///    resulting ghosts are bitwise the same.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cart.hpp"
#include "comm/communicator.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/state.hpp"

namespace yy::core {

class HaloExchanger {
 public:
  HaloExchanger(const SphericalGrid& local, const comm::CartComm& cart);

  /// In-flight state of one posted exchange.  Obtained from post(),
  /// consumed exactly once by finish().
  struct Posted {
    comm::Request rt_low, rt_high;  ///< θ-strip receives
    comm::Request rp_low, rp_high;  ///< φ-strip receives (pre-posted)
    bool active = false;
  };

  /// Refreshes the θ/φ ghost layers of `s` shared with cart neighbours;
  /// panel-boundary ghosts (proc_null sides) are left for the overset.
  /// Records one `halo_wait` trace span carrying the bytes moved.
  void exchange(mhd::Fields& s) const;

  /// Posts all four receives and sends the θ strips.  At most one
  /// exchange may be in flight per exchanger (the internal buffers are
  /// single-buffered); a second post() before finish() throws.
  Posted post(mhd::Fields& s) const;

  /// Completes a posted exchange: θ wait/unpack, φ pack/send/wait/
  /// unpack.  Returns the bytes moved (send + recv over live sides).
  /// Records no trace span — the caller owns phase attribution.
  std::uint64_t finish(mhd::Fields& s, Posted& p) const;

  /// Abandons a posted exchange without completing it: invalidates the
  /// handles in `p` and clears the in-flight guard so a later post() is
  /// legal again.  Receives in this runtime are lazy matchers (nothing
  /// is registered with the fabric until wait), so dropping the handles
  /// is enough — but any envelopes already sent to or by this rank stay
  /// queued, and the caller must purge them (recovery_rendezvous, as
  /// the resilient recovery path does) before the next exchange, or
  /// stale messages would satisfy its receives.  No-op when `p` was
  /// never posted or has already finished.
  void cancel(Posted& p) const noexcept;

  /// Bytes moved per exchange by this rank (both directions, all
  /// fields); feeds the perf model's communication volumes.
  std::uint64_t bytes_per_exchange() const;

 private:
  std::uint64_t finish_impl(mhd::Fields& s, Posted& p) const;
  std::size_t theta_count() const;  ///< doubles per θ strip
  std::size_t phi_count() const;    ///< doubles per φ strip
  std::size_t pack(const mhd::Fields& s, std::vector<double>& buf, int it0,
                   int it1, int ip0, int ip1) const;
  std::size_t unpack(mhd::Fields& s, const std::vector<double>& buf, int it0,
                     int it1, int ip0, int ip1) const;

  const SphericalGrid* grid_;
  const comm::CartComm* cart_;
  mutable bool in_flight_ = false;
  // Single-buffered per direction and dimension: sends are buffered by
  // the fabric at send() time, but receive buffers stay pinned until
  // the matching wait — hence the one-in-flight rule above.
  mutable std::vector<double> send_t_low_, send_t_high_;
  mutable std::vector<double> recv_t_low_, recv_t_high_;
  mutable std::vector<double> send_p_low_, send_p_high_;
  mutable std::vector<double> recv_p_low_, recv_p_high_;
};

}  // namespace yy::core

#include "core/overset_exchange.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace yy::core {

namespace {
constexpr int tag_overset = 200;
constexpr int kFieldsPerColumn = mhd::Fields::kNumFields;
}  // namespace

OversetExchanger::OversetExchanger(const yinyang::OversetInterpolator& interp,
                                   const PanelDecomposition& my_decomp,
                                   const PanelDecomposition& partner_decomp,
                                   const Runner& runner,
                                   const SphericalGrid& local,
                                   const PatchExtent& extent)
    : grid_(&local), runner_(&runner), nr_(local.spec().nr) {
  const int gh = local.ghost();
  const yinyang::Panel me_panel = runner.panel();
  const yinyang::Panel partner_panel = yinyang::other(me_panel);
  const int my_panel_rank = runner.panel_rank();

  // The plan derives from the global stencil table.  Entry indices are
  // panel full-array positions of a *whole-panel* grid with the same
  // ghost width; interior index = full − gh.  Donor and receiver walk
  // the table in the same order with mirrored predicates, so the
  // per-(sender, receiver) message streams agree even when the two
  // panels carry different decompositions.
  for (const yinyang::StencilEntry& e : interp.entries()) {
    const int jt_int = e.donor_jt - gh;
    const int jp_int = e.donor_jp - gh;

    // --- donor side: I donate when MY panel's decomposition assigns me
    // the donor cell's base node (the 2×2 stencil's +1 rows may live in
    // my halo, which is valid because halo exchange precedes the
    // overset exchange).  Receivers are every partner-panel rank whose
    // patch array contains the ghost column (ghost frames of adjacent
    // edge patches overlap at panel corners).
    const int donor_ct = my_decomp.owner_t(jt_int);
    const int donor_cp = my_decomp.owner_p(jp_int);
    if (donor_ct * my_decomp.pp() + donor_cp == my_panel_rank) {
      const PatchExtent mine = my_decomp.patch(donor_ct, donor_cp);
      for (int ct = 0; ct < partner_decomp.pt(); ++ct) {
        for (int cp = 0; cp < partner_decomp.pp(); ++cp) {
          const PatchExtent pe = partner_decomp.patch(ct, cp);
          const int itloc = e.recv_it - pe.t0;  // receiver full-array index
          const int iploc = e.recv_ip - pe.p0;
          if (itloc < 0 || itloc >= pe.nt + 2 * gh) continue;
          if (iploc < 0 || iploc >= pe.np + 2 * gh) continue;
          SendItem si;
          si.entry = e;
          si.entry.donor_jt = e.donor_jt - mine.t0;  // rebase to my patch
          si.entry.donor_jp = e.donor_jp - mine.p0;
          send_plan_[runner.world_rank(partner_panel,
                                       ct * partner_decomp.pp() + cp)]
              .push_back(si);
        }
      }
    }

    // --- receiver side: I receive when my own patch array contains the
    // ghost column; the donor is the partner panel's owner of the donor
    // base node.  The table is panel-symmetric, so it serves both
    // directions simultaneously.
    const int itloc = e.recv_it - extent.t0;
    const int iploc = e.recv_ip - extent.p0;
    if (itloc >= 0 && itloc < extent.nt + 2 * gh && iploc >= 0 &&
        iploc < extent.np + 2 * gh) {
      const int donor_rank =
          partner_decomp.owner_t(jt_int) * partner_decomp.pp() +
          partner_decomp.owner_p(jp_int);
      recv_plan_[runner.world_rank(partner_panel, donor_rank)].push_back(
          {itloc, iploc});
    }
  }

  for (const auto& [rank, items] : send_plan_)
    send_bufs_.emplace_back(items.size() * static_cast<std::size_t>(nr_) *
                            kFieldsPerColumn);
  for (const auto& [rank, items] : recv_plan_)
    recv_bufs_.emplace_back(items.size() * static_cast<std::size_t>(nr_) *
                            kFieldsPerColumn);
}

void OversetExchanger::exchange(mhd::Fields& s) const {
  YY_TRACE_SCOPE_V(span, obs::Phase::overset_wait);
  Posted p = post();
  span.add_bytes(finish(s, p));
}

OversetExchanger::Posted OversetExchanger::post() const {
  YY_REQUIRE(!in_flight_);  // single-buffered: one exchange in flight max
  in_flight_ = true;
  const comm::Communicator& world = runner_->world();

  // Post all receives first (MPI_IRECV), then interpolate-and-send
  // (in finish()).
  Posted p;
  p.active = true;
  p.reqs.reserve(recv_plan_.size());
  std::size_t b = 0;
  for (const auto& [rank, items] : recv_plan_) {
    p.reqs.push_back(world.irecv(
        rank, tag_overset,
        {recv_bufs_[b].data(),
         items.size() * static_cast<std::size_t>(nr_) * kFieldsPerColumn}));
    ++b;
  }
  return p;
}

std::uint64_t OversetExchanger::finish(mhd::Fields& s, Posted& p) const {
  YY_REQUIRE(p.active && in_flight_);
  // Faulted fabrics surface timeouts from wait(); recovery purges all
  // in-flight traffic, so drop the in-flight state before unwinding.
  try {
    return finish_impl(s, p);
  } catch (...) {
    p.active = false;
    in_flight_ = false;
    throw;
  }
}

void OversetExchanger::cancel(Posted& p) const noexcept {
  if (!p.active) return;
  p = Posted{};  // requests are lazy matchers: dropping them abandons them
  in_flight_ = false;
}

std::uint64_t OversetExchanger::finish_impl(mhd::Fields& s, Posted& p) const {
  const comm::Communicator& world = runner_->world();
  const int gh = grid_->ghost();
  std::vector<comm::Request>& reqs = p.reqs;

  // Donor-side interpolation: per entry, per field, one radial line.
  // Vector fields (f, A) are rotated into the receiver frame here, so
  // the receiver only copies.
  {
    std::size_t b = 0;
    for (const auto& [rank, items] : send_plan_) {
      std::vector<double>& buf = send_bufs_[b];
      std::size_t k = 0;
      for (const SendItem& si : items) {
        const yinyang::StencilEntry& e = si.entry;
        auto interp_line = [&](const Field3& f, int ir) {
          return e.w[0][0] * f(ir, e.donor_jt, e.donor_jp) +
                 e.w[0][1] * f(ir, e.donor_jt, e.donor_jp + 1) +
                 e.w[1][0] * f(ir, e.donor_jt + 1, e.donor_jp) +
                 e.w[1][1] * f(ir, e.donor_jt + 1, e.donor_jp + 1);
        };
        for (int ir = gh; ir < gh + nr_; ++ir) {
          const double rho = interp_line(s.rho, ir);
          const double pres = interp_line(s.p, ir);
          const Vec3 f = e.rot * Vec3{interp_line(s.fr, ir),
                                      interp_line(s.ft, ir),
                                      interp_line(s.fp, ir)};
          const Vec3 a = e.rot * Vec3{interp_line(s.ar, ir),
                                      interp_line(s.at, ir),
                                      interp_line(s.ap, ir)};
          buf[k + 0] = rho;
          buf[k + 1] = f.x;
          buf[k + 2] = f.y;
          buf[k + 3] = f.z;
          buf[k + 4] = pres;
          buf[k + 5] = a.x;
          buf[k + 6] = a.y;
          buf[k + 7] = a.z;
          k += kFieldsPerColumn;
        }
      }
      YY_ASSERT(k == buf.size());
      world.send(rank, tag_overset, buf);
      ++b;
    }
  }

  // Complete receives and scatter into the ghost columns.
  {
    std::size_t b = 0;
    for (const auto& [rank, items] : recv_plan_) {
      world.wait(reqs[b]);
      const std::vector<double>& buf = recv_bufs_[b];
      std::size_t k = 0;
      for (const RecvItem& ri : items) {
        for (int ir = gh; ir < gh + nr_; ++ir) {
          s.rho(ir, ri.itloc, ri.iploc) = buf[k + 0];
          s.fr(ir, ri.itloc, ri.iploc) = buf[k + 1];
          s.ft(ir, ri.itloc, ri.iploc) = buf[k + 2];
          s.fp(ir, ri.itloc, ri.iploc) = buf[k + 3];
          s.p(ir, ri.itloc, ri.iploc) = buf[k + 4];
          s.ar(ir, ri.itloc, ri.iploc) = buf[k + 5];
          s.at(ir, ri.itloc, ri.iploc) = buf[k + 6];
          s.ap(ir, ri.itloc, ri.iploc) = buf[k + 7];
          k += kFieldsPerColumn;
        }
      }
      YY_ASSERT(k == buf.size());
      ++b;
    }
  }

  p.active = false;
  in_flight_ = false;
  return bytes_sent_per_exchange();
}

std::uint64_t OversetExchanger::bytes_sent_per_exchange() const {
  std::uint64_t bytes = 0;
  for (const auto& buf : send_bufs_) bytes += buf.size() * sizeof(double);
  return bytes;
}

}  // namespace yy::core

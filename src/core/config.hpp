/// \file config.hpp
/// One configuration object describing a whole geodynamo run: grid
/// resolution, shell geometry, physical parameters (given in the Yin
/// frame; the Yang frame's rotation axis follows from eq. 1), initial
/// conditions and CFL safety factor.
#pragma once

#include "mhd/init.hpp"
#include "mhd/integrator.hpp"
#include "mhd/params.hpp"

namespace yy::core {

struct SimulationConfig {
  // Resolution: radial nodes and core-span horizontal nodes per panel
  // (the panel's extended interior adds the auto-margin cells).
  int nr = 17;
  int nt_core = 17;
  int np_core = 49;

  mhd::ShellSpec shell;
  mhd::ThermalBc thermal;
  mhd::EquationParams eq;  ///< omega interpreted in the Yin frame
  mhd::InitialConditions ic;

  double cfl_safety = 0.25;

  /// Time scheme; the paper uses classical RK4 (§III), the others exist
  /// for ablation and order-verification tests.
  mhd::TimeScheme scheme = mhd::TimeScheme::rk4;

  /// Overlapped stepping: the distributed solver hides halo/overset
  /// exchange latency behind the interior RHS sweep of each RK4 stage
  /// (bitwise-identical trajectories; see DESIGN.md §10).  Honoured by
  /// the rk4 scheme; euler/rk2 fall back to synchronous fills.
  bool overlap = false;

  /// RHS backend: false = reference operator-at-a-time chain, true =
  /// fused cache-blocked pencil sweep (bitwise-identical trajectories;
  /// see DESIGN.md §11).  Composes with `overlap`.
  bool fused_rhs = false;

  /// SIMD RHS backend: the fused sweep with radial lane packs
  /// (bitwise-identical trajectories; see DESIGN.md §14).  Takes
  /// precedence over `fused_rhs`; composes with `overlap`.  Lane width
  /// comes from the build's ISA, overridable with YY_SIMD=scalar|1|2|4|8.
  bool simd_rhs = false;

  /// The backend the two flags above select (simd > fused > reference).
  mhd::RhsBackend rhs_backend() const {
    if (simd_rhs) return mhd::RhsBackend::simd;
    return fused_rhs ? mhd::RhsBackend::fused : mhd::RhsBackend::reference;
  }
};

}  // namespace yy::core

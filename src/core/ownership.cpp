#include "core/ownership.hpp"

#include "yinyang/transform.hpp"

namespace yy::core {

mhd::ColumnWeights ownership_weights(const yinyang::ComponentGeometry& geom,
                                     const SphericalGrid& patch,
                                     int it0_panel, int ip0_panel) {
  using yinyang::Angles;
  using yinyang::ComponentGeometry;
  mhd::ColumnWeights w(patch.Nt(), patch.Np(), 0.0);
  const IndexBox in = patch.interior();
  for (int it = in.t0; it < in.t1; ++it) {
    for (int ip = in.p0; ip < in.p1; ++ip) {
      const int pt = it0_panel + (it - in.t0);  // panel interior indices
      const int pp = ip0_panel + (ip - in.p0);
      const Angles a{geom.t_min() + pt * geom.dt(),
                     geom.p_min() + pp * geom.dp()};
      if (!ComponentGeometry::in_core(a)) continue;  // margin: partner owns
      const Angles b = yinyang::partner_angles(a);
      w.at(it, ip) = ComponentGeometry::in_core(b) ? 0.5 : 1.0;
    }
  }
  return w;
}

}  // namespace yy::core

/// \file simulation.hpp
/// Production-run orchestration around the serial solver: adaptive CFL
/// stepping with a growth limiter (fast-developing convection can
/// outrun a stale timestep between CFL re-evaluations), wall-clock
/// budgets, and simulated-time snapshot scheduling — the workflow of
/// paper §V, where one 6-hour run saved 3-D data 127 times.
#pragma once

#include <functional>

#include "core/serial_solver.hpp"

namespace yy::core {

struct RunControl {
  double t_end = 0.1;          ///< stop at this simulated time...
  long long max_steps = 1u << 20;  ///< ...or after this many steps
  double max_wall_seconds = 1e30;  ///< ...or this much wall clock
  double snapshot_interval = 0.0;  ///< simulated time between snapshots
                                   ///< (0 = no snapshots)
  /// dt may grow at most this factor per step (the CFL estimate is
  /// re-evaluated every step, but the limiter damps the jumps a
  /// rapidly stiffening state can cause).
  double max_dt_growth = 1.1;
};

struct RunSummary {
  long long steps = 0;
  double t_final = 0.0;
  int snapshots = 0;
  double wall_seconds = 0.0;
  bool hit_step_limit = false;
  bool hit_wall_limit = false;
  bool diverged = false;  ///< a non-finite energy was detected
};

class Simulation {
 public:
  using SnapshotFn = std::function<void(SerialYinYangSolver&, int snapshot_id)>;

  explicit Simulation(SerialYinYangSolver& solver) : solver_(&solver) {}

  /// Runs until t_end (or a limit trips); invokes `on_snapshot` at
  /// t = k·snapshot_interval boundaries (after the crossing step).
  RunSummary run(const RunControl& ctl, const SnapshotFn& on_snapshot = {});

 private:
  SerialYinYangSolver* solver_;
};

}  // namespace yy::core

/// \file serial_solver.hpp
/// Whole-sphere geodynamo solver with both Yin-Yang panels in one
/// address space — the single-process reference implementation of the
/// paper's yycore algorithm.  The distributed solver must reproduce
/// this one's trajectories (up to floating-point reassociation), which
/// the integration tests assert.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/boundary.hpp"
#include "mhd/diagnostics.hpp"
#include "mhd/integrator.hpp"
#include "yinyang/geometry.hpp"
#include "yinyang/interpolator.hpp"

namespace yy::core {

class SerialYinYangSolver {
 public:
  explicit SerialYinYangSolver(const SimulationConfig& cfg);

  /// Applies the initial conditions and establishes all ghost data.
  void initialize();

  /// One RK4 step of both panels.
  void step(double dt);

  /// Runs `n` steps at the current CFL timestep (re-estimated every
  /// `recompute_every` steps); returns the simulated time advanced.
  double run_steps(int n, int recompute_every = 10);

  /// CFL-stable dt (including the configured safety factor).
  double stable_dt();

  /// Globally weighted energies (overlap counted once).
  mhd::EnergyBudget energies();

  /// RMS and max difference of the "double solution" in the overlap:
  /// each panel's interior values vs interpolation from the partner,
  /// over the given state field index (paper §II's discretization-error
  /// sized mismatch).  Returns {rms, max}.
  std::pair<double, double> double_solution_error(int field_index);

  const SimulationConfig& config() const { return cfg_; }
  const yinyang::ComponentGeometry& geometry() const { return geom_; }
  const SphericalGrid& grid() const { return grid_; }
  mhd::Fields& panel(yinyang::Panel p) {
    return p == yinyang::Panel::yin ? yin_ : yang_;
  }
  const mhd::Fields& panel(yinyang::Panel p) const {
    return p == yinyang::Panel::yin ? yin_ : yang_;
  }
  mhd::Workspace& workspace() { return ws_; }
  const mhd::EquationParams& eq(yinyang::Panel p) const {
    return p == yinyang::Panel::yin ? eq_yin_ : eq_yang_;
  }
  double time() const { return time_; }
  long long steps_taken() const { return steps_; }

  /// Ghost-establishment pipeline (walls → overset → radial ghosts);
  /// public so tests can validate each stage.
  void fill_ghosts(mhd::Fields& yin, mhd::Fields& yang);

 private:
  SimulationConfig cfg_;
  yinyang::ComponentGeometry geom_;
  SphericalGrid grid_;
  yinyang::OversetInterpolator interp_;
  mhd::RadialBoundary bc_;
  mhd::EquationParams eq_yin_, eq_yang_;
  mhd::Fields yin_, yang_;
  mhd::Workspace ws_;
  mhd::Integrator integrator_;
  mhd::ColumnWeights weights_;
  double time_ = 0.0;
  long long steps_ = 0;
  double cached_dt_ = 0.0;
};

}  // namespace yy::core

/// \file runner.hpp
/// The nested communicator structure of paper §IV, mirroring the
/// original code's `gRunner` derived type:
///  * gRunner%world%communicator — all processes;
///  * MPI_COMM_SPLIT divides them into the Yin panel group and the
///    Yang panel group (total process count is even);
///  * MPI_CART_CREATE builds a 2-D (θ × φ) process grid per panel,
///    whose MPI_CART_SHIFT neighbours carry the halo exchange;
///  * inter-panel overset traffic flows under the world communicator.
#pragma once

#include <memory>

#include "comm/cart.hpp"
#include "comm/communicator.hpp"
#include "yinyang/geometry.hpp"

namespace yy::core {

class Runner {
 public:
  /// Collective over `world`; world size must equal 2 * pt * pp.
  /// Ranks [0, n/2) become the Yin panel, [n/2, n) the Yang panel.
  Runner(const comm::Communicator& world, int pt, int pp);

  const comm::Communicator& world() const { return world_; }
  yinyang::Panel panel() const { return panel_; }
  const comm::Communicator& panel_comm() const { return cart_->comm(); }
  const comm::CartComm& cart() const { return *cart_; }
  int pt() const { return pt_; }
  int pp() const { return pp_; }

  /// World rank backing a panel rank of either panel.
  int world_rank(yinyang::Panel p, int panel_rank) const {
    const int half = world_.size() / 2;
    return (p == yinyang::Panel::yin ? 0 : half) + panel_rank;
  }

  /// This rank's panel rank (its rank within the panel communicator).
  int panel_rank() const { return cart_->rank(); }

 private:
  comm::Communicator world_;
  yinyang::Panel panel_;
  std::unique_ptr<comm::CartComm> cart_;
  int pt_, pp_;
};

}  // namespace yy::core

/// \file runner.hpp
/// The nested communicator structure of paper §IV, mirroring the
/// original code's `gRunner` derived type:
///  * gRunner%world%communicator — all processes;
///  * MPI_COMM_SPLIT divides them into the Yin panel group and the
///    Yang panel group (total process count is even);
///  * MPI_CART_CREATE builds a 2-D (θ × φ) process grid per panel,
///    whose MPI_CART_SHIFT neighbours carry the halo exchange;
///  * inter-panel overset traffic flows under the world communicator.
#pragma once

#include <memory>

#include "comm/cart.hpp"
#include "comm/communicator.hpp"
#include "yinyang/geometry.hpp"

namespace yy::core {

/// One panel's process-grid shape.  The two panels usually share a
/// layout (the paper's symmetric 2·pt·pp world), but after a
/// shrink-to-survive recovery each panel keeps its own (see
/// DistributedSolver::rebuild), so the structure is per panel.
struct PanelLayout {
  int pt = 0, pp = 0;
  int size() const { return pt * pp; }
};

class Runner {
 public:
  /// Collective over `world`; world size must equal 2 * pt * pp.
  /// Ranks [0, n/2) become the Yin panel, [n/2, n) the Yang panel.
  Runner(const comm::Communicator& world, int pt, int pp);

  /// Asymmetric per-panel layouts: ranks [0, yin.size()) form the Yin
  /// panel, the remaining yang.size() ranks the Yang panel.  World size
  /// must equal yin.size() + yang.size().
  Runner(const comm::Communicator& world, PanelLayout yin, PanelLayout yang);

  const comm::Communicator& world() const { return world_; }
  yinyang::Panel panel() const { return panel_; }
  const comm::Communicator& panel_comm() const { return cart_->comm(); }
  const comm::CartComm& cart() const { return *cart_; }
  int pt() const { return layout(panel_).pt; }
  int pp() const { return layout(panel_).pp; }

  /// Process-grid shape of either panel.
  const PanelLayout& layout(yinyang::Panel p) const {
    return layouts_[p == yinyang::Panel::yin ? 0 : 1];
  }
  int panel_size(yinyang::Panel p) const { return layout(p).size(); }

  /// World rank backing a panel rank of either panel.
  int world_rank(yinyang::Panel p, int panel_rank) const {
    return (p == yinyang::Panel::yin ? 0 : layouts_[0].size()) + panel_rank;
  }

  /// This rank's panel rank (its rank within the panel communicator).
  int panel_rank() const { return cart_->rank(); }

 private:
  comm::Communicator world_;
  yinyang::Panel panel_;
  std::unique_ptr<comm::CartComm> cart_;
  PanelLayout layouts_[2];  ///< [0] = Yin, [1] = Yang
};

}  // namespace yy::core

#include "core/simulation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace yy::core {

RunSummary Simulation::run(const RunControl& ctl,
                           const SnapshotFn& on_snapshot) {
  YY_REQUIRE(ctl.t_end > solver_->time());
  YY_REQUIRE(ctl.max_dt_growth > 1.0);
  RunSummary sum;
  WallTimer timer;
  double dt_prev = 0.0;
  double next_snapshot =
      ctl.snapshot_interval > 0.0
          ? solver_->time() + ctl.snapshot_interval
          : 1e300;

  while (solver_->time() < ctl.t_end) {
    if (sum.steps >= ctl.max_steps) {
      sum.hit_step_limit = true;
      break;
    }
    if (timer.seconds() > ctl.max_wall_seconds) {
      sum.hit_wall_limit = true;
      break;
    }
    double dt = solver_->stable_dt();
    if (dt_prev > 0.0) dt = std::min(dt, dt_prev * ctl.max_dt_growth);
    dt = std::min(dt, ctl.t_end - solver_->time());  // land exactly on t_end
    solver_->step(dt);
    dt_prev = dt;
    ++sum.steps;

    if (solver_->time() >= next_snapshot - 1e-12) {
      if (on_snapshot) {
        YY_TRACE_SCOPE(obs::Phase::io);
        on_snapshot(*solver_, sum.snapshots);
      }
      ++sum.snapshots;
      next_snapshot += ctl.snapshot_interval;
    }
    if (sum.steps % 16 == 0) {
      const auto e = solver_->energies();
      if (!std::isfinite(e.kinetic) || !std::isfinite(e.thermal)) {
        sum.diverged = true;
        break;
      }
    }
  }
  sum.t_final = solver_->time();
  sum.wall_seconds = timer.seconds();
  return sum;
}

}  // namespace yy::core

/// \file distributed_solver.hpp
/// The flat-MPI yycore solver of paper §IV: one rank = one patch of one
/// panel.  World splits into Yin/Yang panel groups, each panel is
/// decomposed pt × pp in (θ, φ), halo exchange runs inside the panel's
/// cartesian communicator and overset interpolation traffic crosses
/// panels under the world communicator.  Distributed trajectories
/// match the serial reference solver to floating-point roundoff.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/config.hpp"
#include "core/decomposition.hpp"
#include "core/halo.hpp"
#include "core/overset_exchange.hpp"
#include "core/runner.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/boundary.hpp"
#include "mhd/diagnostics.hpp"
#include "mhd/integrator.hpp"
#include "yinyang/geometry.hpp"
#include "yinyang/interpolator.hpp"

namespace yy::obs {
class RankTelemetry;
}

namespace yy::core {

class DistributedSolver {
 public:
  /// Collective over `world` (size must be 2·pt·pp).
  DistributedSolver(const SimulationConfig& cfg,
                    const comm::Communicator& world, int pt, int pp);

  /// Collective over `world` with asymmetric per-panel layouts (world
  /// size = yin.size() + yang.size()) — the layout a shrink-to-survive
  /// recovery leaves behind, constructible directly for reference runs.
  DistributedSolver(const SimulationConfig& cfg,
                    const comm::Communicator& world, PanelLayout yin,
                    PanelLayout yang);

  void initialize();
  void step(double dt);

  /// Collective: global CFL dt (allreduce-min across all ranks).
  double stable_dt();

  /// Collective: globally weighted energies (overlap counted once).
  mhd::EnergyBudget energies();

  /// Collective: assembles a panel-interior global field on world rank
  /// 0 (empty elsewhere); layout (nr, panel_nt, panel_np), r fastest.
  Field3 gather_field(int field_index, yinyang::Panel p);

  const Runner& runner() const { return *runner_; }
  const SphericalGrid& local_grid() const { return *grid_; }
  const PatchExtent& extent() const { return extent_; }
  const yinyang::ComponentGeometry& geometry() const { return geom_; }
  mhd::Fields& local_state() { return *state_; }
  const mhd::Fields& local_state() const { return *state_; }
  const HaloExchanger& halo() const { return *halo_; }
  const OversetExchanger& overset() const { return *overset_; }
  long long steps_taken() const { return steps_; }
  double time() const { return time_; }

  /// Restores this rank's full local arrays (ghosts included) plus the
  /// clock from a checkpoint; shapes must match.  Restart is bit-exact:
  /// the arrays are exactly what the uninterrupted run held after step
  /// `step` (rank-local, no communication).
  void restore_state(const mhd::Fields& s, double time, long long step);

  /// Where rebuild() finds every old rank's snapshot after a shrink.
  struct RebuildSource {
    long long step = 0;  ///< solver step the snapshots were taken at
    double time = 0.0;   ///< solver time at that step
    /// For each OLD world rank, the OLD world rank whose survivor now
    /// serves that patch: identity for survivors, the buddy holder for
    /// dead ranks.
    std::vector<int> holder_of;
    /// Decodes old rank `w`'s snapshot into `out` (shaped as w's old
    /// patch full arrays); false when it cannot be served.
    std::function<bool(int w, mhd::Fields& out)> load;
  };

  /// Collective over `new_world` (the communicator shrink() built over
  /// `survivors`, the ascending surviving OLD world ranks).  Rebuilds
  /// runner, decompositions, grid, exchangers and integrator on the
  /// shrunk_layouts() layout, redistributes every old patch's interior
  /// from the rank serving it (tag 400, deterministic plan), then
  /// recomputes the ghosts.  Because every step ends in fill_ghosts and
  /// trajectories are decomposition-invariant, the rebuilt state is
  /// bitwise what a run launched directly on the shrunk layout holds
  /// after `src.step` steps.  Detaches telemetry (its aggregation
  /// window is tied to the old world); re-attach afterwards if wanted.
  void rebuild(const comm::Communicator& new_world,
               const std::vector<int>& survivors, const RebuildSource& src);

  /// Per-panel layouts after shrinking to `survivors` (old world ranks,
  /// ascending; panel boundary at old_yin.size()): a panel that lost no
  /// rank keeps its layout, otherwise its survivor count is re-factored
  /// near-square (comm::CartComm::choose_dims).  Each panel must keep
  /// at least one survivor.
  static std::pair<PanelLayout, PanelLayout> shrunk_layouts(
      PanelLayout old_yin, PanelLayout old_yang,
      const std::vector<int>& survivors);

  /// Walls → halo → overset → radial ghosts, on this rank's patch
  /// (collective: every rank must call it together).
  void fill_ghosts(mhd::Fields& s);

  /// Split fill for the overlapped stepping mode (cfg.overlap).
  /// post_exchanges: walls + radial prefill of the owned columns (the
  /// interior RHS may then run on owned data), then all halo/overset
  /// receives posted and the θ strips sent.  finish_exchanges:
  /// completes halo then overset, then radial-fills the horizontal
  /// ghost frame.  post immediately followed by finish ≡ fill_ghosts
  /// (the radial reflection is per-column local, and the ghost-column
  /// radial values carried by the messages are always overwritten by
  /// the frame fill — so trajectories are bitwise mode-independent).
  /// Both calls unwind to a clean exchanger state on error (a faulted
  /// fabric surfaces timeouts from the waits): whichever exchange is
  /// still in flight is cancelled before the exception escapes, so the
  /// recovery path can rewind and re-enter stepping on the same solver
  /// without tripping the exchangers' one-in-flight guards.  Abandoned
  /// envelopes are purged by the recovery rendezvous.
  void post_exchanges(mhd::Fields& s);
  void finish_exchanges(mhd::Fields& s);

  /// Attaches (nullptr detaches) this rank's telemetry front end; every
  /// step is then bracketed with begin_step/end_step, which folds the
  /// step's spans into the per-step time series and joins the
  /// cross-rank aggregation window (obs/telemetry.hpp).  The telemetry
  /// object must outlive the solver or be detached first.
  void attach_telemetry(obs::RankTelemetry* t) { telemetry_ = t; }

 private:
  void cancel_exchanges() noexcept;

  /// Decomposition of either panel (mine or the partner's).
  const PanelDecomposition& decomp_of(yinyang::Panel p) const {
    return p == runner_->panel() ? decomp_ : partner_decomp_;
  }

  SimulationConfig cfg_;
  yinyang::ComponentGeometry geom_;
  std::unique_ptr<Runner> runner_;
  PanelDecomposition decomp_;          ///< my panel's decomposition
  PanelDecomposition partner_decomp_;  ///< the other panel's
  PatchExtent extent_;
  std::unique_ptr<SphericalGrid> grid_;
  std::unique_ptr<yinyang::OversetInterpolator> interp_;
  std::unique_ptr<HaloExchanger> halo_;
  std::unique_ptr<OversetExchanger> overset_;
  mhd::RadialBoundary bc_;
  mhd::EquationParams eq_;
  std::unique_ptr<mhd::Fields> state_;
  std::unique_ptr<mhd::Workspace> ws_;
  std::unique_ptr<mhd::Integrator> integrator_;
  std::unique_ptr<mhd::ColumnWeights> weights_;
  HaloExchanger::Posted halo_posted_;
  OversetExchanger::Posted overset_posted_;
  double time_ = 0.0;
  long long steps_ = 0;
  obs::RankTelemetry* telemetry_ = nullptr;
  double last_stable_dt_ = 0.0;  ///< most recent collective CFL dt
};

}  // namespace yy::core

/// \file ownership.hpp
/// Ownership weights for global integrals on the overlapping Yin-Yang
/// grid.  The two core rectangles cover the sphere with ~6% counted
/// twice (paper §II); a column contributes
///   1   if only this panel's core rectangle covers it,
///   1/2 if both cores cover it (the overlap's "double solution"),
///   0   if it lies in the margin/ghost region (the partner's core
///       covers it, so the partner accounts for it).
#pragma once

#include "grid/spherical_grid.hpp"
#include "mhd/diagnostics.hpp"
#include "yinyang/geometry.hpp"

namespace yy::core {

/// Weights for one patch of a panel.  (it0_panel, ip0_panel) locate the
/// patch's first interior node in panel-interior indices; pass (0, 0)
/// for a whole-panel grid.  Columns outside the patch's own interior
/// get weight 0 (they are accounted by the owning patch).
mhd::ColumnWeights ownership_weights(const yinyang::ComponentGeometry& geom,
                                     const SphericalGrid& patch,
                                     int it0_panel, int ip0_panel);

}  // namespace yy::core

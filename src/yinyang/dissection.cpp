#include "yinyang/dissection.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "yinyang/geometry.hpp"
#include "yinyang/transform.hpp"

namespace yy::yinyang {

namespace {
constexpr double kPi = 3.14159265358979323846;

bool in_rect(const Angles& a, double tH, double pH) {
  return std::abs(a.theta - kPi / 2.0) <= tH && std::abs(a.phi) <= pH;
}
}  // namespace

RectangleVariant analyze_rectangle(double t_halfspan, double p_halfspan,
                                   int samples) {
  RectangleVariant v;
  v.t_halfspan = t_halfspan;
  v.p_halfspan = p_halfspan;
  Rng rng(20040101);
  long long covered = 0, doubly = 0;
  for (int i = 0; i < samples; ++i) {
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(-kPi, kPi);
    const Angles a{std::acos(z), phi};
    const bool yin = in_rect(a, t_halfspan, p_halfspan);
    const bool yang = in_rect(partner_angles(a), t_halfspan, p_halfspan);
    if (yin || yang) ++covered;
    if (yin && yang) ++doubly;
  }
  v.coverage = static_cast<double>(covered) / samples;
  v.overlap_ratio = static_cast<double>(doubly) / samples;
  v.covers = v.coverage > 1.0 - 2e-3;
  return v;
}

std::vector<RectangleVariant> scan_phi_spans(int steps, int samples) {
  std::vector<RectangleVariant> out;
  // From 180° to 360° total φ span at the paper's 90° θ span.
  for (int i = 0; i < steps; ++i) {
    const double pH = kPi / 2.0 + (kPi / 2.0) * i / (steps - 1);
    out.push_back(analyze_rectangle(kPi / 4.0, pH, samples));
  }
  return out;
}

double rectangle_family_minimum_overlap() {
  return ComponentGeometry::minimal_overlap_ratio();
}

}  // namespace yy::yinyang

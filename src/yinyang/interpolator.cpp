#include "yinyang/interpolator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/flops.hpp"

namespace yy::yinyang {

OversetInterpolator::OversetInterpolator(const ComponentGeometry& geom)
    : geom_(geom) {
  const int ghost = geom.ghost();
  const int Nt = geom.nt() + 2 * ghost;
  const int Np = geom.np() + 2 * ghost;
  for (int it = 0; it < Nt; ++it) {
    for (int ip = 0; ip < Np; ++ip) {
      const bool interior = it >= ghost && it < ghost + geom.nt() &&
                            ip >= ghost && ip < ghost + geom.np();
      if (interior) continue;
      const Angles self{geom.t_min() + (it - ghost) * geom.dt(),
                        geom.p_min() + (ip - ghost) * geom.dp()};
      const Angles p = partner_angles(self);
      const double ft = (p.theta - geom.t_min()) / geom.dt();
      const double fp = (p.phi - geom.p_min()) / geom.dp();
      int jt = static_cast<int>(std::floor(ft));
      int jp = static_cast<int>(std::floor(fp));
      // The geometry's margins guarantee interior donors; clamp guards
      // only against donors landing exactly on the last node line.
      jt = std::min(std::max(jt, 0), geom.nt() - 2);
      jp = std::min(std::max(jp, 0), geom.np() - 2);
      YY_REQUIRE(ft >= jt - 1e-9 && ft <= jt + 1.0 + 1e-9);
      YY_REQUIRE(fp >= jp - 1e-9 && fp <= jp + 1.0 + 1e-9);
      const double wt = ft - jt;
      const double wp = fp - jp;
      StencilEntry e;
      e.recv_it = it;
      e.recv_ip = ip;
      e.donor_jt = jt + ghost;  // store as full-array indices
      e.donor_jp = jp + ghost;
      e.w[0][0] = (1.0 - wt) * (1.0 - wp);
      e.w[0][1] = (1.0 - wt) * wp;
      e.w[1][0] = wt * (1.0 - wp);
      e.w[1][1] = wt * wp;
      e.rot = partner_vector_transform(p);  // donor frame -> receiver frame
      entries_.push_back(e);
    }
  }
}

void OversetInterpolator::fill_scalar(const SphericalGrid& g,
                                      const Field3& donor, Field3& recv) const {
  const int g0 = g.ghost();
  const int nr = g.spec().nr;
  for (const StencilEntry& e : entries_) {
    for (int ir = g0; ir < g0 + nr; ++ir) {
      recv(ir, e.recv_it, e.recv_ip) =
          e.w[0][0] * donor(ir, e.donor_jt, e.donor_jp) +
          e.w[0][1] * donor(ir, e.donor_jt, e.donor_jp + 1) +
          e.w[1][0] * donor(ir, e.donor_jt + 1, e.donor_jp) +
          e.w[1][1] * donor(ir, e.donor_jt + 1, e.donor_jp + 1);
    }
  }
  flops::add(entries_.size() * static_cast<std::uint64_t>(nr) *
             kFlopsScalarPerPoint);
}

void OversetInterpolator::fill_vector(const SphericalGrid& g,
                                      const Field3& donor_r,
                                      const Field3& donor_t,
                                      const Field3& donor_p, Field3& recv_r,
                                      Field3& recv_t, Field3& recv_p) const {
  const int g0 = g.ghost();
  const int nr = g.spec().nr;
  for (const StencilEntry& e : entries_) {
    for (int ir = g0; ir < g0 + nr; ++ir) {
      auto interp = [&](const Field3& f) {
        return e.w[0][0] * f(ir, e.donor_jt, e.donor_jp) +
               e.w[0][1] * f(ir, e.donor_jt, e.donor_jp + 1) +
               e.w[1][0] * f(ir, e.donor_jt + 1, e.donor_jp) +
               e.w[1][1] * f(ir, e.donor_jt + 1, e.donor_jp + 1);
      };
      const Vec3 d{interp(donor_r), interp(donor_t), interp(donor_p)};
      const Vec3 v = e.rot * d;
      recv_r(ir, e.recv_it, e.recv_ip) = v.x;
      recv_t(ir, e.recv_it, e.recv_ip) = v.y;
      recv_p(ir, e.recv_it, e.recv_ip) = v.z;
    }
  }
  flops::add(entries_.size() * static_cast<std::uint64_t>(nr) *
             kFlopsVectorPerPoint);
}

double OversetInterpolator::interpolate_at(const SphericalGrid& g,
                                           const Field3& f,
                                           const ComponentGeometry& geom,
                                           const Angles& a, int ir) {
  const double ft = (a.theta - geom.t_min()) / geom.dt();
  const double fp = (a.phi - geom.p_min()) / geom.dp();
  int jt = static_cast<int>(std::floor(ft));
  int jp = static_cast<int>(std::floor(fp));
  jt = std::min(std::max(jt, 0), geom.nt() - 2);
  jp = std::min(std::max(jp, 0), geom.np() - 2);
  const double wt = ft - jt;
  const double wp = fp - jp;
  const int g0 = g.ghost();
  return (1.0 - wt) * (1.0 - wp) * f(ir, jt + g0, jp + g0) +
         (1.0 - wt) * wp * f(ir, jt + g0, jp + g0 + 1) +
         wt * (1.0 - wp) * f(ir, jt + g0 + 1, jp + g0) +
         wt * wp * f(ir, jt + g0 + 1, jp + g0 + 1);
}

}  // namespace yy::yinyang

/// \file interpolator.hpp
/// Overset internal boundary conditions between the Yin and Yang grids.
///
/// Following the general overset methodology the paper cites
/// (Chesshire & Henshaw), the horizontal ghost points of each component
/// grid are filled by interpolating the partner component's solution.
/// The stencil table is built once: for every receiver ghost column
/// (it, ip) the partner-grid bilinear donor cell, its weights, and the
/// vector-component rotation at that point.  Because Yin and Yang are
/// identical and eq. (1) is an involution, one table serves both
/// directions — the code-level payoff of the grid's complementarity
/// that the paper emphasizes.
///
/// Interpolation acts on whole radial lines (the contiguous dimension),
/// matching the original code's radial vectorization.
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "grid/spherical_grid.hpp"
#include "yinyang/geometry.hpp"

namespace yy::yinyang {

/// One receiver ghost column and its donor stencil in the partner grid.
struct StencilEntry {
  int recv_it = 0, recv_ip = 0;   ///< receiver patch (full-array) indices
  int donor_jt = 0, donor_jp = 0; ///< donor cell base, patch indices
  double w[2][2] = {};            ///< bilinear weights, w[dt][dp]
  Mat3 rot;                       ///< donor-components → receiver-components
};

class OversetInterpolator {
 public:
  explicit OversetInterpolator(const ComponentGeometry& geom);

  const ComponentGeometry& geometry() const { return geom_; }
  const std::vector<StencilEntry>& entries() const { return entries_; }

  /// Fills the receiver's horizontal ghost columns (interior radial
  /// range) of a scalar field from the donor panel's field.
  void fill_scalar(const SphericalGrid& g, const Field3& donor,
                   Field3& recv) const;

  /// Same for a spherical-component vector field; components are
  /// interpolated in the donor frame and rotated into the receiver
  /// frame (radial component is exactly preserved by the rotation).
  void fill_vector(const SphericalGrid& g, const Field3& donor_r,
                   const Field3& donor_t, const Field3& donor_p,
                   Field3& recv_r, Field3& recv_t, Field3& recv_p) const;

  /// Point-value bilinear interpolation of a field at partner angles
  /// (test/diagnostic hook; `ir` is a patch radial index).
  static double interpolate_at(const SphericalGrid& g, const Field3& f,
                               const ComponentGeometry& geom, const Angles& a,
                               int ir);

  /// Documented per-point flop costs.
  static constexpr int kFlopsScalarPerPoint = 7;   // 4 mul + 3 add
  static constexpr int kFlopsVectorPerPoint = 3 * 7 + 15;  // interp + 3×3 rot

 private:
  ComponentGeometry geom_;
  std::vector<StencilEntry> entries_;
};

}  // namespace yy::yinyang

/// \file geometry.hpp
/// Geometry of the basic (rectangular) Yin-Yang grid of paper §II.
///
/// Each component grid covers the *core* span — 90° of colatitude
/// around the equator (θ ∈ [π/4, 3π/4]) and 270° of longitude
/// (φ ∈ [−3π/4, 3π/4]) — extended by a small margin of extra cells so
/// that the ghost points of one component always find complete bilinear
/// donor stencils strictly inside the other component's computed
/// region (the overset "internal boundary condition" of §II is then
/// well posed with no circular dependency between the two grids).
///
/// Both components are geometrically identical; a single
/// ComponentGeometry describes either, and eq. (1) relates them.
#pragma once

#include "grid/spherical_grid.hpp"
#include "yinyang/transform.hpp"

namespace yy::yinyang {

/// Identifies a panel; by the paper's naming the Yin grid is the
/// "n-grid" and the Yang grid the "e-grid".
enum class Panel { yin = 0, yang = 1 };

inline Panel other(Panel p) { return p == Panel::yin ? Panel::yang : Panel::yin; }
inline const char* name(Panel p) { return p == Panel::yin ? "yin" : "yang"; }

/// Angular layout of one component grid (identical for both panels).
class ComponentGeometry {
 public:
  /// `nt_core`/`np_core` = node counts across the core span
  /// (dθ = (π/2)/(nt_core−1), dφ = (3π/2)/(np_core−1));
  /// `margin_t`/`margin_p` = extra cells appended on each side;
  /// `ghost` = ghost layers outside the extended interior.
  ComponentGeometry(int nt_core, int np_core, int margin_t, int margin_p,
                    int ghost);

  /// Smallest margins for which every ghost point of one panel has a
  /// complete bilinear donor stencil inside the other panel's extended
  /// interior — found by constructive search (validated, not assumed).
  static ComponentGeometry with_auto_margin(int nt_core, int np_core,
                                            int ghost = 2);

  int nt_core() const { return nt_core_; }
  int np_core() const { return np_core_; }
  int margin_t() const { return margin_t_; }
  int margin_p() const { return margin_p_; }
  int ghost() const { return ghost_; }

  /// Extended interior node counts (core + margins).
  int nt() const { return nt_core_ + 2 * margin_t_; }
  int np() const { return np_core_ + 2 * margin_p_; }

  double dt() const { return dt_; }
  double dp() const { return dp_; }

  /// Extended interior angular extents.
  double t_min() const { return t_min_; }
  double t_max() const { return t_max_; }
  double p_min() const { return p_min_; }
  double p_max() const { return p_max_; }

  /// Core (minimal-overlap rectangle) extents: [π/4, 3π/4]×[−3π/4, 3π/4].
  static constexpr double core_t_min() { return pi / 4.0; }
  static constexpr double core_t_max() { return 3.0 * pi / 4.0; }
  static constexpr double core_p_min() { return -3.0 * pi / 4.0; }
  static constexpr double core_p_max() { return 3.0 * pi / 4.0; }

  /// Is an angle pair inside this panel's core rectangle?
  static bool in_core(const Angles& a);

  /// Is an angle pair inside the extended interior rectangle?
  bool in_extended(const Angles& a) const;

  /// GridSpec for a radial shell discretized on this component.
  GridSpec make_grid_spec(int nr, double r_inner, double r_outer) const;

  /// Fraction of the sphere covered twice by the two *core* rectangles
  /// (analytic): (3√2 − 4)/4 ≈ 6.07%, the ≈6% of paper §II.
  static double minimal_overlap_ratio();

  /// Fraction covered twice by the two *extended* rectangles (analytic).
  double extended_overlap_ratio() const;

  /// True if every direction of the sphere lies in at least one of the
  /// two core rectangles (Monte-Carlo spot check with `samples` rays).
  static bool covers_sphere(int samples, unsigned seed = 12345);

 private:
  static constexpr double pi = 3.14159265358979323846;
  int nt_core_, np_core_, margin_t_, margin_p_, ghost_;
  double dt_, dp_;
  double t_min_, t_max_, p_min_, p_max_;
};

}  // namespace yy::yinyang

/// \file transform.hpp
/// The Yin↔Yang coordinate transform (paper eq. 1).
///
/// The Yang grid's Cartesian frame is the Yin frame with axes permuted:
///     (xe, ye, ze) = (−xn, zn, yn),
/// and — the complementarity the paper stresses — the inverse transform
/// has exactly the same form, so a single function serves both
/// directions.  This module provides the transform for positions
/// (as spherical angles) and for spherical vector components, plus the
/// spherical basis helpers shared with diagnostics.
#pragma once

#include "common/vec3.hpp"

namespace yy::yinyang {

/// Spherical angles on the unit sphere: colatitude θ ∈ [0, π],
/// longitude φ ∈ (−π, π].
struct Angles {
  double theta = 0.0;
  double phi = 0.0;
};

/// The axis permutation P of eq. (1): (x, y, z) → (−x, z, y).
/// P is symmetric and involutory (P·P = identity), which encodes the
/// Yin/Yang complementarity.
constexpr Vec3 axis_swap(const Vec3& v) { return {-v.x, v.z, v.y}; }

/// P as a matrix (for composing with basis rotations).
constexpr Mat3 axis_swap_matrix() {
  Mat3 p;
  p.m[0][0] = -1.0;
  p.m[1][2] = 1.0;
  p.m[2][1] = 1.0;
  return p;
}

/// Unit position vector of spherical angles in the local Cartesian frame.
Vec3 position(const Angles& a);

/// Angles of a (non-zero) Cartesian direction; φ normalized to (−π, π].
Angles angles_of(const Vec3& v);

/// Coordinates of the same physical point in the partner grid's frame.
/// Involutory: partner_angles(partner_angles(a)) == a.
Angles partner_angles(const Angles& a);

/// Orthonormal spherical basis (r̂, θ̂, φ̂) at `a`, as matrix columns.
Mat3 spherical_basis(const Angles& a);

/// 3×3 matrix carrying spherical components (v_r, v_θ, v_φ) at point
/// `a` of this grid into spherical components of the same physical
/// vector in the partner grid's coordinates at the same point.
/// Radial components are preserved exactly (row/col 0 is e_0).
Mat3 partner_vector_transform(const Angles& a);

}  // namespace yy::yinyang

#include "yinyang/transform.hpp"

#include <algorithm>
#include <cmath>

namespace yy::yinyang {

Vec3 position(const Angles& a) {
  const double st = std::sin(a.theta);
  return {st * std::cos(a.phi), st * std::sin(a.phi), std::cos(a.theta)};
}

Angles angles_of(const Vec3& v) {
  const double n = v.norm();
  Angles a;
  a.theta = std::acos(std::clamp(v.z / n, -1.0, 1.0));
  a.phi = std::atan2(v.y, v.x);  // (−π, π]
  return a;
}

Angles partner_angles(const Angles& a) {
  return angles_of(axis_swap(position(a)));
}

Mat3 spherical_basis(const Angles& a) {
  const double st = std::sin(a.theta), ct = std::cos(a.theta);
  const double sp = std::sin(a.phi), cp = std::cos(a.phi);
  Mat3 b;
  // columns: r̂, θ̂, φ̂
  b.m[0][0] = st * cp;
  b.m[1][0] = st * sp;
  b.m[2][0] = ct;
  b.m[0][1] = ct * cp;
  b.m[1][1] = ct * sp;
  b.m[2][1] = -st;
  b.m[0][2] = -sp;
  b.m[1][2] = cp;
  b.m[2][2] = 0.0;
  return b;
}

Mat3 partner_vector_transform(const Angles& a) {
  const Angles b = partner_angles(a);
  // v_cart = B(a) v_sph ;  v_cart' = P v_cart ;  v_sph' = B(b)ᵀ v_cart'
  return spherical_basis(b).transpose() * (axis_swap_matrix() * spherical_basis(a));
}

}  // namespace yy::yinyang

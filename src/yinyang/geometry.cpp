#include "yinyang/geometry.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace yy::yinyang {

ComponentGeometry::ComponentGeometry(int nt_core, int np_core, int margin_t,
                                     int margin_p, int ghost)
    : nt_core_(nt_core), np_core_(np_core), margin_t_(margin_t),
      margin_p_(margin_p), ghost_(ghost) {
  YY_REQUIRE(nt_core >= 3 && np_core >= 3);
  YY_REQUIRE(margin_t >= 0 && margin_p >= 0 && ghost >= 0);
  dt_ = (core_t_max() - core_t_min()) / (nt_core - 1);
  dp_ = (core_p_max() - core_p_min()) / (np_core - 1);
  t_min_ = core_t_min() - margin_t * dt_;
  t_max_ = core_t_max() + margin_t * dt_;
  p_min_ = core_p_min() - margin_p * dp_;
  p_max_ = core_p_max() + margin_p * dp_;
}

bool ComponentGeometry::in_core(const Angles& a) {
  return a.theta >= core_t_min() && a.theta <= core_t_max() &&
         a.phi >= core_p_min() && a.phi <= core_p_max();
}

bool ComponentGeometry::in_extended(const Angles& a) const {
  return a.theta >= t_min_ && a.theta <= t_max_ && a.phi >= p_min_ &&
         a.phi <= p_max_;
}

namespace {

/// True if every horizontal ghost node of one panel has a complete
/// bilinear donor stencil strictly inside the partner's extended
/// interior.  By the Yin/Yang symmetry, checking one panel suffices.
bool margins_sufficient(const ComponentGeometry& g) {
  const int ghost = g.ghost();
  const int Nt = g.nt() + 2 * ghost;
  const int Np = g.np() + 2 * ghost;
  for (int it = 0; it < Nt; ++it) {
    for (int ip = 0; ip < Np; ++ip) {
      const bool interior = it >= ghost && it < ghost + g.nt() && ip >= ghost &&
                            ip < ghost + g.np();
      if (interior) continue;
      const Angles self{g.t_min() + (it - ghost) * g.dt(),
                        g.p_min() + (ip - ghost) * g.dp()};
      const Angles p = partner_angles(self);
      // Donor cell [jt, jt+1] × [jp, jp+1] in partner interior indices.
      const double ft = (p.theta - g.t_min()) / g.dt();
      const double fp = (p.phi - g.p_min()) / g.dp();
      const int jt = static_cast<int>(std::floor(ft));
      const int jp = static_cast<int>(std::floor(fp));
      if (jt < 0 || jt > g.nt() - 2 || jp < 0 || jp > g.np() - 2) return false;
    }
  }
  return true;
}

}  // namespace

ComponentGeometry ComponentGeometry::with_auto_margin(int nt_core, int np_core,
                                                      int ghost) {
  // Search small margin combinations in order of total cost; the
  // required margin is a few cells (it scales with the ghost width and
  // the dθ/dφ aspect), so the bound below is generous.
  constexpr int max_margin = 16;
  for (int total = 0; total <= 2 * max_margin; ++total) {
    for (int mt = 0; mt <= total && mt <= max_margin; ++mt) {
      const int mp = total - mt;
      if (mp > max_margin) continue;
      ComponentGeometry g(nt_core, np_core, mt, mp, ghost);
      if (margins_sufficient(g)) return g;
    }
  }
  YY_REQUIRE(!"no sufficient Yin-Yang margin found (resolution too coarse)");
  return ComponentGeometry(nt_core, np_core, 0, 0, ghost);
}

GridSpec ComponentGeometry::make_grid_spec(int nr, double r_inner,
                                           double r_outer) const {
  GridSpec s;
  s.nr = nr;
  s.nt = nt();
  s.np = np();
  s.r0 = r_inner;
  s.r1 = r_outer;
  s.t0 = t_min_;
  s.t1 = t_max_;
  s.p0 = p_min_;
  s.p1 = p_max_;
  s.ghost = ghost_;
  s.phi_periodic = false;
  // Whole-panel grids carry the same alignment a patch grid derives
  // from them, so serial and distributed solvers (on any layout) build
  // bitwise-identical coordinate and metric tables.
  s.t_spacing = dt_;
  s.p_spacing = dp_;
  s.t_origin = t_min_;
  s.p_origin = p_min_;
  s.t_offset = 0;
  s.p_offset = 0;
  return s;
}

double ComponentGeometry::minimal_overlap_ratio() {
  const double area =
      (std::cos(core_t_min()) - std::cos(core_t_max())) *
      (core_p_max() - core_p_min());
  return (2.0 * area - 4.0 * pi) / (4.0 * pi);
}

double ComponentGeometry::extended_overlap_ratio() const {
  const double area = (std::cos(t_min_) - std::cos(t_max_)) * (p_max_ - p_min_);
  return (2.0 * area - 4.0 * pi) / (4.0 * pi);
}

bool ComponentGeometry::covers_sphere(int samples, unsigned seed) {
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(-pi, pi);
    const Angles a{std::acos(z), phi};
    if (!in_core(a) && !in_core(partner_angles(a))) return false;
  }
  return true;
}

}  // namespace yy::yinyang

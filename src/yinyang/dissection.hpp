/// \file dissection.hpp
/// Overlap/coverage analysis of the rectangle family of Yin-Yang grids
/// — the quantitative backdrop of paper §II's discussion: the basic
/// 90°×270° rectangle overlaps ~6%, and "if one still desires to
/// minimize the overlapped area" other dissections exist ("baseball"
/// and "cube" types in Kageyama & Sato 2004).  This module scans the
/// rectangle family (θ-span × φ-span) for coverage and overlap, showing
/// that the paper's choice is the minimal-overlap member that still
/// covers the sphere with two congruent rectangles related by eq. (1).
#pragma once

#include <vector>

namespace yy::yinyang {

struct RectangleVariant {
  double t_halfspan = 0.0;  ///< colatitude half-span around the equator
  double p_halfspan = 0.0;  ///< longitude half-span around 0
  double overlap_ratio = 0.0;   ///< doubly covered sphere fraction
  double coverage = 0.0;        ///< sphere fraction covered at least once
  bool covers = false;          ///< coverage == 1 (within sampling error)
};

/// Analyzes a rectangle pair {θ ∈ π/2±tH, φ ∈ ±pH} ∪ its eq.-(1) image
/// by uniform-area sampling (`samples` points, deterministic).
RectangleVariant analyze_rectangle(double t_halfspan, double p_halfspan,
                                   int samples = 200000);

/// Scans φ half-spans at the paper's θ half-span (π/4): returns the
/// variants; the smallest covering φ half-span is 3π/4 (the paper's).
std::vector<RectangleVariant> scan_phi_spans(int steps = 9,
                                             int samples = 100000);

/// The theoretical minimum overlap of ANY two-congruent-piece
/// dissection is 0 (a closed curve splitting the sphere evenly); the
/// rectangle family cannot reach it — this returns the paper
/// rectangle's excess, ≈ 6%.
double rectangle_family_minimum_overlap();

}  // namespace yy::yinyang

/// \file latlon_solver.hpp
/// The *previous-generation* geodynamo solver the paper converted from
/// (§II, §IV): the same finite-difference MHD equations on a single
/// full-sphere latitude-longitude grid — full colatitude span
/// (0 ≤ θ ≤ π) and periodic longitude — with the coordinate
/// singularity handled by across-pole ghost mapping and an optional
/// longitudinal polar filter.
///
/// This baseline exists to quantify the problems the Yin-Yang grid
/// removes: the CFL timestep collapse from the converging meridians
/// (dx_φ = r sinθ dφ → 0), the wasted points near the poles, and the
/// extra filtering work — reproduced by bench/sec2_latlon_vs_yinyang.
///
/// The θ nodes are cell-centred (θ_j = (j+½)·π/nt), so no node sits on
/// the singularity itself; ghost rows beyond a pole map to the row
/// mirrored across it at longitude φ+π, with the θ and φ vector
/// components flipping sign.
#pragma once

#include <memory>

#include "grid/spherical_grid.hpp"
#include "mhd/boundary.hpp"
#include "mhd/diagnostics.hpp"
#include "mhd/init.hpp"
#include "mhd/rk4.hpp"

namespace yy::baseline {

struct LatLonConfig {
  int nr = 17;
  int nt = 24;  ///< colatitude cells over (0, π)
  int np = 48;  ///< longitude nodes over the full circle (must be even)
  mhd::ShellSpec shell;
  mhd::ThermalBc thermal;
  mhd::EquationParams eq;
  mhd::InitialConditions ic;
  double cfl_safety = 0.25;
  /// Longitudinal boxcar filtering is applied on rows with
  /// sinθ < polar_filter_threshold (0 disables it).
  double polar_filter_threshold = 0.0;
};

class LatLonSolver {
 public:
  explicit LatLonSolver(const LatLonConfig& cfg);

  void initialize();
  void step(double dt);
  double run_steps(int n, int recompute_every = 10);
  double stable_dt();
  mhd::EnergyBudget energies();

  const SphericalGrid& grid() const { return grid_; }
  mhd::Fields& state() { return state_; }
  mhd::Workspace& workspace() { return ws_; }
  const LatLonConfig& config() const { return cfg_; }
  double time() const { return time_; }

  /// Ghost pipeline: walls → φ wrap → pole mapping → radial ghosts.
  void fill_ghosts(mhd::Fields& s);

  /// Fraction of grid columns whose local φ spacing r·sinθ·dφ is below
  /// half the equatorial spacing — the "wasted resolution" measure.
  double pole_crowding_fraction() const;

 private:
  void wrap_phi(mhd::Fields& s) const;
  void pole_ghosts(mhd::Fields& s) const;
  void polar_filter(mhd::Fields& s) const;

  LatLonConfig cfg_;
  SphericalGrid grid_;
  mhd::RadialBoundary bc_;
  mhd::Fields state_;
  mhd::Workspace ws_;
  mhd::Rk4 rk4_;
  mhd::ColumnWeights weights_;
  double time_ = 0.0;
  double cached_dt_ = 0.0;
};

}  // namespace yy::baseline

#include "baseline/latlon_solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace yy::baseline {

namespace {

GridSpec latlon_spec(const LatLonConfig& cfg) {
  YY_REQUIRE(cfg.np % 2 == 0);  // pole mapping shifts φ by half a circle
  const double pi = 3.14159265358979323846;
  const double dt = pi / cfg.nt;
  GridSpec s;
  s.nr = cfg.nr;
  s.nt = cfg.nt;
  s.np = cfg.np;
  s.r0 = cfg.shell.r_inner;
  s.r1 = cfg.shell.r_outer;
  s.t0 = 0.5 * dt;        // cell-centred: no node on the singularity
  s.t1 = pi - 0.5 * dt;
  s.p0 = -pi;
  s.p1 = pi;
  s.ghost = 2;
  s.phi_periodic = true;
  return s;
}

mhd::ColumnWeights interior_weights(const SphericalGrid& g) {
  mhd::ColumnWeights w(g.Nt(), g.Np(), 0.0);
  const IndexBox in = g.interior();
  for (int it = in.t0; it < in.t1; ++it)
    for (int ip = in.p0; ip < in.p1; ++ip) w.at(it, ip) = 1.0;
  return w;
}

}  // namespace

LatLonSolver::LatLonSolver(const LatLonConfig& cfg)
    : cfg_(cfg),
      grid_(latlon_spec(cfg)),
      bc_(cfg.thermal),
      state_(grid_),
      ws_(grid_),
      rk4_({&grid_}),
      weights_(interior_weights(grid_)) {}

void LatLonSolver::initialize() {
  mhd::initialize_state(grid_, cfg_.shell, cfg_.thermal, cfg_.eq.g0, cfg_.ic,
                        /*panel_id=*/7, {0, 0}, state_);
  fill_ghosts(state_);
  time_ = 0.0;
  cached_dt_ = 0.0;
}

void LatLonSolver::wrap_phi(mhd::Fields& s) const {
  const int gh = grid_.ghost();
  const int np = grid_.spec().np;
  for (Field3* f : s.all()) {
    for (int it = 0; it < grid_.Nt(); ++it) {
      for (int k = 1; k <= gh; ++k) {
        for (int ir = 0; ir < grid_.Nr(); ++ir) {
          (*f)(ir, it, gh - k) = (*f)(ir, it, gh + np - k);
          (*f)(ir, it, gh + np - 1 + k) = (*f)(ir, it, gh + k - 1);
        }
      }
    }
  }
}

void LatLonSolver::pole_ghosts(mhd::Fields& s) const {
  const int gh = grid_.ghost();
  const int nt = grid_.spec().nt;
  const int np = grid_.spec().np;
  // Row it = gh−k lies at colatitude −(k−½)dθ, i.e. the physical point
  // at +(k−½)dθ seen from longitude φ+π; the radial component is
  // continuous across the pole while θ̂ and φ̂ reverse.
  auto map_row = [&](int ghost_row, int mirror_row) {
    for (int ip = 0; ip < grid_.Np(); ++ip) {
      const int ip_int = ((ip - gh) % np + np) % np;
      const int ip_src = (ip_int + np / 2) % np + gh;
      for (int ir = 0; ir < grid_.Nr(); ++ir) {
        s.rho(ir, ghost_row, ip) = s.rho(ir, mirror_row, ip_src);
        s.p(ir, ghost_row, ip) = s.p(ir, mirror_row, ip_src);
        s.fr(ir, ghost_row, ip) = s.fr(ir, mirror_row, ip_src);
        s.ar(ir, ghost_row, ip) = s.ar(ir, mirror_row, ip_src);
        s.ft(ir, ghost_row, ip) = -s.ft(ir, mirror_row, ip_src);
        s.fp(ir, ghost_row, ip) = -s.fp(ir, mirror_row, ip_src);
        s.at(ir, ghost_row, ip) = -s.at(ir, mirror_row, ip_src);
        s.ap(ir, ghost_row, ip) = -s.ap(ir, mirror_row, ip_src);
      }
    }
  };
  for (int k = 1; k <= gh; ++k) {
    map_row(gh - k, gh + k - 1);                    // north pole
    map_row(gh + nt - 1 + k, gh + nt - k);          // south pole
  }
}

void LatLonSolver::polar_filter(mhd::Fields& s) const {
  if (cfg_.polar_filter_threshold <= 0.0) return;
  const int gh = grid_.ghost();
  const int np = grid_.spec().np;
  std::vector<double> line(static_cast<std::size_t>(np));
  for (int it = gh; it < gh + grid_.spec().nt; ++it) {
    const double st = grid_.sin_t(it);
    if (st >= cfg_.polar_filter_threshold) continue;
    const int passes = std::clamp(
        static_cast<int>(cfg_.polar_filter_threshold / st), 1, np / 4);
    for (Field3* f : s.all()) {
      for (int ir = gh; ir < gh + grid_.spec().nr; ++ir) {
        for (int pass = 0; pass < passes; ++pass) {
          for (int k = 0; k < np; ++k)
            line[static_cast<std::size_t>(k)] = (*f)(ir, it, gh + k);
          for (int k = 0; k < np; ++k) {
            const double lo = line[static_cast<std::size_t>((k + np - 1) % np)];
            const double hi = line[static_cast<std::size_t>((k + 1) % np)];
            (*f)(ir, it, gh + k) =
                0.25 * lo + 0.5 * line[static_cast<std::size_t>(k)] + 0.25 * hi;
          }
        }
      }
    }
  }
}

void LatLonSolver::fill_ghosts(mhd::Fields& s) {
  bc_.enforce_walls(grid_, s);
  pole_ghosts(s);
  wrap_phi(s);
  bc_.fill_ghosts(grid_, s);
}

void LatLonSolver::step(double dt) {
  std::vector<mhd::PatchDef> patches{{&grid_, cfg_.eq, &state_}};
  rk4_.step(patches, dt, [this](const std::vector<mhd::Fields*>& s) {
    fill_ghosts(*s[0]);
  });
  polar_filter(state_);
  if (cfg_.polar_filter_threshold > 0.0) fill_ghosts(state_);
  time_ += dt;
}

double LatLonSolver::stable_dt() {
  return cfg_.cfl_safety *
         mhd::stable_timestep(grid_, cfg_.eq, state_, ws_, grid_.interior());
}

double LatLonSolver::run_steps(int n, int recompute_every) {
  double advanced = 0.0;
  for (int i = 0; i < n; ++i) {
    if (cached_dt_ == 0.0 || i % recompute_every == 0) cached_dt_ = stable_dt();
    step(cached_dt_);
    advanced += cached_dt_;
  }
  return advanced;
}

mhd::EnergyBudget LatLonSolver::energies() {
  return mhd::integrate_energies(grid_, cfg_.eq, state_, ws_, weights_,
                                 grid_.interior());
}

double LatLonSolver::pole_crowding_fraction() const {
  const IndexBox in = grid_.interior();
  int crowded = 0;
  for (int it = in.t0; it < in.t1; ++it)
    if (grid_.sin_t(it) < 0.5) ++crowded;
  return static_cast<double>(crowded) / grid_.spec().nt;
}

}  // namespace yy::baseline

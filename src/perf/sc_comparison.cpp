#include "perf/sc_comparison.hpp"

#include <cstdio>

namespace yy::perf {

std::vector<ScEntry> sc_literature_rows() {
  return {
      {"Shingu (SC2002)", 26.6, 640, 0.65, 7.1e8, "fluid", "atmosphere",
       "spectral", "MPI-microtask"},
      {"Yokokawa (SC2002)", 16.4, 512, 0.50, 8.6e9, "fluid", "turbulence",
       "spectral", "MPI-microtask"},
      {"Sakagami (SC2002)", 14.9, 512, 0.45, 1.7e10, "fluid",
       "inertial fusion", "finite volume", "HPF (flat MPI)"},
      {"Komatitsch (SC2003)", 5.0, 243, 0.32, 5.5e9, "wave propagation",
       "seismic wave", "spectral element", "flat MPI"},
  };
}

ScEntry yycore_paper_row() {
  return {"Kageyama et al. (paper)", 15.2, 512, 0.46, 8.1e8, "fluid",
          "geodynamo", "finite difference", "flat MPI"};
}

ScEntry yycore_model_row(const EsPerformanceModel& model) {
  const RunConfig rc = kTable2Configs[0];  // 4096 APs = 512 PNs
  const ModelResult m = model.predict(rc);
  return {"yycore (this repo, model)", m.tflops, rc.processors / 8,
          m.efficiency, static_cast<double>(m.grid_points), "fluid",
          "geodynamo", "finite difference", "flat MPI"};
}

std::string format_table3(const std::vector<ScEntry>& rows) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-26s %11s %6s %9s %11s %9s %s\n", "Paper",
                "Flops/PN", "eff.", "g.p.", "g.p./AP", "Flops/g.p.",
                "method / parallelization");
  out += buf;
  out += std::string(100, '-') + "\n";
  for (const ScEntry& e : rows) {
    std::snprintf(buf, sizeof buf,
                  "%-26s %5.1fT/%-4d %5.0f%% %9.1e %11.1e %8.2gK %s / %s\n",
                  e.paper.c_str(), e.tflops, e.nodes, e.efficiency * 100.0,
                  e.grid_points, e.gridpoints_per_ap(),
                  e.flops_per_gridpoint() / 1000.0, e.method.c_str(),
                  e.parallelization.c_str());
    out += buf;
  }
  return out;
}

}  // namespace yy::perf

/// \file es_model.hpp
/// Analytic performance model of the yycore code on the Earth
/// Simulator, driven by *measured* properties of this repository's
/// implementation (flops per grid point per step from the instrumented
/// kernels, message volumes from the actual decomposition) plus the
/// machine constants of Table I.  It regenerates the shape of the
/// paper's Table II: total Tflops grows with processor count while
/// parallel efficiency falls; at equal processor count the 511-radial
/// grid outperforms the 255-radial grid (longer vector loops amortize
/// pipeline startup better); the flat-MPI communication share stays
/// near the paper's ~10%.
///
/// Cost constants that cannot be measured on a workstation (memory
/// sustain fraction, pipeline startup, effective per-process network
/// bandwidth) are calibration parameters with documented values chosen
/// to reproduce the paper's 15.2 Tflops / 46% flagship point; the
/// *trends* across configurations then follow from the model structure,
/// not from per-row fitting.
#pragma once

#include "perf/es_spec.hpp"

namespace yy::perf {

/// Calibration constants (see header comment).  The defaults are
/// calibrated once against the paper's flagship 4096-processor point;
/// all six Table II rows then follow from the model structure.
struct EsCostParams {
  double mem_sustain_frac = 0.777;  ///< fraction of peak sustainable by
                                    ///< the stencil code's byte/flop mix
  double loop_startup_cycles = 55.0; ///< per radial vector-loop nest
  double chunk_startup_cycles = 12.0;///< per 256-element strip-mine slice
  double scalar_gflops = 0.7;       ///< non-vectorized op throughput
  double eff_bandwidth_gbs = 2.0;   ///< effective per-process bandwidth
  double msg_latency_s = 1.2e-5;    ///< per point-to-point message
  /// Bulk-synchronous straggler/OS-jitter cost per ghost fill: every
  /// fill ends in a synchronization whose expected tail grows with the
  /// number of participating processes.
  double straggler_s_per_proc = 1.5e-6;
  double scalar_overhead_per_line = 2.4;  ///< scalar ops per radial line,
                                          ///< sets the vector-op ratio
  /// Intra-node microtasking efficiency of the hybrid style (8 APs
  /// sharing one process: fork/join overhead, load imbalance).
  double microtask_efficiency = 0.94;
};

/// Parallelization style (paper §IV, citing Nakajima's flat-MPI vs
/// hybrid comparison): flat MPI runs one process per AP; the hybrid
/// style runs one MPI process per node, microtasked over its 8 APs.
enum class Parallelization {
  flat_mpi,
  hybrid_microtask,
};

/// One run configuration = one row of Table II.
struct RunConfig {
  int processors = 0;  ///< APs used (flat MPI: also the process count)
  int nr = 0, nt = 0, np = 0;  ///< per-panel grid (× 2 panels total)
  Parallelization parallelization = Parallelization::flat_mpi;
};

struct ModelResult {
  double tflops = 0.0;
  double efficiency = 0.0;       ///< of the used processors' peak
  double comm_fraction = 0.0;    ///< communication share of a step
  /// Predicted phase split of one step (fractions sum to 1): compute
  /// (rhs + stage updates), intra-panel halo exchange, inter-panel
  /// overset exchange.  These are what obs-measured runs cross-check
  /// (see perf/proginf.hpp format_phase_report).
  double comp_fraction = 0.0;
  double halo_fraction = 0.0;
  double overset_fraction = 0.0;
  double avg_vector_length = 0.0;
  double vec_op_ratio = 0.0;
  /// Overlapped-stepping prediction (DESIGN.md §10): the interior share
  /// of the RHS sweep runs while halo/overset messages are in flight;
  /// three of the four RK4 fills per step can overlap (the final state
  /// fill is synchronous).
  double interior_fraction = 0.0;  ///< interior share of the patch volume
  double hidden_comm_s = 0.0;      ///< comm time hidden behind the interior
  double overlap_efficiency = 0.0; ///< hidden_comm_s / total comm time
  double overlapped_time_per_step_s = 0.0;  ///< step time with overlap on
  double time_per_step_s = 0.0;
  double flops_per_step = 0.0;   ///< whole machine, one RK4 step
  double flops_per_gridpoint_rate = 0.0;  ///< "Flops/g.p." of Table III
  long long grid_points = 0;
  int pt = 0, pp = 0;            ///< per-panel process grid
  int ntl = 0, npl = 0;          ///< per-process patch (max)
  double memory_per_process_mb = 0.0;  ///< arrays resident per process
  bool fits_node_memory = true;  ///< 8 processes/node vs 16 GB (Table I)
};

/// Measured lane utilization of the SIMD RHS backend on *this*
/// workstation (simd::LaneStats reduced over a timed step, see
/// KernelProfile) — the measured counterpart of ModelResult's
/// avg_vector_length / vec_op_ratio columns.  The ES pipelines 256-wide
/// vector registers where the workstation packs 2–8 doubles, so the
/// absolute lengths differ by construction; what transfers is the
/// *structure*: both are set by the radial loop extent against the
/// hardware lane width, and both degrade the same way when lines leave
/// remainder tails (perf/proginf.hpp format_lane_report renders the
/// comparison).
struct MeasuredLaneProfile {
  int width = 1;                  ///< active lane width of the timed run
  double avg_vector_length = 0.0; ///< points per inner-loop trip
  double vector_coverage = 0.0;   ///< share of points in full-width packs
};

class EsPerformanceModel {
 public:
  /// `flops_per_point_per_step` should come from
  /// KernelProfile::measure() — the real instrumented count.
  EsPerformanceModel(const EarthSimulatorSpec& spec, const EsCostParams& cost,
                     double flops_per_point_per_step)
      : spec_(spec), cost_(cost), flops_per_point_(flops_per_point_per_step) {}

  const EarthSimulatorSpec& spec() const { return spec_; }
  const EsCostParams& cost() const { return cost_; }
  double flops_per_point() const { return flops_per_point_; }

  ModelResult predict(const RunConfig& rc) const;

 private:
  EarthSimulatorSpec spec_;
  EsCostParams cost_;
  double flops_per_point_;
};

/// The paper's six Table II configurations, in the paper's row order.
inline constexpr RunConfig kTable2Configs[] = {
    {4096, 511, 514, 1538}, {3888, 511, 514, 1538}, {3888, 255, 514, 1538},
    {2560, 511, 514, 1538}, {2560, 255, 514, 1538}, {1200, 255, 514, 1538},
};

/// The paper's reported (Tflops, efficiency) per row, for comparison.
struct Table2Reported {
  double tflops;
  double efficiency;
};
inline constexpr Table2Reported kTable2Reported[] = {
    {15.2, 0.46}, {13.8, 0.44}, {12.1, 0.39},
    {10.3, 0.50}, {9.17, 0.45}, {5.40, 0.56},
};

}  // namespace yy::perf

#include "perf/roofline.hpp"

#include <cinttypes>
#include <cstdio>

namespace yy::perf {

RooflineReport RooflineReport::build(const obs::MetricsSummary& m,
                                     obs::CounterBackend backend,
                                     std::uint64_t global_flops) {
  RooflineReport rep;
  rep.backend = backend;
  rep.total.label = "TOTAL";
  for (int p = 0; p < obs::kNumPhases; ++p) {
    const obs::PhaseMetrics& pm = m.total[static_cast<std::size_t>(p)];
    if (pm.count == 0) continue;
    RooflineRow row;
    row.phase = static_cast<obs::Phase>(p);
    row.label = obs::phase_name(row.phase);
    row.seconds = pm.seconds;
    row.charged_flops = pm.ctr.flops;
    row.hw_flops = pm.ctr.hw_flops;
    row.cycles = pm.ctr.cycles;
    row.instructions = pm.ctr.instructions;
    row.cache_refs = pm.ctr.cache_refs;
    row.cache_misses = pm.ctr.cache_misses;
    rep.total.seconds += row.seconds;
    rep.total.charged_flops += row.charged_flops;
    rep.total.hw_flops += row.hw_flops;
    rep.total.cycles += row.cycles;
    rep.total.instructions += row.instructions;
    rep.total.cache_refs += row.cache_refs;
    rep.total.cache_misses += row.cache_misses;
    rep.rows.push_back(std::move(row));
  }
  if (global_flops > rep.total.charged_flops)
    rep.unattributed_flops = global_flops - rep.total.charged_flops;
  return rep;
}

namespace {

void format_row(std::string& out, const RooflineRow& r) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "  %-14s %10.4f %12.4f %12.4f %8.3f %6.2f %8.2f %7.3f\n",
                r.label.c_str(), r.seconds,
                static_cast<double>(r.charged_flops) / 1e9,
                static_cast<double>(r.measured_flops()) / 1e9,
                r.achieved_gflops(), r.ipc(), r.dram_gbs(),
                r.flops_per_byte());
  out += buf;
}

}  // namespace

std::string RooflineReport::format() const {
  std::string out;
  out += "Roofline attribution (counter backend: ";
  out += obs::counter_backend_name(backend);
  out += ")\n";
  if (backend == obs::CounterBackend::software)
    out +=
        "  note: software backend — the measured flop column is the\n"
        "  analytic charge itself; IPC/DRAM columns need perf_event.\n";
  out +=
      "  phase             seconds   charged-GF  measured-GF   GF/s"
      "    IPC     GB/s     F/B\n";
  for (const RooflineRow& r : rows) format_row(out, r);
  format_row(out, total);
  if (unattributed_flops > 0) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "  unattributed charge (outside spans): %.4f GF\n",
                  static_cast<double>(unattributed_flops) / 1e9);
    out += buf;
  }
  return out;
}

}  // namespace yy::perf

/// \file kernel_profile.hpp
/// Measures the real computational profile of this repository's yycore
/// implementation — the quantity the Earth Simulator's MPIPROGINF
/// hardware counter supplied in the paper.
#pragma once

#include "mhd/rhs.hpp"

namespace yy::perf {

struct KernelProfile {
  double flops_per_point_per_step = 0.0;  ///< one RK4 step, per grid point
  double seconds_per_point_per_step = 0.0;  ///< on *this* workstation
  double local_gflops = 0.0;  ///< sustained on this workstation

  /// Lane utilization of the timed step (simd backend only; width 1 and
  /// zeros otherwise) — the *measured* workstation counterpart of the
  /// ES model's Average Vector Length / Vector Operation Ratio columns
  /// (simd::LaneStats; see perf/es_model.hpp MeasuredLaneProfile).
  int simd_width = 1;
  double simd_avg_vector_length = 0.0;
  double simd_vector_coverage = 0.0;

  /// Runs one RK4 step of a small serial Yin-Yang dynamo and reads the
  /// software flop counter.  Flops per point are resolution-independent
  /// up to ghost-fraction effects, so a small grid suffices; the
  /// (nr, nt, np) arguments allow convergence checks of that claim.
  /// `backend` selects the RHS evaluation — all three charge identical
  /// flops, so only the seconds/gflops (and lane) figures move.
  static KernelProfile measure(int nr, int nt_core, int np_core,
                               mhd::RhsBackend backend);

  /// Legacy bool form: false = reference, true = fused.
  static KernelProfile measure(int nr = 17, int nt_core = 13, int np_core = 37,
                               bool fused_rhs = false) {
    return measure(nr, nt_core, np_core,
                   fused_rhs ? mhd::RhsBackend::fused
                             : mhd::RhsBackend::reference);
  }
};

}  // namespace yy::perf

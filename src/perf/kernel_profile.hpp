/// \file kernel_profile.hpp
/// Measures the real computational profile of this repository's yycore
/// implementation — the quantity the Earth Simulator's MPIPROGINF
/// hardware counter supplied in the paper.
#pragma once

namespace yy::perf {

struct KernelProfile {
  double flops_per_point_per_step = 0.0;  ///< one RK4 step, per grid point
  double seconds_per_point_per_step = 0.0;  ///< on *this* workstation
  double local_gflops = 0.0;  ///< sustained on this workstation

  /// Runs one RK4 step of a small serial Yin-Yang dynamo and reads the
  /// software flop counter.  Flops per point are resolution-independent
  /// up to ghost-fraction effects, so a small grid suffices; the
  /// (nr, nt, np) arguments allow convergence checks of that claim.
  /// `fused_rhs` selects the RHS backend — both charge identical flops,
  /// so only the seconds/gflops figures move.
  static KernelProfile measure(int nr = 17, int nt_core = 13, int np_core = 37,
                               bool fused_rhs = false);
};

}  // namespace yy::perf

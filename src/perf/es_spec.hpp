/// \file es_spec.hpp
/// Hardware specification of the Earth Simulator, paper Table I.
#pragma once

namespace yy::perf {

struct EarthSimulatorSpec {
  double ap_peak_gflops = 8.0;     ///< peak per arithmetic processor
  int aps_per_node = 8;            ///< APs per processor node (PN)
  int total_nodes = 640;           ///< PNs in the machine
  int vector_register_length = 256;
  double node_memory_gb = 16.0;    ///< shared memory per PN
  double internode_bw_gbs = 12.3;  ///< inter-node transfer rate (×2 duplex)

  int total_aps() const { return aps_per_node * total_nodes; }
  double total_peak_tflops() const {
    return ap_peak_gflops * total_aps() / 1000.0;
  }
  double total_memory_tb() const {
    return node_memory_gb * total_nodes / 1000.0;
  }
};

}  // namespace yy::perf

/// \file proginf.hpp
/// Renders an MPIPROGINF-style report (paper List 1) from the
/// performance model's counters.  On the Earth Simulator this output
/// came from hardware counters enabled by the MPIPROGINF environment
/// variable; here the same quantities are derived from the model plus
/// the software flop counters, formatted to match the paper's listing.
#pragma once

#include <string>

#include "perf/es_model.hpp"

namespace yy::perf {

struct ProgInfOptions {
  double real_time_s = 454.266;  ///< wall-clock span of the reported run
  unsigned jitter_seed = 2004;   ///< deterministic min/max rank jitter
};

/// Builds the full "MPI Program Information" text block.
std::string format_proginf(const EsPerformanceModel& model,
                           const RunConfig& rc, const ProgInfOptions& opt = {});

}  // namespace yy::perf

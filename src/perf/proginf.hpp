/// \file proginf.hpp
/// Renders an MPIPROGINF-style report (paper List 1) from the
/// performance model's counters.  On the Earth Simulator this output
/// came from hardware counters enabled by the MPIPROGINF environment
/// variable; here the same quantities are derived from the model plus
/// the software flop counters, formatted to match the paper's listing.
///
/// Two further reports ingest *measured* spans from the obs tracing
/// layer (src/obs): a List-1-style block whose per-rank min/max/avg
/// columns come from a real instrumented run, and a per-phase
/// predicted-vs-measured cross-check against the es_model's phase
/// split — the verification loop the paper's Table II numbers lacked
/// outside the Earth Simulator itself.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "perf/es_model.hpp"

namespace yy::perf {

struct ProgInfOptions {
  double real_time_s = 454.266;  ///< wall-clock span of the reported run
  unsigned jitter_seed = 2004;   ///< deterministic min/max rank jitter
};

/// Builds the full "MPI Program Information" text block.
std::string format_proginf(const EsPerformanceModel& model,
                           const RunConfig& rc, const ProgInfOptions& opt = {});

/// List-1-style block from *measured* spans: one row per phase with the
/// real min [rank], max [rank] and average seconds across the run's
/// ranks, plus traffic totals — no synthetic jitter.
std::string format_measured_proginf(const obs::MetricsSummary& m);

/// One row of the predicted-vs-measured phase cross-check.
struct PhaseDriftRow {
  std::string label;              ///< "compute", "halo_wait", ...
  double measured_s = 0.0;
  double measured_share = 0.0;    ///< of the traced step time
  double predicted_share = -1.0;  ///< < 0: phase outside the model
  double pred_over_meas = 0.0;    ///< predicted/measured share (0 = n/a)
};

/// Numeric form of the phase cross-check: measured phase shares of a
/// real run against the es_model's predicted split at the same process
/// count.  format_phase_report renders these rows; the perf-regression
/// baselines (bench/baseline_runner) track them as drift metrics.
std::vector<PhaseDriftRow> phase_drift(const obs::MetricsSummary& m,
                                       const EsPerformanceModel& model,
                                       const RunConfig& rc);

/// Per-phase cross-check of a measured run against the model's
/// predicted step split.  Each comparable phase reports measured
/// seconds, measured share, predicted share, and the predicted/measured
/// ratio; phases outside the model (reduce, io) report measured only.
std::string format_phase_report(const obs::MetricsSummary& m,
                                const EsPerformanceModel& model,
                                const RunConfig& rc);

/// Vector-column cross-check: the ES model's predicted Average Vector
/// Length / Vector Operation Ratio (256-wide pipelines, List 1's rows)
/// against the *measured* lane utilization of the SIMD backend on this
/// workstation (MeasuredLaneProfile).  Absolute lengths differ by the
/// hardware width; the normalized columns (length/width, coverage) are
/// directly comparable.
std::string format_lane_report(const EsPerformanceModel& model,
                               const RunConfig& rc,
                               const MeasuredLaneProfile& measured);

}  // namespace yy::perf

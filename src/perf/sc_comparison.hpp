/// \file sc_comparison.hpp
/// Paper Table III: performances on the Earth Simulator reported at SC
/// conferences, compared against yycore.  Literature rows carry the
/// numbers the paper quotes; the yycore row can be replaced by this
/// repository's model prediction to show where our reproduction lands.
#pragma once

#include <string>
#include <vector>

#include "perf/es_model.hpp"

namespace yy::perf {

struct ScEntry {
  std::string paper;          ///< first author / citation tag
  double tflops;              ///< reported performance
  int nodes;                  ///< PNs used
  double efficiency;          ///< of peak
  double grid_points;         ///< degrees of freedom
  std::string kind;           ///< simulation kind
  std::string field;          ///< application field
  std::string method;         ///< discretization
  std::string parallelization;

  double gridpoints_per_ap(int aps_per_node = 8) const {
    return grid_points / (static_cast<double>(nodes) * aps_per_node);
  }
  double flops_per_gridpoint() const { return tflops * 1e12 / grid_points; }
};

/// The four literature rows of Table III (paper's reported values).
std::vector<ScEntry> sc_literature_rows();

/// The paper's own yycore row of Table III.
ScEntry yycore_paper_row();

/// A yycore row regenerated from this repository's performance model at
/// the flagship 4096-processor configuration.
ScEntry yycore_model_row(const EsPerformanceModel& model);

/// Formats the full comparison table (literature + the given yycore row).
std::string format_table3(const std::vector<ScEntry>& rows);

}  // namespace yy::perf

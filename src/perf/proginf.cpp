#include "perf/proginf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"

namespace yy::perf {

namespace {

struct Jitter {
  double min_v, max_v;
  int min_rank, max_rank;
};

/// Deterministic ±0.7% spread and the ranks attaining it, mimicking the
/// per-process scatter of the hardware counters.
Jitter jitter(double avg, int nproc, Rng& rng) {
  const double lo = avg * (1.0 - 0.007 * rng.uniform(0.5, 1.0));
  const double hi = avg * (1.0 + 0.007 * rng.uniform(0.5, 1.0));
  return {lo, hi, static_cast<int>(rng.uniform() * nproc),
          static_cast<int>(rng.uniform() * nproc)};
}

void row(std::string& out, const char* label, double avg, int nproc, Rng& rng,
         const char* fmt = "%.3f", double max_cap = 1e300) {
  Jitter j = jitter(avg, nproc, rng);
  j.max_v = std::min(j.max_v, max_cap);
  char buf[256], v1[48], v2[48], v3[48];
  std::snprintf(v1, sizeof v1, fmt, j.min_v);
  std::snprintf(v2, sizeof v2, fmt, j.max_v);
  std::snprintf(v3, sizeof v3, fmt, avg);
  std::snprintf(buf, sizeof buf, "  %-28s: %16s [0,%4d] %16s [0,%4d] %16s\n",
                label, v1, j.min_rank, v2, j.max_rank, v3);
  out += buf;
}

void row_count(std::string& out, const char* label, double avg, int nproc,
               Rng& rng) {
  const Jitter j = jitter(avg, nproc, rng);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  %-28s: %16.0f [0,%4d] %16.0f [0,%4d] %16.0f\n", label,
                j.min_v, j.min_rank, j.max_v, j.max_rank, avg);
  out += buf;
}

}  // namespace

std::string format_proginf(const EsPerformanceModel& model,
                           const RunConfig& rc, const ProgInfOptions& opt) {
  const ModelResult m = model.predict(rc);
  Rng rng(opt.jitter_seed);
  const int nproc = rc.processors;

  const double steps = opt.real_time_s / m.time_per_step_s;
  const double user_time = opt.real_time_s * 0.976;   // minus MPI_Init/teardown
  const double system_time = opt.real_time_s * 0.010;
  const double vector_time = user_time * (1.0 - m.comm_fraction) *
                             m.vec_op_ratio * 0.79;   // pipeline-busy share
  const double flop_per_proc = m.flops_per_step * steps / nproc;
  // Plausible instruction decomposition: the vector elements are the
  // vector-op share of all operations; ops ≈ 2.1× flops for a
  // load/store-heavy stencil code.
  const double ops_per_proc = flop_per_proc * 2.1;
  const double vec_elems = ops_per_proc * m.vec_op_ratio;
  const double vec_insts = vec_elems / m.avg_vector_length;
  const double insts = vec_insts + ops_per_proc * (1.0 - m.vec_op_ratio) * 1.6;
  const double mops = ops_per_proc / user_time / 1e6;
  const double mflops = flop_per_proc / user_time / 1e6;
  const double mem_mb = 1040.0 + 80.0 * rng.uniform();

  std::string out;
  out += "MPI Program Information:\n";
  out += "========================\n";
  out += "Note: It is measured from MPI_Init till MPI_Finalize.\n";
  out += "[U,R] specifies the Universe and the Process Rank in the Universe.\n";
  char head[128];
  std::snprintf(head, sizeof head,
                "Global Data of %d processes: Min [U,R] Max [U,R] Average\n",
                nproc);
  out += head;
  out += "=============================\n";
  row(out, "Real Time (sec)", opt.real_time_s, nproc, rng);
  row(out, "User Time (sec)", user_time, nproc, rng);
  row(out, "System Time (sec)", system_time, nproc, rng);
  row(out, "Vector Time (sec)", vector_time, nproc, rng);
  row_count(out, "Instruction Count", insts, nproc, rng);
  row_count(out, "Vector Instruction Count", vec_insts, nproc, rng);
  row_count(out, "Vector Element Count", vec_elems, nproc, rng);
  row_count(out, "FLOP Count", flop_per_proc, nproc, rng);
  row(out, "MOPS", mops, nproc, rng);
  row(out, "MFLOPS", mflops, nproc, rng);
  row(out, "Average Vector Length", m.avg_vector_length, nproc, rng);
  row(out, "Vector Operation Ratio (%)", m.vec_op_ratio * 100.0, nproc, rng,
      "%.3f", 99.95);  // a ratio cannot exceed 100%
  row(out, "Memory size used (MB)", mem_mb, nproc, rng);
  out += "\nOverall Data:\n";
  out += "=============\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "  Real Time (sec)        : %14.3f\n",
                opt.real_time_s);
  out += buf;
  std::snprintf(buf, sizeof buf, "  User Time (sec)        : %14.3f\n",
                user_time * nproc);
  out += buf;
  std::snprintf(buf, sizeof buf, "  System Time (sec)      : %14.3f\n",
                system_time * nproc);
  out += buf;
  std::snprintf(buf, sizeof buf, "  Vector Time (sec)      : %14.3f\n",
                vector_time * nproc);
  out += buf;
  std::snprintf(buf, sizeof buf, "  GOPS (rel. to User Time): %13.3f\n",
                mops * nproc / 1000.0);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  GFLOPS (rel. to User Time): %11.3f <--- %.1f TFlops\n",
                mflops * nproc / 1000.0, mflops * nproc / 1e6);
  out += buf;
  std::snprintf(buf, sizeof buf, "  Memory size used (GB)  : %14.3f\n",
                mem_mb * nproc / 1024.0);
  out += buf;
  return out;
}

std::string format_measured_proginf(const obs::MetricsSummary& m) {
  std::string out;
  out += "MPI Program Information (measured):\n";
  out += "===================================\n";
  out += "Note: spans recorded by the obs tracing layer, one row per phase.\n";
  out += "[U,R] specifies the Universe and the Process Rank in the Universe.\n";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "Global Data of %d processes: Min [U,R] Max [U,R] Average\n",
                static_cast<int>(m.ranks.size()));
  out += buf;
  out += "=============================\n";
  for (int p = 0; p < obs::kNumPhases; ++p) {
    double min_v = 1e300, max_v = -1e300, sum = 0.0;
    int min_rank = 0, max_rank = 0;
    std::uint64_t count = 0;
    for (const obs::RankMetrics& rm : m.ranks) {
      const obs::PhaseMetrics& pm = rm.phase[static_cast<std::size_t>(p)];
      count += pm.count;
      sum += pm.seconds;
      if (pm.seconds < min_v) { min_v = pm.seconds; min_rank = rm.rank; }
      if (pm.seconds > max_v) { max_v = pm.seconds; max_rank = rm.rank; }
    }
    if (count == 0) continue;
    std::snprintf(buf, sizeof buf,
                  "  %-21s (sec): %16.6f [0,%4d] %16.6f [0,%4d] %16.6f\n",
                  obs::phase_name(static_cast<obs::Phase>(p)), min_v, min_rank,
                  max_v, max_rank,
                  sum / static_cast<double>(m.ranks.size()));
    out += buf;
  }
  out += "\nOverall Data:\n";
  out += "=============\n";
  std::snprintf(buf, sizeof buf, "  Real Time (sec)        : %14.6f\n",
                m.wall_seconds);
  out += buf;
  std::snprintf(buf, sizeof buf, "  Traced Time (sec)      : %14.6f\n",
                m.traced_seconds());
  out += buf;
  std::snprintf(buf, sizeof buf, "  Steps                  : %14lld\n",
                static_cast<long long>(m.steps));
  out += buf;
  std::snprintf(buf, sizeof buf, "  Messages               : %14llu\n",
                static_cast<unsigned long long>(m.traffic.messages));
  out += buf;
  std::snprintf(buf, sizeof buf, "  Message volume (MB)    : %14.3f\n",
                static_cast<double>(m.traffic.bytes) / 1048576.0);
  out += buf;
  return out;
}

std::vector<PhaseDriftRow> phase_drift(const obs::MetricsSummary& m,
                                       const EsPerformanceModel& model,
                                       const RunConfig& rc) {
  const ModelResult r = model.predict(rc);
  const double traced = m.traced_seconds();

  // Measured shares of the traced step time; the model's comparable
  // buckets are compute (rhs + stage update + boundary), halo and
  // overset.  reduce/io are outside the model's step decomposition.
  const double meas_comp = m.phase(obs::Phase::rhs).seconds +
                           m.phase(obs::Phase::rk4_stage).seconds +
                           m.phase(obs::Phase::boundary).seconds;
  const struct {
    const char* label;
    double measured_s;
    double predicted_share;  // < 0: not modelled
  } raw[] = {
      {"compute", meas_comp, r.comp_fraction},
      {"halo_wait", m.phase(obs::Phase::halo_wait).seconds, r.halo_fraction},
      {"overset_wait", m.phase(obs::Phase::overset_wait).seconds,
       r.overset_fraction},
      {"reduce", m.phase(obs::Phase::reduce).seconds, -1.0},
      {"io", m.phase(obs::Phase::io).seconds, -1.0},
  };
  std::vector<PhaseDriftRow> rows;
  for (const auto& rr : raw) {
    if (rr.measured_s == 0.0 && rr.predicted_share < 0.0) continue;
    PhaseDriftRow row;
    row.label = rr.label;
    row.measured_s = rr.measured_s;
    row.measured_share = traced > 0.0 ? rr.measured_s / traced : 0.0;
    row.predicted_share = rr.predicted_share;
    if (rr.predicted_share >= 0.0 && row.measured_share > 0.0)
      row.pred_over_meas = rr.predicted_share / row.measured_share;
    rows.push_back(row);
  }
  return rows;
}

std::string format_phase_report(const obs::MetricsSummary& m,
                                const EsPerformanceModel& model,
                                const RunConfig& rc) {
  const ModelResult r = model.predict(rc);
  const double traced = m.traced_seconds();
  std::string out;
  out += "Per-phase time: measured (this machine) vs es_model prediction\n";
  out += "==============================================================\n";
  out += "  phase          measured s    share   predicted   pred/meas\n";

  char buf[192];
  for (const PhaseDriftRow& row : phase_drift(m, model, rc)) {
    if (row.predicted_share >= 0.0) {
      std::snprintf(buf, sizeof buf,
                    "  %-14s %10.6f %7.1f%% %10.1f%% %11.2f\n",
                    row.label.c_str(), row.measured_s,
                    100.0 * row.measured_share, 100.0 * row.predicted_share,
                    row.pred_over_meas);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %-14s %10.6f %7.1f%%          -           -\n",
                    row.label.c_str(), row.measured_s,
                    100.0 * row.measured_share);
    }
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  comm fraction: measured %.1f%% vs predicted %.1f%% "
                "(ES @ %d procs)\n",
                100.0 *
                    (m.phase(obs::Phase::halo_wait).seconds +
                     m.phase(obs::Phase::overset_wait).seconds) /
                    (traced > 0.0 ? traced : 1.0),
                100.0 * r.comm_fraction, rc.processors);
  out += buf;
  return out;
}

std::string format_lane_report(const EsPerformanceModel& model,
                               const RunConfig& rc,
                               const MeasuredLaneProfile& measured) {
  const ModelResult r = model.predict(rc);
  const double es_width =
      static_cast<double>(model.spec().vector_register_length);
  const double meas_width = static_cast<double>(
      measured.width > 0 ? measured.width : 1);
  std::string out;
  out += "Vector columns: es_model (modeled) vs SIMD lanes (measured)\n";
  out += "===========================================================\n";
  out += "  column                      modeled (ES)   measured (this host)\n";
  char buf[192];
  std::snprintf(buf, sizeof buf, "  hardware lane width      %13.0f %22.0f\n",
                es_width, meas_width);
  out += buf;
  std::snprintf(buf, sizeof buf, "  average vector length    %13.1f %22.2f\n",
                r.avg_vector_length, measured.avg_vector_length);
  out += buf;
  std::snprintf(buf, sizeof buf, "  normalized length (/w)   %12.1f%% %21.1f%%\n",
                100.0 * r.avg_vector_length / es_width,
                100.0 * measured.avg_vector_length / meas_width);
  out += buf;
  std::snprintf(buf, sizeof buf, "  vector operation ratio   %12.1f%% %21.1f%%\n",
                100.0 * r.vec_op_ratio, 100.0 * measured.vector_coverage);
  out += buf;
  return out;
}

}  // namespace yy::perf

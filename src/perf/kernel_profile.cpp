#include "perf/kernel_profile.hpp"

#include "common/flops.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/serial_solver.hpp"

namespace yy::perf {

KernelProfile KernelProfile::measure(int nr, int nt_core, int np_core,
                                     mhd::RhsBackend backend) {
  core::SimulationConfig cfg;
  cfg.nr = nr;
  cfg.nt_core = nt_core;
  cfg.np_core = np_core;
  cfg.eq.omega = {0.0, 0.0, 5.0};
  cfg.fused_rhs = backend == mhd::RhsBackend::fused;
  cfg.simd_rhs = backend == mhd::RhsBackend::simd;
  core::SerialYinYangSolver solver(cfg);
  solver.initialize();
  const double dt = solver.stable_dt();
  solver.step(dt);  // warm-up (touch all pages, build caches)

  flops::global_reset();
  simd::lane_stats_reset();
  WallTimer timer;
  solver.step(dt);
  const double secs = timer.seconds();
  const auto counted = static_cast<double>(flops::global_count());
  const simd::LaneStats lanes = simd::lane_stats_total();

  const IndexBox in = solver.grid().interior();
  const double points = 2.0 * static_cast<double>(in.volume());

  KernelProfile prof;
  prof.flops_per_point_per_step = counted / points;
  prof.seconds_per_point_per_step = secs / points;
  prof.local_gflops = counted / secs / 1e9;
  if (backend == mhd::RhsBackend::simd) {
    prof.simd_width = simd::active_width();
    prof.simd_avg_vector_length = lanes.avg_vector_length();
    prof.simd_vector_coverage = lanes.vector_coverage();
  }
  return prof;
}

}  // namespace yy::perf

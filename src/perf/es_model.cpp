#include "perf/es_model.hpp"

#include <algorithm>
#include <cmath>

#include "comm/cart.hpp"
#include "common/error.hpp"

namespace yy::perf {

ModelResult EsPerformanceModel::predict(const RunConfig& rc) const {
  YY_REQUIRE(rc.processors >= 2 && rc.processors % 2 == 0);
  YY_REQUIRE(rc.nr >= 2 && rc.nt >= 2 && rc.np >= 2);

  ModelResult r;
  // Hybrid microtasking: one MPI process per 8-AP node; the domain is
  // decomposed over processes, each computing 8x faster (×efficiency).
  const bool hybrid = rc.parallelization == Parallelization::hybrid_microtask;
  const int ranks = hybrid ? std::max(2, rc.processors / spec_.aps_per_node)
                           : rc.processors;
  const int per_panel = ranks / 2;
  const auto [pt, pp] = comm::CartComm::choose_dims(per_panel);
  r.pt = pt;
  r.pp = pp;
  // Slowest (largest) patch governs the bulk-synchronous step time.
  r.ntl = (rc.nt + pt - 1) / pt;
  r.npl = (rc.np + pp - 1) / pp;
  r.grid_points = 2ll * rc.nr * rc.nt * rc.np;

  // ---- computation ----------------------------------------------------
  const double w_proc =
      flops_per_point_ * rc.nr * static_cast<double>(r.ntl) * r.npl;
  r.flops_per_step = flops_per_point_ * static_cast<double>(r.grid_points);

  // Vector pipeline: radial loops of length nr strip-mined into
  // 256-element slices; startup is paid once per loop nest plus a
  // smaller cost per slice.
  const int chunks = (rc.nr + spec_.vector_register_length - 1) /
                     spec_.vector_register_length;
  const double len_factor =
      rc.nr / (rc.nr + cost_.loop_startup_cycles +
               chunks * cost_.chunk_startup_cycles);
  r.avg_vector_length =
      static_cast<double>(rc.nr) / chunks;  // what the HW counter reports

  // Vector-operation ratio: a few scalar bookkeeping ops per radial line.
  const double alpha =
      rc.nr / (rc.nr + cost_.scalar_overhead_per_line);
  r.vec_op_ratio = alpha;

  const double ap_multiplier =
      hybrid ? spec_.aps_per_node * cost_.microtask_efficiency : 1.0;
  const double vec_rate = spec_.ap_peak_gflops * 1e9 *
                          cost_.mem_sustain_frac * len_factor * ap_multiplier;
  const double t_comp =
      w_proc * (alpha / vec_rate +
                (1.0 - alpha) / (cost_.scalar_gflops * 1e9 * ap_multiplier));

  // ---- communication --------------------------------------------------
  // Per RK4 stage (4 fills/step): 4-neighbour halo strips of all 8
  // fields, 2 ghost layers deep and nr long, plus this process's share
  // of the inter-panel overset traffic (one 8-field radial line per
  // boundary column; the ghost frame has ≈ 2·ghost·(2nt+2np) columns).
  constexpr int fills_per_step = 4;
  constexpr int fields = 8;
  constexpr int ghost = 2;
  const double bytes_halo =
      fields * 8.0 * rc.nr * ghost *
      (2.0 * (r.npl + 2 * ghost) + 2.0 * (r.ntl + 2 * ghost));
  const double overset_columns = 2.0 * ghost * (2.0 * rc.nt + 2.0 * rc.np);
  const double bytes_overset =
      fields * 8.0 * rc.nr * overset_columns / per_panel;
  const double bytes_per_fill = bytes_halo + bytes_overset;
  const int msgs_per_fill = 8 + 2;  // 4 neighbours × send+recv + overset

  // Hybrid: a whole node drives one message stream at full link rate.
  const double bw = cost_.eff_bandwidth_gbs * (hybrid ? spec_.aps_per_node : 1.0);
  const double t_comm_fill = bytes_per_fill / (bw * 1e9) +
                             msgs_per_fill * cost_.msg_latency_s +
                             cost_.straggler_s_per_proc * ranks;
  const double t_comm = fills_per_step * t_comm_fill;
  // Phase split of the fill: halo carries 8 of the 10 messages and its
  // byte share; the straggler tail is apportioned by byte volume.
  const double halo_share =
      (bytes_halo / (bw * 1e9) + 8 * cost_.msg_latency_s +
       cost_.straggler_s_per_proc * ranks * bytes_halo / bytes_per_fill) /
      t_comm_fill;

  // ---- overlapped stepping (DESIGN.md §10) ----------------------------
  // The interior of the patch (ghost-width rim peeled off in θ and φ)
  // needs no fresh ghosts, so its sweep can run while the halo/overset
  // messages of that fill are in flight.  Three of the four RK4 fills
  // per step overlap; the final state fill has no compute behind it.
  {
    const double interior_vol =
        static_cast<double>(rc.nr) * std::max(0, r.ntl - 2 * ghost) *
        std::max(0, r.npl - 2 * ghost);
    r.interior_fraction =
        interior_vol / (static_cast<double>(rc.nr) * r.ntl * r.npl);
    const int overlapped_fills = fills_per_step - 1;
    const double t_comp_fill = t_comp / fills_per_step;
    r.hidden_comm_s = overlapped_fills *
                      std::min(t_comm_fill, t_comp_fill * r.interior_fraction);
    r.overlap_efficiency = r.hidden_comm_s / (fills_per_step * t_comm_fill);
    r.overlapped_time_per_step_s = t_comp + t_comm - r.hidden_comm_s;
  }

  // ---- totals ----------------------------------------------------------
  r.time_per_step_s = t_comp + t_comm;
  r.comm_fraction = t_comm / r.time_per_step_s;
  r.comp_fraction = t_comp / r.time_per_step_s;
  r.halo_fraction = r.comm_fraction * halo_share;
  r.overset_fraction = r.comm_fraction * (1.0 - halo_share);
  r.tflops = r.flops_per_step / r.time_per_step_s / 1e12;
  const double peak_tflops = rc.processors * spec_.ap_peak_gflops / 1000.0;
  r.efficiency = r.tflops / peak_tflops;
  r.flops_per_gridpoint_rate =
      r.tflops * 1e12 / static_cast<double>(r.grid_points);

  // Memory footprint: the solver keeps 8 state arrays, 3 integrator
  // stage sets (8 each) and ~19 workspace temporaries per process,
  // all (nr+4)(ntl+4)(npl+4) doubles — checked against the node's
  // shared memory shared by its resident processes (Table I).
  constexpr int arrays = 8 + 3 * 8 + 19;
  const double patch_doubles = static_cast<double>(rc.nr + 4) *
                               (r.ntl + 4) * (r.npl + 4);
  r.memory_per_process_mb = arrays * patch_doubles * 8.0 / 1048576.0;
  const int procs_per_node = hybrid ? 1 : spec_.aps_per_node;
  r.fits_node_memory = r.memory_per_process_mb * procs_per_node <
                       spec_.node_memory_gb * 1024.0;
  return r;
}

}  // namespace yy::perf

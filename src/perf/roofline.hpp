/// \file roofline.hpp
/// Measured-vs-charged roofline attribution: the join between the
/// analytic flop charges (common/flops.hpp, the quantities behind the
/// emulated List-1 MPIPROGINF) and the per-phase performance-counter
/// deltas the obs layer measured (obs/hwcounters.hpp).
///
/// Each row pairs one phase's measured seconds and counters with its
/// charged flops, yielding achieved GFlop/s, IPC, estimated DRAM
/// bandwidth (cache-miss lines x 64 B) and arithmetic intensity — the
/// "measured MPIPROGINF" next to the emulated one in
/// bench/list1_proginf.  The report says which backend produced the
/// numbers: under the software fallback the measured flop column *is*
/// the charge (exact by construction); only perf_event gives an
/// independent hardware measurement.
#pragma once

#include <string>
#include <vector>

#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yy::perf {

/// One phase's (or the whole run's) measured/charged joined view.
struct RooflineRow {
  obs::Phase phase = obs::Phase::other;
  std::string label;             ///< phase name or "TOTAL"
  double seconds = 0.0;          ///< Σ measured span seconds
  std::uint64_t charged_flops = 0;  ///< analytic charge (flops.hpp)
  std::uint64_t hw_flops = 0;       ///< raw FP-ops counter (0: not opened)
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;

  /// Hardware count when a FP-ops event was open, else the charge.
  std::uint64_t measured_flops() const {
    return hw_flops != 0 ? hw_flops : charged_flops;
  }
  double achieved_gflops() const {
    return seconds > 0.0
               ? static_cast<double>(measured_flops()) / seconds / 1e9
               : 0.0;
  }
  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// DRAM traffic estimate: each cache miss moves one 64 B line.
  double dram_gbs() const {
    return seconds > 0.0
               ? static_cast<double>(cache_misses) * 64.0 / seconds / 1e9
               : 0.0;
  }
  /// Arithmetic intensity against the miss-traffic estimate.
  double flops_per_byte() const {
    return cache_misses > 0 ? static_cast<double>(measured_flops()) /
                                  (static_cast<double>(cache_misses) * 64.0)
                            : 0.0;
  }
  /// measured/charged flop ratio (1.0 exactly under software fallback).
  double efficiency_vs_charge() const {
    return charged_flops > 0 ? static_cast<double>(measured_flops()) /
                                   static_cast<double>(charged_flops)
                             : 0.0;
  }
};

/// Per-phase roofline attribution for one run, plus the all-phase total
/// and the unattributed residual (flops charged outside any span:
/// initialization, stable-dt probes, inter-span gaps).
struct RooflineReport {
  obs::CounterBackend backend = obs::CounterBackend::off;
  std::vector<RooflineRow> rows;  ///< phases with activity, enum order
  RooflineRow total;              ///< Σ over rows
  /// Global charged flops not attributed to any phase row; only known
  /// when the caller passes the run's flops::global_count() to build().
  std::uint64_t unattributed_flops = 0;

  /// Joins the per-phase totals of `m` (seconds + counter deltas).
  /// `global_flops` (flops::global_count() at collection time, 0 =
  /// unknown) sets unattributed_flops = global - Σ charged.
  static RooflineReport build(const obs::MetricsSummary& m,
                              obs::CounterBackend backend,
                              std::uint64_t global_flops = 0);

  /// Fixed-width text table, one row per phase + TOTAL, headed by the
  /// backend stamp.
  std::string format() const;
};

}  // namespace yy::perf

/// \file params.hpp
/// Physical parameters of the normalized MHD system, paper eqs. (2)-(6).
///
/// Normalization (paper §III): outer-sphere radius r_o = 1, outer
/// temperature T(r_o) = 1, outer mass density ρ(r_o) = 1.  Six free
/// parameters: γ, the three dissipation constants (µ, K, η), gravity
/// strength g0, and rotation Ω.  The rotation axis is given as a
/// Cartesian vector in the *local panel frame*, so the same equations
/// serve both Yin (Ω = Ω ẑ) and Yang (Ω = Ω ŷ, the image of ẑ under
/// eq. 1) with no special-casing — the symmetry the paper exploits.
#pragma once

#include "common/vec3.hpp"

namespace yy::mhd {

struct EquationParams {
  double gamma = 5.0 / 3.0;  ///< ratio of specific heats
  double mu = 1e-3;          ///< dynamic viscosity µ
  double kappa = 1e-3;       ///< thermal conductivity K
  double eta = 1e-3;         ///< electrical resistivity η
  double g0 = 1.0;           ///< gravity: g = −g0/r² r̂
  Vec3 omega{0.0, 0.0, 0.0}; ///< rotation vector in local Cartesian frame

  /// The same parameters with the rotation axis mapped by eq. (1) into
  /// the partner panel's frame: (x,y,z) → (−x, z, y).
  EquationParams for_partner_panel() const {
    EquationParams q = *this;
    q.omega = Vec3{-omega.x, omega.z, omega.y};
    return q;
  }
};

/// Spherical shell: the Earth's outer core has
/// r_i/r_o = 1200 km / 3500 km ≈ 0.343 (paper §I).
struct ShellSpec {
  double r_inner = 1200.0 / 3500.0;
  double r_outer = 1.0;
};

/// Thermal boundary values: hot inner sphere, cold outer (paper §III).
struct ThermalBc {
  double t_inner = 2.0;
  double t_outer = 1.0;
};

}  // namespace yy::mhd

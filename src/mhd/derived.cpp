#include "mhd/derived.hpp"

#include "common/flops.hpp"
#include "grid/fd_ops.hpp"

namespace yy::mhd {

void velocity_and_temperature(const Fields& s, FieldView vr, FieldView vt,
                              FieldView vp, FieldView T, const IndexBox& box) {
  for_box(box, [&](int ir, int it, int ip) {
    const double inv_rho = 1.0 / s.rho(ir, it, ip);
    vr(ir, it, ip) = s.fr(ir, it, ip) * inv_rho;
    vt(ir, it, ip) = s.ft(ir, it, ip) * inv_rho;
    vp(ir, it, ip) = s.fp(ir, it, ip) * inv_rho;
    T(ir, it, ip) = s.p(ir, it, ip) * inv_rho;
  });
  flops::add(static_cast<std::uint64_t>(box.volume()) * kFlopsVelTemp);
}

void magnetic_field(const SphericalGrid& g, const Fields& s, FieldView br,
                    FieldView bt, FieldView bp, const IndexBox& box) {
  fd::curl(g, s.ar, s.at, s.ap, br, bt, bp, box);
}

void current_density(const SphericalGrid& g, ConstFieldView br,
                     ConstFieldView bt, ConstFieldView bp, FieldView jr,
                     FieldView jt, FieldView jp, const IndexBox& box) {
  fd::curl(g, br, bt, bp, jr, jt, jp, box);
}

void electric_field(double eta, ConstFieldView vr, ConstFieldView vt,
                    ConstFieldView vp, ConstFieldView br, ConstFieldView bt,
                    ConstFieldView bp, ConstFieldView jr, ConstFieldView jt,
                    ConstFieldView jp, FieldView er, FieldView et, FieldView ep,
                    const IndexBox& box) {
  for_box(box, [&](int ir, int it, int ip) {
    const double vrc = vr(ir, it, ip), vtc = vt(ir, it, ip), vpc = vp(ir, it, ip);
    const double brc = br(ir, it, ip), btc = bt(ir, it, ip), bpc = bp(ir, it, ip);
    // (v×B) in spherical components (orthonormal basis, so the usual
    // cross-product formula applies componentwise).
    er(ir, it, ip) = -(vtc * bpc - vpc * btc) + eta * jr(ir, it, ip);
    et(ir, it, ip) = -(vpc * brc - vrc * bpc) + eta * jt(ir, it, ip);
    ep(ir, it, ip) = -(vrc * btc - vtc * brc) + eta * jp(ir, it, ip);
  });
  flops::add(static_cast<std::uint64_t>(box.volume()) * kFlopsElectric);
}

}  // namespace yy::mhd

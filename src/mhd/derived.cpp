#include "mhd/derived.hpp"

#include "common/flops.hpp"
#include "grid/fd_ops.hpp"

namespace yy::mhd {

void velocity_and_temperature(const Fields& s, Field3& vr, Field3& vt,
                              Field3& vp, Field3& T, const IndexBox& box) {
  for_box(box, [&](int ir, int it, int ip) {
    const double inv_rho = 1.0 / s.rho(ir, it, ip);
    vr(ir, it, ip) = s.fr(ir, it, ip) * inv_rho;
    vt(ir, it, ip) = s.ft(ir, it, ip) * inv_rho;
    vp(ir, it, ip) = s.fp(ir, it, ip) * inv_rho;
    T(ir, it, ip) = s.p(ir, it, ip) * inv_rho;
  });
  flops::add(static_cast<std::uint64_t>(box.volume()) * kFlopsVelTemp);
}

void magnetic_field(const SphericalGrid& g, const Fields& s, Field3& br,
                    Field3& bt, Field3& bp, const IndexBox& box) {
  fd::curl(g, s.ar, s.at, s.ap, br, bt, bp, box);
}

void current_density(const SphericalGrid& g, const Field3& br,
                     const Field3& bt, const Field3& bp, Field3& jr,
                     Field3& jt, Field3& jp, const IndexBox& box) {
  fd::curl(g, br, bt, bp, jr, jt, jp, box);
}

void electric_field(double eta, const Field3& vr, const Field3& vt,
                    const Field3& vp, const Field3& br, const Field3& bt,
                    const Field3& bp, const Field3& jr, const Field3& jt,
                    const Field3& jp, Field3& er, Field3& et, Field3& ep,
                    const IndexBox& box) {
  for_box(box, [&](int ir, int it, int ip) {
    const double vrc = vr(ir, it, ip), vtc = vt(ir, it, ip), vpc = vp(ir, it, ip);
    const double brc = br(ir, it, ip), btc = bt(ir, it, ip), bpc = bp(ir, it, ip);
    // (v×B) in spherical components (orthonormal basis, so the usual
    // cross-product formula applies componentwise).
    er(ir, it, ip) = -(vtc * bpc - vpc * btc) + eta * jr(ir, it, ip);
    et(ir, it, ip) = -(vpc * brc - vrc * bpc) + eta * jt(ir, it, ip);
    ep(ir, it, ip) = -(vrc * btc - vtc * brc) + eta * jp(ir, it, ip);
  });
  flops::add(static_cast<std::uint64_t>(box.volume()) * kFlopsElectric);
}

}  // namespace yy::mhd

/// \file rhs_simd.cpp
/// The SIMD RHS backend: the fused rolling-pencil sweep of
/// rhs_fused.cpp with its radial inner loops widened to W-lane packs
/// (common/simd.hpp) plus a width-1 remainder tail.
///
/// Bitwise contract (DESIGN.md §14): every per-point body below is the
/// same grid/fd_stencils.hpp template the scalar fused sweep
/// instantiates — the accessor types change (FieldLanes / RingLanes /
/// LaneMetrics instead of Field3 / PlaneRing::View / SphericalGrid),
/// the source expressions do not.  Pack arithmetic is strictly
/// elementwise and the build pins -ffp-contract=off, so lane i of any
/// pack equals the scalar evaluation at ir+i bit for bit; the tail
/// points run the literal W=1 instantiation.  The equivalence suite
/// (tests/mhd/test_rhs_simd.cpp) pins this for every width, split, and
/// thread count.
///
/// This TU is compiled with the native ISA flags (see src/mhd/
/// CMakeLists.txt) so the packs lower to real vector instructions; the
/// rest of the tree keeps the portable baseline flags.
#include <algorithm>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/microtask.hpp"
#include "common/simd.hpp"
#include "grid/fd_ops.hpp"
#include "grid/fd_stencils.hpp"
#include "grid/fd_stencils_simd.hpp"
#include "mhd/derived.hpp"
#include "mhd/rhs.hpp"

namespace yy::mhd {
namespace {

/// Everything a sweep needs, bundled so the per-point templates take
/// one argument; all values match what compute_rhs_fused computes.
struct SweepCtx {
  const SphericalGrid& g;
  const EquationParams& eq;
  const Fields& state;
  Fields& rhs;
  PencilWorkspace& pw;
  IndexBox box, e2, e1;
  double c_r, c_t, c_p, irr, itt, ipp;
  double c43, gm1, cstr;
};

/// v = f/ρ, T = p/ρ at lanes ir…ir+W−1 of plane q (fill_vt body).
template <int W>
inline void vt_point(const SweepCtx& c, int ir, int it, int q) {
  using P = simd::Pack<W>;
  const fd::FieldLanes<W> rho{&c.state.rho}, fr{&c.state.fr},
      ft{&c.state.ft}, fp{&c.state.fp}, p{&c.state.p};
  const P inv_rho = 1.0 / rho(ir, it, q);
  (fr(ir, it, q) * inv_rho).store(c.pw.vr.lane_at(ir, it, q));
  (ft(ir, it, q) * inv_rho).store(c.pw.vt.lane_at(ir, it, q));
  (fp(ir, it, q) * inv_rho).store(c.pw.vp.lane_at(ir, it, q));
  (p(ir, it, q) * inv_rho).store(c.pw.T.lane_at(ir, it, q));
}

/// B = ∇×A, ∇·v, ∇×v at lanes ir…ir+W−1 of plane q (fill_derived body).
template <int W>
inline void derived_point(const SweepCtx& c, int ir, int it, int q) {
  const fd::LaneMetrics<W> g{&c.g};
  const fd::FieldLanes<W> ar{&c.state.ar}, at{&c.state.at}, ap{&c.state.ap};
  const fd::RingLanes<W> Vr{&c.pw.vr}, Vt{&c.pw.vt}, Vp{&c.pw.vp};
  const auto b =
      fd::curl_point(g, ar, at, ap, c.c_r, c.c_t, c.c_p, ir, it, q);
  b.r.store(c.pw.br.lane_at(ir, it, q));
  b.t.store(c.pw.bt.lane_at(ir, it, q));
  b.p.store(c.pw.bp.lane_at(ir, it, q));
  fd::div_point(g, Vr, Vt, Vp, c.c_r, c.c_t, c.c_p, ir, it, q)
      .store(c.pw.divv.lane_at(ir, it, q));
  const auto cv =
      fd::curl_point(g, Vr, Vt, Vp, c.c_r, c.c_t, c.c_p, ir, it, q);
  cv.r.store(c.pw.cvr.lane_at(ir, it, q));
  cv.t.store(c.pw.cvt.lane_at(ir, it, q));
  cv.p.store(c.pw.cvp.lane_at(ir, it, q));
}

/// All eight tendencies at lanes ir…ir+W−1 of output plane ip, in the
/// reference chain's accumulation order (combine body).
template <int W>
inline void combine_point(const SweepCtx& c, int ir, int it, int ip,
                          double st, double ct) {
  using P = simd::Pack<W>;
  const fd::LaneMetrics<W> g{&c.g};
  const EquationParams& eq = c.eq;
  const fd::FieldLanes<W> Srho{&c.state.rho}, Sfr{&c.state.fr},
      Sft{&c.state.ft}, Sfp{&c.state.fp}, Sp{&c.state.p};
  const fd::RingLanes<W> Vr{&c.pw.vr}, Vt{&c.pw.vt}, Vp{&c.pw.vp},
      Tp{&c.pw.T}, Br{&c.pw.br}, Bt{&c.pw.bt}, Bp{&c.pw.bp},
      Dv{&c.pw.divv}, Cr{&c.pw.cvr}, Ct{&c.pw.cvt}, Cp{&c.pw.cvp};
  const double c_r = c.c_r, c_t = c.c_t, c_p = c.c_p;

  // --- eq. (2): ∂ρ/∂t = −∇·f -----------------------------------
  (-fd::div_point(g, Sfr, Sft, Sfp, c_r, c_t, c_p, ir, it, ip))
      .store(&c.rhs.rho(ir, it, ip));

  // --- eq. (3): momentum ---------------------------------------
  const auto dvf = fd::div_vf_point(g, Vr, Vt, Vp, Sfr, Sft, Sfp, c_r, c_t,
                                    c_p, ir, it, ip);
  const auto gp = fd::grad_point(g, Sp, c_r, c_t, c_p, ir, it, ip);
  P fr_acc = -dvf.r - gp.r;
  P ft_acc = -dvf.t - gp.t;
  P fp_acc = -dvf.p - gp.p;
  const auto gd = fd::grad_point(g, Dv, c_r, c_t, c_p, ir, it, ip);
  fr_acc += c.c43 * gd.r;
  ft_acc += c.c43 * gd.t;
  fp_acc += c.c43 * gd.p;
  const auto cc = fd::curl_point(g, Cr, Ct, Cp, c_r, c_t, c_p, ir, it, ip);
  fr_acc -= eq.mu * cc.r;
  ft_acc -= eq.mu * cc.t;
  fp_acc -= eq.mu * cc.p;

  const double sp = c.g.sin_p(ip), cp = c.g.cos_p(ip);
  const double o_r =
      eq.omega.x * st * cp + eq.omega.y * st * sp + eq.omega.z * ct;
  const double o_t =
      eq.omega.x * ct * cp + eq.omega.y * ct * sp - eq.omega.z * st;
  const double o_p = -eq.omega.x * sp + eq.omega.y * cp;

  const P rho = Srho(ir, it, ip);
  const P vrc = Vr(ir, it, ip), vtc = Vt(ir, it, ip), vpc = Vp(ir, it, ip);
  const P brc = Br(ir, it, ip), btc = Bt(ir, it, ip), bpc = Bp(ir, it, ip);
  const auto j = fd::curl_point(g, Br, Bt, Bp, c_r, c_t, c_p, ir, it, ip);
  const P jrc = j.r, jtc = j.t, jpc = j.p;

  const P gr = -eq.g0 * g.inv_r(ir) * g.inv_r(ir);  // g = −g0/r² r̂

  fr_acc += (jtc * bpc - jpc * btc) + rho * gr +
            2.0 * rho * (vtc * o_p - vpc * o_t);
  ft_acc += (jpc * brc - jrc * bpc) + 2.0 * rho * (vpc * o_r - vrc * o_p);
  fp_acc += (jrc * btc - jtc * brc) + 2.0 * rho * (vrc * o_t - vtc * o_r);
  fr_acc.store(&c.rhs.fr(ir, it, ip));
  ft_acc.store(&c.rhs.ft(ir, it, ip));
  fp_acc.store(&c.rhs.fp(ir, it, ip));

  // --- eq. (4): pressure ---------------------------------------
  const P adv =
      fd::advect_point(g, Vr, Vt, Vp, Sp, c_r, c_t, c_p, ir, it, ip);
  const P lap =
      fd::laplacian_point(g, Tp, c.irr, c.itt, c.ipp, c_r, c_t, ir, it, ip);
  const P j2 = jrc * jrc + jtc * jtc + jpc * jpc;
  P p_acc = -adv - eq.gamma * Sp(ir, it, ip) * Dv(ir, it, ip) +
            c.gm1 * (eq.kappa * lap + eq.eta * j2);
  p_acc += c.cstr * fd::strain_point(g, Vr, Vt, Vp, c_r, c_t, c_p, ir, it, ip);
  p_acc.store(&c.rhs.p(ir, it, ip));

  // --- eq. (5): ∂A/∂t = −E = v×B − ηj --------------------------
  ((vtc * bpc - vpc * btc) - eq.eta * jrc).store(&c.rhs.ar(ir, it, ip));
  ((vpc * brc - vrc * bpc) - eq.eta * jtc).store(&c.rhs.at(ir, it, ip));
  ((vrc * btc - vtc * brc) - eq.eta * jpc).store(&c.rhs.ap(ir, it, ip));
}

/// The rolling sweep at pack width W: same plane schedule as
/// compute_rhs_fused; each radial line runs full W-lane packs then the
/// W=1 instantiation over the remainder.
template <int W>
void sweep(const SweepCtx& c) {
  const auto fill_vt = [&](int q) {
    for (int it = c.e2.t0; it < c.e2.t1; ++it) {
      int ir = c.e2.r0;
      for (; ir + W <= c.e2.r1; ir += W) vt_point<W>(c, ir, it, q);
      for (; ir < c.e2.r1; ++ir) vt_point<1>(c, ir, it, q);
    }
  };
  const auto fill_derived = [&](int q) {
    for (int it = c.e1.t0; it < c.e1.t1; ++it) {
      int ir = c.e1.r0;
      for (; ir + W <= c.e1.r1; ir += W) derived_point<W>(c, ir, it, q);
      for (; ir < c.e1.r1; ++ir) derived_point<1>(c, ir, it, q);
    }
  };
  const auto combine = [&](int ip) {
    for (int it = c.box.t0; it < c.box.t1; ++it) {
      const double st = c.g.sin_t(it), ct = c.g.cos_t(it);
      int ir = c.box.r0;
      for (; ir + W <= c.box.r1; ir += W)
        combine_point<W>(c, ir, it, ip, st, ct);
      for (; ir < c.box.r1; ++ir) combine_point<1>(c, ir, it, ip, st, ct);
    }
  };

  for (int q = c.box.p0 - 2; q < c.box.p0 + 2; ++q) fill_vt(q);
  for (int q = c.box.p0 - 1; q < c.box.p0 + 1; ++q) fill_derived(q);
  for (int ip = c.box.p0; ip < c.box.p1; ++ip) {
    fill_vt(ip + 2);
    fill_derived(ip + 1);
    combine(ip);
  }
}

}  // namespace

void compute_rhs_simd_width(int width, const SphericalGrid& g,
                            const EquationParams& eq, const Fields& state,
                            Fields& rhs, PencilWorkspace& pw,
                            const IndexBox& box) {
  YY_REQUIRE(width == 1 || width == 2 || width == 4 || width == 8);
  if (box.volume() == 0) return;
  const IndexBox e2 = box.grown(2);
  const IndexBox e1 = box.grown(1);
  // Same reach as the fused sweep; the pack loads of a radial line stay
  // inside the extents the scalar line touches (the loop guard keeps
  // ir+W−1 inside each loop's own bound).
  YY_REQUIRE(e2.r0 >= 0 && e2.r1 <= g.Nr());
  YY_REQUIRE(e2.t0 >= 0 && e2.t1 <= g.Nt());
  YY_REQUIRE(e2.p0 >= 0 && e2.p1 <= g.Np());
  pw.ensure(box);

  SweepCtx c{g,
             eq,
             state,
             rhs,
             pw,
             box,
             e2,
             e1,
             1.0 / (2.0 * g.dr()),
             1.0 / (2.0 * g.dt()),
             1.0 / (2.0 * g.dp()),
             1.0 / (g.dr() * g.dr()),
             1.0 / (g.dt() * g.dt()),
             1.0 / (g.dp() * g.dp()),
             4.0 / 3.0 * eq.mu,
             eq.gamma - 1.0,
             (eq.gamma - 1.0) * 2.0 * eq.mu};

  switch (width) {
    case 8:
      sweep<8>(c);
      break;
    case 4:
      sweep<4>(c);
      break;
    case 2:
      sweep<2>(c);
      break;
    default:
      sweep<1>(c);
      break;
  }

  // Analytic lane accounting: each radial line of length L issues
  // ⌊L/W⌋ full packs plus L mod W width-1 tail trips.  The measured
  // counterpart of the ES model's vector columns (perf/proginf).
  const auto vol = [](const IndexBox& b) {
    return static_cast<std::uint64_t>(b.volume());
  };
  const std::uint64_t np = static_cast<std::uint64_t>(box.p1 - box.p0);
  simd::LaneStats stats;
  const auto add_lines = [&](std::uint64_t lines, std::uint64_t len) {
    const std::uint64_t full = len / static_cast<std::uint64_t>(width);
    const std::uint64_t tail = len % static_cast<std::uint64_t>(width);
    stats.iterations += lines * (full + tail);
    if (width > 1) stats.vector_points += lines * full * width;
    stats.points += lines * len;
  };
  add_lines(static_cast<std::uint64_t>(e2.t1 - e2.t0) * (np + 4),
            static_cast<std::uint64_t>(e2.r1 - e2.r0));
  add_lines(static_cast<std::uint64_t>(e1.t1 - e1.t0) * (np + 2),
            static_cast<std::uint64_t>(e1.r1 - e1.r0));
  add_lines(static_cast<std::uint64_t>(box.t1 - box.t0) * np,
            static_cast<std::uint64_t>(box.r1 - box.r0));
  simd::lane_stats_add(stats);

  // Identical flop charge to the fused and reference paths: the lanes
  // change how the points are traversed, not how many ops each costs.
  flops::add(vol(e2) * kFlopsVelTemp +
             vol(e1) * (2 * fd::kFlopsCurl + fd::kFlopsDiv) +
             vol(box) *
                 (fd::kFlopsCurl + fd::kFlopsDiv + fd::kFlopsDivVf +
                  2 * fd::kFlopsGrad + fd::kFlopsCurl + fd::kFlopsAdvect +
                  fd::kFlopsLaplacian + fd::kFlopsStrain +
                  kFlopsPointwiseCombine));
}

void compute_rhs_simd(const SphericalGrid& g, const EquationParams& eq,
                      const Fields& state, Fields& rhs, PencilWorkspace& pw,
                      const IndexBox& box) {
  compute_rhs_simd_width(simd::active_width(), g, eq, state, rhs, pw, box);
}

void compute_rhs_parallel_simd_width(int width, const SphericalGrid& g,
                                     const EquationParams& eq,
                                     const Fields& state, Fields& rhs,
                                     std::vector<PencilWorkspace>& pw_pool,
                                     const IndexBox& box, int nthreads) {
  if (box.volume() == 0) return;
  const int np = box.p1 - box.p0;
  const int n = std::clamp(nthreads, 1, np);
  while (pw_pool.size() < static_cast<std::size_t>(n)) pw_pool.emplace_back();
  if (n == 1) {
    compute_rhs_simd_width(width, g, eq, state, rhs, pw_pool[0], box);
    return;
  }
  common::parallel_regions(n, [&](int k) {
    compute_rhs_simd_width(width, g, eq, state, rhs,
                           pw_pool[static_cast<std::size_t>(k)],
                           phi_slab(box, n, k));
  });
}

void compute_rhs_parallel_simd(const SphericalGrid& g,
                               const EquationParams& eq, const Fields& state,
                               Fields& rhs,
                               std::vector<PencilWorkspace>& pw_pool,
                               const IndexBox& box, int nthreads) {
  compute_rhs_parallel_simd_width(simd::active_width(), g, eq, state, rhs,
                                  pw_pool, box, nthreads);
}

}  // namespace yy::mhd

/// \file init.hpp
/// Initial conditions (paper §III): a conductive temperature profile
/// between the hot inner and cold outer sphere, hydrostatic density
/// stratification under the central gravity g = −g0/r² r̂, fluid at
/// rest, a random temperature (pressure) perturbation, and an
/// infinitesimally small random seed of the magnetic vector potential.
///
/// All randomness is hash noise of *global* node identities, so the
/// initial state is bit-identical across domain decompositions.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

struct InitialConditions {
  double perturb_amp = 1e-2;  ///< relative pressure perturbation
  double seed_b_amp = 1e-4;   ///< vector-potential seed amplitude
  std::uint64_t seed = 42;    ///< noise seed
};

/// Conductive profile T(r) = a + b/r through the wall temperatures.
double conductive_temperature(const ShellSpec& shell, const ThermalBc& bc,
                              double r);

/// Hydrostatic density: integrates dρ/dr = −ρ (g0/r² + T'(r)) / T(r)
/// inward from ρ(r_o) = 1 (paper normalization).
double hydrostatic_density(const ShellSpec& shell, const ThermalBc& bc,
                           double g0, double r);

/// Offsets of this patch's interior node (0,0,0) in the panel-global
/// index space (radial direction is never decomposed).
struct GlobalOffset {
  int it0 = 0;
  int ip0 = 0;
};

/// Fills `s` with the initial state on one patch of one panel.
/// `panel_id` (0 = Yin, 1 = Yang) decorrelates the two panels' noise.
void initialize_state(const SphericalGrid& g, const ShellSpec& shell,
                      const ThermalBc& bc, double g0,
                      const InitialConditions& ic, int panel_id,
                      const GlobalOffset& off, Fields& s);

}  // namespace yy::mhd

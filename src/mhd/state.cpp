#include "mhd/state.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/microtask.hpp"

namespace yy::mhd {

namespace {

// Field-wise fork-join: region k handles fields k, k+n, …  The arrays
// are disjoint and each element update is independent of the thread
// count, so results are bitwise identical for any YY_THREADS.
template <typename PerField>
void over_fields(PerField&& body) {
  const int n = std::min(common::env_threads(), Fields::kNumFields);
  common::parallel_regions(n, [&](int k) {
    for (int i = k; i < Fields::kNumFields; i += n) body(i);
  });
}

}  // namespace

Fields::Fields(const SphericalGrid& g)
    : rho(g.Nr(), g.Nt(), g.Np(), 1.0),
      fr(g.Nr(), g.Nt(), g.Np()),
      ft(g.Nr(), g.Nt(), g.Np()),
      fp(g.Nr(), g.Nt(), g.Np()),
      p(g.Nr(), g.Nt(), g.Np(), 1.0),
      ar(g.Nr(), g.Nt(), g.Np()),
      at(g.Nr(), g.Nt(), g.Np()),
      ap(g.Nr(), g.Nt(), g.Np()) {}

std::array<Field3*, Fields::kNumFields> Fields::all() {
  return {&rho, &fr, &ft, &fp, &p, &ar, &at, &ap};
}

std::array<const Field3*, Fields::kNumFields> Fields::all() const {
  return {&rho, &fr, &ft, &fp, &p, &ar, &at, &ap};
}

void Fields::copy_from(const Fields& src) {
  auto dst = all();
  auto s = src.all();
  // Shape checks stay serial: a throw on a worker thread would
  // std::terminate instead of surfacing as a catchable yy::Error.
  for (int i = 0; i < kNumFields; ++i) YY_REQUIRE(dst[i]->same_shape(*s[i]));
  over_fields([&](int i) {
    std::copy(s[i]->flat().begin(), s[i]->flat().end(),
              dst[i]->flat().begin());
  });
}

void Fields::axpy(double a, const Fields& x) {
  auto dst = all();
  auto s = x.all();
  for (int i = 0; i < kNumFields; ++i) YY_REQUIRE(dst[i]->same_shape(*s[i]));
  over_fields([&](int i) {
    auto d = dst[i]->flat();
    auto v = s[i]->flat();
    for (std::size_t k = 0; k < d.size(); ++k) d[k] += a * v[k];
  });
  flops::add(2ull * kNumFields * rho.size());
}

void Fields::assign_axpy(const Fields& base, double a, const Fields& x) {
  auto dst = all();
  auto b = base.all();
  auto s = x.all();
  for (int i = 0; i < kNumFields; ++i)
    YY_REQUIRE(dst[i]->same_shape(*s[i]) && dst[i]->same_shape(*b[i]));
  over_fields([&](int i) {
    auto d = dst[i]->flat();
    auto bb = b[i]->flat();
    auto v = s[i]->flat();
    for (std::size_t k = 0; k < d.size(); ++k) d[k] = bb[k] + a * v[k];
  });
  flops::add(2ull * kNumFields * rho.size());
}

void Fields::set_zero() {
  for (Field3* f : all()) f->fill(0.0);
}

}  // namespace yy::mhd

#include "mhd/rhs.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/microtask.hpp"
#include "grid/fd_ops.hpp"
#include "mhd/derived.hpp"

namespace yy::mhd {

Workspace::Workspace(const SphericalGrid& g) { ensure(g.interior()); }

Workspace::Workspace(const IndexBox& box) { ensure(box); }

void Workspace::ensure(const IndexBox& box) {
  const IndexBox g2 = box.grown(2);
  const IndexBox g1 = box.grown(1);
  // v and T feed the composite second-order operators, so they are
  // established over box.grown(2); the once-differentiated derived
  // fields over box.grown(1); plain operator outputs over box.
  for (common::ScratchField* f : {&vr, &vt, &vp, &T}) f->grow_to(g2);
  for (common::ScratchField* f : {&br, &bt, &bp, &divv, &cvr, &cvt, &cvp})
    f->grow_to(g1);
  for (common::ScratchField* f : {&jr, &jt, &jp, &t0, &t1, &t2, &s0, &s1})
    f->grow_to(box);
}

bool Workspace::covers(const IndexBox& box) const {
  const IndexBox g2 = box.grown(2);
  const IndexBox g1 = box.grown(1);
  return vr.covers(g2) && vt.covers(g2) && vp.covers(g2) && T.covers(g2) &&
         br.covers(g1) && bt.covers(g1) && bp.covers(g1) && divv.covers(g1) &&
         cvr.covers(g1) && cvt.covers(g1) && cvp.covers(g1) &&
         jr.covers(box) && jt.covers(box) && jp.covers(box) &&
         t0.covers(box) && t1.covers(box) && t2.covers(box) &&
         s0.covers(box) && s1.covers(box);
}

std::size_t Workspace::allocated_doubles() const {
  std::size_t n = 0;
  for (const common::ScratchField* f :
       {&vr, &vt, &vp, &T, &br, &bt, &bp, &jr, &jt, &jp, &divv, &cvr, &cvt,
        &cvp, &t0, &t1, &t2, &s0, &s1})
    n += f->allocated_doubles();
  return n;
}

void compute_rhs(const SphericalGrid& g, const EquationParams& eq,
                 const Fields& state, Fields& rhs, Workspace& ws,
                 const IndexBox& box) {
  ws.ensure(box);
  const IndexBox ext = box.grown(1);

  // --- derived fields -------------------------------------------------
  // The first-derivative fields (∇·v, ∇×v, B) are themselves
  // differentiated again, so they are evaluated on box.grown(1); their
  // own stencils then read one layer further — v and T must therefore
  // be established on box.grown(2), i.e. over the full ghost set.
  velocity_and_temperature(state, ws.vr, ws.vt, ws.vp, ws.T, box.grown(2));
  magnetic_field(g, state, ws.br, ws.bt, ws.bp, ext);   // B = ∇×A
  current_density(g, ws.br, ws.bt, ws.bp, ws.jr, ws.jt, ws.jp, box);
  fd::div(g, ws.vr, ws.vt, ws.vp, ws.divv, ext);        // ∇·v
  fd::curl(g, ws.vr, ws.vt, ws.vp, ws.cvr, ws.cvt, ws.cvp, ext);

  // --- eq. (2): ∂ρ/∂t = −∇·f -----------------------------------------
  fd::div(g, state.fr, state.ft, state.fp, ws.s0, box);
  for_box(box, [&](int ir, int it, int ip) {
    rhs.rho(ir, it, ip) = -ws.s0(ir, it, ip);
  });

  // --- eq. (3): momentum ----------------------------------------------
  // −∇·(vf): the flux divergence with curvature terms.
  fd::div_vf(g, ws.vr, ws.vt, ws.vp, state.fr, state.ft, state.fp, rhs.fr,
             rhs.ft, rhs.fp, box);
  // ∇p into (t0,t1,t2), then start combining.
  fd::grad(g, state.p, ws.t0, ws.t1, ws.t2, box);
  for_box(box, [&](int ir, int it, int ip) {
    rhs.fr(ir, it, ip) = -rhs.fr(ir, it, ip) - ws.t0(ir, it, ip);
    rhs.ft(ir, it, ip) = -rhs.ft(ir, it, ip) - ws.t1(ir, it, ip);
    rhs.fp(ir, it, ip) = -rhs.fp(ir, it, ip) - ws.t2(ir, it, ip);
  });
  // µ(4/3 ∇(∇·v) − ∇×(∇×v)).
  fd::grad(g, ws.divv, ws.t0, ws.t1, ws.t2, box);
  {
    const double c = 4.0 / 3.0 * eq.mu;
    for_box(box, [&](int ir, int it, int ip) {
      rhs.fr(ir, it, ip) += c * ws.t0(ir, it, ip);
      rhs.ft(ir, it, ip) += c * ws.t1(ir, it, ip);
      rhs.fp(ir, it, ip) += c * ws.t2(ir, it, ip);
    });
  }
  fd::curl(g, ws.cvr, ws.cvt, ws.cvp, ws.t0, ws.t1, ws.t2, box);
  for_box(box, [&](int ir, int it, int ip) {
    rhs.fr(ir, it, ip) -= eq.mu * ws.t0(ir, it, ip);
    rhs.ft(ir, it, ip) -= eq.mu * ws.t1(ir, it, ip);
    rhs.fp(ir, it, ip) -= eq.mu * ws.t2(ir, it, ip);
  });
  // j×B + ρg + 2ρ v×Ω, with Ω converted from the local Cartesian frame
  // to spherical components at each node.
  for_box(box, [&](int ir, int it, int ip) {
    const double st = g.sin_t(it), ct = g.cos_t(it);
    const double sp = g.sin_p(ip), cp = g.cos_p(ip);
    const double o_r = eq.omega.x * st * cp + eq.omega.y * st * sp + eq.omega.z * ct;
    const double o_t = eq.omega.x * ct * cp + eq.omega.y * ct * sp - eq.omega.z * st;
    const double o_p = -eq.omega.x * sp + eq.omega.y * cp;

    const double rho = state.rho(ir, it, ip);
    const double vrc = ws.vr(ir, it, ip), vtc = ws.vt(ir, it, ip),
                 vpc = ws.vp(ir, it, ip);
    const double brc = ws.br(ir, it, ip), btc = ws.bt(ir, it, ip),
                 bpc = ws.bp(ir, it, ip);
    const double jrc = ws.jr(ir, it, ip), jtc = ws.jt(ir, it, ip),
                 jpc = ws.jp(ir, it, ip);

    const double gr = -eq.g0 * g.inv_r(ir) * g.inv_r(ir);  // g = −g0/r² r̂

    rhs.fr(ir, it, ip) += (jtc * bpc - jpc * btc) + rho * gr +
                          2.0 * rho * (vtc * o_p - vpc * o_t);
    rhs.ft(ir, it, ip) += (jpc * brc - jrc * bpc) +
                          2.0 * rho * (vpc * o_r - vrc * o_p);
    rhs.fp(ir, it, ip) += (jrc * btc - jtc * brc) +
                          2.0 * rho * (vrc * o_t - vtc * o_r);
  });

  // --- eq. (4): pressure ----------------------------------------------
  fd::advect(g, ws.vr, ws.vt, ws.vp, state.p, ws.s0, box);  // v·∇p
  fd::laplacian(g, ws.T, ws.s1, box);                       // ∇²T
  {
    const double gm1 = eq.gamma - 1.0;
    for_box(box, [&](int ir, int it, int ip) {
      const double j2 = ws.jr(ir, it, ip) * ws.jr(ir, it, ip) +
                        ws.jt(ir, it, ip) * ws.jt(ir, it, ip) +
                        ws.jp(ir, it, ip) * ws.jp(ir, it, ip);
      rhs.p(ir, it, ip) = -ws.s0(ir, it, ip) -
                          eq.gamma * state.p(ir, it, ip) * ws.divv(ir, it, ip) +
                          gm1 * (eq.kappa * ws.s1(ir, it, ip) + eq.eta * j2);
    });
  }
  // + (γ−1)Φ with Φ = 2µ(e_ij e_ij − ⅓(∇·v)²).
  fd::strain_invariant(g, ws.vr, ws.vt, ws.vp, ws.s0, box);
  {
    const double c = (eq.gamma - 1.0) * 2.0 * eq.mu;
    for_box(box, [&](int ir, int it, int ip) {
      rhs.p(ir, it, ip) += c * ws.s0(ir, it, ip);
    });
  }

  // --- eq. (5): ∂A/∂t = −E = v×B − ηj ---------------------------------
  for_box(box, [&](int ir, int it, int ip) {
    const double vrc = ws.vr(ir, it, ip), vtc = ws.vt(ir, it, ip),
                 vpc = ws.vp(ir, it, ip);
    const double brc = ws.br(ir, it, ip), btc = ws.bt(ir, it, ip),
                 bpc = ws.bp(ir, it, ip);
    rhs.ar(ir, it, ip) = (vtc * bpc - vpc * btc) - eq.eta * ws.jr(ir, it, ip);
    rhs.at(ir, it, ip) = (vpc * brc - vrc * bpc) - eq.eta * ws.jt(ir, it, ip);
    rhs.ap(ir, it, ip) = (vrc * btc - vtc * brc) - eq.eta * ws.jp(ir, it, ip);
  });

  flops::add(static_cast<std::uint64_t>(box.volume()) * kFlopsPointwiseCombine);
}

RhsSplit split_rhs_box(const IndexBox& box, int rim) {
  YY_REQUIRE(rim >= 0);
  RhsSplit s;
  // Shrink in θ and φ only; clamp so degenerate extents collapse the
  // interior to zero volume instead of going negative.
  const int t_lo = std::min(box.t1, box.t0 + rim);
  const int t_hi = std::max(t_lo, box.t1 - rim);
  const int p_lo = std::min(box.p1, box.p0 + rim);
  const int p_hi = std::max(p_lo, box.p1 - rim);
  s.interior = {box.r0, box.r1, t_lo, t_hi, p_lo, p_hi};

  const auto add_rim = [&s](const IndexBox& b) {
    if (b.volume() > 0) s.rim.push_back(b);
  };
  // θ caps span the full φ range; φ flanks cover only the interior θ
  // band, so the four pieces tile box ∖ interior with no overlap.
  add_rim({box.r0, box.r1, box.t0, t_lo, box.p0, box.p1});
  add_rim({box.r0, box.r1, t_hi, box.t1, box.p0, box.p1});
  add_rim({box.r0, box.r1, t_lo, t_hi, box.p0, p_lo});
  add_rim({box.r0, box.r1, t_lo, t_hi, p_hi, box.p1});
  return s;
}

IndexBox phi_slab(const IndexBox& box, int n, int k) {
  const int np = box.p1 - box.p0;
  const int base = np / n, extra = np % n;
  IndexBox slab = box;
  // Contiguous φ-slabs; the first (np % n) slabs take one extra plane.
  slab.p0 = box.p0 + k * base + std::min(k, extra);
  slab.p1 = slab.p0 + base + (k < extra ? 1 : 0);
  return slab;
}

void compute_rhs_parallel(const SphericalGrid& g, const EquationParams& eq,
                          const Fields& state, Fields& rhs,
                          std::vector<Workspace>& ws_pool, const IndexBox& box,
                          int nthreads) {
  if (box.volume() == 0) return;
  // One slab per thread, at least one φ plane per slab.
  const int np = box.p1 - box.p0;
  const int n = std::clamp(nthreads, 1, np);
  // Each pool entry grows to cover only its slab (compute_rhs ensures
  // on entry), so resident scratch is ~19 slab-sized blocks per thread
  // — the full-box total plus one stencil halo per extra thread —
  // instead of the historic 19×YY_THREADS full-grid arrays; see the
  // YY_THREADS policy note in common/microtask.hpp.
  while (ws_pool.size() < static_cast<std::size_t>(n)) ws_pool.emplace_back();
  if (n == 1) {
    compute_rhs(g, eq, state, rhs, ws_pool[0], box);
    return;
  }
  common::parallel_regions(n, [&](int k) {
    compute_rhs(g, eq, state, rhs, ws_pool[static_cast<std::size_t>(k)],
                phi_slab(box, n, k));
  });
}

void compute_rhs_parallel_fused(const SphericalGrid& g,
                                const EquationParams& eq, const Fields& state,
                                Fields& rhs,
                                std::vector<PencilWorkspace>& pw_pool,
                                const IndexBox& box, int nthreads) {
  if (box.volume() == 0) return;
  const int np = box.p1 - box.p0;
  const int n = std::clamp(nthreads, 1, np);
  while (pw_pool.size() < static_cast<std::size_t>(n)) pw_pool.emplace_back();
  if (n == 1) {
    compute_rhs_fused(g, eq, state, rhs, pw_pool[0], box);
    return;
  }
  common::parallel_regions(n, [&](int k) {
    compute_rhs_fused(g, eq, state, rhs, pw_pool[static_cast<std::size_t>(k)],
                      phi_slab(box, n, k));
  });
}

}  // namespace yy::mhd

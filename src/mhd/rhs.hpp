/// \file rhs.hpp
/// Right-hand side of the normalized MHD system, paper eqs. (2)-(5):
///
///   ∂ρ/∂t = −∇·f
///   ∂f/∂t = −∇·(vf) − ∇p + j×B + ρg + 2ρ v×Ω
///            + µ(∇²v + ⅓∇(∇·v))
///   ∂p/∂t = −v·∇p − γp∇·v + (γ−1)K∇²T + (γ−1)ηj² + (γ−1)Φ
///   ∂A/∂t = −E,           E = −v×B + ηj
///
/// The vector Laplacian is evaluated through the identity
/// ∇²v = ∇(∇·v) − ∇×(∇×v), so the viscous term becomes
/// µ(4/3 ∇(∇·v) − ∇×(∇×v)) — every differential operator is then one
/// of the scalar/vector primitives in grid/fd_ops.hpp.
///
/// Two backends evaluate the same arithmetic (DESIGN.md §11):
///  * compute_rhs — the reference operator-at-a-time chain: one fd::*
///    pass per operator with box-sized scratch.  Simple, auditable, the
///    oracle the equivalence tests compare against.
///  * compute_rhs_fused — one cache-blocked sweep over φ with rolling
///    pencil rings of derived-field planes and radial-innermost loops;
///    same per-point expression trees (grid/fd_stencils.hpp), so the
///    result is bitwise identical on this build (no FMA contraction),
///    while the working set shrinks to O(depth·Nr·Nt).
///
/// The RHS is valid on any IndexBox whose grown(2) data is filled
/// (2 ghost layers: one consumed by the derived fields B and ∇·v, one
/// by the outer derivative of the composite second-order operators).
#pragma once

#include <cstddef>
#include <vector>

#include "common/array3d.hpp"
#include "common/pencil.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

/// RHS evaluation strategy (see file comment); plumbed from
/// core::SimulationConfig::fused_rhs through the integrators.
enum class RhsBackend {
  reference,  ///< operator-at-a-time fd::* chain (the oracle)
  fused,      ///< cache-blocked pencil sweep (bitwise-equal, faster)
  simd,       ///< fused sweep with radial lane packs (bitwise-equal, fastest)
};

constexpr const char* backend_name(RhsBackend b) {
  return b == RhsBackend::simd
             ? "simd"
             : (b == RhsBackend::fused ? "fused" : "reference");
}

/// Preallocated temporaries for one reference-path RHS evaluation
/// (reusable across steps; allocation-free hot loop once grown, see
/// Core Guidelines Per.14).  Each member is a rebased scratch block
/// covering only the extents the evaluation over `box` actually
/// indexes — v/T on box.grown(2), the differentiated derived fields on
/// box.grown(1), operator outputs on box — instead of the historic
/// full-grid Nr×Nt×Np arrays (the ~19×YY_THREADS memory multiplier;
/// tests/mhd/test_workspace_footprint.cpp pins the bound).
struct Workspace {
  /// Covers nothing; compute_rhs grows it on first use.
  Workspace() = default;
  /// Full-patch coverage (every box inside g.interior() works without
  /// reallocation) — what long-lived solver workspaces use.
  explicit Workspace(const SphericalGrid& g);
  /// Sized for RHS evaluation over exactly `box`.
  explicit Workspace(const IndexBox& box);

  /// Grows every member to the coverage an evaluation over `box`
  /// needs; monotone (hull with current coverage), so alternating
  /// interior/rim sweeps stay allocation-free in steady state.
  void ensure(const IndexBox& box);
  bool covers(const IndexBox& box) const;
  std::size_t allocated_doubles() const;

  common::ScratchField vr, vt, vp, T;   // derived pointwise fields
  common::ScratchField br, bt, bp;      // B = ∇×A
  common::ScratchField jr, jt, jp;      // j = ∇×B
  common::ScratchField divv;            // ∇·v
  common::ScratchField cvr, cvt, cvp;   // ∇×v
  common::ScratchField t0, t1, t2;      // operator output scratch (vector)
  common::ScratchField s0, s1;          // operator output scratch (scalar)
};

/// Number of box-sized scratch arrays in Workspace (the footprint
/// regression test's accounting constant).
inline constexpr int kWorkspaceFields = 19;

/// Evaluates d(state)/dt into `rhs` over `box`; `state` must hold valid
/// data on box.grown(2).  `rhs` ghost regions are left untouched.
void compute_rhs(const SphericalGrid& g, const EquationParams& eq,
                 const Fields& state, Fields& rhs, Workspace& ws,
                 const IndexBox& box);

/// Pencil scratch of the fused backend: rolling φ-plane rings sized by
/// the stencil footprint — v and T planes are consumed by second-order
/// composites two φ layers away (depth 5, (r,θ) extent box.grown(2)),
/// the differentiated derived fields one layer (depth 3, box.grown(1)).
/// j = ∇×B needs no storage at all: it is evaluated per output point
/// from the resident B ring.  Total: 41 pencil planes versus the
/// reference path's 19 box-sized volumes.
struct PencilWorkspace {
  common::PlaneRing vr, vt, vp, T;        // depth 5
  common::PlaneRing br, bt, bp;           // depth 3, B = ∇×A
  common::PlaneRing divv, cvr, cvt, cvp;  // depth 3, ∇·v and ∇×v

  /// Grows the rings for a sweep over `box` (monotone, like
  /// Workspace::ensure).
  void ensure(const IndexBox& box);
  std::size_t allocated_doubles() const;
};

/// Pencil planes resident in a PencilWorkspace (4 rings of depth 5 +
/// 7 of depth 3); the footprint test's accounting constant.
inline constexpr int kPencilPlanes = 4 * 5 + 7 * 3;

/// The fused backend: same contract and bitwise-identical result as
/// compute_rhs (see file comment), evaluated in one rolling-pencil
/// sweep over φ with radial-innermost loops; charges exactly the same
/// flop count.
void compute_rhs_fused(const SphericalGrid& g, const EquationParams& eq,
                       const Fields& state, Fields& rhs, PencilWorkspace& pw,
                       const IndexBox& box);

/// Interior/boundary-shell decomposition of an RHS sweep for the
/// overlapped stepping mode.  `interior` is `box` shrunk by the rim
/// width in θ and φ only (never radially — radial ghosts are filled by
/// the purely local wall reflection, so the interior sweep needs no
/// exchanged data); `rim` is the leftover horizontal shell as at most
/// four disjoint boxes.  Every point of `box` lands in exactly one
/// piece.  On patches too small to hold an interior (extent ≤ 2·rim in
/// a decomposed direction) the interior is empty and the rim covers
/// the whole box.
struct RhsSplit {
  IndexBox interior{};             ///< may have zero volume
  std::vector<IndexBox> rim;       ///< ≤ 4 boxes, all non-empty, disjoint

  bool interior_empty() const { return interior.volume() == 0; }
};

/// Splits `box` for a stencil-width `rim` (≥ 0; the solver passes the
/// grid's ghost width).  Pure index arithmetic, no grid required.
RhsSplit split_rhs_box(const IndexBox& box, int rim);

/// The k-th of n contiguous φ-slabs of `box` (the first np mod n slabs
/// take one extra plane).  Shared by both parallel backends so the
/// partition — and therefore the bitwise result — cannot diverge.
IndexBox phi_slab(const IndexBox& box, int n, int k);

/// compute_rhs over `box` decomposed into `nthreads` contiguous φ-slabs
/// evaluated concurrently (common/microtask.hpp), one workspace per
/// slab — `ws_pool` is grown to `nthreads` entries on first use, each
/// sized to its slab (not the full grid).  Every slab is an independent
/// compute_rhs call, so the result is bitwise identical to the
/// monolithic sweep for any thread count (the RHS is a pointwise
/// function of the state's stencil neighbourhood; no cross-point
/// reductions).  nthreads ≤ 1 is exactly compute_rhs.
void compute_rhs_parallel(const SphericalGrid& g, const EquationParams& eq,
                          const Fields& state, Fields& rhs,
                          std::vector<Workspace>& ws_pool, const IndexBox& box,
                          int nthreads);

/// The fused analogue of compute_rhs_parallel: identical φ-slab
/// partition (phi_slab), one PencilWorkspace per slab, bitwise
/// identical to compute_rhs_fused — and therefore to compute_rhs — for
/// any thread count.
void compute_rhs_parallel_fused(const SphericalGrid& g,
                                const EquationParams& eq, const Fields& state,
                                Fields& rhs,
                                std::vector<PencilWorkspace>& pw_pool,
                                const IndexBox& box, int nthreads);

/// The SIMD backend: the fused pencil sweep with its radial inner loops
/// widened to `width`-lane packs (common/simd.hpp) plus a width-1 tail
/// for the remainder points.  Per-point expression trees are the shared
/// grid/fd_stencils.hpp templates instantiated over lane packs, whose
/// arithmetic is strictly elementwise with FMA contraction pinned off —
/// so the result is bitwise identical to compute_rhs_fused (and the
/// reference chain) for every width.  Charges the same flop count and
/// additionally records lane statistics (simd::lane_stats_add), the
/// measured counterpart of the ES model's vector columns.
/// `width` must be 1, 2, 4, or 8.
void compute_rhs_simd_width(int width, const SphericalGrid& g,
                            const EquationParams& eq, const Fields& state,
                            Fields& rhs, PencilWorkspace& pw,
                            const IndexBox& box);

/// compute_rhs_simd_width at simd::active_width() — what the
/// integrators call when RhsBackend::simd is selected.
void compute_rhs_simd(const SphericalGrid& g, const EquationParams& eq,
                      const Fields& state, Fields& rhs, PencilWorkspace& pw,
                      const IndexBox& box);

/// The SIMD analogue of compute_rhs_parallel_fused: identical φ-slab
/// partition (phi_slab), one PencilWorkspace per slab, bitwise
/// identical to the monolithic sweep for any thread count and width.
void compute_rhs_parallel_simd_width(int width, const SphericalGrid& g,
                                     const EquationParams& eq,
                                     const Fields& state, Fields& rhs,
                                     std::vector<PencilWorkspace>& pw_pool,
                                     const IndexBox& box, int nthreads);

/// compute_rhs_parallel_simd_width at simd::active_width().
void compute_rhs_parallel_simd(const SphericalGrid& g,
                               const EquationParams& eq, const Fields& state,
                               Fields& rhs,
                               std::vector<PencilWorkspace>& pw_pool,
                               const IndexBox& box, int nthreads);

/// Pointwise-combination flop cost per grid point (the FD operators
/// charge separately); documented for the perf model's cross-check.
inline constexpr int kFlopsPointwiseCombine = 78;

}  // namespace yy::mhd

/// \file rhs.hpp
/// Right-hand side of the normalized MHD system, paper eqs. (2)-(5):
///
///   ∂ρ/∂t = −∇·f
///   ∂f/∂t = −∇·(vf) − ∇p + j×B + ρg + 2ρ v×Ω
///            + µ(∇²v + ⅓∇(∇·v))
///   ∂p/∂t = −v·∇p − γp∇·v + (γ−1)K∇²T + (γ−1)ηj² + (γ−1)Φ
///   ∂A/∂t = −E,           E = −v×B + ηj
///
/// The vector Laplacian is evaluated through the identity
/// ∇²v = ∇(∇·v) − ∇×(∇×v), so the viscous term becomes
/// µ(4/3 ∇(∇·v) − ∇×(∇×v)) — every differential operator is then one
/// of the scalar/vector primitives in grid/fd_ops.hpp.
///
/// The RHS is valid on any IndexBox whose grown(2) data is filled
/// (2 ghost layers: one consumed by the derived fields B and ∇·v, one
/// by the outer derivative of the composite second-order operators).
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

/// Preallocated temporaries for one RHS evaluation (reusable across
/// steps; allocation-free hot loop, see Core Guidelines Per.14).
struct Workspace {
  explicit Workspace(const SphericalGrid& g);

  Field3 vr, vt, vp, T;          // derived pointwise fields
  Field3 br, bt, bp;             // B = ∇×A
  Field3 jr, jt, jp;             // j = ∇×B
  Field3 divv;                   // ∇·v
  Field3 cvr, cvt, cvp;          // ∇×v
  Field3 t0, t1, t2;             // operator output scratch (vector)
  Field3 s0, s1;                 // operator output scratch (scalar)
};

/// Evaluates d(state)/dt into `rhs` over `box`; `state` must hold valid
/// data on box.grown(2).  `rhs` ghost regions are left untouched.
void compute_rhs(const SphericalGrid& g, const EquationParams& eq,
                 const Fields& state, Fields& rhs, Workspace& ws,
                 const IndexBox& box);

/// Interior/boundary-shell decomposition of an RHS sweep for the
/// overlapped stepping mode.  `interior` is `box` shrunk by the rim
/// width in θ and φ only (never radially — radial ghosts are filled by
/// the purely local wall reflection, so the interior sweep needs no
/// exchanged data); `rim` is the leftover horizontal shell as at most
/// four disjoint boxes.  Every point of `box` lands in exactly one
/// piece.  On patches too small to hold an interior (extent ≤ 2·rim in
/// a decomposed direction) the interior is empty and the rim covers
/// the whole box.
struct RhsSplit {
  IndexBox interior{};             ///< may have zero volume
  std::vector<IndexBox> rim;       ///< ≤ 4 boxes, all non-empty, disjoint

  bool interior_empty() const { return interior.volume() == 0; }
};

/// Splits `box` for a stencil-width `rim` (≥ 0; the solver passes the
/// grid's ghost width).  Pure index arithmetic, no grid required.
RhsSplit split_rhs_box(const IndexBox& box, int rim);

/// compute_rhs over `box` decomposed into `nthreads` contiguous φ-slabs
/// evaluated concurrently (common/microtask.hpp), one workspace per
/// slab — `ws_pool` is grown to `nthreads` entries on first use.  Every
/// slab is an independent compute_rhs call, so the result is bitwise
/// identical to the monolithic sweep for any thread count (the RHS is a
/// pointwise function of the state's stencil neighbourhood; no
/// cross-point reductions).  nthreads ≤ 1 is exactly compute_rhs.
void compute_rhs_parallel(const SphericalGrid& g, const EquationParams& eq,
                          const Fields& state, Fields& rhs,
                          std::vector<Workspace>& ws_pool, const IndexBox& box,
                          int nthreads);

/// Pointwise-combination flop cost per grid point (the FD operators
/// charge separately); documented for the perf model's cross-check.
inline constexpr int kFlopsPointwiseCombine = 78;

}  // namespace yy::mhd

/// \file derived.hpp
/// Subsidiary fields of paper eq. (6): velocity v = f/ρ, temperature
/// T = p/ρ (ideal gas p = ρT), magnetic field B = ∇×A, current
/// j = ∇×B and electric field E = −v×B + ηj.
#pragma once

#include "common/array3d.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

/// v = f/ρ and T = p/ρ over `box` (pointwise).
void velocity_and_temperature(const Fields& s, FieldView vr, FieldView vt,
                              FieldView vp, FieldView T, const IndexBox& box);

/// B = ∇×A over `box` (reads A over box.grown(1)).
void magnetic_field(const SphericalGrid& g, const Fields& s, FieldView br,
                    FieldView bt, FieldView bp, const IndexBox& box);

/// j = ∇×B over `box` (reads B over box.grown(1)).
void current_density(const SphericalGrid& g, ConstFieldView br,
                     ConstFieldView bt, ConstFieldView bp, FieldView jr,
                     FieldView jt, FieldView jp, const IndexBox& box);

/// E = −v×B + ηj over `box` (pointwise).
void electric_field(double eta, ConstFieldView vr, ConstFieldView vt,
                    ConstFieldView vp, ConstFieldView br, ConstFieldView bt,
                    ConstFieldView bp, ConstFieldView jr, ConstFieldView jt,
                    ConstFieldView jp, FieldView er, FieldView et, FieldView ep,
                    const IndexBox& box);

inline constexpr int kFlopsVelTemp = 5;  // 1 div + 4 mul
inline constexpr int kFlopsElectric = 15;

}  // namespace yy::mhd

/// \file derived.hpp
/// Subsidiary fields of paper eq. (6): velocity v = f/ρ, temperature
/// T = p/ρ (ideal gas p = ρT), magnetic field B = ∇×A, current
/// j = ∇×B and electric field E = −v×B + ηj.
#pragma once

#include "common/array3d.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

/// v = f/ρ and T = p/ρ over `box` (pointwise).
void velocity_and_temperature(const Fields& s, Field3& vr, Field3& vt,
                              Field3& vp, Field3& T, const IndexBox& box);

/// B = ∇×A over `box` (reads A over box.grown(1)).
void magnetic_field(const SphericalGrid& g, const Fields& s, Field3& br,
                    Field3& bt, Field3& bp, const IndexBox& box);

/// j = ∇×B over `box` (reads B over box.grown(1)).
void current_density(const SphericalGrid& g, const Field3& br,
                     const Field3& bt, const Field3& bp, Field3& jr,
                     Field3& jt, Field3& jp, const IndexBox& box);

/// E = −v×B + ηj over `box` (pointwise).
void electric_field(double eta, const Field3& vr, const Field3& vt,
                    const Field3& vp, const Field3& br, const Field3& bt,
                    const Field3& bp, const Field3& jr, const Field3& jt,
                    const Field3& jp, Field3& er, Field3& et, Field3& ep,
                    const IndexBox& box);

inline constexpr int kFlopsVelTemp = 5;  // 1 div + 4 mul
inline constexpr int kFlopsElectric = 15;

}  // namespace yy::mhd

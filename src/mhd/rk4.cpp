#include "mhd/rk4.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace yy::mhd {

Rk4::Rk4(const std::vector<const SphericalGrid*>& grids) : grids_(grids) {
  YY_REQUIRE(!grids.empty());
  k_.reserve(grids.size());
  stage_.reserve(grids.size());
  acc_.reserve(grids.size());
  ws_.reserve(grids.size());
  for (const SphericalGrid* g : grids) {
    k_.emplace_back(*g);
    stage_.emplace_back(*g);
    acc_.emplace_back(*g);
    ws_.emplace_back(*g);
  }
}

void Rk4::step(const std::vector<PatchDef>& patches, double dt,
               const FillFn& fill) {
  const std::size_t n = patches.size();
  YY_REQUIRE(n == grids_.size());

  std::vector<Fields*> stage_ptrs(n);
  std::vector<Fields*> state_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    YY_REQUIRE(patches[i].grid == grids_[i]);
    stage_ptrs[i] = &stage_[i];
    state_ptrs[i] = patches[i].state;
  }

  const IndexBox box0 = grids_[0]->interior();  // recomputed per patch below

  // Stage 1: k1 = f(y).
  for (std::size_t i = 0; i < n; ++i) {
    const IndexBox box = grids_[i]->interior();
    (void)box0;
    {
      YY_TRACE_SCOPE(obs::Phase::rhs);
      compute_rhs(*grids_[i], patches[i].eq, *patches[i].state, k_[i], ws_[i],
                  box);
    }
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    acc_[i].copy_from(*patches[i].state);
    acc_[i].axpy(dt / 6.0, k_[i]);
    stage_[i].assign_axpy(*patches[i].state, dt / 2.0, k_[i]);
  }
  fill(stage_ptrs);

  // Stage 2: k2 = f(y + dt/2 k1).
  for (std::size_t i = 0; i < n; ++i) {
    {
      YY_TRACE_SCOPE(obs::Phase::rhs);
      compute_rhs(*grids_[i], patches[i].eq, stage_[i], k_[i], ws_[i],
                  grids_[i]->interior());
    }
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    acc_[i].axpy(dt / 3.0, k_[i]);
  }
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i)
      stage_[i].assign_axpy(*patches[i].state, dt / 2.0, k_[i]);
  }
  fill(stage_ptrs);

  // Stage 3: k3 = f(y + dt/2 k2).
  for (std::size_t i = 0; i < n; ++i) {
    {
      YY_TRACE_SCOPE(obs::Phase::rhs);
      compute_rhs(*grids_[i], patches[i].eq, stage_[i], k_[i], ws_[i],
                  grids_[i]->interior());
    }
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    acc_[i].axpy(dt / 3.0, k_[i]);
  }
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i)
      stage_[i].assign_axpy(*patches[i].state, dt, k_[i]);
  }
  fill(stage_ptrs);

  // Stage 4: k4 = f(y + dt k3); y ← acc + dt/6 k4.
  for (std::size_t i = 0; i < n; ++i) {
    {
      YY_TRACE_SCOPE(obs::Phase::rhs);
      compute_rhs(*grids_[i], patches[i].eq, stage_[i], k_[i], ws_[i],
                  grids_[i]->interior());
    }
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    patches[i].state->copy_from(acc_[i]);
    patches[i].state->axpy(dt / 6.0, k_[i]);
  }
  fill(state_ptrs);
}

}  // namespace yy::mhd

#include "mhd/rk4.hpp"

#include "common/error.hpp"
#include "common/microtask.hpp"
#include "obs/trace.hpp"

namespace yy::mhd {

Rk4::Rk4(const std::vector<const SphericalGrid*>& grids, RhsBackend backend)
    : grids_(grids), backend_(backend) {
  YY_REQUIRE(!grids.empty());
  k_.reserve(grids.size());
  stage_.reserve(grids.size());
  acc_.reserve(grids.size());
  for (const SphericalGrid* g : grids) {
    k_.emplace_back(*g);
    stage_.emplace_back(*g);
    acc_.emplace_back(*g);
    // Pre-grow the reference workspaces to the full patch; the fused
    // backend's pencil rings size themselves on first sweep.
    if (backend_ == RhsBackend::reference) ws_.emplace_back(*g);
  }
  if (backend_ == RhsBackend::reference) {
    ws_pool_.resize(grids.size());  // grown on demand by the overlap path
  } else {
    pw_.resize(grids.size());
    pw_pool_.resize(grids.size());
  }
}

void Rk4::step(const std::vector<PatchDef>& patches, double dt,
               const FillFn& fill, const OverlapHooks* overlap) {
  const std::size_t n = patches.size();
  YY_REQUIRE(n == grids_.size());

  std::vector<Fields*> stage_ptrs(n);
  std::vector<Fields*> state_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    YY_REQUIRE(patches[i].grid == grids_[i]);
    stage_ptrs[i] = &stage_[i];
    state_ptrs[i] = patches[i].state;
  }

  const int nthreads = overlap ? common::env_threads() : 1;

  // Backend dispatch: the three paths are bitwise equivalent (rhs.hpp),
  // they differ only in scratch shape and sweep structure.  The simd
  // backend shares the fused path's pencil workspaces.
  auto rhs_box = [&](std::size_t i, const Fields& src, const IndexBox& box) {
    if (backend_ == RhsBackend::simd) {
      compute_rhs_simd(*grids_[i], patches[i].eq, src, k_[i], pw_[i], box);
    } else if (backend_ == RhsBackend::fused) {
      compute_rhs_fused(*grids_[i], patches[i].eq, src, k_[i], pw_[i], box);
    } else {
      compute_rhs(*grids_[i], patches[i].eq, src, k_[i], ws_[i], box);
    }
  };
  auto rhs_box_parallel = [&](std::size_t i, const Fields& src,
                              const IndexBox& box) {
    if (backend_ == RhsBackend::simd) {
      compute_rhs_parallel_simd(*grids_[i], patches[i].eq, src, k_[i],
                                pw_pool_[i], box, nthreads);
    } else if (backend_ == RhsBackend::fused) {
      compute_rhs_parallel_fused(*grids_[i], patches[i].eq, src, k_[i],
                                 pw_pool_[i], box, nthreads);
    } else {
      compute_rhs_parallel(*grids_[i], patches[i].eq, src, k_[i], ws_pool_[i],
                           box, nthreads);
    }
  };

  // k_[i] = f(src[i]) over the full interior; the stage-1 evaluation
  // and the synchronous path for stages 2-4.
  auto rhs_full = [&](const std::vector<Fields*>& src) {
    for (std::size_t i = 0; i < n; ++i) {
      YY_TRACE_SCOPE(obs::Phase::rhs);
      if (nthreads > 1) {
        rhs_box_parallel(i, *src[i], grids_[i]->interior());
      } else {
        rhs_box(i, *src[i], grids_[i]->interior());
      }
    }
  };

  // Refresh the ghosts of `src`, then k_[i] = f(src[i]).  Overlapped:
  // post the exchanges, evaluate the rim-shrunk interior while the
  // messages fly, complete the exchanges, evaluate the rim.  Each box
  // is an independent pointwise sweep, so interior + rim is bitwise
  // the monolithic evaluation.
  auto fill_then_rhs = [&](const std::vector<Fields*>& src) {
    if (overlap == nullptr) {
      fill(src);
      rhs_full(src);
      return;
    }
    overlap->post(src);
    for (std::size_t i = 0; i < n; ++i) {
      YY_TRACE_SCOPE(obs::Phase::interior_rhs);
      const RhsSplit sp =
          split_rhs_box(grids_[i]->interior(), overlap->rim_width);
      rhs_box_parallel(i, *src[i], sp.interior);
    }
    overlap->finish(src);
    for (std::size_t i = 0; i < n; ++i) {
      YY_TRACE_SCOPE(obs::Phase::rim_rhs);
      const RhsSplit sp =
          split_rhs_box(grids_[i]->interior(), overlap->rim_width);
      for (const IndexBox& b : sp.rim) rhs_box(i, *src[i], b);
    }
  };

  // Stage 1: k1 = f(y) (incoming ghosts are valid; nothing to overlap).
  rhs_full(state_ptrs);
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i) {
      acc_[i].copy_from(*patches[i].state);
      acc_[i].axpy(dt / 6.0, k_[i]);
      stage_[i].assign_axpy(*patches[i].state, dt / 2.0, k_[i]);
    }
  }

  // Stage 2: k2 = f(y + dt/2 k1).
  fill_then_rhs(stage_ptrs);
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i) {
      acc_[i].axpy(dt / 3.0, k_[i]);
      stage_[i].assign_axpy(*patches[i].state, dt / 2.0, k_[i]);
    }
  }

  // Stage 3: k3 = f(y + dt/2 k2).
  fill_then_rhs(stage_ptrs);
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i) {
      acc_[i].axpy(dt / 3.0, k_[i]);
      stage_[i].assign_axpy(*patches[i].state, dt, k_[i]);
    }
  }

  // Stage 4: k4 = f(y + dt k3); y ← acc + dt/6 k4.
  fill_then_rhs(stage_ptrs);
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i) {
      patches[i].state->copy_from(acc_[i]);
      patches[i].state->axpy(dt / 6.0, k_[i]);
    }
  }
  fill(state_ptrs);
}

}  // namespace yy::mhd

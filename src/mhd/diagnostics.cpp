#include "mhd/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "mhd/derived.hpp"

namespace yy::mhd {

EnergyBudget integrate_energies(const SphericalGrid& g,
                                const EquationParams& eq, const Fields& s,
                                Workspace& ws, const ColumnWeights& weights,
                                const IndexBox& box) {
  magnetic_field(g, s, ws.br, ws.bt, ws.bp, box);
  EnergyBudget e;
  for_box(box, [&](int ir, int it, int ip) {
    double w = weights.at(it, ip);
    if (w == 0.0) return;
    // Radial trapezoid end-weights: the box's radial ends are the
    // physical walls (the radial direction is never decomposed).
    if (ir == box.r0 || ir == box.r1 - 1) w *= 0.5;
    const double dv = w * g.volume_element(ir, it);
    const double rho = s.rho(ir, it, ip);
    const double f2 = s.fr(ir, it, ip) * s.fr(ir, it, ip) +
                      s.ft(ir, it, ip) * s.ft(ir, it, ip) +
                      s.fp(ir, it, ip) * s.fp(ir, it, ip);
    const double b2 = ws.br(ir, it, ip) * ws.br(ir, it, ip) +
                      ws.bt(ir, it, ip) * ws.bt(ir, it, ip) +
                      ws.bp(ir, it, ip) * ws.bp(ir, it, ip);
    e.mass += rho * dv;
    e.kinetic += 0.5 * f2 / rho * dv;
    e.magnetic += 0.5 * b2 * dv;
    e.thermal += s.p(ir, it, ip) / (eq.gamma - 1.0) * dv;
  });
  return e;
}

double stable_timestep(const SphericalGrid& g, const EquationParams& eq,
                       const Fields& s, Workspace& ws, const IndexBox& box) {
  magnetic_field(g, s, ws.br, ws.bt, ws.bp, box);
  double max_rate = 0.0;
  for_box(box, [&](int ir, int it, int ip) {
    const double rho = s.rho(ir, it, ip);
    const double inv_rho = 1.0 / rho;
    const double vr = std::abs(s.fr(ir, it, ip)) * inv_rho;
    const double vt = std::abs(s.ft(ir, it, ip)) * inv_rho;
    const double vp = std::abs(s.fp(ir, it, ip)) * inv_rho;
    const double b2 = ws.br(ir, it, ip) * ws.br(ir, it, ip) +
                      ws.bt(ir, it, ip) * ws.bt(ir, it, ip) +
                      ws.bp(ir, it, ip) * ws.bp(ir, it, ip);
    // Fast magnetosonic speed bound: sqrt(c_s² + c_A²).
    const double cf =
        std::sqrt((eq.gamma * s.p(ir, it, ip) + b2) * inv_rho);
    const double ihr = 1.0 / g.dr();
    const double iht = g.inv_r(ir) / g.dt();
    const double ihp = g.inv_r(ir) * g.inv_sin_t(it) / g.dp();
    const double adv =
        (vr + cf) * ihr + (vt + cf) * iht + (vp + cf) * ihp;
    // Explicit diffusion limit for the three dissipation constants;
    // thermal diffusivity carries the γK/ρ factor of eq. (4) recast as
    // a temperature equation.
    const double diff_coef =
        std::max({eq.mu * inv_rho, eq.gamma * eq.kappa * inv_rho, eq.eta});
    const double diff =
        2.0 * diff_coef * (ihr * ihr + iht * iht + ihp * ihp);
    max_rate = std::max(max_rate, adv + diff);
  });
  return max_rate > 0.0 ? 1.0 / max_rate : 1e30;
}

}  // namespace yy::mhd

#include "mhd/init.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/noise.hpp"

namespace yy::mhd {

namespace {

struct ConductiveProfile {
  double a, b;  // T(r) = a + b/r
};

ConductiveProfile conductive_coeffs(const ShellSpec& shell, const ThermalBc& bc) {
  const double ri = shell.r_inner, ro = shell.r_outer;
  YY_REQUIRE(ri > 0.0 && ro > ri);
  const double b = (bc.t_inner - bc.t_outer) / (1.0 / ri - 1.0 / ro);
  const double a = bc.t_outer - b / ro;
  return {a, b};
}

}  // namespace

double conductive_temperature(const ShellSpec& shell, const ThermalBc& bc,
                              double r) {
  const auto [a, b] = conductive_coeffs(shell, bc);
  return a + b / r;
}

double hydrostatic_density(const ShellSpec& shell, const ThermalBc& bc,
                           double g0, double r) {
  const auto [a, b] = conductive_coeffs(shell, bc);
  // d(lnρ)/dr = −(g0/r² + T'(r)) / T(r),  T' = −b/r².
  auto dlnrho = [&](double rr) {
    const double temp = a + b / rr;
    return -(g0 / (rr * rr) - b / (rr * rr)) / temp;
  };
  // RK4 integration of lnρ from r_o (where ρ = 1) to r, fixed fine step.
  const double r_from = shell.r_outer;
  const int nsub = 256;
  const double h = (r - r_from) / nsub;
  double lnrho = 0.0;
  double rr = r_from;
  for (int i = 0; i < nsub; ++i) {
    const double k1 = dlnrho(rr);
    const double k2 = dlnrho(rr + 0.5 * h);
    const double k3 = dlnrho(rr + 0.5 * h);
    const double k4 = dlnrho(rr + h);
    lnrho += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    rr += h;
  }
  return std::exp(lnrho);
}

void initialize_state(const SphericalGrid& g, const ShellSpec& shell,
                      const ThermalBc& bc, double g0,
                      const InitialConditions& ic, int panel_id,
                      const GlobalOffset& off, Fields& s) {
  // Radial profiles shared by every column (and both panels).
  std::vector<double> t_prof(static_cast<std::size_t>(g.Nr()));
  std::vector<double> rho_prof(static_cast<std::size_t>(g.Nr()));
  for (int ir = 0; ir < g.Nr(); ++ir) {
    t_prof[static_cast<std::size_t>(ir)] =
        conductive_temperature(shell, bc, g.r(ir));
    rho_prof[static_cast<std::size_t>(ir)] =
        hydrostatic_density(shell, bc, g0, g.r(ir));
  }

  const int gh = g.ghost();
  const int iw_in = gh;                     // inner wall node
  const int iw_out = gh + g.spec().nr - 1;  // outer wall node
  for (int ip = 0; ip < g.Np(); ++ip) {
    for (int it = 0; it < g.Nt(); ++it) {
      // Global indices of this column (for decomposition-independent
      // noise); ghost columns get noise too — they are overwritten by
      // the first ghost fill, so their values never matter.
      const int git = off.it0 + (it - gh);
      const int gip = off.ip0 + (ip - gh);
      for (int ir = 0; ir < g.Nr(); ++ir) {
        const double rho0 = rho_prof[static_cast<std::size_t>(ir)];
        const double t0 = t_prof[static_cast<std::size_t>(ir)];
        s.rho(ir, it, ip) = rho0;
        s.fr(ir, it, ip) = 0.0;
        s.ft(ir, it, ip) = 0.0;
        s.fp(ir, it, ip) = 0.0;
        const bool wall = ir == iw_in || ir == iw_out;
        const bool inside = ir > iw_in && ir < iw_out;
        const double gir = ir - gh;  // radial index is globally aligned
        const double dp =
            (wall || !inside)
                ? 0.0
                : ic.perturb_amp *
                      hash_noise(ic.seed, 0, panel_id,
                                 static_cast<int>(gir), git, gip);
        s.p(ir, it, ip) = rho0 * t0 * (1.0 + dp);
        const double ba = (inside ? ic.seed_b_amp : 0.0);
        s.ar(ir, it, ip) =
            ba * hash_noise(ic.seed, 1, panel_id, static_cast<int>(gir), git, gip);
        s.at(ir, it, ip) =
            ba * hash_noise(ic.seed, 2, panel_id, static_cast<int>(gir), git, gip);
        s.ap(ir, it, ip) =
            ba * hash_noise(ic.seed, 3, panel_id, static_cast<int>(gir), git, gip);
      }
    }
  }
}

}  // namespace yy::mhd

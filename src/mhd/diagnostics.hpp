/// \file diagnostics.hpp
/// Volume-integral diagnostics (mass, kinetic / magnetic / thermal
/// energy) and the CFL-stable timestep estimate.
///
/// On the Yin-Yang grid the two panels overlap (~6% of the sphere,
/// paper §II), so global integrals weight each column by its ownership
/// share: 1 where only this panel's core covers the point, 1/2 where
/// both cores do, 0 in the margin/ghost region (covered by the partner
/// core).  The weights are supplied per horizontal column.
#pragma once

#include <span>

#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/rhs.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

/// Ownership weight per horizontal column, indexed it * Np + ip over
/// the full patch (ghosts included, weight 0 there).
class ColumnWeights {
 public:
  ColumnWeights(int Nt, int Np, double fill = 1.0)
      : nt_(Nt), np_(Np),
        w_(static_cast<std::size_t>(Nt) * static_cast<std::size_t>(Np), fill) {}

  double& at(int it, int ip) { return w_[idx(it, ip)]; }
  double at(int it, int ip) const { return w_[idx(it, ip)]; }
  int Nt() const { return nt_; }
  int Np() const { return np_; }

 private:
  std::size_t idx(int it, int ip) const {
    return static_cast<std::size_t>(it) * static_cast<std::size_t>(np_) +
           static_cast<std::size_t>(ip);
  }
  int nt_, np_;
  std::vector<double> w_;
};

struct EnergyBudget {
  double mass = 0.0;
  double kinetic = 0.0;   ///< ∫ f²/(2ρ) dV
  double magnetic = 0.0;  ///< ∫ B²/2 dV
  double thermal = 0.0;   ///< ∫ p/(γ−1) dV

  EnergyBudget& operator+=(const EnergyBudget& o) {
    mass += o.mass;
    kinetic += o.kinetic;
    magnetic += o.magnetic;
    thermal += o.thermal;
    return *this;
  }
};

/// Integrates over `box` with ownership weights; needs valid ghosts on
/// box.grown(1) for B = ∇×A.  Uses `ws` for the curl scratch.
EnergyBudget integrate_energies(const SphericalGrid& g,
                                const EquationParams& eq, const Fields& s,
                                Workspace& ws, const ColumnWeights& weights,
                                const IndexBox& box);

/// Largest stable timestep (advective fast-mode CFL combined with the
/// explicit diffusion limit), over `box`.  Multiply by a safety factor.
double stable_timestep(const SphericalGrid& g, const EquationParams& eq,
                       const Fields& s, Workspace& ws, const IndexBox& box);

}  // namespace yy::mhd

/// \file integrator.hpp
/// Explicit time integrators for the MHD system.  The paper uses the
/// classical fourth-order Runge-Kutta method (§III); forward Euler and
/// the midpoint (RK2) scheme are provided for ablation and for the
/// temporal-convergence tests that pin each scheme's order.
///
/// Shares the PatchDef / fill-callback contract of rk4.hpp: after every
/// stage the caller re-establishes ghost data on the stage states.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "grid/spherical_grid.hpp"
#include "mhd/rhs.hpp"
#include "mhd/rk4.hpp"

namespace yy::mhd {

enum class TimeScheme {
  euler,  ///< forward Euler (1st order)
  rk2,    ///< explicit midpoint (2nd order)
  rk4,    ///< classical Runge-Kutta (4th order, the paper's choice)
};

/// Formal order of accuracy of a scheme.
constexpr int scheme_order(TimeScheme s) {
  switch (s) {
    case TimeScheme::euler: return 1;
    case TimeScheme::rk2: return 2;
    case TimeScheme::rk4: return 4;
  }
  return 0;
}

constexpr const char* scheme_name(TimeScheme s) {
  switch (s) {
    case TimeScheme::euler: return "euler";
    case TimeScheme::rk2: return "rk2";
    case TimeScheme::rk4: return "rk4";
  }
  return "?";
}

class Integrator {
 public:
  using FillFn = Rk4::FillFn;

  Integrator(TimeScheme scheme, const std::vector<const SphericalGrid*>& grids,
             RhsBackend backend = RhsBackend::reference);

  TimeScheme scheme() const { return scheme_; }
  RhsBackend backend() const { return backend_; }

  /// Advances every patch by dt (see Rk4::step for the contract).
  /// `overlap` (optional) enables the overlapped stage fills; it is
  /// honoured by the rk4 scheme only — euler/rk2 fall back to the
  /// synchronous fill, which the hooks contract guarantees equivalent.
  void step(const std::vector<PatchDef>& patches, double dt,
            const FillFn& fill, const OverlapHooks* overlap = nullptr);

 private:
  void step_euler(const std::vector<PatchDef>& patches, double dt,
                  const FillFn& fill);
  void step_rk2(const std::vector<PatchDef>& patches, double dt,
                const FillFn& fill);

  /// k_[i] = f(src) over patch i's interior via the selected backend.
  void eval_rhs(std::size_t i, const EquationParams& eq, const Fields& src);

  TimeScheme scheme_;
  RhsBackend backend_;
  std::vector<const SphericalGrid*> grids_;
  std::vector<Fields> k_, stage_;
  std::vector<Workspace> ws_;        // reference backend
  std::vector<PencilWorkspace> pw_;  // fused backend
  std::unique_ptr<Rk4> rk4_;  // reused for the rk4 scheme
};

}  // namespace yy::mhd

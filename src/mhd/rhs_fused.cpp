/// \file rhs_fused.cpp
/// The fused RHS backend: one rolling-pencil sweep over φ evaluating all
/// eight tendencies per point, bitwise identical to the reference
/// operator-at-a-time chain in rhs.cpp (see DESIGN.md §11).
///
/// Sweep structure — for each output plane ip the stencils need
///  * v and T two φ layers out (second-order composites differentiate
///    first-derivative fields, which themselves read ±1): depth-5 rings
///    over (r,θ) ∈ box.grown(2);
///  * the once-differentiated fields B, ∇·v, ∇×v one layer out:
///    depth-3 rings over box.grown(1);
///  * j = ∇×B only at the output point itself — evaluated on the fly
///    from the resident B ring, never stored.
/// So the steady-state loop is: fill v/T plane ip+2, fill derived plane
/// ip+1, combine plane ip — each plane computed exactly once, exactly as
/// many point-evaluations as the reference path performs over the same
/// boxes (the flop charge below is the same sum, term for term).
#include "mhd/rhs.hpp"

#include "common/error.hpp"
#include "common/flops.hpp"
#include "grid/fd_ops.hpp"
#include "grid/fd_stencils.hpp"
#include "mhd/derived.hpp"

namespace yy::mhd {

void PencilWorkspace::ensure(const IndexBox& box) {
  const IndexBox e2 = box.grown(2);
  const IndexBox e1 = box.grown(1);
  for (common::PlaneRing* r : {&vr, &vt, &vp, &T})
    r->ensure(5, e2.r0, e2.r1, e2.t0, e2.t1);
  for (common::PlaneRing* r : {&br, &bt, &bp, &divv, &cvr, &cvt, &cvp})
    r->ensure(3, e1.r0, e1.r1, e1.t0, e1.t1);
}

std::size_t PencilWorkspace::allocated_doubles() const {
  std::size_t n = 0;
  for (const common::PlaneRing* r :
       {&vr, &vt, &vp, &T, &br, &bt, &bp, &divv, &cvr, &cvt, &cvp})
    n += r->allocated_doubles();
  return n;
}

void compute_rhs_fused(const SphericalGrid& g, const EquationParams& eq,
                       const Fields& state, Fields& rhs, PencilWorkspace& pw,
                       const IndexBox& box) {
  if (box.volume() == 0) return;
  const IndexBox e2 = box.grown(2);
  const IndexBox e1 = box.grown(1);
  // Same reach as the reference chain: the sweep touches box.grown(2)
  // (metric tables and state ghosts must exist there).
  YY_REQUIRE(e2.r0 >= 0 && e2.r1 <= g.Nr());
  YY_REQUIRE(e2.t0 >= 0 && e2.t1 <= g.Nt());
  YY_REQUIRE(e2.p0 >= 0 && e2.p1 <= g.Np());
  pw.ensure(box);

  // Difference coefficients — the same expressions the fd::* operators
  // compute, so the shared per-point stencils see identical values.
  const double c_r = 1.0 / (2.0 * g.dr());
  const double c_t = 1.0 / (2.0 * g.dt());
  const double c_p = 1.0 / (2.0 * g.dp());
  const double irr = 1.0 / (g.dr() * g.dr());
  const double itt = 1.0 / (g.dt() * g.dt());
  const double ipp = 1.0 / (g.dp() * g.dp());

  const auto Vr = pw.vr.view(), Vt = pw.vt.view(), Vp = pw.vp.view(),
             Tp = pw.T.view();
  const auto Br = pw.br.view(), Bt = pw.bt.view(), Bp = pw.bp.view();
  const auto Dv = pw.divv.view();
  const auto Cr = pw.cvr.view(), Ct = pw.cvt.view(), Cp = pw.cvp.view();

  // v = f/ρ, T = p/ρ on one φ plane over (r,θ) ∈ box.grown(2); same
  // expression as mhd::velocity_and_temperature.
  const auto fill_vt = [&](int q) {
    for (int it = e2.t0; it < e2.t1; ++it) {
      for (int ir = e2.r0; ir < e2.r1; ++ir) {
        const double inv_rho = 1.0 / state.rho(ir, it, q);
        pw.vr.at(ir, it, q) = state.fr(ir, it, q) * inv_rho;
        pw.vt.at(ir, it, q) = state.ft(ir, it, q) * inv_rho;
        pw.vp.at(ir, it, q) = state.fp(ir, it, q) * inv_rho;
        pw.T.at(ir, it, q) = state.p(ir, it, q) * inv_rho;
      }
    }
  };

  // B = ∇×A, ∇·v and ∇×v on one φ plane over (r,θ) ∈ box.grown(1).
  const auto fill_derived = [&](int q) {
    for (int it = e1.t0; it < e1.t1; ++it) {
      for (int ir = e1.r0; ir < e1.r1; ++ir) {
        const fd::Triple b = fd::curl_point(g, state.ar, state.at, state.ap,
                                            c_r, c_t, c_p, ir, it, q);
        pw.br.at(ir, it, q) = b.r;
        pw.bt.at(ir, it, q) = b.t;
        pw.bp.at(ir, it, q) = b.p;
        pw.divv.at(ir, it, q) =
            fd::div_point(g, Vr, Vt, Vp, c_r, c_t, c_p, ir, it, q);
        const fd::Triple cv =
            fd::curl_point(g, Vr, Vt, Vp, c_r, c_t, c_p, ir, it, q);
        pw.cvr.at(ir, it, q) = cv.r;
        pw.cvt.at(ir, it, q) = cv.t;
        pw.cvp.at(ir, it, q) = cv.p;
      }
    }
  };

  const double c43 = 4.0 / 3.0 * eq.mu;
  const double gm1 = eq.gamma - 1.0;
  const double cstr = (eq.gamma - 1.0) * 2.0 * eq.mu;

  // All eight tendencies on one φ plane, accumulated in the reference
  // chain's order so every intermediate matches it bitwise.
  const auto combine = [&](int ip) {
    for (int it = box.t0; it < box.t1; ++it) {
      const double st = g.sin_t(it), ct = g.cos_t(it);
      for (int ir = box.r0; ir < box.r1; ++ir) {
        // --- eq. (2): ∂ρ/∂t = −∇·f -----------------------------------
        rhs.rho(ir, it, ip) = -fd::div_point(g, state.fr, state.ft, state.fp,
                                             c_r, c_t, c_p, ir, it, ip);

        // --- eq. (3): momentum ---------------------------------------
        const fd::Triple dvf =
            fd::div_vf_point(g, Vr, Vt, Vp, state.fr, state.ft, state.fp, c_r,
                             c_t, c_p, ir, it, ip);
        const fd::Triple gp =
            fd::grad_point(g, state.p, c_r, c_t, c_p, ir, it, ip);
        double fr_acc = -dvf.r - gp.r;
        double ft_acc = -dvf.t - gp.t;
        double fp_acc = -dvf.p - gp.p;
        const fd::Triple gd = fd::grad_point(g, Dv, c_r, c_t, c_p, ir, it, ip);
        fr_acc += c43 * gd.r;
        ft_acc += c43 * gd.t;
        fp_acc += c43 * gd.p;
        const fd::Triple cc =
            fd::curl_point(g, Cr, Ct, Cp, c_r, c_t, c_p, ir, it, ip);
        fr_acc -= eq.mu * cc.r;
        ft_acc -= eq.mu * cc.t;
        fp_acc -= eq.mu * cc.p;

        const double sp = g.sin_p(ip), cp = g.cos_p(ip);
        const double o_r =
            eq.omega.x * st * cp + eq.omega.y * st * sp + eq.omega.z * ct;
        const double o_t =
            eq.omega.x * ct * cp + eq.omega.y * ct * sp - eq.omega.z * st;
        const double o_p = -eq.omega.x * sp + eq.omega.y * cp;

        const double rho = state.rho(ir, it, ip);
        const double vrc = Vr(ir, it, ip), vtc = Vt(ir, it, ip),
                     vpc = Vp(ir, it, ip);
        const double brc = Br(ir, it, ip), btc = Bt(ir, it, ip),
                     bpc = Bp(ir, it, ip);
        const fd::Triple j =
            fd::curl_point(g, Br, Bt, Bp, c_r, c_t, c_p, ir, it, ip);
        const double jrc = j.r, jtc = j.t, jpc = j.p;

        const double gr = -eq.g0 * g.inv_r(ir) * g.inv_r(ir);  // g = −g0/r² r̂

        fr_acc += (jtc * bpc - jpc * btc) + rho * gr +
                  2.0 * rho * (vtc * o_p - vpc * o_t);
        ft_acc += (jpc * brc - jrc * bpc) + 2.0 * rho * (vpc * o_r - vrc * o_p);
        fp_acc += (jrc * btc - jtc * brc) + 2.0 * rho * (vrc * o_t - vtc * o_r);
        rhs.fr(ir, it, ip) = fr_acc;
        rhs.ft(ir, it, ip) = ft_acc;
        rhs.fp(ir, it, ip) = fp_acc;

        // --- eq. (4): pressure ---------------------------------------
        const double adv = fd::advect_point(g, Vr, Vt, Vp, state.p, c_r, c_t,
                                            c_p, ir, it, ip);
        const double lap =
            fd::laplacian_point(g, Tp, irr, itt, ipp, c_r, c_t, ir, it, ip);
        const double j2 = jrc * jrc + jtc * jtc + jpc * jpc;
        double p_acc = -adv - eq.gamma * state.p(ir, it, ip) * Dv(ir, it, ip) +
                       gm1 * (eq.kappa * lap + eq.eta * j2);
        p_acc +=
            cstr * fd::strain_point(g, Vr, Vt, Vp, c_r, c_t, c_p, ir, it, ip);
        rhs.p(ir, it, ip) = p_acc;

        // --- eq. (5): ∂A/∂t = −E = v×B − ηj --------------------------
        rhs.ar(ir, it, ip) = (vtc * bpc - vpc * btc) - eq.eta * jrc;
        rhs.at(ir, it, ip) = (vpc * brc - vrc * bpc) - eq.eta * jtc;
        rhs.ap(ir, it, ip) = (vrc * btc - vtc * brc) - eq.eta * jpc;
      }
    }
  };

  // Prime the rings, then roll: each iteration establishes the planes
  // plane ip's stencils reach before combining it.
  for (int q = box.p0 - 2; q < box.p0 + 2; ++q) fill_vt(q);
  for (int q = box.p0 - 1; q < box.p0 + 1; ++q) fill_derived(q);
  for (int ip = box.p0; ip < box.p1; ++ip) {
    fill_vt(ip + 2);
    fill_derived(ip + 1);
    combine(ip);
  }

  // Identical charge to the reference chain, term for term: v/T over
  // box.grown(2); B, ∇·v, ∇×v over box.grown(1); every remaining
  // operator (including the on-the-fly j = ∇×B) over box.
  const auto vol = [](const IndexBox& b) {
    return static_cast<std::uint64_t>(b.volume());
  };
  flops::add(vol(e2) * kFlopsVelTemp +
             vol(e1) * (2 * fd::kFlopsCurl + fd::kFlopsDiv) +
             vol(box) *
                 (fd::kFlopsCurl + fd::kFlopsDiv + fd::kFlopsDivVf +
                  2 * fd::kFlopsGrad + fd::kFlopsCurl + fd::kFlopsAdvect +
                  fd::kFlopsLaplacian + fd::kFlopsStrain +
                  kFlopsPointwiseCombine));
}

}  // namespace yy::mhd

/// \file rk4.hpp
/// Classical fourth-order Runge-Kutta time integration (paper §III)
/// over a *system* of grid patches advanced in lockstep.
///
/// A "patch" is one Fields object on one SphericalGrid with its own
/// EquationParams (Yin and Yang differ only in the rotation-axis
/// components).  The serial driver passes the two whole panels; the
/// distributed solver passes this rank's single local patch.  After
/// every stage the caller-supplied fill callback re-establishes all
/// ghost data (physical walls, halo exchange, overset interpolation) on
/// the stage states — the overset coupling is what forces the panels to
/// advance together.
#pragma once

#include <functional>
#include <vector>

#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/rhs.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

struct PatchDef {
  const SphericalGrid* grid = nullptr;
  EquationParams eq;
  Fields* state = nullptr;
};

/// Ghost-refresh callback: invoked with the stage states (one per
/// patch, same order as the PatchDefs).
using Rk4FillFn = std::function<void(const std::vector<Fields*>&)>;

/// Split ghost-fill protocol for the overlapped stepping mode: post()
/// launches the exchanges (and must leave the states' *owned* data —
/// including radial ghosts — valid, so the interior RHS can run while
/// messages are in flight); finish() completes them and re-establishes
/// the horizontal ghost frame.  post() immediately followed by
/// finish() must be exactly equivalent to one synchronous fill.
struct OverlapHooks {
  Rk4FillFn post;
  Rk4FillFn finish;
  /// Stencil reach of the RHS in θ/φ (the grid's ghost width): the
  /// interior sweep stays this many nodes away from the patch edge.
  int rim_width = 0;
};

class Rk4 {
 public:
  /// Called with the stage states (one per patch, same order as the
  /// PatchDefs) whenever their ghosts must be refreshed.
  using FillFn = Rk4FillFn;

  /// Allocates stage storage for the given patch shapes; `backend`
  /// selects the RHS evaluation strategy (bitwise-equivalent paths,
  /// see rhs.hpp).
  explicit Rk4(const std::vector<const SphericalGrid*>& grids,
               RhsBackend backend = RhsBackend::reference);

  /// Advances every patch by dt.  The incoming states must already
  /// have valid ghosts; on return the new states have valid ghosts
  /// (fill is invoked on them last).
  ///
  /// With `overlap` non-null, each stage fill runs as post → interior
  /// RHS (on the rim-shrunk box, threaded per YY_THREADS) → finish →
  /// rim RHS, hiding exchange latency behind the interior sweep.  The
  /// RHS is a pointwise function of the state's stencil neighbourhood,
  /// so the result is bitwise identical to the synchronous path.  The
  /// final fill of the new states stays synchronous in both modes.
  void step(const std::vector<PatchDef>& patches, double dt,
            const FillFn& fill, const OverlapHooks* overlap = nullptr);

 private:
  std::vector<const SphericalGrid*> grids_;
  RhsBackend backend_ = RhsBackend::reference;
  std::vector<Fields> k_;      // stage derivative
  std::vector<Fields> stage_;  // stage state
  std::vector<Fields> acc_;    // accumulated solution
  std::vector<Workspace> ws_;                    // reference backend
  std::vector<std::vector<Workspace>> ws_pool_;  // per patch, per thread
  std::vector<PencilWorkspace> pw_;                    // fused backend
  std::vector<std::vector<PencilWorkspace>> pw_pool_;  // per patch, per thread
};

}  // namespace yy::mhd

/// \file rk4.hpp
/// Classical fourth-order Runge-Kutta time integration (paper §III)
/// over a *system* of grid patches advanced in lockstep.
///
/// A "patch" is one Fields object on one SphericalGrid with its own
/// EquationParams (Yin and Yang differ only in the rotation-axis
/// components).  The serial driver passes the two whole panels; the
/// distributed solver passes this rank's single local patch.  After
/// every stage the caller-supplied fill callback re-establishes all
/// ghost data (physical walls, halo exchange, overset interpolation) on
/// the stage states — the overset coupling is what forces the panels to
/// advance together.
#pragma once

#include <functional>
#include <vector>

#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/rhs.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

struct PatchDef {
  const SphericalGrid* grid = nullptr;
  EquationParams eq;
  Fields* state = nullptr;
};

class Rk4 {
 public:
  /// Called with the stage states (one per patch, same order as the
  /// PatchDefs) whenever their ghosts must be refreshed.
  using FillFn = std::function<void(const std::vector<Fields*>&)>;

  /// Allocates stage storage for the given patch shapes.
  explicit Rk4(const std::vector<const SphericalGrid*>& grids);

  /// Advances every patch by dt.  The incoming states must already
  /// have valid ghosts; on return the new states have valid ghosts
  /// (fill is invoked on them last).
  void step(const std::vector<PatchDef>& patches, double dt,
            const FillFn& fill);

 private:
  std::vector<const SphericalGrid*> grids_;
  std::vector<Fields> k_;      // stage derivative
  std::vector<Fields> stage_;  // stage state
  std::vector<Fields> acc_;    // accumulated solution
  std::vector<Workspace> ws_;
};

}  // namespace yy::mhd

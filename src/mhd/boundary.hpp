/// \file boundary.hpp
/// Physical boundary conditions on the two spherical walls (paper §III):
/// rigid co-rotating boundaries (v = 0 in the rotating frame) held at
/// fixed temperatures — hot inner sphere, cold outer sphere.
///
/// Magnetic condition: the paper does not state its magnetic boundary
/// treatment; we adopt the conventional vector-potential choice for FD
/// dynamo codes — A clamped (to zero) on the walls, which pins the
/// tangential electric field (perfect-conductor-like) and keeps
/// ∇·B = 0 exactly.  Documented in DESIGN.md as a substitution.
///
/// The condition acts in two parts, both over the full horizontal range
/// of a patch (including ghost columns, so it runs *after* horizontal
/// ghost filling):
///  * enforce_walls(): overwrite the wall-node values of the state;
///  * fill_ghosts(): populate the radial ghost layers by reflection
///    consistent with the wall values (odd for f and A, even for ρ,
///    odd-about-T_bc for T with p reconstructed as ρT).
#pragma once

#include "grid/spherical_grid.hpp"
#include "mhd/params.hpp"
#include "mhd/state.hpp"

namespace yy::mhd {

class RadialBoundary {
 public:
  RadialBoundary(ThermalBc thermal, bool has_inner_wall = true,
                 bool has_outer_wall = true)
      : thermal_(thermal), inner_(has_inner_wall), outer_(has_outer_wall) {}

  const ThermalBc& thermal() const { return thermal_; }

  /// Overwrites wall-node values: f = 0, p = ρ·T_bc, A = 0.
  void enforce_walls(const SphericalGrid& g, Fields& s) const;

  /// Fills the radial ghost layers on both walls.
  void fill_ghosts(const SphericalGrid& g, Fields& s) const;

  /// Ranged variant restricted to columns it ∈ [it0,it1), ip ∈ [ip0,ip1)
  /// (ghost-inclusive indices).  The reflection is purely per-column, so
  /// the overlapped stepping mode prefills the owned columns before the
  /// horizontal exchanges and fills the ghost-column frame after them —
  /// the union is exactly one full-range fill_ghosts.
  void fill_ghosts(const SphericalGrid& g, Fields& s, int it0, int it1,
                   int ip0, int ip1) const;

  /// Both of the above in the required order.
  void apply(const SphericalGrid& g, Fields& s) const {
    enforce_walls(g, s);
    fill_ghosts(g, s);
  }

 private:
  void apply_wall(const SphericalGrid& g, Fields& s, int wall_index,
                  int ghost_direction, double t_bc, int it0, int it1,
                  int ip0, int ip1) const;

  ThermalBc thermal_;
  bool inner_, outer_;
};

}  // namespace yy::mhd

#include "mhd/boundary.hpp"

namespace yy::mhd {

void RadialBoundary::apply_wall(const SphericalGrid& g, Fields& s,
                                int wall_index, int ghost_direction,
                                double t_bc, int it0, int it1, int ip0,
                                int ip1) const {
  const int iw = wall_index;
  const int dir = ghost_direction;  // −1: ghosts below the wall, +1: above
  for (int ip = ip0; ip < ip1; ++ip) {
    for (int it = it0; it < it1; ++it) {
      // Wall node: rigid no-slip, fixed temperature, clamped potential.
      s.fr(iw, it, ip) = 0.0;
      s.ft(iw, it, ip) = 0.0;
      s.fp(iw, it, ip) = 0.0;
      s.p(iw, it, ip) = s.rho(iw, it, ip) * t_bc;
      s.ar(iw, it, ip) = 0.0;
      s.at(iw, it, ip) = 0.0;
      s.ap(iw, it, ip) = 0.0;
      for (int k = 1; k <= g.ghost(); ++k) {
        const int ig = iw + dir * k;   // ghost node
        const int im = iw - dir * k;   // mirror interior node
        s.fr(ig, it, ip) = -s.fr(im, it, ip);
        s.ft(ig, it, ip) = -s.ft(im, it, ip);
        s.fp(ig, it, ip) = -s.fp(im, it, ip);
        s.ar(ig, it, ip) = -s.ar(im, it, ip);
        s.at(ig, it, ip) = -s.at(im, it, ip);
        s.ap(ig, it, ip) = -s.ap(im, it, ip);
        const double rho_m = s.rho(im, it, ip);
        const double t_m = s.p(im, it, ip) / rho_m;
        s.rho(ig, it, ip) = rho_m;                       // zero-gradient ρ
        s.p(ig, it, ip) = rho_m * (2.0 * t_bc - t_m);    // odd T about T_bc
      }
    }
  }
}

void RadialBoundary::enforce_walls(const SphericalGrid& g, Fields& s) const {
  // Wall-node overwrite is part of apply_wall; fill_ghosts performs the
  // full job, so enforce_walls only touches the wall line.
  const int gi = g.ghost();
  const int go = g.ghost() + g.spec().nr - 1;
  auto clamp_wall = [&](int iw, double t_bc) {
    for (int ip = 0; ip < g.Np(); ++ip)
      for (int it = 0; it < g.Nt(); ++it) {
        s.fr(iw, it, ip) = 0.0;
        s.ft(iw, it, ip) = 0.0;
        s.fp(iw, it, ip) = 0.0;
        s.p(iw, it, ip) = s.rho(iw, it, ip) * t_bc;
        s.ar(iw, it, ip) = 0.0;
        s.at(iw, it, ip) = 0.0;
        s.ap(iw, it, ip) = 0.0;
      }
  };
  if (inner_) clamp_wall(gi, thermal_.t_inner);
  if (outer_) clamp_wall(go, thermal_.t_outer);
}

void RadialBoundary::fill_ghosts(const SphericalGrid& g, Fields& s) const {
  fill_ghosts(g, s, 0, g.Nt(), 0, g.Np());
}

void RadialBoundary::fill_ghosts(const SphericalGrid& g, Fields& s, int it0,
                                 int it1, int ip0, int ip1) const {
  const int gi = g.ghost();
  const int go = g.ghost() + g.spec().nr - 1;
  if (inner_) apply_wall(g, s, gi, -1, thermal_.t_inner, it0, it1, ip0, ip1);
  if (outer_) apply_wall(g, s, go, +1, thermal_.t_outer, it0, it1, ip0, ip1);
}

}  // namespace yy::mhd

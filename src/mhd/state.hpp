/// \file state.hpp
/// The simulation state: the paper's basic variables ρ (mass density),
/// f = ρv (mass flux density), p (pressure) and A (magnetic vector
/// potential), each a Field3 on one grid patch.  Magnetic field B,
/// current j and electric field E are *subsidiary* (derived) fields,
/// computed on demand — see derived.hpp.
#pragma once

#include <array>

#include "common/array3d.hpp"
#include "grid/spherical_grid.hpp"

namespace yy::mhd {

class Fields {
 public:
  static constexpr int kNumFields = 8;

  explicit Fields(const SphericalGrid& g);

  Field3 rho, fr, ft, fp, p, ar, at, ap;

  /// Uniform access for exchange/integration loops; order is fixed:
  /// ρ, f_r, f_θ, f_φ, p, A_r, A_θ, A_φ.
  std::array<Field3*, kNumFields> all();
  std::array<const Field3*, kNumFields> all() const;

  /// this = src (shapes must match).
  void copy_from(const Fields& src);

  /// this += a * x  (the RK4 state algebra; charges flops).
  void axpy(double a, const Fields& x);

  /// this = base + a * x.
  void assign_axpy(const Fields& base, double a, const Fields& x);

  void set_zero();
};

}  // namespace yy::mhd

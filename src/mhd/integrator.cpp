#include "mhd/integrator.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace yy::mhd {

Integrator::Integrator(TimeScheme scheme,
                       const std::vector<const SphericalGrid*>& grids,
                       RhsBackend backend)
    : scheme_(scheme), backend_(backend), grids_(grids) {
  YY_REQUIRE(!grids.empty());
  if (scheme == TimeScheme::rk4) {
    rk4_ = std::make_unique<Rk4>(grids, backend);
    return;
  }
  for (const SphericalGrid* g : grids_) {
    k_.emplace_back(*g);
    if (scheme == TimeScheme::rk2) stage_.emplace_back(*g);
    if (backend_ == RhsBackend::reference) ws_.emplace_back(*g);
  }
  if (backend_ != RhsBackend::reference) pw_.resize(grids_.size());
}

void Integrator::eval_rhs(std::size_t i, const EquationParams& eq,
                          const Fields& src) {
  if (backend_ == RhsBackend::simd) {
    compute_rhs_simd(*grids_[i], eq, src, k_[i], pw_[i],
                     grids_[i]->interior());
  } else if (backend_ == RhsBackend::fused) {
    compute_rhs_fused(*grids_[i], eq, src, k_[i], pw_[i],
                      grids_[i]->interior());
  } else {
    compute_rhs(*grids_[i], eq, src, k_[i], ws_[i], grids_[i]->interior());
  }
}

void Integrator::step(const std::vector<PatchDef>& patches, double dt,
                      const FillFn& fill, const OverlapHooks* overlap) {
  switch (scheme_) {
    case TimeScheme::euler:
      step_euler(patches, dt, fill);
      return;
    case TimeScheme::rk2:
      step_rk2(patches, dt, fill);
      return;
    case TimeScheme::rk4:
      rk4_->step(patches, dt, fill, overlap);
      return;
  }
}

void Integrator::step_euler(const std::vector<PatchDef>& patches, double dt,
                            const FillFn& fill) {
  const std::size_t n = patches.size();
  YY_REQUIRE(n == grids_.size());
  std::vector<Fields*> state_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    YY_TRACE_SCOPE(obs::Phase::rhs);
    eval_rhs(i, patches[i].eq, *patches[i].state);
    state_ptrs[i] = patches[i].state;
  }
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i) patches[i].state->axpy(dt, k_[i]);
  }
  fill(state_ptrs);
}

void Integrator::step_rk2(const std::vector<PatchDef>& patches, double dt,
                          const FillFn& fill) {
  const std::size_t n = patches.size();
  YY_REQUIRE(n == grids_.size());
  std::vector<Fields*> stage_ptrs(n), state_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    stage_ptrs[i] = &stage_[i];
    state_ptrs[i] = patches[i].state;
  }
  // Midpoint: k1 = f(y); y* = y + dt/2 k1; y ← y + dt f(y*).
  for (std::size_t i = 0; i < n; ++i) {
    {
      YY_TRACE_SCOPE(obs::Phase::rhs);
      eval_rhs(i, patches[i].eq, *patches[i].state);
    }
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    stage_[i].assign_axpy(*patches[i].state, dt / 2.0, k_[i]);
  }
  fill(stage_ptrs);
  for (std::size_t i = 0; i < n; ++i) {
    YY_TRACE_SCOPE(obs::Phase::rhs);
    eval_rhs(i, patches[i].eq, stage_[i]);
  }
  {
    YY_TRACE_SCOPE(obs::Phase::rk4_stage);
    for (std::size_t i = 0; i < n; ++i) patches[i].state->axpy(dt, k_[i]);
  }
  fill(state_ptrs);
}

}  // namespace yy::mhd

#include "io/spectrum.hpp"

#include <cmath>

#include "common/error.hpp"

namespace yy::io {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<double> ring_power_spectrum(std::span<const double> ring,
                                        int mmax) {
  YY_REQUIRE(!ring.empty());
  YY_REQUIRE(mmax >= 0 && mmax <= static_cast<int>(ring.size()) / 2);
  const int n = static_cast<int>(ring.size());
  std::vector<double> power(static_cast<std::size_t>(mmax) + 1, 0.0);
  for (int m = 0; m <= mmax; ++m) {
    double c = 0.0, s = 0.0;
    for (int k = 0; k < n; ++k) {
      const double ang = 2.0 * kPi * m * k / n;
      c += ring[static_cast<std::size_t>(k)] * std::cos(ang);
      s += ring[static_cast<std::size_t>(k)] * std::sin(ang);
    }
    // Amplitude normalization: a pure cos(mφ) ring gives power 1 at m.
    const double norm = m == 0 ? 1.0 / n : 2.0 / n;
    power[static_cast<std::size_t>(m)] =
        (c * c + s * s) * norm * norm * (m == 0 ? 1.0 : 1.0);
  }
  return power;
}

int dominant_wavenumber(std::span<const double> ring, int mmax) {
  const std::vector<double> p = ring_power_spectrum(ring, mmax);
  int best = 0;
  double best_p = 0.0;
  for (int m = 1; m <= mmax; ++m) {
    if (p[static_cast<std::size_t>(m)] > best_p) {
      best_p = p[static_cast<std::size_t>(m)];
      best = m;
    }
  }
  return best_p > 0.0 ? best : 0;
}

std::vector<double> slice_spectrum(const EquatorialSlice& slice, int mmax) {
  const int mid = slice.rings / 2;
  std::vector<double> ring(static_cast<std::size_t>(slice.spokes));
  for (int k = 0; k < slice.spokes; ++k)
    ring[static_cast<std::size_t>(k)] = slice.at(mid, k);
  return ring_power_spectrum(ring, mmax);
}

int spectral_column_count(const EquatorialSlice& slice, int mmax) {
  const int mid = slice.rings / 2;
  std::vector<double> ring(static_cast<std::size_t>(slice.spokes));
  for (int k = 0; k < slice.spokes; ++k)
    ring[static_cast<std::size_t>(k)] = slice.at(mid, k);
  return 2 * dominant_wavenumber(ring, std::min(mmax, slice.spokes / 2));
}

}  // namespace yy::io

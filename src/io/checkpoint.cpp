#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>

namespace yy::io {

namespace {
constexpr char kMagic[8] = {'Y', 'Y', 'C', 'O', 'R', 'E', '0', '1'};

bool write_fields(std::FILE* f, const mhd::Fields& s) {
  for (const Field3* fld : s.all()) {
    const auto flat = fld->flat();
    if (std::fwrite(flat.data(), sizeof(double), flat.size(), f) != flat.size())
      return false;
  }
  return true;
}

bool read_fields(std::FILE* f, mhd::Fields& s) {
  for (Field3* fld : s.all()) {
    auto flat = fld->flat();
    if (std::fread(flat.data(), sizeof(double), flat.size(), f) != flat.size())
      return false;
  }
  return true;
}

/// The documented contract: field shapes must match the header exactly.
/// A mismatched file would otherwise silently short-read or reinterpret
/// the payload into the wrong (ir, it, ip) layout.
bool shapes_match(const CheckpointHeader& hdr, const mhd::Fields* s) {
  if (s == nullptr) return true;
  const Field3& f = *s->all()[0];
  return f.nr() == hdr.nr && f.nt() == hdr.nt && f.np() == hdr.np;
}

}  // namespace

bool save_checkpoint(const std::string& path, const CheckpointHeader& hdr,
                     const mhd::Fields* panel0, const mhd::Fields* panel1) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(kMagic, 1, sizeof kMagic, f) == sizeof kMagic &&
            std::fwrite(&hdr, sizeof hdr, 1, f) == 1;
  if (ok && panel0 != nullptr) ok = write_fields(f, *panel0);
  if (ok && hdr.panels > 1 && panel1 != nullptr) ok = write_fields(f, *panel1);
  std::fclose(f);
  return ok;
}

bool load_checkpoint(const std::string& path, CheckpointHeader& hdr,
                     mhd::Fields* panel0, mhd::Fields* panel1) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  bool ok = std::fread(magic, 1, sizeof magic, f) == sizeof magic &&
            std::memcmp(magic, kMagic, sizeof magic) == 0 &&
            std::fread(&hdr, sizeof hdr, 1, f) == 1;
  ok = ok && hdr.nr > 0 && hdr.nt > 0 && hdr.np > 0 &&
       (hdr.panels == 1 || hdr.panels == 2) && shapes_match(hdr, panel0) &&
       shapes_match(hdr, panel1) &&
       // A two-panel file cannot be represented without a second target.
       !(hdr.panels == 2 && panel0 != nullptr && panel1 == nullptr);
  if (ok && panel0 != nullptr) ok = read_fields(f, *panel0);
  if (ok && hdr.panels > 1 && panel1 != nullptr) ok = read_fields(f, *panel1);
  std::fclose(f);
  return ok;
}

}  // namespace yy::io

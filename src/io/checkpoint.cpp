#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>

namespace yy::io {

namespace {
constexpr char kMagic[8] = {'Y', 'Y', 'C', 'O', 'R', 'E', '0', '1'};

bool write_fields(std::FILE* f, const mhd::Fields& s) {
  for (const Field3* fld : s.all()) {
    const auto flat = fld->flat();
    if (std::fwrite(flat.data(), sizeof(double), flat.size(), f) != flat.size())
      return false;
  }
  return true;
}

bool read_fields(std::FILE* f, mhd::Fields& s) {
  for (Field3* fld : s.all()) {
    auto flat = fld->flat();
    if (std::fread(flat.data(), sizeof(double), flat.size(), f) != flat.size())
      return false;
  }
  return true;
}

}  // namespace

bool save_checkpoint(const std::string& path, const CheckpointHeader& hdr,
                     const mhd::Fields* panel0, const mhd::Fields* panel1) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(kMagic, 1, sizeof kMagic, f) == sizeof kMagic &&
            std::fwrite(&hdr, sizeof hdr, 1, f) == 1;
  if (ok && panel0 != nullptr) ok = write_fields(f, *panel0);
  if (ok && hdr.panels > 1 && panel1 != nullptr) ok = write_fields(f, *panel1);
  std::fclose(f);
  return ok;
}

bool load_checkpoint(const std::string& path, CheckpointHeader& hdr,
                     mhd::Fields* panel0, mhd::Fields* panel1) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  bool ok = std::fread(magic, 1, sizeof magic, f) == sizeof magic &&
            std::memcmp(magic, kMagic, sizeof magic) == 0 &&
            std::fread(&hdr, sizeof hdr, 1, f) == 1;
  if (ok && panel0 != nullptr) ok = read_fields(f, *panel0);
  if (ok && hdr.panels > 1 && panel1 != nullptr) ok = read_fields(f, *panel1);
  std::fclose(f);
  return ok;
}

}  // namespace yy::io

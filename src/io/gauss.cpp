#include "io/gauss.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace yy::io {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Unnormalized associated Legendre P_l^m(x), no Condon-Shortley phase.
double plm_raw(int l, int m, double x) {
  // P_m^m = (2m−1)!! (1−x²)^{m/2}
  double pmm = 1.0;
  if (m > 0) {
    const double s = std::sqrt(std::max(0.0, 1.0 - x * x));
    double fact = 1.0;
    for (int i = 1; i <= m; ++i) {
      pmm *= fact * s;
      fact += 2.0;
    }
  }
  if (l == m) return pmm;
  double pmmp1 = x * (2.0 * m + 1.0) * pmm;  // P_{m+1}^m
  if (l == m + 1) return pmmp1;
  double pll = 0.0;
  for (int ll = m + 2; ll <= l; ++ll) {
    pll = (x * (2.0 * ll - 1.0) * pmmp1 - (ll + m - 1.0) * pmm) / (ll - m);
    pmm = pmmp1;
    pmmp1 = pll;
  }
  return pll;
}

double factorial_ratio(int l, int m) {
  // (l−m)! / (l+m)!
  double r = 1.0;
  for (int k = l - m + 1; k <= l + m; ++k) r /= k;
  return r;
}

/// Gauss-Legendre nodes/weights on [-1, 1] by Newton iteration on the
/// Legendre polynomial (standard Golub-free construction; n <= 128).
void gauss_legendre(int n, std::vector<double>& x, std::vector<double>& w) {
  x.resize(static_cast<std::size_t>(n));
  w.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Initial guess (Chebyshev-like), then Newton on P_n.
    double xi = std::cos(kPi * (i + 0.75) / (n + 0.5));
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0, p1 = xi;
      for (int l = 2; l <= n; ++l) {
        const double p2 = ((2.0 * l - 1.0) * xi * p1 - (l - 1.0) * p0) / l;
        p0 = p1;
        p1 = p2;
      }
      const double dp = n * (xi * p1 - p0) / (xi * xi - 1.0);
      const double dx = p1 / dp;
      xi -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    double p0 = 1.0, p1 = xi;
    for (int l = 2; l <= n; ++l) {
      const double p2 = ((2.0 * l - 1.0) * xi * p1 - (l - 1.0) * p0) / l;
      p0 = p1;
      p1 = p2;
    }
    const double dp = n * (xi * p1 - p0) / (xi * xi - 1.0);
    x[static_cast<std::size_t>(i)] = xi;
    w[static_cast<std::size_t>(i)] = 2.0 / ((1.0 - xi * xi) * dp * dp);
  }
}

}  // namespace

double schmidt_plm(int l, int m, double x) {
  YY_REQUIRE(l >= 0 && m >= 0 && m <= l && l <= 10);
  const double norm =
      std::sqrt((m == 0 ? 1.0 : 2.0) * factorial_ratio(l, m));
  return norm * plm_raw(l, m, x);
}

double GaussCoefficients::dipole_tilt() const {
  const Vec3 d = dipole();
  const double n = d.norm();
  if (n == 0.0) return 0.0;
  return std::acos(std::clamp(d.z / n, -1.0, 1.0));
}

std::vector<double> GaussCoefficients::lowes_spectrum() const {
  std::vector<double> r(static_cast<std::size_t>(lmax) + 1, 0.0);
  for (int l = 1; l <= lmax; ++l) {
    double sum = 0.0;
    for (int m = 0; m <= l; ++m)
      sum += g_lm(l, m) * g_lm(l, m) + h_lm(l, m) * h_lm(l, m);
    r[static_cast<std::size_t>(l)] = (l + 1) * sum;
  }
  return r;
}

GaussCoefficients analyze_gauss_of(
    const std::function<double(double, double)>& br, int lmax, int nth,
    int nph) {
  YY_REQUIRE(lmax >= 1 && lmax <= 10);
  YY_REQUIRE(nth >= 2 * lmax + 2 && nph >= 2 * lmax + 2);
  GaussCoefficients gc;
  gc.lmax = lmax;
  const std::size_t ncoef = GaussCoefficients::index(lmax, lmax) + 1;
  gc.g.assign(ncoef, 0.0);
  gc.h.assign(ncoef, 0.0);

  // Gauss-Legendre quadrature in x = cosθ (exact for polynomial
  // latitudinal structure up to degree 2·nth−1) × uniform φ (exact for
  // trigonometric structure below the Nyquist wavenumber).  With
  // Schmidt normalization ∫ (P_lm trig)² dΩ = 4π/(2l+1), so
  //   g_lm = (2l+1) / (4π (l+1)) ∫ B_r P_lm cos(mφ) dΩ.
  std::vector<double> gx, gw;
  gauss_legendre(nth, gx, gw);
  const double dph = 2.0 * kPi / nph;
  for (int i = 0; i < nth; ++i) {
    const double x = gx[static_cast<std::size_t>(i)];
    const double th = std::acos(x);
    const double w = gw[static_cast<std::size_t>(i)] * dph;
    for (int k = 0; k < nph; ++k) {
      const double ph = -kPi + (k + 0.5) * dph;
      const double b = br(th, ph);
      for (int l = 1; l <= lmax; ++l) {
        for (int m = 0; m <= l; ++m) {
          const double basis = schmidt_plm(l, m, x);
          const double c = (2.0 * l + 1.0) / (4.0 * kPi * (l + 1.0)) * w * b *
                           basis;
          gc.g[GaussCoefficients::index(l, m)] += c * std::cos(m * ph);
          if (m > 0) gc.h[GaussCoefficients::index(l, m)] += c * std::sin(m * ph);
        }
      }
    }
  }
  return gc;
}

GaussCoefficients analyze_gauss_coefficients(const SphereSampler& sampler,
                                             const PanelVectorView& yin_b,
                                             const PanelVectorView& yang_b,
                                             double r_s, int lmax, int nth,
                                             int nph) {
  return analyze_gauss_of(
      [&](double th, double ph) {
        // Radial component = global-Cartesian field dotted with r̂.
        const Vec3 b = sampler.sample_vector(yin_b, yang_b, r_s, th, ph);
        const Vec3 rhat{std::sin(th) * std::cos(ph), std::sin(th) * std::sin(ph),
                        std::cos(th)};
        return b.dot(rhat);
      },
      lmax, nth, nph);
}

}  // namespace yy::io

/// \file sphere_sampler.hpp
/// Samples fields of a two-panel Yin-Yang solution at arbitrary global
/// positions — the data-extraction path behind the paper's Fig. 2
/// visualizations.  Global coordinates are the Yin frame (the Earth
/// frame, rotation axis ẑ); a sample point is served by whichever
/// panel's core rectangle covers it, and vector samples are returned as
/// global Cartesian components (the paper stores Bx,By,Bz / vx,vy,vz
/// for visualization for the same reason).
#pragma once

#include "common/vec3.hpp"
#include "grid/spherical_grid.hpp"
#include "mhd/state.hpp"
#include "yinyang/geometry.hpp"

namespace yy::io {

/// Three spherical-component fields on one panel (non-owning view).
struct PanelVectorView {
  const Field3* r = nullptr;
  const Field3* t = nullptr;
  const Field3* p = nullptr;
};

class SphereSampler {
 public:
  /// Both panels share one grid shape; `grid` must be the whole-panel
  /// grid (serial solver layout).
  SphereSampler(const SphericalGrid& grid,
                const yinyang::ComponentGeometry& geom)
      : grid_(&grid), geom_(&geom) {}

  /// Which panel serves a global direction (Yin's core wins ties).
  yinyang::Panel panel_for(double theta_g, double phi_g) const;

  /// Trilinear sample of a scalar field pair at a global position.
  double sample_scalar(const Field3& yin, const Field3& yang, double radius,
                       double theta_g, double phi_g) const;

  /// Trilinear sample of a vector field pair, returned in global
  /// Cartesian components.
  Vec3 sample_vector(const PanelVectorView& yin, const PanelVectorView& yang,
                     double radius, double theta_g, double phi_g) const;

 private:
  struct Locator {
    int ir, jt, jp;
    double wr, wt, wp;
  };
  Locator locate(double radius, const yinyang::Angles& local) const;
  double trilinear(const Field3& f, const Locator& l) const;

  const SphericalGrid* grid_;
  const yinyang::ComponentGeometry* geom_;
};

}  // namespace yy::io

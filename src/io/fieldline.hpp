/// \file fieldline.hpp
/// Field-line / streamline tracing through a two-panel Yin-Yang vector
/// field — the machinery behind the paper group's signature
/// visualizations (flow lines and magnetic field lines of the dynamo;
/// the paper's §I highlights "advanced visualization technology").
///
/// Integration runs in global Cartesian coordinates with classical RK4;
/// every evaluation samples whichever panel covers the point, so lines
/// cross the Yin-Yang internal border seamlessly.
#pragma once

#include <string>
#include <vector>

#include "common/vec3.hpp"
#include "io/sphere_sampler.hpp"

namespace yy::io {

struct Streamline {
  std::vector<Vec3> points;   ///< traced positions, global Cartesian
  bool exited_shell = false;  ///< hit r < r_inner or r > r_outer
  double length = 0.0;        ///< arc length actually traced
};

struct TraceOptions {
  double step = 0.01;        ///< arc-length step
  int max_steps = 2000;
  double r_inner = 0.0;      ///< stop below this radius
  double r_outer = 1e30;     ///< stop above this radius
  bool normalize = true;     ///< follow direction only (unit speed)
};

/// Traces from `start` along the sampled field.  A zero field at the
/// start produces a single-point line.
Streamline trace_streamline(const SphereSampler& sampler,
                            const PanelVectorView& yin,
                            const PanelVectorView& yang, const Vec3& start,
                            const TraceOptions& opt);

/// Convenience: seeds a ring of `count` streamlines at radius r on the
/// equator and writes them as a single CSV (line_id, x, y, z).
bool trace_ring_to_csv(const SphereSampler& sampler,
                       const PanelVectorView& yin,
                       const PanelVectorView& yang, double r, int count,
                       const TraceOptions& opt, const std::string& path);

}  // namespace yy::io

/// \file slice.hpp
/// Equatorial-plane extraction, imaging and convection-column analysis
/// — the quantitative counterpart of the paper's Fig. 2 ("thermal
/// convection structure ... columnar convection cells viewed in the
/// equatorial plane; two colors indicate cyclonic and anti-cyclonic
/// convection columns").
#pragma once

#include <string>
#include <vector>

#include "io/sphere_sampler.hpp"

namespace yy::io {

/// ω_z (global z-vorticity) sampled on the equatorial plane:
/// `rings` radii × `spokes` longitudes.
struct EquatorialSlice {
  int rings = 0, spokes = 0;
  double r_inner = 0.0, r_outer = 0.0;
  std::vector<double> values;  ///< ring-major: values[ring*spokes + spoke]

  double at(int ring, int spoke) const {
    return values[static_cast<std::size_t>(ring) * spokes + spoke];
  }
  double max_abs() const;
};

/// Samples the global z-component of a vector field pair on the
/// equatorial plane (θ_g = π/2).
EquatorialSlice sample_equatorial_z(const SphereSampler& sampler,
                                    const PanelVectorView& yin,
                                    const PanelVectorView& yang,
                                    double r_inner, double r_outer, int rings,
                                    int spokes);

/// Renders the slice as a disk image with the two-colour diverging map
/// (red = cyclonic, blue = anti-cyclonic); returns false on I/O error.
bool write_equatorial_ppm(const EquatorialSlice& slice, const std::string& path,
                          int image_size = 400);

/// Writes (radius, phi, value) rows for external plotting.
bool write_equatorial_csv(const EquatorialSlice& slice,
                          const std::string& path);

/// Returns a copy with each ring's azimuthal mean removed — the
/// non-axisymmetric part, i.e. the columns themselves (a developed
/// state also carries a mean zonal-flow vorticity that would otherwise
/// dominate the colour scale).
EquatorialSlice remove_zonal_mean(const EquatorialSlice& slice);

/// Counts convection columns: sign changes of ω_z around the
/// mid-depth ring, ignoring |ω_z| below `threshold_frac` of the ring
/// maximum (a pair of sign changes is one cyclonic+anticyclonic pair).
int count_columns(const EquatorialSlice& slice, double threshold_frac = 0.1);

/// A scalar field on the meridional plane φ_g ∈ {φ0, φ0+π}: the view
/// of the paper's Fig. 2(b) (seen from 45°N the columns appear as
/// z-aligned structures).  `halves` indexes the two half-planes.
struct MeridionalSlice {
  int nr = 0, nth = 0;
  double r_inner = 0.0, r_outer = 0.0;
  double phi0 = 0.0;
  std::vector<double> values;  ///< [half][ir][ith], half ∈ {0,1}

  double at(int half, int ir, int ith) const {
    return values[(static_cast<std::size_t>(half) * nr + ir) * nth + ith];
  }
  double max_abs() const;
};

/// Samples a scalar field pair on the meridional plane through φ0.
MeridionalSlice sample_meridional_scalar(const SphereSampler& sampler,
                                         const Field3& yin, const Field3& yang,
                                         double r_inner, double r_outer,
                                         double phi0, int nr, int nth);

/// Renders the annulus cross-section (both half-planes) as a PPM with
/// the sequential colormap; returns false on I/O error.
bool write_meridional_ppm(const MeridionalSlice& slice,
                          const std::string& path, int image_size = 400);

}  // namespace yy::io

/// \file spectrum.hpp
/// Azimuthal (longitudinal) Fourier analysis of ring samples — the
/// quantitative "how many convection columns" counterpart to the
/// eyeball count of paper Fig. 2.  The number of columnar convection
/// cells equals twice the dominant azimuthal wavenumber m of the
/// equatorial vorticity.
#pragma once

#include <span>
#include <vector>

#include "io/slice.hpp"

namespace yy::io {

/// Power spectrum of a periodic ring of samples: result[m] is the
/// squared amplitude of azimuthal wavenumber m, m = 0 … mmax.
/// Plain O(N·mmax) real DFT — rings are short, no FFT machinery needed.
std::vector<double> ring_power_spectrum(std::span<const double> ring,
                                        int mmax);

/// Dominant nonzero wavenumber (argmax of power over m ≥ 1; 0 if the
/// ring is identically zero).
int dominant_wavenumber(std::span<const double> ring, int mmax);

/// Power spectrum of the mid-depth ring of an equatorial slice.
std::vector<double> slice_spectrum(const EquatorialSlice& slice, int mmax);

/// Column count from the spectrum: 2 × dominant m of the mid ring —
/// robust to the small-amplitude wiggles that trip sign counting.
int spectral_column_count(const EquatorialSlice& slice, int mmax = 16);

}  // namespace yy::io

#include "io/slice.hpp"

#include <algorithm>
#include <cmath>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/ppm.hpp"

namespace yy::io {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double EquatorialSlice::max_abs() const {
  double m = 0.0;
  for (double v : values) m = std::max(m, std::abs(v));
  return m;
}

EquatorialSlice sample_equatorial_z(const SphereSampler& sampler,
                                    const PanelVectorView& yin,
                                    const PanelVectorView& yang,
                                    double r_inner, double r_outer, int rings,
                                    int spokes) {
  YY_REQUIRE(rings >= 2 && spokes >= 4);
  EquatorialSlice s;
  s.rings = rings;
  s.spokes = spokes;
  s.r_inner = r_inner;
  s.r_outer = r_outer;
  s.values.resize(static_cast<std::size_t>(rings) * spokes);
  for (int i = 0; i < rings; ++i) {
    const double r = r_inner + (r_outer - r_inner) * i / (rings - 1);
    for (int k = 0; k < spokes; ++k) {
      double phi = -kPi + 2.0 * kPi * k / spokes;
      const Vec3 v = sampler.sample_vector(yin, yang, r, kPi / 2.0, phi);
      s.values[static_cast<std::size_t>(i) * spokes + k] = v.z;
    }
  }
  return s;
}

bool write_equatorial_ppm(const EquatorialSlice& slice, const std::string& path,
                          int image_size) {
  PpmImage img(image_size, image_size, {24, 24, 24});
  const double scale = slice.max_abs();
  const double half = image_size / 2.0;
  for (int y = 0; y < image_size; ++y) {
    for (int x = 0; x < image_size; ++x) {
      const double dx = (x - half) / half;
      const double dy = (half - y) / half;  // north-up view
      const double r = std::sqrt(dx * dx + dy * dy) * slice.r_outer;
      if (r < slice.r_inner || r > slice.r_outer) continue;
      const double phi = std::atan2(dy, dx);
      const double fr = (r - slice.r_inner) / (slice.r_outer - slice.r_inner) *
                        (slice.rings - 1);
      const double fp = (phi + kPi) / (2.0 * kPi) * slice.spokes;
      const int i = std::min(static_cast<int>(fr), slice.rings - 1);
      const int k = static_cast<int>(fp) % slice.spokes;
      const double v = scale > 0.0 ? slice.at(i, k) / scale : 0.0;
      img.set(x, y, diverging_color(v));
    }
  }
  return img.write(path);
}

bool write_equatorial_csv(const EquatorialSlice& slice,
                          const std::string& path) {
  CsvWriter csv(path, {"radius", "phi", "omega_z"});
  if (!csv.ok()) return false;
  for (int i = 0; i < slice.rings; ++i) {
    const double r = slice.r_inner +
                     (slice.r_outer - slice.r_inner) * i / (slice.rings - 1);
    for (int k = 0; k < slice.spokes; ++k) {
      const double phi = -kPi + 2.0 * kPi * k / slice.spokes;
      csv.row({r, phi, slice.at(i, k)});
    }
  }
  return true;
}

double MeridionalSlice::max_abs() const {
  double m = 0.0;
  for (double v : values) m = std::max(m, std::abs(v));
  return m;
}

MeridionalSlice sample_meridional_scalar(const SphereSampler& sampler,
                                         const Field3& yin, const Field3& yang,
                                         double r_inner, double r_outer,
                                         double phi0, int nr, int nth) {
  YY_REQUIRE(nr >= 2 && nth >= 2);
  MeridionalSlice s;
  s.nr = nr;
  s.nth = nth;
  s.r_inner = r_inner;
  s.r_outer = r_outer;
  s.phi0 = phi0;
  s.values.resize(2ull * nr * nth);
  for (int half = 0; half < 2; ++half) {
    double phi = phi0 + half * kPi;
    if (phi > kPi) phi -= 2.0 * kPi;
    for (int i = 0; i < nr; ++i) {
      const double r = r_inner + (r_outer - r_inner) * i / (nr - 1);
      for (int j = 0; j < nth; ++j) {
        // Keep samples marginally off the axis (the global poles lie in
        // Yang territory, still fine — but θ=0 exactly is degenerate).
        const double th = 1e-4 + (kPi - 2e-4) * j / (nth - 1);
        s.values[(static_cast<std::size_t>(half) * nr + i) * nth + j] =
            sampler.sample_scalar(yin, yang, r, th, phi);
      }
    }
  }
  return s;
}

bool write_meridional_ppm(const MeridionalSlice& slice,
                          const std::string& path, int image_size) {
  PpmImage img(image_size, image_size, {24, 24, 24});
  const double lo_hi[2] = {slice.max_abs(), 0.0};
  (void)lo_hi;
  double mn = 1e300, mx = -1e300;
  for (double v : slice.values) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  const double span = mx > mn ? mx - mn : 1.0;
  const double half_px = image_size / 2.0;
  for (int y = 0; y < image_size; ++y) {
    for (int x = 0; x < image_size; ++x) {
      const double dx = (x - half_px) / half_px;   // ⟂ axis direction
      const double dz = (half_px - y) / half_px;   // along rotation axis
      const double r = std::sqrt(dx * dx + dz * dz) * slice.r_outer;
      if (r < slice.r_inner || r > slice.r_outer) continue;
      const int half = dx >= 0 ? 0 : 1;
      const double th = std::atan2(std::abs(dx), dz);  // colatitude
      const double fr = (r - slice.r_inner) / (slice.r_outer - slice.r_inner) *
                        (slice.nr - 1);
      const double ft = th / kPi * (slice.nth - 1);
      const int i = std::clamp(static_cast<int>(fr), 0, slice.nr - 1);
      const int j = std::clamp(static_cast<int>(ft), 0, slice.nth - 1);
      img.set(x, y, sequential_color((slice.at(half, i, j) - mn) / span));
    }
  }
  return img.write(path);
}

EquatorialSlice remove_zonal_mean(const EquatorialSlice& slice) {
  EquatorialSlice out = slice;
  for (int i = 0; i < out.rings; ++i) {
    double mean = 0.0;
    for (int k = 0; k < out.spokes; ++k) mean += out.at(i, k);
    mean /= out.spokes;
    for (int k = 0; k < out.spokes; ++k)
      out.values[static_cast<std::size_t>(i) * out.spokes + k] -= mean;
  }
  return out;
}

int count_columns(const EquatorialSlice& slice, double threshold_frac) {
  const int mid = slice.rings / 2;
  // The columns are the NON-axisymmetric vorticity: a developed state
  // also carries a mean zonal-flow vorticity (the m = 0 component),
  // which must not mask the alternation — remove the ring mean first.
  double mean = 0.0;
  for (int k = 0; k < slice.spokes; ++k) mean += slice.at(mid, k);
  mean /= slice.spokes;
  double ring_max = 0.0;
  for (int k = 0; k < slice.spokes; ++k)
    ring_max = std::max(ring_max, std::abs(slice.at(mid, k) - mean));
  if (ring_max == 0.0) return 0;
  const double thresh = threshold_frac * ring_max;

  // Walk the ring keeping the last significant sign; each flip is a
  // column boundary.  The ring is periodic, so start from the first
  // significant sample and close the loop.
  int flips = 0;
  int last_sign = 0;
  int first_sign = 0;
  for (int k = 0; k < slice.spokes; ++k) {
    const double v = slice.at(mid, k) - mean;
    if (std::abs(v) < thresh) continue;
    const int sign = v > 0.0 ? 1 : -1;
    if (last_sign == 0) {
      first_sign = sign;
    } else if (sign != last_sign) {
      ++flips;
    }
    last_sign = sign;
  }
  if (last_sign != 0 && first_sign != last_sign) ++flips;  // wraparound
  return flips;
}

}  // namespace yy::io

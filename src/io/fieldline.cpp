#include "io/fieldline.hpp"

#include <algorithm>
#include <cmath>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace yy::io {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Samples the global-Cartesian field at a global Cartesian point.
Vec3 sample_at(const SphereSampler& sampler, const PanelVectorView& yin,
               const PanelVectorView& yang, const Vec3& pos) {
  const double r = pos.norm();
  if (r == 0.0) return {};
  const double theta = std::acos(std::clamp(pos.z / r, -1.0, 1.0));
  const double phi = std::atan2(pos.y, pos.x);
  return sampler.sample_vector(yin, yang, r, theta, phi);
}
}  // namespace

Streamline trace_streamline(const SphereSampler& sampler,
                            const PanelVectorView& yin,
                            const PanelVectorView& yang, const Vec3& start,
                            const TraceOptions& opt) {
  YY_REQUIRE(opt.step > 0.0 && opt.max_steps >= 1);
  Streamline line;
  line.points.push_back(start);
  Vec3 x = start;
  for (int i = 0; i < opt.max_steps; ++i) {
    auto rhs = [&](const Vec3& p) {
      Vec3 v = sample_at(sampler, yin, yang, p);
      if (opt.normalize) {
        const double n = v.norm();
        if (n > 1e-14) v = v * (1.0 / n);
      }
      return v;
    };
    const Vec3 k1 = rhs(x);
    if (k1.norm() < 1e-14) break;  // stagnation point
    const double h = opt.step;
    const Vec3 k2 = rhs(x + k1 * (h / 2));
    const Vec3 k3 = rhs(x + k2 * (h / 2));
    const Vec3 k4 = rhs(x + k3 * h);
    const Vec3 dx = (k1 + 2.0 * k2 + 2.0 * k3 + k4) * (h / 6.0);
    x = x + dx;
    const double r = x.norm();
    if (r < opt.r_inner || r > opt.r_outer) {
      line.exited_shell = true;
      break;
    }
    line.points.push_back(x);
    line.length += dx.norm();
  }
  return line;
}

bool trace_ring_to_csv(const SphereSampler& sampler,
                       const PanelVectorView& yin,
                       const PanelVectorView& yang, double r, int count,
                       const TraceOptions& opt, const std::string& path) {
  CsvWriter csv(path, {"line", "x", "y", "z"});
  if (!csv.ok()) return false;
  for (int i = 0; i < count; ++i) {
    const double phi = -kPi + 2.0 * kPi * i / count;
    const Vec3 seed{r * std::cos(phi), r * std::sin(phi), 0.0};
    const Streamline line = trace_streamline(sampler, yin, yang, seed, opt);
    for (const Vec3& p : line.points)
      csv.row({static_cast<double>(i), p.x, p.y, p.z});
  }
  return true;
}

}  // namespace yy::io

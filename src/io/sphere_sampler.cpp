#include "io/sphere_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "yinyang/transform.hpp"

namespace yy::io {

using yinyang::Angles;
using yinyang::ComponentGeometry;
using yinyang::Panel;

Panel SphereSampler::panel_for(double theta_g, double phi_g) const {
  const Angles a{theta_g, phi_g};
  return ComponentGeometry::in_core(a) ? Panel::yin : Panel::yang;
}

SphereSampler::Locator SphereSampler::locate(double radius,
                                             const Angles& local) const {
  const SphericalGrid& g = *grid_;
  const int gh = g.ghost();
  auto clamped = [](double f, int n) {
    int j = static_cast<int>(std::floor(f));
    j = std::min(std::max(j, 0), n - 2);
    return std::pair<int, double>{j, f - j};
  };
  const double fr = (radius - g.spec().r0) / g.dr();
  const double ft = (local.theta - g.spec().t0) / g.dt();
  const double fp = (local.phi - g.spec().p0) / g.dp();
  auto [ir, wr] = clamped(fr, g.spec().nr);
  auto [jt, wt] = clamped(ft, g.spec().nt);
  auto [jp, wp] = clamped(fp, g.spec().np);
  return {ir + gh, jt + gh, jp + gh, wr, wt, wp};
}

double SphereSampler::trilinear(const Field3& f, const Locator& l) const {
  auto bil = [&](int ir) {
    return (1.0 - l.wt) * ((1.0 - l.wp) * f(ir, l.jt, l.jp) +
                           l.wp * f(ir, l.jt, l.jp + 1)) +
           l.wt * ((1.0 - l.wp) * f(ir, l.jt + 1, l.jp) +
                   l.wp * f(ir, l.jt + 1, l.jp + 1));
  };
  return (1.0 - l.wr) * bil(l.ir) + l.wr * bil(l.ir + 1);
}

double SphereSampler::sample_scalar(const Field3& yin, const Field3& yang,
                                    double radius, double theta_g,
                                    double phi_g) const {
  const Angles a{theta_g, phi_g};
  if (panel_for(theta_g, phi_g) == Panel::yin) {
    return trilinear(yin, locate(radius, a));
  }
  return trilinear(yang, locate(radius, yinyang::partner_angles(a)));
}

Vec3 SphereSampler::sample_vector(const PanelVectorView& yin,
                                  const PanelVectorView& yang, double radius,
                                  double theta_g, double phi_g) const {
  const Angles a{theta_g, phi_g};
  if (panel_for(theta_g, phi_g) == Panel::yin) {
    const Locator l = locate(radius, a);
    const Vec3 sph{trilinear(*yin.r, l), trilinear(*yin.t, l),
                   trilinear(*yin.p, l)};
    return yinyang::spherical_basis(a) * sph;  // Yin frame IS the global frame
  }
  const Angles b = yinyang::partner_angles(a);
  const Locator l = locate(radius, b);
  const Vec3 sph{trilinear(*yang.r, l), trilinear(*yang.t, l),
                 trilinear(*yang.p, l)};
  // Yang-local Cartesian → global: the involutory axis swap of eq. (1).
  return yinyang::axis_swap(yinyang::spherical_basis(b) * sph);
}

}  // namespace yy::io

#include "io/vtk.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "yinyang/transform.hpp"

namespace yy::io {

bool write_vtk_panel(const std::string& path, const SphericalGrid& grid,
                     yinyang::Panel panel,
                     const std::vector<VtkScalar>& scalars) {
  for (const VtkScalar& s : scalars) {
    YY_REQUIRE(s.field.covers(grid.interior()));
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  const IndexBox in = grid.interior();
  const int nr = in.r1 - in.r0, nt = in.t1 - in.t0, np = in.p1 - in.p0;
  std::fprintf(f, "# vtk DataFile Version 3.0\n");
  std::fprintf(f, "yycore %s panel\n", yinyang::name(panel));
  std::fprintf(f, "ASCII\nDATASET STRUCTURED_GRID\n");
  std::fprintf(f, "DIMENSIONS %d %d %d\n", nr, nt, np);
  std::fprintf(f, "POINTS %d float\n", nr * nt * np);
  for (int ip = in.p0; ip < in.p1; ++ip) {
    for (int it = in.t0; it < in.t1; ++it) {
      for (int ir = in.r0; ir < in.r1; ++ir) {
        const yinyang::Angles a{grid.theta(it), grid.phi(ip)};
        Vec3 pos = yinyang::position(a) * grid.r(ir);
        if (panel == yinyang::Panel::yang) pos = yinyang::axis_swap(pos);
        std::fprintf(f, "%g %g %g\n", pos.x, pos.y, pos.z);
      }
    }
  }
  std::fprintf(f, "POINT_DATA %d\n", nr * nt * np);
  for (const VtkScalar& s : scalars) {
    std::fprintf(f, "SCALARS %s float 1\nLOOKUP_TABLE default\n",
                 s.name.c_str());
    for (int ip = in.p0; ip < in.p1; ++ip)
      for (int it = in.t0; it < in.t1; ++it)
        for (int ir = in.r0; ir < in.r1; ++ir)
          std::fprintf(f, "%g\n", s.field(ir, it, ip));
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace yy::io

/// \file gauss.hpp
/// Gauss-coefficient analysis of the dynamo field — the classical
/// geomagnetism decomposition behind the paper's framing of the
/// geodynamo ("the magnetic compass points to the north since the
/// Earth is surrounded by a dipolar magnetic field", §I) and behind the
/// dipole-reversal studies the group built on this code [5, 11, 13].
///
/// The radial field B_r on a sphere r = r_s expands in Schmidt
/// semi-normalized real spherical harmonics:
///   B_r(θ, φ) = Σ_{l≥1} Σ_{m=0..l} (l+1) (g_lm cos mφ + h_lm sin mφ)
///               · P_lm(cosθ) · (a/r_s)^{l+2}
/// With the reference radius a = r_s the (a/r_s) factor drops and the
/// coefficients follow from surface quadrature against the harmonics.
/// g_10 is the axial dipole; its sign flip is a polarity reversal.
#pragma once

#include <functional>
#include <vector>

#include "common/vec3.hpp"
#include "io/sphere_sampler.hpp"

namespace yy::io {

/// Schmidt semi-normalized associated Legendre function P_lm(x)
/// (geomagnetism convention, no Condon-Shortley phase), l ≤ 10.
double schmidt_plm(int l, int m, double x);

struct GaussCoefficients {
  int lmax = 0;
  std::vector<double> g;  ///< g_lm, packed by index(l, m)
  std::vector<double> h;  ///< h_lm (h_l0 is identically 0)

  static std::size_t index(int l, int m) {
    // l = 1..lmax, m = 0..l packed triangularly.
    return static_cast<std::size_t>(l * (l + 1) / 2 - 1 + m);
  }
  double g_lm(int l, int m) const { return g[index(l, m)]; }
  double h_lm(int l, int m) const { return h[index(l, m)]; }

  /// Dipole vector (g11, h11, g10) — its direction is the magnetic
  /// dipole axis in global Cartesian coordinates.
  Vec3 dipole() const { return {g_lm(1, 1), h_lm(1, 1), g_lm(1, 0)}; }

  /// Tilt of the dipole axis from the rotation (z) axis, in radians.
  double dipole_tilt() const;

  /// Power per degree l: R_l = (l+1) Σ_m (g_lm² + h_lm²)
  /// (Mauersberger–Lowes spectrum at the reference radius).
  std::vector<double> lowes_spectrum() const;
};

/// Expands B_r sampled from a two-panel solution on the sphere of
/// radius `r_s` (must lie inside the shell) up to degree `lmax`.
/// Quadrature resolution: `nth` colatitude × `nph` longitude samples.
GaussCoefficients analyze_gauss_coefficients(const SphereSampler& sampler,
                                             const PanelVectorView& yin_b,
                                             const PanelVectorView& yang_b,
                                             double r_s, int lmax,
                                             int nth = 48, int nph = 96);

/// Expands a caller-supplied B_r(θ, φ) function (testing hook).
GaussCoefficients analyze_gauss_of(
    const std::function<double(double, double)>& br, int lmax, int nth = 48,
    int nph = 96);

}  // namespace yy::io

/// \file checkpoint.hpp
/// Binary checkpointing of a simulation state (v1).  The paper's
/// production runs saved 3-D data 127 times over 6 wall-clock hours
/// (§V, ~500 GB); this is the scaled-down equivalent: all 8 basic
/// variables of one or two panels with shape metadata, restartable
/// bit-exactly.
///
/// This legacy format has no corruption detection and no atomic
/// commit.  New code should prefer the hardened `YYCORE02` format in
/// resilience/checkpoint2.hpp (per-section CRC32, write-to-temp +
/// rename, staged validated loads) and CheckpointManager for
/// distributed sets with retention and collective restore.
#pragma once

#include <string>

#include "grid/spherical_grid.hpp"
#include "mhd/state.hpp"

namespace yy::io {

struct CheckpointHeader {
  int nr = 0, nt = 0, np = 0;  ///< full array dims of each field
  int panels = 0;              ///< 1 (lat-lon) or 2 (Yin-Yang)
  double time = 0.0;
  long long step = 0;
};

/// Writes header + panels; returns false on I/O failure.
bool save_checkpoint(const std::string& path, const CheckpointHeader& hdr,
                     const mhd::Fields* panel0, const mhd::Fields* panel1);

/// Reads a checkpoint; field shapes must match the header exactly.
/// Pass panel1 = nullptr for single-panel files.
bool load_checkpoint(const std::string& path, CheckpointHeader& hdr,
                     mhd::Fields* panel0, mhd::Fields* panel1);

}  // namespace yy::io

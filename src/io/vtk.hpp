/// \file vtk.hpp
/// Legacy-VTK structured-grid export of panel fields — the 3-D data
/// path of paper §V ("we saved the 3-dimensional data 127 times, and
/// about 500 GB of data was generated"), scaled to workstation files
/// loadable by ParaView/VisIt.  One file per panel; points carry the
/// panel's global Cartesian coordinates so the two files overlay into
/// the full sphere with no seam (Fig. 2's "no indication of the
/// internal border").
#pragma once

#include <string>
#include <vector>

#include "grid/spherical_grid.hpp"
#include "mhd/state.hpp"
#include "yinyang/geometry.hpp"

namespace yy::io {

/// A named scalar field to export (non-owning view; must cover the
/// panel interior).
struct VtkScalar {
  std::string name;
  ConstFieldView field;
};

/// Writes the interior of a panel patch as an ASCII legacy VTK
/// STRUCTURED_GRID with the given point scalars; returns false on I/O
/// failure.  `panel` rotates the point coordinates into the global
/// (Yin) frame via eq. (1).
bool write_vtk_panel(const std::string& path, const SphericalGrid& grid,
                     yinyang::Panel panel,
                     const std::vector<VtkScalar>& scalars);

}  // namespace yy::io

/// \file hwcounters.hpp
/// Measured MPIPROGINF: per-thread hardware performance counters.
///
/// The paper's 15.2 TFlops / 46%-of-peak headline came straight from
/// the Earth Simulator's hardware counters (MPIPROGINF).  Everything in
/// src/perf reproduces that report *analytically* — charged flops from
/// common/flops.hpp plus the es_model.  This module adds the measured
/// side: a `CounterGroup` samples real CPU counters through Linux
/// `perf_event_open` (cycles, instructions, cache references/misses,
/// and optionally a raw FP-ops event), so every traced phase can report
/// achieved IPC, GFlop/s and memory traffic instead of predictions.
///
/// Honesty rules (DESIGN.md §13):
///  * Backend selection is *reported, never faked*.  When the kernel
///    refuses `perf_event_open` (containers, CI, locked-down hosts:
///    EPERM/EACCES; VMs without a PMU: ENOENT) the group degrades to
///    the `software` backend — timestamps plus the charged flop counter
///    — and says so via backend()/backend_detail(), which RunManifest
///    stamps into every export as `counter_backend`.
///  * The software backend's "measured" flop column is *defined* to be
///    the analytic charge (flops::count()), so model-vs-measured
///    reconciliation is exact by construction there; only a real
///    perf_event backend can produce an independent measurement.
///  * A `CounterGroup` counts the thread that constructed it (pid=0,
///    inherit off) and must be sampled from that thread only — the same
///    single-writer discipline as RankTrace.
#pragma once

#include <cstdint>
#include <string>

namespace yy::obs {

/// Which measurement source a CounterGroup ended up with.
enum class CounterBackend : int {
  off = 0,     ///< no group bound: spans carry zero counter deltas
  software,    ///< charged flops + timestamps only (portable fallback)
  perf_event,  ///< real hardware counters via perf_event_open
};

inline constexpr int kNumCounterBackends = 3;

const char* counter_backend_name(CounterBackend b);

/// One point-in-time reading (monotonic since group creation).  Span
/// deltas subtract two of these; per-phase totals add deltas.
struct CounterValues {
  std::uint64_t cycles = 0;        ///< PERF_COUNT_HW_CPU_CYCLES
  std::uint64_t instructions = 0;  ///< PERF_COUNT_HW_INSTRUCTIONS
  std::uint64_t cache_refs = 0;    ///< PERF_COUNT_HW_CACHE_REFERENCES
  std::uint64_t cache_misses = 0;  ///< PERF_COUNT_HW_CACHE_MISSES
  std::uint64_t hw_flops = 0;      ///< raw FP-ops event (0 if not opened)
  std::uint64_t flops = 0;         ///< software charge (flops::count())

  CounterValues operator-(const CounterValues& o) const {
    return {cycles - o.cycles,         instructions - o.instructions,
            cache_refs - o.cache_refs, cache_misses - o.cache_misses,
            hw_flops - o.hw_flops,     flops - o.flops};
  }
  CounterValues& operator+=(const CounterValues& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    cache_refs += o.cache_refs;
    cache_misses += o.cache_misses;
    hw_flops += o.hw_flops;
    flops += o.flops;
    return *this;
  }
  bool any() const {
    return (cycles | instructions | cache_refs | cache_misses | hw_flops |
            flops) != 0;
  }
};

struct CounterConfig {
  /// Try perf_event_open first; false selects the software backend
  /// outright (what sanitizer builds do: the interceptors make syscall
  /// timing meaningless and TSan dislikes the fd lifecycle).
  bool want_perf_event = true;
  /// Optional raw FP-operations event code (PERF_TYPE_RAW), because no
  /// portable PERF_COUNT_* FP event exists; microarchitecture-specific.
  /// < 0 disables.  Settable via YY_COUNTER_FPOPS_RAW (hex or decimal).
  long long fp_raw_event = -1;
};

/// Per-thread counter group.  Construct on the thread to be measured;
/// sample() from that thread only.
class CounterGroup {
 public:
  /// Reads YY_COUNTERS (off|software|perf) and YY_COUNTER_FPOPS_RAW.
  static CounterConfig config_from_env();

  explicit CounterGroup(const CounterConfig& cfg = {});
  ~CounterGroup();
  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  CounterBackend backend() const { return backend_; }
  /// Human-readable provenance: "perf_event (4 hw counters)" or the
  /// errno that forced the fallback ("perf_event_open: EPERM ...").
  const std::string& backend_detail() const { return detail_; }

  /// Current accumulated values.  Always cheap for the software
  /// backend; one group read() syscall for perf_event.
  CounterValues sample() const;

 private:
  CounterBackend backend_ = CounterBackend::software;
  std::string detail_;
  int group_fd_ = -1;  ///< perf group leader (cycles); -1 when software
  int nevents_ = 0;    ///< events in the group, read() layout size
  int fds_[8] = {-1, -1, -1, -1, -1, -1, -1, -1};  ///< every open event fd
  int idx_cycles_ = -1, idx_instructions_ = -1, idx_cache_refs_ = -1,
      idx_cache_misses_ = -1, idx_hw_flops_ = -1;
  void close_all();
};

namespace detail {
CounterGroup* current_counters();
void set_current_counters(CounterGroup* g);
}  // namespace detail

/// Binds the calling thread's PhaseScopes to a counter group for the
/// binder's lifetime, exactly like ScopedRankBind does for the span
/// buffer.  Place next to ScopedRankBind at the top of the rank
/// function; unbound threads record zero counter deltas (the seed
/// behaviour) at the cost of one branch per scope.
class ScopedCounterBind {
 public:
  explicit ScopedCounterBind(CounterGroup& g)
      : prev_(detail::current_counters()) {
    detail::set_current_counters(&g);
  }
  ~ScopedCounterBind() { detail::set_current_counters(prev_); }
  ScopedCounterBind(const ScopedCounterBind&) = delete;
  ScopedCounterBind& operator=(const ScopedCounterBind&) = delete;

 private:
  CounterGroup* prev_;
};

}  // namespace yy::obs

/// \file chrome_trace.hpp
/// Exports a TraceRecorder's spans as a chrome://tracing / Perfetto
/// "Trace Event Format" JSON object: one file per run, every rank on
/// one shared timeline (pid 0, tid = rank).  Spans become complete
/// ("ph":"X") events with microsecond timestamps re-zeroed to the
/// earliest recorded span; per-rank thread_name metadata labels the
/// rows "rank N".  Open the file via chrome://tracing "Load" or
/// https://ui.perfetto.dev.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace yy::obs {

struct RunManifest;  // telemetry.hpp

/// Writes the full trace JSON document to `out`.  The manifest
/// overload stamps the run identity into the document's "otherData"
/// member (shown by the tracing UI's metadata view).
void write_chrome_trace(const TraceRecorder& rec, std::ostream& out);
void write_chrome_trace(const TraceRecorder& rec, std::ostream& out,
                        const RunManifest& manifest);

/// Convenience: the document as a string (tests, small runs).
std::string chrome_trace_json(const TraceRecorder& rec);

/// Writes the document to `path`; returns false on I/O failure.
bool write_chrome_trace_file(const TraceRecorder& rec,
                             const std::string& path);
bool write_chrome_trace_file(const TraceRecorder& rec, const std::string& path,
                             const RunManifest& manifest);

}  // namespace yy::obs

/// \file stepstats.hpp
/// Per-step, per-rank time-series records for the telemetry layer.
///
/// The span stream (trace.hpp) is the raw timeline; a `StepStats` is
/// one solver step on one rank folded down to where the time went —
/// per-phase seconds and bytes, the step's dt and CFL headroom, the
/// global event-counter deltas observed across the step, and how many
/// spans the trace budget evicted meanwhile.  Ranks keep their recent
/// history in a bounded `StepStatsRing` (memory is fixed no matter how
/// long the run is); `aggregate_step` reduces the same step's records
/// from every rank into the cross-rank view — min/mean/max/argmax per
/// phase, the load-imbalance ratio, the straggler rank and the
/// compute-vs-wait split — that the telemetry heartbeat and the
/// telemetry.csv/json time series report (telemetry.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/events.hpp"
#include "obs/hwcounters.hpp"
#include "obs/trace.hpp"

namespace yy::obs {

/// True for phases that are time spent waiting on other ranks (halo,
/// overset, collective reductions); the rest count as compute for the
/// imbalance attribution and the compute-vs-wait split.  The overlapped
/// mode's `halo_overlap` (posting: pack + buffered send + irecv) is
/// active work, not a wait, and its `interior_rhs`/`rim_rhs` sweeps are
/// compute — so the split directly shows how much wait the overlap
/// reclaimed relative to a synchronous run.
bool is_wait_phase(Phase p);

/// One solver step on one rank.
struct StepStats {
  std::int64_t step = -1;
  double dt = 0.0;            ///< dt actually advanced this step
  double cfl_limit_dt = 0.0;  ///< last collective stable dt (0 = unknown)
  double wall_seconds = 0.0;  ///< step wall clock, begin_step..end_step
  std::array<double, kNumPhases> seconds{};
  std::array<std::uint64_t, kNumPhases> bytes{};
  /// Per-phase performance-counter deltas this step (hwcounters.hpp);
  /// all zero when the rank thread has no counter group bound.
  std::array<CounterValues, kNumPhases> ctr{};
  /// Delta of the process-global event counters (events.hpp) observed
  /// by this rank across the step.  The counters are shared by all
  /// ranks, so cross-rank aggregation takes the max, not the sum.
  std::array<std::uint64_t, kNumEvents> event_delta{};
  std::uint64_t spans_dropped = 0;  ///< budget evictions during the step

  double phase_seconds() const;    ///< Σ seconds[] (leaf spans: no overlap)
  double compute_seconds() const;  ///< Σ over non-wait phases
  double wait_seconds() const;     ///< Σ over wait phases
};

/// Fixed-capacity ring of the most recent StepStats; push overwrites
/// the oldest once full, so multi-thousand-step runs hold memory flat.
class StepStatsRing {
 public:
  explicit StepStatsRing(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buf_.size(); }
  std::uint64_t total_pushed() const { return pushed_; }

  void push(const StepStats& s);
  void clear();

  /// i = 0 is the oldest retained entry.
  const StepStats& from_oldest(std::size_t i) const;
  /// i = 0 is the most recent entry.
  const StepStats& from_newest(std::size_t i) const;

 private:
  std::vector<StepStats> buf_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< slot the next push writes (once full)
  std::uint64_t pushed_ = 0;
};

/// Cross-rank reduction of one phase within one step.
struct PhaseAgg {
  double min_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double sum_s = 0.0;
  int argmax_rank = -1;       ///< world rank attaining max_s
  std::uint64_t bytes = 0;    ///< Σ over ranks
  CounterValues ctr{};        ///< Σ counter deltas over ranks
};

/// Cross-rank view of one step.
struct StepAgg {
  std::int64_t step = -1;
  double dt = 0.0;
  double cfl_limit_dt = 0.0;
  int ranks = 0;
  std::array<PhaseAgg, kNumPhases> phase{};
  /// Load imbalance: max over ranks of compute seconds divided by the
  /// mean (1.0 = perfectly balanced; the bulk-synchronous step runs at
  /// the max, so (imbalance-1)/imbalance of compute time is waste).
  double imbalance = 1.0;
  int straggler = -1;  ///< world rank with the most compute this step
  double compute_mean_s = 0.0, compute_max_s = 0.0;
  double wait_mean_s = 0.0, wait_max_s = 0.0;
  double wall_max_s = 0.0;  ///< critical path: slowest rank's step wall
  std::array<std::uint64_t, kNumEvents> event_delta{};  ///< max over ranks
  std::uint64_t spans_dropped = 0;                      ///< Σ over ranks

  const PhaseAgg& phase_agg(Phase p) const {
    return phase[static_cast<std::size_t>(p)];
  }
  /// Fraction of the step's mean traced time spent waiting.
  double wait_fraction() const;
};

/// Reduces the same step's records from every rank; index into
/// `per_rank` is the world rank.  Requires at least one entry.
StepAgg aggregate_step(const std::vector<StepStats>& per_rank);

/// Fixed-length flat encoding for the telemetry gather (one double per
/// field; integers round-trip exactly up to 2^53 — counter values on a
/// multi-GHz core stay under that for runs of ~3 months).  The six
/// trailing blocks per phase are the CounterValues fields.
inline constexpr std::size_t kCounterDoubles = 6;
inline constexpr std::size_t kStepStatsDoubles =
    5 + (2 + kCounterDoubles) * static_cast<std::size_t>(kNumPhases) +
    static_cast<std::size_t>(kNumEvents);
void pack_step_stats(const StepStats& s, double* out);
StepStats unpack_step_stats(const double* in);

}  // namespace yy::obs

#include "obs/hwcounters.hpp"

#include <cstdlib>
#include <cstring>

#include "common/flops.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace yy::obs {

namespace {

const char* kBackendNames[] = {"off", "software", "perf_event"};
static_assert(sizeof(kBackendNames) / sizeof(kBackendNames[0]) ==
                  static_cast<std::size_t>(kNumCounterBackends),
              "counter_backend_name table out of sync");

}  // namespace

const char* counter_backend_name(CounterBackend b) {
  const int i = static_cast<int>(b);
  return i >= 0 && i < kNumCounterBackends ? kBackendNames[i] : "?";
}

CounterConfig CounterGroup::config_from_env() {
  CounterConfig cfg;
  if (const char* mode = std::getenv("YY_COUNTERS")) {
    if (std::strcmp(mode, "software") == 0 || std::strcmp(mode, "off") == 0)
      cfg.want_perf_event = false;
  }
  if (const char* raw = std::getenv("YY_COUNTER_FPOPS_RAW")) {
    cfg.fp_raw_event =
        static_cast<long long>(std::strtoll(raw, nullptr, /*base=*/0));
    if (cfg.fp_raw_event == 0) cfg.fp_raw_event = -1;
  }
  return cfg;
}

#if defined(__linux__)

namespace {

int open_perf_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // paranoid<=2 compatible; user time is what
  attr.exclude_hv = 1;      // the roofline wants anyway
  attr.read_format = PERF_FORMAT_GROUP;
  // pid=0, cpu=-1: this thread, any CPU; inherit stays off so worker
  // threads never pollute the owning rank's deltas.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

const char* errno_name(int e) {
  switch (e) {
    case EPERM: return "EPERM";
    case EACCES: return "EACCES";
    case ENOENT: return "ENOENT";
    case ENOSYS: return "ENOSYS";
    case ENODEV: return "ENODEV";
    default: return "errno";
  }
}

}  // namespace

CounterGroup::CounterGroup(const CounterConfig& cfg) {
  if (!cfg.want_perf_event) {
    detail_ = "software backend requested";
    return;
  }
  // The leader must open for the group to exist at all; members are
  // individually optional (a VM PMU often exposes fewer events).
  const int leader = open_perf_event(PERF_TYPE_HARDWARE,
                                     PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) {
    const int e = errno;
    detail_ = std::string("perf_event_open(cycles): ") + errno_name(e) + " (" +
              std::strerror(e) + "); software fallback";
    return;
  }
  group_fd_ = leader;
  fds_[nevents_] = leader;
  idx_cycles_ = nevents_++;
  struct Member {
    std::uint32_t type;
    std::uint64_t config;
    int* idx;
  } members[] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, &idx_instructions_},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, &idx_cache_refs_},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, &idx_cache_misses_},
  };
  for (const Member& m : members) {
    const int fd = open_perf_event(m.type, m.config, group_fd_);
    if (fd >= 0) {
      fds_[nevents_] = fd;
      *m.idx = nevents_++;
    }
  }
  if (cfg.fp_raw_event >= 0) {
    const int fd = open_perf_event(
        PERF_TYPE_RAW, static_cast<std::uint64_t>(cfg.fp_raw_event),
        group_fd_);
    if (fd >= 0) {
      fds_[nevents_] = fd;
      idx_hw_flops_ = nevents_++;
    }
  }
  if (idx_instructions_ < 0) {
    // cycles without instructions cannot produce an IPC — degrade
    // honestly rather than report a half-empty hardware row.
    close_all();
    idx_cycles_ = -1;
    detail_ = "perf_event_open(instructions) unavailable; software fallback";
    return;
  }
  backend_ = CounterBackend::perf_event;
  detail_ = "perf_event (" + std::to_string(nevents_) + " hw counters" +
            (idx_hw_flops_ >= 0 ? ", raw fp-ops" : "") + ")";
}

void CounterGroup::close_all() {
  for (int i = 0; i < nevents_; ++i)
    if (fds_[i] >= 0) {
      close(fds_[i]);
      fds_[i] = -1;
    }
  group_fd_ = -1;
  nevents_ = 0;
}

CounterGroup::~CounterGroup() { close_all(); }

CounterValues CounterGroup::sample() const {
  CounterValues v;
  v.flops = flops::count();
  if (backend_ != CounterBackend::perf_event) return v;
  // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per event in open
  // order.  One syscall samples the whole group coherently.
  std::uint64_t buf[2 + 8] = {0};
  const ssize_t want =
      static_cast<ssize_t>((1 + static_cast<std::size_t>(nevents_)) *
                           sizeof(std::uint64_t));
  if (read(group_fd_, buf, static_cast<std::size_t>(want)) != want) return v;
  const std::uint64_t* vals = buf + 1;
  const auto pick = [&](int idx) -> std::uint64_t {
    return idx >= 0 && idx < static_cast<int>(buf[0]) ? vals[idx] : 0;
  };
  v.cycles = pick(idx_cycles_);
  v.instructions = pick(idx_instructions_);
  v.cache_refs = pick(idx_cache_refs_);
  v.cache_misses = pick(idx_cache_misses_);
  v.hw_flops = pick(idx_hw_flops_);
  return v;
}

#else  // !__linux__

CounterGroup::CounterGroup(const CounterConfig& cfg) {
  (void)cfg;
  detail_ = "perf_event unavailable on this platform; software fallback";
}

CounterGroup::~CounterGroup() = default;

void CounterGroup::close_all() {}

CounterValues CounterGroup::sample() const {
  CounterValues v;
  v.flops = flops::count();
  return v;
}

#endif

namespace detail {

namespace {
thread_local CounterGroup* tls_counters = nullptr;
}  // namespace

CounterGroup* current_counters() { return tls_counters; }
void set_current_counters(CounterGroup* g) { tls_counters = g; }

}  // namespace detail

}  // namespace yy::obs

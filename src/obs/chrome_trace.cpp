#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/telemetry.hpp"

namespace yy::obs {

namespace {

/// Category shown in the tracing UI's filter box.
const char* phase_category(Phase p) {
  switch (p) {
    case Phase::halo_wait:
    case Phase::overset_wait:
    case Phase::reduce:
    case Phase::halo_overlap:
      return "comm";
    case Phase::io:
      return "io";
    default:
      return "compute";
  }
}

/// Shared body; a non-null manifest becomes the document's "otherData".
void write_chrome_trace_impl(const TraceRecorder& rec, std::ostream& out,
                             const RunManifest* manifest);

}  // namespace

void write_chrome_trace(const TraceRecorder& rec, std::ostream& out) {
  write_chrome_trace_impl(rec, out, nullptr);
}

void write_chrome_trace(const TraceRecorder& rec, std::ostream& out,
                        const RunManifest& manifest) {
  write_chrome_trace_impl(rec, out, &manifest);
}

namespace {

void write_chrome_trace_impl(const TraceRecorder& rec, std::ostream& out,
                             const RunManifest* manifest) {
  const std::vector<const RankTrace*> traces = rec.traces();

  // Re-zero the timeline to the earliest span so ts starts near 0.
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  for (const RankTrace* t : traces)
    for (const Span& s : t->spans()) t_min = std::min(t_min, s.t0_ns);
  if (t_min == std::numeric_limits<std::int64_t>::max()) t_min = 0;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[384];
  for (const RankTrace* t : traces) {
    if (!first) out << ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"rank %d\"}}",
                  t->rank(), t->rank());
    out << "\n" << buf;
    for (const Span& s : t->spans()) {
      // Trace-event ts/dur are doubles in microseconds.
      const double ts = static_cast<double>(s.t0_ns - t_min) / 1e3;
      const double dur = static_cast<double>(s.t1_ns - s.t0_ns) / 1e3;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"step\":%" PRId64 ",\"bytes\":%" PRIu64 "}}",
                    phase_name(s.phase), phase_category(s.phase), t->rank(),
                    ts, dur, s.step, s.bytes);
      out << ",\n" << buf;
    }
  }
  out << "\n]";
  if (manifest != nullptr) {
    out << ",\"otherData\":";
    manifest->write_json(out);
  }
  out << "}\n";
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& rec) {
  std::ostringstream os;
  write_chrome_trace(rec, os);
  return os.str();
}

bool write_chrome_trace_file(const TraceRecorder& rec,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(rec, f);
  return f.good();
}

bool write_chrome_trace_file(const TraceRecorder& rec, const std::string& path,
                             const RunManifest& manifest) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(rec, f, manifest);
  return f.good();
}

}  // namespace yy::obs

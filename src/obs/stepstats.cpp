#include "obs/stepstats.hpp"

#include <algorithm>
#include <stdexcept>

namespace yy::obs {

bool is_wait_phase(Phase p) {
  switch (p) {
    case Phase::halo_wait:
    case Phase::overset_wait:
    case Phase::reduce:
      return true;
    default:
      return false;
  }
}

double StepStats::phase_seconds() const {
  double s = 0.0;
  for (double v : seconds) s += v;
  return s;
}

double StepStats::compute_seconds() const {
  double s = 0.0;
  for (int p = 0; p < kNumPhases; ++p)
    if (!is_wait_phase(static_cast<Phase>(p)))
      s += seconds[static_cast<std::size_t>(p)];
  return s;
}

double StepStats::wait_seconds() const {
  double s = 0.0;
  for (int p = 0; p < kNumPhases; ++p)
    if (is_wait_phase(static_cast<Phase>(p)))
      s += seconds[static_cast<std::size_t>(p)];
  return s;
}

StepStatsRing::StepStatsRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  buf_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void StepStatsRing::push(const StepStats& s) {
  if (buf_.size() < capacity_) {
    buf_.push_back(s);
  } else {
    buf_[head_] = s;
    head_ = (head_ + 1) % capacity_;
  }
  ++pushed_;
}

void StepStatsRing::clear() {
  buf_.clear();
  head_ = 0;
  pushed_ = 0;
}

const StepStats& StepStatsRing::from_oldest(std::size_t i) const {
  if (i >= buf_.size()) throw std::out_of_range("StepStatsRing::from_oldest");
  // Until the ring wraps, head_ == 0 and the buffer is in push order.
  return buf_[(head_ + i) % buf_.size()];
}

const StepStats& StepStatsRing::from_newest(std::size_t i) const {
  if (i >= buf_.size()) throw std::out_of_range("StepStatsRing::from_newest");
  return from_oldest(buf_.size() - 1 - i);
}

double StepAgg::wait_fraction() const {
  const double total = compute_mean_s + wait_mean_s;
  return total > 0.0 ? wait_mean_s / total : 0.0;
}

StepAgg aggregate_step(const std::vector<StepStats>& per_rank) {
  if (per_rank.empty())
    throw std::invalid_argument("aggregate_step: no rank records");
  StepAgg a;
  a.step = per_rank[0].step;
  a.dt = per_rank[0].dt;
  a.cfl_limit_dt = per_rank[0].cfl_limit_dt;
  a.ranks = static_cast<int>(per_rank.size());

  double compute_sum = 0.0, wait_sum = 0.0, compute_max = -1.0;
  for (int r = 0; r < a.ranks; ++r) {
    const StepStats& s = per_rank[static_cast<std::size_t>(r)];
    for (int p = 0; p < kNumPhases; ++p) {
      PhaseAgg& pa = a.phase[static_cast<std::size_t>(p)];
      const double v = s.seconds[static_cast<std::size_t>(p)];
      if (r == 0 || v < pa.min_s) pa.min_s = v;
      if (r == 0 || v > pa.max_s) {
        pa.max_s = v;
        pa.argmax_rank = r;
      }
      pa.sum_s += v;
      pa.bytes += s.bytes[static_cast<std::size_t>(p)];
      pa.ctr += s.ctr[static_cast<std::size_t>(p)];
    }
    const double comp = s.compute_seconds();
    const double wait = s.wait_seconds();
    compute_sum += comp;
    wait_sum += wait;
    if (comp > compute_max) {
      compute_max = comp;
      a.straggler = r;
    }
    a.compute_max_s = std::max(a.compute_max_s, comp);
    a.wait_max_s = std::max(a.wait_max_s, wait);
    a.wall_max_s = std::max(a.wall_max_s, s.wall_seconds);
    for (int e = 0; e < kNumEvents; ++e)
      a.event_delta[static_cast<std::size_t>(e)] =
          std::max(a.event_delta[static_cast<std::size_t>(e)],
                   s.event_delta[static_cast<std::size_t>(e)]);
    a.spans_dropped += s.spans_dropped;
  }
  for (PhaseAgg& pa : a.phase) pa.mean_s = pa.sum_s / a.ranks;
  a.compute_mean_s = compute_sum / a.ranks;
  a.wait_mean_s = wait_sum / a.ranks;
  a.imbalance =
      a.compute_mean_s > 0.0 ? a.compute_max_s / a.compute_mean_s : 1.0;
  return a;
}

void pack_step_stats(const StepStats& s, double* out) {
  std::size_t k = 0;
  out[k++] = static_cast<double>(s.step);
  out[k++] = s.dt;
  out[k++] = s.cfl_limit_dt;
  out[k++] = s.wall_seconds;
  out[k++] = static_cast<double>(s.spans_dropped);
  for (int p = 0; p < kNumPhases; ++p)
    out[k++] = s.seconds[static_cast<std::size_t>(p)];
  for (int p = 0; p < kNumPhases; ++p)
    out[k++] = static_cast<double>(s.bytes[static_cast<std::size_t>(p)]);
  for (int p = 0; p < kNumPhases; ++p) {
    const CounterValues& c = s.ctr[static_cast<std::size_t>(p)];
    out[k++] = static_cast<double>(c.cycles);
    out[k++] = static_cast<double>(c.instructions);
    out[k++] = static_cast<double>(c.cache_refs);
    out[k++] = static_cast<double>(c.cache_misses);
    out[k++] = static_cast<double>(c.hw_flops);
    out[k++] = static_cast<double>(c.flops);
  }
  for (int e = 0; e < kNumEvents; ++e)
    out[k++] = static_cast<double>(s.event_delta[static_cast<std::size_t>(e)]);
}

StepStats unpack_step_stats(const double* in) {
  StepStats s;
  std::size_t k = 0;
  s.step = static_cast<std::int64_t>(in[k++]);
  s.dt = in[k++];
  s.cfl_limit_dt = in[k++];
  s.wall_seconds = in[k++];
  s.spans_dropped = static_cast<std::uint64_t>(in[k++]);
  for (int p = 0; p < kNumPhases; ++p)
    s.seconds[static_cast<std::size_t>(p)] = in[k++];
  for (int p = 0; p < kNumPhases; ++p)
    s.bytes[static_cast<std::size_t>(p)] =
        static_cast<std::uint64_t>(in[k++]);
  for (int p = 0; p < kNumPhases; ++p) {
    CounterValues& c = s.ctr[static_cast<std::size_t>(p)];
    c.cycles = static_cast<std::uint64_t>(in[k++]);
    c.instructions = static_cast<std::uint64_t>(in[k++]);
    c.cache_refs = static_cast<std::uint64_t>(in[k++]);
    c.cache_misses = static_cast<std::uint64_t>(in[k++]);
    c.hw_flops = static_cast<std::uint64_t>(in[k++]);
    c.flops = static_cast<std::uint64_t>(in[k++]);
  }
  for (int e = 0; e < kNumEvents; ++e)
    s.event_delta[static_cast<std::size_t>(e)] =
        static_cast<std::uint64_t>(in[k++]);
  return s;
}

}  // namespace yy::obs

#include "obs/telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace yy::obs {

namespace {

const char* detect_sanitizer() {
#if defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return "thread";
#elif __has_feature(address_sanitizer)
  return "address";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

RunManifest RunManifest::current_build() {
  RunManifest m;
  m.trace_level = YY_TRACE_LEVEL;
#ifdef YY_BUILD_TYPE
  m.build_type = YY_BUILD_TYPE;
#else
  m.build_type = "unknown";
#endif
  m.sanitizer = detect_sanitizer();
  return m;
}

void RunManifest::write_json(std::ostream& out) const {
  char buf[256];
  out << "{\"app\":\"" << json_escape(app) << "\",\"mode\":\""
      << json_escape(mode) << "\",";
  std::snprintf(buf, sizeof buf,
                "\"world\":%d,\"pt\":%d,\"pp\":%d,"
                "\"nr\":%d,\"nt_core\":%d,\"np_core\":%d,"
                "\"trace_level\":%d,\"heartbeat_interval\":%d,",
                world, pt, pp, nr, nt_core, np_core, trace_level,
                heartbeat_interval);
  out << buf;
  out << "\"build_type\":\"" << json_escape(build_type)
      << "\",\"sanitizer\":\"" << json_escape(sanitizer)
      << "\",\"counter_backend\":\"" << json_escape(counter_backend)
      << "\",\"extra\":{";
  bool first = true;
  for (const auto& [k, v] : extra) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  out << "}}";
}

std::string RunManifest::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void RunManifest::write_csv_comments(std::ostream& out) const {
  out << "# app=" << app << "\n# mode=" << mode << "\n";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "# world=%d pt=%d pp=%d\n# nr=%d nt_core=%d np_core=%d\n",
                world, pt, pp, nr, nt_core, np_core);
  out << buf;
  out << "# build_type=" << build_type << " sanitizer=" << sanitizer
      << " trace_level=" << trace_level
      << " counter_backend=" << counter_backend
      << " heartbeat_interval=" << heartbeat_interval << "\n";
  for (const auto& [k, v] : extra) out << "# " << k << "=" << v << "\n";
}

TelemetrySink::TelemetrySink(RunManifest manifest, std::ostream* heartbeat)
    : manifest_(std::move(manifest)), heartbeat_(heartbeat) {}

std::string TelemetrySink::heartbeat_line(const StepAgg& a) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "[telemetry] step %6lld  dt %.2e  comp %8.3fms  wait %8.3fms "
                "(%2.0f%%)  imb %5.2f  straggler r%d |",
                static_cast<long long>(a.step), a.dt, 1e3 * a.compute_mean_s,
                1e3 * a.wait_mean_s, 100.0 * a.wait_fraction(), a.imbalance,
                a.straggler);
  out += buf;
  static constexpr struct {
    Phase phase;
    const char* label;
  } kShown[] = {{Phase::rhs, "rhs"},
                {Phase::halo_wait, "halo"},
                {Phase::overset_wait, "ovs"}};
  for (const auto& sh : kShown) {
    const PhaseAgg& pa = a.phase_agg(sh.phase);
    if (pa.sum_s == 0.0) continue;
    std::snprintf(buf, sizeof buf, " %s %.3f/%.3f", sh.label, 1e3 * pa.mean_s,
                  1e3 * pa.max_s);
    out += buf;
  }
  out += " ms";
  return out;
}

void TelemetrySink::on_window(const std::vector<StepAgg>& steps) {
  for (const StepAgg& a : steps) {
    series_.push_back(a);
    if (heartbeat_ != nullptr) *heartbeat_ << heartbeat_line(a) << "\n";
  }
  if (heartbeat_ != nullptr) heartbeat_->flush();
}

void TelemetrySink::write_csv(std::ostream& out) const {
  manifest_.write_csv_comments(out);
  out << "# columns(phase rows): "
         "step,dt,phase,min_s,mean_s,max_s,sum_s,argmax_rank,bytes,"
         "cycles,instructions,cache_refs,cache_misses,hw_flops,flops\n";
  out << "# columns(STEP rows): step,dt,STEP,imbalance,compute_mean_s,"
         "wait_mean_s,wall_max_s,straggler,spans_dropped\n";
  out << "step,dt,phase,min_s,mean_s,max_s,sum_s,argmax_rank,bytes,"
         "cycles,instructions,cache_refs,cache_misses,hw_flops,flops\n";
  char buf[384];
  for (const StepAgg& a : series_) {
    for (int p = 0; p < kNumPhases; ++p) {
      const PhaseAgg& pa = a.phase[static_cast<std::size_t>(p)];
      if (pa.sum_s == 0.0 && pa.bytes == 0) continue;
      std::snprintf(buf, sizeof buf,
                    "%lld,%.9e,%s,%.9e,%.9e,%.9e,%.9e,%d,%" PRIu64 ",%" PRIu64
                    ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                    "\n",
                    static_cast<long long>(a.step), a.dt,
                    phase_name(static_cast<Phase>(p)), pa.min_s, pa.mean_s,
                    pa.max_s, pa.sum_s, pa.argmax_rank, pa.bytes,
                    pa.ctr.cycles, pa.ctr.instructions, pa.ctr.cache_refs,
                    pa.ctr.cache_misses, pa.ctr.hw_flops, pa.ctr.flops);
      out << buf;
    }
    std::snprintf(buf, sizeof buf,
                  "%lld,%.9e,STEP,%.9e,%.9e,%.9e,%.9e,%d,%" PRIu64 "\n",
                  static_cast<long long>(a.step), a.dt, a.imbalance,
                  a.compute_mean_s, a.wait_mean_s, a.wall_max_s, a.straggler,
                  a.spans_dropped);
    out << buf;
  }
}

void TelemetrySink::write_json(std::ostream& out) const {
  // Schema rev 2: manifest gained counter_backend, phase objects gained
  // the performance-counter block (present only when counters sampled).
  out << "{\"schema\":\"yy-telemetry-2\",\"manifest\":";
  manifest_.write_json(out);
  out << ",\"steps\":[";
  char buf[320];
  bool first_step = true;
  for (const StepAgg& a : series_) {
    if (!first_step) out << ",";
    first_step = false;
    std::snprintf(buf, sizeof buf,
                  "\n{\"step\":%lld,\"dt\":%.9e,\"cfl_limit_dt\":%.9e,"
                  "\"ranks\":%d,\"imbalance\":%.6f,\"straggler\":%d,"
                  "\"compute_mean_s\":%.9e,\"compute_max_s\":%.9e,"
                  "\"wait_mean_s\":%.9e,\"wait_max_s\":%.9e,"
                  "\"wall_max_s\":%.9e,\"spans_dropped\":%" PRIu64
                  ",\"phases\":{",
                  static_cast<long long>(a.step), a.dt, a.cfl_limit_dt,
                  a.ranks, a.imbalance, a.straggler, a.compute_mean_s,
                  a.compute_max_s, a.wait_mean_s, a.wait_max_s, a.wall_max_s,
                  a.spans_dropped);
    out << buf;
    bool first = true;
    for (int p = 0; p < kNumPhases; ++p) {
      const PhaseAgg& pa = a.phase[static_cast<std::size_t>(p)];
      if (pa.sum_s == 0.0 && pa.bytes == 0) continue;
      if (!first) out << ",";
      first = false;
      std::snprintf(buf, sizeof buf,
                    "\"%s\":{\"min_s\":%.9e,\"mean_s\":%.9e,\"max_s\":%.9e,"
                    "\"sum_s\":%.9e,\"argmax_rank\":%d,\"bytes\":%" PRIu64,
                    phase_name(static_cast<Phase>(p)), pa.min_s, pa.mean_s,
                    pa.max_s, pa.sum_s, pa.argmax_rank, pa.bytes);
      out << buf;
      if (pa.ctr.any()) {
        std::snprintf(buf, sizeof buf,
                      ",\"cycles\":%" PRIu64 ",\"instructions\":%" PRIu64
                      ",\"cache_refs\":%" PRIu64 ",\"cache_misses\":%" PRIu64
                      ",\"hw_flops\":%" PRIu64 ",\"flops\":%" PRIu64,
                      pa.ctr.cycles, pa.ctr.instructions, pa.ctr.cache_refs,
                      pa.ctr.cache_misses, pa.ctr.hw_flops, pa.ctr.flops);
        out << buf;
      }
      out << "}";
    }
    out << "},\"events\":{";
    first = true;
    for (int e = 0; e < kNumEvents; ++e) {
      const std::uint64_t n = a.event_delta[static_cast<std::size_t>(e)];
      if (n == 0) continue;
      if (!first) out << ",";
      first = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64,
                    event_name(static_cast<Event>(e)), n);
      out << buf;
    }
    out << "}}";
  }
  out << "\n]}\n";
}

std::string TelemetrySink::csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

std::string TelemetrySink::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool TelemetrySink::write_files(const std::string& csv_path,
                                const std::string& json_path) const {
  std::ofstream csv(csv_path);
  if (csv) write_csv(csv);
  std::ofstream js(json_path);
  if (js) write_json(js);
  return csv.good() && js.good();
}

RankTelemetry::RankTelemetry(const comm::Communicator& world,
                             TelemetrySink& sink, const TelemetryConfig& cfg)
    : world_(world), sink_(sink), cfg_(cfg), ring_(cfg.ring_capacity) {
  if (cfg_.interval < 1) cfg_.interval = 1;
}

void RankTelemetry::begin_step(std::int64_t step, double dt,
                               double cfl_limit_dt) {
  cur_ = StepStats{};
  cur_.step = step;
  cur_.dt = dt;
  cur_.cfl_limit_dt = cfl_limit_dt;
  if (RankTrace* t = detail::current_trace()) {
    if (cfg_.span_budget != 0 && t->span_budget() != cfg_.span_budget)
      t->set_span_budget(cfg_.span_budget);
    consumed_spans_ = t->evicted() + t->spans().size();
    evicted_at_begin_ = t->evicted();
  }
  events_at_begin_ = EventCounters::global().snapshot();
  t_begin_ns_ = now_ns();
  step_open_ = true;
}

void RankTelemetry::end_step() {
  if (!step_open_) return;
  step_open_ = false;
  cur_.wall_seconds = static_cast<double>(now_ns() - t_begin_ns_) / 1e9;
  if (const RankTrace* t = detail::current_trace()) {
    const std::vector<Span>& spans = t->spans();
    const std::uint64_t evicted = t->evicted();
    // Spans recorded before begin_step occupy [0, consumed_spans_ -
    // evicted); anything the budget already evicted is simply gone.
    const std::size_t begin =
        consumed_spans_ > evicted
            ? static_cast<std::size_t>(consumed_spans_ - evicted)
            : 0;
    for (std::size_t i = begin; i < spans.size(); ++i) {
      const Span& s = spans[i];
      const auto p = static_cast<std::size_t>(s.phase);
      cur_.seconds[p] += static_cast<double>(s.t1_ns - s.t0_ns) / 1e9;
      cur_.bytes[p] += s.bytes;
      cur_.ctr[p] += s.ctr;
    }
    cur_.spans_dropped = evicted - evicted_at_begin_;
  }
  const auto events_now = EventCounters::global().snapshot();
  for (int e = 0; e < kNumEvents; ++e)
    cur_.event_delta[static_cast<std::size_t>(e)] =
        events_now[static_cast<std::size_t>(e)] -
        events_at_begin_[static_cast<std::size_t>(e)];
  ring_.push(cur_);
  if (++in_window_ >= cfg_.interval) {
    collective_window(in_window_);
    in_window_ = 0;
  }
}

void RankTelemetry::flush() {
  if (in_window_ > 0) {
    collective_window(in_window_);
    in_window_ = 0;
  }
}

void RankTelemetry::collective_window(int nsteps) {
  // Pack the window oldest-first; every rank contributes the same
  // nsteps (the solver steps in lockstep), which gather() requires.
  std::vector<double> payload(static_cast<std::size_t>(nsteps) *
                              kStepStatsDoubles);
  for (int k = 0; k < nsteps; ++k)
    pack_step_stats(ring_.from_newest(static_cast<std::size_t>(nsteps - 1 - k)),
                    &payload[static_cast<std::size_t>(k) * kStepStatsDoubles]);
  const std::vector<double> all = world_.gather(payload, 0);
  if (world_.rank() != 0) return;
  const int nranks = world_.size();
  std::vector<StepAgg> aggs;
  aggs.reserve(static_cast<std::size_t>(nsteps));
  std::vector<StepStats> per_rank(static_cast<std::size_t>(nranks));
  for (int k = 0; k < nsteps; ++k) {
    for (int r = 0; r < nranks; ++r)
      per_rank[static_cast<std::size_t>(r)] = unpack_step_stats(
          &all[(static_cast<std::size_t>(r) * nsteps + k) * kStepStatsDoubles]);
    aggs.push_back(aggregate_step(per_rank));
  }
  sink_.on_window(aggs);
}

}  // namespace yy::obs

/// \file metrics.hpp
/// Flat per-phase metrics aggregated from a TraceRecorder: span time
/// sums, counts and attributed message bytes, per rank and globally,
/// plus the comm layer's traffic counters when the caller supplies
/// them.  This is the quantitative side of the trace — what the
/// measured-vs-predicted proginf report and the regression benchmarks
/// consume — exported as CSV (one row per rank×phase) or JSON.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "obs/events.hpp"
#include "obs/hwcounters.hpp"
#include "obs/trace.hpp"

namespace yy::obs {

struct PhaseMetrics {
  double seconds = 0.0;        ///< Σ span durations
  std::uint64_t count = 0;     ///< number of spans
  std::uint64_t bytes = 0;     ///< Σ attributed message bytes
  /// Σ per-span performance-counter deltas (hwcounters.hpp): zero
  /// unless the recording threads had counter groups bound.
  CounterValues ctr{};
};

struct RankMetrics {
  int rank = 0;
  std::array<PhaseMetrics, kNumPhases> phase{};
  double span_seconds = 0.0;   ///< last span end − first span begin
};

struct MetricsSummary {
  std::vector<RankMetrics> ranks;               ///< ordered by rank
  std::array<PhaseMetrics, kNumPhases> total{}; ///< summed over ranks
  std::int64_t steps = 0;       ///< max step stamp seen + 1 (0 if none)
  double wall_seconds = 0.0;    ///< global last end − first begin
  comm::TrafficStats traffic;   ///< caller-supplied (0 if not)
  /// Snapshot of the global resilience event counters (events.hpp);
  /// exported as EVENT rows / an "events" object so checkpoint and
  /// recovery activity is visible in yy_metrics output.
  std::array<std::uint64_t, kNumEvents> events{};

  const PhaseMetrics& phase(Phase p) const {
    return total[static_cast<std::size_t>(p)];
  }
  std::uint64_t event(Event e) const {
    return events[static_cast<std::size_t>(e)];
  }
  /// Σ traced seconds over every phase and rank.
  double traced_seconds() const;
};

/// Aggregates all spans currently in `rec`.  `traffic` (e.g.
/// Runtime::traffic_total()) is carried through verbatim.
MetricsSummary collect_metrics(const TraceRecorder& rec,
                               const comm::TrafficStats& traffic = {});

struct RunManifest;  // telemetry.hpp

/// CSV: header + one row per rank×phase + per-phase TOTAL rows.  The
/// manifest overload prepends "# key=value" comment lines so the
/// artifact is self-describing.
void write_metrics_csv(const MetricsSummary& m, std::ostream& out);
void write_metrics_csv(const MetricsSummary& m, std::ostream& out,
                       const RunManifest& manifest);

/// JSON object mirroring MetricsSummary; the manifest overload adds a
/// "manifest" member.
void write_metrics_json(const MetricsSummary& m, std::ostream& out);
void write_metrics_json(const MetricsSummary& m, std::ostream& out,
                        const RunManifest& manifest);

std::string metrics_csv(const MetricsSummary& m);
std::string metrics_json(const MetricsSummary& m);

}  // namespace yy::obs

/// \file trace.hpp
/// Low-overhead per-rank phase tracing for the distributed solver.
///
/// The paper's performance story (List 1, Table II) hinges on knowing
/// where each step's time goes — compute vs. halo exchange vs. Yin-Yang
/// overset interpolation.  `src/perf/es_model` *predicts* those splits;
/// this module *measures* them on real runs so the two can be
/// cross-checked (see perf/proginf.hpp's measured report).
///
/// Design:
///  * A `TraceRecorder` owns one `RankTrace` span buffer per rank.
///    Spans are appended only by the owning rank's thread, so the hot
///    path is a bounds-checked vector push with no locks; the registry
///    mutex is taken only at bind time (once per rank per run).
///  * Ranks bind themselves with a `ScopedRankBind` at the top of their
///    rank function; `PhaseScope` (usually via the YY_TRACE_SCOPE
///    macros) then records [start,end) spans against the thread-local
///    binding.  Unbound threads pay one branch per scope and record
///    nothing, so instrumented library code is free when tracing is off.
///  * Phase spans are *leaf-level and mutually non-overlapping* per
///    rank: instrumentation wraps disjoint segments of the step (the
///    rhs evaluation, the linear-algebra stage update, each exchange,
///    ...), never an enclosing region, so exporters and tests may rely
///    on per-thread span monotonicity.
///  * Compiling with -DYY_TRACE_LEVEL=0 replaces every scope with an
///    empty `NullPhaseScope`, removing the instrumentation entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/hwcounters.hpp"

#ifndef YY_TRACE_LEVEL
#define YY_TRACE_LEVEL 1
#endif

namespace yy::obs {

/// Span taxonomy (see DESIGN.md "Observability").  Keep phase_name()
/// and kNumPhases in sync.
enum class Phase : int {
  rhs = 0,       ///< compute_rhs stencil evaluation
  rk4_stage,     ///< integrator linear algebra (axpy/copy of a stage)
  halo_wait,     ///< intra-panel halo exchange (pack+send+wait+unpack)
  overset_wait,  ///< inter-panel overset interpolation exchange
  boundary,      ///< physical wall values and radial ghost fill
  reduce,        ///< collective reductions (CFL dt, energies)
  io,            ///< snapshot gather / file output
  halo_overlap,  ///< overlapped mode: posting halo/overset exchanges
                 ///< (pack + send + irecv) before the interior sweep
  interior_rhs,  ///< overlapped mode: RHS interior sweep (no ghosts
                 ///< needed; runs while exchanges are in flight)
  rim_rhs,       ///< overlapped mode: RHS boundary-shell sweep after
                 ///< the exchanges finish
  shrink,        ///< rebuilding the communicator over the survivors
  buddy_restore, ///< redistribution/restore from buddy replicas
  sdc_audit,     ///< silent-data-corruption audit (slab CRCs + probes)
  scrub,         ///< background buddy-replica scrubbing round
  other,         ///< anything else worth a span
};

inline constexpr int kNumPhases = 15;

// A new Phase must bump kNumPhases (and the name table in trace.cpp,
// whose size is pinned by its own static_assert) before it compiles.
static_assert(static_cast<int>(Phase::other) + 1 == kNumPhases,
              "Phase enum and kNumPhases are out of sync: keep `other` "
              "last and kNumPhases == last + 1");

const char* phase_name(Phase p);

/// One recorded [t0,t1) interval on one rank.
struct Span {
  Phase phase = Phase::other;
  std::int64_t t0_ns = 0;       ///< start, ns since recorder epoch
  std::int64_t t1_ns = 0;       ///< end, ns since recorder epoch
  std::int64_t step = -1;       ///< solver step at record time (-1 none)
  std::uint64_t bytes = 0;      ///< message bytes attributed to the span
  /// Performance-counter delta across the span (hwcounters.hpp): all
  /// zero unless the recording thread had a ScopedCounterBind active.
  CounterValues ctr{};
};

class TraceRecorder;

/// Per-rank span buffer.  Appended only by the owning rank's thread
/// while recording; read by exporters after the run (the harness joins
/// rank threads before exporting, which publishes the buffers).
class RankTrace {
 public:
  int rank() const { return rank_; }
  const std::vector<Span>& spans() const { return spans_; }

  /// Current solver step, stamped onto subsequent spans.
  void set_step(std::int64_t step) { step_ = step; }
  std::int64_t step() const { return step_; }

  void record(Phase phase, std::int64_t t0_ns, std::int64_t t1_ns,
              std::uint64_t bytes) {
    record(phase, t0_ns, t1_ns, bytes, CounterValues{});
  }

  void record(Phase phase, std::int64_t t0_ns, std::int64_t t1_ns,
              std::uint64_t bytes, const CounterValues& ctr) {
    if (budget_ != 0 && spans_.size() >= budget_) evict_oldest();
    spans_.push_back({phase, t0_ns, t1_ns, step_, bytes, ctr});
    ++recorded_total_;
  }

  /// Caps the span buffer for long runs: once it holds `budget` spans,
  /// recording another first evicts the oldest quarter in one bulk move
  /// (amortized O(1) per record).  0 = unbounded, the seed behaviour.
  /// Telemetry consumers (obs/telemetry.hpp) downsample spans into
  /// per-step StepStats before eviction can reach them, so a bounded
  /// buffer loses only raw timeline detail, not the time series.
  void set_span_budget(std::size_t budget) { budget_ = budget; }
  std::size_t span_budget() const { return budget_; }

  /// Spans ever recorded / evicted by the budget (monotonic).  The
  /// buffer holds the last recorded_total() - evicted() of them.
  std::uint64_t recorded_total() const { return recorded_total_; }
  std::uint64_t evicted() const { return evicted_; }

 private:
  friend class TraceRecorder;
  explicit RankTrace(int rank) : rank_(rank) { spans_.reserve(1024); }
  void evict_oldest();
  int rank_;
  std::int64_t step_ = -1;
  std::vector<Span> spans_;
  std::size_t budget_ = 0;
  std::uint64_t recorded_total_ = 0;
  std::uint64_t evicted_ = 0;
};

/// Monotonic nanoseconds since a process-wide epoch (first use).  One
/// shared epoch keeps spans from different recorders and threads on a
/// single comparable timeline; exporters re-zero to the earliest span.
std::int64_t now_ns();

/// Registry of per-rank buffers.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Returns (creating on first use) the buffer for `rank`.  Safe to
  /// call concurrently from rank threads.
  RankTrace& rank_trace(int rank);

  /// Stable snapshot of all registered rank buffers, ordered by rank.
  /// Call only after the recording threads have been joined.
  std::vector<const RankTrace*> traces() const;

 private:
  mutable std::mutex mu_;                 // guards registration only
  std::deque<RankTrace> ranks_;           // deque: stable addresses
};

namespace detail {
RankTrace* current_trace();
void set_current_trace(RankTrace* t);
}  // namespace detail

/// Binds the calling thread to a rank buffer for its lifetime; place at
/// the top of the rank function.  Nesting restores the previous binding.
class ScopedRankBind {
 public:
  ScopedRankBind(TraceRecorder& rec, int rank)
      : prev_(detail::current_trace()) {
    detail::set_current_trace(&rec.rank_trace(rank));
  }
  ~ScopedRankBind() { detail::set_current_trace(prev_); }
  ScopedRankBind(const ScopedRankBind&) = delete;
  ScopedRankBind& operator=(const ScopedRankBind&) = delete;

 private:
  RankTrace* prev_;
};

/// Stamps the current step onto the calling rank's future spans (no-op
/// when the thread is unbound).
inline void set_current_step(std::int64_t step) {
  if (RankTrace* t = detail::current_trace()) t->set_step(step);
}

/// RAII leaf span: opens at construction, records at destruction.
/// All methods are no-ops on unbound threads.  When the thread also has
/// a ScopedCounterBind active, the span additionally carries the
/// counter delta (cycles, instructions, cache traffic, charged flops)
/// accumulated while it was open — the "measured MPIPROGINF" raw data.
class PhaseScope {
 public:
  explicit PhaseScope(Phase phase) : trace_(detail::current_trace()) {
    if (trace_ != nullptr) {
      ctrs_ = detail::current_counters();
      phase_ = phase;
      if (ctrs_ != nullptr) c0_ = ctrs_->sample();
      t0_ns_ = now_ns();  // last: keep the sampling cost out of the span
    }
  }
  ~PhaseScope() {
    if (trace_ != nullptr) {
      const std::int64_t t1 = now_ns();
      trace_->record(phase_, t0_ns_, t1, bytes_,
                     ctrs_ != nullptr ? ctrs_->sample() - c0_
                                      : CounterValues{});
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Attributes message bytes to the span (e.g. halo strip sizes).
  void add_bytes(std::uint64_t b) {
    if (trace_ != nullptr) bytes_ += b;
  }

 private:
  RankTrace* trace_;
  CounterGroup* ctrs_ = nullptr;
  Phase phase_ = Phase::other;
  std::int64_t t0_ns_ = 0;
  std::uint64_t bytes_ = 0;
  CounterValues c0_{};
};

/// Drop-in stand-in for PhaseScope when tracing is compiled out.
struct NullPhaseScope {
  explicit NullPhaseScope(Phase) {}
  void add_bytes(std::uint64_t) {}
};

}  // namespace yy::obs

// Instrumentation macros.  YY_TRACE_SCOPE opens an anonymous leaf span
// for the rest of the enclosing block; YY_TRACE_SCOPE_V names the scope
// object so bytes can be attributed (`sc.add_bytes(n)`).  At
// YY_TRACE_LEVEL=0 both compile to empty objects the optimizer deletes.
#define YY_TRACE_CONCAT_INNER(a, b) a##b
#define YY_TRACE_CONCAT(a, b) YY_TRACE_CONCAT_INNER(a, b)
#if YY_TRACE_LEVEL
#define YY_TRACE_SCOPE(phase) \
  ::yy::obs::PhaseScope YY_TRACE_CONCAT(yy_trace_scope_, __LINE__)(phase)
#define YY_TRACE_SCOPE_V(var, phase) ::yy::obs::PhaseScope var(phase)
#else
#define YY_TRACE_SCOPE(phase) \
  ::yy::obs::NullPhaseScope YY_TRACE_CONCAT(yy_trace_scope_, __LINE__)(phase)
#define YY_TRACE_SCOPE_V(var, phase) ::yy::obs::NullPhaseScope var(phase)
#endif

/// \file telemetry.hpp
/// In-run, cross-rank telemetry: the live counterpart of the post-hoc
/// metrics aggregation (metrics.hpp), modelled on the Earth Simulator's
/// PROGINF facility which let the paper's authors watch where every
/// step's time went and which AP lagged.
///
/// Three pieces:
///  * `RunManifest` — the run's identity (app, config, rank layout,
///    build flags, trace level, sanitizer mode), stamped into every
///    telemetry/metrics/trace export so artifacts are self-describing.
///  * `RankTelemetry` — per-rank front end.  The solver brackets each
///    step with begin_step()/end_step(); end_step folds the spans the
///    step recorded (via the existing PhaseScope instrumentation) into
///    a StepStats, pushes it onto a bounded ring, and every
///    `interval` steps joins a collective gather that ships the window
///    to world rank 0.  The gather is the only communication; its cost
///    amortizes over the interval.
///  * `TelemetrySink` — root-side collector.  Reduces each gathered
///    step across ranks (stepstats.hpp aggregate_step), appends it to
///    the run's time series, prints a rolling heartbeat line per step
///    when a heartbeat stream is attached, and exports the series as
///    telemetry.csv / telemetry.json.
///
/// The per-step phase sums in the exported series reconcile with the
/// end-of-run MetricsSummary totals computed from the same spans
/// (test-enforced in tests/obs/test_telemetry.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "obs/stepstats.hpp"

namespace yy::obs {

/// Everything needed to interpret an exported artifact later: run
/// shape, grid, rank layout and the build's observability flags.
struct RunManifest {
  std::string app;   ///< producing binary ("parallel_dynamo", ...)
  std::string mode;  ///< run mode ("plain", "resilient", ...)
  int world = 0, pt = 0, pp = 0;      ///< rank layout (2 panels x pt x pp)
  int nr = 0, nt_core = 0, np_core = 0;  ///< per-panel grid
  int trace_level = YY_TRACE_LEVEL;
  std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string sanitizer;   ///< "none", "thread" or "address"
  /// Performance-counter source actually used by the run ("off",
  /// "software", "perf_event" — hwcounters.hpp), reported honestly so a
  /// measured-MPIPROGINF artifact always says where its numbers came
  /// from.  Callers set it from CounterGroup::backend().
  std::string counter_backend = "off";
  int heartbeat_interval = 0;  ///< telemetry window (0 = telemetry off)
  /// Free-form additions ("steps", "seed", ...), exported verbatim.
  std::vector<std::pair<std::string, std::string>> extra;

  /// Manifest pre-filled with the compile-time facts (trace level,
  /// build type, sanitizer mode); the caller fills in the run shape.
  static RunManifest current_build();

  void write_json(std::ostream& out) const;  ///< one JSON object
  std::string json() const;
  /// "# key=value" comment lines, placed above CSV headers.
  void write_csv_comments(std::ostream& out) const;
};

struct TelemetryConfig {
  int interval = 10;  ///< steps per collective window (>= 1)
  std::size_t ring_capacity = 4096;  ///< StepStats retained per rank
  /// Span budget installed on the bound RankTrace so long telemetry
  /// runs don't grow the raw span buffer unboundedly (0 = leave the
  /// trace unbounded; spans are folded into StepStats each step, so a
  /// bounded trace costs only raw-timeline detail).
  std::size_t span_budget = 1 << 16;
};

/// Root-side collector and exporter.  Only the gather root (world rank
/// 0) calls on_window(); the main thread reads/exports after the rank
/// threads are joined.
class TelemetrySink {
 public:
  explicit TelemetrySink(RunManifest manifest,
                         std::ostream* heartbeat = nullptr);

  const RunManifest& manifest() const { return manifest_; }
  const std::vector<StepAgg>& series() const { return series_; }

  /// Appends a window of aggregated steps and emits one heartbeat line
  /// per step when a heartbeat stream is attached.
  void on_window(const std::vector<StepAgg>& steps);

  /// One-line cross-rank summary of an aggregated step (the heartbeat
  /// format): per-phase mean/max, imbalance, straggler, wait share.
  static std::string heartbeat_line(const StepAgg& a);

  void write_csv(std::ostream& out) const;
  void write_json(std::ostream& out) const;
  std::string csv() const;
  std::string json() const;
  /// Writes both exports; returns false if either file failed.
  bool write_files(const std::string& csv_path,
                   const std::string& json_path) const;

 private:
  RunManifest manifest_;
  std::ostream* heartbeat_;
  std::vector<StepAgg> series_;
};

/// Per-rank telemetry front end (one per rank thread, like the solver).
/// begin_step/end_step bracket each solver step; every `interval`
/// completed steps end_step performs a collective gather over `world`,
/// so all ranks must step in lockstep (they do: the solver step is
/// itself collective).  flush() drains a partial window and is likewise
/// collective.
class RankTelemetry {
 public:
  RankTelemetry(const comm::Communicator& world, TelemetrySink& sink,
                const TelemetryConfig& cfg = {});

  void begin_step(std::int64_t step, double dt, double cfl_limit_dt = 0.0);
  void end_step();
  void flush();

  const TelemetryConfig& config() const { return cfg_; }
  const StepStatsRing& ring() const { return ring_; }

 private:
  void collective_window(int nsteps);

  comm::Communicator world_;
  TelemetrySink& sink_;
  TelemetryConfig cfg_;
  StepStatsRing ring_;
  StepStats cur_;
  std::uint64_t consumed_spans_ = 0;  ///< monotonic watermark, incl. evicted
  std::uint64_t evicted_at_begin_ = 0;
  std::array<std::uint64_t, kNumEvents> events_at_begin_{};
  std::int64_t t_begin_ns_ = 0;
  int in_window_ = 0;  ///< completed steps since the last gather
  bool step_open_ = false;
};

}  // namespace yy::obs

#include "obs/events.hpp"

namespace yy::obs {

const char* event_name(Event e) {
  switch (e) {
    case Event::checkpoint_saved: return "checkpoint_saved";
    case Event::checkpoint_save_failed: return "checkpoint_save_failed";
    case Event::checkpoint_rejected: return "checkpoint_rejected";
    case Event::restart_loaded: return "restart_loaded";
    case Event::recovery_rewind: return "recovery_rewind";
    case Event::dt_backoff: return "dt_backoff";
    case Event::comm_timeout: return "comm_timeout";
    case Event::comm_corruption: return "comm_corruption";
    case Event::health_check: return "health_check";
    case Event::health_nonfinite: return "health_nonfinite";
    case Event::health_blowup: return "health_blowup";
    case Event::health_cfl_collapse: return "health_cfl_collapse";
    case Event::run_failed: return "run_failed";
  }
  return "?";
}

EventCounters& EventCounters::global() {
  static EventCounters instance;
  return instance;
}

std::array<std::uint64_t, kNumEvents> EventCounters::snapshot() const {
  std::array<std::uint64_t, kNumEvents> out{};
  for (int i = 0; i < kNumEvents; ++i)
    out[static_cast<std::size_t>(i)] =
        c_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void EventCounters::reset() {
  for (auto& a : c_) a.store(0, std::memory_order_relaxed);
}

}  // namespace yy::obs

#include "obs/events.hpp"

#include <iterator>

namespace yy::obs {

namespace {

// Indexed by Event; pinned to the enum like kPhaseNames in trace.cpp.
constexpr const char* kEventNames[] = {
    "checkpoint_saved", "checkpoint_save_failed", "checkpoint_rejected",
    "restart_loaded",   "recovery_rewind",        "dt_backoff",
    "comm_timeout",     "comm_corruption",        "health_check",
    "health_nonfinite", "health_blowup",          "health_cfl_collapse",
    "rank_death_detected", "world_shrunk",        "buddy_restore",
    "dt_reramp",        "stale_tmp_swept",        "health_denormal",
    "sdc_audit",        "sdc_mismatch",           "sdc_invariant_trip",
    "sdc_detected",     "sdc_restore",            "replica_scrubbed",
    "replica_rot_detected", "replica_refetched",  "run_failed",
};
static_assert(std::size(kEventNames) == static_cast<std::size_t>(kNumEvents),
              "event_name table and kNumEvents are out of sync");

}  // namespace

const char* event_name(Event e) {
  const int i = static_cast<int>(e);
  return i >= 0 && i < kNumEvents ? kEventNames[i] : "?";
}

EventCounters& EventCounters::global() {
  static EventCounters instance;
  return instance;
}

std::array<std::uint64_t, kNumEvents> EventCounters::snapshot() const {
  std::array<std::uint64_t, kNumEvents> out{};
  for (int i = 0; i < kNumEvents; ++i)
    out[static_cast<std::size_t>(i)] =
        c_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void EventCounters::reset() {
  for (auto& a : c_) a.store(0, std::memory_order_relaxed);
}

}  // namespace yy::obs

/// \file events.hpp
/// Named resilience event counters, the discrete-event complement of
/// the span metrics: checkpoints saved/rejected, restarts, recovery
/// rewinds, comm faults, health verdicts.  Counters are process-global
/// and thread-safe (rank threads of the in-process runtime all count
/// into the same registry); collect_metrics() snapshots them into the
/// MetricsSummary so recovery activity shows up in yy_metrics CSV/JSON
/// next to the per-phase timings.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace yy::obs {

enum class Event : int {
  checkpoint_saved = 0,     ///< collective save committed (world rank 0)
  checkpoint_save_failed,   ///< collective save aborted and discarded
  checkpoint_rejected,      ///< a stored checkpoint failed validation on load
  restart_loaded,           ///< state restored from a checkpoint
  recovery_rewind,          ///< a fault triggered a rewind-and-retry
  dt_backoff,               ///< dt reduced after a numerical blow-up
  comm_timeout,             ///< a receive deadline expired (per rank)
  comm_corruption,          ///< an envelope failed CRC validation (per rank)
  health_check,             ///< collective health sweeps performed
  health_nonfinite,         ///< NaN/Inf detected in the state
  health_blowup,            ///< field magnitude above the blow-up threshold
  health_cfl_collapse,      ///< stable dt collapsed below the floor
  rank_death_detected,      ///< a peer was confirmed dead (per survivor)
  world_shrunk,             ///< the world shrank to the survivor set
  buddy_restore,            ///< a dead rank's patch restored from replica
  dt_reramp,                ///< dt grown back toward the CFL-stable dt
  stale_tmp_swept,          ///< orphaned checkpoint *.tmp removed at startup
  health_denormal,          ///< denormal flood detected in the state
  sdc_audit,                ///< collective SDC audits performed (rank 0)
  sdc_mismatch,             ///< a slab checksum diverged from its reference
  sdc_invariant_trip,       ///< a physics invariant probe breached its bound
  sdc_detected,             ///< collective SDC verdict was not clean (rank 0)
  sdc_restore,              ///< state restored from buddy replicas after SDC
  replica_scrubbed,         ///< buddy-replica scrub rounds completed (rank 0)
  replica_rot_detected,     ///< a held buddy replica failed its re-CRC
  replica_refetched,        ///< a fresh replica re-fetched from the partner
  run_failed,               ///< resilient run gave up (structured failure)
};

inline constexpr int kNumEvents = 27;

// A new Event must bump kNumEvents (and the name table in events.cpp,
// pinned by its own static_assert) before it compiles.
static_assert(static_cast<int>(Event::run_failed) + 1 == kNumEvents,
              "Event enum and kNumEvents are out of sync: keep "
              "`run_failed` last and kNumEvents == last + 1");

const char* event_name(Event e);

class EventCounters {
 public:
  static EventCounters& global();

  void add(Event e, std::uint64_t n = 1) {
    c_[static_cast<std::size_t>(e)].fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t count(Event e) const {
    return c_[static_cast<std::size_t>(e)].load(std::memory_order_relaxed);
  }
  std::array<std::uint64_t, kNumEvents> snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumEvents> c_{};
};

/// Counts into the global registry.
inline void count_event(Event e, std::uint64_t n = 1) {
  EventCounters::global().add(e, n);
}

}  // namespace yy::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/telemetry.hpp"

namespace yy::obs {

double MetricsSummary::traced_seconds() const {
  double s = 0.0;
  for (const PhaseMetrics& p : total) s += p.seconds;
  return s;
}

MetricsSummary collect_metrics(const TraceRecorder& rec,
                               const comm::TrafficStats& traffic) {
  MetricsSummary m;
  m.traffic = traffic;
  std::int64_t g_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t g_max = std::numeric_limits<std::int64_t>::min();
  std::int64_t max_step = -1;

  for (const RankTrace* t : rec.traces()) {
    RankMetrics rm;
    rm.rank = t->rank();
    std::int64_t r_min = std::numeric_limits<std::int64_t>::max();
    std::int64_t r_max = std::numeric_limits<std::int64_t>::min();
    for (const Span& s : t->spans()) {
      auto& pm = rm.phase[static_cast<std::size_t>(s.phase)];
      pm.seconds += static_cast<double>(s.t1_ns - s.t0_ns) / 1e9;
      pm.count += 1;
      pm.bytes += s.bytes;
      pm.ctr += s.ctr;
      r_min = std::min(r_min, s.t0_ns);
      r_max = std::max(r_max, s.t1_ns);
      max_step = std::max(max_step, s.step);
    }
    if (!t->spans().empty()) {
      rm.span_seconds = static_cast<double>(r_max - r_min) / 1e9;
      g_min = std::min(g_min, r_min);
      g_max = std::max(g_max, r_max);
    }
    for (int p = 0; p < kNumPhases; ++p) {
      m.total[static_cast<std::size_t>(p)].seconds +=
          rm.phase[static_cast<std::size_t>(p)].seconds;
      m.total[static_cast<std::size_t>(p)].count +=
          rm.phase[static_cast<std::size_t>(p)].count;
      m.total[static_cast<std::size_t>(p)].bytes +=
          rm.phase[static_cast<std::size_t>(p)].bytes;
      m.total[static_cast<std::size_t>(p)].ctr +=
          rm.phase[static_cast<std::size_t>(p)].ctr;
    }
    m.ranks.push_back(rm);
  }
  if (g_max > g_min)
    m.wall_seconds = static_cast<double>(g_max - g_min) / 1e9;
  m.steps = max_step + 1;
  m.events = EventCounters::global().snapshot();
  return m;
}

void write_metrics_csv(const MetricsSummary& m, std::ostream& out,
                       const RunManifest& manifest) {
  manifest.write_csv_comments(out);
  write_metrics_csv(m, out);
}

namespace {

/// One rank×phase (or TOTAL×phase) CSV row, counter columns included.
void csv_phase_row(std::ostream& out, const char* rank_label,
                   Phase p, const PhaseMetrics& pm) {
  char buf[288];
  std::snprintf(buf, sizeof buf,
                "%s,%s,%.9f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                rank_label, phase_name(p), pm.seconds, pm.count, pm.bytes,
                pm.ctr.cycles, pm.ctr.instructions, pm.ctr.cache_refs,
                pm.ctr.cache_misses, pm.ctr.hw_flops, pm.ctr.flops);
  out << buf;
}

}  // namespace

void write_metrics_csv(const MetricsSummary& m, std::ostream& out) {
  out << "rank,phase,seconds,count,bytes,cycles,instructions,cache_refs,"
         "cache_misses,hw_flops,flops\n";
  char buf[160];
  char rank_label[16];
  for (const RankMetrics& rm : m.ranks) {
    std::snprintf(rank_label, sizeof rank_label, "%d", rm.rank);
    for (int p = 0; p < kNumPhases; ++p) {
      const PhaseMetrics& pm = rm.phase[static_cast<std::size_t>(p)];
      if (pm.count == 0) continue;
      csv_phase_row(out, rank_label, static_cast<Phase>(p), pm);
    }
  }
  for (int p = 0; p < kNumPhases; ++p) {
    const PhaseMetrics& pm = m.total[static_cast<std::size_t>(p)];
    if (pm.count == 0) continue;
    csv_phase_row(out, "TOTAL", static_cast<Phase>(p), pm);
  }
  for (int e = 0; e < kNumEvents; ++e) {
    const std::uint64_t n = m.events[static_cast<std::size_t>(e)];
    if (n == 0) continue;
    std::snprintf(buf, sizeof buf, "EVENT,%s,0,%" PRIu64 ",0,0,0,0,0,0,0\n",
                  event_name(static_cast<Event>(e)), n);
    out << buf;
  }
}

namespace {

void json_phases(const std::array<PhaseMetrics, kNumPhases>& phases,
                 std::ostream& out) {
  out << "{";
  bool first = true;
  char buf[288];
  for (int p = 0; p < kNumPhases; ++p) {
    const PhaseMetrics& pm = phases[static_cast<std::size_t>(p)];
    if (pm.count == 0) continue;
    if (!first) out << ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"seconds\":%.9f,\"count\":%" PRIu64
                  ",\"bytes\":%" PRIu64,
                  phase_name(static_cast<Phase>(p)), pm.seconds, pm.count,
                  pm.bytes);
    out << buf;
    // Counter block only when sampling actually happened: exports from
    // counter-less runs stay byte-compatible with the previous schema.
    if (pm.ctr.any()) {
      std::snprintf(buf, sizeof buf,
                    ",\"cycles\":%" PRIu64 ",\"instructions\":%" PRIu64
                    ",\"cache_refs\":%" PRIu64 ",\"cache_misses\":%" PRIu64
                    ",\"hw_flops\":%" PRIu64 ",\"flops\":%" PRIu64,
                    pm.ctr.cycles, pm.ctr.instructions, pm.ctr.cache_refs,
                    pm.ctr.cache_misses, pm.ctr.hw_flops, pm.ctr.flops);
      out << buf;
    }
    out << "}";
  }
  out << "}";
}

/// Everything after the "total" phases object: events + per-rank array.
void write_metrics_json_tail(const MetricsSummary& m, std::ostream& out) {
  char buf[224];
  out << ",\"events\":{";
  {
    bool first = true;
    for (int e = 0; e < kNumEvents; ++e) {
      const std::uint64_t n = m.events[static_cast<std::size_t>(e)];
      if (n == 0) continue;
      if (!first) out << ",";
      first = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64,
                    event_name(static_cast<Event>(e)), n);
      out << buf;
    }
  }
  out << "},\"ranks\":[";
  bool first = true;
  for (const RankMetrics& rm : m.ranks) {
    if (!first) out << ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"rank\":%d,\"span_seconds\":%.9f,\"phases\":", rm.rank,
                  rm.span_seconds);
    out << buf;
    json_phases(rm.phase, out);
    out << "}";
  }
  out << "]}\n";
}

}  // namespace

void write_metrics_json(const MetricsSummary& m, std::ostream& out,
                        const RunManifest& manifest) {
  out << "{\"manifest\":";
  manifest.write_json(out);
  out << ",";
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "\"steps\":%" PRId64 ",\"wall_seconds\":%.9f,"
                "\"traffic\":{\"messages\":%" PRIu64 ",\"bytes\":%" PRIu64
                "},\"total\":",
                m.steps, m.wall_seconds, m.traffic.messages, m.traffic.bytes);
  out << buf;
  json_phases(m.total, out);
  write_metrics_json_tail(m, out);
}

void write_metrics_json(const MetricsSummary& m, std::ostream& out) {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"steps\":%" PRId64 ",\"wall_seconds\":%.9f,"
                "\"traffic\":{\"messages\":%" PRIu64 ",\"bytes\":%" PRIu64
                "},\"total\":",
                m.steps, m.wall_seconds, m.traffic.messages, m.traffic.bytes);
  out << buf;
  json_phases(m.total, out);
  write_metrics_json_tail(m, out);
}

std::string metrics_csv(const MetricsSummary& m) {
  std::ostringstream os;
  write_metrics_csv(m, os);
  return os.str();
}

std::string metrics_json(const MetricsSummary& m) {
  std::ostringstream os;
  write_metrics_json(m, os);
  return os.str();
}

}  // namespace yy::obs

#include "obs/trace.hpp"

#include <algorithm>

namespace yy::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::rhs: return "rhs";
    case Phase::rk4_stage: return "rk4_stage";
    case Phase::halo_wait: return "halo_wait";
    case Phase::overset_wait: return "overset_wait";
    case Phase::boundary: return "boundary";
    case Phase::reduce: return "reduce";
    case Phase::io: return "io";
    case Phase::other: return "other";
  }
  return "?";
}

std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

RankTrace& TraceRecorder::rank_trace(int rank) {
  std::lock_guard lock(mu_);
  for (RankTrace& t : ranks_)
    if (t.rank() == rank) return t;
  ranks_.push_back(RankTrace(rank));
  return ranks_.back();
}

std::vector<const RankTrace*> TraceRecorder::traces() const {
  std::lock_guard lock(mu_);
  std::vector<const RankTrace*> out;
  out.reserve(ranks_.size());
  for (const RankTrace& t : ranks_) out.push_back(&t);
  std::sort(out.begin(), out.end(),
            [](const RankTrace* a, const RankTrace* b) {
              return a->rank() < b->rank();
            });
  return out;
}

namespace detail {

namespace {
thread_local RankTrace* tls_trace = nullptr;
}  // namespace

RankTrace* current_trace() { return tls_trace; }
void set_current_trace(RankTrace* t) { tls_trace = t; }

}  // namespace detail

}  // namespace yy::obs

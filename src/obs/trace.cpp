#include "obs/trace.hpp"

#include <algorithm>
#include <iterator>

namespace yy::obs {

namespace {

// Indexed by Phase; the static_assert pins the table to the enum so a
// new phase cannot compile without a name (see kNumPhases assert in
// trace.hpp for the matching count-side pin).
constexpr const char* kPhaseNames[] = {
    "rhs",      "rk4_stage",    "halo_wait",    "overset_wait",
    "boundary", "reduce",       "io",           "halo_overlap",
    "interior_rhs", "rim_rhs",  "shrink",       "buddy_restore",
    "sdc_audit", "scrub",       "other",
};
static_assert(std::size(kPhaseNames) == static_cast<std::size_t>(kNumPhases),
              "phase_name table and kNumPhases are out of sync");

}  // namespace

const char* phase_name(Phase p) {
  const int i = static_cast<int>(p);
  return i >= 0 && i < kNumPhases ? kPhaseNames[i] : "?";
}

void RankTrace::evict_oldest() {
  // Bulk-evict a quarter of the budget so the O(n) front erase is paid
  // once per budget/4 records, not on every one.
  const std::size_t n =
      std::min(std::max<std::size_t>(budget_ / 4, 1), spans_.size());
  spans_.erase(spans_.begin(), spans_.begin() + static_cast<std::ptrdiff_t>(n));
  evicted_ += n;
}

std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

RankTrace& TraceRecorder::rank_trace(int rank) {
  std::lock_guard lock(mu_);
  for (RankTrace& t : ranks_)
    if (t.rank() == rank) return t;
  ranks_.push_back(RankTrace(rank));
  return ranks_.back();
}

std::vector<const RankTrace*> TraceRecorder::traces() const {
  std::lock_guard lock(mu_);
  std::vector<const RankTrace*> out;
  out.reserve(ranks_.size());
  for (const RankTrace& t : ranks_) out.push_back(&t);
  std::sort(out.begin(), out.end(),
            [](const RankTrace* a, const RankTrace* b) {
              return a->rank() < b->rank();
            });
  return out;
}

namespace detail {

namespace {
thread_local RankTrace* tls_trace = nullptr;
}  // namespace

RankTrace* current_trace() { return tls_trace; }
void set_current_trace(RankTrace* t) { tls_trace = t; }

}  // namespace detail

}  // namespace yy::obs

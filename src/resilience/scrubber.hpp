/// \file scrubber.hpp
/// Background scrubbing of diskless buddy replicas.
///
/// A buddy replica is CRC-validated once, at the refresh that ships it
/// — after that it sits in memory for a whole checkpoint cadence, and
/// on large machines that is exactly where bit rot accumulates.  The
/// scrubber re-runs the full CRC/identity validation over the held
/// replica on its own cadence and, on a mismatch, re-fetches a fresh
/// copy from the partner (which still holds the authoritative image)
/// via BuddyStore::repair_ward — so a rotten replica is healed in the
/// background instead of being discovered at restore time, when the
/// original may already be gone with its rank.
#pragma once

#include "comm/communicator.hpp"
#include "resilience/buddy_store.hpp"

namespace yy::resilience {

struct ScrubPolicy {
  /// Scrub cadence in accepted steps; 0 disables scrubbing.
  long long interval = 0;
  /// Deadline for the scrub-round receives (<= 0 = fabric default).
  int deadline_ms = 0;
};

class ReplicaScrubber {
 public:
  explicit ReplicaScrubber(ScrubPolicy policy) : policy_(policy) {}

  bool enabled() const { return policy_.interval > 0; }
  bool due(long long step) const {
    return enabled() && step > 0 && step % policy_.interval == 0;
  }

  /// Collective: one scrub generation over the store.  All ranks of
  /// `world` must call together (the guard inside — store armed with a
  /// non-empty own image — is uniform across ranks after a collective
  /// refresh).  Returns this rank's local verdict: replica valid after
  /// the round.
  bool scrub(BuddyStore& store, const comm::Communicator& world);

  std::uint64_t rounds() const { return rounds_; }

 private:
  ScrubPolicy policy_;
  std::uint64_t rounds_ = 0;
};

}  // namespace yy::resilience

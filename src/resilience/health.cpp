#include "resilience/health.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace yy::resilience {

namespace {

// Severity codes fed to allreduce-max; higher = worse.
constexpr double kHealthy = 0.0;
constexpr double kCfl = 1.0;
constexpr double kDenormal = 2.0;
constexpr double kBlowup = 3.0;
constexpr double kNonfinite = 4.0;

}  // namespace

const char* verdict_name(HealthVerdict v) {
  switch (v) {
    case HealthVerdict::healthy: return "healthy";
    case HealthVerdict::cfl_collapse: return "cfl_collapse";
    case HealthVerdict::denormal_flood: return "denormal_flood";
    case HealthVerdict::blowup: return "blowup";
    case HealthVerdict::nonfinite: return "nonfinite";
  }
  return "?";
}

HealthMonitor::HealthMonitor(HealthPolicy policy) : policy_(policy) {
  YY_REQUIRE(policy_.check_interval >= 1);
  YY_REQUIRE(policy_.blowup_threshold > 0.0);
}

bool HealthMonitor::due(long long step) const {
  return step > 0 && step % policy_.check_interval == 0;
}

HealthVerdict HealthMonitor::check(const core::DistributedSolver& s,
                                   double dt) const {
  double code = kHealthy;
  if (policy_.min_dt > 0.0 && dt < policy_.min_dt) code = kCfl;
  for (const Field3* fld : s.local_state().all()) {
    long long denormals = 0;
    for (double v : fld->flat()) {
      if (!std::isfinite(v)) {  // catches NaN and ±Inf alike
        code = kNonfinite;
        break;
      }
      const double m = std::fabs(v);
      if (m > policy_.blowup_threshold && code < kBlowup) code = kBlowup;
      if (v != 0.0 && m < std::numeric_limits<double>::min()) ++denormals;
    }
    if (code == kNonfinite) break;
    if (policy_.denormal_flood_fraction > 0.0 && code < kDenormal &&
        static_cast<double>(denormals) >
            policy_.denormal_flood_fraction *
                static_cast<double>(fld->size()))
      code = kDenormal;
  }
  {
    YY_TRACE_SCOPE(obs::Phase::reduce);
    // The verdict must not outlive its peers: bound the collective so a
    // failed rank turns into a timeout the recovery tier can act on.
    code = s.runner().world().allreduce_max(code,
                                            policy_.verdict_deadline_ms);
  }

  const comm::Communicator& world = s.runner().world();
  if (world.rank() == 0) {
    obs::count_event(obs::Event::health_check);
    if (code >= kNonfinite)
      obs::count_event(obs::Event::health_nonfinite);
    else if (code >= kBlowup)
      obs::count_event(obs::Event::health_blowup);
    else if (code >= kDenormal)
      obs::count_event(obs::Event::health_denormal);
    else if (code >= kCfl)
      obs::count_event(obs::Event::health_cfl_collapse);
  }
  if (code >= kNonfinite) return HealthVerdict::nonfinite;
  if (code >= kBlowup) return HealthVerdict::blowup;
  if (code >= kDenormal) return HealthVerdict::denormal_flood;
  if (code >= kCfl) return HealthVerdict::cfl_collapse;
  return HealthVerdict::healthy;
}

}  // namespace yy::resilience

/// \file health.hpp
/// Solver health monitoring: periodic NaN/Inf and blow-up scans with a
/// collective verdict.
///
/// The scan is local (every rank sweeps its own eight full arrays) and
/// the verdict is made collective with a single allreduce-max over a
/// severity code, so all ranks agree on the outcome and can react in
/// lockstep — the property the ResilientRunner's rewind protocol
/// depends on.  Verdicts are reported through the obs event counters
/// and thus show up in yy_metrics output.
#pragma once

#include "core/distributed_solver.hpp"

namespace yy::resilience {

struct HealthPolicy {
  int check_interval = 5;          ///< scan every N steps (>= 1)
  double blowup_threshold = 1e6;   ///< max |field| before "blow-up"
  double min_dt = 0.0;             ///< dt below this = CFL collapse (0 = off)
  /// A field whose nonzero-denormal share exceeds this fraction is a
  /// flood: physically meaningless magnitudes that also fall off any
  /// hardware fast path.  <= 0 disables the probe.
  double denormal_flood_fraction = 0.05;
  /// Deadline for the verdict collective's internal receives (ms).  A
  /// dead or hung peer then surfaces as a comm timeout on every rank
  /// instead of wedging the health sweep forever (<= 0 = fabric
  /// default).  The ResilientRunner propagates its take deadline here.
  int verdict_deadline_ms = 0;
};

enum class HealthVerdict {
  healthy,
  cfl_collapse,    ///< timestep fell below policy.min_dt
  denormal_flood,  ///< a field drowned in subnormal magnitudes
  blowup,          ///< finite but beyond policy.blowup_threshold
  nonfinite,       ///< NaN or ±Inf somewhere in the state
};

const char* verdict_name(HealthVerdict v);

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthPolicy policy);

  /// True when `step` is a scan step under the policy interval.
  bool due(long long step) const;

  /// Collective over the solver's world: local scan + allreduce-max of
  /// the severity code.  `dt` is the timestep about to be used (checked
  /// against policy.min_dt).  Every rank returns the same verdict.
  HealthVerdict check(const core::DistributedSolver& s, double dt) const;

 private:
  HealthPolicy policy_;
};

}  // namespace yy::resilience

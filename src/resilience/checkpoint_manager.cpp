#include "resilience/checkpoint_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "comm/fault.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace yy::resilience {

namespace fs = std::filesystem;

CheckpointManager::CheckpointManager(Options opt) : opt_(std::move(opt)) {
  YY_REQUIRE(!opt_.dir.empty());
  YY_REQUIRE(opt_.keep_last >= 1);
  std::error_code ec;
  fs::create_directories(opt_.dir, ec);

  // Crash hygiene: a death between temp-write and atomic rename leaves
  // a `<basename>.*.tmp` orphan that no manifest references and no
  // rotation ever reclaims.  Sweep them at startup; committed sets are
  // untouched and a concurrently-sweeping sibling rank losing the
  // remove race is fine (only the winner counts the event).
  const std::string prefix = opt_.basename + ".";
  const auto end = fs::directory_iterator{};
  for (auto it = fs::directory_iterator(opt_.dir, ec);
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (!name.ends_with(".tmp") || name.rfind(prefix, 0) != 0) continue;
    std::error_code rm_ec;
    if (fs::remove(it->path(), rm_ec) && !rm_ec)
      obs::count_event(obs::Event::stale_tmp_swept);
  }
}

std::string CheckpointManager::patch_path(long long step,
                                          int world_rank) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s.step%lld.r%d.yyc2", opt_.basename.c_str(),
                step, world_rank);
  return (fs::path(opt_.dir) / buf).string();
}

std::string CheckpointManager::manifest_path(long long step) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s.step%lld.manifest",
                opt_.basename.c_str(), step);
  return (fs::path(opt_.dir) / buf).string();
}

CheckpointMetaV2 CheckpointManager::meta_for(const core::DistributedSolver& s,
                                             double dt) const {
  const Field3& a = *s.local_state().all()[0];
  CheckpointMetaV2 m;
  m.nr = a.nr();
  m.nt = a.nt();
  m.np = a.np();
  m.panels = 1;  // one patch file per rank
  m.time = s.time();
  m.step = s.steps_taken();
  m.dt = dt;
  m.world_size = s.runner().world().size();
  m.world_rank = s.runner().world().rank();
  m.pt = s.runner().pt();
  m.pp = s.runner().pp();
  m.panel = static_cast<int>(s.runner().panel());
  return m;
}

void CheckpointManager::write_manifest(const core::DistributedSolver& s,
                                       long long step, double dt) const {
  // Human-readable set description, CRC-sealed and committed atomically
  // like the patches.
  std::string body;
  char line[160];
  std::snprintf(line, sizeof line,
                "yycore-checkpoint-manifest v1\nstep %lld\ntime %.17g\n"
                "dt %.17g\nworld %d\npt %d\npp %d\n",
                step, s.time(), dt, s.runner().world().size(),
                s.runner().pt(), s.runner().pp());
  body += line;
  for (int r = 0; r < s.runner().world().size(); ++r) {
    std::snprintf(line, sizeof line, "patch %s\n",
                  fs::path(patch_path(step, r)).filename().string().c_str());
    body += line;
  }
  char tail[32];
  std::snprintf(tail, sizeof tail, "crc %08x\n",
                crc32(body.data(), body.size()));
  const std::string path = manifest_path(step);
  const std::string tmp = path + ".tmp";
  if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
        std::fwrite(tail, 1, std::strlen(tail), f) == std::strlen(tail);
    std::fclose(f);
    if (ok) std::rename(tmp.c_str(), path.c_str());
  }
}

bool CheckpointManager::save(core::DistributedSolver& s, double dt,
                             comm::FaultPlan* faults) {
  YY_TRACE_SCOPE(obs::Phase::io);
  const comm::Communicator& world = s.runner().world();
  const long long step = s.steps_taken();
  const CheckpointMetaV2 meta = meta_for(s, dt);

  IoFaultSim sim = IoFaultSim::none;
  if (faults != nullptr) {
    switch (faults->take_io_fault(step, world.rank())) {
      case comm::FaultPlan::IoFault::none: break;
      case comm::FaultPlan::IoFault::fail:
        sim = IoFaultSim::fail_before_commit;
        break;
      case comm::FaultPlan::IoFault::torn:
        sim = IoFaultSim::torn_commit;
        break;
    }
  }

  const bool local_ok = save_checkpoint_v2(patch_path(step, world.rank()),
                                           meta, &s.local_state(), nullptr,
                                           sim);
  const bool all_ok = world.allreduce_min(local_ok ? 1.0 : 0.0) > 0.5;
  if (!all_ok) {
    // Discard the half-written set everywhere; older sets stay usable.
    std::error_code ec;
    fs::remove(patch_path(step, world.rank()), ec);
    if (world.rank() == 0)
      obs::count_event(obs::Event::checkpoint_save_failed);
    return false;
  }
  if (world.rank() == 0) {
    write_manifest(s, step, dt);
    obs::count_event(obs::Event::checkpoint_saved);
  }
  if (steps_.empty() || steps_.back() != step) steps_.push_back(step);
  while (static_cast<int>(steps_.size()) > opt_.keep_last) {
    remove_set(s, steps_.front());
    steps_.erase(steps_.begin());
  }
  return true;
}

void CheckpointManager::remove_set(const core::DistributedSolver& s,
                                   long long step) const {
  std::error_code ec;
  fs::remove(patch_path(step, s.runner().world().rank()), ec);
  if (s.runner().world().rank() == 0) fs::remove(manifest_path(step), ec);
}

std::vector<long long> CheckpointManager::discover_steps(
    const core::DistributedSolver& s) const {
  std::vector<long long> steps;
  char pattern[64];
  std::snprintf(pattern, sizeof pattern, "%s.step%%lld.r%d.yyc2",
                opt_.basename.c_str(), s.runner().world().rank());
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt_.dir, ec)) {
    long long step = 0;
    if (std::sscanf(entry.path().filename().string().c_str(), pattern,
                    &step) == 1)
      steps.push_back(step);
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

bool CheckpointManager::validate_patch(const core::DistributedSolver& s,
                                       long long step, mhd::Fields& scratch,
                                       CheckpointMetaV2& meta) const {
  const comm::Communicator& world = s.runner().world();
  const LoadStatus st = load_checkpoint_v2(
      patch_path(step, world.rank()), meta, &scratch, nullptr);
  if (st != LoadStatus::ok) {
    obs::count_event(obs::Event::checkpoint_rejected);
    return false;
  }
  // The file must describe *this* rank of *this* run layout.
  return meta.step == step && meta.world_size == world.size() &&
         meta.world_rank == world.rank() && meta.pt == s.runner().pt() &&
         meta.pp == s.runner().pp() &&
         meta.panel == static_cast<int>(s.runner().panel());
}

long long CheckpointManager::restore_newest(core::DistributedSolver& s,
                                            double* dt_out) {
  YY_TRACE_SCOPE(obs::Phase::io);
  const comm::Communicator& world = s.runner().world();
  std::vector<long long> candidates =
      steps_.empty() ? discover_steps(s) : steps_;
  mhd::Fields scratch(s.local_grid());

  // Collectively walk candidate sets newest-first.  Each round the
  // ranks propose their newest untried step; everyone validates the
  // globally newest proposal and the set is used only if every rank's
  // patch passed (allreduce_min).
  for (;;) {
    const long long propose = static_cast<long long>(world.allreduce_max(
        candidates.empty() ? -1.0
                           : static_cast<double>(candidates.back())));
    if (propose < 0) return -1;
    while (!candidates.empty() && candidates.back() >= propose)
      candidates.pop_back();
    CheckpointMetaV2 meta;
    const bool ok = validate_patch(s, propose, scratch, meta);
    if (world.allreduce_min(ok ? 1.0 : 0.0) > 0.5) {
      s.restore_state(scratch, meta.time, meta.step);
      if (dt_out != nullptr) *dt_out = meta.dt;
      if (world.rank() == 0) obs::count_event(obs::Event::restart_loaded);
      return propose;
    }
  }
}

bool CheckpointManager::load_step(core::DistributedSolver& s, long long step,
                                  double* dt_out) {
  YY_TRACE_SCOPE(obs::Phase::io);
  const comm::Communicator& world = s.runner().world();
  mhd::Fields scratch(s.local_grid());
  CheckpointMetaV2 meta;
  const bool ok = validate_patch(s, step, scratch, meta);
  if (world.allreduce_min(ok ? 1.0 : 0.0) < 0.5) return false;
  s.restore_state(scratch, meta.time, meta.step);
  if (dt_out != nullptr) *dt_out = meta.dt;
  if (world.rank() == 0) obs::count_event(obs::Event::restart_loaded);
  return true;
}

}  // namespace yy::resilience

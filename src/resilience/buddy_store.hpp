/// \file buddy_store.hpp
/// Diskless buddy checkpoints: every rank keeps its own latest
/// validated YYCORE02 patch image in memory plus a CRC-verified replica
/// of one buddy's image, paired on a ring (rank r's replica lives on
/// rank (r+1) % world_size).  When a rank dies, the survivors can
/// restore its patch from the buddy's replica without touching the
/// filesystem — the store is refreshed piggyback on the
/// CheckpointManager cadence, so a replica is never older than the
/// newest on-disk set.
///
/// Replication rides the ordinary message fabric (tags 410/411 on the
/// world communicator) and reuses the exact on-disk encoding
/// (encode_checkpoint_v2), so a replica is validated with the same
/// CRC/shape machinery as a file — a torn or bit-flipped replica is
/// rejected and the previously validated one is retained.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/communicator.hpp"
#include "core/distributed_solver.hpp"
#include "resilience/checkpoint2.hpp"

namespace yy::resilience {

class BuddyStore {
 public:
  /// The rank holding `rank`'s replica (ring pairing).
  static int holder_of(int rank, int world_size) {
    return (rank + 1) % world_size;
  }
  /// The rank whose replica `rank` holds.
  static int ward_of(int rank, int world_size) {
    return (rank - 1 + world_size) % world_size;
  }

  /// Collective over the solver's world: encodes this rank's current
  /// state as a YYCORE02 image, ships it to its holder and validates
  /// the image received from its ward (full CRC + identity check).
  /// Returns this rank's local verdict; on a failed validation the
  /// previously validated replica is kept.  `deadline_ms` bounds the
  /// replica receive (<= 0 = fabric default).
  bool refresh(core::DistributedSolver& s, double dt, int deadline_ms = 0);

  /// True once refresh() succeeded: both own image and (when the world
  /// has more than one rank) the ward's replica are validated.
  bool armed() const { return armed_; }

  /// Identity of the snapshots currently held (valid when armed()).
  long long snapshot_step() const { return own_meta_.step; }
  double snapshot_time() const { return own_meta_.time; }
  double snapshot_dt() const { return own_meta_.dt; }

  /// Whether load(w) can succeed here: w is this rank (own image held)
  /// or its ward (replica validated at the same snapshot step).  Does
  /// not require armed() — a rank whose incoming replica failed
  /// validation can still serve its own patch.
  bool can_serve(int w) const;

  /// Decodes old world rank `w`'s snapshot into `out` (must be shaped
  /// as w's patch full arrays).  False when not served here or the
  /// image fails validation.
  bool load(int w, mhd::Fields& out) const;

  /// Full local verdict on a held image: CRC/structural sweep plus the
  /// identity check (right rank, current snapshot step).  Unlike
  /// can_serve(), this re-reads every byte — it is what the scrubber
  /// and the SDC restore tier use to notice rot *after* adoption.
  bool validate(int w) const;

  /// Collective scrub round over the solver's world (tags 414-416):
  /// re-validates my ward's replica and, on a failed verdict,
  /// re-fetches a fresh copy from the ward (which still holds the
  /// authoritative own image) instead of discovering the rot at
  /// restore time.  Also heals a replica whose original refresh was
  /// rejected.  Every rank with a non-empty own image after a refresh
  /// must participate.  Returns true when my ward replica is valid
  /// after the round (or there is no buddy to hold one for).
  bool repair_ward(const comm::Communicator& world, int deadline_ms = 0);

  /// Collective restore round (tags 417-419): validates my own image
  /// and, when it fails, re-fetches my replica from my holder; then
  /// decodes the image into `out` (shaped as my patch full arrays).
  /// Returns false when my patch cannot be served validated.
  bool restore_own(mhd::Fields& out, const comm::Communicator& world,
                   int deadline_ms = 0);

  /// Fault-injection hook (comm::FaultPlan replica-rot schedule): XORs
  /// `mask` into one payload byte of the image held for rank `w` (this
  /// rank or its ward).  No-op when no such image is held.
  void corrupt_image(int w, unsigned char mask = 0x01);

  /// Drops everything (ring identities change after a shrink; the
  /// store must be reset and refreshed on the new world).
  void reset();

 private:
  int my_rank_ = -1;
  int ward_rank_ = -1;
  std::vector<unsigned char> own_;   ///< my own latest validated image
  std::vector<unsigned char> ward_;  ///< my ward's validated replica
  CheckpointMetaV2 own_meta_, ward_meta_;
  bool armed_ = false;
};

}  // namespace yy::resilience

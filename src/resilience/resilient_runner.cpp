#include "resilience/resilient_runner.hpp"

#include <utility>

#include "comm/fault.hpp"
#include "common/error.hpp"
#include "obs/events.hpp"

namespace yy::resilience {

namespace {

/// Restores the fabric receive deadline on every exit path.
struct DeadlineGuard {
  const comm::Communicator& world;
  int prev;
  ~DeadlineGuard() { world.set_take_deadline_ms(prev); }
};

}  // namespace

ResilientRunner::ResilientRunner(core::DistributedSolver& solver,
                                 RunPolicy policy)
    : solver_(solver),
      policy_(std::move(policy)),
      ckpt_(policy_.store),
      health_(policy_.health) {
  YY_REQUIRE(policy_.checkpoint_interval >= 1);
  YY_REQUIRE(policy_.max_recoveries >= 0);
  YY_REQUIRE(policy_.dt_backoff > 0.0 && policy_.dt_backoff <= 1.0);
}

RunReport ResilientRunner::fail(RunReport r, const std::string& why) {
  r.completed = false;
  r.failure = why;
  r.final_step = solver_.steps_taken();
  if (solver_.runner().world().rank() == 0)
    obs::count_event(obs::Event::run_failed);
  return r;
}

bool ResilientRunner::recover(RunReport& r, double& dt, bool blowup_local) {
  const comm::Communicator& world = solver_.runner().world();
  try {
    // Park every fabric rank, purge all in-flight traffic, release
    // together.  A positive deadline keeps a wedged peer from turning
    // recovery itself into a hang.
    world.recovery_rendezvous(
        policy_.take_deadline_ms > 0 ? policy_.take_deadline_ms * 10 : 0);
    ++r.recoveries;
    if (r.recoveries > policy_.max_recoveries) return false;

    // The rendezvous is collective, so every rank reaches this point
    // and the verdicts below are symmetric across ranks.
    if (world.allreduce_max(blowup_local ? 1.0 : 0.0) > 0.5) {
      dt *= policy_.dt_backoff;
      if (world.rank() == 0) obs::count_event(obs::Event::dt_backoff);
    }
    if (ckpt_.restore_newest(solver_) < 0) solver_.initialize();
    if (world.rank() == 0) obs::count_event(obs::Event::recovery_rewind);
    return true;
  } catch (const Error&) {
    // Recovery traffic itself failed (e.g. a persistent fault): give up
    // cleanly.  The deadlines bound every peer's wait, so all ranks
    // reach the same conclusion instead of hanging.
    return false;
  }
}

RunReport ResilientRunner::run(long long target_steps, double dt) {
  const comm::Communicator& world = solver_.runner().world();
  DeadlineGuard guard{world, world.take_deadline_ms()};
  if (policy_.take_deadline_ms > 0)
    world.set_take_deadline_ms(policy_.take_deadline_ms);

  RunReport r;
  while (solver_.steps_taken() < target_steps) {
    r.final_dt = dt;
    bool blowup_local = false;
    try {
      // Advance the fault clock so min_step-gated rules arm exactly at
      // the step whose communication they should hit.
      if (comm::FaultPlan* plan = world.fault_plan())
        plan->note_step(solver_.steps_taken() + 1);

      solver_.step(dt);
      const long long step = solver_.steps_taken();

      if (health_.due(step)) {
        const HealthVerdict v = health_.check(solver_, dt);
        if (v == HealthVerdict::cfl_collapse)  // collective verdict:
          return fail(std::move(r),            // every rank fails alike
                      "timestep collapsed below the policy minimum");
        if (v != HealthVerdict::healthy) {
          blowup_local = true;
          throw Error(Error::Kind::numeric,
                      std::string("solver health check failed: ") +
                          verdict_name(v));
        }
      }
      if (step % policy_.checkpoint_interval == 0 || step == target_steps)
        if (ckpt_.save(solver_, dt, world.fault_plan()))
          ++r.checkpoints_saved;
    } catch (const Error& e) {
      if (e.kind() == Error::Kind::timeout)
        obs::count_event(obs::Event::comm_timeout);
      else if (e.kind() == Error::Kind::corruption)
        obs::count_event(obs::Event::comm_corruption);
      if (!recover(r, dt, blowup_local))
        return fail(std::move(r),
                    std::string("unrecoverable after ") +
                        std::to_string(r.recoveries) +
                        " recoveries: " + e.what());
    }
  }
  r.completed = true;
  r.final_step = solver_.steps_taken();
  r.final_dt = dt;
  return r;
}

}  // namespace yy::resilience

#include "resilience/resilient_runner.hpp"

#include <algorithm>
#include <utility>

#include "comm/fault.hpp"
#include "common/error.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace yy::resilience {

namespace {

/// Restores the fabric receive deadline on every exit path.  Holds the
/// communicator by value: a shrink recovery replaces the solver's
/// runner (and with it the communicator the guard was built from), but
/// the copied handle keeps addressing the shared fabric.
struct DeadlineGuard {
  comm::Communicator world;
  int prev;
  ~DeadlineGuard() { world.set_take_deadline_ms(prev); }
};

/// An unset health-verdict deadline inherits the runner's take
/// deadline, so the verdict collective can never outwait a dead peer.
RunPolicy with_inherited_deadlines(RunPolicy p) {
  if (p.health.verdict_deadline_ms <= 0)
    p.health.verdict_deadline_ms = p.take_deadline_ms;
  if (p.sdc.verdict_deadline_ms <= 0)
    p.sdc.verdict_deadline_ms = p.take_deadline_ms;
  return p;
}

/// Applies one scheduled in-memory bit flip to the resident state.
/// Indices are taken modulo the live shapes so a plan written for one
/// layout stays applicable after a shrink.
void apply_bitflip(mhd::Fields& st, const comm::FaultPlan::ComputeFault& f) {
  const int nf = mhd::Fields::kNumFields;
  Field3& fld = *st.all()[static_cast<std::size_t>(((f.field % nf) + nf) % nf)];
  const std::span<double> flat = fld.flat();
  if (flat.empty()) return;
  double& v = flat[static_cast<std::size_t>(f.elem < 0 ? -f.elem : f.elem) %
                   flat.size()];
  auto* bytes = reinterpret_cast<unsigned char*>(&v);
  bytes[((f.byte % 8) + 8) % 8] ^= f.mask;
}

}  // namespace

ResilientRunner::ResilientRunner(core::DistributedSolver& solver,
                                 RunPolicy policy)
    : solver_(solver),
      policy_(with_inherited_deadlines(std::move(policy))),
      ckpt_(policy_.store),
      health_(policy_.health),
      auditor_(policy_.sdc),
      scrubber_(ScrubPolicy{policy_.scrub_interval, policy_.take_deadline_ms}) {
  YY_REQUIRE(policy_.checkpoint_interval >= 1);
  YY_REQUIRE(policy_.max_recoveries >= 0);
  YY_REQUIRE(policy_.dt_backoff > 0.0 && policy_.dt_backoff <= 1.0);
  YY_REQUIRE(policy_.max_shrinks >= 0);
  YY_REQUIRE(policy_.dt_growth >= 1.0);
  YY_REQUIRE(policy_.dt_ramp_fraction > 0.0 &&
             policy_.dt_ramp_fraction <= 1.0);
  YY_REQUIRE(policy_.sdc.audit_interval >= 0);
  YY_REQUIRE(policy_.sdc.slabs_per_field >= 1);
  YY_REQUIRE(policy_.scrub_interval >= 0);
  YY_REQUIRE(policy_.max_sdc_restores >= 0);
}

RunReport ResilientRunner::fail(RunReport r, const std::string& why) {
  r.completed = false;
  r.failure = why;
  r.final_step = solver_.steps_taken();
  r.final_world_size = solver_.runner().world().size();
  if (solver_.runner().world().rank() == 0)
    obs::count_event(obs::Event::run_failed);
  return r;
}

bool ResilientRunner::recover(RunReport& r, double& dt, bool blowup_local) {
  try {
    const comm::Communicator world = solver_.runner().world();
    // Park every live fabric rank, purge all in-flight traffic, release
    // together.  A positive deadline keeps a wedged peer from turning
    // recovery itself into a hang.
    world.recovery_rendezvous(
        policy_.take_deadline_ms > 0 ? policy_.take_deadline_ms * 10 : 0);

    // Two tiers: a retired peer cannot be rewound around — the
    // survivors must shrink; everything else rewinds and retries.
    if (!world.retired_ranks().empty())
      return recover_from_rank_death(r, dt);

    ++r.recoveries;
    if (r.recoveries > policy_.max_recoveries) return false;

    // The rendezvous is collective, so every rank reaches this point
    // and the verdicts below are symmetric across ranks.
    if (world.allreduce_max(blowup_local ? 1.0 : 0.0) > 0.5) {
      dt *= policy_.dt_backoff;
      dt_reduced_ = true;
      if (world.rank() == 0) obs::count_event(obs::Event::dt_backoff);
    }
    if (ckpt_.restore_newest(solver_) < 0) solver_.initialize();
    // The state jumped trajectories: stale audit references would read
    // as corruption on the rewound run.
    auditor_.disarm();
    auditor_.refresh(solver_);
    if (world.rank() == 0) obs::count_event(obs::Event::recovery_rewind);
    // The buddy ring must snapshot the rewound trajectory: a stale
    // replica would restore a state the run never reaches again.
    if (policy_.buddy_checkpoints)
      buddy_.refresh(solver_, dt, policy_.take_deadline_ms);
    return true;
  } catch (const Error&) {
    // Recovery traffic itself failed (e.g. a persistent fault): give up
    // cleanly.  The deadlines bound every peer's wait, so all ranks
    // reach the same conclusion instead of hanging.
    return false;
  }
}

bool ResilientRunner::recover_from_rank_death(RunReport& r, double& dt) {
  // By value: rebuild() swaps the runner and would dangle a reference.
  const comm::Communicator world = solver_.runner().world();
  const int dl = policy_.take_deadline_ms > 0 ? policy_.take_deadline_ms : 0;

  ++r.shrinks;
  if (!policy_.buddy_checkpoints || r.shrinks > policy_.max_shrinks)
    return false;

  const std::vector<int> dead = world.retired_ranks();
  std::vector<int> survivors;
  for (int c = 0; c < world.size(); ++c)
    if (!std::binary_search(dead.begin(), dead.end(), c))
      survivors.push_back(c);
  if (survivors.empty()) return false;
  if (world.rank() == survivors.front())
    obs::count_event(obs::Event::rank_death_detected,
                     static_cast<std::uint64_t>(dead.size()));

  comm::Communicator shrunk = [&] {
    YY_TRACE_SCOPE(obs::Phase::shrink);
    return world.shrink(survivors, dl);
  }();

  // Serve plan: every survivor restores its own patch from its own
  // image; a dead rank's patch comes from its ring buddy's replica —
  // which must itself have survived and hold a validated copy.
  const int n_old = world.size();
  core::DistributedSolver::RebuildSource src;
  src.holder_of.resize(static_cast<std::size_t>(n_old));
  // validate() re-CRCs every byte about to be decoded, so a replica
  // that rotted after its refresh turns the recovery down in the vote
  // below instead of failing mid-rebuild.
  bool ok = buddy_.can_serve(world.rank()) && buddy_.validate(world.rank());
  for (int w = 0; w < n_old; ++w) {
    if (!std::binary_search(dead.begin(), dead.end(), w)) {
      src.holder_of[static_cast<std::size_t>(w)] = w;
      continue;
    }
    const int h = BuddyStore::holder_of(w, n_old);
    src.holder_of[static_cast<std::size_t>(w)] = h;
    if (std::binary_search(dead.begin(), dead.end(), h)) ok = false;
    if (h == world.rank())
      ok = ok && buddy_.can_serve(w) && buddy_.validate(w);
  }

  // Collective agreement on both serveability and the snapshot step: a
  // survivor that missed a refresh (or a lost-with-its-buddy rank)
  // turns the whole recovery down symmetrically.
  const double vote = ok ? static_cast<double>(buddy_.snapshot_step()) : -1.0;
  const double lo = shrunk.allreduce_min(vote, dl);
  const double hi = shrunk.allreduce_max(vote, dl);
  if (lo < 0.0 || lo != hi) return false;
  src.step = static_cast<long long>(lo);
  src.time = buddy_.snapshot_time();
  src.load = [this](int w, mhd::Fields& out) { return buddy_.load(w, out); };

  {
    YY_TRACE_SCOPE(obs::Phase::buddy_restore);
    solver_.rebuild(shrunk, survivors, src);
  }
  dt = buddy_.snapshot_dt();

  const comm::Communicator& nw = solver_.runner().world();
  if (nw.rank() == 0) {
    obs::count_event(obs::Event::world_shrunk);
    obs::count_event(obs::Event::buddy_restore,
                     static_cast<std::uint64_t>(dead.size()));
  }
  r.final_world_size = nw.size();

  // Re-seed both stores on the new world: ring identities changed, and
  // the next transient fault must find a set saved by this layout.
  buddy_.reset();
  buddy_.refresh(solver_, dt, dl);
  auditor_.disarm();
  auditor_.refresh(solver_);
  if (ckpt_.save(solver_, dt, nullptr)) ++r.checkpoints_saved;
  return true;
}

bool ResilientRunner::recover_from_sdc(RunReport& r, double& dt) {
  const comm::Communicator world = solver_.runner().world();
  const int dl = policy_.take_deadline_ms > 0 ? policy_.take_deadline_ms : 0;

  ++r.sdc_restores;
  if (!policy_.buddy_checkpoints || r.sdc_restores > policy_.max_sdc_restores)
    return false;

  // Collective agreement on the snapshot step every patch rewinds to;
  // a rank that missed a refresh turns the tier down symmetrically and
  // the verdict escalates to the checkpoint rewind.
  const double vote =
      buddy_.can_serve(world.rank()) ? static_cast<double>(buddy_.snapshot_step())
                                     : -1.0;
  const double lo = world.allreduce_min(vote, dl);
  const double hi = world.allreduce_max(vote, dl);
  if (lo < 0.0 || lo != hi) return false;

  // Every rank restores its own patch — corruption localized to one
  // rank at detection time may already have crossed a halo exchange,
  // and a local replica decode costs less than proving it has not.
  mhd::Fields scratch(solver_.local_grid());
  bool ok = false;
  {
    YY_TRACE_SCOPE(obs::Phase::buddy_restore);
    ok = buddy_.restore_own(scratch, world, dl);
  }
  if (world.allreduce_min(ok ? 1.0 : 0.0, dl) < 0.5) return false;
  solver_.restore_state(scratch, buddy_.snapshot_time(),
                        buddy_.snapshot_step());
  dt = buddy_.snapshot_dt();  // no backoff: corruption is not instability
  auditor_.disarm();
  auditor_.refresh(solver_);
  if (world.rank() == 0) obs::count_event(obs::Event::sdc_restore);
  return true;
}

RunReport ResilientRunner::run(long long target_steps, double dt) {
  DeadlineGuard guard{solver_.runner().world(),
                      solver_.runner().world().take_deadline_ms()};
  if (policy_.take_deadline_ms > 0)
    guard.world.set_take_deadline_ms(policy_.take_deadline_ms);
  dt_entry_ = dt;
  dt_reduced_ = false;

  RunReport r;
  r.final_world_size = solver_.runner().world().size();
  bool need_arm = policy_.buddy_checkpoints;
  while (solver_.steps_taken() < target_steps) {
    // Re-read every iteration: a shrink recovery replaces the runner.
    const comm::Communicator& world = solver_.runner().world();
    r.final_dt = dt;
    bool blowup_local = false;
    try {
      if (comm::FaultPlan* plan = world.fault_plan()) {
        // A rank scheduled to die does so at the top of the loop after
        // completing its death step: it retires from the fabric (wakes
        // every peer blocked on it) and returns a failed report.  The
        // survivors see its silence as timeouts and shrink around it.
        const int me_w = world.world_rank_of(world.rank());
        const long long ds = plan->rank_death_step(me_w);
        if (ds >= 0 && solver_.steps_taken() >= ds) {
          plan->mark_rank_death_fired(me_w);
          world.retire();
          return fail(std::move(r), "rank death injected by fault plan");
        }
        // Scheduled silent corruption lands here, between steps with
        // the state at rest — after the audit references were taken,
        // before the audit that should catch it.  Erase-on-take keeps
        // a rewound re-run of the step unfaulted.
        const long long now = solver_.steps_taken();
        for (const comm::FaultPlan::ComputeFault& cf :
             plan->take_compute_faults(me_w, now))
          apply_bitflip(solver_.local_state(), cf);
        for (const comm::FaultPlan::ReplicaTarget t :
             plan->take_replica_rot(me_w, now))
          buddy_.corrupt_image(
              t == comm::FaultPlan::ReplicaTarget::own
                  ? world.rank()
                  : BuddyStore::ward_of(world.rank(), world.size()));
        // Advance the fault clock so min_step-gated rules arm exactly
        // at the step whose communication they should hit.
        plan->note_step(solver_.steps_taken() + 1);
      }

      if (need_arm) {
        // Arm the buddy ring on the entry state, so even a death
        // before the first checkpoint cadence can be survived.
        buddy_.refresh(solver_, dt, policy_.take_deadline_ms);
        auditor_.refresh(solver_);
        need_arm = false;
      }

      if (auditor_.due(solver_.steps_taken())) {
        const SdcVerdict sv = auditor_.audit(solver_);
        if (sv != SdcVerdict::clean) {
          if (world.rank() == 0) obs::count_event(obs::Event::sdc_detected);
          if (!recover_from_sdc(r, dt))
            throw Error(Error::Kind::numeric,
                        std::string("sdc audit verdict: ") +
                            sdc_verdict_name(sv));
          continue;  // re-enter the loop at the restored step
        }
        // A clean audit certifies this step: move the buddy snapshot
        // forward so the SDC tier's rewind window is one audit cadence,
        // not a whole checkpoint cadence.
        if (policy_.buddy_checkpoints)
          buddy_.refresh(solver_, dt, policy_.take_deadline_ms);
      }
      if (policy_.buddy_checkpoints && scrubber_.due(solver_.steps_taken()))
        scrubber_.scrub(buddy_, world);

      solver_.step(dt);
      const long long step = solver_.steps_taken();
      // References are only ever consulted by the next loop-top audit,
      // so they are taken solely on steps that audit will examine — a
      // flip on any other step bakes into the next reference either
      // way, and the per-step full-state CRC would buy no detection.
      if (auditor_.due(step)) auditor_.refresh(solver_);

      if (health_.due(step)) {
        const HealthVerdict v = health_.check(solver_, dt);
        if (v == HealthVerdict::cfl_collapse)  // collective verdict:
          return fail(std::move(r),            // every rank fails alike
                      "timestep collapsed below the policy minimum");
        if (v != HealthVerdict::healthy) {
          blowup_local = true;
          throw Error(Error::Kind::numeric,
                      std::string("solver health check failed: ") +
                          verdict_name(v));
        }
        if (dt_reduced_) {
          // Bounded re-ramp: a healthy sweep lets dt grow back toward
          // the CFL-stable value, never past the dt the run started
          // with.  stable_dt() is an exact allreduce-min, so every
          // rank computes the same ramp.
          const double cap =
              std::min(dt_entry_,
                       policy_.dt_ramp_fraction * solver_.stable_dt());
          if (dt < cap) {
            dt = std::min(dt * policy_.dt_growth, cap);
            if (world.rank() == 0) obs::count_event(obs::Event::dt_reramp);
          }
          if (dt >= cap) dt_reduced_ = false;
        }
      }
      if (step % policy_.checkpoint_interval == 0 || step == target_steps)
        if (ckpt_.save(solver_, dt, world.fault_plan())) {
          ++r.checkpoints_saved;
          // Piggyback the diskless replicas on the same cadence; the
          // save's collective verdict keeps the ring symmetric.
          if (policy_.buddy_checkpoints)
            buddy_.refresh(solver_, dt, policy_.take_deadline_ms);
        }
    } catch (const Error& e) {
      if (e.kind() == Error::Kind::timeout)
        obs::count_event(obs::Event::comm_timeout);
      else if (e.kind() == Error::Kind::corruption)
        obs::count_event(obs::Event::comm_corruption);
      if (!recover(r, dt, blowup_local))
        return fail(std::move(r),
                    std::string("unrecoverable after ") +
                        std::to_string(r.recoveries) + " recoveries" +
                        (r.shrinks > 0
                             ? " and " + std::to_string(r.shrinks) +
                                   " shrink attempts"
                             : "") +
                        ": " + e.what());
    }
  }
  r.completed = true;
  r.final_step = solver_.steps_taken();
  r.final_dt = dt;
  r.final_world_size = solver_.runner().world().size();
  return r;
}

}  // namespace yy::resilience
